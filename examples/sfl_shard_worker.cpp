// sfl_shard_worker: a standalone distributed-WDP shard worker process.
//
// A thin main() over dist::TcpShardServer — the same accept/serve loop and
// codec worker math (dist::serve_frame / compute_survivors) every other
// execution path uses, now runnable as its own OS process:
//
//   sfl_shard_worker [--port=P]
//
// binds 127.0.0.1:P (P = 0, the default, picks an ephemeral port), prints
//
//   sfl_shard_worker listening on 127.0.0.1:<port>
//
// on stdout (flushed, so a spawning coordinator can parse the port), and
// serves until SIGTERM/SIGINT. Workers are stateless across rounds — every
// request carries its full span — so any number of these processes can be
// started, killed, and replaced under a running coordinator; the
// DistributedWdp recovery path re-routes or recomputes whatever a dead
// worker absorbed. On SIGTERM/SIGINT the worker DRAINS: it finishes the
// in-flight request, sends kWorkerGoodbye on the live connection (so the
// coordinator deregisters it without timeout recovery), then exits. Exit
// codes: 0 on clean shutdown, 2 on bad usage, 3 when the socket cannot be
// bound (sandboxed environments).
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "dist/tcp_transport.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_stop_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  long port = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    constexpr const char* kPortFlag = "--port=";
    if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: sfl_shard_worker [--port=P]\n"
             "\n"
             "Standalone distributed-WDP shard worker process.\n"
             "\n"
             "  --port=P   bind 127.0.0.1:P (default 0 = ephemeral port)\n"
             "  --help     show this message and exit\n"
             "\n"
             "Prints 'sfl_shard_worker listening on 127.0.0.1:<port>' once\n"
             "serving; runs until SIGTERM/SIGINT. Exit codes: 0 clean, 2 bad\n"
             "usage, 3 socket cannot be bound.\n";
      return 0;
    }
    if (arg.rfind(kPortFlag, 0) == 0) {
      char* end = nullptr;
      port = std::strtol(arg.c_str() + std::string(kPortFlag).size(), &end, 10);
      if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
        std::cerr << "sfl_shard_worker: invalid --port value: " << arg << "\n";
        return 2;
      }
    } else {
      std::cerr << "usage: sfl_shard_worker [--port=P]   (P = 0 for an "
                   "ephemeral port)\n";
      return 2;
    }
  }

  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);

  try {
    sfl::dist::TcpShardServer server(static_cast<std::uint16_t>(port));
    server.start();
    // The parse-friendly startup line a spawning coordinator waits for.
    std::cout << "sfl_shard_worker listening on 127.0.0.1:" << server.port()
              << std::endl;
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    // Planned drain: finish whatever request is in flight, send one
    // kWorkerGoodbye on the live connection so the coordinator deregisters
    // this worker WITHOUT timeout recovery, then shut down. Bounded wait —
    // the goodbye is a courtesy, not a requirement (a coordinator treats a
    // vanished worker as a fault and recovers anyway).
    server.begin_drain();
    for (int spins = 0; spins < 20 && !server.drained(); ++spins) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    server.stop();
    std::cout << "sfl_shard_worker: served " << server.served_requests()
              << " requests, drained and shutting down\n";
  } catch (const std::exception& error) {
    std::cerr << "sfl_shard_worker: cannot serve: " << error.what() << "\n";
    return 3;
  }
  return 0;
}
