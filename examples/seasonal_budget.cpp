// Seasonal budget: the server's payment budget varies over a weekly cycle
// (cheap electricity / grant disbursement windows). LTO-VCG takes the
// profile as a budget schedule: the virtual queue banks unused allowance
// from rich phases and spends it in poor ones, holding the long-term
// average to the schedule mean without any forecasting.
//
// Usage: seasonal_budget [rounds=7000] [clients=60]
#include <iostream>

#include "auction/registry.h"
#include "core/market_simulation.h"
#include "util/config.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sfl::util::Config args = sfl::util::Config::from_args(argc, argv);

  sfl::core::MarketSpec spec;
  spec.num_clients = args.get_size("clients", 60);
  spec.rounds = args.get_size("rounds", 7000);
  spec.max_winners = 8;
  spec.seed = args.get_size("seed", 23);

  // A 7-phase "week": two rich days, five poor ones. Mean = 6.
  const std::vector<double> week{15.0, 15.0, 3.0, 3.0, 2.0, 2.0, 2.0};
  double mean_budget = 0.0;
  for (const double b : week) mean_budget += b;
  mean_budget /= static_cast<double>(week.size());
  spec.per_round_budget = mean_budget;

  const auto run_variant = [&](bool scheduled) {
    sfl::auction::MechanismConfig mc;
    mc.num_clients = spec.num_clients;
    mc.per_round_budget = mean_budget;
    mc.seed = spec.seed;
    if (scheduled) mc.lto.budget_schedule = week;
    const auto mech = sfl::auction::build_mechanism("lto-vcg", mc);
    return sfl::core::run_market(*mech, spec);
  };

  const sfl::core::MarketResult flat = run_variant(false);
  const sfl::core::MarketResult seasonal = run_variant(true);

  std::cout << "Seasonal budget (weekly profile 15,15,3,3,2,2,2 — mean "
            << mean_budget << ")\n\n";
  sfl::util::TablePrinter table({"variant", "avg_payment", "avg_welfare",
                                 "peak_violation"});
  table.row("flat budget B=6", flat.average_payment, flat.time_average_welfare,
            flat.peak_budget_violation);
  table.row("weekly schedule", seasonal.average_payment,
            seasonal.time_average_welfare, seasonal.peak_budget_violation);
  table.print(std::cout);

  // Spend by weekday under the schedule (banked allowance shows up as
  // higher spend right after rich days).
  std::cout << "\nMean spend by phase (weekly schedule variant):\n";
  sfl::util::TablePrinter phases({"phase", "allowance", "mean_spend"});
  std::vector<double> spend(week.size(), 0.0);
  std::vector<double> count(week.size(), 0.0);
  for (std::size_t t = 0; t < seasonal.payment_series.size(); ++t) {
    spend[t % week.size()] += seasonal.payment_series[t];
    count[t % week.size()] += 1.0;
  }
  for (std::size_t p = 0; p < week.size(); ++p) {
    phases.row("day " + std::to_string(p), week[p], spend[p] / count[p]);
  }
  phases.print(std::cout);
  std::cout << "\nBoth variants hold the same long-term average; the "
               "schedule variant additionally respects the within-week "
               "profile via queue banking.\n";
  return 0;
}
