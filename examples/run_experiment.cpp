// Configurable experiment runner: the library's capabilities behind one
// key=value command line, with CSV output for downstream plotting.
//
// Usage:
//   run_experiment [scenario=static|wireless|online|multi]
//                  [mechanism=lto-vcg] [rounds=200] [clients=40]
//                  [partition=dirichlet|iid|quantity] [alpha=0.3]
//                  [noisy_fraction=0.3] [flip_prob=0.8]
//                  [budget=6] [winners=8] [v=10] [pacing=0.5] [shards=0]
//                  [async_settle=0] [dist_workers=0] [dist_pipeline_depth=0]
//                  [oracle_threads=0] [greedy_scale=20]
//                  [model=logreg|mlp] [hidden=32] [lr=0.05] [local_steps=5]
//                  [proximal_mu=0] [server_momentum=0]
//                  [use_reputation=1] [energy=0] [seed=42]
//                  [csv=/path/to/rounds.csv]
//
// Scenarios (PR-10 extensions; see README "Scenario extensions"):
//   scenario=static    the default FL training run.
//   scenario=wireless  same FL run, but per-client energy costs are DERIVED
//                      from the wireless cellular uplink model
//                      (sim::WirelessSpec: annulus drop + path loss +
//                      Rayleigh fading -> Shannon-rate transmit energy).
//                      Knobs: cell_radius, pathloss, tx_power, payload_bits,
//                      reference_snr, normalize_energy.
//   scenario=online    auction-only streaming market (no FL loop): clients
//                      arrive/depart mid-horizon with per-client win budgets
//                      (core::OnlineArrivalSpec). Knobs: arrival_window,
//                      min_sojourn, max_sojourn, min_win_budget,
//                      max_win_budget; csv= writes the per-round trajectory.
//   scenario=multi     auction-only multi-requester market: `requesters`
//                      LTO mechanisms compete for one client population each
//                      round under cross-market exclusivity (one fused
//                      exclusive MarketBatch clear per round). Knobs:
//                      requesters, requester_spread, shards; csv= writes the
//                      per-round trajectory. Exits non-zero if any client
//                      ever wins two markets in one round.
//
// Mechanisms: any key in the MechanismRegistry — run with mechanism=list
// to print them all with descriptions. mechanism=lto-vcg-sharded runs the
// multi-threaded WDP: `shards` selects the span count (0 = one shard per
// hardware thread, 1 = serial, k = exactly k shards) and produces the same
// winners and payments as lto-vcg at any setting.
//
// async_settle=1 (or mechanism=lto-vcg-async) streams settlements through
// the async pipeline: mechanism queue updates run on the shared pool while
// the round does local training, behind a flush barrier that keeps
// fixed-seed trajectories bit-identical to synchronous settlement.
//
// mechanism=lto-vcg-dist runs winner determination on the distributed WDP
// coordinator: `dist_workers` in-process loopback shard workers receive
// batch spans and return top-(m+1) survivor sets through the wire codec
// (dist_workers=0 uses the key's default of 2). Winners and payments are
// bit-identical to lto-vcg for any worker count.
//
// mechanism=lto-vcg-dist-pipe builds the pipeline-capable coordinator:
// `dist_pipeline_depth` per-round scratch lanes (0 uses the key's default
// of 2), bit-identical to lto-vcg at any depth. The distributed keys hedge
// laggard shards by default (adaptive per-worker deadlines; hedge=0
// disables), and mechanism=lto-vcg-dist-hedge forces hedging on over a
// 4-worker default fleet. NOTE: this FL runner
// drives the orchestrator, which clears rounds synchronously — actual
// round overlap engages in drivers that feed rounds ahead through the
// pipelined round API (core::run_market, or submit_round /
// retire_round_into directly); see ROADMAP "pipelined distributed
// rounds".
//
// The parallel comparison-oracle keys (mechanism=budgeted-oracle-par,
// greedy-concave-par, myopic-vcg-ext-par) run the expensive baseline
// oracles on the shared thread pool: `oracle_threads` picks the lane
// count (0 = auto, 1 = serial, k = exactly k lanes) and every setting
// produces bit-identical allocations and payments to the serial keys.
#include <fstream>
#include <iostream>
#include <memory>
#include <numeric>

#include "auction/registry.h"
#include "core/market_simulation.h"
#include "core/orchestrator.h"
#include "fl/logistic_regression.h"
#include "fl/mlp.h"
#include "util/config.h"
#include "util/table.h"

namespace {

using sfl::util::Config;

/// Maps the command line onto the registry's config; the registry is the
/// single source of truth for mechanism names.
sfl::auction::MechanismConfig mechanism_config_from(const Config& args,
                                                    double budget,
                                                    std::size_t num_clients) {
  sfl::auction::MechanismConfig config;
  config.num_clients = num_clients;
  config.per_round_budget = budget;
  config.seed = args.get_size("seed", 42);
  config.lto.v_weight = args.get_double("v", 10.0);
  config.lto.pacing_rate = args.get_double("pacing", 0.5);
  config.lto.shards = args.get_size("shards", 0);
  config.lto.dist_workers = args.get_size("dist_workers", 0);
  config.lto.dist_pipeline_depth = args.get_size("dist_pipeline_depth", 0);
  config.lto.hedge = args.get_bool("hedge", true);
  config.lto.async_settle = args.get_bool("async_settle", false);
  // One knob feeds both parallel-oracle surfaces: the "-par" comparison
  // oracle keys (0 = auto) and the lto externality-payment ablation
  // (default 1 = serial). Bit-identical results at every count.
  config.lto.oracle_threads = args.get_size("oracle_threads", 1);
  config.oracle.threads = args.get_size("oracle_threads", 0);
  config.oracle.greedy_scale = args.get_double("greedy_scale", 20.0);
  config.fixed_price.price = args.get_double("price", 1.0);
  config.random_stipend.stipend = args.get_double("stipend", 1.0);
  return config;
}

/// Auction-only streaming market (scenario=online): no FL loop, the
/// mechanism runs against the stochastic cost process with clients arriving
/// and departing mid-horizon. Returns the process exit code.
int run_online_scenario(const Config& args) {
  sfl::core::MarketSpec mspec;
  mspec.num_clients = args.get_size("clients", 40);
  mspec.rounds = args.get_size("rounds", 200);
  mspec.max_winners = args.get_size("winners", 8);
  mspec.per_round_budget = args.get_double("budget", 6.0);
  mspec.valuation_scale = args.get_double("valuation_scale", 2.0);
  mspec.cost.base_sigma = args.get_double("cost_sigma", 0.5);
  mspec.async_settle = args.get_bool("async_settle", false);
  mspec.seed = args.get_size("seed", 42);
  mspec.online.enabled = true;
  mspec.online.arrival_window = args.get_double("arrival_window", 0.5);
  mspec.online.min_sojourn_fraction = args.get_double("min_sojourn", 0.25);
  mspec.online.max_sojourn_fraction = args.get_double("max_sojourn", 1.0);
  mspec.online.min_win_budget = args.get_size("min_win_budget", 0);
  mspec.online.max_win_budget = args.get_size("max_win_budget", 0);

  const std::string mechanism_name = args.get_string("mechanism", "lto-vcg");
  const std::unique_ptr<sfl::auction::Mechanism> mechanism =
      sfl::auction::build_mechanism(
          mechanism_name, mechanism_config_from(args, mspec.per_round_budget,
                                                mspec.num_clients));
  const sfl::core::MarketResult result =
      sfl::core::run_market(*mechanism, mspec);

  const double mean_active =
      result.active_clients_series.empty()
          ? 0.0
          : std::accumulate(result.active_clients_series.begin(),
                            result.active_clients_series.end(), 0.0) /
                static_cast<double>(result.active_clients_series.size());
  std::cout << "run_experiment: scenario=online mechanism="
            << result.mechanism_name << " rounds=" << mspec.rounds << "\n\n";
  sfl::util::TablePrinter summary({"metric", "value"});
  summary.row("cumulative welfare", result.cumulative_welfare);
  summary.row("avg payment/round", result.average_payment);
  summary.row("budget violation (peak)", result.peak_budget_violation);
  summary.row("IR fraction", result.ir_fraction);
  summary.row("mean active bidders", mean_active);
  summary.row("budget-exhausted clients",
              static_cast<double>(result.budget_exhausted_clients));
  summary.row("final budget backlog", result.final_budget_backlog);
  summary.print(std::cout);

  const std::string csv_path = args.get_string("csv", "");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out.is_open()) {
      std::cerr << "cannot write " << csv_path << "\n";
      return 1;
    }
    out << "round,welfare,payment,active_bidders\n";
    for (std::size_t t = 0; t < result.welfare_series.size(); ++t) {
      out << t << ',' << result.welfare_series[t] << ','
          << result.payment_series[t] << ',' << result.active_clients_series[t]
          << '\n';
    }
    std::cout << "\nwrote " << result.welfare_series.size()
              << " round rows to " << csv_path << "\n";
  }
  return 0;
}

/// Auction-only multi-requester market (scenario=multi): R LTO requesters
/// compete for one client population under cross-market exclusivity.
int run_multi_scenario(const Config& args) {
  sfl::core::MultiRequesterSpec qspec;
  qspec.requesters = args.get_size("requesters", 3);
  qspec.num_clients = args.get_size("clients", 40);
  qspec.rounds = args.get_size("rounds", 200);
  qspec.max_winners = args.get_size("winners", 8);
  qspec.per_round_budget = args.get_double("budget", 6.0);
  qspec.valuation_scale = args.get_double("valuation_scale", 2.0);
  qspec.requester_value_spread = args.get_double("requester_spread", 0.25);
  qspec.cost.base_sigma = args.get_double("cost_sigma", 0.5);
  qspec.shards = args.get_size("shards", 1);
  qspec.seed = args.get_size("seed", 42);

  const std::string mechanism_name = args.get_string("mechanism", "lto-vcg");
  const sfl::core::MultiRequesterResult result =
      sfl::core::run_multi_requester_market(qspec, mechanism_name);

  std::cout << "run_experiment: scenario=multi mechanism=" << mechanism_name
            << " requesters=" << qspec.requesters
            << " rounds=" << qspec.rounds << "\n\n";
  sfl::util::TablePrinter summary(
      {"requester", "welfare", "payments", "wins", "final Q"});
  for (std::size_t r = 0; r < qspec.requesters; ++r) {
    summary.row(r, result.requester_welfare[r], result.requester_payment[r],
                result.requester_wins[r], result.requester_backlog[r]);
  }
  summary.print(std::cout);

  const std::string csv_path = args.get_string("csv", "");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out.is_open()) {
      std::cerr << "cannot write " << csv_path << "\n";
      return 1;
    }
    out << "round,welfare,payment,queue_backlog\n";
    for (std::size_t t = 0; t < result.welfare_series.size(); ++t) {
      out << t << ',' << result.welfare_series[t] << ','
          << result.payment_series[t] << ',' << result.queue_series[t] << '\n';
    }
    std::cout << "\nwrote " << result.welfare_series.size()
              << " round rows to " << csv_path << "\n";
  }
  if (result.duplicate_wins != 0) {
    std::cerr << "EXCLUSIVITY VIOLATION: " << result.duplicate_wins
              << " duplicate wins\n";
    return 1;
  }
  std::cout << "\nexclusivity: no client won two markets in any round\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Config args = Config::from_args(argc, argv);

  if (args.get_string("mechanism", "lto-vcg") == "list") {
    sfl::util::TablePrinter listing({"mechanism", "variant_of", "description"});
    for (const auto& info :
         sfl::auction::MechanismRegistry::global().describe()) {
      listing.row(info.name, info.variant_of.empty() ? "-" : info.variant_of,
                  info.description);
    }
    listing.print(std::cout);
    return 0;
  }

  // Auction-only scenario extensions short-circuit before the FL stack.
  const std::string scenario_kind = args.get_string("scenario", "static");
  if (scenario_kind == "online") return run_online_scenario(args);
  if (scenario_kind == "multi") return run_multi_scenario(args);
  if (scenario_kind != "static" && scenario_kind != "wireless") {
    std::cerr << "unknown scenario: " << scenario_kind
              << " (expected static|wireless|online|multi)\n";
    return 1;
  }

  // --- scenario ---
  sfl::sim::ScenarioSpec sspec;
  sspec.num_clients = args.get_size("clients", 40);
  sspec.train_examples = args.get_size("train", 4000);
  sspec.test_examples = args.get_size("test", 800);
  sspec.num_classes = args.get_size("classes", 10);
  sspec.feature_dim = args.get_size("dim", 32);
  sspec.class_separation = args.get_double("separation", 0.9);
  const std::string partition = args.get_string("partition", "dirichlet");
  if (partition == "dirichlet") {
    sspec.partition = sfl::sim::PartitionKind::kDirichletLabelSkew;
    sspec.dirichlet_alpha = args.get_double("alpha", 0.3);
  } else if (partition == "quantity") {
    sspec.partition = sfl::sim::PartitionKind::kQuantitySkew;
    sspec.quantity_sigma = args.get_double("quantity_sigma", 0.8);
  } else if (partition == "iid") {
    sspec.partition = sfl::sim::PartitionKind::kIid;
  } else {
    std::cerr << "unknown partition: " << partition << "\n";
    return 1;
  }
  sspec.noisy_client_fraction = args.get_double("noisy_fraction", 0.3);
  sspec.noisy_flip_probability = args.get_double("flip_prob", 0.8);
  sspec.seed = args.get_size("seed", 42);
  if (scenario_kind == "wireless") {
    sspec.wireless.enabled = true;
    sspec.wireless.cell_radius_m = args.get_double("cell_radius", 500.0);
    sspec.wireless.pathloss_exponent = args.get_double("pathloss", 3.0);
    sspec.wireless.tx_power_watts = args.get_double("tx_power", 0.2);
    sspec.wireless.payload_bits = args.get_double("payload_bits", 5e6);
    sspec.wireless.reference_snr = args.get_double("reference_snr", 1000.0);
    sspec.wireless.normalize_mean = args.get_double("normalize_energy", 1.0);
  }
  const sfl::sim::Scenario scenario = sfl::sim::build_scenario(sspec);

  // --- orchestrator ---
  sfl::core::OrchestratorConfig config;
  config.rounds = args.get_size("rounds", 200);
  config.max_winners = args.get_size("winners", 8);
  config.per_round_budget = args.get_double("budget", 6.0);
  config.valuation_scale = args.get_double("valuation_scale", 2.0);
  config.use_reputation = args.get_bool("use_reputation", true);
  config.eval_every = args.get_size("eval_every", 10);
  config.cost.base_sigma = args.get_double("cost_sigma", 0.5);
  // Streams ANY mechanism: lto-vcg* keys are wrapped by the registry (via
  // lto.async_settle below) and the orchestrator skips already-async
  // mechanisms, so this never double-wraps.
  config.async_settle = args.get_bool("async_settle", false);
  config.seed = sspec.seed;
  if (args.get_bool("energy", false)) {
    config.enable_energy = true;
    config.energy.harvest_probabilities.assign(
        sspec.num_clients, args.get_double("harvest_p", 0.5));
  }

  // --- training ---
  sfl::fl::LocalTrainingSpec training;
  training.local_steps = args.get_size("local_steps", 5);
  training.batch_size = args.get_size("batch", 32);
  training.optimizer.learning_rate = args.get_double("lr", 0.05);
  training.proximal_mu = args.get_double("proximal_mu", 0.0);
  training.gradient_clip_norm = args.get_double("clip", 0.0);

  std::unique_ptr<sfl::fl::Model> model;
  const std::string model_kind = args.get_string("model", "logreg");
  sfl::util::Rng init_rng(sspec.seed ^ 0xabcdef);
  if (model_kind == "logreg") {
    model = std::make_unique<sfl::fl::LogisticRegression>(
        sspec.feature_dim, sspec.num_classes, 1e-4);
  } else if (model_kind == "mlp") {
    model = std::make_unique<sfl::fl::Mlp>(sspec.feature_dim,
                                           args.get_size("hidden", 32),
                                           sspec.num_classes, init_rng, 1e-4);
  } else {
    std::cerr << "unknown model: " << model_kind << "\n";
    return 1;
  }

  const std::string mechanism_name = args.get_string("mechanism", "lto-vcg");
  sfl::core::SustainableFlOrchestrator orchestrator(
      scenario, std::move(model), training,
      sfl::auction::build_mechanism(
          mechanism_name,
          mechanism_config_from(args, config.per_round_budget,
                                sspec.num_clients)),
      config);
  const sfl::core::RunResult result = orchestrator.run();

  // --- report ---
  std::cout << "run_experiment: mechanism=" << result.mechanism_name
            << " model=" << model_kind << " partition=" << partition
            << " rounds=" << config.rounds << "\n\n";
  sfl::util::TablePrinter summary({"metric", "value"});
  summary.row("final accuracy", result.final_accuracy);
  summary.row("final loss", result.final_loss);
  summary.row("cumulative welfare", result.cumulative_welfare);
  summary.row("avg payment/round", result.average_payment);
  summary.row("budget/round", config.per_round_budget);
  summary.row("budget violation (end)", result.budget_violation);
  summary.row("IR fraction", result.ir_fraction);
  summary.print(std::cout);

  const std::string csv_path = args.get_string("csv", "");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out.is_open()) {
      std::cerr << "cannot write " << csv_path << "\n";
      return 1;
    }
    sfl::util::CsvWriter csv(out, sfl::core::RunResult::csv_header());
    result.write_rounds_csv(csv);
    std::cout << "\nwrote " << csv.rows_written() << " round rows to "
              << csv_path << "\n";
  }
  return 0;
}
