// Green federation: clients run on harvested energy (capped batteries,
// intermittent arrivals). Compares LTO-VCG with and without the per-client
// sustainability queues Z_i: without pacing, attractive clients are bought
// every round until their batteries die and availability collapses; with
// pacing, wins are spread at each client's harvest rate and the federation
// stays up.
//
// Usage: green_federation [rounds=250] [clients=24]
#include <iostream>
#include <memory>

#include "auction/registry.h"
#include "core/orchestrator.h"
#include "fl/logistic_regression.h"
#include "stats/summary.h"
#include "util/config.h"
#include "util/table.h"

namespace {

sfl::core::RunResult run_one(const sfl::sim::Scenario& scenario,
                             const sfl::sim::ScenarioSpec& sspec,
                             const sfl::core::OrchestratorConfig& config,
                             bool with_sustainability_queues) {
  sfl::auction::MechanismConfig mc;
  mc.num_clients = scenario.num_clients();
  mc.per_round_budget = config.per_round_budget;
  if (with_sustainability_queues) {
    // Pace each client's wins to its battery harvest rate.
    mc.lto.energy_rates.reserve(scenario.num_clients());
    for (std::size_t c = 0; c < scenario.num_clients(); ++c) {
      mc.lto.energy_rates.push_back(config.energy.harvest_probabilities[c] *
                                    config.energy.harvest_amount);
    }
  }
  sfl::fl::LocalTrainingSpec training;
  training.local_steps = 5;
  training.batch_size = 32;
  training.optimizer.learning_rate = 0.1;
  auto model = std::make_unique<sfl::fl::LogisticRegression>(
      sspec.feature_dim, sspec.num_classes, 1e-4);
  sfl::core::SustainableFlOrchestrator orchestrator(
      scenario, std::move(model), training,
      sfl::auction::build_mechanism("lto-vcg", mc), config);
  return orchestrator.run();
}

}  // namespace

int main(int argc, char** argv) {
  const sfl::util::Config args = sfl::util::Config::from_args(argc, argv);

  sfl::sim::ScenarioSpec sspec;
  sspec.num_clients = args.get_size("clients", 24);
  sspec.train_examples = args.get_size("train", 2400);
  sspec.test_examples = 600;
  sspec.seed = args.get_size("seed", 3);
  const sfl::sim::Scenario scenario = sfl::sim::build_scenario(sspec);

  sfl::core::OrchestratorConfig config;
  config.rounds = args.get_size("rounds", 250);
  config.max_winners = args.get_size("winners", 6);
  config.per_round_budget = args.get_double("budget", 6.0);
  config.seed = sspec.seed;
  config.enable_energy = true;
  config.energy.battery_capacity = 3.0;
  config.energy.initial_charge = 2.0;
  config.energy.harvest_amount = 1.0;
  // Half the fleet harvests briskly (solar window), half rarely (indoor RF).
  config.energy.harvest_probabilities.resize(sspec.num_clients);
  for (std::size_t c = 0; c < sspec.num_clients; ++c) {
    config.energy.harvest_probabilities[c] = (c % 2 == 0) ? 0.8 : 0.25;
  }

  const sfl::core::RunResult unpaced = run_one(scenario, sspec, config, false);
  const sfl::core::RunResult paced = run_one(scenario, sspec, config, true);

  std::cout << "Green federation: energy-harvesting clients, "
            << config.rounds << " rounds\n\n";
  sfl::util::TablePrinter summary({"variant", "accuracy", "welfare",
                                   "total starvation events",
                                   "participation Jain index"});
  const auto total_starvation = [](const sfl::core::RunResult& r) {
    std::size_t total = 0;
    for (const auto s : r.starvation_counts) total += s;
    return total;
  };
  summary.row("no pacing (Z off)", unpaced.final_accuracy,
              unpaced.cumulative_welfare,
              total_starvation(unpaced),
              sfl::stats::jain_fairness_index(unpaced.participation_counts));
  summary.row("harvest-paced (Z on)", paced.final_accuracy,
              paced.cumulative_welfare, total_starvation(paced),
              sfl::stats::jain_fairness_index(paced.participation_counts));
  summary.print(std::cout);

  std::cout << "\nPer-harvest-class outcomes:\n";
  sfl::util::TablePrinter classes({"variant", "class", "mean wins",
                                   "mean final battery", "mean starvation"});
  const auto by_class = [&](const sfl::core::RunResult& r,
                            const std::string& name) {
    for (const int fast : {1, 0}) {
      double wins = 0.0;
      double battery = 0.0;
      double starved = 0.0;
      double count = 0.0;
      for (std::size_t c = 0; c < sspec.num_clients; ++c) {
        if ((c % 2 == 0) != (fast == 1)) continue;
        wins += r.participation_counts[c];
        battery += r.final_battery[c];
        starved += static_cast<double>(r.starvation_counts[c]);
        count += 1.0;
      }
      classes.row(name, fast == 1 ? "fast-harvest (p=0.8)" : "slow-harvest (p=0.25)",
                  wins / count, battery / count, starved / count);
    }
  };
  by_class(unpaced, "no pacing");
  by_class(paced, "harvest-paced");
  classes.print(std::cout);
  return 0;
}
