// Quickstart: wire a federated market end to end in ~40 lines of library use.
//
//   1. Build a scenario (synthetic 10-class task partitioned over clients).
//   2. Configure the Long-Term Online VCG mechanism.
//   3. Run the orchestrator: auction -> local training -> aggregation.
//   4. Print the headline numbers.
//
// Usage: quickstart [rounds=100] [clients=20] [budget=4.0] [v=10]
#include <iostream>
#include <memory>

#include "auction/registry.h"
#include "core/orchestrator.h"
#include "fl/logistic_regression.h"
#include "util/config.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sfl::util::Config args = sfl::util::Config::from_args(argc, argv);

  // 1. Scenario: 10-class Gaussian-mixture task, IID shards.
  sfl::sim::ScenarioSpec scenario_spec;
  scenario_spec.num_clients = args.get_size("clients", 20);
  scenario_spec.train_examples = args.get_size("train", 2000);
  scenario_spec.test_examples = 500;
  scenario_spec.seed = args.get_size("seed", 42);
  const sfl::sim::Scenario scenario = sfl::sim::build_scenario(scenario_spec);

  // 2. The paper's mechanism: drift-plus-penalty affine maximizer with
  //    truthful critical payments and a long-term budget queue.
  sfl::core::OrchestratorConfig config;
  config.rounds = args.get_size("rounds", 100);
  config.max_winners = args.get_size("winners", 6);
  config.per_round_budget = args.get_double("budget", 4.0);
  config.seed = scenario_spec.seed;

  sfl::auction::MechanismConfig mechanism_config;
  mechanism_config.num_clients = scenario_spec.num_clients;
  mechanism_config.per_round_budget = config.per_round_budget;
  mechanism_config.lto.v_weight = args.get_double("v", 10.0);
  auto mechanism = sfl::auction::build_mechanism("lto-vcg", mechanism_config);

  // 3. Local training recipe shared by all clients.
  sfl::fl::LocalTrainingSpec training;
  training.local_steps = 5;
  training.batch_size = 32;
  training.optimizer.learning_rate = 0.1;

  auto model = std::make_unique<sfl::fl::LogisticRegression>(
      scenario_spec.feature_dim, scenario_spec.num_classes, 1e-4);

  sfl::core::SustainableFlOrchestrator orchestrator(
      scenario, std::move(model), training, std::move(mechanism), config);
  const sfl::core::RunResult result = orchestrator.run();

  // 4. Report.
  std::cout << "Sustainable FL quickstart — mechanism: " << result.mechanism_name
            << "\n\n";
  sfl::util::TablePrinter table({"metric", "value"});
  table.row("rounds", result.rounds.size());
  table.row("final test accuracy", result.final_accuracy);
  table.row("final test loss", result.final_loss);
  table.row("cumulative welfare", result.cumulative_welfare);
  table.row("cumulative payment", result.cumulative_payment);
  table.row("avg payment / round", result.average_payment);
  table.row("budget (per round)", config.per_round_budget);
  table.row("budget violation (end)", result.budget_violation);
  table.row("IR fraction", result.ir_fraction);
  table.print(std::cout);

  std::cout << "\nAccuracy trajectory (every eval):\n";
  sfl::util::TablePrinter curve({"round", "accuracy", "cum_payment",
                                 "budget_backlog"});
  for (const auto& record : result.rounds) {
    if (record.evaluated) {
      curve.row(record.round, record.test_accuracy, record.cumulative_payment,
                record.budget_backlog);
    }
  }
  curve.print(std::cout);
  return 0;
}
