// Misreport attack study: what does a strategic client gain by lying about
// its cost? Under the truthful LTO-VCG mechanism the answer must be
// "nothing"; under the pay-as-bid baseline, overbidding pays. This example
// sweeps the misreport factor for one attacker while everyone else stays
// truthful (auction-only simulation; no FL training needed).
//
// Usage: misreport_attack [rounds=600] [clients=40] [attacker=5]
#include <iostream>
#include <memory>

#include "auction/registry.h"
#include "core/market_simulation.h"
#include "util/config.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sfl::util::Config args = sfl::util::Config::from_args(argc, argv);

  sfl::core::MarketSpec spec;
  spec.num_clients = args.get_size("clients", 40);
  spec.rounds = args.get_size("rounds", 600);
  spec.max_winners = args.get_size("winners", 8);
  spec.per_round_budget = args.get_double("budget", 5.0);
  spec.seed = args.get_size("seed", 17);
  const std::size_t attacker = args.get_size("attacker", 5);

  const std::vector<double> factors{0.25, 0.5, 0.75, 0.9, 1.0,
                                    1.1,  1.25, 1.5, 2.0, 3.0};

  std::cout << "Misreport attack: client " << attacker
            << " bids factor x true cost; others truthful\n"
            << "(utility = payments received - true costs incurred, summed "
               "over "
            << spec.rounds << " rounds)\n\n";

  sfl::util::TablePrinter table(
      {"bid factor", "lto-vcg utility", "pay-as-bid utility"});
  double lto_truth = 0.0;
  double pab_truth = 0.0;
  double lto_best = -1e18;
  double pab_best = -1e18;
  double lto_best_factor = 1.0;
  double pab_best_factor = 1.0;
  sfl::auction::MechanismConfig mc;
  mc.num_clients = spec.num_clients;
  mc.per_round_budget = spec.per_round_budget;
  mc.seed = spec.seed;
  for (const double factor : factors) {
    const auto lto = sfl::auction::build_mechanism("lto-vcg", mc);
    const double lto_utility =
        sfl::core::deviation_utility(*lto, spec, attacker, factor);

    const auto pab = sfl::auction::build_mechanism("pay-as-bid", mc);
    const double pab_utility =
        sfl::core::deviation_utility(*pab, spec, attacker, factor);

    if (factor == 1.0) {
      lto_truth = lto_utility;
      pab_truth = pab_utility;
    }
    if (lto_utility > lto_best) {
      lto_best = lto_utility;
      lto_best_factor = factor;
    }
    if (pab_utility > pab_best) {
      pab_best = pab_utility;
      pab_best_factor = factor;
    }
    table.row(factor, lto_utility, pab_utility);
  }
  table.print(std::cout);

  std::cout << "\nBest response under lto-vcg:   factor " << lto_best_factor
            << " (gain over truth: " << lto_best - lto_truth << ")\n";
  std::cout << "Best response under pay-as-bid: factor " << pab_best_factor
            << " (gain over truth: " << pab_best - pab_truth << ")\n";
  std::cout << "\nLTO-VCG is dominant-strategy truthful: the best response "
               "is (up to simulation noise) the truthful factor 1.0.\n";
  return 0;
}
