// sfl_load_gen: open-loop load generator for the persistent auction server.
//
// Simulates a large logical client population (10k+ ids) over a small pool
// of loopback TCP connections. Bids are the deterministic workload of
// service/workload.h — a pure function of (seed, market, round, slot) —
// submitted with seeded Poisson arrival gaps (--rate, 0 = max speed), so
// the byte stream's TIMING is randomized while the bid SET is pinned. For
// each tier in --clients the generator:
//
//   1. opens --connections sockets to the server,
//   2. streams every (market, round, slot) bid as a SubmitBids frame,
//      shuffling slot order within each round block,
//   3. reads RoundResult / SettlementAck frames as rounds clear, recording
//      round latency (last bid sent for the round -> RoundResult received)
//      in a log-scale histogram,
//   4. with --verify=1, replays the same workload through the in-process
//      engine and compares winners and payments BIT FOR BIT.
//
// Tiers use disjoint market-id ranges, so each tier clears on fresh
// mechanism state. Results print as a table and, with --json=PATH, land in
// a benchmark JSON (p50/p99/p999 round latency in microseconds plus
// rounds/sec per tier). Exit codes: 0 ok, 1 verification or protocol
// failure, 2 bad usage, 3 cannot connect.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dist/wire_format.h"
#include "service/frame_assembler.h"
#include "service/market_engine.h"
#include "service/rpc_messages.h"
#include "service/workload.h"
#include "stats/latency_histogram.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using Clock = std::chrono::steady_clock;
using sfl::dist::Frame;
using sfl::dist::FrameType;
using sfl::service::BidRow;
using sfl::service::FrameAssembler;
using sfl::service::MarketEngineConfig;
using sfl::service::RoundResult;
using sfl::service::SettlementAck;
using sfl::service::SubmitBids;
using sfl::service::WorkloadSpec;

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::vector<std::size_t> client_tiers = {1000, 10000};
  std::size_t connections = 8;
  std::size_t markets = 4;
  std::size_t rounds = 50;
  std::size_t bids_per_round = 32;
  double rate = 0.0;  ///< aggregate bids/sec; 0 = max speed
  bool verify = true;
  std::string json_path;
  MarketEngineConfig engine{};
};

struct TierReport {
  std::size_t tier = 0;
  std::size_t clients = 0;
  double rounds_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
  bool verified = false;
};

void print_usage(std::ostream& out) {
  out << "usage: sfl_load_gen --port=P [flags]\n"
         "\n"
         "Open-loop load generator for sfl_auction_server.\n"
         "\n"
         "  --host=H             server host (default 127.0.0.1)\n"
         "  --port=P             server port (required)\n"
         "  --clients=A,B,...    logical client tiers (default 1000,10000)\n"
         "  --connections=N      TCP connections per tier (default 8)\n"
         "  --markets=M          markets per tier (default 4)\n"
         "  --rounds=R           rounds per market (default 50)\n"
         "  --bids-per-round=N   bids that clear a round (default 32)\n"
         "  --rate=X             Poisson aggregate bids/sec (0 = max speed)\n"
         "  --verify=0|1         bit-exact check vs in-process engine "
         "(default 1)\n"
         "  --json=PATH          write benchmark JSON (default: none)\n"
         "  --mechanism=KEY      registry key (default lto-vcg-dist-pipe)\n"
         "  --winners=M --budget=B --v=V --dist-workers=W --depth=D "
         "--seed=S\n"
         "                       engine knobs; MUST match the server's\n"
         "  --help               show this message and exit\n"
         "\n"
         "Exit codes: 0 ok, 1 verification/protocol failure, 2 bad usage,\n"
         "3 cannot connect.\n";
}

bool parse_u64(const std::string& arg, const char* flag, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long value =
      std::strtoull(arg.c_str() + std::strlen(flag), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  out = value;
  return true;
}

bool parse_f64(const std::string& arg, const char* flag, double& out) {
  char* end = nullptr;
  const double value = std::strtod(arg.c_str() + std::strlen(flag), &end);
  if (end == nullptr || *end != '\0') return false;
  out = value;
  return true;
}

bool parse_tiers(const std::string& list, std::vector<std::size_t>& out) {
  out.clear();
  std::stringstream stream(list);
  std::string item;
  while (std::getline(stream, item, ',')) {
    std::uint64_t value = 0;
    if (!parse_u64(item, "", value) || value == 0) return false;
    out.push_back(static_cast<std::size_t>(value));
  }
  return !out.empty();
}

bool has_prefix(const std::string& arg, const char* prefix) {
  return arg.rfind(prefix, 0) == 0;
}

std::string flag_value(const std::string& arg, const char* prefix) {
  return arg.substr(std::strlen(prefix));
}

/// One load-gen TCP connection with its response reassembly state.
struct GenConnection {
  int fd = -1;
  FrameAssembler assembler;
};

int connect_to(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// connect_to with bounded exponential backoff: a freshly spawned server
/// may still be binding its socket when the generator starts (the smoke
/// test and real deployments launch both at once), so the first
/// ECONNREFUSED is retried for ~1.6 s (25 ms doubling to a 400 ms cap)
/// before it counts as a dead server.
int connect_with_backoff(const std::string& host, std::uint16_t port) {
  std::chrono::milliseconds delay{25};
  constexpr std::chrono::milliseconds kMaxDelay{400};
  for (int attempt = 0; attempt < 7; ++attempt) {
    const int fd = connect_to(host, port);
    if (fd >= 0) return fd;
    std::this_thread::sleep_for(delay);
    delay = std::min(delay * 2, kMaxDelay);
  }
  return connect_to(host, port);
}

/// Blocking send of a whole frame (sockets stay blocking on the send side;
/// the kernel applies natural backpressure when the server falls behind).
bool send_all(int fd, const Frame& frame) {
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t rc =
        ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(rc);
  }
  return true;
}

/// Reads the server's config echo — the FIRST frame on every accepted
/// connection — off `conn` (bounded wait). The socket is blocking, so the
/// poll bounds the wait; leftover bytes stay in the assembler for the
/// round-result stream.
bool read_server_hello(GenConnection& conn, sfl::service::ServerHello& hello,
                       std::string& error) {
  Frame frame;
  std::byte buffer[1024];
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (!conn.assembler.next_frame(frame)) {
    if (Clock::now() > deadline) {
      error = "timed out waiting for the server's config echo (ServerHello)";
      return false;
    }
    pollfd pfd{.fd = conn.fd, .events = POLLIN, .revents = 0};
    if (::poll(&pfd, 1, 100) <= 0) continue;
    const ssize_t got = ::recv(conn.fd, buffer, sizeof(buffer), 0);
    if (got == 0) {
      error = "server closed the connection before its config echo";
      return false;
    }
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      error = std::string("recv failed waiting for ServerHello: ") +
              std::strerror(errno);
      return false;
    }
    if (!conn.assembler.feed(std::span<const std::byte>(
            buffer, static_cast<std::size_t>(got)))) {
      error =
          "config echo stream condemned: " + conn.assembler.condemned_reason();
      return false;
    }
  }
  try {
    sfl::service::decode(frame, hello);
  } catch (const sfl::dist::WireError& e) {
    error = std::string("bad ServerHello frame: ") + e.what();
    return false;
  }
  return true;
}

/// The knob-mismatch fail-fast: a generator whose round geometry disagrees
/// with the server's would fill buckets the server never clears (or watch
/// rounds clear early) — historically a silent 30 s hang-then-timeout. The
/// server's config echo makes the disagreement detectable up front.
bool hello_matches(const sfl::service::ServerHello& hello,
                   const Options& options, std::string& error) {
  if (hello.bids_per_round != options.bids_per_round) {
    error = "server clears rounds at " + std::to_string(hello.bids_per_round) +
            " bids/round but --bids-per-round=" +
            std::to_string(options.bids_per_round) +
            " was requested; rounds would never clear. Pass --bids-per-round=" +
            std::to_string(hello.bids_per_round) +
            " or restart the server with matching knobs";
    return false;
  }
  if (hello.mechanism != options.engine.mechanism) {
    error = "server runs mechanism '" + hello.mechanism +
            "' but --mechanism=" + options.engine.mechanism +
            " was requested; --verify would compare different auction rules. "
            "Pass --mechanism=" + hello.mechanism +
            " or restart the server with matching knobs";
    return false;
  }
  if (hello.max_winners != options.engine.max_winners) {
    error = "server awards " + std::to_string(hello.max_winners) +
            " winners/round but --winners=" +
            std::to_string(options.engine.max_winners) +
            " was requested; --verify would diverge. Pass --winners=" +
            std::to_string(hello.max_winners) +
            " or restart the server with matching knobs";
    return false;
  }
  return true;
}

/// Everything one tier run accumulates from the response streams.
struct TierState {
  std::vector<std::vector<char>> received;  ///< [market_index][round]
  std::vector<std::vector<RoundResult>> results;
  std::vector<std::uint64_t> cleared_through;  ///< per market, rounds done
  std::vector<std::vector<Clock::time_point>> last_send;
  sfl::stats::LatencyHistogram latency;  ///< microseconds
  std::size_t rounds_received = 0;
  Clock::time_point last_receipt{};
  std::string error;
};

/// Drains whatever responses are readable across all connections.
/// Returns false (with state.error set) on any protocol violation.
bool drain_responses(std::vector<GenConnection>& conns,
                     const WorkloadSpec& spec, TierState& state,
                     int timeout_ms) {
  std::vector<pollfd> pfds;
  pfds.reserve(conns.size());
  for (const GenConnection& conn : conns) {
    pfds.push_back(pollfd{.fd = conn.fd, .events = POLLIN, .revents = 0});
  }
  const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (ready <= 0) return true;

  Frame frame;
  RoundResult result;
  SettlementAck ack;
  std::byte buffer[4096];
  for (std::size_t c = 0; c < conns.size(); ++c) {
    if ((pfds[c].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    GenConnection& conn = conns[c];
    const ssize_t got = ::recv(conn.fd, buffer, sizeof(buffer), MSG_DONTWAIT);
    if (got == 0) {
      state.error = "server closed connection " + std::to_string(c);
      return false;
    }
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      state.error = "recv failed on connection " + std::to_string(c) + ": " +
                    std::strerror(errno);
      return false;
    }
    if (!conn.assembler.feed(
            std::span<const std::byte>(buffer, static_cast<std::size_t>(got)))) {
      state.error = "response stream condemned: " +
                    conn.assembler.condemned_reason();
      return false;
    }
    while (conn.assembler.next_frame(frame)) {
      try {
        const auto [type, payload] = sfl::dist::wire::checked_payload(frame);
        (void)payload;
        if (type == FrameType::kRoundResult) {
          sfl::service::decode(frame, result);
          if (result.market < spec.first_market ||
              result.market >= spec.first_market + spec.markets ||
              result.round >= spec.rounds_per_market) {
            state.error = "RoundResult for unknown (market, round)";
            return false;
          }
          const auto m =
              static_cast<std::size_t>(result.market - spec.first_market);
          const auto r = static_cast<std::size_t>(result.round);
          if (state.received[m][r] != 0) continue;  // duplicate contributor
          state.received[m][r] = 1;
          state.results[m][r] = result;
          while (state.cleared_through[m] < spec.rounds_per_market &&
                 state.received[m][state.cleared_through[m]] != 0) {
            ++state.cleared_through[m];
          }
          const auto now = Clock::now();
          state.latency.record(
              std::chrono::duration<double, std::micro>(
                  now - state.last_send[m][r])
                  .count());
          state.last_receipt = now;
          ++state.rounds_received;
        } else if (type == FrameType::kSettlementAck) {
          sfl::service::decode(frame, ack);  // validated, content unused
        } else {
          state.error = "unexpected frame type from server";
          return false;
        }
      } catch (const sfl::dist::WireError& error) {
        state.error = std::string("bad server frame: ") + error.what();
        return false;
      }
    }
    if (conn.assembler.condemned()) {
      state.error = "response stream condemned: " +
                    conn.assembler.condemned_reason();
      return false;
    }
  }
  return true;
}

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Compares the server's results against the in-process reference, bit for
/// bit. Prints the first divergence found.
bool verify_results(const WorkloadSpec& spec, const MarketEngineConfig& engine,
                    const std::vector<std::vector<RoundResult>>& got) {
  const std::vector<std::vector<RoundResult>> want =
      sfl::service::reference_results(spec, engine);
  for (std::size_t m = 0; m < spec.markets; ++m) {
    for (std::size_t r = 0; r < spec.rounds_per_market; ++r) {
      const RoundResult& g = got[m][r];
      const RoundResult& w = want[m][r];
      bool same = g.winners == w.winners &&
                  g.payments.size() == w.payments.size();
      for (std::size_t i = 0; same && i < g.payments.size(); ++i) {
        same = bits_equal(g.payments[i], w.payments[i]);
      }
      if (!same) {
        std::cerr << "sfl_load_gen: VERIFY FAILED at market "
                  << spec.market_id(m) << " round " << r << " (server "
                  << g.winners.size() << " winners, reference "
                  << w.winners.size() << ")\n";
        return false;
      }
    }
  }
  return true;
}

bool run_tier(const Options& options, std::size_t tier_index,
              std::size_t tier_clients, TierReport& report) {
  WorkloadSpec spec;
  spec.seed = options.engine.seed;
  spec.first_market = tier_index * options.markets;
  spec.markets = options.markets;
  spec.rounds_per_market = options.rounds;
  spec.clients = tier_clients;
  spec.bids_per_round = options.bids_per_round;

  std::vector<GenConnection> conns(options.connections);
  for (std::size_t c = 0; c < conns.size(); ++c) {
    conns[c].fd = connect_with_backoff(options.host, options.port);
    if (conns[c].fd < 0) {
      std::cerr << "sfl_load_gen: cannot connect to " << options.host << ":"
                << options.port << "\n";
      for (GenConnection& conn : conns) {
        if (conn.fd >= 0) ::close(conn.fd);
      }
      return false;
    }
  }

  // Consume every connection's config echo and fail fast on a knob
  // mismatch — BEFORE a single bid is sent.
  for (std::size_t c = 0; c < conns.size(); ++c) {
    sfl::service::ServerHello hello;
    std::string error;
    if (!read_server_hello(conns[c], hello, error) ||
        !hello_matches(hello, options, error)) {
      std::cerr << "sfl_load_gen: " << error << "\n";
      for (GenConnection& conn : conns) {
        if (conn.fd >= 0) ::close(conn.fd);
      }
      return false;
    }
  }

  TierState state;
  state.received.assign(spec.markets,
                        std::vector<char>(spec.rounds_per_market, 0));
  state.results.assign(spec.markets,
                       std::vector<RoundResult>(spec.rounds_per_market));
  state.cleared_through.assign(spec.markets, 0);
  state.last_send.assign(
      spec.markets,
      std::vector<Clock::time_point>(spec.rounds_per_market));

  // Pre-generate every round's rows so send-side work is pure I/O.
  std::vector<std::vector<std::vector<BidRow>>> rows(spec.markets);
  for (std::size_t m = 0; m < spec.markets; ++m) {
    rows[m].resize(spec.rounds_per_market);
    for (std::size_t r = 0; r < spec.rounds_per_market; ++r) {
      sfl::service::workload_rows(spec, m, r, rows[m][r]);
    }
  }

  // Arrival-order shuffles and Poisson gaps come from a stream separate
  // from the economics, so --rate never changes the bid set.
  std::uint64_t arrival_state = spec.seed ^ 0xa5a5a5a5a5a5a5a5ULL;
  sfl::util::Rng arrival_rng(sfl::util::splitmix64(arrival_state) +
                             tier_index);
  SubmitBids submit;
  submit.markets.resize(1);
  submit.rounds.resize(1);
  submit.values.resize(1);
  submit.bids.resize(1);
  submit.energy_costs.resize(1);
  Frame frame;

  // Keep well inside the server's pending-round window (64): stop sending
  // ahead when any market has this many uncleared rounds in flight.
  constexpr std::uint64_t kMaxRoundsAhead = 48;

  bool failed = false;
  const auto start = Clock::now();
  std::vector<std::pair<std::size_t, std::size_t>> events;  // (market, slot)
  std::vector<std::size_t> sent_in_round(spec.markets, 0);
  for (std::size_t r = 0; r < spec.rounds_per_market && !failed; ++r) {
    events.clear();
    for (std::size_t m = 0; m < spec.markets; ++m) {
      sent_in_round[m] = 0;
      for (std::size_t slot = 0; slot < spec.bids_per_round; ++slot) {
        events.emplace_back(m, slot);
      }
    }
    arrival_rng.shuffle(events);
    for (const auto& [m, slot] : events) {
      // Open-loop with a window guard: only throttle when the server is a
      // full pending window behind, which a healthy server never is.
      const auto guard_start = Clock::now();
      while (r >= state.cleared_through[m] + kMaxRoundsAhead) {
        if (!drain_responses(conns, spec, state, /*timeout_ms=*/50)) {
          failed = true;
          break;
        }
        if (Clock::now() - guard_start > std::chrono::seconds(30)) {
          state.error = "server stopped clearing rounds (window guard)";
          failed = true;
          break;
        }
      }
      if (failed) break;
      const BidRow& row = rows[m][r][slot];
      submit.client = row.client;
      submit.markets[0] = spec.market_id(m);
      submit.rounds[0] = r;
      submit.values[0] = row.value;
      submit.bids[0] = row.bid;
      submit.energy_costs[0] = row.energy_cost;
      sfl::service::encode(submit, frame);
      GenConnection& conn = conns[row.client % conns.size()];
      if (!send_all(conn.fd, frame)) {
        state.error = "send failed: " + std::string(std::strerror(errno));
        failed = true;
        break;
      }
      if (++sent_in_round[m] == spec.bids_per_round) {
        state.last_send[m][r] = Clock::now();
      }
      if (options.rate > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            arrival_rng.exponential(options.rate)));
      }
    }
    // Opportunistic drain between round blocks keeps response queues short.
    if (!failed && !drain_responses(conns, spec, state, /*timeout_ms=*/0)) {
      failed = true;
    }
  }

  // Collect the tail: every round must clear, or the run is a failure.
  state.last_receipt = Clock::now();
  while (!failed && state.rounds_received < spec.total_rounds()) {
    if (!drain_responses(conns, spec, state, /*timeout_ms=*/100)) {
      failed = true;
      break;
    }
    if (Clock::now() - state.last_receipt > std::chrono::seconds(30)) {
      state.error = "timed out waiting for round results (" +
                    std::to_string(state.rounds_received) + "/" +
                    std::to_string(spec.total_rounds()) + ")";
      failed = true;
    }
  }
  const auto elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  for (GenConnection& conn : conns) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  if (failed) {
    std::cerr << "sfl_load_gen: tier " << tier_index
              << " failed: " << state.error << "\n";
    return false;
  }

  report.tier = tier_index;
  report.clients = tier_clients;
  report.rounds_per_sec =
      elapsed > 0.0 ? static_cast<double>(spec.total_rounds()) / elapsed : 0.0;
  report.p50_us = state.latency.quantile(0.50);
  report.p99_us = state.latency.quantile(0.99);
  report.p999_us = state.latency.quantile(0.999);
  report.max_us = state.latency.max();
  const bool check_ok =
      !options.verify || verify_results(spec, options.engine, state.results);
  report.verified = options.verify && check_ok;
  return check_ok;
}

void write_json(const Options& options, const std::vector<TierReport>& reports,
                std::ostream& out) {
  out << "{\n  \"bench\": \"service\",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const TierReport& tier = reports[i];
    out << "    {\"tier\": " << tier.tier << ", \"clients\": " << tier.clients
        << ", \"connections\": " << options.connections
        << ", \"markets\": " << options.markets
        << ", \"rounds\": " << options.rounds
        << ", \"bids_per_round\": " << options.bids_per_round
        << ", \"rounds_per_sec\": " << tier.rounds_per_sec
        << ", \"p50_us\": " << tier.p50_us << ", \"p99_us\": " << tier.p99_us
        << ", \"p999_us\": " << tier.p999_us << ", \"max_us\": " << tier.max_us
        << ", \"verified\": " << (tier.verified ? "true" : "false") << "}"
        << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::uint64_t u64 = 0;
  bool have_port = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool ok = true;
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (has_prefix(arg, "--host=")) {
      options.host = flag_value(arg, "--host=");
      ok = !options.host.empty();
    } else if (has_prefix(arg, "--port=")) {
      ok = parse_u64(arg, "--port=", u64) && u64 > 0 && u64 <= 65535;
      options.port = static_cast<std::uint16_t>(u64);
      have_port = ok;
    } else if (has_prefix(arg, "--clients=")) {
      ok = parse_tiers(flag_value(arg, "--clients="), options.client_tiers);
    } else if (has_prefix(arg, "--connections=")) {
      ok = parse_u64(arg, "--connections=", u64) && u64 > 0 && u64 <= 512;
      options.connections = static_cast<std::size_t>(u64);
    } else if (has_prefix(arg, "--markets=")) {
      ok = parse_u64(arg, "--markets=", u64) && u64 > 0;
      options.markets = static_cast<std::size_t>(u64);
    } else if (has_prefix(arg, "--rounds=")) {
      ok = parse_u64(arg, "--rounds=", u64) && u64 > 0;
      options.rounds = static_cast<std::size_t>(u64);
    } else if (has_prefix(arg, "--bids-per-round=")) {
      ok = parse_u64(arg, "--bids-per-round=", u64) && u64 > 0;
      options.bids_per_round = static_cast<std::size_t>(u64);
      options.engine.bids_per_round = options.bids_per_round;
    } else if (has_prefix(arg, "--rate=")) {
      ok = parse_f64(arg, "--rate=", options.rate) && options.rate >= 0.0;
    } else if (has_prefix(arg, "--verify=")) {
      ok = parse_u64(arg, "--verify=", u64) && u64 <= 1;
      options.verify = u64 == 1;
    } else if (has_prefix(arg, "--json=")) {
      options.json_path = flag_value(arg, "--json=");
    } else if (has_prefix(arg, "--mechanism=")) {
      options.engine.mechanism = flag_value(arg, "--mechanism=");
      ok = !options.engine.mechanism.empty();
    } else if (has_prefix(arg, "--winners=")) {
      ok = parse_u64(arg, "--winners=", u64) && u64 > 0;
      options.engine.max_winners = static_cast<std::size_t>(u64);
    } else if (has_prefix(arg, "--budget=")) {
      ok = parse_f64(arg, "--budget=", options.engine.per_round_budget) &&
           options.engine.per_round_budget > 0.0;
    } else if (has_prefix(arg, "--v=")) {
      ok = parse_f64(arg, "--v=", options.engine.v_weight) &&
           options.engine.v_weight > 0.0;
    } else if (has_prefix(arg, "--dist-workers=")) {
      ok = parse_u64(arg, "--dist-workers=", u64);
      options.engine.dist_workers = static_cast<std::size_t>(u64);
    } else if (has_prefix(arg, "--depth=")) {
      ok = parse_u64(arg, "--depth=", u64);
      options.engine.dist_pipeline_depth = static_cast<std::size_t>(u64);
    } else if (has_prefix(arg, "--seed=")) {
      ok = parse_u64(arg, "--seed=", options.engine.seed);
    } else {
      std::cerr << "sfl_load_gen: unknown flag: " << arg << "\n";
      print_usage(std::cerr);
      return 2;
    }
    if (!ok) {
      std::cerr << "sfl_load_gen: invalid value: " << arg << "\n";
      return 2;
    }
  }
  if (!have_port) {
    std::cerr << "sfl_load_gen: --port is required\n";
    print_usage(std::cerr);
    return 2;
  }
  for (const std::size_t tier_clients : options.client_tiers) {
    if (options.bids_per_round > tier_clients) {
      std::cerr << "sfl_load_gen: --bids-per-round must be <= every tier's "
                   "client count\n";
      return 2;
    }
  }

  // Exit 3 when the server is unreachable even after the connect backoff
  // (which absorbs the server-startup race instead of failing on the first
  // ECONNREFUSED).
  {
    const int probe = connect_with_backoff(options.host, options.port);
    if (probe < 0) {
      std::cerr << "sfl_load_gen: cannot connect to " << options.host << ":"
                << options.port << "\n";
      return 3;
    }
    ::close(probe);
  }

  std::vector<TierReport> reports;
  for (std::size_t t = 0; t < options.client_tiers.size(); ++t) {
    TierReport report;
    if (!run_tier(options, t, options.client_tiers[t], report)) {
      return 1;
    }
    reports.push_back(report);
  }

  sfl::util::TablePrinter table({"tier", "clients", "rounds/s", "p50_us",
                                 "p99_us", "p999_us", "verified"});
  for (const TierReport& tier : reports) {
    table.row(tier.tier, tier.clients, tier.rounds_per_sec, tier.p50_us,
              tier.p99_us, tier.p999_us,
              std::string(tier.verified ? "yes" : "n/a"));
  }
  table.print(std::cout);

  if (!options.json_path.empty()) {
    std::ofstream out(options.json_path);
    if (!out) {
      std::cerr << "sfl_load_gen: cannot write " << options.json_path << "\n";
      return 1;
    }
    write_json(options, reports, out);
    std::cout << "wrote " << options.json_path << "\n";
  }
  return 0;
}
