// sfl_auction_server: the persistent auction service as its own process.
//
// A thin main() over service::AuctionService — binds 127.0.0.1:P, prints
//
//   sfl_auction_server listening on 127.0.0.1:<port>
//
// on stdout (flushed, so a spawning harness can parse the port), and serves
// SubmitBids / RoundResult / SettlementAck traffic until SIGTERM/SIGINT.
// Exit codes: 0 on clean shutdown, 2 on bad usage, 3 when the socket cannot
// be bound (sandboxed environments).
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "service/auction_service.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_stop_signal(int) { g_stop = 1; }

void print_usage(std::ostream& out) {
  out << "usage: sfl_auction_server [flags]\n"
         "\n"
         "Persistent auction service front-end (multi-client TCP server).\n"
         "\n"
         "  --port=P             bind 127.0.0.1:P (default 0 = ephemeral)\n"
         "  --mechanism=KEY      registry key (default lto-vcg-dist-pipe)\n"
         "  --bids-per-round=N   bids that clear a market round (default 32)\n"
         "  --winners=M          max winners per round (default 8)\n"
         "  --budget=B           per-round payment budget (default 6.0)\n"
         "  --v=V                Lyapunov V weight (default 10.0)\n"
         "  --dist-workers=W     shard workers for dist keys (0 = default)\n"
         "  --depth=D            pipeline depth for dist-pipe (0 = default)\n"
         "  --seed=S             seed for randomized rules (default 42)\n"
         "  --help               show this message and exit\n"
         "\n"
         "Prints 'sfl_auction_server listening on 127.0.0.1:<port>' once\n"
         "serving; runs until SIGTERM/SIGINT. Exit codes: 0 clean, 2 bad\n"
         "usage, 3 socket cannot be bound.\n";
}

bool parse_u64(const std::string& arg, const char* flag, std::uint64_t& out) {
  const std::string prefix = flag;
  char* end = nullptr;
  const unsigned long long value =
      std::strtoull(arg.c_str() + prefix.size(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  out = value;
  return true;
}

bool parse_f64(const std::string& arg, const char* flag, double& out) {
  const std::string prefix = flag;
  char* end = nullptr;
  const double value = std::strtod(arg.c_str() + prefix.size(), &end);
  if (end == nullptr || *end != '\0') return false;
  out = value;
  return true;
}

bool has_prefix(const std::string& arg, const char* prefix) {
  return arg.rfind(prefix, 0) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  sfl::service::AuctionServiceConfig config;
  std::uint64_t port = 0;
  std::uint64_t u64 = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool ok = true;
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (has_prefix(arg, "--port=")) {
      ok = parse_u64(arg, "--port=", port) && port <= 65535;
      config.port = static_cast<std::uint16_t>(port);
    } else if (has_prefix(arg, "--mechanism=")) {
      config.engine.mechanism = arg.substr(std::string("--mechanism=").size());
      ok = !config.engine.mechanism.empty();
    } else if (has_prefix(arg, "--bids-per-round=")) {
      ok = parse_u64(arg, "--bids-per-round=", u64) && u64 > 0;
      config.engine.bids_per_round = static_cast<std::size_t>(u64);
    } else if (has_prefix(arg, "--winners=")) {
      ok = parse_u64(arg, "--winners=", u64) && u64 > 0;
      config.engine.max_winners = static_cast<std::size_t>(u64);
    } else if (has_prefix(arg, "--budget=")) {
      ok = parse_f64(arg, "--budget=", config.engine.per_round_budget) &&
           config.engine.per_round_budget > 0.0;
    } else if (has_prefix(arg, "--v=")) {
      ok = parse_f64(arg, "--v=", config.engine.v_weight) &&
           config.engine.v_weight > 0.0;
    } else if (has_prefix(arg, "--dist-workers=")) {
      ok = parse_u64(arg, "--dist-workers=", u64);
      config.engine.dist_workers = static_cast<std::size_t>(u64);
    } else if (has_prefix(arg, "--depth=")) {
      ok = parse_u64(arg, "--depth=", u64);
      config.engine.dist_pipeline_depth = static_cast<std::size_t>(u64);
    } else if (has_prefix(arg, "--seed=")) {
      ok = parse_u64(arg, "--seed=", config.engine.seed);
    } else {
      std::cerr << "sfl_auction_server: unknown flag: " << arg << "\n";
      print_usage(std::cerr);
      return 2;
    }
    if (!ok) {
      std::cerr << "sfl_auction_server: invalid value: " << arg << "\n";
      return 2;
    }
  }

  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);

  try {
    sfl::service::AuctionService service(config);
    service.start();
    // The parse-friendly startup line a spawning harness waits for.
    std::cout << "sfl_auction_server listening on 127.0.0.1:" << service.port()
              << std::endl;
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    service.stop();
    const sfl::service::ServiceStats stats = service.stats();
    std::cout << "sfl_auction_server: " << stats.connections_accepted
              << " connections, " << stats.bids_received << " bids, "
              << stats.rounds_cleared << " rounds cleared, shutting down\n";
  } catch (const std::exception& error) {
    std::cerr << "sfl_auction_server: cannot serve: " << error.what() << "\n";
    return 3;
  }
  return 0;
}
