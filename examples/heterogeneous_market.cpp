// Heterogeneous market: skewed data sizes, a noisy-label cohort, and
// heavy-tailed costs. Compares the LTO-VCG mechanism against two baselines
// on the same scenario and reports per-cohort participation — the "who gets
// bought, at what price" view of the federation.
//
// Usage: heterogeneous_market [rounds=150] [clients=32] [budget=5.0]
#include <iostream>
#include <memory>

#include "auction/registry.h"
#include "core/orchestrator.h"
#include "fl/logistic_regression.h"
#include "stats/summary.h"
#include "util/config.h"
#include "util/table.h"

namespace {

struct NamedRun {
  std::string name;
  sfl::core::RunResult result;
};

sfl::core::RunResult run_one(const sfl::sim::Scenario& scenario,
                             const sfl::sim::ScenarioSpec& sspec,
                             std::unique_ptr<sfl::auction::Mechanism> mechanism,
                             const sfl::core::OrchestratorConfig& config) {
  sfl::fl::LocalTrainingSpec training;
  training.local_steps = 5;
  training.batch_size = 32;
  training.optimizer.learning_rate = 0.1;
  auto model = std::make_unique<sfl::fl::LogisticRegression>(
      sspec.feature_dim, sspec.num_classes, 1e-4);
  sfl::core::SustainableFlOrchestrator orchestrator(
      scenario, std::move(model), training, std::move(mechanism), config);
  return orchestrator.run();
}

}  // namespace

int main(int argc, char** argv) {
  const sfl::util::Config args = sfl::util::Config::from_args(argc, argv);

  sfl::sim::ScenarioSpec sspec;
  sspec.num_clients = args.get_size("clients", 32);
  sspec.train_examples = args.get_size("train", 3200);
  sspec.test_examples = 800;
  sspec.partition = sfl::sim::PartitionKind::kQuantitySkew;
  sspec.quantity_sigma = 1.0;
  sspec.noisy_client_fraction = 0.25;
  sspec.noisy_flip_probability = 0.5;
  sspec.seed = args.get_size("seed", 7);
  const sfl::sim::Scenario scenario = sfl::sim::build_scenario(sspec);

  sfl::core::OrchestratorConfig config;
  config.rounds = args.get_size("rounds", 150);
  config.max_winners = args.get_size("winners", 8);
  config.per_round_budget = args.get_double("budget", 5.0);
  config.cost.base_sigma = 0.6;  // heavy-tailed cost heterogeneity
  config.seed = sspec.seed;

  sfl::auction::MechanismConfig mc;
  mc.num_clients = sspec.num_clients;
  mc.per_round_budget = config.per_round_budget;
  mc.seed = sspec.seed;

  std::vector<NamedRun> runs;
  for (const std::string& name : {"lto-vcg", "myopic-vcg", "random-stipend"}) {
    runs.push_back({name, run_one(scenario, sspec,
                                  sfl::auction::build_mechanism(name, mc),
                                  config)});
  }

  std::cout << "Heterogeneous federated market — " << sspec.num_clients
            << " clients, 25% noisy labels, quantity-skewed shards\n\n";
  sfl::util::TablePrinter summary({"mechanism", "accuracy", "welfare",
                                   "payment/round", "budget_viol",
                                   "noisy_share"});
  const std::size_t noisy_start =
      sspec.num_clients - (sspec.num_clients + 3) / 4;  // ceil(25%)
  for (const auto& run : runs) {
    double noisy_wins = 0.0;
    double total_wins = 0.0;
    for (std::size_t c = 0; c < sspec.num_clients; ++c) {
      total_wins += run.result.participation_counts[c];
      if (c >= noisy_start) noisy_wins += run.result.participation_counts[c];
    }
    summary.row(run.name, run.result.final_accuracy,
                run.result.cumulative_welfare, run.result.average_payment,
                run.result.budget_violation,
                total_wins > 0 ? noisy_wins / total_wins : 0.0);
  }
  summary.print(std::cout);

  std::cout << "\nPer-cohort detail (lto-vcg): reputation discovers the noisy "
               "cohort\n";
  sfl::util::TablePrinter cohorts(
      {"cohort", "mean_reputation", "mean_wins", "mean_utility"});
  const auto& lto = runs.front().result;
  double clean_rep = 0.0;
  double clean_wins = 0.0;
  double clean_util = 0.0;
  double noisy_rep = 0.0;
  double noisy_wins2 = 0.0;
  double noisy_util = 0.0;
  for (std::size_t c = 0; c < sspec.num_clients; ++c) {
    if (c < noisy_start) {
      clean_rep += lto.final_reputation[c];
      clean_wins += lto.participation_counts[c];
      clean_util += lto.client_utilities[c];
    } else {
      noisy_rep += lto.final_reputation[c];
      noisy_wins2 += lto.participation_counts[c];
      noisy_util += lto.client_utilities[c];
    }
  }
  const double n_clean = static_cast<double>(noisy_start);
  const double n_noisy = static_cast<double>(sspec.num_clients - noisy_start);
  cohorts.row("clean-labels", clean_rep / n_clean, clean_wins / n_clean,
              clean_util / n_clean);
  cohorts.row("noisy-labels", noisy_rep / n_noisy, noisy_wins2 / n_noisy,
              noisy_util / n_noisy);
  cohorts.print(std::cout);

  std::cout << "\nParticipation fairness (Jain index, lto-vcg): "
            << sfl::stats::jain_fairness_index(lto.participation_counts)
            << "\n";
  return 0;
}
