// E2 (Figure): cumulative social welfare vs rounds in the auction-only
// market. Shows the mechanism ordering the paper class reports: the
// clairvoyant first-best upper bound, LTO-VCG close behind (paying the
// truthfulness premium and honouring the budget), and the naive baselines
// below.
#include "auction/adaptive_price.h"
#include "bench_common.h"

#include "util/string_utils.h"

int main() {
  using namespace sfl;
  bench::banner("E2", "cumulative social welfare vs rounds");

  const core::MarketSpec spec = bench::canonical_market_spec();

  struct Entry {
    std::string name;
    core::MarketResult result;
  };
  std::vector<Entry> entries;

  {
    core::LtoVcgConfig lto;
    lto.v_weight = 10.0;
    lto.per_round_budget = spec.per_round_budget;
    core::LongTermOnlineVcgMechanism mech(lto);
    entries.push_back({"lto-vcg", core::run_market(mech, spec)});
  }
  {
    auction::MyopicVcgMechanism mech;
    entries.push_back({"myopic-vcg", core::run_market(mech, spec)});
  }
  {
    auction::PayAsBidGreedyMechanism mech;
    entries.push_back({"pay-as-bid", core::run_market(mech, spec)});
  }
  {
    auction::FixedPriceMechanism mech(1.0);
    entries.push_back({"fixed-price", core::run_market(mech, spec)});
  }
  {
    auction::AdaptivePostedPriceMechanism mech(auction::AdaptivePriceConfig{});
    entries.push_back({"adaptive-price", core::run_market(mech, spec)});
  }
  {
    auction::RandomSelectionMechanism mech(1.0, spec.seed);
    entries.push_back({"random-stipend", core::run_market(mech, spec)});
  }
  {
    auction::ProportionalShareMechanism mech;
    entries.push_back({"proportional-share", core::run_market(mech, spec)});
  }
  {
    auction::FirstBestOracleMechanism mech;
    entries.push_back({"first-best-oracle", core::run_market(mech, spec)});
  }

  // Cumulative welfare sampled at 10 checkpoints.
  std::vector<std::string> header{"round"};
  for (const auto& e : entries) header.push_back(e.name);
  util::TablePrinter series(header);
  const std::size_t step = spec.rounds / 10;
  std::vector<double> cumulative(entries.size(), 0.0);
  std::size_t next_checkpoint = step;
  for (std::size_t t = 0; t < spec.rounds; ++t) {
    for (std::size_t i = 0; i < entries.size(); ++i) {
      cumulative[i] += entries[i].result.welfare_series[t];
    }
    if (t + 1 == next_checkpoint || t + 1 == spec.rounds) {
      std::vector<std::string> row{std::to_string(t + 1)};
      for (const double c : cumulative) {
        row.push_back(util::format_double(c, 1));
      }
      series.add_row(std::move(row));
      next_checkpoint += step;
    }
  }
  series.print(std::cout);

  std::cout << "\nSummary (time-average welfare per round; oracle = 100%):\n";
  const double oracle = entries.back().result.time_average_welfare;
  util::TablePrinter summary({"mechanism", "avg_welfare", "% of first-best",
                              "avg_payment", "IR"});
  for (const auto& e : entries) {
    summary.row(e.name, e.result.time_average_welfare,
                util::format_double(100.0 * e.result.time_average_welfare /
                                        oracle, 1) + "%",
                e.result.average_payment, e.result.ir_fraction);
  }
  summary.print(std::cout);
  return 0;
}
