// E2 (Figure): cumulative social welfare vs rounds in the auction-only
// market. Shows the mechanism ordering the paper class reports: the
// clairvoyant first-best upper bound, LTO-VCG close behind (paying the
// truthfulness premium and honouring the budget), and the naive baselines
// below.
#include "bench_common.h"

#include "util/string_utils.h"

int main() {
  using namespace sfl;
  bench::banner("E2", "cumulative social welfare vs rounds");

  const core::MarketSpec spec = bench::canonical_market_spec();
  const auction::MechanismConfig mc = bench::market_mechanism_config(spec);

  struct Entry {
    std::string name;
    core::MarketResult result;
  };
  std::vector<Entry> entries;

  // first-best-oracle last: the summary below uses it as the 100% bar.
  const std::vector<std::string> names{
      "lto-vcg",        "myopic-vcg",     "pay-as-bid",
      "fixed-price",    "adaptive-price", "random-stipend",
      "proportional-share", "first-best-oracle"};
  for (const std::string& name : names) {
    const auto mechanism = auction::build_mechanism(name, mc);
    entries.push_back({name, core::run_market(*mechanism, spec)});
  }

  // Cumulative welfare sampled at 10 checkpoints.
  std::vector<std::string> header{"round"};
  for (const auto& e : entries) header.push_back(e.name);
  util::TablePrinter series(header);
  const std::size_t step = spec.rounds / 10;
  std::vector<double> cumulative(entries.size(), 0.0);
  std::size_t next_checkpoint = step;
  for (std::size_t t = 0; t < spec.rounds; ++t) {
    for (std::size_t i = 0; i < entries.size(); ++i) {
      cumulative[i] += entries[i].result.welfare_series[t];
    }
    if (t + 1 == next_checkpoint || t + 1 == spec.rounds) {
      std::vector<std::string> row{std::to_string(t + 1)};
      for (const double c : cumulative) {
        row.push_back(util::format_double(c, 1));
      }
      series.add_row(std::move(row));
      next_checkpoint += step;
    }
  }
  series.print(std::cout);

  std::cout << "\nSummary (time-average welfare per round; oracle = 100%):\n";
  const double oracle = entries.back().result.time_average_welfare;
  util::TablePrinter summary({"mechanism", "avg_welfare", "% of first-best",
                              "avg_payment", "IR"});
  for (const auto& e : entries) {
    summary.row(e.name, e.result.time_average_welfare,
                util::format_double(100.0 * e.result.time_average_welfare /
                                        oracle, 1) + "%",
                e.result.average_payment, e.result.ir_fraction);
  }
  summary.print(std::cout);
  return 0;
}
