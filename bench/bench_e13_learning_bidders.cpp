// E13 (Figure): empirical game dynamics with learning bidders.
//
// Clients are EXP3 bandits over bid factors {0.7, 1.0, 1.5, 2.0} instead of
// obedient truthful reporters. The population's mean bid factor over time is
// the market's strategic trajectory: DSIC mechanisms (LTO-VCG, myopic VCG)
// pull it to 1.0; pay-as-bid drifts it to sustained overbidding, degrading
// the welfare the server thinks it is buying. This is the empirical
// counterpart of the E4/E5 one-shot deviation checks.
#include "bench_common.h"
#include "core/adaptive_market.h"

int main() {
  using namespace sfl;
  bench::banner("E13", "learning bidders: bid-factor dynamics per mechanism");

  core::MarketSpec spec = bench::canonical_market_spec(55);
  spec.num_clients = 30;  // small enough that most clients trade and learn
  spec.max_winners = 8;
  spec.rounds = bench::scaled(8000);

  core::AdaptiveMarketConfig config;
  config.learner.factor_grid = {0.7, 1.0, 1.5, 2.0};
  config.learner.exploration = 0.08;
  config.learner.reward_scale = 4.0;
  config.sample_every = spec.rounds / 10;

  struct Entry {
    std::string name;
    core::AdaptiveMarketResult result;
  };
  std::vector<Entry> entries;
  const auction::MechanismConfig mc = bench::market_mechanism_config(spec);
  for (const std::string& name : {"lto-vcg", "myopic-vcg", "pay-as-bid"}) {
    const auto mech = auction::build_mechanism(name, mc);
    entries.push_back({name, core::run_adaptive_market(*mech, spec, config)});
  }

  // Winning-bid-factor trajectory (the factor trades actually happen at).
  std::vector<std::string> header{"window end"};
  for (const auto& e : entries) header.push_back(e.name);
  util::TablePrinter series(header);
  const std::size_t samples = entries.front().result.winner_factor_series.size();
  for (std::size_t s = 0; s < samples; ++s) {
    std::vector<std::string> row{
        std::to_string((s + 1) * entries.front().result.sample_every)};
    for (const auto& e : entries) {
      row.push_back(util::format_double(e.result.winner_factor_series[s], 4));
    }
    series.add_row(std::move(row));
  }
  series.print(std::cout);

  std::cout << "\nEnd state:\n";
  util::TablePrinter summary({"mechanism", "final winner factor",
                              "final mean factor", "truthful modal %",
                              "welfare", "payment"});
  for (const auto& e : entries) {
    summary.row(e.name, e.result.final_winner_factor,
                e.result.final_mean_factor,
                100.0 * e.result.truthful_modal_fraction,
                e.result.cumulative_welfare, e.result.cumulative_payment);
  }
  summary.print(std::cout);
  std::cout << "\nReading: learning populations rediscover the theory — "
               "truthful arms dominate under the VCG-style rules, overbids "
               "dominate under pay-as-bid.\n";
  return 0;
}
