// E6 (Figure): the Lyapunov V tradeoff.
//
// Sweeping the penalty weight V exposes the three signature behaviours of
// drift-plus-penalty control:
//  1. time-average payment is pinned to B-bar for EVERY V (the queue
//     enforces the long-term constraint exactly);
//  2. time-average welfare increases in V with diminishing returns — the
//     O(1/V) optimality-gap model fits the sweep (R^2 reported);
//  3. average queue backlog grows linearly in V (log-log slope ~ +1),
//     which is also the memory/transient cost of choosing a large V.
#include <cmath>

#include "bench_common.h"
#include "stats/summary.h"

int main() {
  using namespace sfl;
  bench::banner("E6", "welfare saturation O(1/V) vs queue backlog O(V)");

  core::MarketSpec spec = bench::canonical_market_spec();
  spec.rounds = bench::scaled(6000);

  const std::vector<double> v_values{1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0};

  const auto run_with_v = [&](double v) {
    const auto mech = auction::build_mechanism(
        "lto-vcg", bench::market_mechanism_config(spec, v));
    return core::run_market(*mech, spec);
  };

  std::vector<double> welfare(v_values.size());
  std::vector<double> backlog(v_values.size());
  std::vector<double> avg_payment(v_values.size());
  for (std::size_t i = 0; i < v_values.size(); ++i) {
    const core::MarketResult result = run_with_v(v_values[i]);
    welfare[i] = result.time_average_welfare;
    backlog[i] = result.average_budget_backlog;
    avg_payment[i] = result.average_payment;
  }

  util::TablePrinter table({"V", "avg_welfare", "welfare_gain_vs_prev",
                            "avg_backlog", "avg_payment"});
  for (std::size_t i = 0; i < v_values.size(); ++i) {
    table.row(v_values[i], welfare[i],
              i == 0 ? 0.0 : welfare[i] - welfare[i - 1], backlog[i],
              avg_payment[i]);
  }
  table.print(std::cout);

  // O(1/V) model: welfare(V) = w_inf - c / V is linear in 1/V.
  std::vector<double> inv_v;
  inv_v.reserve(v_values.size());
  for (const double v : v_values) inv_v.push_back(1.0 / v);
  const auto welfare_fit = stats::linear_fit(inv_v, welfare);

  // O(V) backlog: log-log slope.
  std::vector<double> log_v;
  std::vector<double> log_backlog;
  for (std::size_t i = 0; i < v_values.size(); ++i) {
    log_v.push_back(std::log(v_values[i]));
    log_backlog.push_back(std::log(std::max(backlog[i], 1e-9)));
  }
  const auto backlog_fit = stats::linear_fit(log_v, log_backlog);

  std::cout << "\nO(1/V) welfare model  welfare = w_inf - c/V:\n"
            << "  w_inf = " << welfare_fit.intercept
            << ", c = " << -welfare_fit.slope
            << ", R^2 = " << welfare_fit.r_squared
            << "  (theory: good linear fit in 1/V)\n";
  std::cout << "O(V) backlog model    log backlog vs log V:\n"
            << "  slope = " << backlog_fit.slope
            << ", R^2 = " << backlog_fit.r_squared
            << "  (theory: slope +1)\n";
  std::cout << "Budget enforcement: avg payment within "
            << util::format_double(
                   100.0 * (*std::max_element(avg_payment.begin(),
                                              avg_payment.end()) /
                                spec.per_round_budget -
                            1.0),
                   3)
            << "% of B-bar across the entire sweep.\n";
  return 0;
}
