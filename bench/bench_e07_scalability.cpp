// E7 (Table): winner-determination + payment scalability (google-benchmark).
//
// Wall time of one full auction round (WDP + truthful payments) as the
// market grows: the production top-m path at N up to 100k clients, the
// knapsack DP used by budget-capped variants, and the exhaustive oracle
// (tiny N only). Regenerates the paper-style "mechanism overhead is
// negligible next to a training round" table.
#include <benchmark/benchmark.h>

#include "auction/payments.h"
#include "auction/random_instance.h"
#include "auction/valuation.h"
#include "auction/winner_determination.h"
#include "util/rng.h"

namespace {

using namespace sfl::auction;

RandomInstance make_instance(std::size_t n) {
  sfl::util::Rng rng(1234 + n);
  RandomInstanceSpec spec;
  spec.num_candidates = n;
  return make_random_instance(spec, rng);
}

void BM_TopMWithCriticalPayments(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const RandomInstance instance = make_instance(n);
  const ScoreWeights weights{10.0, 12.5};
  const std::size_t m = 10;
  for (auto _ : state) {
    const Allocation alloc = select_top_m(instance.candidates, weights, m);
    const auto payments =
        critical_payments(instance.candidates, weights, m, alloc);
    benchmark::DoNotOptimize(payments.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
// nth_element partial selection makes one full round O(n + m log m).
BENCHMARK(BM_TopMWithCriticalPayments)
    ->RangeMultiplier(10)
    ->Range(100, 100000)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity(benchmark::oN);

void BM_TopMWithCriticalPaymentsBatchSoA(benchmark::State& state) {
  // The production batch path: SoA scoring + nth_element selection +
  // span-based critical payments, no AoS materialization anywhere.
  const auto n = static_cast<std::size_t>(state.range(0));
  const RandomInstance instance = make_instance(n);
  const CandidateBatch batch = CandidateBatch::from_aos(instance.candidates);
  const ScoreWeights weights{10.0, 12.5};
  const std::size_t m = 10;
  for (auto _ : state) {
    const Allocation alloc = select_top_m(batch, weights, m);
    const auto payments = critical_payments(batch, weights, m, alloc);
    benchmark::DoNotOptimize(payments.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TopMWithCriticalPaymentsBatchSoA)
    ->RangeMultiplier(10)
    ->Range(100, 100000)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity(benchmark::oN);

void BM_TopMWithVcgExternalityPayments(benchmark::State& state) {
  // VCG externality payments re-solve the WDP per winner: O(m) x WDP.
  const auto n = static_cast<std::size_t>(state.range(0));
  const RandomInstance instance = make_instance(n);
  const ScoreWeights weights{10.0, 12.5};
  const std::size_t m = 10;
  const WdpSolver solver = [](const std::vector<Candidate>& c,
                              const ScoreWeights& w, std::size_t k,
                              const Penalties& p) {
    return select_top_m(c, w, k, p);
  };
  for (auto _ : state) {
    const Allocation alloc = select_top_m(instance.candidates, weights, m);
    const auto payments =
        vcg_payments(instance.candidates, weights, m, alloc, solver);
    benchmark::DoNotOptimize(payments.data());
  }
}
BENCHMARK(BM_TopMWithVcgExternalityPayments)
    ->RangeMultiplier(10)
    ->Range(100, 10000)
    ->Unit(benchmark::kMicrosecond);

void BM_KnapsackDp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const RandomInstance instance = make_instance(n);
  const ScoreWeights weights{1.0, 1.0};
  for (auto _ : state) {
    const Allocation alloc =
        select_knapsack(instance.candidates, weights, 10.0, 10, 0.05);
    benchmark::DoNotOptimize(alloc.selected.data());
  }
}
BENCHMARK(BM_KnapsackDp)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMicrosecond);

void BM_ExhaustiveOracle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const RandomInstance instance = make_instance(n);
  const ScoreWeights weights{1.0, 1.0};
  for (auto _ : state) {
    const Allocation alloc = select_exhaustive(instance.candidates, weights, 5);
    benchmark::DoNotOptimize(alloc.selected.data());
  }
}
BENCHMARK(BM_ExhaustiveOracle)
    ->DenseRange(8, 20, 4)
    ->Unit(benchmark::kMicrosecond);

void BM_GreedyConcave(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const RandomInstance instance = make_instance(n);
  const ConcaveValuation valuation(20.0);
  const ScoreWeights weights{1.0, 1.0};
  for (auto _ : state) {
    const Allocation alloc =
        select_greedy_concave(instance.candidates, valuation, weights, 10);
    benchmark::DoNotOptimize(alloc.selected.data());
  }
}
BENCHMARK(BM_GreedyConcave)
    ->RangeMultiplier(10)
    ->Range(100, 10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
