// E7 (Table): winner-determination + payment scalability (google-benchmark).
//
// Wall time of one full auction round (WDP + truthful payments) as the
// market grows: the production top-m path at N up to 1M clients — serial
// allocating, serial scratch-reusing (zero-allocation), and sharded
// parallel (explicit shard counts and shards=auto) — plus the knapsack DP
// used by budget-capped variants and the exhaustive oracle (tiny N only),
// and the parallel comparison-oracle families (VCG externality payments,
// knapsack DP layers, concave-greedy scan) on a {size, threads} grid.
// Regenerates the paper-style "mechanism overhead is negligible next to a
// training round" table.
//
// Before any timing, main() runs a serial-vs-sharded equivalence sweep and
// exits non-zero on any mismatch, so the ctest smoke target turns a merge-
// logic regression into a build failure, not a silently wrong bench.
//
// `--json=<path>` writes BENCH_e07.json with per-N/per-variant wall times
// (see BenchJsonWriter in bench_common.h); REPRO_FAST=1 caps N for smoke
// runs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "auction/market_batch.h"
#include "auction/payments.h"
#include "auction/random_instance.h"
#include "auction/round_scratch.h"
#include "auction/sharded_wdp.h"
#include "auction/valuation.h"
#include "auction/winner_determination.h"
#include "bench_common.h"
#include "core/async_settler.h"
#include "core/long_term_online_vcg.h"
#include "dist/distributed_wdp.h"
#include "dist/loopback_transport.h"
#include "util/config.h"
#include "util/rng.h"

namespace {

using namespace sfl::auction;

/// Full-scale N for the top-m benches; smoke runs shrink it so CI finishes
/// in seconds.
std::int64_t scal_max_n() {
  return sfl::util::fast_mode_enabled() ? 10'000 : 1'000'000;
}

RandomInstance make_instance(std::size_t n) {
  sfl::util::Rng rng(1234 + n);
  RandomInstanceSpec spec;
  spec.num_candidates = n;
  return make_random_instance(spec, rng);
}

void BM_TopMWithCriticalPayments(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const RandomInstance instance = make_instance(n);
  const ScoreWeights weights{10.0, 12.5};
  const std::size_t m = 10;
  for (auto _ : state) {
    const Allocation alloc = select_top_m(instance.candidates, weights, m);
    const auto payments =
        critical_payments(instance.candidates, weights, m, alloc);
    benchmark::DoNotOptimize(payments.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
// nth_element partial selection makes one full round O(n + m log m).
BENCHMARK(BM_TopMWithCriticalPayments)
    ->RangeMultiplier(10)
    ->Range(100, scal_max_n())
    ->Unit(benchmark::kMicrosecond)
    ->Complexity(benchmark::oN);

void BM_TopMWithCriticalPaymentsBatchSoA(benchmark::State& state) {
  // The allocating batch path: SoA scoring + nth_element selection +
  // span-based critical payments, no AoS materialization anywhere.
  const auto n = static_cast<std::size_t>(state.range(0));
  const RandomInstance instance = make_instance(n);
  const CandidateBatch batch = CandidateBatch::from_aos(instance.candidates);
  const ScoreWeights weights{10.0, 12.5};
  const std::size_t m = 10;
  for (auto _ : state) {
    const Allocation alloc = select_top_m(batch, weights, m);
    const auto payments = critical_payments(batch, weights, m, alloc);
    benchmark::DoNotOptimize(payments.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TopMWithCriticalPaymentsBatchSoA)
    ->RangeMultiplier(10)
    ->Range(100, scal_max_n())
    ->Unit(benchmark::kMicrosecond)
    ->Complexity(benchmark::oN);

void BM_FullRoundScratchSerial(benchmark::State& state) {
  // Scratch-reusing serial engine round: identical results to the
  // allocating path, zero heap allocations after the first iteration.
  const auto n = static_cast<std::size_t>(state.range(0));
  const RandomInstance instance = make_instance(n);
  const CandidateBatch batch = CandidateBatch::from_aos(instance.candidates);
  const ScoreWeights weights{10.0, 12.5};
  const std::size_t m = 10;
  const ShardedWdp engine{ShardedWdpConfig{.shards = 1}};
  RoundScratch scratch;
  for (auto _ : state) {
    engine.run_round(batch, weights, m, {}, scratch);
    benchmark::DoNotOptimize(scratch.payments.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FullRoundScratchSerial)
    ->RangeMultiplier(10)
    ->Range(100, scal_max_n())
    ->Unit(benchmark::kMicrosecond)
    ->Complexity(benchmark::oN);

void BM_FullRoundSharded(benchmark::State& state) {
  // Explicit shard counts: arg0 = N, arg1 = shards. The serial-vs-sharded
  // speedup at a given core count reads off this family vs ScratchSerial.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  const RandomInstance instance = make_instance(n);
  const CandidateBatch batch = CandidateBatch::from_aos(instance.candidates);
  const ScoreWeights weights{10.0, 12.5};
  const std::size_t m = 10;
  const ShardedWdp engine{ShardedWdpConfig{.shards = shards}};
  RoundScratch scratch;
  for (auto _ : state) {
    engine.run_round(batch, weights, m, {}, scratch);
    benchmark::DoNotOptimize(scratch.payments.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FullRoundSharded)
    ->ArgsProduct({benchmark::CreateRange(10'000, scal_max_n(), 10), {2, 4, 8}})
    ->Unit(benchmark::kMicrosecond);

void BM_FullRoundShardedAuto(benchmark::State& state) {
  // shards=0: one shard per hardware thread (auto mode also keeps spans
  // >= 4096 candidates, so small N stays effectively serial).
  const auto n = static_cast<std::size_t>(state.range(0));
  const RandomInstance instance = make_instance(n);
  const CandidateBatch batch = CandidateBatch::from_aos(instance.candidates);
  const ScoreWeights weights{10.0, 12.5};
  const std::size_t m = 10;
  const ShardedWdp engine{ShardedWdpConfig{.shards = 0}};
  RoundScratch scratch;
  for (auto _ : state) {
    engine.run_round(batch, weights, m, {}, scratch);
    benchmark::DoNotOptimize(scratch.payments.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FullRoundShardedAuto)
    ->RangeMultiplier(10)
    ->Range(100, scal_max_n())
    ->Unit(benchmark::kMicrosecond);

void BM_MegaBatchMarkets(benchmark::State& state) {
  // The cross-market batch axis: arg0 = MARKET count (not rows), each a
  // small independent round of kRowsPerMarket candidates carved zero-copy
  // (view mode) out of one flat arena, cleared by ONE run_rounds call that
  // partitions markets across the pool lanes and scores with the SIMD
  // kernels. items/sec == markets/sec; compare time/market here against
  // BM_FullRoundScratchSerial at n = kRowsPerMarket to read off the
  // amortization win over clearing the markets one engine call at a time.
  constexpr std::size_t kRowsPerMarket = 32;
  const auto market_count = static_cast<std::size_t>(state.range(0));
  const RandomInstance instance = make_instance(market_count * kRowsPerMarket);
  const CandidateBatch arena = CandidateBatch::from_aos(instance.candidates);

  MarketBatch markets;
  markets.bind_arena(arena);
  markets.reserve(market_count, arena.size());
  const ScoreWeights weights{10.0, 12.5};
  for (std::size_t k = 0; k < market_count; ++k) {
    markets.add_market_view(k * kRowsPerMarket, kRowsPerMarket,
                            /*max_winners=*/4, weights);
  }

  const ShardedWdp engine{ShardedWdpConfig{.shards = 0}};
  MarketBatchResult result;
  RoundScratch scratch;
  for (auto _ : state) {
    engine.run_rounds(markets, result, scratch);
    benchmark::DoNotOptimize(result.market_count());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * market_count));
}
BENCHMARK(BM_MegaBatchMarkets)
    ->RangeMultiplier(10)
    ->Range(1'000, sfl::util::fast_mode_enabled() ? 1'000 : 100'000)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void BM_FullRoundDistributedLoopback(benchmark::State& state) {
  // The distributed coordinator over the in-process loopback transport:
  // arg0 = N, arg1 = workers (= shards). Pays the full wire-codec
  // round-trip per shard (encode span, decode request, encode/decode
  // survivors), so the gap to BM_FullRoundScratchSerial is the
  // serialization + coordination overhead a real deployment amortizes
  // against network-parallel scoring.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  const RandomInstance instance = make_instance(n);
  const CandidateBatch batch = CandidateBatch::from_aos(instance.candidates);
  const ScoreWeights weights{10.0, 12.5};
  const std::size_t m = 10;
  const sfl::dist::DistributedWdp engine{
      sfl::dist::DistributedWdpConfig{.workers = workers}};
  RoundScratch scratch;
  for (auto _ : state) {
    engine.run_round(batch, weights, m, {}, scratch);
    benchmark::DoNotOptimize(scratch.payments.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FullRoundDistributedLoopback)
    ->ArgsProduct({benchmark::CreateRange(10'000, scal_max_n(), 10), {2, 4}})
    ->Unit(benchmark::kMicrosecond);

void BM_PipelinedDistributedStraggler(benchmark::State& state) {
  // Multi-round pipelining under scripted straggler delays: arg0 = N,
  // arg1 = pipeline depth, over 4 loopback workers where worker 0 is a
  // straggler (wall-clock reply latency well above its peers). Per
  // iteration the coordinator submits rounds up to `depth` ahead and
  // retires one, so at depth 1 every round eats the straggler's full
  // latency, while deeper pipelines overlap round t+1's dispatch (and the
  // fast workers' compute) with round t's stall — the measured
  // time/round, i.e. rounds/sec, is the pipelining win. Inputs are
  // caller-known per round (constant weights), so every depth is
  // bit-identical; the pre-bench sweep enforces it.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto depth = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kWorkers = 4;
  const RandomInstance instance = make_instance(n);
  const CandidateBatch batch = CandidateBatch::from_aos(instance.candidates);
  const ScoreWeights weights{10.0, 12.5};
  const std::size_t m = 10;

  auto transport = std::make_unique<sfl::dist::LoopbackTransport>(kWorkers);
  transport->set_worker_latency(0, std::chrono::microseconds(800));
  for (std::size_t w = 1; w < kWorkers; ++w) {
    transport->set_worker_latency(w, std::chrono::microseconds(100));
  }
  const sfl::dist::DistributedWdp engine{
      sfl::dist::DistributedWdpConfig{
          .pipeline_depth = depth,
          .receive_timeout = std::chrono::milliseconds(50)},
      std::move(transport)};

  std::vector<RoundScratch> lanes(depth);
  std::size_t submitted = 0;
  for (auto _ : state) {
    while (engine.rounds_in_flight() < depth) {
      engine.submit(batch, weights, m, {}, lanes[submitted % depth]);
      ++submitted;
    }
    engine.retire_oldest();
    benchmark::DoNotOptimize(lanes.data());
  }
  while (engine.rounds_in_flight() > 0) engine.retire_oldest();
  state.SetItemsProcessed(state.iterations());  // items/sec == rounds/sec
}
BENCHMARK(BM_PipelinedDistributedStraggler)
    ->ArgsProduct({{4'096}, {1, 2, 4}})
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

/// One synchronous distributed round per iteration over 4 loopback workers
/// with wall-clock reply latencies, in three configurations (the PR-7
/// acceptance family): no straggler (baseline), a permanent 800us straggler
/// with hedging on, and the same straggler with hedging off. With hedging
/// the coordinator learns the straggler's envelope and races its shards
/// against a hedge mate, so the hedged rounds/sec should land within ~1.5x
/// of the no-straggler baseline, while the unhedged variant eats the full
/// straggler latency every round. The engine (and its latency stats) lives
/// across iterations; a short untimed warm-up covers the kHedgeMinSamples
/// cold start so the timed region measures the steady state.
void bench_hedged_straggler(benchmark::State& state, bool straggler,
                            bool hedge) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kWorkers = 4;
  const RandomInstance instance = make_instance(n);
  const CandidateBatch batch = CandidateBatch::from_aos(instance.candidates);
  const ScoreWeights weights{10.0, 12.5};
  const std::size_t m = 10;

  auto transport = std::make_unique<sfl::dist::LoopbackTransport>(kWorkers);
  auto* raw = transport.get();
  for (std::size_t w = 0; w < kWorkers; ++w) {
    raw->set_worker_latency(w, std::chrono::microseconds(100));
  }
  const sfl::dist::DistributedWdp engine{
      sfl::dist::DistributedWdpConfig{
          .receive_timeout = std::chrono::milliseconds(50), .hedge = hedge},
      std::move(transport)};
  if (straggler) {
    // Slow down a worker that actually owns shards (rendezvous routing may
    // leave an arbitrary worker without a home assignment at 4 shards).
    raw->set_worker_latency(engine.home_worker(0),
                            std::chrono::microseconds(800));
  }

  RoundScratch scratch;
  for (std::size_t warm = 0; warm < 24; ++warm) {
    engine.run_round(batch, weights, m, {}, scratch);
  }
  for (auto _ : state) {
    engine.run_round(batch, weights, m, {}, scratch);
    benchmark::DoNotOptimize(scratch.payments.data());
  }
  state.SetItemsProcessed(state.iterations());  // items/sec == rounds/sec
}

void BM_HedgedStragglerBaseline(benchmark::State& state) {
  bench_hedged_straggler(state, /*straggler=*/false, /*hedge=*/true);
}
BENCHMARK(BM_HedgedStragglerBaseline)
    ->Arg(4'096)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void BM_HedgedStragglerRecovery(benchmark::State& state) {
  bench_hedged_straggler(state, /*straggler=*/true, /*hedge=*/true);
}
BENCHMARK(BM_HedgedStragglerRecovery)
    ->Arg(4'096)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void BM_UnhedgedStraggler(benchmark::State& state) {
  bench_hedged_straggler(state, /*straggler=*/true, /*hedge=*/false);
}
BENCHMARK(BM_UnhedgedStraggler)
    ->Arg(4'096)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

/// Fixed CPU-bound stand-in for the FL work a production round does
/// between reporting a settlement and needing the next auction — the
/// window async settlement overlaps with the mechanism's queue updates.
double training_payload() {
  double acc = 0.0;
  for (std::size_t i = 1; i <= 50'000; ++i) {
    acc += 1.0 / std::sqrt(static_cast<double>(i));
  }
  return acc;
}

/// One settled mechanism round + the training payload, sync vs async:
/// arg0 = N; `async` selects whether settle() applies inline (sync) or
/// enqueues onto the shared pool and is flushed by the next round's
/// barrier (the streamed settlement pipeline). With pacing enabled the
/// settle is O(N) queue updates, so the async variant's round latency
/// drops by whatever fits inside the payload window.
void bench_round_pipeline_settle(benchmark::State& state, bool async) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const RandomInstance instance = make_instance(n);
  const CandidateBatch batch = CandidateBatch::from_aos(instance.candidates);

  sfl::core::LtoVcgConfig config;
  config.v_weight = 10.0;
  config.per_round_budget = 5.0;
  config.energy_rates.assign(n, 0.4);  // Z queues on: settle is O(N)
  std::unique_ptr<Mechanism> mechanism =
      std::make_unique<sfl::core::LongTermOnlineVcgMechanism>(config);
  if (async) {
    mechanism = std::make_unique<sfl::core::AsyncSettlementMechanism>(
        std::move(mechanism));
  }

  RoundContext context;
  context.max_winners = 10;
  context.per_round_budget = 5.0;

  MechanismResult outcome;
  RoundSettlement settlement;
  std::size_t round = 0;
  for (auto _ : state) {
    context.round = round;
    mechanism->run_round_into(batch, context, outcome);
    settlement.round = round;
    settlement.total_payment = 0.0;
    settlement.winners.clear();
    for (std::size_t w = 0; w < outcome.winners.size(); ++w) {
      // Generator ids are 0..n-1 in slate order, so id == batch row.
      const std::size_t index = outcome.winners[w];
      settlement.winners.push_back(
          WinnerSettlement{.client = outcome.winners[w],
                           .bid = batch.bids()[index],
                           .payment = outcome.payments[w],
                           .energy_cost = batch.energy_costs()[index],
                           .dropped = false});
      settlement.total_payment += outcome.payments[w];
    }
    mechanism->settle(settlement);
    benchmark::DoNotOptimize(training_payload());
    ++round;
  }
  mechanism->flush();
  state.SetComplexityN(static_cast<std::int64_t>(n));
}

void BM_RoundPipelineSyncSettle(benchmark::State& state) {
  bench_round_pipeline_settle(state, /*async=*/false);
}
BENCHMARK(BM_RoundPipelineSyncSettle)
    ->RangeMultiplier(10)
    ->Range(10'000, scal_max_n())
    ->Unit(benchmark::kMicrosecond);

void BM_RoundPipelineAsyncSettle(benchmark::State& state) {
  bench_round_pipeline_settle(state, /*async=*/true);
}
BENCHMARK(BM_RoundPipelineAsyncSettle)
    ->RangeMultiplier(10)
    ->Range(10'000, scal_max_n())
    ->Unit(benchmark::kMicrosecond);

void BM_TopMWithVcgExternalityPayments(benchmark::State& state) {
  // VCG externality payments re-solve the WDP per winner: O(m) x WDP.
  const auto n = static_cast<std::size_t>(state.range(0));
  const RandomInstance instance = make_instance(n);
  const ScoreWeights weights{10.0, 12.5};
  const std::size_t m = 10;
  const WdpSolver solver = [](const std::vector<Candidate>& c,
                              const ScoreWeights& w, std::size_t k,
                              const Penalties& p) {
    return select_top_m(c, w, k, p);
  };
  for (auto _ : state) {
    const Allocation alloc = select_top_m(instance.candidates, weights, m);
    const auto payments =
        vcg_payments(instance.candidates, weights, m, alloc, solver);
    benchmark::DoNotOptimize(payments.data());
  }
}
BENCHMARK(BM_TopMWithVcgExternalityPayments)
    ->RangeMultiplier(10)
    ->Range(100, 10000)
    ->Unit(benchmark::kMicrosecond);

void BM_KnapsackDp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const RandomInstance instance = make_instance(n);
  const ScoreWeights weights{1.0, 1.0};
  for (auto _ : state) {
    const Allocation alloc =
        select_knapsack(instance.candidates, weights, 10.0, 10, 0.05);
    benchmark::DoNotOptimize(alloc.selected.data());
  }
}
BENCHMARK(BM_KnapsackDp)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMicrosecond);

void BM_ExhaustiveOracle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const RandomInstance instance = make_instance(n);
  const ScoreWeights weights{1.0, 1.0};
  for (auto _ : state) {
    const Allocation alloc = select_exhaustive(instance.candidates, weights, 5);
    benchmark::DoNotOptimize(alloc.selected.data());
  }
}
BENCHMARK(BM_ExhaustiveOracle)
    ->DenseRange(8, 20, 4)
    ->Unit(benchmark::kMicrosecond);

void BM_GreedyConcave(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const RandomInstance instance = make_instance(n);
  const ConcaveValuation valuation(20.0);
  const ScoreWeights weights{1.0, 1.0};
  for (auto _ : state) {
    const Allocation alloc =
        select_greedy_concave(instance.candidates, valuation, weights, 10);
    benchmark::DoNotOptimize(alloc.selected.data());
  }
}
BENCHMARK(BM_GreedyConcave)
    ->RangeMultiplier(10)
    ->Range(100, 10000)
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Parallel comparison oracles: the threads+OracleScratch overloads on the
// shared pool. Two axes: {problem size, thread count}; threads=1 is the
// serial-in-the-parallel-entrypoint baseline, so each family's speedup is
// read off directly. verify_oracle_equivalence() below proves every timed
// configuration bit-identical to the serial oracle before any timing runs.
// ---------------------------------------------------------------------------

void BM_TopMWithVcgExternalityPaymentsParallel(benchmark::State& state) {
  // The m leave-one-out re-solves fan out across pool lanes.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const RandomInstance instance = make_instance(n);
  const ScoreWeights weights{10.0, 12.5};
  const std::size_t m = 10;
  const WdpSolver solver = [](const std::vector<Candidate>& c,
                              const ScoreWeights& w, std::size_t k,
                              const Penalties& p) {
    return select_top_m(c, w, k, p);
  };
  OracleScratch scratch;
  for (auto _ : state) {
    const Allocation alloc = select_top_m(instance.candidates, weights, m);
    const auto payments = vcg_payments(instance.candidates, weights, m, alloc,
                                       solver, {}, threads, scratch);
    benchmark::DoNotOptimize(payments.data());
  }
}
BENCHMARK(BM_TopMWithVcgExternalityPaymentsParallel)
    ->ArgsProduct({{1000, 10000}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMicrosecond);

void BM_KnapsackDpParallel(benchmark::State& state) {
  // Finer grid than the serial family (0.005 vs 0.05) so each DP layer's
  // (winners x budget) plane is wide enough for lanes to bite.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const RandomInstance instance = make_instance(n);
  const ScoreWeights weights{1.0, 1.0};
  OracleScratch scratch;
  for (auto _ : state) {
    const Allocation alloc = select_knapsack(instance.candidates, weights,
                                             10.0, 10, 0.005, {}, threads,
                                             scratch);
    benchmark::DoNotOptimize(alloc.selected.data());
  }
}
BENCHMARK(BM_KnapsackDpParallel)
    ->ArgsProduct({{256, 1024}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMicrosecond);

void BM_GreedyConcaveParallel(benchmark::State& state) {
  // Per-step marginal-gain scan partitioned across lanes; the per-chunk
  // argmaxes reduce under the serial total order.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const RandomInstance instance = make_instance(n);
  const ConcaveValuation valuation(20.0);
  const ScoreWeights weights{1.0, 1.0};
  OracleScratch scratch;
  for (auto _ : state) {
    const Allocation alloc = select_greedy_concave(
        instance.candidates, valuation, weights, 10, {}, threads, scratch);
    benchmark::DoNotOptimize(alloc.selected.data());
  }
}
BENCHMARK(BM_GreedyConcaveParallel)
    ->ArgsProduct({{10000, 100000}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMicrosecond);

/// Pre-bench guard: serial and sharded rounds must agree exactly. Returns
/// false (and prints the first divergence) on any mismatch — main() exits
/// non-zero, so the CI smoke run fails on a merge-logic regression.
bool verify_sharded_equivalence() {
  const ScoreWeights weights{10.0, 12.5};
  const std::size_t m = 10;
  const std::size_t shard_counts[] = {0, 2, 3, 7, 16};
  const std::size_t sizes[] = {
      1'000, 4'096, sfl::util::fast_mode_enabled() ? std::size_t{8'192}
                                                   : std::size_t{100'000}};
  for (const std::size_t n : sizes) {
    const RandomInstance instance = make_instance(n);
    const CandidateBatch batch = CandidateBatch::from_aos(instance.candidates);
    const Allocation serial = select_top_m(batch, weights, m);
    const auto serial_payments =
        critical_payments(batch, weights, m, serial);
    for (const std::size_t shards : shard_counts) {
      const ShardedWdp engine{ShardedWdpConfig{.shards = shards}};
      RoundScratch scratch;
      engine.run_round(batch, weights, m, {}, scratch);
      if (scratch.allocation.selected != serial.selected ||
          scratch.allocation.total_score != serial.total_score ||
          scratch.payments != serial_payments) {
        std::cerr << "E7 FATAL: sharded WDP diverges from serial at n=" << n
                  << " shards=" << shards << "\n";
        return false;
      }
    }
    // The distributed coordinator (loopback workers, full codec round
    // trip) is held to the same bit-identical bar — the ISSUE-4
    // acceptance worker counts.
    for (const std::size_t workers : {1, 2, 4, 7}) {
      const sfl::dist::DistributedWdp engine{
          sfl::dist::DistributedWdpConfig{.workers = workers}};
      RoundScratch scratch;
      engine.run_round(batch, weights, m, {}, scratch);
      if (scratch.allocation.selected != serial.selected ||
          scratch.allocation.total_score != serial.total_score ||
          scratch.payments != serial_payments) {
        std::cerr << "E7 FATAL: distributed WDP diverges from serial at n="
                  << n << " workers=" << workers << "\n";
        return false;
      }
    }
    // The pipelined coordinator at depth > 1: a full burst of in-flight
    // rounds must retire to the identical result (same batch per round,
    // so each retirement is directly comparable to the serial reference).
    for (const std::size_t depth : {2, 4}) {
      const sfl::dist::DistributedWdp engine{sfl::dist::DistributedWdpConfig{
          .workers = 3, .pipeline_depth = depth}};
      std::vector<RoundScratch> lanes(depth);
      for (std::size_t r = 0; r < depth; ++r) {
        engine.submit(batch, weights, m, {}, lanes[r]);
      }
      for (std::size_t r = 0; r < depth; ++r) {
        engine.retire_oldest();
        if (lanes[r].allocation.selected != serial.selected ||
            lanes[r].allocation.total_score != serial.total_score ||
            lanes[r].payments != serial_payments) {
          std::cerr << "E7 FATAL: pipelined WDP diverges from serial at n="
                    << n << " depth=" << depth << " round=" << r << "\n";
          return false;
        }
      }
    }
  }
  std::cout << "E7: serial-vs-sharded-vs-distributed(-pipelined) "
               "equivalence sweep OK\n";
  return true;
}

/// Pre-bench guard for the mega-batch axis: run_rounds over a mixed batch
/// of markets (varied sizes, empty slates, m >= n, with/without penalties)
/// must match per-market run_round bit for bit at every lane count, and
/// the base-class gather-loop fallback must agree with the fused override.
bool verify_mega_batch_equivalence() {
  sfl::util::Rng rng(0xe07);
  const std::size_t market_count = sfl::util::fast_mode_enabled() ? 64 : 512;

  std::vector<CandidateBatch> slates(market_count);
  std::vector<Penalties> penalties(market_count);
  std::vector<std::size_t> winner_caps(market_count);
  std::vector<ScoreWeights> weight_sets(market_count);
  MarketBatch markets;
  for (std::size_t k = 0; k < market_count; ++k) {
    // Degenerates on purpose: every 17th market empty, every 11th m >= n.
    const std::size_t rows = k % 17 == 0 ? 0 : 1 + rng.uniform_index(48);
    for (std::size_t i = 0; i < rows; ++i) {
      slates[k].emplace(rng.uniform_index(1'000'000), rng.uniform(0.0, 50.0),
                        rng.uniform(0.0, 25.0), rng.uniform(0.1, 4.0));
      if (k % 3 == 0) penalties[k].push_back(rng.uniform(0.0, 10.0));
    }
    winner_caps[k] = k % 11 == 0 ? rows + 2 : 1 + rng.uniform_index(8);
    weight_sets[k] = ScoreWeights{rng.uniform(1.0, 20.0),
                                  rng.uniform(1.0, 20.0)};
    markets.append_market(slates[k], winner_caps[k], weight_sets[k],
                          penalties[k]);
  }

  for (const std::size_t shards : {std::size_t{0}, std::size_t{1},
                                   std::size_t{3}}) {
    const ShardedWdp engine{ShardedWdpConfig{.shards = shards}};
    for (const bool fused : {true, false}) {
      MarketBatchResult result;
      RoundScratch scratch;
      if (fused) {
        engine.run_rounds(markets, result, scratch);
      } else {
        engine.WdpEngine::run_rounds(markets, result, scratch);
      }
      for (std::size_t k = 0; k < market_count; ++k) {
        RoundScratch reference;
        engine.run_round(slates[k], weight_sets[k], winner_caps[k],
                         penalties[k], reference);
        const auto selected = result.selected(k);
        const auto payments = result.payments(k);
        const bool winners_match =
            selected.size() == reference.allocation.selected.size() &&
            std::equal(selected.begin(), selected.end(),
                       reference.allocation.selected.begin());
        const bool payments_match =
            payments.size() == reference.payments.size() &&
            std::equal(payments.begin(), payments.end(),
                       reference.payments.begin(),
                       [](double a, double b) {
                         return std::memcmp(&a, &b, sizeof(double)) == 0;
                       });
        if (!winners_match || !payments_match ||
            result.total_score(k) != reference.allocation.total_score) {
          std::cerr << "E7 FATAL: mega-batch run_rounds ("
                    << (fused ? "fused" : "fallback") << ", shards=" << shards
                    << ") diverges from run_round at market " << k << "\n";
          return false;
        }
      }
    }
  }
  std::cout << "E7: mega-batch run_rounds equivalence sweep OK ("
            << market_count << " markets)\n";
  return true;
}

/// Pre-bench guard for the parallel comparison oracles: every timed
/// configuration (and the auto lane count) must reproduce the serial
/// oracle bit for bit — selected set, bit-pattern-identical total score,
/// and bit-pattern-identical VCG payments. Prints the first divergence and
/// returns false, failing the run before any timing happens.
bool verify_oracle_equivalence() {
  const auto bits_equal = [](double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
  };
  const std::size_t thread_counts[] = {0, 1, 2, 3, 7, 16};
  const std::size_t sizes[] = {
      64, 512, sfl::util::fast_mode_enabled() ? std::size_t{1'024}
                                              : std::size_t{4'096}};
  OracleScratch scratch;
  for (const std::size_t n : sizes) {
    const RandomInstance instance = make_instance(n);

    // Knapsack DP, at the coarse serial-family grid and the fine parallel-
    // family grid (the fine grid exercises multi-lane layer splits).
    for (const double resolution : {0.05, 0.005}) {
      const ScoreWeights weights{1.0, 1.0};
      const Allocation serial =
          select_knapsack(instance.candidates, weights, 10.0, 10, resolution);
      for (const std::size_t threads : thread_counts) {
        const Allocation par =
            select_knapsack(instance.candidates, weights, 10.0, 10,
                            resolution, {}, threads, scratch);
        if (par.selected != serial.selected ||
            !bits_equal(par.total_score, serial.total_score)) {
          std::cerr << "E7 FATAL: parallel knapsack DP diverges from serial "
                       "at n=" << n << " resolution=" << resolution
                    << " threads=" << threads << "\n";
          return false;
        }
      }
    }

    // Concave-greedy marginal scan.
    {
      const ConcaveValuation valuation(20.0);
      const ScoreWeights weights{1.0, 1.0};
      const Allocation serial =
          select_greedy_concave(instance.candidates, valuation, weights, 10);
      for (const std::size_t threads : thread_counts) {
        const Allocation par = select_greedy_concave(
            instance.candidates, valuation, weights, 10, {}, threads, scratch);
        if (par.selected != serial.selected ||
            !bits_equal(par.total_score, serial.total_score)) {
          std::cerr << "E7 FATAL: parallel concave greedy diverges from "
                       "serial at n=" << n << " threads=" << threads << "\n";
          return false;
        }
      }
    }

    // VCG externality payments (leave-one-out re-solves fanned out).
    {
      const ScoreWeights weights{10.0, 12.5};
      const std::size_t m = 10;
      const WdpSolver solver = [](const std::vector<Candidate>& c,
                                  const ScoreWeights& w, std::size_t k,
                                  const Penalties& p) {
        return select_top_m(c, w, k, p);
      };
      const Allocation alloc = select_top_m(instance.candidates, weights, m);
      const auto serial =
          vcg_payments(instance.candidates, weights, m, alloc, solver);
      for (const std::size_t threads : thread_counts) {
        const auto par = vcg_payments(instance.candidates, weights, m, alloc,
                                      solver, {}, threads, scratch);
        const bool match =
            par.size() == serial.size() &&
            std::equal(par.begin(), par.end(), serial.begin(), bits_equal);
        if (!match) {
          std::cerr << "E7 FATAL: parallel VCG payments diverge from serial "
                       "at n=" << n << " threads=" << threads << "\n";
          return false;
        }
      }
    }
  }
  std::cout << "E7: serial-vs-parallel oracle equivalence sweep OK\n";
  return true;
}

/// Console reporter that also captures every run for the JSON writer.
class CapturingReporter final : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(sfl::bench::BenchJsonWriter& writer)
      : writer_(writer) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.report_big_o ||
          run.report_rms) {
        continue;
      }
      const std::string name = run.benchmark_name();
      const std::size_t slash = name.find('/');
      sfl::bench::BenchJsonWriter::Entry entry;
      entry.benchmark = name;
      entry.variant = slash == std::string::npos ? name : name.substr(0, slash);
      if (slash != std::string::npos) {
        entry.n = static_cast<std::size_t>(
            std::strtoull(name.c_str() + slash + 1, nullptr, 10));
      }
      // Unit is microseconds for every benchmark in this file.
      entry.real_time_us = run.GetAdjustedRealTime();
      entry.iterations = static_cast<std::size_t>(run.iterations);
      writer_.add(std::move(entry));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  sfl::bench::BenchJsonWriter& writer_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::optional<std::string> json_path =
      sfl::bench::BenchJsonWriter::extract_json_path(argc, argv);
  if (!verify_sharded_equivalence()) return 1;
  if (!verify_mega_batch_equivalence()) return 1;
  if (!verify_oracle_equivalence()) return 1;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  sfl::bench::BenchJsonWriter writer;
  CapturingReporter reporter(writer);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (json_path.has_value() && !writer.write(*json_path, "e07_scalability")) {
    return 1;
  }
  benchmark::Shutdown();
  return 0;
}
