// E3 (Figure + Table): long-term budget compliance.
//
// Figure part: cumulative payment vs the budget line B-bar*t for LTO-VCG and
// the budget-blind myopic VCG on the same market.
// Table part: sweep over B-bar showing average payment, violation depth, and
// the queue backlog for both mechanisms — LTO-VCG's average payment is
// pinned to B-bar while myopic VCG overshoots by a B-bar-independent amount.
#include "bench_common.h"

int main() {
  using namespace sfl;
  bench::banner("E3", "long-term budget tracking and B-bar sweep");

  const core::MarketSpec base = bench::canonical_market_spec();

  // --- Figure: cumulative payment vs budget line ---
  {
    const auto lto = auction::build_mechanism(
        "lto-vcg", bench::market_mechanism_config(base));
    const core::MarketResult lto_result = core::run_market(*lto, base);
    const auto myopic = auction::build_mechanism(
        "myopic-vcg", bench::market_mechanism_config(base));
    const core::MarketResult myopic_result = core::run_market(*myopic, base);

    util::TablePrinter series({"round", "budget_line", "lto_cum_payment",
                               "myopic_cum_payment"});
    const std::size_t step = base.rounds / 10;
    for (std::size_t t = step - 1; t < base.rounds; t += step) {
      series.row(t + 1, base.per_round_budget * static_cast<double>(t + 1),
                 lto_result.cumulative_payment_series[t],
                 myopic_result.cumulative_payment_series[t]);
    }
    series.print(std::cout);
  }

  // --- Table: B-bar sweep ---
  std::cout << "\nB-bar sweep (" << base.rounds << " rounds each):\n";
  util::TablePrinter sweep({"B-bar", "mechanism", "avg_payment",
                            "pay/B-bar", "peak_violation", "avg_welfare"});
  for (const double budget : {2.0, 4.0, 6.0, 10.0, 15.0}) {
    core::MarketSpec spec = base;
    spec.per_round_budget = budget;

    const auto lto = auction::build_mechanism(
        "lto-vcg", bench::market_mechanism_config(spec));
    const core::MarketResult lto_result = core::run_market(*lto, spec);
    sweep.row(budget, "lto-vcg", lto_result.average_payment,
              lto_result.average_payment / budget,
              lto_result.peak_budget_violation,
              lto_result.time_average_welfare);

    const auto myopic = auction::build_mechanism(
        "myopic-vcg", bench::market_mechanism_config(spec));
    const core::MarketResult myopic_result = core::run_market(*myopic, spec);
    sweep.row(budget, "myopic-vcg", myopic_result.average_payment,
              myopic_result.average_payment / budget,
              myopic_result.peak_budget_violation,
              myopic_result.time_average_welfare);
  }
  sweep.print(std::cout);
  std::cout << "\nReading: lto-vcg average payment tracks B-bar (its queue "
               "enforces the long-term constraint); myopic-vcg spends the "
               "same regardless of B-bar.\n";
  return 0;
}
