// E5 (Table): mechanism-property certification over random instances.
//
// For each mechanism: maximum utility gain any client can obtain by
// misreporting (DSIC certificate — ~0 for truthful rules), the fraction of
// winner payments covering true costs (IR), budget feasibility where
// applicable, and the payment-rule equivalence gap (critical vs VCG).
#include <algorithm>

#include "auction/payments.h"
#include "auction/random_instance.h"
#include "auction/winner_determination.h"
#include "bench_common.h"

namespace {

using namespace sfl;
using auction::Candidate;
using auction::MechanismResult;
using auction::RoundContext;

struct PropertyStats {
  double max_misreport_gain = 0.0;
  double ir_fraction = 1.0;
  std::size_t ir_checked = 0;
  std::size_t ir_satisfied = 0;
};

PropertyStats audit_mechanism(auction::Mechanism& mechanism, std::uint64_t seed,
                              std::size_t trials) {
  util::Rng rng(seed);
  PropertyStats stats;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    auction::RandomInstanceSpec spec;
    spec.num_candidates = 8;
    const auto instance = make_random_instance(spec, rng);
    RoundContext ctx;
    ctx.max_winners = 3;
    ctx.per_round_budget = 6.0;

    const MechanismResult truthful = mechanism.run_round(instance.candidates, ctx);
    for (const auto id : truthful.winners) {
      ++stats.ir_checked;
      if (truthful.payment_for(id) >= instance.candidates[id].bid - 1e-9) {
        ++stats.ir_satisfied;
      }
    }
    for (std::size_t target = 0; target < instance.candidates.size(); ++target) {
      const double true_cost = instance.candidates[target].bid;
      const double truthful_utility =
          truthful.won(target) ? truthful.payment_for(target) - true_cost : 0.0;
      for (const double factor : {0.5, 0.8, 1.25, 2.0}) {
        std::vector<Candidate> shaded = instance.candidates;
        shaded[target].bid = factor * true_cost;
        const MechanismResult deviated = mechanism.run_round(shaded, ctx);
        const double deviated_utility =
            deviated.won(target) ? deviated.payment_for(target) - true_cost : 0.0;
        stats.max_misreport_gain = std::max(
            stats.max_misreport_gain, deviated_utility - truthful_utility);
      }
    }
  }
  stats.ir_fraction =
      stats.ir_checked == 0
          ? 1.0
          : static_cast<double>(stats.ir_satisfied) /
                static_cast<double>(stats.ir_checked);
  return stats;
}

}  // namespace

int main() {
  using namespace sfl;
  bench::banner("E5", "property table: DSIC gain, IR, payment equivalence");
  const std::size_t trials = bench::scaled(300);

  util::TablePrinter table({"mechanism", "claimed truthful",
                            "max misreport gain", "IR fraction"});
  const auto audit = [&](auction::Mechanism& mech) {
    const PropertyStats stats = audit_mechanism(mech, 9000, trials);
    table.row(mech.name(), mech.is_truthful() ? "yes" : "no",
              stats.max_misreport_gain, stats.ir_fraction);
  };

  auction::MechanismConfig mc;
  mc.per_round_budget = 6.0;
  mc.lto.v_weight = 5.0;
  mc.fixed_price.price = 1.5;
  for (const std::string& name :
       {"lto-vcg", "myopic-vcg", "pay-as-bid", "fixed-price",
        "proportional-share"}) {
    const auto mechanism = auction::build_mechanism(name, mc);
    audit(*mechanism);
  }
  table.print(std::cout);

  // Payment-rule equivalence: max |critical - vcg| over random instances,
  // including queue-weighted and penalized configurations.
  util::Rng rng(777);
  double max_gap = 0.0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    auction::RandomInstanceSpec spec;
    spec.num_candidates = 10;
    spec.penalty_hi = trial % 2 == 0 ? 0.0 : 2.0;
    const auto instance = make_random_instance(spec, rng);
    const auction::ScoreWeights weights = auction::make_random_weights(rng);
    const auction::Allocation alloc =
        select_top_m(instance.candidates, weights, 4, instance.penalties);
    const auto critical = critical_payments(instance.candidates, weights, 4,
                                            alloc, instance.penalties);
    const auto vcg = vcg_payments(
        instance.candidates, weights, 4, alloc,
        [](const std::vector<Candidate>& c, const auction::ScoreWeights& w,
           std::size_t m, const auction::Penalties& p) {
          return select_top_m(c, w, m, p);
        },
        instance.penalties);
    for (std::size_t k = 0; k < critical.size(); ++k) {
      max_gap = std::max(max_gap, std::abs(critical[k] - vcg[k]));
    }
  }
  std::cout << "\nPayment-rule equivalence: max |critical - VCG| over "
            << trials << " random instances = " << max_gap
            << " (theory: exactly 0)\n";
  return 0;
}
