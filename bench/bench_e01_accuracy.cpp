// E1 (Figure): test accuracy vs training rounds for every mechanism on the
// canonical federated market (non-IID shards, cheap noisy-label cohort,
// long-term budget B-bar = 6). Regenerates the paper-style convergence
// figure: the long-term online VCG mechanism tracks the quality-aware
// optimum while budget-blind or quality-blind rules lag.
#include "bench_common.h"

#include "util/string_utils.h"

int main() {
  using namespace sfl;
  bench::banner("E1", "test accuracy vs rounds, all mechanisms");

  const sim::ScenarioSpec sspec = bench::canonical_scenario_spec();
  const sim::Scenario scenario = sim::build_scenario(sspec);
  const std::size_t rounds = bench::scaled(200);
  const core::OrchestratorConfig config =
      bench::canonical_fl_config(sspec, rounds);

  std::vector<std::string> names = bench::all_mechanism_names();
  std::vector<core::RunResult> results;
  results.reserve(names.size());
  for (const auto& name : names) {
    results.push_back(bench::run_fl(scenario, sspec, name, config));
  }

  // Accuracy series (one column per mechanism, one row per evaluation).
  std::vector<std::string> header{"round"};
  for (const auto& name : names) header.push_back(name);
  util::TablePrinter series(header);
  for (std::size_t t = 0; t < rounds; ++t) {
    if (!results.front().rounds[t].evaluated) continue;
    std::vector<std::string> row{std::to_string(t)};
    for (const auto& result : results) {
      row.push_back(util::format_double(result.rounds[t].test_accuracy, 4));
    }
    series.add_row(std::move(row));
  }
  series.print(std::cout);

  std::cout << "\nFinal summary:\n";
  util::TablePrinter summary({"mechanism", "final_acc", "final_loss",
                              "avg_payment", "budget_ok", "welfare"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    summary.row(names[i], results[i].final_accuracy, results[i].final_loss,
                results[i].average_payment,
                results[i].budget_violation <= 1e-9 ? "yes" : "NO",
                results[i].cumulative_welfare);
  }
  summary.print(std::cout);
  return 0;
}
