// E8 (Figure): client sustainability under energy harvesting.
//
// The full FL system with capped batteries and heterogeneous harvest rates,
// run with and without the per-client Z_i pacing queues. Reports
// participation share and battery health by harvest class, starvation
// events, Jain fairness, and accuracy — showing that pacing keeps
// slow-harvest clients alive without giving up training quality.
#include "bench_common.h"
#include "stats/summary.h"

int main() {
  using namespace sfl;
  bench::banner("E8", "sustainability: harvest-paced vs unpaced selection");

  sim::ScenarioSpec sspec = bench::canonical_scenario_spec(5);
  sspec.noisy_client_fraction = 0.0;  // isolate the energy axis
  const sim::Scenario scenario = sim::build_scenario(sspec);

  core::OrchestratorConfig config =
      bench::canonical_fl_config(sspec, bench::scaled(250));
  config.enable_energy = true;
  config.energy.battery_capacity = 3.0;
  config.energy.initial_charge = 2.0;
  config.energy.harvest_amount = 1.0;
  config.energy.harvest_probabilities.resize(sspec.num_clients);
  // Slow-harvest clients are low-power devices — and cheap (half cost), so
  // an unpaced buyer keeps hammering them until their batteries die.
  config.cost_multipliers.assign(sspec.num_clients, 1.0);
  for (std::size_t c = 0; c < sspec.num_clients; ++c) {
    const bool fast = c % 2 == 0;
    config.energy.harvest_probabilities[c] = fast ? 0.8 : 0.2;
    config.cost_multipliers[c] = fast ? 1.0 : 0.5;
  }

  // The sustainability dial: no pacing, pacing at the harvest rate, pacing
  // with a 2x safety margin. The margin is what keeps batteries charged —
  // pacing exactly at the harvest rate still operates devices at the edge.
  struct Variant {
    std::string name;
    double pacing_fraction;  ///< r_i = fraction * harvest_rate_i; 0 = off
  };
  const std::vector<Variant> variants{
      {"unpaced (Z off)", 0.0},
      {"paced at harvest rate", 1.0},
      {"paced with 2x margin", 0.5},
  };

  const auto run_variant = [&](double pacing_fraction) {
    auction::MechanismConfig mc =
        bench::canonical_mechanism_config(config, sspec.num_clients);
    mc.lto.pacing_rate = 0.0;
    if (pacing_fraction > 0.0) {
      for (std::size_t c = 0; c < sspec.num_clients; ++c) {
        mc.lto.energy_rates.push_back(pacing_fraction *
                                      config.energy.harvest_probabilities[c] *
                                      config.energy.harvest_amount);
      }
    }
    auto model = std::make_unique<fl::LogisticRegression>(
        sspec.feature_dim, sspec.num_classes, 1e-4);
    core::SustainableFlOrchestrator orchestrator(
        scenario, std::move(model), bench::canonical_training_spec(),
        auction::build_mechanism("lto-vcg", mc), config);
    return orchestrator.run();
  };

  std::vector<core::RunResult> results;
  results.reserve(variants.size());
  for (const auto& variant : variants) {
    results.push_back(run_variant(variant.pacing_fraction));
  }

  util::TablePrinter summary({"variant", "accuracy", "welfare",
                              "starvation_events", "jain_participation",
                              "mean_avail/round"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& r = results[i];
    std::size_t starved = 0;
    for (const auto s : r.starvation_counts) starved += s;
    double availability = 0.0;
    for (const auto& record : r.rounds) {
      availability += static_cast<double>(record.available);
    }
    availability /= static_cast<double>(r.rounds.size());
    summary.row(variants[i].name, r.final_accuracy, r.cumulative_welfare,
                starved, stats::jain_fairness_index(r.participation_counts),
                availability);
  }
  summary.print(std::cout);

  std::cout << "\nBy harvest class:\n";
  util::TablePrinter classes({"variant", "class", "mean_wins", "mean_battery",
                              "mean_starvation"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    for (const bool fast : {true, false}) {
      double wins = 0.0;
      double battery = 0.0;
      double starved = 0.0;
      double count = 0.0;
      for (std::size_t c = 0; c < sspec.num_clients; ++c) {
        if ((c % 2 == 0) != fast) continue;
        wins += results[i].participation_counts[c];
        battery += results[i].final_battery[c];
        starved += static_cast<double>(results[i].starvation_counts[c]);
        count += 1.0;
      }
      classes.row(variants[i].name, fast ? "fast (p=0.8)" : "slow (p=0.2)",
                  wins / count, battery / count, starved / count);
    }
  }
  classes.print(std::cout);
  std::cout << "\nReading: the safety margin converts starvation events into "
               "battery headroom at a small welfare cost — the "
               "sustainability dial the Z queues expose.\n";
  return 0;
}
