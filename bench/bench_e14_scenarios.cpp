// E14 (Figures): scenario extensions — multi-requester exclusivity, online
// arrival, wireless cellular costs.
//
// Three bench families, each emitting per-round welfare / budget / queue
// trajectories into BENCH_e14.json (`--json=<path>` / `json=<path>`):
//
//   multi     R LTO requesters compete for one client population per round
//             under cross-market exclusivity (one fused exclusive
//             MarketBatch clear per round). The family runs the SAME spec at
//             shard counts {1, 4} and hard-checks (a) zero duplicate wins
//             and (b) bit-identical welfare/payment/queue trajectories
//             across shard counts — a fused-merge regression exits non-zero
//             and fails the ctest smoke target, not just the bench numbers.
//   online    streaming market: clients arrive/depart mid-horizon with
//             per-client win budgets; the trajectory adds the active-bidder
//             count per round. Re-run under the same seed and checked for
//             exact determinism.
//   wireless  per-client energy costs derived from the cellular uplink
//             model (annulus drop + path loss + Rayleigh fading ->
//             Shannon-rate transmit energy), driven through a short FL run;
//             the entry also records the cost-population quantiles.
//
// REPRO_FAST=1 shrinks rounds/clients so the ctest smoke run finishes in
// seconds; the JSON notes the mode.
#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/market_simulation.h"
#include "core/orchestrator.h"
#include "fl/logistic_regression.h"
#include "sim/scenario.h"
#include "util/config.h"

namespace {

bool fast() { return sfl::util::fast_mode_enabled(); }

/// One named trajectory family in the output JSON.
struct Family {
  std::string scenario;
  std::string detail;
  std::vector<std::string> series_names;
  std::vector<std::vector<double>> series;  // aligned with series_names
};

void append_json(std::ostream& out, const Family& f, bool first) {
  out << (first ? "\n" : ",\n") << "    {\"scenario\": \"" << f.scenario
      << "\", \"detail\": \"" << f.detail << "\", \"rounds\": "
      << (f.series.empty() ? 0 : f.series.front().size()) << ", \"series\": {";
  for (std::size_t s = 0; s < f.series.size(); ++s) {
    out << (s == 0 ? "" : ", ") << "\"" << f.series_names[s] << "\": [";
    for (std::size_t t = 0; t < f.series[s].size(); ++t) {
      out << (t == 0 ? "" : ",") << f.series[s][t];
    }
    out << "]";
  }
  out << "}}";
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(),
                    [](double x, double y) {
                      return std::bit_cast<std::uint64_t>(x) ==
                             std::bit_cast<std::uint64_t>(y);
                    });
}

int run_multi_family(std::vector<Family>& families) {
  sfl::core::MultiRequesterSpec spec;
  spec.requesters = 3;
  spec.num_clients = fast() ? 24 : 120;
  spec.rounds = fast() ? 60 : 600;
  spec.max_winners = 4;
  spec.seed = 20260808;

  spec.shards = 1;
  const sfl::core::MultiRequesterResult serial =
      sfl::core::run_multi_requester_market(spec);
  spec.shards = 4;
  const sfl::core::MultiRequesterResult fused =
      sfl::core::run_multi_requester_market(spec);

  if (serial.duplicate_wins != 0 || fused.duplicate_wins != 0) {
    std::cerr << "E14 multi: EXCLUSIVITY VIOLATION (serial="
              << serial.duplicate_wins << ", fused=" << fused.duplicate_wins
              << " duplicate wins)\n";
    return 1;
  }
  if (!bitwise_equal(serial.welfare_series, fused.welfare_series) ||
      !bitwise_equal(serial.payment_series, fused.payment_series) ||
      !bitwise_equal(serial.queue_series, fused.queue_series)) {
    std::cerr << "E14 multi: fused exclusive clear diverged from the serial "
                 "reference (shards=4 vs shards=1)\n";
    return 1;
  }

  families.push_back(Family{
      .scenario = "multi",
      .detail = "3 requesters, exclusive fused clear (bit-equal at shards 1/4)",
      .series_names = {"welfare", "payment", "queue_backlog"},
      .series = {serial.welfare_series, serial.payment_series,
                 serial.queue_series}});
  std::cout << "E14 multi: " << spec.rounds << " rounds, duplicate_wins=0, "
            << "shards {1,4} bit-identical\n";
  return 0;
}

int run_online_family(std::vector<Family>& families) {
  sfl::core::MarketSpec spec;
  spec.num_clients = fast() ? 24 : 120;
  spec.rounds = fast() ? 80 : 800;
  spec.max_winners = 4;
  spec.seed = 20260808;
  spec.online.enabled = true;
  spec.online.arrival_window = 0.6;
  spec.online.min_sojourn_fraction = 0.2;
  spec.online.max_sojourn_fraction = 0.8;
  spec.online.min_win_budget = 3;
  spec.online.max_win_budget = 12;

  sfl::auction::MechanismConfig config;
  config.num_clients = spec.num_clients;
  config.per_round_budget = spec.per_round_budget;
  const auto mech_a = sfl::auction::build_mechanism("lto-vcg", config);
  const auto mech_b = sfl::auction::build_mechanism("lto-vcg", config);
  const sfl::core::MarketResult run_a = sfl::core::run_market(*mech_a, spec);
  const sfl::core::MarketResult run_b = sfl::core::run_market(*mech_b, spec);
  if (!bitwise_equal(run_a.welfare_series, run_b.welfare_series) ||
      !bitwise_equal(run_a.payment_series, run_b.payment_series) ||
      !bitwise_equal(run_a.active_clients_series,
                     run_b.active_clients_series)) {
    std::cerr << "E14 online: same-seed replay diverged\n";
    return 1;
  }

  families.push_back(Family{
      .scenario = "online",
      .detail = "streaming arrival/departure with per-client win budgets",
      .series_names = {"welfare", "payment", "active_bidders"},
      .series = {run_a.welfare_series, run_a.payment_series,
                 run_a.active_clients_series}});
  std::cout << "E14 online: " << spec.rounds << " rounds, "
            << run_a.budget_exhausted_clients
            << " clients exhausted their win budget, deterministic replay\n";
  return 0;
}

int run_wireless_family(std::vector<Family>& families) {
  sfl::sim::ScenarioSpec sspec;
  sspec.num_clients = fast() ? 16 : 40;
  sspec.train_examples = fast() ? 600 : 3000;
  sspec.test_examples = 200;
  sspec.validation_examples = 100;
  sspec.seed = 20260808;
  sspec.wireless.enabled = true;
  const sfl::sim::Scenario scenario = sfl::sim::build_scenario(sspec);

  std::vector<double> sorted_costs = scenario.energy_costs;
  std::sort(sorted_costs.begin(), sorted_costs.end());
  const auto quantile = [&](double q) {
    return sorted_costs[static_cast<std::size_t>(
        q * static_cast<double>(sorted_costs.size() - 1))];
  };

  sfl::core::OrchestratorConfig config;
  config.rounds = fast() ? 12 : 60;
  config.max_winners = 6;
  config.eval_every = config.rounds;  // trajectories, not accuracy curves
  config.seed = sspec.seed;
  sfl::auction::MechanismConfig mech_config;
  mech_config.num_clients = sspec.num_clients;
  mech_config.per_round_budget = config.per_round_budget;
  sfl::core::SustainableFlOrchestrator orchestrator(
      scenario,
      std::make_unique<sfl::fl::LogisticRegression>(sspec.feature_dim,
                                                    sspec.num_classes, 1e-4),
      sfl::fl::LocalTrainingSpec{},
      sfl::auction::build_mechanism("lto-vcg", mech_config), config);
  const sfl::core::RunResult run = orchestrator.run();

  Family family{
      .scenario = "wireless",
      .detail = "cellular uplink cost model (cost quantiles p10/p50/p90: " +
                std::to_string(quantile(0.1)) + "/" +
                std::to_string(quantile(0.5)) + "/" +
                std::to_string(quantile(0.9)) + ")",
      .series_names = {"welfare", "payment", "queue_backlog"},
      .series = {{}, {}, {}}};
  for (const sfl::core::RoundRecord& record : run.rounds) {
    family.series[0].push_back(record.welfare);
    family.series[1].push_back(record.payment);
    family.series[2].push_back(record.budget_backlog);
  }
  families.push_back(std::move(family));
  std::cout << "E14 wireless: cost spread p10=" << quantile(0.1)
            << " p90=" << quantile(0.9) << ", " << run.rounds.size()
            << " FL rounds\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<std::string> json_path =
      sfl::bench::BenchJsonWriter::extract_json_path(argc, argv);

  std::vector<Family> families;
  int rc = run_multi_family(families);
  if (rc == 0) rc = run_online_family(families);
  if (rc == 0) rc = run_wireless_family(families);
  if (rc != 0) return rc;  // invariant violations fail the smoke test

  if (json_path.has_value()) {
    std::ofstream out(*json_path);
    if (!out.is_open()) {
      std::cerr << "bench json: cannot write " << *json_path << "\n";
      return 1;
    }
    out << "{\n  \"bench\": \"e14_scenarios\",\n  \"repro_fast\": "
        << (fast() ? "true" : "false") << ",\n  \"families\": [";
    for (std::size_t i = 0; i < families.size(); ++i) {
      append_json(out, families[i], i == 0);
    }
    out << "\n  ]\n}\n";
    if (!out.good()) return 1;
    std::cout << "wrote " << *json_path << "\n";
  }
  return 0;
}
