// E12 (Table): design-choice ablations called out in DESIGN.md.
//
//  (a) Payment rule: critical-value vs VCG-externality — identical outcomes
//      (the affine-maximizer identity), different computational cost.
//  (b) Budget-queue arrival: realized payments vs winning-bid proxy —
//      payments are what the constraint is written on; the proxy
//      under-counts by the information rent and overspends accordingly.
//  (c) Valuation form: modular (exact WDP, exact truthfulness) vs concave
//      diminishing-returns (greedy WDP) — welfare and winner-count shift.
#include "auction/random_instance.h"
#include "auction/valuation.h"
#include "auction/winner_determination.h"
#include "bench_common.h"
#include "util/timer.h"

int main() {
  using namespace sfl;
  bench::banner("E12", "ablations: payment rule, queue arrival, valuation");

  core::MarketSpec spec = bench::canonical_market_spec(31);
  spec.rounds = bench::scaled(2000);

  // --- (a) payment rule ---
  {
    util::TablePrinter table({"payment rule", "avg_welfare", "avg_payment",
                              "IR", "wall_time_s"});
    for (const bool vcg_externality : {false, true}) {
      auction::MechanismConfig mc = bench::market_mechanism_config(spec);
      mc.lto.vcg_externality_payments = vcg_externality;
      const auto mech = auction::build_mechanism("lto-vcg", mc);
      util::Timer timer;
      const core::MarketResult result = core::run_market(*mech, spec);
      table.row(vcg_externality ? "vcg-externality" : "critical-value",
                result.time_average_welfare, result.average_payment,
                result.ir_fraction, timer.elapsed_seconds());
    }
    table.print(std::cout);
    std::cout << "(outcomes identical by the affine-maximizer identity; "
                 "critical-value is the cheaper implementation)\n\n";
  }

  // --- (b) queue arrival mode ---
  {
    util::TablePrinter table({"queue arrival", "avg_payment",
                              "peak_violation", "avg_welfare"});
    for (const bool bid_proxy : {false, true}) {
      auction::MechanismConfig mc = bench::market_mechanism_config(spec);
      mc.lto.bid_proxy_queue_arrival = bid_proxy;
      const auto mech = auction::build_mechanism("lto-vcg", mc);
      const core::MarketResult result = core::run_market(*mech, spec);
      table.row(bid_proxy ? "winning-bid proxy" : "realized payments",
                result.average_payment, result.peak_budget_violation,
                result.time_average_welfare);
    }
    table.print(std::cout);
    std::cout << "(the bid proxy under-counts the information rent, so its "
                 "average payment overshoots B-bar = "
              << spec.per_round_budget << ")\n\n";
  }

  // --- (c) valuation form: one-shot WDP comparison ---
  {
    util::Rng rng(64);
    auction::RandomInstanceSpec ispec;
    ispec.num_candidates = 50;
    util::TablePrinter table({"valuation", "mean_winners", "mean_score"});
    double modular_winners = 0.0;
    double modular_score = 0.0;
    double concave_winners = 0.0;
    double concave_score = 0.0;
    const int trials = 200;
    const auction::ConcaveValuation concave(8.0);
    const auction::ScoreWeights weights{1.0, 1.0};
    const std::size_t cap = 25;  // loose cap so diminishing returns bind
    for (int t = 0; t < trials; ++t) {
      const auto instance = make_random_instance(ispec, rng);
      const auto modular = select_top_m(instance.candidates, weights, cap);
      modular_winners += static_cast<double>(modular.selected.size());
      modular_score += modular.total_score;
      const auto greedy =
          select_greedy_concave(instance.candidates, concave, weights, cap);
      concave_winners += static_cast<double>(greedy.selected.size());
      concave_score += greedy.total_score;
    }
    table.row("modular (exact top-m)", modular_winners / trials,
              modular_score / trials);
    table.row("concave log(1+x) (greedy)", concave_winners / trials,
              concave_score / trials);
    table.print(std::cout);
    std::cout << "(diminishing returns buys fewer clients per round; the "
                 "modular form keeps exact truthfulness and is the default)\n";
  }
  return 0;
}
