// E9 (Figure): non-IID sensitivity.
//
// Final test accuracy vs the Dirichlet label-skew concentration alpha for
// the LTO-VCG mechanism and two baselines. Smaller alpha = more skew; the
// value-aware mechanisms hold up better than quality/value-blind selection
// because they keep buying the informative (large, clean) shards.
#include "bench_common.h"

#include "util/string_utils.h"

int main() {
  using namespace sfl;
  bench::banner("E9", "final accuracy vs Dirichlet alpha (non-IID skew)");

  const std::vector<double> alphas{0.05, 0.1, 0.3, 1.0, 10.0};
  const std::vector<std::string> mechanisms{"lto-vcg", "fixed-price",
                                            "random-stipend"};

  std::vector<std::string> header{"alpha"};
  for (const auto& m : mechanisms) header.push_back(m);
  util::TablePrinter table(header);

  for (const double alpha : alphas) {
    sim::ScenarioSpec sspec = bench::canonical_scenario_spec(11);
    sspec.partition = sim::PartitionKind::kDirichletLabelSkew;
    sspec.dirichlet_alpha = alpha;
    const sim::Scenario scenario = sim::build_scenario(sspec);
    const core::OrchestratorConfig config =
        bench::canonical_fl_config(sspec, bench::scaled(150));

    std::vector<std::string> row{util::format_double(alpha, 2)};
    for (const auto& name : mechanisms) {
      const core::RunResult result = bench::run_fl(scenario, sspec, name, config);
      row.push_back(util::format_double(result.final_accuracy, 4));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nReading: accuracy degrades as alpha shrinks (more label "
               "skew); the ordering between mechanisms is preserved.\n";
  return 0;
}
