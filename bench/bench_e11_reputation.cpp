// E11 (Table): data-quality reputation.
//
// The canonical market has a cheap noisy-label cohort (adverse selection).
// Compares value-aware selection (reputation-estimated quality q-hat in the
// valuation) against value-blind selection (q-hat = 1): the value-aware
// mechanism learns to avoid the junk shards, buying accuracy with the same
// budget; value-blind buys the cheap noise.
#include "bench_common.h"

int main() {
  using namespace sfl;
  bench::banner("E11", "value-aware (reputation) vs value-blind selection");

  const sim::ScenarioSpec sspec = bench::canonical_scenario_spec(13);
  const sim::Scenario scenario = sim::build_scenario(sspec);
  core::OrchestratorConfig config =
      bench::canonical_fl_config(sspec, bench::scaled(200));

  const auto noisy_start = sspec.num_clients -
                           static_cast<std::size_t>(std::ceil(
                               sspec.noisy_client_fraction *
                               static_cast<double>(sspec.num_clients)));

  struct Variant {
    std::string name;
    bool use_reputation;
    std::string mechanism;
  };
  const std::vector<Variant> variants{
      {"lto-vcg value-aware", true, "lto-vcg"},
      {"lto-vcg value-blind", false, "lto-vcg"},
      {"myopic-vcg value-aware", true, "myopic-vcg"},
      {"myopic-vcg value-blind", false, "myopic-vcg"},
  };

  util::TablePrinter table({"variant", "accuracy", "noisy_win_share",
                            "mean_rep_clean", "mean_rep_noisy",
                            "avg_payment"});
  for (const auto& variant : variants) {
    config.use_reputation = variant.use_reputation;
    const core::RunResult result =
        bench::run_fl(scenario, sspec, variant.mechanism, config);
    double noisy_wins = 0.0;
    double total_wins = 0.0;
    double rep_clean = 0.0;
    double rep_noisy = 0.0;
    for (std::size_t c = 0; c < sspec.num_clients; ++c) {
      total_wins += result.participation_counts[c];
      if (c >= noisy_start) {
        noisy_wins += result.participation_counts[c];
        rep_noisy += result.final_reputation[c];
      } else {
        rep_clean += result.final_reputation[c];
      }
    }
    table.row(variant.name, result.final_accuracy,
              total_wins > 0.0 ? noisy_wins / total_wins : 0.0,
              rep_clean / static_cast<double>(noisy_start),
              rep_noisy / static_cast<double>(sspec.num_clients - noisy_start),
              result.average_payment);
  }
  table.print(std::cout);
  std::cout << "\nReading: noisy clients hold 30% of ids and are 2.5x "
               "cheaper. Value-blind selection over-buys them; the "
               "reputation loop identifies them (low q-hat) and redirects "
               "the budget to clean shards.\n";
  return 0;
}
