// E4 (Figure): client utility vs misreport factor.
//
// For a single deviating client (everyone else truthful), sweep the bid
// factor gamma in [0.25, 3] and plot realized utility under LTO-VCG and
// pay-as-bid. Attackers are chosen as the most frequent winners of a
// truthful reference run — deviations only matter for clients who actually
// trade. The LTO-VCG curve is maximized at gamma = 1 (DSIC; the plateau
// left of 1 is the hallmark of critical payments: any winning bid gets the
// same payment). Pay-as-bid pays zero rent at truth, so its curve peaks at
// gamma > 1: overbidding is how winners extract surplus.
#include <algorithm>
#include <numeric>

#include "bench_common.h"

int main() {
  using namespace sfl;
  bench::banner("E4", "utility vs misreport factor (truthfulness figure)");

  core::MarketSpec spec = bench::canonical_market_spec();
  spec.rounds = bench::scaled(1500);

  // Pick attackers: the five most frequent winners under truthful bidding.
  std::vector<std::size_t> attackers;
  {
    const auto reference = auction::build_mechanism(
        "lto-vcg", bench::market_mechanism_config(spec));
    const core::MarketResult truthful_run = core::run_market(*reference, spec);
    std::vector<std::size_t> order(spec.num_clients);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return truthful_run.participation_counts[a] >
             truthful_run.participation_counts[b];
    });
    attackers.assign(order.begin(), order.begin() + 5);
  }

  const std::vector<double> factors{0.25, 0.5, 0.7, 0.85, 1.0,
                                    1.15, 1.3,  1.6, 2.0,  3.0};

  util::TablePrinter table({"gamma", "lto-vcg mean utility",
                            "pay-as-bid mean utility"});
  double lto_at_truth = 0.0;
  double lto_best = -1e18;
  double lto_best_gamma = 0.0;
  double pab_at_truth = 0.0;
  double pab_best = -1e18;
  double pab_best_gamma = 0.0;
  for (const double gamma : factors) {
    double lto_total = 0.0;
    double pab_total = 0.0;
    for (const std::size_t attacker : attackers) {
      const auto lto = auction::build_mechanism(
          "lto-vcg", bench::market_mechanism_config(spec));
      lto_total += core::deviation_utility(*lto, spec, attacker, gamma);
      const auto pab = auction::build_mechanism(
          "pay-as-bid", bench::market_mechanism_config(spec));
      pab_total += core::deviation_utility(*pab, spec, attacker, gamma);
    }
    const double lto_mean = lto_total / static_cast<double>(attackers.size());
    const double pab_mean = pab_total / static_cast<double>(attackers.size());
    table.row(gamma, lto_mean, pab_mean);
    if (gamma == 1.0) {
      lto_at_truth = lto_mean;
      pab_at_truth = pab_mean;
    }
    // Ties broken toward the factor closest to truthful reporting.
    if (lto_mean > lto_best + 1e-9 ||
        (lto_mean > lto_best - 1e-9 &&
         std::abs(gamma - 1.0) < std::abs(lto_best_gamma - 1.0))) {
      lto_best = std::max(lto_best, lto_mean);
      lto_best_gamma = gamma;
    }
    if (pab_mean > pab_best + 1e-9 ||
        (pab_mean > pab_best - 1e-9 &&
         std::abs(gamma - 1.0) < std::abs(pab_best_gamma - 1.0))) {
      pab_best = std::max(pab_best, pab_mean);
      pab_best_gamma = gamma;
    }
  }
  table.print(std::cout);

  std::cout << "\nlto-vcg: best gamma = " << lto_best_gamma
            << ", gain over truth = " << lto_best - lto_at_truth
            << " (DSIC: expected 1.0 / ~0)\n";
  std::cout << "pay-as-bid: best gamma = " << pab_best_gamma
            << ", gain over truth = " << pab_best - pab_at_truth
            << " (manipulable: expected > 1 / positive)\n";
  return 0;
}
