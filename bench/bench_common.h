// Shared presets for the experiment benches (E1-E12).
//
// The canonical FL market used across experiments: 40 clients, non-IID
// Dirichlet shards, a 30% noisy-label cohort that is also cheap (adverse
// selection), heavy-tailed costs. REPRO_FAST=1 shrinks every experiment for
// smoke runs.
#pragma once

#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "auction/registry.h"
#include "core/market_simulation.h"
#include "core/orchestrator.h"
#include "fl/logistic_regression.h"
#include "util/config.h"
#include "util/string_utils.h"
#include "util/table.h"

namespace sfl::bench {

/// Scale factor for workload sizes: 1.0 normally, 0.2 under REPRO_FAST.
inline double workload_scale() {
  return sfl::util::fast_mode_enabled() ? 0.2 : 1.0;
}

inline std::size_t scaled(std::size_t n) {
  const auto s = static_cast<std::size_t>(static_cast<double>(n) * workload_scale());
  return s < 10 ? 10 : s;
}

/// The canonical evaluation scenario (see file comment).
inline sim::ScenarioSpec canonical_scenario_spec(std::uint64_t seed = 42) {
  sim::ScenarioSpec spec;
  spec.num_clients = 40;
  spec.train_examples = 4000;
  spec.test_examples = 800;
  spec.validation_examples = 200;
  spec.num_classes = 10;
  spec.feature_dim = 32;
  spec.class_separation = 0.9;
  spec.partition = sim::PartitionKind::kDirichletLabelSkew;
  spec.dirichlet_alpha = 0.3;
  spec.noisy_client_fraction = 0.3;
  spec.noisy_flip_probability = 0.8;
  spec.seed = seed;
  return spec;
}

/// Orchestrator preset matched to the canonical scenario. Noisy clients get
/// a 0.4x cost multiplier (cheap junk data — the adverse-selection trap).
inline core::OrchestratorConfig canonical_fl_config(
    const sim::ScenarioSpec& sspec, std::size_t rounds) {
  core::OrchestratorConfig config;
  config.rounds = rounds;
  config.max_winners = 8;
  config.per_round_budget = 6.0;
  config.valuation_scale = 2.0;
  config.eval_every = 10;
  config.cost.base_sigma = 0.5;
  config.seed = sspec.seed;
  const auto noisy_count = static_cast<std::size_t>(
      std::ceil(sspec.noisy_client_fraction *
                static_cast<double>(sspec.num_clients)));
  config.cost_multipliers.assign(sspec.num_clients, 1.0);
  for (std::size_t offset = 0; offset < noisy_count; ++offset) {
    config.cost_multipliers[sspec.num_clients - 1 - offset] = 0.4;
  }
  return config;
}

inline fl::LocalTrainingSpec canonical_training_spec() {
  fl::LocalTrainingSpec spec;
  spec.local_steps = 5;
  spec.batch_size = 32;
  spec.optimizer.learning_rate = 0.05;
  return spec;
}

/// Sustainable participation rate used by the canonical paced LTO-VCG: each
/// client can win at most half the rounds long-run, which both respects
/// device energy budgets and rotates coverage across non-IID shards.
inline constexpr double kCanonicalPacingRate = 0.5;

/// Round-scratch pool for multi-mechanism comparison runs. The benches
/// build one mechanism per rule and run them sequentially (or in settled
/// lockstep, never two rounds at once), so every LTO-family mechanism can
/// lease the SAME RoundScratch: the first run grows the buffers, every
/// later mechanism starts warm and skips the per-mechanism growth
/// allocations entirely (regression-tested by
/// tests/auction/round_scratch_alloc_test.cpp). lease(i) hands out one
/// scratch per concurrency lane — benches use lane 0; a future bench that
/// runs two mechanisms' rounds concurrently leases distinct lanes.
class ScratchPool {
 public:
  [[nodiscard]] auction::RoundScratch& lease(std::size_t lane = 0) {
    while (lane >= scratches_.size()) {
      scratches_.push_back(std::make_unique<auction::RoundScratch>());
    }
    return *scratches_[lane];
  }

  [[nodiscard]] static ScratchPool& global() {
    static ScratchPool pool;
    return pool;
  }

 private:
  // Stable addresses: mechanisms hold RoundScratch* across leases.
  std::vector<std::unique_ptr<auction::RoundScratch>> scratches_;
};

/// Registry config for the canonical FL experiments: the LTO mechanism
/// inherits the orchestrator's budget and paces every client at
/// kCanonicalPacingRate (the "lto-vcg-unpaced" key ignores the pacing).
/// Every mechanism built from this config shares the bench scratch pool's
/// lane 0 (comparison runs are sequential).
inline auction::MechanismConfig canonical_mechanism_config(
    const core::OrchestratorConfig& config, std::size_t num_clients,
    double v_weight = 10.0) {
  auction::MechanismConfig mc;
  mc.num_clients = num_clients;
  mc.per_round_budget = config.per_round_budget;
  mc.seed = config.seed;
  mc.lto.v_weight = v_weight;
  mc.lto.pacing_rate = kCanonicalPacingRate;
  mc.lto.shared_scratch = &ScratchPool::global().lease();
  return mc;
}

/// Registry config for the auction-only market benches (E2-E6, E10, E12,
/// E13): unpaced LTO (no Z queues) matching the market's flat energy
/// model, sharing the same pooled scratch as the FL configs.
inline auction::MechanismConfig market_mechanism_config(
    const core::MarketSpec& spec, double v_weight = 10.0) {
  auction::MechanismConfig mc;
  mc.num_clients = spec.num_clients;
  mc.per_round_budget = spec.per_round_budget;
  mc.seed = spec.seed;
  mc.lto.v_weight = v_weight;
  mc.lto.shared_scratch = &ScratchPool::global().lease();
  return mc;
}

/// Mechanism factory by name via the global MechanismRegistry (the single
/// source of truth for mechanism keys; see `describe()` for the list).
inline std::unique_ptr<auction::Mechanism> make_mechanism(
    const std::string& name, const core::OrchestratorConfig& config,
    std::size_t num_clients, double v_weight = 10.0) {
  return auction::build_mechanism(
      name, canonical_mechanism_config(config, num_clients, v_weight));
}

/// All mechanism names compared in the FL experiments.
inline std::vector<std::string> all_mechanism_names() {
  return {"lto-vcg",     "lto-vcg-unpaced", "myopic-vcg",
          "pay-as-bid",  "fixed-price",     "adaptive-price",
          "random-stipend", "proportional-share"};
}

/// One full FL run with the named mechanism on a shared scenario.
inline core::RunResult run_fl(const sim::Scenario& scenario,
                              const sim::ScenarioSpec& sspec,
                              const std::string& mechanism_name,
                              const core::OrchestratorConfig& config,
                              double v_weight = 10.0) {
  auto model = std::make_unique<fl::LogisticRegression>(
      sspec.feature_dim, sspec.num_classes, 1e-4);
  core::SustainableFlOrchestrator orchestrator(
      scenario, std::move(model), canonical_training_spec(),
      make_mechanism(mechanism_name, config, scenario.num_clients(), v_weight),
      config);
  return orchestrator.run();
}

/// Canonical auction-only market (for E2-E6, E10).
inline core::MarketSpec canonical_market_spec(std::uint64_t seed = 7) {
  core::MarketSpec spec;
  spec.num_clients = 100;
  spec.rounds = scaled(3000);
  spec.max_winners = 10;
  spec.per_round_budget = 6.0;
  spec.valuation_scale = 2.0;
  spec.cost.base_sigma = 0.5;
  spec.seed = seed;
  return spec;
}

/// Prints the standard experiment banner.
inline void banner(const std::string& id, const std::string& title) {
  std::cout << "==============================================================\n"
            << id << " — " << title << "\n"
            << "==============================================================\n";
}

// --- machine-readable bench output -----------------------------------------
//
// Benches accept `--json=<path>` (or `json=<path>`) and emit a small JSON
// file with one entry per measured (benchmark, N) pair, so the perf
// trajectory is diffable across PRs and CI uploads it as an artifact.

/// Collects per-variant wall times and writes them as BENCH_<id>.json.
class BenchJsonWriter {
 public:
  struct Entry {
    std::string benchmark;  ///< full benchmark name, e.g. "BM_FullRound/1000"
    std::string variant;    ///< family label, e.g. "sharded-auto"
    std::size_t n = 0;      ///< problem size (0 when not applicable)
    double real_time_us = 0.0;  ///< wall time per iteration, microseconds
    std::size_t iterations = 0;
  };

  void add(Entry entry) { entries_.push_back(std::move(entry)); }

  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }

  /// Writes `{"bench": id, "repro_fast": ..., "entries": [...]}`. Returns
  /// false (after printing to stderr) when the file cannot be opened.
  bool write(const std::string& path, const std::string& bench_id) const {
    std::ofstream out(path);
    if (!out.is_open()) {
      std::cerr << "bench json: cannot write " << path << "\n";
      return false;
    }
    out << "{\n  \"bench\": \"" << bench_id << "\",\n"
        << "  \"repro_fast\": "
        << (sfl::util::fast_mode_enabled() ? "true" : "false") << ",\n"
        << "  \"entries\": [";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      out << (i == 0 ? "\n" : ",\n")
          << "    {\"benchmark\": \"" << e.benchmark << "\", \"variant\": \""
          << e.variant << "\", \"n\": " << e.n
          << ", \"real_time_us\": " << e.real_time_us
          << ", \"iterations\": " << e.iterations << "}";
    }
    out << "\n  ]\n}\n";
    return out.good();
  }

  /// Extracts `--json=<path>` / `json=<path>` from argv (removing it so
  /// downstream flag parsers — e.g. google-benchmark — never see it).
  static std::optional<std::string> extract_json_path(int& argc, char** argv) {
    std::optional<std::string> path;
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg.rfind("--json=", 0) == 0) {
        path = std::string(arg.substr(7));
      } else if (arg.rfind("json=", 0) == 0) {
        path = std::string(arg.substr(5));
      } else {
        argv[kept++] = argv[i];
      }
    }
    argc = kept;
    return path;
  }

 private:
  std::vector<Entry> entries_;
};

}  // namespace sfl::bench
