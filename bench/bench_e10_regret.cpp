// E10 (Table): regret decomposition against two clairvoyant benchmarks as
// the horizon grows.
//
//  - first-best oracle: budget-blind welfare optimum. The gap to it contains
//    the (non-vanishing) price of honouring the budget at all.
//  - budgeted oracle: welfare optimum among policies that spend <= B-bar
//    per round paying true costs. The gap to it is the information rent a
//    truthful mechanism pays (flat in K) plus the Lyapunov transient
//    (decays with K).
//  - budget convergence: |avg payment - B-bar| -> 0 as K grows at rate
//    O(V/K) — the observable transient.
#include <cmath>

#include "bench_common.h"

int main() {
  using namespace sfl;
  bench::banner("E10", "regret decomposition vs horizon K");

  util::TablePrinter table({"K (rounds)", "first-best avg W",
                            "budgeted-oracle avg W", "lto avg W",
                            "gap to budgeted/round", "|avg_pay - B-bar|"});
  const std::vector<std::size_t> horizons{250, 500, 1000, 2000, 4000, 8000};
  std::vector<double> budget_gaps;
  for (const std::size_t horizon : horizons) {
    core::MarketSpec spec = bench::canonical_market_spec(99);
    spec.rounds = bench::scaled(horizon);

    const auction::MechanismConfig mc = bench::market_mechanism_config(spec);

    const auto first_best = auction::build_mechanism("first-best-oracle", mc);
    const core::MarketResult fb = core::run_market(*first_best, spec);

    const auto budgeted = auction::build_mechanism("budgeted-oracle", mc);
    const core::MarketResult bo = core::run_market(*budgeted, spec);

    const auto lto = auction::build_mechanism("lto-vcg", mc);
    const core::MarketResult lr = core::run_market(*lto, spec);

    const double budget_gap =
        std::abs(lr.average_payment - spec.per_round_budget);
    budget_gaps.push_back(budget_gap);
    table.row(spec.rounds, fb.time_average_welfare, bo.time_average_welfare,
              lr.time_average_welfare,
              bo.time_average_welfare - lr.time_average_welfare, budget_gap);
  }
  table.print(std::cout);

  std::cout << "\nBudget transient: |avg payment - B-bar| shrank from "
            << util::format_double(budget_gaps.front(), 4) << " (K="
            << horizons.front() << ") to "
            << util::format_double(budget_gaps.back(), 4) << " (K="
            << horizons.back() << ") — the O(V/K) Lyapunov transient.\n"
            << "The residual gap to the budgeted oracle is the information "
               "rent: a truthful mechanism pays critical values, not costs, "
               "so the same B-bar buys fewer clients. The budget-blind "
               "first-best additionally shows the price of the budget "
               "constraint itself.\n";
  return 0;
}
