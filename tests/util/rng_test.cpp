#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace sfl::util {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (a() != b()) ++differences;
  }
  EXPECT_GT(differences, 24);
}

TEST(RngTest, SplitDecorrelatesChildFromParent) {
  Rng parent(42);
  Rng child = parent.split();
  int matches = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++matches;
  }
  EXPECT_LE(matches, 1);
}

TEST(RngTest, UniformStaysInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
  EXPECT_THROW((void)rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(RngTest, UniformIndexCoversSupportUniformly) {
  Rng rng(12);
  std::array<int, 5> counts{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.uniform_index(5)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
  }
  EXPECT_THROW((void)rng.uniform_index(0), std::invalid_argument);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(14);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParametersShiftsAndScales) {
  Rng rng(15);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
  EXPECT_THROW((void)rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(RngTest, LognormalIsPositiveWithCorrectMedian) {
  Rng rng(16);
  std::vector<double> values;
  const int n = 50001;
  for (int i = 0; i < n; ++i) {
    const double v = rng.lognormal(1.0, 0.5);
    EXPECT_GT(v, 0.0);
    values.push_back(v);
  }
  std::nth_element(values.begin(), values.begin() + n / 2, values.end());
  EXPECT_NEAR(values[n / 2], std::exp(1.0), 0.1);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequencyMatchesProbability) {
  Rng rng(18);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  EXPECT_THROW((void)rng.bernoulli(1.5), std::invalid_argument);
}

TEST(RngTest, GammaMeanIsShapeTimesScale) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.gamma(3.0, 2.0);
  EXPECT_NEAR(sum / n, 6.0, 0.1);
}

TEST(RngTest, GammaSmallShapeStillPositiveAndFinite) {
  Rng rng(20);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.gamma(0.3, 1.0);
    EXPECT_GT(v, 0.0);
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(21);
  for (int trial = 0; trial < 100; ++trial) {
    const auto p = rng.dirichlet(8, 0.5);
    ASSERT_EQ(p.size(), 8u);
    double sum = 0.0;
    for (const double v : p) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(RngTest, DirichletSmallAlphaConcentrates) {
  Rng rng(22);
  double max_sum = 0.0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    const auto p = rng.dirichlet(10, 0.05);
    max_sum += *std::max_element(p.begin(), p.end());
  }
  // With alpha = 0.05 most of the mass sits in one coordinate.
  EXPECT_GT(max_sum / trials, 0.7);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(23);
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.015);
  EXPECT_THROW((void)rng.categorical({0.0, 0.0}), std::invalid_argument);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(24);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(25);
  const auto sample = rng.sample_without_replacement(20, 7);
  ASSERT_EQ(sample.size(), 7u);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 7u);
  for (const auto s : sample) EXPECT_LT(s, 20u);
  EXPECT_THROW((void)rng.sample_without_replacement(3, 5), std::invalid_argument);
}

TEST(RngTest, SampleWithoutReplacementFullPopulation) {
  Rng rng(26);
  auto sample = rng.sample_without_replacement(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace sfl::util
