#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "util/csv.h"
#include "util/config.h"

namespace sfl::util {
namespace {

TEST(CsvWriterTest, WritesHeaderImmediately) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  EXPECT_EQ(out.str(), "a,b\n");
  EXPECT_EQ(csv.columns(), 2u);
  EXPECT_EQ(csv.rows_written(), 0u);
}

TEST(CsvWriterTest, WritesRowsWithMatchingWidth) {
  std::ostringstream out;
  CsvWriter csv(out, {"x", "y", "z"});
  csv.write_row({"1", "2", "3"});
  csv.row(4, 5.5, "six");
  EXPECT_EQ(csv.rows_written(), 2u);
  EXPECT_EQ(out.str(), "x,y,z\n1,2,3\n4,5.5,six\n");
}

TEST(CsvWriterTest, RejectsWrongWidth) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  EXPECT_THROW(csv.write_row({"only-one"}), std::invalid_argument);
}

TEST(CsvWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(CsvWriter::escape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(CsvWriter::escape("has\nnewline"), "\"has\nnewline\"");
}

TEST(CsvWriterTest, RejectsEmptyHeader) {
  std::ostringstream out;
  EXPECT_THROW(CsvWriter(out, {}), std::invalid_argument);
}

TEST(ConfigTest, ParsesKeyValueArgs) {
  const char* argv[] = {"prog", "rounds=100", "budget=2.5", "name=test"};
  const Config config = Config::from_args(4, argv);
  EXPECT_EQ(config.get_int("rounds", 0), 100);
  EXPECT_DOUBLE_EQ(config.get_double("budget", 0.0), 2.5);
  EXPECT_EQ(config.get_string("name", ""), "test");
}

TEST(ConfigTest, FallbacksApplyWhenKeyMissing) {
  const Config config;
  EXPECT_EQ(config.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(config.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(config.get_string("missing", "dflt"), "dflt");
  EXPECT_TRUE(config.get_bool("missing", true));
  EXPECT_EQ(config.get_size("missing", 3u), 3u);
}

TEST(ConfigTest, RejectsMalformedTokens) {
  const char* argv[] = {"prog", "no-equals"};
  EXPECT_THROW(Config::from_args(2, argv), std::invalid_argument);
  const char* argv2[] = {"prog", "=value"};
  EXPECT_THROW(Config::from_args(2, argv2), std::invalid_argument);
}

TEST(ConfigTest, TypedGettersValidate) {
  Config config;
  config.set("num", "12x");
  EXPECT_THROW((void)config.get_int("num", 0), std::invalid_argument);
  EXPECT_THROW((void)config.get_double("num", 0.0), std::invalid_argument);
  config.set("flag", "maybe");
  EXPECT_THROW((void)config.get_bool("flag", false), std::invalid_argument);
  config.set("neg", "-5");
  EXPECT_THROW((void)config.get_size("neg", 0), std::invalid_argument);
}

TEST(ConfigTest, BooleanSpellings) {
  Config config;
  for (const char* truthy : {"1", "true", "yes", "on"}) {
    config.set("b", truthy);
    EXPECT_TRUE(config.get_bool("b", false)) << truthy;
  }
  for (const char* falsy : {"0", "false", "no", "off"}) {
    config.set("b", falsy);
    EXPECT_FALSE(config.get_bool("b", true)) << falsy;
  }
}

TEST(ConfigTest, FromTextParsesLinesAndComments) {
  const Config config = Config::from_text(
      "rounds = 50\n"
      "# a comment line\n"
      "budget = 3.0   # trailing comment\n"
      "\n"
      "name = run-a\n");
  EXPECT_EQ(config.get_int("rounds", 0), 50);
  EXPECT_DOUBLE_EQ(config.get_double("budget", 0.0), 3.0);
  EXPECT_EQ(config.get_string("name", ""), "run-a");
  EXPECT_EQ(config.keys().size(), 3u);
}

TEST(ConfigTest, LaterDuplicatesOverride) {
  const char* argv[] = {"prog", "k=1", "k=2"};
  const Config config = Config::from_args(3, argv);
  EXPECT_EQ(config.get_int("k", 0), 2);
}

TEST(FastModeTest, FollowsEnvironmentVariable) {
  unsetenv("REPRO_FAST");
  EXPECT_FALSE(fast_mode_enabled());
  setenv("REPRO_FAST", "1", 1);
  EXPECT_TRUE(fast_mode_enabled());
  setenv("REPRO_FAST", "yes", 1);
  EXPECT_TRUE(fast_mode_enabled());
  setenv("REPRO_FAST", "0", 1);
  EXPECT_FALSE(fast_mode_enabled());
  setenv("REPRO_FAST", "garbage", 1);
  EXPECT_FALSE(fast_mode_enabled());
  unsetenv("REPRO_FAST");
}

}  // namespace
}  // namespace sfl::util
