#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "util/logging.h"
#include "util/string_utils.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace sfl::util {
namespace {

TEST(StringUtilsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("xy", ','), (std::vector<std::string>{"xy"}));
}

TEST(StringUtilsTest, TrimStripsBothEnds) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t\nhi"), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtilsTest, StartsWith) {
  EXPECT_TRUE(starts_with("prefix-rest", "prefix"));
  EXPECT_FALSE(starts_with("pre", "prefix"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(StringUtilsTest, JoinAndPad) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(pad_left("7", 3), "  7");
  EXPECT_EQ(pad_right("7", 3), "7  ");
  EXPECT_EQ(pad_left("long", 2), "long");
}

TEST(StringUtilsTest, FormatDouble) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(2.0, 4), "2.0000");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.row("short", 1.0);
  table.row("a-much-longer-name", 23.5);
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| name"), std::string::npos);
  EXPECT_NE(text.find("a-much-longer-name"), std::string::npos);
  EXPECT_NE(text.find("23.5000"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TablePrinterTest, RejectsWidthMismatch) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(LoggingTest, LevelFiltering) {
  std::ostringstream sink;
  Logger logger(LogLevel::kWarn, &sink);
  logger.info("suppressed");
  logger.warn("visible-warning");
  logger.error("visible-error ", 42);
  const std::string text = sink.str();
  EXPECT_EQ(text.find("suppressed"), std::string::npos);
  EXPECT_NE(text.find("visible-warning"), std::string::npos);
  EXPECT_NE(text.find("visible-error 42"), std::string::npos);
}

TEST(LoggingTest, ParseLevelRoundTrips) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_THROW(parse_log_level("loud"), std::invalid_argument);
  EXPECT_EQ(to_string(LogLevel::kInfo), "INFO");
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  // Busy-wait a tiny amount; elapsed must be non-negative and monotone.
  const double t1 = timer.elapsed_seconds();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  const double t2 = timer.elapsed_seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  timer.restart();
  EXPECT_LT(timer.elapsed_seconds(), t2 + 1.0);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, RejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit({}), std::invalid_argument);
}

}  // namespace
}  // namespace sfl::util
