// Dispatch-forcing bit-exactness tests for the SIMD scoring kernels
// (util/simd.h): every kernel available on this host must reproduce
// auction::score bit for bit over adversarial inputs — denormals, exact
// ties, signed zeros, large magnitudes, every tail length — with and
// without penalties. A diverging kernel is a bug in the kernel; these
// checks must never be loosened to a tolerance.
#include "util/simd.h"

#include <gtest/gtest.h>

#include <bit>
#include <cfloat>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "auction/types.h"
#include "util/rng.h"

namespace sfl::util::simd {
namespace {

std::vector<ScoreKernel> available_kernels() {
  std::vector<ScoreKernel> kernels;
  for (const ScoreKernel k :
       {ScoreKernel::kScalar, ScoreKernel::kAvx2, ScoreKernel::kNeon}) {
    if (kernel_available(k)) kernels.push_back(k);
  }
  return kernels;
}

/// Bit-for-bit comparison of one kernel against the one scoring expression
/// (auction::score), with and without the penalties pointer.
void expect_kernel_matches_score(ScoreKernel kernel,
                                 const std::vector<double>& values,
                                 const std::vector<double>& bids,
                                 const std::vector<double>& penalties,
                                 double value_weight, double bid_weight,
                                 const std::string& label) {
  const sfl::auction::ScoreWeights weights{.value_weight = value_weight,
                                           .bid_weight = bid_weight};
  const std::size_t n = values.size();
  std::vector<double> got(n, 42.0);

  // With penalties.
  score_span_with(kernel, values.data(), bids.data(), penalties.data(),
                  got.data(), n, value_weight, bid_weight);
  for (std::size_t i = 0; i < n; ++i) {
    const double want =
        sfl::auction::score(values[i], bids[i], weights, penalties[i]);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i]),
              std::bit_cast<std::uint64_t>(want))
        << label << ": kernel " << kernel_name(kernel) << " diverges at row "
        << i << " (with penalties): got " << got[i] << " want " << want;
  }

  // Null penalties must equal the explicit all-zero subtraction: the
  // kernels skip the subtract, and x - (+0.0) == x for every non-NaN x.
  std::vector<double> got_null(n, 42.0);
  score_span_with(kernel, values.data(), bids.data(), nullptr, got_null.data(),
                  n, value_weight, bid_weight);
  for (std::size_t i = 0; i < n; ++i) {
    const double want = sfl::auction::score(values[i], bids[i], weights, 0.0);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got_null[i]),
              std::bit_cast<std::uint64_t>(want))
        << label << ": kernel " << kernel_name(kernel) << " diverges at row "
        << i << " (null penalties)";
  }
}

TEST(SimdTest, ScalarKernelIsAlwaysAvailableAndActiveKernelIsAvailable) {
  EXPECT_TRUE(kernel_available(ScoreKernel::kScalar));
  EXPECT_TRUE(kernel_available(active_kernel()));
  EXPECT_STREQ(kernel_name(ScoreKernel::kScalar), "scalar");
}

TEST(SimdTest, UnavailableKernelThrows) {
  // At most one of AVX2/NEON can exist on one host; the other must throw
  // from the dispatch-forcing entry rather than silently fall back.
  for (const ScoreKernel k : {ScoreKernel::kAvx2, ScoreKernel::kNeon}) {
    if (kernel_available(k)) continue;
    double x = 1.0;
    EXPECT_THROW(score_span_with(k, &x, &x, nullptr, &x, 1, 1.0, 1.0),
                 std::invalid_argument);
  }
}

TEST(SimdTest, AdversarialValuesMatchScoreBitForBitOnEveryKernel) {
  // The battery: denormals, ±0.0, exact ties, magnitudes near overflow,
  // values whose products would differ under FMA contraction.
  const std::vector<double> values = {
      0.0,
      -0.0,
      std::numeric_limits<double>::denorm_min(),
      DBL_MIN,
      DBL_MIN * 4.0,
      1.0,
      1.0 + DBL_EPSILON,
      1.0 / 3.0,
      2.0 / 3.0,
      1e-300,
      1e300,
      6.626070156e-34,
      9.8765432109876543,
      123456789.123456789,
      0.1,
      0.2,
      0.3};
  const std::vector<double> bids = {
      0.0,
      0.0,
      std::numeric_limits<double>::denorm_min(),
      DBL_MIN,
      DBL_MIN,
      1.0,  // exact tie with value at weight 1: score hits ±0.0
      1.0,
      1.0 / 3.0,  // tie again
      1.0 / 3.0,
      1e-300,
      1e300,  // large cancellation
      6.626070156e-34,
      9.8765432109876543,
      123456789.123456789,
      0.3,
      0.2,
      0.1};
  const std::vector<double> penalties = {
      0.0, -0.0, 0.0,    DBL_MIN, 1e-17, 0.0, DBL_EPSILON, 0.0,   1.0 / 3.0,
      0.0, 1e284, 1e-40, 0.25,    1e8,   0.0, 0.07,        -0.03};
  ASSERT_EQ(values.size(), bids.size());
  ASSERT_EQ(values.size(), penalties.size());

  const std::vector<std::pair<double, double>> weight_sets = {
      {1.0, 1.0},       {10.0, 12.5},     {1.0 / 3.0, 2.0 / 3.0},
      {1e-200, 1e200},  {1e155, 1e155},   {0.0, DBL_MIN}};
  for (const ScoreKernel kernel : available_kernels()) {
    for (const auto& [vw, bw] : weight_sets) {
      expect_kernel_matches_score(kernel, values, bids, penalties, vw, bw,
                                  "adversarial vw=" + std::to_string(vw));
    }
  }
}

TEST(SimdTest, EveryTailLengthMatchesOnEveryKernel) {
  // Lengths 0..17 cover empty spans, pure-tail spans, and full vector
  // widths plus every tail remainder for both 2-wide and 4-wide kernels.
  sfl::util::Rng rng(20260808);
  for (std::size_t n = 0; n <= 17; ++n) {
    std::vector<double> values(n);
    std::vector<double> bids(n);
    std::vector<double> penalties(n);
    for (std::size_t i = 0; i < n; ++i) {
      values[i] = rng.uniform(0.0, 10.0);
      bids[i] = rng.uniform(0.0, 5.0);
      penalties[i] = rng.uniform(0.0, 1.0);
    }
    for (const ScoreKernel kernel : available_kernels()) {
      expect_kernel_matches_score(kernel, values, bids, penalties, 10.0, 11.5,
                                  "tail n=" + std::to_string(n));
    }
  }
}

TEST(SimdTest, SeededRandomSweepMatchesOnEveryKernelAndDefaultDispatch) {
  sfl::util::Rng rng(0xfeedface);
  const sfl::auction::ScoreWeights weights{.value_weight = 7.25,
                                           .bid_weight = 9.75};
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_index(257));
    std::vector<double> values(n);
    std::vector<double> bids(n);
    std::vector<double> penalties(n);
    for (std::size_t i = 0; i < n; ++i) {
      values[i] = rng.uniform(0.0, 100.0);
      bids[i] = rng.uniform(0.0, 50.0);
      penalties[i] = rng.uniform(0.0, 5.0);
    }
    for (const ScoreKernel kernel : available_kernels()) {
      expect_kernel_matches_score(kernel, values, bids, penalties,
                                  weights.value_weight, weights.bid_weight,
                                  "random trial " + std::to_string(trial));
    }
    // The default dispatch must agree with whatever kernel it selected.
    std::vector<double> got(n);
    score_span(values.data(), bids.data(), penalties.data(), got.data(), n,
               weights.value_weight, weights.bid_weight);
    for (std::size_t i = 0; i < n; ++i) {
      const double want =
          sfl::auction::score(values[i], bids[i], weights, penalties[i]);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i]),
                std::bit_cast<std::uint64_t>(want));
    }
  }
}

}  // namespace
}  // namespace sfl::util::simd
