// ThreadPool stress coverage, written to run meaningfully under
// ThreadSanitizer (-DSFL_SANITIZE=thread): concurrent parallel_for_chunks
// callers racing the bulk-job path, submit()/wait_idle() storms interleaved
// with bulk loops, and the settlement producer/consumer pipeline hammering
// one pool — the exact concurrency shapes the sharded WDP and the async
// settler put on shared_pool() in production.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "core/async_settler.h"
#include "core/settlement_queue.h"
#include "util/thread_pool.h"

namespace sfl::util {
namespace {

TEST(ThreadPoolStressTest, ConcurrentBulkCallersSerializeCorrectly) {
  // Several threads issue parallel_for_chunks on ONE pool at once; the
  // bulk-caller mutex serializes the jobs, every chunk of every job must
  // run exactly once, and no counts may interleave across jobs.
  ThreadPool pool(4);
  static constexpr std::size_t kCallers = 6;
  static constexpr std::size_t kIterations = 40;
  static constexpr std::size_t kItems = 4096;

  std::vector<std::thread> callers;
  std::atomic<std::size_t> total{0};
  for (std::size_t caller = 0; caller < kCallers; ++caller) {
    callers.emplace_back([&pool, &total] {
      for (std::size_t iteration = 0; iteration < kIterations; ++iteration) {
        std::atomic<std::size_t> local{0};
        pool.parallel_for_chunks(
            kItems, 8,
            [&local](std::size_t /*chunk*/, std::size_t begin,
                     std::size_t end) {
              local.fetch_add(end - begin, std::memory_order_relaxed);
            });
        ASSERT_EQ(local.load(), kItems);
        total.fetch_add(local.load(), std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  EXPECT_EQ(total.load(), kCallers * kIterations * kItems);
}

TEST(ThreadPoolStressTest, SubmitStormInterleavedWithBulkLoops) {
  // submit() traffic (the FL trainer's pattern) and bulk fork-join loops
  // (the sharded WDP's pattern) share one pool concurrently.
  ThreadPool pool(3);
  std::atomic<std::size_t> submitted_done{0};
  constexpr std::size_t kTasks = 400;
  constexpr std::size_t kBulkRounds = 50;

  std::thread submitter([&pool, &submitted_done] {
    for (std::size_t task = 0; task < kTasks; ++task) {
      pool.submit([&submitted_done] {
        submitted_done.fetch_add(1, std::memory_order_relaxed);
      });
    }
  });

  std::size_t bulk_items = 0;
  for (std::size_t round = 0; round < kBulkRounds; ++round) {
    std::atomic<std::size_t> seen{0};
    pool.parallel_for_chunks(1024, 6,
                             [&seen](std::size_t, std::size_t begin,
                                     std::size_t end) {
                               seen.fetch_add(end - begin,
                                              std::memory_order_relaxed);
                             });
    ASSERT_EQ(seen.load(), 1024u);
    bulk_items += seen.load();
  }
  submitter.join();
  pool.wait_idle();
  EXPECT_EQ(submitted_done.load(), kTasks);
  EXPECT_EQ(bulk_items, kBulkRounds * 1024u);
}

TEST(ThreadPoolStressTest, SettlementPipelineUnderConcurrentPoolLoad) {
  // The production composition: an AsyncSettler draining settlements on
  // the same pool that concurrently runs bulk loops (sharded WDP) — the
  // TSan target for the whole async settlement feature.
  class CountingMechanism final : public sfl::auction::Mechanism {
   public:
    [[nodiscard]] std::string name() const override { return "counting"; }
    [[nodiscard]] sfl::auction::MechanismResult run_round(
        const std::vector<sfl::auction::Candidate>&,
        const sfl::auction::RoundContext&) override {
      return {};
    }
    void settle(const sfl::auction::RoundSettlement& settlement) override {
      total_payment_ += settlement.total_payment;
      ++settle_calls_;
    }
    [[nodiscard]] bool is_truthful() const noexcept override { return true; }

    double total_payment_ = 0.0;  ///< serialized by the settler's applier
    std::size_t settle_calls_ = 0;
  };

  ThreadPool pool(4);
  CountingMechanism mechanism;
  constexpr std::size_t kRounds = 2000;
  {
    sfl::core::AsyncSettler settler(
        mechanism,
        sfl::core::AsyncSettlerConfig{.queue_capacity = 8, .pool = &pool});

    std::thread bulk_load([&pool] {
      for (std::size_t round = 0; round < 60; ++round) {
        std::atomic<std::size_t> seen{0};
        pool.parallel_for_chunks(2048, 8,
                                 [&seen](std::size_t, std::size_t begin,
                                         std::size_t end) {
                                   seen.fetch_add(end - begin,
                                                  std::memory_order_relaxed);
                                 });
        ASSERT_EQ(seen.load(), 2048u);
      }
    });

    sfl::auction::RoundSettlement slot;
    for (std::size_t round = 0; round < kRounds; ++round) {
      slot.round = round;
      slot.total_payment = 1.0;
      slot.winners.clear();
      settler.enqueue(slot);
      if (round % 128 == 0) settler.flush();
    }
    bulk_load.join();
    settler.flush();
    EXPECT_EQ(mechanism.settle_calls_, kRounds);
    EXPECT_DOUBLE_EQ(mechanism.total_payment_,
                     static_cast<double>(kRounds));
  }
}

TEST(ThreadPoolStressTest, QueueManyProducersOneConsumer) {
  // MPSC shape on the raw queue: several producers block on a small ring
  // while one consumer drains; every pushed settlement must come out
  // exactly once.
  sfl::core::SettlementQueue queue(4);
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 300;

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      sfl::auction::RoundSettlement slot;
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        slot.round = p * kPerProducer + i;
        slot.total_payment = 1.0;
        queue.push(slot);
      }
    });
  }

  std::size_t received = 0;
  std::vector<bool> seen(kProducers * kPerProducer, false);
  sfl::auction::RoundSettlement out;
  while (received < kProducers * kPerProducer) {
    ASSERT_TRUE(queue.pop(out));
    ASSERT_LT(out.round, seen.size());
    ASSERT_FALSE(seen[out.round]) << "duplicate settlement " << out.round;
    seen[out.round] = true;
    ++received;
  }
  for (std::thread& producer : producers) producer.join();
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace sfl::util
