#include "util/require.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sfl::util {
namespace {

TEST(RequireTest, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(require(true, "never fires"));
  EXPECT_NO_THROW(check_invariant(true, "never fires"));
}

TEST(RequireTest, FailingRequireThrowsInvalidArgument) {
  EXPECT_THROW(require(false, "bad argument"), std::invalid_argument);
}

TEST(RequireTest, FailingInvariantThrowsLogicError) {
  EXPECT_THROW(check_invariant(false, "broken invariant"), std::logic_error);
}

TEST(RequireTest, MessageIncludesTextAndLocation) {
  try {
    require(false, "distinctive-message");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("distinctive-message"), std::string::npos);
    EXPECT_NE(what.find("require_test.cpp"), std::string::npos);
  }
}

TEST(CheckedIndexTest, InRangeReturnsIndex) {
  EXPECT_EQ(checked_index(0, 3, "thing"), 0u);
  EXPECT_EQ(checked_index(2, 3, "thing"), 2u);
}

TEST(CheckedIndexTest, OutOfRangeThrows) {
  EXPECT_THROW(checked_index(3, 3, "thing"), std::out_of_range);
  EXPECT_THROW(checked_index(100, 3, "thing"), std::out_of_range);
  EXPECT_THROW(checked_index(0, 0, "thing"), std::out_of_range);
}

}  // namespace
}  // namespace sfl::util
