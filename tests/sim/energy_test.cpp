#include "sim/energy.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sfl::sim {
namespace {

EnergySpec default_spec() {
  EnergySpec spec;
  spec.battery_capacity = 3.0;
  spec.initial_charge = 1.0;
  spec.harvest_amount = 1.0;
  return spec;
}

TEST(EnergySystemTest, InitialChargeAndAvailability) {
  const EnergySystem energy(2, default_spec());
  EXPECT_EQ(energy.num_clients(), 2u);
  EXPECT_DOUBLE_EQ(energy.battery(0), 1.0);
  EXPECT_TRUE(energy.available(0, 1.0));
  EXPECT_FALSE(energy.available(0, 1.5));
}

TEST(EnergySystemTest, ConsumeDrainsBattery) {
  EnergySystem energy(1, default_spec());
  energy.consume(0, 0.6);
  EXPECT_NEAR(energy.battery(0), 0.4, 1e-12);
  EXPECT_THROW(energy.consume(0, 1.0), std::invalid_argument);
}

TEST(EnergySystemTest, HarvestCapsAtCapacity) {
  EnergySpec spec = default_spec();
  spec.harvest_probabilities = {1.0};  // deterministic harvest
  EnergySystem energy(1, spec);
  sfl::util::Rng rng(1);
  for (int t = 0; t < 10; ++t) {
    energy.harvest_round(rng);
  }
  EXPECT_DOUBLE_EQ(energy.battery(0), 3.0);  // capped
}

TEST(EnergySystemTest, HarvestRateMatchesSpec) {
  EnergySpec spec = default_spec();
  spec.harvest_amount = 2.0;
  spec.harvest_probabilities = {0.25, 0.75};
  const EnergySystem energy(2, spec);
  EXPECT_DOUBLE_EQ(energy.harvest_rate(0), 0.5);
  EXPECT_DOUBLE_EQ(energy.harvest_rate(1), 1.5);
}

TEST(EnergySystemTest, EmpiricalHarvestFrequency) {
  EnergySpec spec = default_spec();
  spec.battery_capacity = 1e9;  // never caps
  spec.initial_charge = 0.0;
  spec.harvest_probabilities = {0.3};
  EnergySystem energy(1, spec);
  sfl::util::Rng rng(2);
  const int rounds = 20000;
  for (int t = 0; t < rounds; ++t) energy.harvest_round(rng);
  EXPECT_NEAR(energy.battery(0) / rounds, 0.3, 0.01);
}

TEST(EnergySystemTest, StarvationBookkeeping) {
  EnergySystem energy(2, default_spec());
  EXPECT_EQ(energy.starvation_count(0), 0u);
  energy.note_starvation(0);
  energy.note_starvation(0);
  EXPECT_EQ(energy.starvation_count(0), 2u);
  EXPECT_EQ(energy.starvation_count(1), 0u);
}

TEST(EnergySystemTest, Validation) {
  EnergySpec spec = default_spec();
  EXPECT_THROW(EnergySystem(0, spec), std::invalid_argument);
  spec.initial_charge = 5.0;  // exceeds capacity 3
  EXPECT_THROW(EnergySystem(1, spec), std::invalid_argument);
  spec = default_spec();
  spec.harvest_probabilities = {0.5, 0.5};  // wrong count for 1 client
  EXPECT_THROW(EnergySystem(1, spec), std::invalid_argument);
  spec.harvest_probabilities = {1.5};
  EXPECT_THROW(EnergySystem(1, spec), std::invalid_argument);
}

TEST(EnergySystemTest, SustainedOverdraftDepletes) {
  // A client that participates every round while harvesting only half the
  // time goes broke; one paced at the harvest rate stays solvent.
  EnergySpec spec = default_spec();
  spec.battery_capacity = 5.0;
  spec.initial_charge = 5.0;
  spec.harvest_probabilities = {0.5, 0.5};
  EnergySystem energy(2, spec);
  sfl::util::Rng rng(3);
  int greedy_starved = 0;
  int paced_starved = 0;
  for (int t = 0; t < 2000; ++t) {
    energy.harvest_round(rng);
    // Client 0 greedy: participates whenever possible.
    if (energy.available(0, 1.0)) {
      energy.consume(0, 1.0);
    } else {
      ++greedy_starved;
    }
    // Client 1 paced at its harvest rate (every other round).
    if (t % 2 == 0) {
      if (energy.available(1, 1.0)) {
        energy.consume(1, 1.0);
      } else {
        ++paced_starved;
      }
    }
  }
  EXPECT_GT(greedy_starved, 100);
  EXPECT_LT(paced_starved, greedy_starved / 2);
}

}  // namespace
}  // namespace sfl::sim
