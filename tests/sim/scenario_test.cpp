#include "sim/scenario.h"

#include <gtest/gtest.h>

namespace sfl::sim {
namespace {

ScenarioSpec small_spec() {
  ScenarioSpec spec;
  spec.num_clients = 8;
  spec.train_examples = 400;
  spec.test_examples = 100;
  spec.num_classes = 4;
  spec.feature_dim = 6;
  spec.seed = 77;
  return spec;
}

TEST(ScenarioTest, BuildsConsistentPopulation) {
  const Scenario scenario = build_scenario(small_spec());
  EXPECT_EQ(scenario.num_clients(), 8u);
  EXPECT_EQ(scenario.data.total_examples(), 400u);
  EXPECT_EQ(scenario.data.test_set().size(), 100u);
  EXPECT_EQ(scenario.true_quality.size(), 8u);
  EXPECT_EQ(scenario.data_sizes.size(), 8u);
  EXPECT_EQ(scenario.energy_costs.size(), 8u);
  double total = 0.0;
  for (const double s : scenario.data_sizes) total += s;
  EXPECT_DOUBLE_EQ(total, 400.0);
  EXPECT_NEAR(scenario.mean_data_size(), 50.0, 1e-9);
}

TEST(ScenarioTest, CleanScenarioHasPerfectQuality) {
  const Scenario scenario = build_scenario(small_spec());
  for (const double q : scenario.true_quality) {
    EXPECT_DOUBLE_EQ(q, 1.0);
  }
}

TEST(ScenarioTest, NoisyClientsAreTheLastIds) {
  ScenarioSpec spec = small_spec();
  spec.noisy_client_fraction = 0.25;  // ceil(0.25*8) = 2 clients
  spec.noisy_flip_probability = 0.4;
  const Scenario scenario = build_scenario(spec);
  for (std::size_t c = 0; c < 6; ++c) {
    EXPECT_DOUBLE_EQ(scenario.true_quality[c], 1.0) << c;
  }
  EXPECT_DOUBLE_EQ(scenario.true_quality[6], 0.6);
  EXPECT_DOUBLE_EQ(scenario.true_quality[7], 0.6);
}

TEST(ScenarioTest, NoiseOnlyTouchesNoisyShards) {
  ScenarioSpec spec = small_spec();
  spec.noisy_client_fraction = 0.25;
  spec.noisy_flip_probability = 1.0;  // flip everything on noisy clients
  const Scenario noisy = build_scenario(spec);
  spec.noisy_client_fraction = 0.0;
  const Scenario clean = build_scenario(spec);
  // Same seed: clean shards identical across the two builds.
  for (std::size_t c = 0; c < 6; ++c) {
    EXPECT_EQ(noisy.data.shard(c).labels(), clean.data.shard(c).labels()) << c;
  }
  // Noisy shards differ everywhere (flip prob 1).
  for (std::size_t c = 6; c < 8; ++c) {
    const auto& a = noisy.data.shard(c).labels();
    const auto& b = clean.data.shard(c).labels();
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_NE(a[i], b[i]);
    }
  }
  // Test sets stay identical (never poisoned).
  EXPECT_EQ(noisy.data.test_set().labels(), clean.data.test_set().labels());
}

TEST(ScenarioTest, PartitionKindsProduceValidShards) {
  for (const PartitionKind kind :
       {PartitionKind::kIid, PartitionKind::kDirichletLabelSkew,
        PartitionKind::kQuantitySkew}) {
    ScenarioSpec spec = small_spec();
    spec.partition = kind;
    const Scenario scenario = build_scenario(spec);
    std::size_t total = 0;
    for (std::size_t c = 0; c < scenario.num_clients(); ++c) {
      EXPECT_GT(scenario.data.shard_size(c), 0u);
      total += scenario.data.shard_size(c);
    }
    EXPECT_EQ(total, 400u);
  }
}

TEST(ScenarioTest, QuantitySkewIsSkewed) {
  ScenarioSpec spec = small_spec();
  spec.partition = PartitionKind::kQuantitySkew;
  spec.quantity_sigma = 1.5;
  const Scenario scenario = build_scenario(spec);
  double min_size = 1e18;
  double max_size = 0.0;
  for (const double s : scenario.data_sizes) {
    min_size = std::min(min_size, s);
    max_size = std::max(max_size, s);
  }
  EXPECT_GT(max_size / min_size, 2.0);
}

TEST(ScenarioTest, CustomEnergyCosts) {
  ScenarioSpec spec = small_spec();
  spec.energy_costs = std::vector<double>(8, 2.5);
  const Scenario scenario = build_scenario(spec);
  for (const double e : scenario.energy_costs) {
    EXPECT_DOUBLE_EQ(e, 2.5);
  }
  spec.energy_costs = {1.0};  // wrong size
  EXPECT_THROW((void)build_scenario(spec), std::invalid_argument);
}

TEST(ScenarioTest, SameSeedSameScenario) {
  const Scenario a = build_scenario(small_spec());
  const Scenario b = build_scenario(small_spec());
  EXPECT_EQ(a.data_sizes, b.data_sizes);
  EXPECT_EQ(a.data.test_set().labels(), b.data.test_set().labels());
  EXPECT_EQ(a.data.shard(0).labels(), b.data.shard(0).labels());
}

// ---------------------------------------------------------------------------
// Spec validation regressions (PR 10): every malformed field must throw
// before any data is built, so experiment configs fail fast instead of
// silently producing a corrupted population.
// ---------------------------------------------------------------------------

TEST(ScenarioValidationTest, RejectsOutOfRangeFractions) {
  {
    ScenarioSpec spec = small_spec();
    spec.num_clients = 0;
    EXPECT_THROW((void)build_scenario(spec), std::invalid_argument);
  }
  for (const double bad : {-0.1, 1.1}) {
    ScenarioSpec spec = small_spec();
    spec.noisy_client_fraction = bad;
    EXPECT_THROW((void)build_scenario(spec), std::invalid_argument) << bad;
  }
  for (const double bad : {-0.01, 1.5}) {
    ScenarioSpec spec = small_spec();
    spec.noisy_client_fraction = 0.5;
    spec.noisy_flip_probability = bad;
    EXPECT_THROW((void)build_scenario(spec), std::invalid_argument) << bad;
  }
}

TEST(ScenarioValidationTest, RejectsMalformedWirelessParameters) {
  const auto expect_throws = [](auto&& mutate) {
    ScenarioSpec spec = small_spec();
    spec.wireless.enabled = true;
    mutate(spec.wireless);
    EXPECT_THROW((void)build_scenario(spec), std::invalid_argument);
  };
  expect_throws([](WirelessSpec& w) { w.bandwidth_hz = 0.0; });
  expect_throws([](WirelessSpec& w) { w.tx_power_watts = -1.0; });
  expect_throws([](WirelessSpec& w) { w.payload_bits = 0.0; });
  expect_throws([](WirelessSpec& w) { w.min_radius_m = 0.0; });
  expect_throws([](WirelessSpec& w) { w.cell_radius_m = 5.0; });  // < min
  expect_throws([](WirelessSpec& w) { w.reference_snr = 0.0; });
  expect_throws([](WirelessSpec& w) { w.reference_distance_m = 0.0; });
}

TEST(ScenarioValidationTest, WirelessAndExplicitCostsAreExclusive) {
  ScenarioSpec spec = small_spec();
  spec.wireless.enabled = true;
  spec.energy_costs = std::vector<double>(8, 1.0);
  EXPECT_THROW((void)build_scenario(spec), std::invalid_argument);
}

TEST(ScenarioValidationTest, WirelessCostsAreDeterministicAndNormalized) {
  ScenarioSpec spec = small_spec();
  spec.wireless.enabled = true;
  const Scenario a = build_scenario(spec);
  const Scenario b = build_scenario(spec);
  EXPECT_EQ(a.energy_costs, b.energy_costs);  // bitwise: same spec, same draw
  double mean = 0.0;
  double min_cost = 1e18;
  double max_cost = 0.0;
  for (const double e : a.energy_costs) {
    EXPECT_GT(e, 0.0);
    mean += e;
    min_cost = std::min(min_cost, e);
    max_cost = std::max(max_cost, e);
  }
  mean /= static_cast<double>(a.energy_costs.size());
  EXPECT_NEAR(mean, spec.wireless.normalize_mean, 1e-9);
  // Path loss + Rayleigh fading must produce real heterogeneity, not a
  // flat population — that spread is the whole point of the scenario.
  EXPECT_GT(max_cost / min_cost, 1.5);
}

TEST(ScenarioValidationTest, WirelessDrawNeverPerturbsDataDraws) {
  // The wireless costs come from an independently-seeded stream: enabling
  // the model must leave the dataset, partition, and label-noise draws
  // bit-identical to the baseline scenario.
  ScenarioSpec spec = small_spec();
  spec.noisy_client_fraction = 0.25;
  const Scenario baseline = build_scenario(spec);
  spec.wireless.enabled = true;
  const Scenario wireless = build_scenario(spec);
  EXPECT_EQ(baseline.data_sizes, wireless.data_sizes);
  EXPECT_EQ(baseline.data.test_set().labels(),
            wireless.data.test_set().labels());
  for (std::size_t c = 0; c < baseline.num_clients(); ++c) {
    EXPECT_EQ(baseline.data.shard(c).labels(), wireless.data.shard(c).labels())
        << c;
  }
  EXPECT_EQ(baseline.true_quality, wireless.true_quality);
  EXPECT_NE(baseline.energy_costs, wireless.energy_costs);
}

}  // namespace
}  // namespace sfl::sim
