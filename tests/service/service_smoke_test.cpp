// Process-spawning smoke test for the service front-end: fork/execs the
// real `sfl_auction_server` binary, parses its advertised port, then runs
// the real `sfl_load_gen` against it with --verify=1 — the full
// client-process -> TCP -> server-process -> engine -> TCP -> verification
// loop, exactly what a user runs. The load generator writes
// BENCH_service.json into the working directory (the build dir under
// ctest), which CI uploads as the service benchmark artifact.
//
// Environments that forbid fork/exec or binding localhost sockets skip
// instead of failing. Binaries are located through $SFL_AUCTION_SERVER_BIN
// / $SFL_LOAD_GEN_BIN, falling back to build-time paths baked in by
// tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <thread>

#include "service/rpc_messages.h"

#ifndef SFL_AUCTION_SERVER_BIN_PATH
#define SFL_AUCTION_SERVER_BIN_PATH ""
#endif
#ifndef SFL_LOAD_GEN_BIN_PATH
#define SFL_LOAD_GEN_BIN_PATH ""
#endif

namespace sfl::service {
namespace {

std::string server_binary_path() {
  if (const char* env = std::getenv("SFL_AUCTION_SERVER_BIN")) return env;
  return SFL_AUCTION_SERVER_BIN_PATH;
}

std::string load_gen_binary_path() {
  if (const char* env = std::getenv("SFL_LOAD_GEN_BIN")) return env;
  return SFL_LOAD_GEN_BIN_PATH;
}

struct ServerProcess {
  pid_t pid = -1;
  int stdout_fd = -1;
  std::uint16_t port = 0;

  ~ServerProcess() { stop(SIGKILL); }

  void stop(int signal) {
    if (stdout_fd >= 0) {
      ::close(stdout_fd);
      stdout_fd = -1;
    }
    if (pid > 0) {
      ::kill(pid, signal);
      int status = 0;
      ::waitpid(pid, &status, 0);
      pid = -1;
    }
  }
};

/// Spawns sfl_auction_server and parses the startup banner. Returns
/// nullptr (with `why` filled) when the environment forbids any step.
std::unique_ptr<ServerProcess> spawn_server(
    const std::vector<std::string>& extra_flags, std::string& why) {
  const std::string path = server_binary_path();
  if (path.empty() || ::access(path.c_str(), X_OK) != 0) {
    why = "server binary not found/executable at '" + path + "'";
    return nullptr;
  }
  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    why = "pipe() failed";
    return nullptr;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    why = "fork() is forbidden here";
    return nullptr;
  }
  if (pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    std::vector<const char*> argv = {path.c_str(), "--port=0"};
    for (const std::string& flag : extra_flags) argv.push_back(flag.c_str());
    argv.push_back(nullptr);
    ::execv(path.c_str(), const_cast<char* const*>(argv.data()));
    _exit(127);
  }
  ::close(pipe_fds[1]);

  auto server = std::make_unique<ServerProcess>();
  server->pid = pid;
  server->stdout_fd = pipe_fds[0];

  std::string banner;
  for (int spins = 0; spins < 200; ++spins) {  // <= 10 s total
    pollfd pfd{.fd = server->stdout_fd, .events = POLLIN, .revents = 0};
    const int ready = ::poll(&pfd, 1, 50);
    if (ready <= 0) continue;
    char buffer[256];
    const ssize_t got = ::read(server->stdout_fd, buffer, sizeof(buffer));
    if (got <= 0) break;  // EOF: server exited (bind forbidden?)
    banner.append(buffer, static_cast<std::size_t>(got));
    const std::size_t mark = banner.find("listening on 127.0.0.1:");
    if (mark == std::string::npos) continue;
    const std::size_t eol = banner.find('\n', mark);
    if (eol == std::string::npos) continue;
    const long port = std::strtol(
        banner.c_str() + mark + std::string("listening on 127.0.0.1:").size(),
        nullptr, 10);
    if (port <= 0 || port > 65535) break;
    server->port = static_cast<std::uint16_t>(port);
    return server;
  }
  why = "server process did not advertise a port (bind/exec forbidden?)";
  return nullptr;
}

/// Runs the load generator to completion; returns its exit code, or -1
/// when it cannot be spawned. When `stderr_out` is non-null the child's
/// stderr is captured into it.
int run_load_gen(const std::vector<std::string>& flags,
                 std::string* stderr_out = nullptr) {
  const std::string path = load_gen_binary_path();
  if (path.empty() || ::access(path.c_str(), X_OK) != 0) return -1;
  int err_pipe[2] = {-1, -1};
  if (stderr_out != nullptr && ::pipe(err_pipe) != 0) return -1;
  const pid_t pid = ::fork();
  if (pid < 0) {
    if (stderr_out != nullptr) {
      ::close(err_pipe[0]);
      ::close(err_pipe[1]);
    }
    return -1;
  }
  if (pid == 0) {
    if (stderr_out != nullptr) {
      ::dup2(err_pipe[1], STDERR_FILENO);
      ::close(err_pipe[0]);
      ::close(err_pipe[1]);
    }
    std::vector<const char*> argv = {path.c_str()};
    for (const std::string& flag : flags) argv.push_back(flag.c_str());
    argv.push_back(nullptr);
    ::execv(path.c_str(), const_cast<char* const*>(argv.data()));
    _exit(127);
  }
  if (stderr_out != nullptr) {
    ::close(err_pipe[1]);
    char buffer[1024];
    ssize_t got = 0;
    while ((got = ::read(err_pipe[0], buffer, sizeof(buffer))) > 0) {
      stderr_out->append(buffer, static_cast<std::size_t>(got));
    }
    ::close(err_pipe[0]);
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// A fake auction server that greets every connection with a ServerHello
/// whose wire-version byte is patched to an OLDER revision (legal to patch:
/// the 24-byte header is outside the payload checksum). Connections stay
/// open so the only failure the generator can report is the version itself.
class OldWireVersionServer {
 public:
  bool start() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(listen_fd_, 16) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
        0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    port_ = ntohs(addr.sin_port);

    ServerHello hello;
    hello.bids_per_round = 8;
    hello.max_winners = 3;
    hello.max_pending_rounds = 64;
    hello.mechanism = "lto-vcg-dist-pipe";
    encode(hello, stale_hello_);
    stale_hello_[4] = std::byte{0};  // an older wire revision

    thread_ = std::thread([this] {
      while (!stop_.load()) {
        pollfd pfd{.fd = listen_fd_, .events = POLLIN, .revents = 0};
        if (::poll(&pfd, 1, 50) <= 0) continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) continue;
        (void)!::send(fd, stale_hello_.data(), stale_hello_.size(),
                      MSG_NOSIGNAL);
        accepted_.push_back(fd);  // hold open; closed in stop()
      }
    });
    return true;
  }

  void stop() {
    if (listen_fd_ < 0) return;
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
    for (const int fd : accepted_) ::close(fd);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  ~OldWireVersionServer() { stop(); }

  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  Frame stale_hello_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  std::vector<int> accepted_;
};

TEST(ServiceSmokeTest, LoadGenAgainstRealServerVerifiesAndWritesBenchJson) {
  std::string why;
  auto server = spawn_server({"--bids-per-round=8", "--winners=3"}, why);
  if (server == nullptr) GTEST_SKIP() << why;

  const std::string json_path = "BENCH_service.json";
  std::remove(json_path.c_str());
  const int exit_code = run_load_gen(
      {"--port=" + std::to_string(server->port), "--clients=64,256",
       "--connections=4", "--markets=2", "--rounds=8", "--bids-per-round=8",
       "--winners=3", "--verify=1", "--json=" + json_path});
  if (exit_code == -1) GTEST_SKIP() << "load generator could not be spawned";
  EXPECT_EQ(exit_code, 0) << "load gen must verify bit-exactly and exit 0";

  // The benchmark artifact must exist and carry the tail-latency fields CI
  // publishes.
  std::ifstream file(json_path);
  ASSERT_TRUE(file.good()) << json_path << " was not written";
  std::stringstream contents;
  contents << file.rdbuf();
  const std::string json = contents.str();
  EXPECT_NE(json.find("\"bench\": \"service\""), std::string::npos);
  EXPECT_NE(json.find("p50_us"), std::string::npos);
  EXPECT_NE(json.find("p99_us"), std::string::npos);
  EXPECT_NE(json.find("p999"), std::string::npos);
  EXPECT_NE(json.find("rounds_per_sec"), std::string::npos);
  EXPECT_NE(json.find("\"verified\": true"), std::string::npos);
  // Two client tiers -> two entries.
  EXPECT_NE(json.find("\"clients\": 64"), std::string::npos);
  EXPECT_NE(json.find("\"clients\": 256"), std::string::npos);

  server->stop(SIGTERM);
}

TEST(ServiceSmokeTest, MismatchedKnobsFailFastInsteadOfHangingSilently) {
  // The PR-8 bugfix regression: server clearing at 8 bids/round vs a
  // generator sending 16 used to hang until the 30 s window-guard timeout.
  // With the config echo the generator must now exit 1 quickly, before
  // sending any bid (so the run completes in seconds, not after timeouts).
  std::string why;
  auto server = spawn_server({"--bids-per-round=8", "--winners=3"}, why);
  if (server == nullptr) GTEST_SKIP() << why;

  const auto start = std::chrono::steady_clock::now();
  const int exit_code = run_load_gen(
      {"--port=" + std::to_string(server->port), "--clients=64",
       "--connections=2", "--markets=1", "--rounds=2", "--bids-per-round=16",
       "--winners=3", "--verify=0"});
  const auto elapsed = std::chrono::steady_clock::now() - start;
  if (exit_code == -1) GTEST_SKIP() << "load generator could not be spawned";
  EXPECT_EQ(exit_code, 1) << "a knob mismatch must be a hard failure";
  EXPECT_LT(elapsed, std::chrono::seconds(20))
      << "the mismatch must be detected up front, not via hang timeouts";

  // Same for a mechanism-key disagreement.
  const int mechanism_exit = run_load_gen(
      {"--port=" + std::to_string(server->port), "--clients=64",
       "--connections=2", "--markets=1", "--rounds=2", "--bids-per-round=8",
       "--winners=3", "--mechanism=lto-vcg", "--verify=0"});
  if (mechanism_exit == -1) GTEST_SKIP() << "load generator could not be spawned";
  EXPECT_EQ(mechanism_exit, 1);

  server->stop(SIGTERM);
}

TEST(ServiceSmokeTest, OlderWireVersionServerFailsFastWithActionableMessage) {
  // A server built from an older wire revision used to surface as a
  // generic condemned-header error. The version byte is checked the moment
  // the hello's header is buffered, so the generator must exit 1 within
  // seconds carrying the version-naming, fix-naming message — the same
  // fail-fast lane as a ServerHello knob mismatch, not a hang or a
  // cryptic WireError.
  OldWireVersionServer server;
  if (!server.start()) {
    GTEST_SKIP() << "cannot bind a localhost socket here";
  }

  std::string captured;
  const auto start = std::chrono::steady_clock::now();
  const int exit_code = run_load_gen(
      {"--port=" + std::to_string(server.port()), "--clients=64",
       "--connections=2", "--markets=1", "--rounds=2", "--bids-per-round=8",
       "--winners=3", "--verify=0"},
      &captured);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  server.stop();
  if (exit_code == -1) GTEST_SKIP() << "load generator could not be spawned";

  EXPECT_EQ(exit_code, 1) << "a wire-version mismatch must be a hard failure";
  EXPECT_LT(elapsed, std::chrono::seconds(20))
      << "the mismatch must be detected up front, not via hang timeouts";
  EXPECT_NE(captured.find("wire version 0"), std::string::npos) << captured;
  EXPECT_NE(captured.find("rebuild"), std::string::npos) << captured;
}

TEST(ServiceSmokeTest, BinariesPrintUsageOnHelp) {
  // --help must exit 0 for both new binaries (checked here through the
  // same fork/exec path; skips where exec is forbidden).
  const std::string server_path = server_binary_path();
  const std::string gen_path = load_gen_binary_path();
  if (server_path.empty() || ::access(server_path.c_str(), X_OK) != 0 ||
      gen_path.empty() || ::access(gen_path.c_str(), X_OK) != 0) {
    GTEST_SKIP() << "binaries not found";
  }
  for (const std::string& path : {server_path, gen_path}) {
    const pid_t pid = ::fork();
    if (pid < 0) GTEST_SKIP() << "fork() is forbidden here";
    if (pid == 0) {
      // Quiet: usage text goes to /dev/null.
      ::freopen("/dev/null", "w", stdout);
      ::execl(path.c_str(), path.c_str(), "--help",
              static_cast<char*>(nullptr));
      _exit(127);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << path;
  }
}

}  // namespace
}  // namespace sfl::service
