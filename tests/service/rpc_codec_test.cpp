// Unit tests for the service RPC codec: bit-exact roundtrips, envelope
// integrity, semantic rejection, and cross-type confusion.
#include "service/rpc_messages.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "dist/wire_codec.h"

namespace sfl::service {
namespace {

SubmitBids sample_submit() {
  SubmitBids msg;
  msg.client = 77;
  msg.markets = {0, 0, 3, 9};
  msg.rounds = {4, 5, 4, 0};
  msg.values = {1.25, 0.0, 2.75, 0.031415926};
  msg.bids = {0.5, 0.125, 1.0, 0.9999999999};
  msg.energy_costs = {1.0, 0.25, 2.0, 0.0001};
  return msg;
}

RoundResult sample_result() {
  RoundResult msg;
  msg.market = 3;
  msg.round = 12;
  msg.winners = {9, 2, 41, 7};
  msg.payments = {0.75, 1.0 / 3.0, 0.0, 2.25};
  return msg;
}

SettlementAck sample_ack() {
  SettlementAck msg;
  msg.market = 3;
  msg.round = 12;
  msg.total_payment = 3.0 + 1.0 / 3.0;
  msg.winner_count = 4;
  return msg;
}

ServerHello sample_hello() {
  ServerHello msg;
  msg.bids_per_round = 8;
  msg.max_winners = 3;
  msg.max_pending_rounds = 16;
  msg.mechanism = "lto-vcg-sharded";
  return msg;
}

template <typename Message>
void expect_rejected(const Message& message,
                     void (*mutate)(Frame&) = nullptr) {
  Frame frame;
  encode(message, frame);
  if (mutate != nullptr) mutate(frame);
  Message out;
  EXPECT_THROW(decode(frame, out), WireError);
}

TEST(RpcCodecTest, SubmitBidsRoundtripsBitExactly) {
  const SubmitBids original = sample_submit();
  Frame frame;
  encode(original, frame);
  SubmitBids decoded;
  decode(frame, decoded);
  EXPECT_EQ(decoded.client, original.client);
  EXPECT_EQ(decoded.markets, original.markets);
  EXPECT_EQ(decoded.rounds, original.rounds);
  ASSERT_EQ(decoded.values.size(), original.values.size());
  for (std::size_t i = 0; i < original.values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded.values[i]),
              std::bit_cast<std::uint64_t>(original.values[i]));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded.bids[i]),
              std::bit_cast<std::uint64_t>(original.bids[i]));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded.energy_costs[i]),
              std::bit_cast<std::uint64_t>(original.energy_costs[i]));
  }
}

TEST(RpcCodecTest, RoundResultRoundtripsBitExactly) {
  const RoundResult original = sample_result();
  Frame frame;
  encode(original, frame);
  RoundResult decoded;
  decode(frame, decoded);
  EXPECT_EQ(decoded.market, original.market);
  EXPECT_EQ(decoded.round, original.round);
  EXPECT_EQ(decoded.winners, original.winners);
  ASSERT_EQ(decoded.payments.size(), original.payments.size());
  for (std::size_t i = 0; i < original.payments.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded.payments[i]),
              std::bit_cast<std::uint64_t>(original.payments[i]));
  }
}

TEST(RpcCodecTest, SettlementAckRoundtripsBitExactly) {
  const SettlementAck original = sample_ack();
  Frame frame;
  encode(original, frame);
  SettlementAck decoded;
  decode(frame, decoded);
  EXPECT_EQ(decoded.market, original.market);
  EXPECT_EQ(decoded.round, original.round);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded.total_payment),
            std::bit_cast<std::uint64_t>(original.total_payment));
  EXPECT_EQ(decoded.winner_count, original.winner_count);
}

TEST(RpcCodecTest, ServerHelloRoundtripsExactly) {
  const ServerHello original = sample_hello();
  Frame frame;
  encode(original, frame);
  ServerHello decoded;
  decode(frame, decoded);
  EXPECT_EQ(decoded.bids_per_round, original.bids_per_round);
  EXPECT_EQ(decoded.max_winners, original.max_winners);
  EXPECT_EQ(decoded.max_pending_rounds, original.max_pending_rounds);
  EXPECT_EQ(decoded.mechanism, original.mechanism);

  // Empty mechanism key roundtrips too.
  ServerHello empty_key = original;
  empty_key.mechanism.clear();
  encode(empty_key, frame);
  decode(frame, decoded);
  EXPECT_TRUE(decoded.mechanism.empty());
}

TEST(RpcCodecTest, ServerHelloRejectsOversizeAndUnprintableKeys) {
  // Oversize key: the decoder must cap before reading the bytes.
  ServerHello big = sample_hello();
  big.mechanism.assign(kMaxMechanismKeyBytes + 1, 'a');
  expect_rejected(big);

  // Non-printable bytes in the key are a protocol violation, not data.
  ServerHello binary = sample_hello();
  binary.mechanism[2] = '\n';
  expect_rejected(binary);
}

TEST(RpcCodecTest, EmptySlateAndEmptyResultRoundtrip) {
  SubmitBids submit;
  submit.client = 1;
  Frame frame;
  encode(submit, frame);
  SubmitBids submit_out;
  decode(frame, submit_out);
  EXPECT_EQ(submit_out.row_count(), 0u);

  RoundResult result;
  result.market = 5;
  result.round = 2;
  encode(result, frame);
  RoundResult result_out;
  decode(frame, result_out);
  EXPECT_TRUE(result_out.winners.empty());
  EXPECT_TRUE(result_out.payments.empty());
}

TEST(RpcCodecTest, ChecksumFlipIsRejectedForEveryType) {
  expect_rejected(sample_submit(), +[](Frame& f) { f.back() ^= std::byte{1}; });
  expect_rejected(sample_result(), +[](Frame& f) { f.back() ^= std::byte{1}; });
  expect_rejected(sample_ack(), +[](Frame& f) { f.back() ^= std::byte{1}; });
  expect_rejected(sample_hello(), +[](Frame& f) { f.back() ^= std::byte{1}; });
}

TEST(RpcCodecTest, TruncationIsRejectedForEveryType) {
  Frame frame;
  encode(sample_submit(), frame);
  SubmitBids submit_out;
  EXPECT_THROW(
      decode(std::span<const std::byte>(frame.data(), frame.size() - 9),
             submit_out),
      WireError);

  encode(sample_result(), frame);
  RoundResult result_out;
  EXPECT_THROW(
      decode(std::span<const std::byte>(frame.data(), frame.size() - 1),
             result_out),
      WireError);

  encode(sample_ack(), frame);
  SettlementAck ack_out;
  EXPECT_THROW(decode(std::span<const std::byte>(frame.data(), 10), ack_out),
               WireError);
}

TEST(RpcCodecTest, CrossTypeDecodeIsRejected) {
  Frame submit_frame;
  encode(sample_submit(), submit_frame);
  Frame result_frame;
  encode(sample_result(), result_frame);
  Frame ack_frame;
  encode(sample_ack(), ack_frame);

  RoundResult result_out;
  EXPECT_THROW(decode(submit_frame, result_out), WireError);
  SettlementAck ack_out;
  EXPECT_THROW(decode(result_frame, ack_out), WireError);
  SubmitBids submit_out;
  EXPECT_THROW(decode(ack_frame, submit_out), WireError);

  Frame hello_frame;
  encode(sample_hello(), hello_frame);
  ServerHello hello_out;
  EXPECT_THROW(decode(hello_frame, submit_out), WireError);
  EXPECT_THROW(decode(ack_frame, hello_out), WireError);
}

TEST(RpcCodecTest, NonFiniteAndNegativeEconomicsAreRejected) {
  {
    SubmitBids bad = sample_submit();
    bad.values[1] = std::numeric_limits<double>::quiet_NaN();
    expect_rejected(bad);
  }
  {
    SubmitBids bad = sample_submit();
    bad.bids[0] = -0.25;
    expect_rejected(bad);
  }
  {
    SubmitBids bad = sample_submit();
    bad.energy_costs[2] = 0.0;  // energy must be strictly positive
    expect_rejected(bad);
  }
  {
    SubmitBids bad = sample_submit();
    bad.energy_costs[2] = std::numeric_limits<double>::infinity();
    expect_rejected(bad);
  }
  {
    RoundResult bad = sample_result();
    bad.payments[1] = -1.0;
    expect_rejected(bad);
  }
  {
    SettlementAck bad = sample_ack();
    bad.total_payment = std::numeric_limits<double>::infinity();
    expect_rejected(bad);
  }
}

TEST(RpcCodecTest, DuplicateRowsAndWinnersAreRejected) {
  {
    SubmitBids bad = sample_submit();
    bad.markets[1] = bad.markets[0];
    bad.rounds[1] = bad.rounds[0];  // same (market, round) twice
    expect_rejected(bad);
  }
  {
    RoundResult bad = sample_result();
    bad.winners[3] = bad.winners[0];  // same client paid twice
    expect_rejected(bad);
  }
}

TEST(RpcCodecTest, SameMarketDifferentRoundIsAccepted) {
  SubmitBids msg = sample_submit();  // markets[0] == markets[1], rounds differ
  Frame frame;
  encode(msg, frame);
  SubmitBids out;
  EXPECT_NO_THROW(decode(frame, out));
}

TEST(RpcCodecTest, RowCountBeyondLimitIsRejected) {
  // Craft the oversize slate directly; encode() trusts its caller, decode()
  // must not.
  SubmitBids big;
  big.client = 1;
  const std::size_t rows = kMaxBidsPerSubmit + 1;
  big.markets.resize(rows);
  big.rounds.resize(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    big.markets[i] = i;  // unique (market, round) keys
    big.rounds[i] = 0;
  }
  big.values.assign(rows, 1.0);
  big.bids.assign(rows, 0.5);
  big.energy_costs.assign(rows, 1.0);
  expect_rejected(big);
}

}  // namespace
}  // namespace sfl::service
