// Integration tests for AuctionService over real loopback sockets:
// multi-client end-to-end bit-exactness against the in-process reference,
// and hostile-client containment (garbage frames, slow-loris, mid-frame
// disconnect) — each kills only its own connection. Environments that
// forbid binding localhost sockets skip instead of failing.
#include "service/auction_service.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "dist/wire_format.h"
#include "service/frame_assembler.h"
#include "service/rpc_messages.h"
#include "service/workload.h"

namespace sfl::service {
namespace {

using sfl::dist::FrameType;

MarketEngineConfig small_engine() {
  MarketEngineConfig engine;
  engine.bids_per_round = 8;
  engine.max_winners = 3;
  return engine;
}

/// Builds the service or returns nullptr when the sandbox forbids binding.
std::unique_ptr<AuctionService> try_build_service(std::string& why,
                                                  AuctionServiceConfig config) {
  try {
    return std::make_unique<AuctionService>(std::move(config));
  } catch (const std::runtime_error& error) {
    why = error.what();
    return nullptr;
  }
}

/// A blocking test client with its own response reassembly.
struct TestClient {
  int fd = -1;
  FrameAssembler assembler;

  ~TestClient() { close(); }

  void close() {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }

  bool connect(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      close();
      return false;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    timeval timeout{.tv_sec = 10, .tv_usec = 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    return true;
  }

  bool send_bytes(std::span<const std::byte> bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t rc = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                                MSG_NOSIGNAL);
      if (rc < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(rc);
    }
    return true;
  }

  bool send_bid(std::uint64_t market, std::uint64_t round, const BidRow& row) {
    SubmitBids msg;
    msg.client = row.client;
    msg.markets = {market};
    msg.rounds = {round};
    msg.values = {row.value};
    msg.bids = {row.bid};
    msg.energy_costs = {row.energy_cost};
    Frame frame;
    encode(msg, frame);
    return send_bytes(frame);
  }

  /// Blocks (bounded by SO_RCVTIMEO) until one complete frame arrives.
  std::optional<Frame> read_frame() {
    Frame out;
    if (assembler.next_frame(out)) return out;
    std::byte buffer[4096];
    while (true) {
      const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
      if (got <= 0) return std::nullopt;  // EOF, timeout, or error
      if (!assembler.feed(std::span<const std::byte>(
              buffer, static_cast<std::size_t>(got)))) {
        return std::nullopt;
      }
      if (assembler.next_frame(out)) return out;
    }
  }

  /// Reads until a RoundResult arrives (SettlementAcks pass through).
  std::optional<RoundResult> read_round_result() {
    while (true) {
      const std::optional<Frame> frame = read_frame();
      if (!frame.has_value()) return std::nullopt;
      const auto [type, payload] = sfl::dist::wire::checked_payload(*frame);
      (void)payload;
      if (type == FrameType::kSettlementAck) continue;
      if (type != FrameType::kRoundResult) return std::nullopt;
      RoundResult result;
      decode(*frame, result);
      return result;
    }
  }

  /// True when the server has closed this connection (EOF within the
  /// receive timeout); drains any still-buffered frames first.
  bool server_closed() {
    std::byte buffer[256];
    while (true) {
      const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
      if (got == 0) return true;
      if (got < 0) return false;  // timeout or error: still open
    }
  }
};

/// Drives one full round through `client` and returns the RoundResult.
std::optional<RoundResult> drive_round(TestClient& client,
                                       const WorkloadSpec& spec,
                                       std::size_t market_index,
                                       std::size_t round) {
  std::vector<BidRow> rows;
  workload_rows(spec, market_index, round, rows);
  for (const BidRow& row : rows) {
    if (!client.send_bid(spec.market_id(market_index), round, row)) {
      return std::nullopt;
    }
  }
  return client.read_round_result();
}

void expect_same_result(const RoundResult& got, const RoundResult& want) {
  EXPECT_EQ(got.market, want.market);
  EXPECT_EQ(got.round, want.round);
  EXPECT_EQ(got.winners, want.winners);
  ASSERT_EQ(got.payments.size(), want.payments.size());
  for (std::size_t i = 0; i < got.payments.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.payments[i]),
              std::bit_cast<std::uint64_t>(want.payments[i]))
        << "payment " << i;
  }
}

TEST(AuctionServiceTest, MultiClientRoundsMatchInProcessEngineBitExactly) {
  std::string why;
  AuctionServiceConfig config;
  config.engine = small_engine();
  auto service = try_build_service(why, config);
  if (service == nullptr) GTEST_SKIP() << why;
  service->start();

  WorkloadSpec spec;
  spec.markets = 2;
  spec.rounds_per_market = 6;
  spec.clients = 24;
  spec.bids_per_round = config.engine.bids_per_round;
  const auto reference = reference_results(spec, config.engine);

  // Three clients split every round's cohort; whoever contributed hears
  // the result, so all three must see identical bit patterns.
  std::vector<TestClient> clients(3);
  for (TestClient& client : clients) {
    ASSERT_TRUE(client.connect(service->port()));
  }
  std::vector<BidRow> rows;
  for (std::size_t r = 0; r < spec.rounds_per_market; ++r) {
    for (std::size_t m = 0; m < spec.markets; ++m) {
      workload_rows(spec, m, r, rows);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        ASSERT_TRUE(clients[i % clients.size()].send_bid(spec.market_id(m), r,
                                                         rows[i]));
      }
      for (TestClient& client : clients) {
        const std::optional<RoundResult> result = client.read_round_result();
        ASSERT_TRUE(result.has_value()) << "market " << m << " round " << r;
        expect_same_result(*result, reference[m][r]);
      }
    }
  }
  service->stop();
  EXPECT_EQ(service->stats().rounds_cleared,
            spec.markets * spec.rounds_per_market);
  EXPECT_EQ(service->stats().protocol_errors, 0u);
}

TEST(AuctionServiceTest, GarbageFrameKillsOnlyThatConnection) {
  std::string why;
  AuctionServiceConfig config;
  config.engine = small_engine();
  auto service = try_build_service(why, config);
  if (service == nullptr) GTEST_SKIP() << why;
  service->start();

  TestClient hostile;
  TestClient honest;
  ASSERT_TRUE(hostile.connect(service->port()));
  ASSERT_TRUE(honest.connect(service->port()));

  // 32 garbage bytes: enough to complete (and fail) header validation.
  std::vector<std::byte> garbage(32, std::byte{0x5A});
  ASSERT_TRUE(hostile.send_bytes(garbage));
  EXPECT_TRUE(hostile.server_closed());

  // The honest client's rounds still clear, bit-exactly.
  WorkloadSpec spec;
  spec.markets = 1;
  spec.rounds_per_market = 2;
  spec.clients = 16;
  spec.bids_per_round = config.engine.bids_per_round;
  const auto reference = reference_results(spec, config.engine);
  for (std::size_t r = 0; r < spec.rounds_per_market; ++r) {
    const std::optional<RoundResult> result = drive_round(honest, spec, 0, r);
    ASSERT_TRUE(result.has_value()) << "round " << r;
    expect_same_result(*result, reference[0][r]);
  }
  service->stop();
  EXPECT_GE(service->stats().protocol_errors, 1u);
}

TEST(AuctionServiceTest, WellFormedNonSubmitFrameIsAProtocolViolation) {
  std::string why;
  AuctionServiceConfig config;
  config.engine = small_engine();
  auto service = try_build_service(why, config);
  if (service == nullptr) GTEST_SKIP() << why;
  service->start();

  // A checksummed, decodable RoundResult — but clients must only ever send
  // SubmitBids, so the connection dies anyway.
  TestClient confused;
  ASSERT_TRUE(confused.connect(service->port()));
  RoundResult bogus;
  bogus.market = 0;
  bogus.round = 0;
  Frame frame;
  encode(bogus, frame);
  ASSERT_TRUE(confused.send_bytes(frame));
  EXPECT_TRUE(confused.server_closed());
  service->stop();
  EXPECT_GE(service->stats().protocol_errors, 1u);
}

TEST(AuctionServiceTest, SlowLorisConnectionDoesNotStallOthers) {
  std::string why;
  AuctionServiceConfig config;
  config.engine = small_engine();
  auto service = try_build_service(why, config);
  if (service == nullptr) GTEST_SKIP() << why;
  service->start();

  TestClient loris;
  TestClient honest;
  ASSERT_TRUE(loris.connect(service->port()));
  ASSERT_TRUE(honest.connect(service->port()));

  // The slow loris: a valid frame prefix trickled a byte at a time, never
  // completed. Interleave honest rounds between trickles.
  SubmitBids msg;
  msg.client = 999;
  msg.markets = {5};
  msg.rounds = {0};
  msg.values = {1.0};
  msg.bids = {0.5};
  msg.energy_costs = {1.0};
  Frame trickle;
  encode(msg, trickle);

  WorkloadSpec spec;
  spec.markets = 1;
  spec.rounds_per_market = 3;
  spec.clients = 16;
  spec.bids_per_round = config.engine.bids_per_round;
  const auto reference = reference_results(spec, config.engine);
  for (std::size_t r = 0; r < spec.rounds_per_market; ++r) {
    ASSERT_TRUE(loris.send_bytes(
        std::span<const std::byte>(trickle.data() + r, 1)));
    const std::optional<RoundResult> result = drive_round(honest, spec, 0, r);
    ASSERT_TRUE(result.has_value()) << "round " << r;
    expect_same_result(*result, reference[0][r]);
  }
  // The loris was never dropped — slowness alone is not a violation.
  service->stop();
  EXPECT_EQ(service->stats().protocol_errors, 0u);
}

TEST(AuctionServiceTest, MidFrameDisconnectIsContained) {
  std::string why;
  AuctionServiceConfig config;
  config.engine = small_engine();
  auto service = try_build_service(why, config);
  if (service == nullptr) GTEST_SKIP() << why;
  service->start();

  TestClient goner;
  TestClient honest;
  ASSERT_TRUE(goner.connect(service->port()));
  ASSERT_TRUE(honest.connect(service->port()));

  // Half a valid frame, then a hard close.
  Frame frame;
  SubmitBids msg;
  msg.client = 1;
  msg.markets = {0};
  msg.rounds = {0};
  msg.values = {1.0};
  msg.bids = {0.5};
  msg.energy_costs = {1.0};
  encode(msg, frame);
  ASSERT_TRUE(goner.send_bytes(
      std::span<const std::byte>(frame.data(), frame.size() / 2)));
  goner.close();

  // Wait for the server to notice the EOF, then confirm honest traffic
  // still clears rounds.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service->stats().connections_dropped == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(service->stats().connections_dropped, 1u);

  WorkloadSpec spec;
  spec.markets = 1;
  spec.rounds_per_market = 1;
  spec.clients = 16;
  spec.bids_per_round = config.engine.bids_per_round;
  const auto reference = reference_results(spec, config.engine);
  const std::optional<RoundResult> result = drive_round(honest, spec, 0, 0);
  ASSERT_TRUE(result.has_value());
  expect_same_result(*result, reference[0][0]);
  service->stop();
  // A disconnect is not a protocol violation, just a dropped connection.
  EXPECT_EQ(service->stats().protocol_errors, 0u);
}

TEST(AuctionServiceTest, StaleAndFarFutureRoundsAreViolations) {
  std::string why;
  AuctionServiceConfig config;
  config.engine = small_engine();
  config.max_pending_rounds = 4;
  auto service = try_build_service(why, config);
  if (service == nullptr) GTEST_SKIP() << why;
  service->start();

  WorkloadSpec spec;
  spec.markets = 1;
  spec.rounds_per_market = 1;
  spec.clients = 16;
  spec.bids_per_round = config.engine.bids_per_round;

  {
    // Clear round 0, then re-bid into it: stale, connection dies.
    TestClient client;
    ASSERT_TRUE(client.connect(service->port()));
    const std::optional<RoundResult> result = drive_round(client, spec, 0, 0);
    ASSERT_TRUE(result.has_value());
    BidRow row{.client = 3, .value = 1.0, .bid = 0.5, .energy_cost = 1.0};
    ASSERT_TRUE(client.send_bid(spec.market_id(0), 0, row));
    EXPECT_TRUE(client.server_closed());
  }
  {
    // A round far beyond the pending window dies immediately.
    TestClient client;
    ASSERT_TRUE(client.connect(service->port()));
    BidRow row{.client = 3, .value = 1.0, .bid = 0.5, .energy_cost = 1.0};
    ASSERT_TRUE(client.send_bid(spec.market_id(0), 1000, row));
    EXPECT_TRUE(client.server_closed());
  }
  service->stop();
  EXPECT_GE(service->stats().protocol_errors, 2u);
}

}  // namespace
}  // namespace sfl::service
