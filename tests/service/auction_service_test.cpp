// Integration tests for AuctionService over real loopback sockets:
// multi-client end-to-end bit-exactness against the in-process reference,
// and hostile-client containment (garbage frames, slow-loris, mid-frame
// disconnect) — each kills only its own connection. Environments that
// forbid binding localhost sockets skip instead of failing.
#include "service/auction_service.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dist/wire_format.h"
#include "service/frame_assembler.h"
#include "service/rpc_messages.h"
#include "service/workload.h"

namespace sfl::service {
namespace {

using sfl::dist::FrameType;

MarketEngineConfig small_engine() {
  MarketEngineConfig engine;
  engine.bids_per_round = 8;
  engine.max_winners = 3;
  return engine;
}

/// Builds the service or returns nullptr when the sandbox forbids binding.
std::unique_ptr<AuctionService> try_build_service(std::string& why,
                                                  AuctionServiceConfig config) {
  try {
    return std::make_unique<AuctionService>(std::move(config));
  } catch (const std::runtime_error& error) {
    why = error.what();
    return nullptr;
  }
}

/// A blocking test client with its own response reassembly.
struct TestClient {
  int fd = -1;
  FrameAssembler assembler;

  ~TestClient() { close(); }

  void close() {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }

  bool connect(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      close();
      return false;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    timeval timeout{.tv_sec = 10, .tv_usec = 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    return true;
  }

  bool send_bytes(std::span<const std::byte> bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t rc = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                                MSG_NOSIGNAL);
      if (rc < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(rc);
    }
    return true;
  }

  bool send_bid(std::uint64_t market, std::uint64_t round, const BidRow& row) {
    SubmitBids msg;
    msg.client = row.client;
    msg.markets = {market};
    msg.rounds = {round};
    msg.values = {row.value};
    msg.bids = {row.bid};
    msg.energy_costs = {row.energy_cost};
    Frame frame;
    encode(msg, frame);
    return send_bytes(frame);
  }

  /// Blocks (bounded by SO_RCVTIMEO) until one complete frame arrives.
  std::optional<Frame> read_frame() {
    Frame out;
    if (assembler.next_frame(out)) return out;
    std::byte buffer[4096];
    while (true) {
      const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
      if (got <= 0) return std::nullopt;  // EOF, timeout, or error
      if (!assembler.feed(std::span<const std::byte>(
              buffer, static_cast<std::size_t>(got)))) {
        return std::nullopt;
      }
      if (assembler.next_frame(out)) return out;
    }
  }

  /// Reads until a RoundResult arrives (the connection's ServerHello and
  /// SettlementAcks pass through).
  std::optional<RoundResult> read_round_result() {
    while (true) {
      const std::optional<Frame> frame = read_frame();
      if (!frame.has_value()) return std::nullopt;
      const auto [type, payload] = sfl::dist::wire::checked_payload(*frame);
      (void)payload;
      if (type == FrameType::kSettlementAck ||
          type == FrameType::kServerHello) {
        continue;
      }
      if (type != FrameType::kRoundResult) return std::nullopt;
      RoundResult result;
      decode(*frame, result);
      return result;
    }
  }

  /// Consumes (and optionally returns) the config echo that is the first
  /// frame on every accepted connection.
  bool read_hello(ServerHello* out = nullptr) {
    const std::optional<Frame> frame = read_frame();
    if (!frame.has_value()) return false;
    try {
      ServerHello hello;
      decode(*frame, hello);
      if (out != nullptr) *out = hello;
      return true;
    } catch (const WireError&) {
      return false;
    }
  }

  /// True when the server sent this client nothing: no complete frame is
  /// buffered and no byte becomes readable within `timeout_ms`.
  bool silent_for(int timeout_ms) {
    Frame out;
    if (assembler.next_frame(out)) return false;
    pollfd pfd{.fd = fd, .events = POLLIN, .revents = 0};
    return ::poll(&pfd, 1, timeout_ms) == 0;
  }

  /// True when the server has closed this connection (EOF within the
  /// receive timeout); drains any still-buffered frames first.
  bool server_closed() {
    std::byte buffer[256];
    while (true) {
      const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
      if (got == 0) return true;
      if (got < 0) return false;  // timeout or error: still open
    }
  }
};

/// Drives one full round through `client` and returns the RoundResult.
std::optional<RoundResult> drive_round(TestClient& client,
                                       const WorkloadSpec& spec,
                                       std::size_t market_index,
                                       std::size_t round) {
  std::vector<BidRow> rows;
  workload_rows(spec, market_index, round, rows);
  for (const BidRow& row : rows) {
    if (!client.send_bid(spec.market_id(market_index), round, row)) {
      return std::nullopt;
    }
  }
  return client.read_round_result();
}

void expect_same_result(const RoundResult& got, const RoundResult& want) {
  EXPECT_EQ(got.market, want.market);
  EXPECT_EQ(got.round, want.round);
  EXPECT_EQ(got.winners, want.winners);
  ASSERT_EQ(got.payments.size(), want.payments.size());
  for (std::size_t i = 0; i < got.payments.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.payments[i]),
              std::bit_cast<std::uint64_t>(want.payments[i]))
        << "payment " << i;
  }
}

TEST(AuctionServiceTest, MultiClientRoundsMatchInProcessEngineBitExactly) {
  std::string why;
  AuctionServiceConfig config;
  config.engine = small_engine();
  auto service = try_build_service(why, config);
  if (service == nullptr) GTEST_SKIP() << why;
  service->start();

  WorkloadSpec spec;
  spec.markets = 2;
  spec.rounds_per_market = 6;
  spec.clients = 24;
  spec.bids_per_round = config.engine.bids_per_round;
  const auto reference = reference_results(spec, config.engine);

  // Three clients split every round's cohort; whoever contributed hears
  // the result, so all three must see identical bit patterns.
  std::vector<TestClient> clients(3);
  for (TestClient& client : clients) {
    ASSERT_TRUE(client.connect(service->port()));
  }
  std::vector<BidRow> rows;
  for (std::size_t r = 0; r < spec.rounds_per_market; ++r) {
    for (std::size_t m = 0; m < spec.markets; ++m) {
      workload_rows(spec, m, r, rows);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        ASSERT_TRUE(clients[i % clients.size()].send_bid(spec.market_id(m), r,
                                                         rows[i]));
      }
      for (TestClient& client : clients) {
        const std::optional<RoundResult> result = client.read_round_result();
        ASSERT_TRUE(result.has_value()) << "market " << m << " round " << r;
        expect_same_result(*result, reference[m][r]);
      }
    }
  }
  service->stop();
  EXPECT_EQ(service->stats().rounds_cleared,
            spec.markets * spec.rounds_per_market);
  EXPECT_EQ(service->stats().protocol_errors, 0u);
}

TEST(AuctionServiceTest, GarbageFrameKillsOnlyThatConnection) {
  std::string why;
  AuctionServiceConfig config;
  config.engine = small_engine();
  auto service = try_build_service(why, config);
  if (service == nullptr) GTEST_SKIP() << why;
  service->start();

  TestClient hostile;
  TestClient honest;
  ASSERT_TRUE(hostile.connect(service->port()));
  ASSERT_TRUE(honest.connect(service->port()));

  // 32 garbage bytes: enough to complete (and fail) header validation.
  std::vector<std::byte> garbage(32, std::byte{0x5A});
  ASSERT_TRUE(hostile.send_bytes(garbage));
  EXPECT_TRUE(hostile.server_closed());

  // The honest client's rounds still clear, bit-exactly.
  WorkloadSpec spec;
  spec.markets = 1;
  spec.rounds_per_market = 2;
  spec.clients = 16;
  spec.bids_per_round = config.engine.bids_per_round;
  const auto reference = reference_results(spec, config.engine);
  for (std::size_t r = 0; r < spec.rounds_per_market; ++r) {
    const std::optional<RoundResult> result = drive_round(honest, spec, 0, r);
    ASSERT_TRUE(result.has_value()) << "round " << r;
    expect_same_result(*result, reference[0][r]);
  }
  service->stop();
  EXPECT_GE(service->stats().protocol_errors, 1u);
}

TEST(AuctionServiceTest, WellFormedNonSubmitFrameIsAProtocolViolation) {
  std::string why;
  AuctionServiceConfig config;
  config.engine = small_engine();
  auto service = try_build_service(why, config);
  if (service == nullptr) GTEST_SKIP() << why;
  service->start();

  // A checksummed, decodable RoundResult — but clients must only ever send
  // SubmitBids, so the connection dies anyway.
  TestClient confused;
  ASSERT_TRUE(confused.connect(service->port()));
  RoundResult bogus;
  bogus.market = 0;
  bogus.round = 0;
  Frame frame;
  encode(bogus, frame);
  ASSERT_TRUE(confused.send_bytes(frame));
  EXPECT_TRUE(confused.server_closed());
  service->stop();
  EXPECT_GE(service->stats().protocol_errors, 1u);
}

TEST(AuctionServiceTest, SlowLorisConnectionDoesNotStallOthers) {
  std::string why;
  AuctionServiceConfig config;
  config.engine = small_engine();
  auto service = try_build_service(why, config);
  if (service == nullptr) GTEST_SKIP() << why;
  service->start();

  TestClient loris;
  TestClient honest;
  ASSERT_TRUE(loris.connect(service->port()));
  ASSERT_TRUE(honest.connect(service->port()));

  // The slow loris: a valid frame prefix trickled a byte at a time, never
  // completed. Interleave honest rounds between trickles.
  SubmitBids msg;
  msg.client = 999;
  msg.markets = {5};
  msg.rounds = {0};
  msg.values = {1.0};
  msg.bids = {0.5};
  msg.energy_costs = {1.0};
  Frame trickle;
  encode(msg, trickle);

  WorkloadSpec spec;
  spec.markets = 1;
  spec.rounds_per_market = 3;
  spec.clients = 16;
  spec.bids_per_round = config.engine.bids_per_round;
  const auto reference = reference_results(spec, config.engine);
  for (std::size_t r = 0; r < spec.rounds_per_market; ++r) {
    ASSERT_TRUE(loris.send_bytes(
        std::span<const std::byte>(trickle.data() + r, 1)));
    const std::optional<RoundResult> result = drive_round(honest, spec, 0, r);
    ASSERT_TRUE(result.has_value()) << "round " << r;
    expect_same_result(*result, reference[0][r]);
  }
  // The loris was never dropped — slowness alone is not a violation.
  service->stop();
  EXPECT_EQ(service->stats().protocol_errors, 0u);
}

TEST(AuctionServiceTest, MidFrameDisconnectIsContained) {
  std::string why;
  AuctionServiceConfig config;
  config.engine = small_engine();
  auto service = try_build_service(why, config);
  if (service == nullptr) GTEST_SKIP() << why;
  service->start();

  TestClient goner;
  TestClient honest;
  ASSERT_TRUE(goner.connect(service->port()));
  ASSERT_TRUE(honest.connect(service->port()));

  // Half a valid frame, then a hard close.
  Frame frame;
  SubmitBids msg;
  msg.client = 1;
  msg.markets = {0};
  msg.rounds = {0};
  msg.values = {1.0};
  msg.bids = {0.5};
  msg.energy_costs = {1.0};
  encode(msg, frame);
  ASSERT_TRUE(goner.send_bytes(
      std::span<const std::byte>(frame.data(), frame.size() / 2)));
  goner.close();

  // Wait for the server to notice the EOF, then confirm honest traffic
  // still clears rounds.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service->stats().connections_dropped == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(service->stats().connections_dropped, 1u);

  WorkloadSpec spec;
  spec.markets = 1;
  spec.rounds_per_market = 1;
  spec.clients = 16;
  spec.bids_per_round = config.engine.bids_per_round;
  const auto reference = reference_results(spec, config.engine);
  const std::optional<RoundResult> result = drive_round(honest, spec, 0, 0);
  ASSERT_TRUE(result.has_value());
  expect_same_result(*result, reference[0][0]);
  service->stop();
  // A disconnect is not a protocol violation, just a dropped connection.
  EXPECT_EQ(service->stats().protocol_errors, 0u);
}

TEST(AuctionServiceTest, StaleAndFarFutureRoundsAreViolations) {
  std::string why;
  AuctionServiceConfig config;
  config.engine = small_engine();
  config.max_pending_rounds = 4;
  auto service = try_build_service(why, config);
  if (service == nullptr) GTEST_SKIP() << why;
  service->start();

  WorkloadSpec spec;
  spec.markets = 1;
  spec.rounds_per_market = 1;
  spec.clients = 16;
  spec.bids_per_round = config.engine.bids_per_round;

  {
    // Clear round 0, then re-bid into it: stale, connection dies.
    TestClient client;
    ASSERT_TRUE(client.connect(service->port()));
    const std::optional<RoundResult> result = drive_round(client, spec, 0, 0);
    ASSERT_TRUE(result.has_value());
    BidRow row{.client = 3, .value = 1.0, .bid = 0.5, .energy_cost = 1.0};
    ASSERT_TRUE(client.send_bid(spec.market_id(0), 0, row));
    EXPECT_TRUE(client.server_closed());
  }
  {
    // A round far beyond the pending window dies immediately.
    TestClient client;
    ASSERT_TRUE(client.connect(service->port()));
    BidRow row{.client = 3, .value = 1.0, .bid = 0.5, .energy_cost = 1.0};
    ASSERT_TRUE(client.send_bid(spec.market_id(0), 1000, row));
    EXPECT_TRUE(client.server_closed());
  }
  service->stop();
  EXPECT_GE(service->stats().protocol_errors, 2u);
}

TEST(AuctionServiceTest, DisconnectedContributorIsPurgedAndNeverMisrouted) {
  std::string why;
  AuctionServiceConfig config;
  config.engine = small_engine();
  auto service = try_build_service(why, config);
  if (service == nullptr) GTEST_SKIP() << why;
  service->start();

  WorkloadSpec spec;
  spec.markets = 1;
  spec.rounds_per_market = 2;
  spec.clients = 16;
  spec.bids_per_round = config.engine.bids_per_round;
  const auto reference = reference_results(spec, config.engine);

  // `goner` seeds round 0 with one bid that is NOT part of the workload,
  // then disconnects. Its bid must be purged with it: otherwise round 0
  // clears early on a slate containing a ghost bidder.
  {
    TestClient goner;
    ASSERT_TRUE(goner.connect(service->port()));
    BidRow ghost{.client = 500, .value = 9.0, .bid = 4.0, .energy_cost = 1.0};
    ASSERT_TRUE(goner.send_bid(spec.market_id(0), 0, ghost));
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (service->stats().bids_received == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_EQ(service->stats().bids_received, 1u);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service->stats().connections_dropped == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(service->stats().connections_dropped, 1u);

  // `bystander` connects next, making it the prime candidate to inherit
  // the goner's just-released fd from the kernel.
  TestClient bystander;
  TestClient honest;
  ASSERT_TRUE(bystander.connect(service->port()));
  ASSERT_TRUE(honest.connect(service->port()));
  // Every connection gets a config echo; consume the bystander's so the
  // misrouting check below really asserts "no ROUND traffic arrived".
  ASSERT_TRUE(bystander.read_hello());

  // The honest client's full workload slate clears round 0 bit-exactly —
  // impossible if the ghost bid still occupied a bucket slot.
  const std::optional<RoundResult> result = drive_round(honest, spec, 0, 0);
  ASSERT_TRUE(result.has_value());
  expect_same_result(*result, reference[0][0]);

  // The goner contributed to round 0, but its result must not be delivered
  // to whoever now holds its old fd.
  EXPECT_TRUE(bystander.silent_for(200));
  // And the bystander's connection is fully usable afterwards.
  const std::optional<RoundResult> next = drive_round(bystander, spec, 0, 1);
  ASSERT_TRUE(next.has_value());
  expect_same_result(*next, reference[0][1]);

  service->stop();
  EXPECT_EQ(service->stats().protocol_errors, 0u);
}

TEST(AuctionServiceTest, RejectedSlateIsAppliedTransactionally) {
  std::string why;
  AuctionServiceConfig config;
  config.engine = small_engine();
  auto service = try_build_service(why, config);
  if (service == nullptr) GTEST_SKIP() << why;
  service->start();

  // One frame, two rows: a valid round-0 bid followed by a far-future
  // round. The violation must reject the WHOLE slate — the valid first row
  // never enters any bucket.
  TestClient hostile;
  ASSERT_TRUE(hostile.connect(service->port()));
  SubmitBids slate;
  slate.client = 7;
  slate.markets = {0, 0};
  slate.rounds = {0, 1000000};
  slate.values = {1.0, 1.0};
  slate.bids = {0.5, 0.5};
  slate.energy_costs = {1.0, 1.0};
  Frame frame;
  encode(slate, frame);
  ASSERT_TRUE(hostile.send_bytes(frame));
  EXPECT_TRUE(hostile.server_closed());
  EXPECT_EQ(service->stats().bids_received, 0u);

  // Round 0 still clears bit-exactly from an honest full slate.
  WorkloadSpec spec;
  spec.markets = 1;
  spec.rounds_per_market = 1;
  spec.clients = 16;
  spec.bids_per_round = config.engine.bids_per_round;
  const auto reference = reference_results(spec, config.engine);
  TestClient honest;
  ASSERT_TRUE(honest.connect(service->port()));
  const std::optional<RoundResult> result = drive_round(honest, spec, 0, 0);
  ASSERT_TRUE(result.has_value());
  expect_same_result(*result, reference[0][0]);
  service->stop();
  EXPECT_GE(service->stats().protocol_errors, 1u);
}

TEST(AuctionServiceTest, FullBucketAndMarketCapAreBenignNotViolations) {
  std::string why;
  AuctionServiceConfig config;
  config.engine = small_engine();
  config.engine.bids_per_round = 2;
  config.max_markets = 1;
  config.max_pending_rounds = 4;
  auto service = try_build_service(why, config);
  if (service == nullptr) GTEST_SKIP() << why;
  service->start();

  // `filler` fills round 1 while round 0 is still open: full but not yet
  // clearable (strict round order).
  TestClient filler;
  ASSERT_TRUE(filler.connect(service->port()));
  ASSERT_TRUE(filler.send_bid(
      0, 1, BidRow{.client = 101, .value = 1.0, .bid = 0.5, .energy_cost = 1.0}));
  ASSERT_TRUE(filler.send_bid(
      0, 1, BidRow{.client = 102, .value = 2.0, .bid = 0.7, .energy_cost = 1.0}));

  // `racer` loses two races an honest client cannot observe: the full
  // round-1 bucket, and the max_markets cap. Both bids are ignored; the
  // connection must survive.
  TestClient racer;
  ASSERT_TRUE(racer.connect(service->port()));
  ASSERT_TRUE(racer.send_bid(
      0, 1, BidRow{.client = 103, .value = 3.0, .bid = 0.9, .energy_cost = 1.0}));
  ASSERT_TRUE(racer.send_bid(
      7, 0, BidRow{.client = 103, .value = 3.0, .bid = 0.9, .energy_cost = 1.0}));

  // The racer's connection still works: it fills round 0, which clears and
  // cascades into the already-full round 1.
  ASSERT_TRUE(racer.send_bid(
      0, 0, BidRow{.client = 104, .value = 1.5, .bid = 0.6, .energy_cost = 1.0}));
  ASSERT_TRUE(racer.send_bid(
      0, 0, BidRow{.client = 105, .value = 2.5, .bid = 0.8, .energy_cost = 1.0}));

  const std::optional<RoundResult> round0 = racer.read_round_result();
  ASSERT_TRUE(round0.has_value());
  EXPECT_EQ(round0->round, 0u);
  for (const std::uint64_t winner : round0->winners) {
    EXPECT_NE(winner, 103u) << "ignored bid must not win";
  }
  const std::optional<RoundResult> round1 = filler.read_round_result();
  ASSERT_TRUE(round1.has_value());
  EXPECT_EQ(round1->round, 1u);

  service->stop();
  EXPECT_EQ(service->stats().rounds_cleared, 2u);
  EXPECT_EQ(service->stats().protocol_errors, 0u);
}

TEST(AuctionServiceTest, ServerHelloEchoesEngineKnobsFirstOnEveryConnection) {
  // The knob-mismatch regression (satellite of PR-8): a load generator
  // configured with a different bids_per_round used to hang silently —
  // buckets never filled, rounds never cleared, nothing was ever sent.
  // The config echo makes the disagreement observable BEFORE any bid.
  std::string why;
  AuctionServiceConfig config;
  config.engine = small_engine();
  config.max_pending_rounds = 16;
  auto service = try_build_service(why, config);
  if (service == nullptr) GTEST_SKIP() << why;
  service->start();

  for (int c = 0; c < 2; ++c) {  // every connection, not just the first
    TestClient client;
    ASSERT_TRUE(client.connect(service->port()));
    ServerHello hello;
    ASSERT_TRUE(client.read_hello(&hello)) << "connection " << c;
    EXPECT_EQ(hello.bids_per_round, config.engine.bids_per_round);
    EXPECT_EQ(hello.max_winners, config.engine.max_winners);
    EXPECT_EQ(hello.max_pending_rounds, config.max_pending_rounds);
    EXPECT_EQ(hello.mechanism, config.engine.mechanism);
  }
  service->stop();
  EXPECT_EQ(service->stats().protocol_errors, 0u);
}

TEST(AuctionServiceTest, UnknownMechanismKeyThrowsBeforeAnySocketExists) {
  // The mechanism key is validated before socket()/bind(), so the throw
  // cannot leak a listening fd — and it fires even where binding is
  // forbidden, as std::invalid_argument straight from the registry.
  AuctionServiceConfig config;
  config.engine.mechanism = "no-such-mechanism";
  EXPECT_THROW(AuctionService{std::move(config)}, std::invalid_argument);
}

}  // namespace
}  // namespace sfl::service
