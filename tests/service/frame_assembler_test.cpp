// Unit tests for FrameAssembler: incremental reassembly, coalesced frames,
// and the condemnation rules (bad header, oversized length claim).
#include "service/frame_assembler.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "dist/wire_codec.h"
#include "service/rpc_messages.h"

namespace sfl::service {
namespace {

using sfl::dist::kHeaderSize;

Frame encoded_submit(std::uint64_t client) {
  SubmitBids msg;
  msg.client = client;
  msg.markets = {1};
  msg.rounds = {2};
  msg.values = {1.5};
  msg.bids = {0.5};
  msg.energy_costs = {1.0};
  Frame frame;
  encode(msg, frame);
  return frame;
}

TEST(FrameAssemblerTest, WholeFrameInOneFeed) {
  FrameAssembler assembler;
  const Frame wire = encoded_submit(7);
  ASSERT_TRUE(assembler.feed(wire));
  Frame out;
  ASSERT_TRUE(assembler.next_frame(out));
  EXPECT_EQ(out, wire);
  EXPECT_FALSE(assembler.next_frame(out));
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
}

TEST(FrameAssemblerTest, SlowLorisByteAtATimeStaysBoundedAndCompletes) {
  // The slow-loris shape: one byte per feed. The assembler must buffer at
  // most one frame and produce the frame only once complete.
  FrameAssembler assembler;
  const Frame wire = encoded_submit(9);
  Frame out;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    ASSERT_FALSE(assembler.next_frame(out)) << "completed early at byte " << i;
    ASSERT_TRUE(assembler.feed(std::span<const std::byte>(&wire[i], 1)));
    EXPECT_LE(assembler.buffered_bytes(), wire.size());
  }
  ASSERT_TRUE(assembler.next_frame(out));
  EXPECT_EQ(out, wire);
  EXPECT_FALSE(assembler.condemned());
}

TEST(FrameAssemblerTest, CoalescedFramesComeOutOneAtATime) {
  FrameAssembler assembler;
  const Frame first = encoded_submit(1);
  const Frame second = encoded_submit(2);
  const Frame third = encoded_submit(3);
  Frame stream;
  stream.insert(stream.end(), first.begin(), first.end());
  stream.insert(stream.end(), second.begin(), second.end());
  stream.insert(stream.end(), third.begin(), third.end());
  ASSERT_TRUE(assembler.feed(stream));

  Frame out;
  ASSERT_TRUE(assembler.next_frame(out));
  EXPECT_EQ(out, first);
  ASSERT_TRUE(assembler.next_frame(out));
  EXPECT_EQ(out, second);
  ASSERT_TRUE(assembler.next_frame(out));
  EXPECT_EQ(out, third);
  EXPECT_FALSE(assembler.next_frame(out));
}

TEST(FrameAssemblerTest, FrameSplitAcrossFeedsPlusPartialNext) {
  FrameAssembler assembler;
  const Frame first = encoded_submit(4);
  const Frame second = encoded_submit(5);
  Frame stream;
  stream.insert(stream.end(), first.begin(), first.end());
  stream.insert(stream.end(), second.begin(), second.end());

  // Feed 1.5 frames, then the rest.
  const std::size_t split = first.size() + second.size() / 2;
  ASSERT_TRUE(assembler.feed(std::span<const std::byte>(stream.data(), split)));
  Frame out;
  ASSERT_TRUE(assembler.next_frame(out));
  EXPECT_EQ(out, first);
  ASSERT_FALSE(assembler.next_frame(out));  // second is incomplete
  ASSERT_TRUE(assembler.feed(std::span<const std::byte>(
      stream.data() + split, stream.size() - split)));
  ASSERT_TRUE(assembler.next_frame(out));
  EXPECT_EQ(out, second);
}

TEST(FrameAssemblerTest, GarbageHeaderCondemnsAtTwentyFourBytes) {
  FrameAssembler assembler;
  std::vector<std::byte> garbage(kHeaderSize - 1, std::byte{0xAB});
  // Below the header threshold nothing can be judged yet.
  ASSERT_TRUE(assembler.feed(garbage));
  EXPECT_FALSE(assembler.condemned());
  // The 24th byte completes the header: condemned immediately, without ever
  // trusting the (garbage) length field.
  const std::byte last{0xAB};
  EXPECT_FALSE(assembler.feed(std::span<const std::byte>(&last, 1)));
  EXPECT_TRUE(assembler.condemned());
  EXPECT_FALSE(assembler.condemned_reason().empty());
  // Condemned is terminal: valid bytes are refused too.
  EXPECT_FALSE(assembler.feed(encoded_submit(1)));
  Frame out;
  EXPECT_FALSE(assembler.next_frame(out));
}

TEST(FrameAssemblerTest, OversizedLengthClaimIsCondemnedBeforeBuffering) {
  FrameAssembler assembler(/*max_frame_bytes=*/256);
  Frame wire = encoded_submit(1);
  // Forge the payload-length field (offset 8) to claim far more than the
  // cap; the checksum no longer matters — the length is never trusted.
  const std::uint64_t huge = 1u << 20;
  std::memcpy(wire.data() + 8, &huge, sizeof(huge));
  EXPECT_FALSE(assembler.feed(wire));
  EXPECT_TRUE(assembler.condemned());
}

TEST(FrameAssemblerTest, GarbageAfterValidFrameCondemnsOnNextFrame) {
  FrameAssembler assembler;
  const Frame good = encoded_submit(6);
  Frame stream = good;
  stream.insert(stream.end(), kHeaderSize, std::byte{0xFF});
  // feed() only sees the (valid) first header; the garbage surfaces when
  // the second frame's header is examined.
  ASSERT_TRUE(assembler.feed(stream));
  Frame out;
  ASSERT_TRUE(assembler.next_frame(out));
  EXPECT_EQ(out, good);
  EXPECT_FALSE(assembler.next_frame(out));
  EXPECT_TRUE(assembler.condemned());
}

TEST(FrameAssemblerTest, UnknownFrameTypeIsImplausible) {
  FrameAssembler assembler;
  Frame wire = encoded_submit(1);
  wire[5] = std::byte{99};  // type byte outside the known range
  EXPECT_FALSE(assembler.feed(wire));
  EXPECT_TRUE(assembler.condemned());
}

TEST(FrameAssemblerTest, WireVersionMismatchGetsAnActionableReason) {
  // A correct-magic frame with a different version byte is a peer built
  // from another wire revision, not line noise — the condemnation reason
  // must name BOTH versions and the fix, so the load generator's fail-fast
  // path can surface it verbatim. The version byte is legal to patch: the
  // 24-byte header is not covered by the payload checksum.
  FrameAssembler assembler;
  Frame wire = encoded_submit(1);
  wire[4] = std::byte{0};  // an older wire revision
  EXPECT_FALSE(assembler.feed(wire));
  ASSERT_TRUE(assembler.condemned());
  const std::string& reason = assembler.condemned_reason();
  EXPECT_NE(reason.find("wire version 0"), std::string::npos) << reason;
  EXPECT_NE(reason.find("version " +
                        std::to_string(sfl::dist::kWireVersion)),
            std::string::npos)
      << reason;
  EXPECT_NE(reason.find("rebuild"), std::string::npos) << reason;
  // Generic garbage keeps the generic reason.
  FrameAssembler garbage_assembler;
  Frame garbage = encoded_submit(1);
  garbage[0] = std::byte{0x00};  // break the magic
  EXPECT_FALSE(garbage_assembler.feed(garbage));
  EXPECT_EQ(garbage_assembler.condemned_reason(),
            "implausible frame header (magic/version/type)");
}

}  // namespace
}  // namespace sfl::service
