#include "reputation/reputation.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sfl::reputation {
namespace {

TEST(CosineSimilarityTest, KnownValues) {
  const std::vector<double> a{1.0, 0.0};
  const std::vector<double> b{0.0, 1.0};
  const std::vector<double> c{2.0, 0.0};
  const std::vector<double> d{-1.0, 0.0};
  EXPECT_NEAR(cosine_similarity(a, b), 0.0, 1e-12);
  EXPECT_NEAR(cosine_similarity(a, c), 1.0, 1e-12);
  EXPECT_NEAR(cosine_similarity(a, d), -1.0, 1e-12);
}

TEST(CosineSimilarityTest, ZeroVectorsGiveZero) {
  const std::vector<double> zero{0.0, 0.0};
  const std::vector<double> a{1.0, 2.0};
  EXPECT_DOUBLE_EQ(cosine_similarity(zero, a), 0.0);
  EXPECT_DOUBLE_EQ(cosine_similarity(zero, zero), 0.0);
}

TEST(CosineSimilarityTest, SizeMismatchThrows) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW((void)cosine_similarity(a, b), std::invalid_argument);
}

TEST(AlignmentToQualityTest, MapsRangeCorrectly) {
  EXPECT_DOUBLE_EQ(alignment_to_quality(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(alignment_to_quality(0.0), 0.5);
  EXPECT_DOUBLE_EQ(alignment_to_quality(1.0), 1.0);
}

TEST(ReputationTrackerTest, StartsAtPrior) {
  const ReputationTracker tracker(3, 0.7, 0.2);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(tracker.quality(i), 0.7);
    EXPECT_EQ(tracker.observation_count(i), 0u);
  }
  EXPECT_EQ(tracker.num_clients(), 3u);
}

TEST(ReputationTrackerTest, EwmaBlendsObservations) {
  ReputationTracker tracker(1, 0.5, 0.5);
  tracker.observe(0, 1.0);
  EXPECT_DOUBLE_EQ(tracker.quality(0), 0.75);
  tracker.observe(0, 0.0);
  EXPECT_DOUBLE_EQ(tracker.quality(0), 0.375);
  EXPECT_EQ(tracker.observation_count(0), 2u);
}

TEST(ReputationTrackerTest, ConvergesToStationarySignal) {
  ReputationTracker tracker(2, 0.5, 0.3);
  for (int i = 0; i < 100; ++i) {
    tracker.observe(0, 0.9);
    tracker.observe(1, 0.2);
  }
  EXPECT_NEAR(tracker.quality(0), 0.9, 1e-3);
  EXPECT_NEAR(tracker.quality(1), 0.2, 1e-3);
}

TEST(ReputationTrackerTest, SeparatesAlignedFromMisaligned) {
  ReputationTracker tracker(2, 0.8, 0.2);
  for (int i = 0; i < 50; ++i) {
    tracker.observe_alignment(0, 0.9);    // well-aligned client
    tracker.observe_alignment(1, -0.4);   // adversarially misaligned client
  }
  EXPECT_GT(tracker.quality(0), 0.85);
  EXPECT_LT(tracker.quality(1), 0.4);
  EXPECT_GT(tracker.quality(0) - tracker.quality(1), 0.4);
}

TEST(ReputationTrackerTest, Validation) {
  EXPECT_THROW(ReputationTracker(0), std::invalid_argument);
  EXPECT_THROW(ReputationTracker(1, 1.5), std::invalid_argument);
  EXPECT_THROW(ReputationTracker(1, 0.5, 0.0), std::invalid_argument);
  ReputationTracker tracker(1);
  EXPECT_THROW(tracker.observe(0, 1.5), std::invalid_argument);
  EXPECT_THROW(tracker.observe(5, 0.5), std::out_of_range);
  EXPECT_THROW(tracker.observe_alignment(0, 2.0), std::invalid_argument);
}

TEST(ReputationTrackerTest, QualityVectorReflectsState) {
  ReputationTracker tracker(2, 0.6, 1.0);
  tracker.observe(1, 0.1);
  const auto& v = tracker.quality_vector();
  EXPECT_DOUBLE_EQ(v[0], 0.6);
  EXPECT_DOUBLE_EQ(v[1], 0.1);
}

TEST(LeaveOneOutAlignmentTest, ExcludesOwnUpdateFromReference) {
  // Four updates: three pointing +x, one pointing -x. Against the
  // leave-one-out reference, the outlier is anti-aligned even though it
  // would drag a naive full aggregate toward itself.
  const std::vector<std::vector<double>> updates{
      {1.0, 0.0}, {1.0, 0.1}, {1.0, -0.1}, {-1.0, 0.0}};
  const std::vector<double> weights{1.0, 1.0, 1.0, 1.0};
  EXPECT_GT(leave_one_out_alignment(updates, weights, 0), 0.9);
  EXPECT_GT(leave_one_out_alignment(updates, weights, 1), 0.9);
  EXPECT_LT(leave_one_out_alignment(updates, weights, 3), -0.9);
}

TEST(LeaveOneOutAlignmentTest, WeightsShiftTheReference) {
  const std::vector<std::vector<double>> updates{
      {1.0, 0.0}, {0.0, 1.0}, {0.0, 1.0}};
  // Under equal weights, update 0's reference is +y: orthogonal.
  EXPECT_NEAR(leave_one_out_alignment(updates, {1.0, 1.0, 1.0}, 0), 0.0, 1e-12);
  // Same direction either way for update 1 (reference mixes 0 and 2).
  const double a = leave_one_out_alignment(updates, {10.0, 1.0, 1.0}, 1);
  const double b = leave_one_out_alignment(updates, {0.1, 1.0, 1.0}, 1);
  EXPECT_LT(a, b);  // heavier weight on the orthogonal update lowers alignment
}

TEST(LeaveOneOutAlignmentTest, SingleUpdateReturnsZero) {
  const std::vector<std::vector<double>> updates{{1.0, 2.0}};
  EXPECT_DOUBLE_EQ(leave_one_out_alignment(updates, {1.0}, 0), 0.0);
}

TEST(LeaveOneOutAlignmentTest, Validation) {
  const std::vector<std::vector<double>> updates{{1.0}, {2.0}};
  EXPECT_THROW((void)leave_one_out_alignment(updates, {1.0}, 0),
               std::invalid_argument);
  EXPECT_THROW((void)leave_one_out_alignment(updates, {1.0, 0.0}, 0),
               std::invalid_argument);
  EXPECT_THROW((void)leave_one_out_alignment({}, {}, 0), std::invalid_argument);
  EXPECT_THROW((void)leave_one_out_alignment(updates, {1.0, 1.0}, 5),
               std::out_of_range);
  const std::vector<std::vector<double>> mismatched{{1.0}, {2.0, 3.0}};
  EXPECT_THROW((void)leave_one_out_alignment(mismatched, {1.0, 1.0}, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace sfl::reputation
