// Cross-module integration tests: the full system run end to end in
// configurations the per-module suites do not cover.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "auction/adaptive_price.h"
#include "auction/baselines.h"
#include "core/long_term_online_vcg.h"
#include "core/market_simulation.h"
#include "core/orchestrator.h"
#include "fl/mlp.h"
#include "fl/logistic_regression.h"

namespace sfl::core {
namespace {

sim::ScenarioSpec scenario_spec() {
  sim::ScenarioSpec spec;
  spec.num_clients = 10;
  spec.train_examples = 500;
  spec.test_examples = 150;
  spec.num_classes = 3;
  spec.feature_dim = 6;
  spec.class_separation = 2.5;
  spec.seed = 91;
  return spec;
}

fl::LocalTrainingSpec training_spec() {
  fl::LocalTrainingSpec spec;
  spec.local_steps = 5;
  spec.batch_size = 16;
  spec.optimizer.learning_rate = 0.1;
  return spec;
}

OrchestratorConfig orch_config(std::size_t rounds) {
  OrchestratorConfig config;
  config.rounds = rounds;
  config.max_winners = 4;
  config.per_round_budget = 3.0;
  config.seed = 7;
  return config;
}

std::unique_ptr<sfl::auction::Mechanism> lto(const OrchestratorConfig& cfg) {
  LtoVcgConfig config;
  config.v_weight = 8.0;
  config.per_round_budget = cfg.per_round_budget;
  return std::make_unique<LongTermOnlineVcgMechanism>(config);
}

TEST(IntegrationTest, MlpModelTrainsEndToEndUnderTheMechanism) {
  const auto sspec = scenario_spec();
  const sim::Scenario scenario = sim::build_scenario(sspec);
  const OrchestratorConfig config = orch_config(50);
  sfl::util::Rng init_rng(3);
  auto model = std::make_unique<fl::Mlp>(sspec.feature_dim, 12,
                                         sspec.num_classes, init_rng, 1e-4);
  SustainableFlOrchestrator orchestrator(scenario, std::move(model),
                                         training_spec(), lto(config), config);
  const RunResult result = orchestrator.run();
  EXPECT_GT(result.final_accuracy, 0.6);  // 3 classes, chance 0.33
  EXPECT_DOUBLE_EQ(result.ir_fraction, 1.0);
}

TEST(IntegrationTest, FedProxAndScheduleComposeWithTheMechanism) {
  const auto sspec = scenario_spec();
  const sim::Scenario scenario = sim::build_scenario(sspec);
  const OrchestratorConfig config = orch_config(40);
  fl::LocalTrainingSpec training = training_spec();
  training.proximal_mu = 0.1;
  training.gradient_clip_norm = 50.0;
  auto model = std::make_unique<fl::LogisticRegression>(sspec.feature_dim,
                                                        sspec.num_classes, 1e-4);
  SustainableFlOrchestrator orchestrator(scenario, std::move(model), training,
                                         lto(config), config);
  const RunResult result = orchestrator.run();
  EXPECT_GT(result.final_accuracy, 0.6);
}

TEST(IntegrationTest, WelfareAccountingIdentityHoldsAcrossTheMarket) {
  // welfare == server utility + sum of client utilities, where server
  // utility = value - payment and client utility = payment - cost. Checked
  // through the market simulation's independent accumulations.
  MarketSpec spec;
  spec.num_clients = 25;
  spec.rounds = 200;
  spec.max_winners = 6;
  spec.per_round_budget = 4.0;
  spec.seed = 3;
  LtoVcgConfig config;
  config.v_weight = 10.0;
  config.per_round_budget = spec.per_round_budget;
  LongTermOnlineVcgMechanism mech(config);
  const MarketResult result = run_market(mech, spec);

  const double client_total = std::accumulate(
      result.client_utilities.begin(), result.client_utilities.end(), 0.0);
  // Server utility = welfare - client transfers' surplus:
  // sum(v - c) = sum(v - p) + sum(p - c).
  const double server_utility = result.cumulative_welfare - client_total;
  EXPECT_NEAR(result.cumulative_welfare, server_utility + client_total, 1e-9);
  // Payments reconcile with the series.
  const double series_sum = std::accumulate(result.payment_series.begin(),
                                            result.payment_series.end(), 0.0);
  EXPECT_NEAR(series_sum, result.cumulative_payment, 1e-6);
  // Client utilities are non-negative under a truthful IR mechanism with
  // truthful bidding.
  for (const double u : result.client_utilities) {
    EXPECT_GE(u, -1e-9);
  }
}

TEST(IntegrationTest, MisreportingDoesNotHelpThroughTheFullFlStack) {
  // FL-level incentive spot check: one client scales its bids; its ledger
  // utility through the complete orchestrator (auction + training +
  // reputation) must not beat truth-telling.
  const auto sspec = scenario_spec();
  const sim::Scenario scenario = sim::build_scenario(sspec);
  const OrchestratorConfig config = orch_config(60);

  const auto utility_with_factor = [&](double factor) {
    StrategyTable strategies(sspec.num_clients);
    for (auto& s : strategies) s = std::make_shared<econ::TruthfulStrategy>();
    if (factor != 1.0) {
      strategies[2] = std::make_shared<econ::ScaledMisreportStrategy>(factor);
    }
    auto model = std::make_unique<fl::LogisticRegression>(
        sspec.feature_dim, sspec.num_classes, 1e-4);
    SustainableFlOrchestrator orchestrator(scenario, std::move(model),
                                           training_spec(), lto(config), config,
                                           std::move(strategies));
    return orchestrator.run().client_utilities[2];
  };

  const double truthful = utility_with_factor(1.0);
  for (const double factor : {0.6, 1.5, 2.5}) {
    EXPECT_LE(utility_with_factor(factor), truthful + 1e-6) << factor;
  }
}

TEST(IntegrationTest, BudgetScheduleWorksThroughTheOrchestrator) {
  const auto sspec = scenario_spec();
  const sim::Scenario scenario = sim::build_scenario(sspec);
  OrchestratorConfig config = orch_config(80);

  LtoVcgConfig mech_config;
  mech_config.v_weight = 8.0;
  mech_config.per_round_budget = config.per_round_budget;
  mech_config.budget_schedule = {1.0, 5.0};  // mean 3 = per_round_budget
  auto model = std::make_unique<fl::LogisticRegression>(sspec.feature_dim,
                                                        sspec.num_classes, 1e-4);
  SustainableFlOrchestrator orchestrator(
      scenario, std::move(model), training_spec(),
      std::make_unique<LongTermOnlineVcgMechanism>(mech_config), config);
  const RunResult result = orchestrator.run();
  EXPECT_LE(result.average_payment, 3.0 * 1.2);
  EXPECT_GT(result.final_accuracy, 0.5);
}

TEST(IntegrationTest, AdaptivePriceMechanismRunsThroughTheOrchestrator) {
  const auto sspec = scenario_spec();
  const sim::Scenario scenario = sim::build_scenario(sspec);
  const OrchestratorConfig config = orch_config(40);
  auto model = std::make_unique<fl::LogisticRegression>(sspec.feature_dim,
                                                        sspec.num_classes, 1e-4);
  SustainableFlOrchestrator orchestrator(
      scenario, std::move(model), training_spec(),
      std::make_unique<sfl::auction::AdaptivePostedPriceMechanism>(
          sfl::auction::AdaptivePriceConfig{}),
      config);
  const RunResult result = orchestrator.run();
  EXPECT_GT(result.final_accuracy, 0.5);
  EXPECT_DOUBLE_EQ(result.ir_fraction, 1.0);
}

}  // namespace
}  // namespace sfl::core
