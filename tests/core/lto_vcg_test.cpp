#include "core/long_term_online_vcg.h"

#include <gtest/gtest.h>

#include "auction/random_instance.h"
#include "util/rng.h"

namespace sfl::core {
namespace {

using sfl::auction::Candidate;
using sfl::auction::MechanismResult;
using sfl::auction::RoundContext;
using sfl::auction::RoundObservation;

LtoVcgConfig small_config() {
  LtoVcgConfig config;
  config.v_weight = 5.0;
  config.per_round_budget = 2.0;
  return config;
}

std::vector<Candidate> market() {
  return {Candidate{.id = 0, .value = 4.0, .bid = 1.0, .energy_cost = 1.0},
          Candidate{.id = 1, .value = 6.0, .bid = 2.0, .energy_cost = 1.0},
          Candidate{.id = 2, .value = 5.0, .bid = 0.5, .energy_cost = 1.0}};
}

RoundContext ctx(std::size_t m) {
  RoundContext context;
  context.max_winners = m;
  context.per_round_budget = 2.0;
  return context;
}

TEST(LtoVcgTest, ConfigValidation) {
  LtoVcgConfig config = small_config();
  config.v_weight = 0.0;
  EXPECT_THROW(LongTermOnlineVcgMechanism{config}, std::invalid_argument);
  config = small_config();
  config.per_round_budget = 0.0;
  EXPECT_THROW(LongTermOnlineVcgMechanism{config}, std::invalid_argument);
  config = small_config();
  config.energy_rates = {0.5, -1.0};
  EXPECT_THROW(LongTermOnlineVcgMechanism{config}, std::invalid_argument);
}

TEST(LtoVcgTest, InitialWeightsAreVAndV) {
  LongTermOnlineVcgMechanism mech(small_config());
  const auto weights = mech.current_weights();
  EXPECT_DOUBLE_EQ(weights.value_weight, 5.0);
  EXPECT_DOUBLE_EQ(weights.bid_weight, 5.0);  // Q(0) = 0
  EXPECT_DOUBLE_EQ(mech.budget_backlog(), 0.0);
  EXPECT_TRUE(mech.is_truthful());
  EXPECT_EQ(mech.name(), "lto-vcg");
}

TEST(LtoVcgTest, FirstRoundMatchesMyopicVcgSelection) {
  // With Q(0) = 0 the affine maximizer reduces to plain (value - bid).
  LongTermOnlineVcgMechanism mech(small_config());
  const MechanismResult result = mech.run_round(market(), ctx(2));
  // Scores*V: (4-1), (6-2), (5-0.5) -> winners ids 2 and 1.
  EXPECT_TRUE(result.won(2));
  EXPECT_TRUE(result.won(1));
  EXPECT_FALSE(result.won(0));
}

TEST(LtoVcgTest, QueueGrowsWhenOverBudgetAndTightensSelection) {
  LongTermOnlineVcgMechanism mech(small_config());
  double previous_backlog = 0.0;
  std::size_t first_round_winners = 0;
  std::size_t late_round_winners = 0;
  for (int round = 0; round < 60; ++round) {
    const MechanismResult result = mech.run_round(market(), ctx(3));
    if (round == 0) first_round_winners = result.winners.size();
    if (round == 59) late_round_winners = result.winners.size();
    RoundObservation obs;
    obs.round = static_cast<std::size_t>(round);
    obs.total_payment = result.total_payment();
    obs.winners = result.winners;
    mech.observe(obs);
    previous_backlog = mech.budget_backlog();
  }
  (void)previous_backlog;
  // Unconstrained spend exceeds B-bar = 2, so the queue must engage and the
  // effective bid weight must rise above V.
  EXPECT_GT(mech.current_weights().bid_weight, 5.0);
  EXPECT_GE(first_round_winners, late_round_winners);
}

TEST(LtoVcgTest, LongRunAveragePaymentMeetsBudget) {
  LongTermOnlineVcgMechanism mech(small_config());
  double total_payment = 0.0;
  const int rounds = 3000;
  for (int round = 0; round < rounds; ++round) {
    const MechanismResult result = mech.run_round(market(), ctx(3));
    total_payment += result.total_payment();
    RoundObservation obs;
    obs.total_payment = result.total_payment();
    obs.winners = result.winners;
    mech.observe(obs);
  }
  // Long-term constraint: average payment <= B-bar within a small tolerance
  // (the O(V)/t transient).
  EXPECT_LE(total_payment / rounds, 2.0 + 0.1);
  // And the mechanism still buys participation (not shut down).
  EXPECT_GT(total_payment, 0.5 * rounds);
}

TEST(LtoVcgTest, PaymentsCoverBidsEveryRound) {
  LongTermOnlineVcgMechanism mech(small_config());
  sfl::util::Rng rng(17);
  for (int round = 0; round < 200; ++round) {
    sfl::auction::RandomInstanceSpec spec;
    spec.num_candidates = 8;
    const auto instance = make_random_instance(spec, rng);
    const MechanismResult result = mech.run_round(instance.candidates, ctx(3));
    for (const auto id : result.winners) {
      EXPECT_GE(result.payment_for(id), instance.candidates[id].bid - 1e-9);
    }
    RoundObservation obs;
    obs.total_payment = result.total_payment();
    mech.observe(obs);
  }
}

TEST(LtoVcgTest, PaymentRulesCoincide) {
  // Critical-value and VCG-externality payments must be identical, including
  // with a grown queue and sustainability penalties active.
  LtoVcgConfig critical_cfg = small_config();
  critical_cfg.energy_rates = std::vector<double>(3, 0.3);
  LtoVcgConfig vcg_cfg = critical_cfg;
  vcg_cfg.payment_rule = PaymentRule::kVcgExternality;
  LongTermOnlineVcgMechanism critical(critical_cfg);
  LongTermOnlineVcgMechanism vcg(vcg_cfg);
  sfl::util::Rng rng(23);
  for (int round = 0; round < 100; ++round) {
    sfl::auction::RandomInstanceSpec spec;
    spec.num_candidates = 3;
    const auto instance = make_random_instance(spec, rng);
    const MechanismResult a = critical.run_round(instance.candidates, ctx(2));
    const MechanismResult b = vcg.run_round(instance.candidates, ctx(2));
    ASSERT_EQ(a.winners, b.winners) << "round " << round;
    for (std::size_t k = 0; k < a.payments.size(); ++k) {
      EXPECT_NEAR(a.payments[k], b.payments[k], 1e-9) << "round " << round;
    }
    RoundObservation obs;
    obs.total_payment = a.total_payment();
    obs.winners = a.winners;
    critical.observe(obs);
    vcg.observe(obs);
  }
}

TEST(LtoVcgTest, SustainabilityQueuesPaceHeavyWinners) {
  // One very attractive client (high value, low cost): without Z queues it
  // wins every round; with a rate limit of 0.25 it must win at most ~25% of
  // rounds in the long run.
  LtoVcgConfig config = small_config();
  config.per_round_budget = 100.0;  // budget never binds here
  config.energy_rates = {0.25, 10.0, 10.0};
  LongTermOnlineVcgMechanism mech(config);
  std::vector<Candidate> candidates{
      Candidate{.id = 0, .value = 10.0, .bid = 0.1, .energy_cost = 1.0},
      Candidate{.id = 1, .value = 2.0, .bid = 1.0, .energy_cost = 1.0},
      Candidate{.id = 2, .value = 2.0, .bid = 1.0, .energy_cost = 1.0}};
  int wins0 = 0;
  const int rounds = 2000;
  for (int round = 0; round < rounds; ++round) {
    const MechanismResult result = mech.run_round(candidates, ctx(1));
    if (result.won(0)) ++wins0;
    RoundObservation obs;
    obs.total_payment = result.total_payment();
    obs.winners = result.winners;
    mech.observe(obs);
  }
  EXPECT_LT(wins0 / static_cast<double>(rounds), 0.35);
  EXPECT_GT(wins0 / static_cast<double>(rounds), 0.15);
}

TEST(LtoVcgTest, SustainabilityBacklogAccessor) {
  LtoVcgConfig config = small_config();
  config.energy_rates = {0.1, 0.1, 0.1};
  LongTermOnlineVcgMechanism mech(config);
  EXPECT_DOUBLE_EQ(mech.sustainability_backlog(0), 0.0);
  const MechanismResult result = mech.run_round(market(), ctx(3));
  RoundObservation obs;
  obs.total_payment = result.total_payment();
  obs.winners = result.winners;
  mech.observe(obs);
  // Winners' queues grew by e_i - r_i = 0.9.
  for (const auto id : result.winners) {
    EXPECT_NEAR(mech.sustainability_backlog(id), 0.9, 1e-12);
  }
  // Disabled-queue mechanism always reports 0.
  LongTermOnlineVcgMechanism no_queues(small_config());
  EXPECT_DOUBLE_EQ(no_queues.sustainability_backlog(0), 0.0);
}

TEST(LtoVcgTest, CandidateIdOutsideEnergyTableThrows) {
  LtoVcgConfig config = small_config();
  config.energy_rates = {0.5};  // only client 0 known
  LongTermOnlineVcgMechanism mech(config);
  EXPECT_THROW((void)mech.run_round(market(), ctx(2)), std::invalid_argument);
}

TEST(LtoVcgTest, BidProxyQueueModeStillStabilizesBudget) {
  LtoVcgConfig config = small_config();
  config.queue_arrival = QueueArrivalMode::kBidProxy;
  LongTermOnlineVcgMechanism mech(config);
  double total_payment = 0.0;
  const int rounds = 3000;
  for (int round = 0; round < rounds; ++round) {
    const MechanismResult result = mech.run_round(market(), ctx(3));
    total_payment += result.total_payment();
    RoundObservation obs;
    obs.total_payment = result.total_payment();
    mech.observe(obs);
  }
  // Bids under-estimate payments, so allow a looser tolerance; the queue
  // must still prevent unbounded overspend.
  EXPECT_LE(total_payment / rounds, 2.0 * 2.5);
}

TEST(LtoVcgTest, HigherVToleratesLargerBacklog) {
  const auto final_backlog = [&](double v) {
    LtoVcgConfig config = small_config();
    config.v_weight = v;
    LongTermOnlineVcgMechanism mech(config);
    for (int round = 0; round < 2000; ++round) {
      const MechanismResult result = mech.run_round(market(), ctx(3));
      RoundObservation obs;
      obs.total_payment = result.total_payment();
      mech.observe(obs);
    }
    return mech.average_budget_backlog();
  };
  EXPECT_GT(final_backlog(50.0), final_backlog(2.0));
}

}  // namespace
}  // namespace sfl::core
