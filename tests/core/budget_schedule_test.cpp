// Time-varying budget schedules in the LTO-VCG mechanism.
#include <gtest/gtest.h>

#include "core/long_term_online_vcg.h"
#include "core/market_simulation.h"

namespace sfl::core {
namespace {

using sfl::auction::Candidate;
using sfl::auction::MechanismResult;
using sfl::auction::RoundContext;
using sfl::auction::RoundObservation;

TEST(BudgetScheduleTest, RejectsNonPositiveScheduledBudgets) {
  LtoVcgConfig config;
  config.v_weight = 5.0;
  config.per_round_budget = 2.0;
  config.budget_schedule = {3.0, 0.0};
  EXPECT_THROW(LongTermOnlineVcgMechanism{config}, std::invalid_argument);
}

TEST(BudgetScheduleTest, AveragePaymentTracksScheduleMean) {
  // Alternating 2 / 10 budget: the long-term constraint is the mean (6).
  LtoVcgConfig config;
  config.v_weight = 10.0;
  config.per_round_budget = 6.0;  // used for weights; service comes from schedule
  config.budget_schedule = {2.0, 10.0};
  LongTermOnlineVcgMechanism mech(config);

  const std::vector<Candidate> market{
      Candidate{.id = 0, .value = 6.0, .bid = 1.0, .energy_cost = 1.0},
      Candidate{.id = 1, .value = 5.0, .bid = 1.2, .energy_cost = 1.0},
      Candidate{.id = 2, .value = 7.0, .bid = 0.8, .energy_cost = 1.0},
      Candidate{.id = 3, .value = 4.0, .bid = 1.5, .energy_cost = 1.0}};
  RoundContext context;
  context.max_winners = 4;
  context.per_round_budget = 6.0;

  double total_payment = 0.0;
  const std::size_t rounds = 4000;
  for (std::size_t round = 0; round < rounds; ++round) {
    context.round = round;
    const MechanismResult result = mech.run_round(market, context);
    total_payment += result.total_payment();
    RoundObservation obs;
    obs.round = round;
    obs.total_payment = result.total_payment();
    mech.observe(obs);
  }
  const double average = total_payment / static_cast<double>(rounds);
  // Unconstrained spend for this market is far above 6; the schedule must
  // pin the average near its mean.
  EXPECT_LE(average, 6.0 * 1.05);
  EXPECT_GE(average, 6.0 * 0.7);
}

TEST(BudgetScheduleTest, ConstantScheduleMatchesPlainBudget) {
  LtoVcgConfig plain;
  plain.v_weight = 8.0;
  plain.per_round_budget = 3.0;
  LtoVcgConfig scheduled = plain;
  scheduled.budget_schedule = {3.0};  // constant schedule, same value

  LongTermOnlineVcgMechanism a(plain);
  LongTermOnlineVcgMechanism b(scheduled);
  const std::vector<Candidate> market{
      Candidate{.id = 0, .value = 6.0, .bid = 1.0, .energy_cost = 1.0},
      Candidate{.id = 1, .value = 5.0, .bid = 1.2, .energy_cost = 1.0}};
  RoundContext context;
  context.max_winners = 2;
  context.per_round_budget = 3.0;

  for (std::size_t round = 0; round < 500; ++round) {
    context.round = round;
    const MechanismResult ra = a.run_round(market, context);
    const MechanismResult rb = b.run_round(market, context);
    ASSERT_EQ(ra.winners, rb.winners) << round;
    ASSERT_EQ(ra.payments, rb.payments) << round;
    RoundObservation obs;
    obs.round = round;
    obs.total_payment = ra.total_payment();
    a.observe(obs);
    b.observe(obs);
  }
  EXPECT_DOUBLE_EQ(a.budget_backlog(), b.budget_backlog());
}

TEST(BudgetScheduleTest, SpendFollowsThePhases) {
  // With a strongly asymmetric 1/11 schedule, the queue drains enough in
  // rich phases to admit more winners right after them than in the middle
  // of a long poor stretch.
  LtoVcgConfig config;
  config.v_weight = 4.0;
  config.per_round_budget = 6.0;
  config.budget_schedule = {1.0, 1.0, 1.0, 1.0, 1.0, 25.0};
  LongTermOnlineVcgMechanism mech(config);

  const std::vector<Candidate> market{
      Candidate{.id = 0, .value = 6.0, .bid = 1.0, .energy_cost = 1.0},
      Candidate{.id = 1, .value = 5.0, .bid = 1.2, .energy_cost = 1.0},
      Candidate{.id = 2, .value = 7.0, .bid = 0.8, .energy_cost = 1.0}};
  RoundContext context;
  context.max_winners = 3;
  context.per_round_budget = 6.0;

  double total = 0.0;
  const std::size_t rounds = 6000;
  for (std::size_t round = 0; round < rounds; ++round) {
    context.round = round;
    const MechanismResult result = mech.run_round(market, context);
    total += result.total_payment();
    RoundObservation obs;
    obs.round = round;
    obs.total_payment = result.total_payment();
    mech.observe(obs);
  }
  // Mean of the schedule is 5: long-run average spend respects it.
  EXPECT_LE(total / static_cast<double>(rounds), 5.0 * 1.05);
}

}  // namespace
}  // namespace sfl::core
