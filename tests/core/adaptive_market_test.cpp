#include "core/adaptive_market.h"

#include <gtest/gtest.h>

#include "auction/baselines.h"
#include "core/long_term_online_vcg.h"

namespace sfl::core {
namespace {

MarketSpec market_spec(std::size_t rounds) {
  MarketSpec spec;
  spec.num_clients = 25;
  spec.rounds = rounds;
  spec.max_winners = 6;
  spec.per_round_budget = 5.0;
  spec.seed = 77;
  return spec;
}

AdaptiveMarketConfig adaptive_config() {
  AdaptiveMarketConfig config;
  config.learner.factor_grid = {0.7, 1.0, 1.5, 2.0};
  config.learner.exploration = 0.08;
  config.learner.reward_scale = 3.0;
  config.sample_every = 100;
  return config;
}

TEST(AdaptiveMarketTest, SeriesShapeAndDeterminism) {
  const MarketSpec spec = market_spec(400);
  LtoVcgConfig lto_config;
  lto_config.v_weight = 10.0;
  lto_config.per_round_budget = spec.per_round_budget;
  LongTermOnlineVcgMechanism a(lto_config);
  LongTermOnlineVcgMechanism b(lto_config);
  const AdaptiveMarketResult ra = run_adaptive_market(a, spec, adaptive_config());
  const AdaptiveMarketResult rb = run_adaptive_market(b, spec, adaptive_config());
  EXPECT_EQ(ra.mean_factor_series, rb.mean_factor_series);
  EXPECT_EQ(ra.rounds, 400u);
  // initial sample + one per 100 rounds.
  EXPECT_EQ(ra.mean_factor_series.size(), 1u + 4u);
  EXPECT_DOUBLE_EQ(ra.mean_factor_series.front(), ra.initial_mean_factor);
}

TEST(AdaptiveMarketTest, LearnersApproachTruthUnderLtoVcg) {
  const MarketSpec spec = market_spec(6000);
  LtoVcgConfig lto_config;
  lto_config.v_weight = 10.0;
  lto_config.per_round_budget = spec.per_round_budget;
  LongTermOnlineVcgMechanism mech(lto_config);
  const AdaptiveMarketResult result =
      run_adaptive_market(mech, spec, adaptive_config());
  // The uniform prior starts at the grid mean (1.3); learning must pull the
  // population toward 1.0.
  EXPECT_LT(result.final_mean_factor, result.initial_mean_factor - 0.05);
  EXPECT_LT(result.final_mean_factor, 1.25);
  // A large share of clients' modal arm is the truthful factor. (Clients
  // who rarely win receive no signal and stay near-uniform, so this cannot
  // reach 1.)
  EXPECT_GT(result.truthful_modal_fraction, 0.4);
}

TEST(AdaptiveMarketTest, LearnersDriftToOverbiddingUnderPayAsBid) {
  const MarketSpec spec = market_spec(6000);
  sfl::auction::PayAsBidGreedyMechanism mech;
  const AdaptiveMarketResult result =
      run_adaptive_market(mech, spec, adaptive_config());
  // Truth pays zero rent under pay-as-bid; overbid arms win the bandit.
  EXPECT_GT(result.final_mean_factor, 1.2);
  EXPECT_LT(result.truthful_modal_fraction, 0.5);
}

TEST(AdaptiveMarketTest, Validation) {
  MarketSpec spec = market_spec(10);
  spec.rounds = 0;
  sfl::auction::MyopicVcgMechanism mech;
  EXPECT_THROW((void)run_adaptive_market(mech, spec), std::invalid_argument);
  spec = market_spec(10);
  AdaptiveMarketConfig config = adaptive_config();
  config.sample_every = 0;
  EXPECT_THROW((void)run_adaptive_market(mech, spec, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace sfl::core
