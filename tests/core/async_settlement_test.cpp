// Deterministic replay of the async settlement pipeline: for EVERY
// mechanism in the registry, a fixed-seed market run with streamed
// settlement must be bit-identical — ledgers (client utilities,
// participation), payment/welfare series, and final queue state — to the
// synchronous path once flush() has run. Also covers the orchestrator's
// full FL loop (training between enqueue and flush is exactly the window
// the pipeline overlaps) and the lto-vcg-async registry key against plain
// lto-vcg.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "auction/registry.h"
#include "core/async_settler.h"
#include "core/long_term_online_vcg.h"
#include "core/market_simulation.h"
#include "core/orchestrator.h"
#include "fl/logistic_regression.h"
#include "sim/scenario.h"

namespace sfl::core {
namespace {

using sfl::auction::MechanismConfig;
using sfl::auction::MechanismRegistry;

MechanismConfig market_mechanism_config(std::size_t num_clients) {
  MechanismConfig config;
  config.num_clients = num_clients;
  config.per_round_budget = 5.0;
  config.seed = 33;
  config.lto.v_weight = 8.0;
  config.lto.pacing_rate = 0.4;
  return config;
}

MarketSpec market_spec(bool async_settle) {
  MarketSpec spec;
  spec.num_clients = 24;
  spec.rounds = 200;
  spec.max_winners = 6;
  spec.per_round_budget = 5.0;
  spec.seed = 4242;
  spec.async_settle = async_settle;
  return spec;
}

/// Every registry key, resolved at test-enumeration time — a newly
/// registered mechanism joins this suite automatically.
std::vector<std::string> all_registry_keys() {
  return MechanismRegistry::global().names();
}

class AsyncDeterminismSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(AsyncDeterminismSweep, Market200RoundsBitIdenticalLedgers) {
  const std::string& key = GetParam();
  const MechanismConfig config = market_mechanism_config(24);

  const auto sync_mechanism = sfl::auction::build_mechanism(key, config);
  const auto async_mechanism = sfl::auction::build_mechanism(key, config);

  const MarketResult sync_result =
      run_market(*sync_mechanism, market_spec(/*async_settle=*/false));
  const MarketResult async_result =
      run_market(*async_mechanism, market_spec(/*async_settle=*/true));

  // Bit-identical trajectories: exact ==, no tolerance anywhere.
  EXPECT_EQ(sync_result.welfare_series, async_result.welfare_series) << key;
  EXPECT_EQ(sync_result.payment_series, async_result.payment_series) << key;
  EXPECT_EQ(sync_result.cumulative_payment_series,
            async_result.cumulative_payment_series)
      << key;
  EXPECT_EQ(sync_result.client_utilities, async_result.client_utilities)
      << key;
  EXPECT_EQ(sync_result.participation_counts,
            async_result.participation_counts)
      << key;
  EXPECT_EQ(sync_result.ir_fraction, async_result.ir_fraction) << key;
  // Queue state after the final flush: the async pipeline's settled queues
  // must land exactly where synchronous settlement left them.
  EXPECT_EQ(sync_result.final_budget_backlog,
            async_result.final_budget_backlog)
      << key;
  EXPECT_EQ(sync_result.average_budget_backlog,
            async_result.average_budget_backlog)
      << key;
}

INSTANTIATE_TEST_SUITE_P(AllRegistryKeys, AsyncDeterminismSweep,
                         ::testing::ValuesIn(all_registry_keys()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(AsyncSettlementPipelineTest, AsyncRegistryKeyMatchesPlainLtoVcg) {
  // lto-vcg-async is lto-vcg behind the pipeline: same market, same seed,
  // same trajectory — the decorator must be observationally invisible.
  const MechanismConfig config = market_mechanism_config(24);
  const auto plain = sfl::auction::build_mechanism("lto-vcg", config);
  const auto async = sfl::auction::build_mechanism("lto-vcg-async", config);

  const MarketResult a = run_market(*plain, market_spec(false));
  const MarketResult b = run_market(*async, market_spec(false));
  EXPECT_EQ(a.welfare_series, b.welfare_series);
  EXPECT_EQ(a.payment_series, b.payment_series);
  EXPECT_EQ(a.client_utilities, b.client_utilities);
  EXPECT_EQ(a.final_budget_backlog, b.final_budget_backlog);
  EXPECT_EQ(b.mechanism_name, "lto-vcg-async");
}

TEST(AsyncSettlementPipelineTest, LtoQueueStateVisibleThroughDecorator) {
  // underlying() must expose the wrapped rule so queue diagnostics keep
  // working on the async build.
  const MechanismConfig config = market_mechanism_config(24);
  auto mechanism = sfl::auction::build_mechanism("lto-vcg-async", config);
  auto* lto =
      dynamic_cast<LongTermOnlineVcgMechanism*>(mechanism->underlying());
  ASSERT_NE(lto, nullptr);
  const MarketResult result = run_market(*mechanism, market_spec(false));
  EXPECT_EQ(result.final_budget_backlog, lto->budget_backlog());
}

TEST(AsyncSettlementPipelineTest, OrchestratorFlTrajectoryBitIdentical) {
  // The full system loop: local SGD + aggregation runs between settle()
  // and the flush barrier, which is exactly the window async settlement
  // overlaps. Records (including per-round Q(t) backlogs read AFTER the
  // barrier) must match the synchronous run bit for bit.
  sim::ScenarioSpec sspec;
  sspec.num_clients = 10;
  sspec.train_examples = 300;
  sspec.test_examples = 80;
  sspec.num_classes = 3;
  sspec.feature_dim = 6;
  sspec.seed = 11;
  const sim::Scenario scenario = sim::build_scenario(sspec);

  const auto run_once = [&](bool async_settle) {
    OrchestratorConfig config;
    config.rounds = 30;
    config.max_winners = 4;
    config.per_round_budget = 4.0;
    config.eval_every = 10;
    config.dropout_probability = 0.2;  // exercise dropped-winner settlements
    config.async_settle = async_settle;
    config.seed = 5;

    MechanismConfig mconfig = market_mechanism_config(sspec.num_clients);
    fl::LocalTrainingSpec training;
    training.local_steps = 2;
    training.batch_size = 16;
    SustainableFlOrchestrator orchestrator(
        scenario,
        std::make_unique<fl::LogisticRegression>(sspec.feature_dim,
                                                 sspec.num_classes, 1e-4),
        training, sfl::auction::build_mechanism("lto-vcg", mconfig),
        config);
    return orchestrator.run();
  };

  const RunResult sync_result = run_once(false);
  const RunResult async_result = run_once(true);

  ASSERT_EQ(sync_result.rounds.size(), async_result.rounds.size());
  for (std::size_t r = 0; r < sync_result.rounds.size(); ++r) {
    const RoundRecord& a = sync_result.rounds[r];
    const RoundRecord& b = async_result.rounds[r];
    EXPECT_EQ(a.payment, b.payment) << "round " << r;
    EXPECT_EQ(a.budget_backlog, b.budget_backlog) << "round " << r;
    EXPECT_EQ(a.welfare, b.welfare) << "round " << r;
    EXPECT_EQ(a.participants, b.participants) << "round " << r;
    EXPECT_EQ(a.dropped, b.dropped) << "round " << r;
    EXPECT_EQ(a.test_accuracy, b.test_accuracy) << "round " << r;
  }
  EXPECT_EQ(sync_result.final_accuracy, async_result.final_accuracy);
  EXPECT_EQ(sync_result.cumulative_payment, async_result.cumulative_payment);
  EXPECT_EQ(sync_result.client_utilities, async_result.client_utilities);
  EXPECT_EQ(sync_result.final_reputation, async_result.final_reputation);
}

}  // namespace
}  // namespace sfl::core
