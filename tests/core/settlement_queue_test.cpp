// SettlementQueue + AsyncSettler unit behavior: FIFO order, bounded
// backpressure, close semantics, storage recycling, the flush barrier, and
// commutative merging — the moving parts under the async settlement
// pipeline, exercised directly and under producer/consumer concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "core/async_settler.h"
#include "core/settlement_queue.h"
#include "util/thread_pool.h"

namespace sfl::core {
namespace {

using sfl::auction::Mechanism;
using sfl::auction::MechanismResult;
using sfl::auction::RoundContext;
using sfl::auction::RoundSettlement;
using sfl::auction::SettlementOrdering;
using sfl::auction::WinnerSettlement;

RoundSettlement make_settlement(std::size_t round, double payment) {
  RoundSettlement s;
  s.round = round;
  s.total_payment = payment;
  s.winners.push_back(WinnerSettlement{.client = round % 7,
                                       .bid = payment / 2.0,
                                       .payment = payment,
                                       .energy_cost = 1.0,
                                       .dropped = false});
  return s;
}

/// Records every settle() call; ordering is configurable so one recorder
/// serves both the strict and the commutative pipeline tests.
class RecordingMechanism final : public Mechanism {
 public:
  explicit RecordingMechanism(SettlementOrdering ordering)
      : ordering_(ordering) {}

  [[nodiscard]] std::string name() const override { return "recorder"; }
  [[nodiscard]] MechanismResult run_round(
      const std::vector<sfl::auction::Candidate>&,
      const RoundContext&) override {
    return {};
  }
  void settle(const RoundSettlement& settlement) override {
    settle_calls_.push_back(settlement);
  }
  [[nodiscard]] SettlementOrdering settlement_ordering()
      const noexcept override {
    return ordering_;
  }
  [[nodiscard]] bool is_truthful() const noexcept override { return true; }

  /// Safe to read only after AsyncSettler::flush() (single applier).
  [[nodiscard]] const std::vector<RoundSettlement>& settle_calls() const {
    return settle_calls_;
  }

 private:
  SettlementOrdering ordering_;
  std::vector<RoundSettlement> settle_calls_;
};

TEST(SettlementQueueTest, FifoOrderAndSwapRecycling) {
  SettlementQueue queue(4);
  RoundSettlement slot;
  for (std::size_t round = 0; round < 4; ++round) {
    slot = make_settlement(round, 1.0 + static_cast<double>(round));
    queue.push(slot);
  }
  EXPECT_EQ(queue.size(), 4u);
  EXPECT_EQ(queue.max_depth(), 4u);

  RoundSettlement out;
  for (std::size_t round = 0; round < 4; ++round) {
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.round, round);
    EXPECT_DOUBLE_EQ(out.total_payment, 1.0 + static_cast<double>(round));
    ASSERT_EQ(out.winners.size(), 1u);
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.try_pop(out));
}

TEST(SettlementQueueTest, TryPushReportsFullWithoutSideEffects) {
  SettlementQueue queue(2);
  RoundSettlement a = make_settlement(0, 1.0);
  RoundSettlement b = make_settlement(1, 2.0);
  ASSERT_TRUE(queue.try_push(a));
  ASSERT_TRUE(queue.try_push(b));

  RoundSettlement overflow = make_settlement(2, 3.0);
  EXPECT_FALSE(queue.try_push(overflow));
  // The rejected settlement is untouched and usable.
  EXPECT_EQ(overflow.round, 2u);
  EXPECT_DOUBLE_EQ(overflow.total_payment, 3.0);

  RoundSettlement out;
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out.round, 0u);
  ASSERT_TRUE(queue.try_push(overflow));
  EXPECT_EQ(queue.size(), 2u);
}

TEST(SettlementQueueTest, CloseDrainsThenReportsEmpty) {
  SettlementQueue queue(4);
  RoundSettlement s = make_settlement(7, 1.5);
  queue.push(s);
  queue.close();

  RoundSettlement out;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out.round, 7u);
  EXPECT_FALSE(queue.pop(out));  // closed + drained: no block, just false

  RoundSettlement rejected = make_settlement(8, 1.0);
  EXPECT_THROW(queue.push(rejected), std::logic_error);
  EXPECT_THROW((void)queue.try_push(rejected), std::logic_error);
}

TEST(SettlementQueueTest, BlockingHandoffAcrossThreads) {
  // Capacity 1 forces a full producer/consumer rendezvous per item: the
  // producer blocks on a full ring, the consumer on an empty one.
  SettlementQueue queue(1);
  constexpr std::size_t kItems = 500;

  std::thread producer([&queue] {
    RoundSettlement slot;
    for (std::size_t round = 0; round < kItems; ++round) {
      slot = make_settlement(round, 1.0);
      queue.push(slot);
    }
    queue.close();
  });

  std::size_t received = 0;
  RoundSettlement out;
  while (queue.pop(out)) {
    // FIFO across the blocking boundary: rounds arrive in push order.
    ASSERT_EQ(out.round, received);
    ++received;
  }
  producer.join();
  EXPECT_EQ(received, kItems);
}

TEST(AsyncSettlerTest, FlushAppliesEverythingInRoundOrder) {
  RecordingMechanism recorder(SettlementOrdering::kRoundOrder);
  sfl::util::ThreadPool pool(2);
  AsyncSettler settler(recorder,
                       AsyncSettlerConfig{.queue_capacity = 8, .pool = &pool});

  constexpr std::size_t kRounds = 200;
  RoundSettlement slot;
  for (std::size_t round = 0; round < kRounds; ++round) {
    slot = make_settlement(round, 0.5);
    settler.enqueue(slot);
  }
  settler.flush();

  ASSERT_EQ(recorder.settle_calls().size(), kRounds);
  for (std::size_t round = 0; round < kRounds; ++round) {
    EXPECT_EQ(recorder.settle_calls()[round].round, round);
  }
  EXPECT_EQ(settler.settled_rounds(), kRounds);
  EXPECT_EQ(settler.merged_batches(), 0u);  // strict ordering never merges
}

TEST(AsyncSettlerTest, BoundedQueueBackpressureNeverLosesSettlements) {
  // Capacity 2 with a 1-thread pool: the producer outruns the drain and
  // must fall back to inline draining — nothing may be lost or reordered.
  RecordingMechanism recorder(SettlementOrdering::kRoundOrder);
  sfl::util::ThreadPool pool(1);
  AsyncSettler settler(recorder,
                       AsyncSettlerConfig{.queue_capacity = 2, .pool = &pool});

  constexpr std::size_t kRounds = 500;
  RoundSettlement slot;
  for (std::size_t round = 0; round < kRounds; ++round) {
    slot = make_settlement(round, 1.0);
    settler.enqueue(slot);
  }
  settler.flush();

  ASSERT_EQ(recorder.settle_calls().size(), kRounds);
  for (std::size_t round = 0; round < kRounds; ++round) {
    EXPECT_EQ(recorder.settle_calls()[round].round, round);
  }
}

TEST(AsyncSettlerTest, CommutativeMechanismsGetMergedBatches) {
  RecordingMechanism recorder(SettlementOrdering::kCommutative);
  sfl::util::ThreadPool pool(1);
  // Pool kept busy so the queue builds up and the flush merges.
  std::atomic<bool> release{false};
  pool.submit([&release] {
    while (!release.load()) std::this_thread::yield();
  });

  AsyncSettler settler(recorder,
                       AsyncSettlerConfig{.queue_capacity = 16, .pool = &pool});
  RoundSettlement slot;
  for (std::size_t round = 0; round < 10; ++round) {
    slot = make_settlement(round, 2.0);
    settler.enqueue(slot);
  }
  settler.flush();
  release.store(true);
  pool.wait_idle();

  // All ten rounds applied, folded into fewer settle() calls; the merged
  // settlement preserves the totals and every winner row.
  EXPECT_EQ(settler.settled_rounds(), 10u);
  ASSERT_GE(recorder.settle_calls().size(), 1u);
  double total_payment = 0.0;
  std::size_t total_winners = 0;
  for (const RoundSettlement& s : recorder.settle_calls()) {
    total_payment += s.total_payment;
    total_winners += s.winners.size();
  }
  EXPECT_DOUBLE_EQ(total_payment, 20.0);
  EXPECT_EQ(total_winners, 10u);
  EXPECT_LT(recorder.settle_calls().size(), 10u);
  EXPECT_GE(settler.merged_batches(), 1u);
}

TEST(AsyncSettlerTest, DestructorFlushesOutstandingSettlements) {
  RecordingMechanism recorder(SettlementOrdering::kRoundOrder);
  {
    AsyncSettler settler(recorder, AsyncSettlerConfig{.queue_capacity = 32});
    RoundSettlement slot;
    for (std::size_t round = 0; round < 20; ++round) {
      slot = make_settlement(round, 1.0);
      settler.enqueue(slot);
    }
    // No explicit flush: the destructor is the last barrier.
  }
  EXPECT_EQ(recorder.settle_calls().size(), 20u);
}

TEST(AsyncSettlementMechanismTest, RunRoundIsTheFlushBarrier) {
  auto owned = std::make_unique<RecordingMechanism>(
      SettlementOrdering::kRoundOrder);
  RecordingMechanism* recorder = owned.get();
  AsyncSettlementMechanism async(std::move(owned));

  RoundSettlement s = make_settlement(0, 1.0);
  async.settle(s);
  s = make_settlement(1, 2.0);
  async.settle(s);

  // run_round must observe fully-settled state: both rounds applied, in
  // order, before the inner round executes.
  RoundContext ctx;
  (void)async.run_round(std::vector<sfl::auction::Candidate>{}, ctx);
  ASSERT_EQ(recorder->settle_calls().size(), 2u);
  EXPECT_EQ(recorder->settle_calls()[0].round, 0u);
  EXPECT_EQ(recorder->settle_calls()[1].round, 1u);

  EXPECT_EQ(async.name(), "recorder");
  EXPECT_EQ(async.settlement_ordering(), SettlementOrdering::kRoundOrder);
  EXPECT_EQ(async.underlying(), recorder);
  EXPECT_TRUE(async.is_truthful());
}

TEST(AsyncSettlementMechanismTest, StackedDecoratorsFlushEndToEnd) {
  // Double-wrapping happens when a registry-built async mechanism is
  // handed to a caller that wraps again; the outer flush must forward so
  // the barrier holds through every layer.
  auto owned = std::make_unique<RecordingMechanism>(
      SettlementOrdering::kRoundOrder);
  RecordingMechanism* recorder = owned.get();
  AsyncSettlementMechanism stacked(
      std::make_unique<AsyncSettlementMechanism>(std::move(owned)));

  RoundSettlement s = make_settlement(0, 1.0);
  stacked.settle(s);
  s = make_settlement(1, 2.0);
  stacked.settle(s);
  stacked.flush();

  ASSERT_EQ(recorder->settle_calls().size(), 2u);
  EXPECT_EQ(recorder->settle_calls()[0].round, 0u);
  EXPECT_EQ(recorder->settle_calls()[1].round, 1u);
  EXPECT_EQ(stacked.underlying(), recorder);
}

TEST(AsyncSettlerTest, ThrowingSettleSurfacesAtFlushNotInPoolTask) {
  // A settle() that throws must stay a catchable error (as on the sync
  // path) instead of escaping a pool task and terminating the process;
  // the barrier rethrows it once, then the pipeline keeps working.
  class ThrowOnceMechanism final : public sfl::auction::Mechanism {
   public:
    [[nodiscard]] std::string name() const override { return "throw-once"; }
    [[nodiscard]] MechanismResult run_round(
        const std::vector<sfl::auction::Candidate>&,
        const RoundContext&) override {
      return {};
    }
    void settle(const RoundSettlement& settlement) override {
      if (settlement.round == 1) throw std::invalid_argument("bad winner");
      ++applied_;
    }
    [[nodiscard]] bool is_truthful() const noexcept override { return true; }
    std::size_t applied_ = 0;
  };

  ThrowOnceMechanism mechanism;
  sfl::util::ThreadPool pool(1);
  AsyncSettler settler(mechanism,
                       AsyncSettlerConfig{.queue_capacity = 8, .pool = &pool});
  RoundSettlement slot;
  for (std::size_t round = 0; round < 3; ++round) {
    slot = make_settlement(round, 1.0);
    settler.enqueue(slot);
  }
  // While the error awaits the barrier, draining is suspended — enqueue
  // must not spin on a full ring (livelock) but drop the (doomed-anyway)
  // settlements until the error is surfaced.
  for (std::size_t round = 10; round < 30; ++round) {
    slot = make_settlement(round, 1.0);
    settler.enqueue(slot);
  }
  EXPECT_THROW(settler.flush(), std::invalid_argument);
  // The error is surfaced exactly once; the failing round AND everything
  // queued behind it are discarded (the sync loop would have stopped
  // there), and the settler accepts new settlements normally.
  slot = make_settlement(3, 1.0);
  settler.enqueue(slot);
  settler.flush();
  EXPECT_EQ(mechanism.applied_, 2u);  // round 0 before the throw, round 3 after
}

}  // namespace
}  // namespace sfl::core
