#include "core/market_simulation.h"

#include <gtest/gtest.h>

#include "auction/baselines.h"
#include "core/long_term_online_vcg.h"

namespace sfl::core {
namespace {

MarketSpec small_market() {
  MarketSpec spec;
  spec.num_clients = 30;
  spec.rounds = 300;
  spec.max_winners = 5;
  spec.per_round_budget = 3.0;
  spec.seed = 11;
  return spec;
}

LtoVcgConfig lto_config(const MarketSpec& spec) {
  LtoVcgConfig config;
  config.v_weight = 10.0;
  config.per_round_budget = spec.per_round_budget;
  return config;
}

TEST(MarketSimulationTest, ProducesConsistentSeries) {
  const MarketSpec spec = small_market();
  LongTermOnlineVcgMechanism mech(lto_config(spec));
  const MarketResult result = run_market(mech, spec);
  EXPECT_EQ(result.rounds, 300u);
  EXPECT_EQ(result.welfare_series.size(), 300u);
  EXPECT_EQ(result.payment_series.size(), 300u);
  EXPECT_EQ(result.client_utilities.size(), 30u);
  EXPECT_EQ(result.mechanism_name, "lto-vcg");

  double welfare_sum = 0.0;
  for (const double w : result.welfare_series) welfare_sum += w;
  EXPECT_NEAR(welfare_sum, result.cumulative_welfare, 1e-6);

  double payment_sum = 0.0;
  for (const double p : result.payment_series) payment_sum += p;
  EXPECT_NEAR(payment_sum, result.cumulative_payment, 1e-6);
  EXPECT_NEAR(result.cumulative_payment_series.back(), payment_sum, 1e-6);
}

TEST(MarketSimulationTest, SameSeedIsExactlyReproducible) {
  const MarketSpec spec = small_market();
  LongTermOnlineVcgMechanism a(lto_config(spec));
  LongTermOnlineVcgMechanism b(lto_config(spec));
  const MarketResult ra = run_market(a, spec);
  const MarketResult rb = run_market(b, spec);
  EXPECT_EQ(ra.welfare_series, rb.welfare_series);
  EXPECT_EQ(ra.payment_series, rb.payment_series);
  EXPECT_EQ(ra.client_utilities, rb.client_utilities);
}

TEST(MarketSimulationTest, LtoVcgIsIrAndBudgetStable) {
  MarketSpec spec = small_market();
  spec.rounds = 2000;
  LongTermOnlineVcgMechanism mech(lto_config(spec));
  const MarketResult result = run_market(mech, spec);
  EXPECT_DOUBLE_EQ(result.ir_fraction, 1.0);
  // Long-term budget: the time-average payment approaches B-bar from above
  // only within the O(V)/t transient.
  EXPECT_LE(result.average_payment, spec.per_round_budget * 1.1);
  EXPECT_GT(result.average_payment, 0.0);
}

TEST(MarketSimulationTest, MyopicVcgOverspendsTheSameMarket) {
  MarketSpec spec = small_market();
  spec.rounds = 1000;
  sfl::auction::MyopicVcgMechanism myopic;
  const MarketResult myopic_result = run_market(myopic, spec);
  LongTermOnlineVcgMechanism lto(lto_config(spec));
  const MarketResult lto_result = run_market(lto, spec);
  // The myopic mechanism ignores the budget and spends far more.
  EXPECT_GT(myopic_result.average_payment, spec.per_round_budget * 1.5);
  EXPECT_GT(myopic_result.cumulative_budget_violation,
            lto_result.cumulative_budget_violation * 5.0);
}

TEST(MarketSimulationTest, FirstBestOracleDominatesWelfare) {
  MarketSpec spec = small_market();
  spec.rounds = 500;
  sfl::auction::FirstBestOracleMechanism oracle;
  const MarketResult oracle_result = run_market(oracle, spec);
  LongTermOnlineVcgMechanism lto(lto_config(spec));
  const MarketResult lto_result = run_market(lto, spec);
  sfl::auction::RandomSelectionMechanism random(1.0, 3);
  const MarketResult random_result = run_market(random, spec);
  // Per-round welfare-optimal selection upper-bounds everyone.
  EXPECT_GE(oracle_result.cumulative_welfare, lto_result.cumulative_welfare - 1e-6);
  EXPECT_GT(lto_result.cumulative_welfare, random_result.cumulative_welfare);
}

TEST(MarketSimulationTest, StrategyTableIsRespected) {
  MarketSpec spec = small_market();
  spec.rounds = 50;
  StrategyTable strategies(spec.num_clients);
  for (auto& s : strategies) s = std::make_shared<econ::TruthfulStrategy>();
  strategies[0] = std::make_shared<econ::ScaledMisreportStrategy>(100.0);
  LongTermOnlineVcgMechanism mech(lto_config(spec));
  const MarketResult result = run_market(mech, spec, strategies);
  // Bidding 100x cost prices client 0 out of every auction.
  EXPECT_DOUBLE_EQ(result.participation_counts[0], 0.0);
  EXPECT_THROW((void)run_market(mech, spec, StrategyTable(3)),
               std::invalid_argument);
}

TEST(MarketSimulationTest, DeviationUtilityPeaksAtTruth) {
  MarketSpec spec = small_market();
  spec.rounds = 400;
  const auto utility_at = [&](double factor) {
    LongTermOnlineVcgMechanism mech(lto_config(spec));
    return deviation_utility(mech, spec, 4, factor);
  };
  const double truthful = utility_at(1.0);
  for (const double factor : {0.5, 0.8, 1.3, 2.0}) {
    EXPECT_LE(utility_at(factor), truthful + 1e-6) << "factor " << factor;
  }
}

TEST(MarketSimulationTest, PayAsBidRewardsOverbiddingSomewhere) {
  // The non-truthful baseline: some client has a moderate overbid factor
  // that beats truth-telling (paired seeds make this deterministic).
  MarketSpec spec = small_market();
  spec.rounds = 400;
  const auto utility_at = [&](std::size_t client, double factor) {
    sfl::auction::PayAsBidGreedyMechanism mech;
    return deviation_utility(mech, spec, client, factor);
  };
  bool profitable_deviation_found = false;
  for (std::size_t client = 0; client < 8 && !profitable_deviation_found;
       ++client) {
    const double truthful = utility_at(client, 1.0);
    for (const double factor : {1.05, 1.1, 1.2, 1.4}) {
      if (utility_at(client, factor) > truthful + 1e-9) {
        profitable_deviation_found = true;
        break;
      }
    }
  }
  EXPECT_TRUE(profitable_deviation_found);
}

TEST(MarketSimulationTest, Validation) {
  MarketSpec spec = small_market();
  spec.num_clients = 0;
  sfl::auction::MyopicVcgMechanism mech;
  EXPECT_THROW((void)run_market(mech, spec), std::invalid_argument);
  spec = small_market();
  spec.rounds = 0;
  EXPECT_THROW((void)run_market(mech, spec), std::invalid_argument);
  spec = small_market();
  EXPECT_THROW((void)deviation_utility(mech, spec, 99, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace sfl::core
