// Failure injection: auction winners that fail to deliver.
#include <gtest/gtest.h>

#include <memory>

#include "core/long_term_online_vcg.h"
#include "core/orchestrator.h"
#include "fl/logistic_regression.h"

namespace sfl::core {
namespace {

sim::ScenarioSpec scenario_spec() {
  sim::ScenarioSpec spec;
  spec.num_clients = 10;
  spec.train_examples = 400;
  spec.test_examples = 120;
  spec.num_classes = 3;
  spec.feature_dim = 5;
  spec.class_separation = 2.5;
  spec.seed = 31;
  return spec;
}

OrchestratorConfig orch_config(double dropout) {
  OrchestratorConfig config;
  config.rounds = 40;
  config.max_winners = 4;
  config.per_round_budget = 3.0;
  config.seed = 5;
  config.dropout_probability = dropout;
  return config;
}

RunResult run_with_dropout(const sim::Scenario& scenario,
                           const sim::ScenarioSpec& sspec, double dropout) {
  const OrchestratorConfig config = orch_config(dropout);
  LtoVcgConfig mech_config;
  mech_config.v_weight = 8.0;
  mech_config.per_round_budget = config.per_round_budget;
  fl::LocalTrainingSpec training;
  training.local_steps = 5;
  training.batch_size = 16;
  training.optimizer.learning_rate = 0.1;
  SustainableFlOrchestrator orchestrator(
      scenario,
      std::make_unique<fl::LogisticRegression>(sspec.feature_dim,
                                               sspec.num_classes, 1e-4),
      training, std::make_unique<LongTermOnlineVcgMechanism>(mech_config),
      config);
  return orchestrator.run();
}

TEST(DropoutTest, FullDropoutMeansNoTradesAndNoLearning) {
  const auto sspec = scenario_spec();
  const sim::Scenario scenario = sim::build_scenario(sspec);
  const RunResult result = run_with_dropout(scenario, sspec, 1.0);
  EXPECT_DOUBLE_EQ(result.cumulative_payment, 0.0);
  EXPECT_DOUBLE_EQ(result.cumulative_welfare, 0.0);
  for (const auto& record : result.rounds) {
    EXPECT_EQ(record.participants, 0u);
    EXPECT_GT(record.dropped, 0u);  // someone was selected, then lost
  }
  // 3-class task: untouched model stays near chance.
  EXPECT_LT(result.final_accuracy, 0.55);
}

TEST(DropoutTest, PartialDropoutReducesDeliveryAndSpend) {
  const auto sspec = scenario_spec();
  const sim::Scenario scenario = sim::build_scenario(sspec);
  const RunResult reliable = run_with_dropout(scenario, sspec, 0.0);
  const RunResult flaky = run_with_dropout(scenario, sspec, 0.5);

  double reliable_participants = 0.0;
  double flaky_participants = 0.0;
  std::size_t flaky_drops = 0;
  for (std::size_t t = 0; t < reliable.rounds.size(); ++t) {
    reliable_participants += static_cast<double>(reliable.rounds[t].participants);
    flaky_participants += static_cast<double>(flaky.rounds[t].participants);
    flaky_drops += flaky.rounds[t].dropped;
    EXPECT_EQ(reliable.rounds[t].dropped, 0u);
  }
  EXPECT_GT(flaky_drops, 0u);
  EXPECT_LT(flaky_participants, reliable_participants * 0.75);
  EXPECT_LT(flaky.cumulative_payment, reliable.cumulative_payment);
}

TEST(DropoutTest, TrainingSurvivesModerateDropout) {
  const auto sspec = scenario_spec();
  const sim::Scenario scenario = sim::build_scenario(sspec);
  const RunResult result = run_with_dropout(scenario, sspec, 0.3);
  EXPECT_GT(result.final_accuracy, 0.6);
  EXPECT_DOUBLE_EQ(result.ir_fraction, 1.0);  // delivered winners still IR
}

TEST(DropoutTest, Validation) {
  const auto sspec = scenario_spec();
  const sim::Scenario scenario = sim::build_scenario(sspec);
  OrchestratorConfig config = orch_config(1.5);
  LtoVcgConfig mech_config;
  mech_config.per_round_budget = config.per_round_budget;
  fl::LocalTrainingSpec training;
  EXPECT_THROW(
      SustainableFlOrchestrator(
          scenario,
          std::make_unique<fl::LogisticRegression>(sspec.feature_dim,
                                                   sspec.num_classes, 1e-4),
          training, std::make_unique<LongTermOnlineVcgMechanism>(mech_config),
          config),
      std::invalid_argument);
}

}  // namespace
}  // namespace sfl::core
