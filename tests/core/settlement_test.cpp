// The unified settlement protocol: settle(RoundSettlement) must reproduce
// the legacy observe(RoundObservation) queue dynamics bit-for-bit, carry
// the per-winner detail observe() lost, and keep dropout accounting exact.
#include <gtest/gtest.h>

#include "auction/adaptive_price.h"
#include "auction/random_instance.h"
#include "core/long_term_online_vcg.h"
#include "util/rng.h"

namespace sfl::core {
namespace {

using sfl::auction::Candidate;
using sfl::auction::MechanismResult;
using sfl::auction::RoundContext;
using sfl::auction::RoundObservation;
using sfl::auction::RoundSettlement;
using sfl::auction::WinnerSettlement;

LtoVcgConfig paced_config() {
  LtoVcgConfig config;
  config.v_weight = 6.0;
  config.per_round_budget = 2.5;
  config.energy_rates.assign(10, 0.3);
  return config;
}

RoundSettlement settlement_for(const std::vector<Candidate>& candidates,
                               const MechanismResult& result,
                               std::size_t round) {
  RoundSettlement settlement;
  settlement.round = round;
  settlement.total_payment = result.total_payment();
  for (std::size_t w = 0; w < result.winners.size(); ++w) {
    settlement.winners.push_back(
        WinnerSettlement{.client = result.winners[w],
                         .bid = candidates[result.winners[w]].bid,
                         .payment = result.payments[w],
                         .energy_cost = candidates[result.winners[w]].energy_cost,
                         .dropped = false});
  }
  return settlement;
}

TEST(SettlementTest, SettleMatchesLegacyObserveBitForBit) {
  // Two identical LTO mechanisms, one driven through settle(), one through
  // the deprecated observe() shim: queue backlogs (and hence all downstream
  // selection) must stay exactly equal for hundreds of rounds.
  for (const bool bid_proxy : {false, true}) {
    LtoVcgConfig config = paced_config();
    if (bid_proxy) config.queue_arrival = QueueArrivalMode::kBidProxy;
    config.budget_schedule = {4.0, 1.5, 2.0};
    LongTermOnlineVcgMechanism via_settle(config);
    LongTermOnlineVcgMechanism via_observe(config);

    sfl::util::Rng rng(314);
    for (std::size_t round = 0; round < 400; ++round) {
      sfl::auction::RandomInstanceSpec spec;
      spec.num_candidates = 10;
      const auto instance = make_random_instance(spec, rng);
      RoundContext ctx;
      ctx.round = round;
      ctx.max_winners = 3;

      const MechanismResult a = via_settle.run_round(instance.candidates, ctx);
      const MechanismResult b = via_observe.run_round(instance.candidates, ctx);
      ASSERT_EQ(a.winners, b.winners) << "round " << round;
      ASSERT_EQ(a.payments, b.payments) << "round " << round;

      via_settle.settle(settlement_for(instance.candidates, a, round));
      RoundObservation obs;
      obs.round = round;
      obs.total_payment = b.total_payment();
      obs.winners = b.winners;
      via_observe.observe(obs);

      ASSERT_EQ(via_settle.budget_backlog(), via_observe.budget_backlog())
          << "round " << round << " bid_proxy " << bid_proxy;
      for (std::size_t client = 0; client < 10; ++client) {
        ASSERT_EQ(via_settle.sustainability_backlog(client),
                  via_observe.sustainability_backlog(client))
            << "round " << round << " client " << client;
      }
    }
  }
}

TEST(SettlementTest, DroppedWinnersAreUnpaidButStillPaced) {
  // A dropped winner contributes no realized payment to Q but still charges
  // its Z queue: pacing bounds selection frequency, not delivery.
  LtoVcgConfig config = paced_config();
  LongTermOnlineVcgMechanism mech(config);

  RoundSettlement settlement;
  settlement.round = 0;
  settlement.winners = {
      WinnerSettlement{.client = 2, .bid = 1.0, .payment = 1.5,
                       .energy_cost = 1.0, .dropped = false},
      WinnerSettlement{.client = 5, .bid = 0.8, .payment = 0.0,
                       .energy_cost = 1.0, .dropped = true}};
  settlement.total_payment = 1.5;  // delivered winners only

  EXPECT_DOUBLE_EQ(settlement.total_bid(), 1.8);
  EXPECT_EQ(settlement.delivered_count(), 1u);

  mech.settle(settlement);
  // Q arrival 1.5 - service 2.5 -> clamped at 0.
  EXPECT_DOUBLE_EQ(mech.budget_backlog(), 0.0);
  // Both Z queues grew by e - r = 0.7, dropped or not.
  EXPECT_NEAR(mech.sustainability_backlog(2), 0.7, 1e-12);
  EXPECT_NEAR(mech.sustainability_backlog(5), 0.7, 1e-12);
  EXPECT_DOUBLE_EQ(mech.sustainability_backlog(0), 0.0);
}

TEST(SettlementTest, SettleIsIdempotentPerRound) {
  // The double-report hazard: a caller that reports a round through BOTH
  // settle() and the deprecated observe() shim (or retries a settlement)
  // must not push the same round into the queues twice. The twin mechanism
  // settles exactly once per round and the two must stay bit-identical.
  LtoVcgConfig config = paced_config();
  LongTermOnlineVcgMechanism once(config);
  LongTermOnlineVcgMechanism doubled(config);

  sfl::util::Rng rng(2718);
  for (std::size_t round = 0; round < 50; ++round) {
    sfl::auction::RandomInstanceSpec spec;
    spec.num_candidates = 10;
    const auto instance = make_random_instance(spec, rng);
    RoundContext ctx;
    ctx.round = round;
    ctx.max_winners = 3;

    const MechanismResult a = once.run_round(instance.candidates, ctx);
    const MechanismResult b = doubled.run_round(instance.candidates, ctx);
    ASSERT_EQ(a.winners, b.winners);

    const RoundSettlement settlement =
        settlement_for(instance.candidates, a, round);
    once.settle(settlement);
    // The double report: settle(), then the legacy observe() for the same
    // round, then a retried settle(). Only the first may apply.
    doubled.settle(settlement);
    RoundObservation obs;
    obs.round = round;
    obs.total_payment = b.total_payment();
    obs.winners = b.winners;
    doubled.observe(obs);
    doubled.settle(settlement);

    ASSERT_EQ(once.budget_backlog(), doubled.budget_backlog())
        << "round " << round;
    for (std::size_t client = 0; client < 10; ++client) {
      ASSERT_EQ(once.sustainability_backlog(client),
                doubled.sustainability_backlog(client))
          << "round " << round << " client " << client;
    }
  }
}

TEST(SettlementTest, UnstampedSettleOncePerRoundStillApplies) {
  // Legacy drivers never stamp RoundSettlement::round (it stays 0 every
  // round); one settlement per run_round must keep applying regardless —
  // the unstamped mechanism must track a properly-stamped twin exactly.
  LtoVcgConfig config = paced_config();
  LongTermOnlineVcgMechanism stamped(config);
  LongTermOnlineVcgMechanism unstamped(config);

  sfl::util::Rng rng(99);
  for (std::size_t round = 0; round < 60; ++round) {
    sfl::auction::RandomInstanceSpec spec;
    spec.num_candidates = 8;
    const auto instance = make_random_instance(spec, rng);
    RoundContext ctx;
    ctx.round = round;
    ctx.max_winners = 3;
    const MechanismResult a = stamped.run_round(instance.candidates, ctx);
    const MechanismResult b = unstamped.run_round(instance.candidates, ctx);
    ASSERT_EQ(a.winners, b.winners) << "round " << round;

    stamped.settle(settlement_for(instance.candidates, a, round));
    unstamped.settle(settlement_for(instance.candidates, b, 0));

    ASSERT_EQ(stamped.budget_backlog(), unstamped.budget_backlog())
        << "round " << round;
    for (std::size_t client = 0; client < 10; ++client) {
      ASSERT_EQ(stamped.sustainability_backlog(client),
                unstamped.sustainability_backlog(client))
          << "round " << round << " client " << client;
    }
  }
}

TEST(SettlementTest, MixedStampDoubleReportStillAppliesOnce) {
  // The nastiest double report: an UNSTAMPED settle() (round left 0)
  // followed by the legacy observe() carrying the real round number. The
  // round stamps disagree, so the stamp comparison alone cannot catch it;
  // the shim must refuse the report because settle() already consumed the
  // round's winner cache.
  LtoVcgConfig config = paced_config();
  LongTermOnlineVcgMechanism once(config);
  LongTermOnlineVcgMechanism doubled(config);

  sfl::util::Rng rng(515);
  for (std::size_t round = 0; round < 40; ++round) {
    sfl::auction::RandomInstanceSpec spec;
    spec.num_candidates = 8;
    const auto instance = make_random_instance(spec, rng);
    RoundContext ctx;
    ctx.round = round;
    ctx.max_winners = 3;

    const MechanismResult a = once.run_round(instance.candidates, ctx);
    const MechanismResult b = doubled.run_round(instance.candidates, ctx);
    ASSERT_EQ(a.winners, b.winners);

    once.settle(settlement_for(instance.candidates, a, round));
    doubled.settle(settlement_for(instance.candidates, b, 0));  // unstamped
    RoundObservation obs;
    obs.round = round;  // stamped duplicate of the same round
    obs.total_payment = b.total_payment();
    obs.winners = b.winners;
    doubled.observe(obs);

    ASSERT_EQ(once.budget_backlog(), doubled.budget_backlog())
        << "round " << round;
    for (std::size_t client = 0; client < 10; ++client) {
      ASSERT_EQ(once.sustainability_backlog(client),
                doubled.sustainability_backlog(client))
          << "round " << round << " client " << client;
    }
  }
}

TEST(SettlementTest, AdaptivePriceDoubleReportStepsPriceOnce) {
  // settle() forwards to observe() in the posted-price rule; reporting a
  // round through both must move the price exactly once.
  sfl::auction::AdaptivePriceConfig config;
  sfl::auction::AdaptivePostedPriceMechanism once(config);
  sfl::auction::AdaptivePostedPriceMechanism doubled(config);

  std::vector<Candidate> candidates{
      Candidate{.id = 0, .value = 3.0, .bid = 0.6, .energy_cost = 1.0}};
  RoundContext ctx;
  ctx.max_winners = 1;
  ctx.per_round_budget = 1.0;

  for (std::size_t round = 0; round < 30; ++round) {
    ctx.round = round;
    const MechanismResult a = once.run_round(candidates, ctx);
    (void)doubled.run_round(candidates, ctx);

    once.settle(settlement_for(candidates, a, round));
    doubled.settle(settlement_for(candidates, a, 0));  // unstamped report
    RoundObservation obs;
    obs.round = round;  // mixed stamp: must still be caught as a duplicate
    obs.total_payment = a.total_payment();
    obs.winners = a.winners;
    doubled.observe(obs);

    ASSERT_EQ(once.current_price(), doubled.current_price())
        << "round " << round;
  }
}

TEST(SettlementTest, SettlementOutsideEnergyTableThrows) {
  LtoVcgConfig config = paced_config();  // clients 0..9
  LongTermOnlineVcgMechanism mech(config);
  RoundSettlement settlement;
  settlement.winners = {WinnerSettlement{.client = 10, .bid = 1.0,
                                         .payment = 1.0, .energy_cost = 1.0,
                                         .dropped = false}};
  settlement.total_payment = 1.0;
  EXPECT_THROW(mech.settle(settlement), std::invalid_argument);
}

TEST(SettlementTest, DefaultSettleRoutesToObserveForLegacyMechanisms) {
  // AdaptivePostedPriceMechanism only implements observe(); the base-class
  // settle() must forward the folded observation, so price dynamics match a
  // hand-driven observe() exactly.
  sfl::auction::AdaptivePriceConfig config;
  sfl::auction::AdaptivePostedPriceMechanism via_settle(config);
  sfl::auction::AdaptivePostedPriceMechanism via_observe(config);

  std::vector<Candidate> candidates{
      Candidate{.id = 0, .value = 3.0, .bid = 0.6, .energy_cost = 1.0},
      Candidate{.id = 1, .value = 2.0, .bid = 0.9, .energy_cost = 1.0}};
  RoundContext ctx;
  ctx.max_winners = 2;
  ctx.per_round_budget = 1.0;

  for (std::size_t round = 0; round < 50; ++round) {
    ctx.round = round;
    const MechanismResult a = via_settle.run_round(candidates, ctx);
    const MechanismResult b = via_observe.run_round(candidates, ctx);
    ASSERT_EQ(a.winners, b.winners);

    via_settle.settle(settlement_for(candidates, a, round));
    RoundObservation obs;
    obs.round = round;
    obs.total_payment = b.total_payment();
    obs.winners = b.winners;
    via_observe.observe(obs);
    ASSERT_EQ(via_settle.current_price(), via_observe.current_price())
        << "round " << round;
  }
}

}  // namespace
}  // namespace sfl::core
