// The unified settlement protocol: settle(RoundSettlement) must reproduce
// the legacy observe(RoundObservation) queue dynamics bit-for-bit, carry
// the per-winner detail observe() lost, and keep dropout accounting exact.
#include <gtest/gtest.h>

#include "auction/adaptive_price.h"
#include "auction/random_instance.h"
#include "core/long_term_online_vcg.h"
#include "util/rng.h"

namespace sfl::core {
namespace {

using sfl::auction::Candidate;
using sfl::auction::MechanismResult;
using sfl::auction::RoundContext;
using sfl::auction::RoundObservation;
using sfl::auction::RoundSettlement;
using sfl::auction::WinnerSettlement;

LtoVcgConfig paced_config() {
  LtoVcgConfig config;
  config.v_weight = 6.0;
  config.per_round_budget = 2.5;
  config.energy_rates.assign(10, 0.3);
  return config;
}

RoundSettlement settlement_for(const std::vector<Candidate>& candidates,
                               const MechanismResult& result,
                               std::size_t round) {
  RoundSettlement settlement;
  settlement.round = round;
  settlement.total_payment = result.total_payment();
  for (std::size_t w = 0; w < result.winners.size(); ++w) {
    settlement.winners.push_back(
        WinnerSettlement{.client = result.winners[w],
                         .bid = candidates[result.winners[w]].bid,
                         .payment = result.payments[w],
                         .energy_cost = candidates[result.winners[w]].energy_cost,
                         .dropped = false});
  }
  return settlement;
}

TEST(SettlementTest, SettleMatchesLegacyObserveBitForBit) {
  // Two identical LTO mechanisms, one driven through settle(), one through
  // the deprecated observe() shim: queue backlogs (and hence all downstream
  // selection) must stay exactly equal for hundreds of rounds.
  for (const bool bid_proxy : {false, true}) {
    LtoVcgConfig config = paced_config();
    if (bid_proxy) config.queue_arrival = QueueArrivalMode::kBidProxy;
    config.budget_schedule = {4.0, 1.5, 2.0};
    LongTermOnlineVcgMechanism via_settle(config);
    LongTermOnlineVcgMechanism via_observe(config);

    sfl::util::Rng rng(314);
    for (std::size_t round = 0; round < 400; ++round) {
      sfl::auction::RandomInstanceSpec spec;
      spec.num_candidates = 10;
      const auto instance = make_random_instance(spec, rng);
      RoundContext ctx;
      ctx.round = round;
      ctx.max_winners = 3;

      const MechanismResult a = via_settle.run_round(instance.candidates, ctx);
      const MechanismResult b = via_observe.run_round(instance.candidates, ctx);
      ASSERT_EQ(a.winners, b.winners) << "round " << round;
      ASSERT_EQ(a.payments, b.payments) << "round " << round;

      via_settle.settle(settlement_for(instance.candidates, a, round));
      RoundObservation obs;
      obs.round = round;
      obs.total_payment = b.total_payment();
      obs.winners = b.winners;
      via_observe.observe(obs);

      ASSERT_EQ(via_settle.budget_backlog(), via_observe.budget_backlog())
          << "round " << round << " bid_proxy " << bid_proxy;
      for (std::size_t client = 0; client < 10; ++client) {
        ASSERT_EQ(via_settle.sustainability_backlog(client),
                  via_observe.sustainability_backlog(client))
            << "round " << round << " client " << client;
      }
    }
  }
}

TEST(SettlementTest, DroppedWinnersAreUnpaidButStillPaced) {
  // A dropped winner contributes no realized payment to Q but still charges
  // its Z queue: pacing bounds selection frequency, not delivery.
  LtoVcgConfig config = paced_config();
  LongTermOnlineVcgMechanism mech(config);

  RoundSettlement settlement;
  settlement.round = 0;
  settlement.winners = {
      WinnerSettlement{.client = 2, .bid = 1.0, .payment = 1.5,
                       .energy_cost = 1.0, .dropped = false},
      WinnerSettlement{.client = 5, .bid = 0.8, .payment = 0.0,
                       .energy_cost = 1.0, .dropped = true}};
  settlement.total_payment = 1.5;  // delivered winners only

  EXPECT_DOUBLE_EQ(settlement.total_bid(), 1.8);
  EXPECT_EQ(settlement.delivered_count(), 1u);

  mech.settle(settlement);
  // Q arrival 1.5 - service 2.5 -> clamped at 0.
  EXPECT_DOUBLE_EQ(mech.budget_backlog(), 0.0);
  // Both Z queues grew by e - r = 0.7, dropped or not.
  EXPECT_NEAR(mech.sustainability_backlog(2), 0.7, 1e-12);
  EXPECT_NEAR(mech.sustainability_backlog(5), 0.7, 1e-12);
  EXPECT_DOUBLE_EQ(mech.sustainability_backlog(0), 0.0);
}

TEST(SettlementTest, SettlementOutsideEnergyTableThrows) {
  LtoVcgConfig config = paced_config();  // clients 0..9
  LongTermOnlineVcgMechanism mech(config);
  RoundSettlement settlement;
  settlement.winners = {WinnerSettlement{.client = 10, .bid = 1.0,
                                         .payment = 1.0, .energy_cost = 1.0,
                                         .dropped = false}};
  settlement.total_payment = 1.0;
  EXPECT_THROW(mech.settle(settlement), std::invalid_argument);
}

TEST(SettlementTest, DefaultSettleRoutesToObserveForLegacyMechanisms) {
  // AdaptivePostedPriceMechanism only implements observe(); the base-class
  // settle() must forward the folded observation, so price dynamics match a
  // hand-driven observe() exactly.
  sfl::auction::AdaptivePriceConfig config;
  sfl::auction::AdaptivePostedPriceMechanism via_settle(config);
  sfl::auction::AdaptivePostedPriceMechanism via_observe(config);

  std::vector<Candidate> candidates{
      Candidate{.id = 0, .value = 3.0, .bid = 0.6, .energy_cost = 1.0},
      Candidate{.id = 1, .value = 2.0, .bid = 0.9, .energy_cost = 1.0}};
  RoundContext ctx;
  ctx.max_winners = 2;
  ctx.per_round_budget = 1.0;

  for (std::size_t round = 0; round < 50; ++round) {
    ctx.round = round;
    const MechanismResult a = via_settle.run_round(candidates, ctx);
    const MechanismResult b = via_observe.run_round(candidates, ctx);
    ASSERT_EQ(a.winners, b.winners);

    via_settle.settle(settlement_for(candidates, a, round));
    RoundObservation obs;
    obs.round = round;
    obs.total_payment = b.total_payment();
    obs.winners = b.winners;
    via_observe.observe(obs);
    ASSERT_EQ(via_settle.current_price(), via_observe.current_price())
        << "round " << round;
  }
}

}  // namespace
}  // namespace sfl::core
