#include "core/orchestrator.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "auction/baselines.h"
#include "core/long_term_online_vcg.h"
#include "fl/logistic_regression.h"

namespace sfl::core {
namespace {

sim::ScenarioSpec small_scenario_spec() {
  sim::ScenarioSpec spec;
  spec.num_clients = 12;
  spec.train_examples = 600;
  spec.test_examples = 200;
  spec.num_classes = 4;
  spec.feature_dim = 8;
  spec.class_separation = 3.0;
  spec.seed = 21;
  return spec;
}

fl::LocalTrainingSpec training_spec() {
  fl::LocalTrainingSpec spec;
  spec.local_steps = 5;
  spec.batch_size = 16;
  spec.optimizer.learning_rate = 0.1;
  return spec;
}

OrchestratorConfig orchestrator_config(std::size_t rounds) {
  OrchestratorConfig config;
  config.rounds = rounds;
  config.max_winners = 4;
  config.per_round_budget = 4.0;
  config.valuation_scale = 2.0;
  config.eval_every = 10;
  config.seed = 33;
  return config;
}

std::unique_ptr<sfl::auction::Mechanism> make_lto(const OrchestratorConfig& cfg) {
  LtoVcgConfig config;
  config.v_weight = 10.0;
  config.per_round_budget = cfg.per_round_budget;
  return std::make_unique<LongTermOnlineVcgMechanism>(config);
}

std::unique_ptr<fl::Model> make_model(const sim::ScenarioSpec& spec) {
  return std::make_unique<fl::LogisticRegression>(spec.feature_dim,
                                                  spec.num_classes, 1e-4);
}

TEST(OrchestratorTest, EndToEndTrainingImprovesAccuracy) {
  const auto sspec = small_scenario_spec();
  const sim::Scenario scenario = sim::build_scenario(sspec);
  const OrchestratorConfig config = orchestrator_config(60);
  SustainableFlOrchestrator orchestrator(scenario, make_model(sspec),
                                         training_spec(), make_lto(config),
                                         config);
  const RunResult result = orchestrator.run();
  EXPECT_EQ(result.rounds.size(), 60u);
  EXPECT_GT(result.final_accuracy, 0.6);  // 4 classes, chance = 0.25
  EXPECT_EQ(result.mechanism_name, "lto-vcg");
  EXPECT_DOUBLE_EQ(result.ir_fraction, 1.0);
  EXPECT_GT(result.cumulative_payment, 0.0);
  // Round records are internally consistent.
  double welfare = 0.0;
  for (const auto& r : result.rounds) {
    welfare += r.welfare;
    EXPECT_LE(r.participants, config.max_winners);
    EXPECT_LE(r.participants, r.available);
  }
  EXPECT_NEAR(welfare, result.cumulative_welfare, 1e-9);
  EXPECT_TRUE(result.rounds.back().evaluated);
}

TEST(OrchestratorTest, DeterministicAcrossRuns) {
  const auto sspec = small_scenario_spec();
  const sim::Scenario scenario = sim::build_scenario(sspec);
  const OrchestratorConfig config = orchestrator_config(15);
  SustainableFlOrchestrator a(scenario, make_model(sspec), training_spec(),
                              make_lto(config), config);
  SustainableFlOrchestrator b(scenario, make_model(sspec), training_spec(),
                              make_lto(config), config);
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  EXPECT_EQ(ra.final_accuracy, rb.final_accuracy);
  EXPECT_EQ(ra.cumulative_payment, rb.cumulative_payment);
  EXPECT_EQ(ra.client_utilities, rb.client_utilities);
  ASSERT_EQ(ra.rounds.size(), rb.rounds.size());
  for (std::size_t t = 0; t < ra.rounds.size(); ++t) {
    EXPECT_EQ(ra.rounds[t].payment, rb.rounds[t].payment);
    EXPECT_EQ(ra.rounds[t].welfare, rb.rounds[t].welfare);
  }
}

TEST(OrchestratorTest, RunsWithAllBaselineMechanisms) {
  const auto sspec = small_scenario_spec();
  const sim::Scenario scenario = sim::build_scenario(sspec);
  const OrchestratorConfig config = orchestrator_config(10);
  const auto run_with = [&](std::unique_ptr<sfl::auction::Mechanism> mech) {
    SustainableFlOrchestrator orchestrator(scenario, make_model(sspec),
                                           training_spec(), std::move(mech),
                                           config);
    return orchestrator.run();
  };
  EXPECT_NO_THROW((void)run_with(std::make_unique<sfl::auction::MyopicVcgMechanism>()));
  EXPECT_NO_THROW(
      (void)run_with(std::make_unique<sfl::auction::PayAsBidGreedyMechanism>()));
  EXPECT_NO_THROW(
      (void)run_with(std::make_unique<sfl::auction::FixedPriceMechanism>(1.5)));
  EXPECT_NO_THROW(
      (void)run_with(std::make_unique<sfl::auction::RandomSelectionMechanism>(1.0, 5)));
  EXPECT_NO_THROW(
      (void)run_with(std::make_unique<sfl::auction::ProportionalShareMechanism>()));
}

TEST(OrchestratorTest, ReputationSeparatesNoisyClients) {
  auto sspec = small_scenario_spec();
  sspec.noisy_client_fraction = 0.25;  // last 3 of 12 clients are noisy
  sspec.noisy_flip_probability = 0.8;
  const sim::Scenario scenario = sim::build_scenario(sspec);
  OrchestratorConfig config = orchestrator_config(50);
  config.max_winners = 6;
  SustainableFlOrchestrator orchestrator(scenario, make_model(sspec),
                                         training_spec(), make_lto(config),
                                         config);
  const RunResult result = orchestrator.run();
  double clean_mean = 0.0;
  double noisy_mean = 0.0;
  for (std::size_t c = 0; c < 9; ++c) clean_mean += result.final_reputation[c];
  for (std::size_t c = 9; c < 12; ++c) noisy_mean += result.final_reputation[c];
  clean_mean /= 9.0;
  noisy_mean /= 3.0;
  EXPECT_GT(clean_mean, noisy_mean);
}

TEST(OrchestratorTest, EnergyDynamicsLimitAvailability) {
  const auto sspec = small_scenario_spec();
  const sim::Scenario scenario = sim::build_scenario(sspec);
  OrchestratorConfig config = orchestrator_config(40);
  config.enable_energy = true;
  config.energy.battery_capacity = 2.0;
  config.energy.initial_charge = 1.0;
  config.energy.harvest_amount = 1.0;
  config.energy.harvest_probabilities = std::vector<double>(12, 0.3);
  SustainableFlOrchestrator orchestrator(scenario, make_model(sspec),
                                         training_spec(), make_lto(config),
                                         config);
  const RunResult result = orchestrator.run();
  EXPECT_EQ(result.final_battery.size(), 12u);
  EXPECT_EQ(result.starvation_counts.size(), 12u);
  bool some_round_limited = false;
  for (const auto& r : result.rounds) {
    EXPECT_LE(r.available, 12u);
    if (r.available < 12u) some_round_limited = true;
  }
  EXPECT_TRUE(some_round_limited);  // p=0.3 harvests cannot keep everyone up
}

TEST(OrchestratorTest, CsvExportMatchesRecords) {
  const auto sspec = small_scenario_spec();
  const sim::Scenario scenario = sim::build_scenario(sspec);
  const OrchestratorConfig config = orchestrator_config(5);
  SustainableFlOrchestrator orchestrator(scenario, make_model(sspec),
                                         training_spec(), make_lto(config),
                                         config);
  const RunResult result = orchestrator.run();
  std::ostringstream out;
  sfl::util::CsvWriter csv(out, RunResult::csv_header());
  result.write_rounds_csv(csv);
  EXPECT_EQ(csv.rows_written(), 5u);
  // Header + 5 rows.
  std::size_t lines = 0;
  for (const char c : out.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 6u);
}

TEST(OrchestratorTest, Validation) {
  const auto sspec = small_scenario_spec();
  const sim::Scenario scenario = sim::build_scenario(sspec);
  OrchestratorConfig config = orchestrator_config(10);
  EXPECT_THROW(SustainableFlOrchestrator(scenario, make_model(sspec),
                                         training_spec(), nullptr, config),
               std::invalid_argument);
  config.rounds = 0;
  EXPECT_THROW(SustainableFlOrchestrator(scenario, make_model(sspec),
                                         training_spec(), make_lto(config),
                                         config),
               std::invalid_argument);
  config = orchestrator_config(10);
  EXPECT_THROW(SustainableFlOrchestrator(scenario, make_model(sspec),
                                         training_spec(), make_lto(config),
                                         config, StrategyTable(3)),
               std::invalid_argument);
}

}  // namespace
}  // namespace sfl::core
