// MarketBatch / run_rounds contract tests: per-market bit-identity with the
// single-market run_round path, sibling isolation for degenerate markets
// (empty slates, m >= n), exception-atomic validation, and owning-vs-view
// construction equivalence. These pin the exactness and isolation contract
// documented at the top of src/auction/market_batch.h.
#include "auction/market_batch.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "auction/candidate_batch.h"
#include "auction/payments.h"
#include "auction/round_scratch.h"
#include "auction/sharded_wdp.h"
#include "auction/types.h"
#include "auction/winner_determination.h"
#include "util/rng.h"

namespace sfl::auction {
namespace {

struct SeededMarket {
  CandidateBatch batch;
  Penalties penalties;
  ScoreWeights weights;
  std::size_t max_winners = 0;
};

SeededMarket make_market(sfl::util::Rng& rng, std::size_t rows,
                         std::size_t max_winners, bool with_penalties) {
  SeededMarket market;
  market.max_winners = max_winners;
  market.weights = ScoreWeights{.value_weight = rng.uniform(1.0, 20.0),
                                .bid_weight = rng.uniform(1.0, 20.0)};
  market.batch.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    market.batch.emplace(ClientId{rng.uniform_index(1'000'000)},
                         rng.uniform(0.0, 50.0), rng.uniform(0.0, 25.0),
                         rng.uniform(0.1, 4.0));
    if (with_penalties) market.penalties.push_back(rng.uniform(0.0, 10.0));
  }
  return market;
}

/// Appends every market to a fresh owning-mode MarketBatch.
MarketBatch pack(const std::vector<SeededMarket>& markets) {
  MarketBatch packed;
  for (const SeededMarket& m : markets) {
    packed.append_market(m.batch, m.max_winners, m.weights, m.penalties);
  }
  return packed;
}

/// Bit-compares market k of `result` against running that market alone
/// through engine.run_round (the per-market reference path).
void expect_slot_matches_run_round(const WdpEngine& engine,
                                   const SeededMarket& market,
                                   const MarketBatchResult& result,
                                   std::size_t k) {
  RoundScratch reference;
  engine.run_round(market.batch, market.weights, market.max_winners,
                   market.penalties, reference);
  const auto selected = result.selected(k);
  const auto payments = result.payments(k);
  ASSERT_EQ(selected.size(), reference.allocation.selected.size())
      << "market " << k << ": winner count diverges";
  ASSERT_EQ(payments.size(), reference.payments.size());
  for (std::size_t w = 0; w < selected.size(); ++w) {
    EXPECT_EQ(selected[w], reference.allocation.selected[w])
        << "market " << k << " winner " << w;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(payments[w]),
              std::bit_cast<std::uint64_t>(reference.payments[w]))
        << "market " << k << " payment " << w << " diverges: got "
        << payments[w] << " want " << reference.payments[w];
  }
  EXPECT_EQ(std::bit_cast<std::uint64_t>(result.total_score(k)),
            std::bit_cast<std::uint64_t>(reference.allocation.total_score))
      << "market " << k << " total score diverges";
}

TEST(MarketBatchTest, RunRoundsMatchesPerMarketRunRoundBitForBit) {
  sfl::util::Rng rng(8801);
  std::vector<SeededMarket> markets;
  for (std::size_t k = 0; k < 24; ++k) {
    markets.push_back(make_market(rng, 1 + rng.uniform_index(40),
                                  1 + rng.uniform_index(6), k % 2 == 0));
  }
  const MarketBatch packed = pack(markets);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    const ShardedWdp engine{ShardedWdpConfig{.shards = shards}};
    MarketBatchResult result;
    RoundScratch scratch;
    engine.run_rounds(packed, result, scratch);
    ASSERT_EQ(result.market_count(), markets.size());
    for (std::size_t k = 0; k < markets.size(); ++k) {
      expect_slot_matches_run_round(engine, markets[k], result, k);
    }
  }
}

TEST(MarketBatchTest, DefaultGatherLoopFallbackMatchesShardedOverride) {
  sfl::util::Rng rng(8802);
  std::vector<SeededMarket> markets;
  for (std::size_t k = 0; k < 12; ++k) {
    markets.push_back(make_market(rng, 2 + rng.uniform_index(24),
                                  1 + rng.uniform_index(5), true));
  }
  const MarketBatch packed = pack(markets);
  const ShardedWdp engine{ShardedWdpConfig{.shards = 2}};

  MarketBatchResult fused;
  RoundScratch fused_scratch;
  engine.run_rounds(packed, fused, fused_scratch);

  // Force the base-class gather-and-loop implementation on the same engine.
  MarketBatchResult looped;
  RoundScratch looped_scratch;
  engine.WdpEngine::run_rounds(packed, looped, looped_scratch);

  ASSERT_EQ(fused.market_count(), looped.market_count());
  for (std::size_t k = 0; k < fused.market_count(); ++k) {
    const auto fused_sel = fused.selected(k);
    const auto looped_sel = looped.selected(k);
    ASSERT_EQ(fused_sel.size(), looped_sel.size()) << "market " << k;
    for (std::size_t w = 0; w < fused_sel.size(); ++w) {
      EXPECT_EQ(fused_sel[w], looped_sel[w]);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(fused.payments(k)[w]),
                std::bit_cast<std::uint64_t>(looped.payments(k)[w]));
    }
    EXPECT_EQ(std::bit_cast<std::uint64_t>(fused.total_score(k)),
              std::bit_cast<std::uint64_t>(looped.total_score(k)));
  }
}

TEST(MarketBatchTest, EmptyAndOversubscribedMarketsDoNotPoisonSiblings) {
  sfl::util::Rng rng(8803);
  std::vector<SeededMarket> markets;
  // healthy | empty | m >= n | healthy | m == n | healthy — degenerates
  // sandwiched between normal markets so any state bleed would show up.
  markets.push_back(make_market(rng, 16, 4, true));
  markets.push_back(make_market(rng, 0, 3, false));  // empty slate
  {
    SeededMarket oversub = make_market(rng, 3, 9, true);  // m > n
    markets.push_back(std::move(oversub));
  }
  markets.push_back(make_market(rng, 20, 5, false));
  markets.push_back(make_market(rng, 6, 6, true));  // m == n
  markets.push_back(make_market(rng, 11, 2, true));

  const MarketBatch packed = pack(markets);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
    const ShardedWdp engine{ShardedWdpConfig{.shards = shards}};
    MarketBatchResult result;
    RoundScratch scratch;
    engine.run_rounds(packed, result, scratch);
    ASSERT_EQ(result.market_count(), markets.size());
    // The empty market clears to zero winners...
    EXPECT_EQ(result.selected(1).size(), 0u);
    EXPECT_EQ(result.total_score(1), 0.0);
    // ...and EVERY market, degenerate or not, still matches its solo run.
    for (std::size_t k = 0; k < markets.size(); ++k) {
      expect_slot_matches_run_round(engine, markets[k], result, k);
    }
  }

  // Same through the base-class fallback.
  const ShardedWdp engine{ShardedWdpConfig{.shards = 1}};
  MarketBatchResult result;
  RoundScratch scratch;
  engine.WdpEngine::run_rounds(packed, result, scratch);
  for (std::size_t k = 0; k < markets.size(); ++k) {
    expect_slot_matches_run_round(engine, markets[k], result, k);
  }
}

TEST(MarketBatchTest, ViewModeMatchesOwningModeBitForBit) {
  sfl::util::Rng rng(8804);
  // One flat arena; carve it into markets both ways.
  SeededMarket arena = make_market(rng, 64, 0, true);
  const std::vector<std::size_t> cuts = {0, 10, 10, 25, 40, 64};  // 5 markets
  const std::vector<std::size_t> winners = {3, 0, 4, 2, 7};

  MarketBatch owning;
  MarketBatch view;
  view.bind_arena(arena.batch);
  for (std::size_t k = 0; k + 1 < cuts.size(); ++k) {
    const std::size_t off = cuts[k];
    const std::size_t count = cuts[k + 1] - off;
    const ScoreWeights weights{.value_weight = 2.0 + static_cast<double>(k),
                               .bid_weight = 3.0};
    std::span<const double> pens{arena.penalties.data() + off, count};
    CandidateBatch sub;
    for (std::size_t i = off; i < off + count; ++i) {
      sub.push_back(arena.batch.at(i));
    }
    owning.append_market(sub, winners[k], weights, pens);
    view.add_market_view(off, count, winners[k], weights, pens);
  }

  const ShardedWdp engine{ShardedWdpConfig{.shards = 2}};
  MarketBatchResult owned_result;
  MarketBatchResult view_result;
  RoundScratch s1;
  RoundScratch s2;
  engine.run_rounds(owning, owned_result, s1);
  engine.run_rounds(view, view_result, s2);
  ASSERT_EQ(owned_result.market_count(), view_result.market_count());
  for (std::size_t k = 0; k < owned_result.market_count(); ++k) {
    const auto a = owned_result.selected(k);
    const auto b = view_result.selected(k);
    ASSERT_EQ(a.size(), b.size()) << "market " << k;
    for (std::size_t w = 0; w < a.size(); ++w) {
      EXPECT_EQ(a[w], b[w]);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(owned_result.payments(k)[w]),
                std::bit_cast<std::uint64_t>(view_result.payments(k)[w]));
    }
    EXPECT_EQ(std::bit_cast<std::uint64_t>(owned_result.total_score(k)),
              std::bit_cast<std::uint64_t>(view_result.total_score(k)));
  }
}

TEST(MarketBatchTest, MalformedDescriptorThrowsBeforeAnyMarketIsScored) {
  sfl::util::Rng rng(8805);
  std::vector<SeededMarket> markets;
  for (std::size_t k = 0; k < 4; ++k) {
    markets.push_back(make_market(rng, 8, 3, true));
  }
  MarketBatch packed = pack(markets);

  const ShardedWdp engine{ShardedWdpConfig{.shards = 2}};

  // First clear a GOOD batch into the result, then corrupt one descriptor:
  // the throwing call must leave those prior contents untouched.
  MarketBatchResult result;
  RoundScratch scratch;
  engine.run_rounds(packed, result, scratch);
  std::vector<std::size_t> before_winners(result.selected(2).begin(),
                                          result.selected(2).end());
  ASSERT_FALSE(before_winners.empty());

  auto expect_atomic_throw = [&](auto&& corrupt) {
    MarketBatch bad = pack(markets);
    corrupt(bad);
    EXPECT_THROW(engine.run_rounds(bad, result, scratch),
                 std::invalid_argument);
    // Exception-atomic: the result still holds the last good clearing.
    ASSERT_EQ(result.market_count(), markets.size());
    const auto winners = result.selected(2);
    ASSERT_EQ(winners.size(), before_winners.size());
    for (std::size_t w = 0; w < winners.size(); ++w) {
      EXPECT_EQ(winners[w], before_winners[w]);
    }
  };

  // Span past the arena end.
  expect_atomic_throw([](MarketBatch& b) { b.market_mutable(3).count += 7; });
  // Overlapping siblings (offset pulled backwards).
  expect_atomic_throw([](MarketBatch& b) { b.market_mutable(2).offset -= 3; });
  // Non-finite weight.
  expect_atomic_throw([](MarketBatch& b) {
    b.market_mutable(1).weights.value_weight =
        std::numeric_limits<double>::infinity();
  });
  // bid_weight <= 0 breaks the critical-payment division.
  expect_atomic_throw(
      [](MarketBatch& b) { b.market_mutable(0).weights.bid_weight = 0.0; });

  // The base-class fallback validates up front too.
  MarketBatch bad = pack(markets);
  bad.market_mutable(1).count += 99;
  EXPECT_THROW(engine.WdpEngine::run_rounds(bad, result, scratch),
               std::invalid_argument);
}

/// Engine whose per-market round throws on a sentinel client id — the only
/// way to make a round fail AFTER validate() passes, since the fused paths'
/// invariants cannot fire on constructible slates.
class PoisonedRoundEngine final : public WdpEngine {
 public:
  const Allocation& select_top_m(const CandidateBatch& batch,
                                 const ScoreWeights& weights,
                                 std::size_t max_winners,
                                 const Penalties& penalties,
                                 RoundScratch& scratch) const override {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch.ids()[i] == kPoisonId) {
        throw std::runtime_error("poisoned market");
      }
    }
    return auction::select_top_m(batch, weights, max_winners, penalties,
                                 scratch);
  }
  const std::vector<double>& critical_payments(
      const CandidateBatch& batch, const ScoreWeights& weights,
      std::size_t max_winners, const Penalties& penalties,
      RoundScratch& scratch) const override {
    return auction::critical_payments(batch, weights, max_winners, penalties,
                                      scratch);
  }
  static constexpr ClientId kPoisonId = 0xDEADBEEF;
};

TEST(MarketBatchTest, BaseGatherLoopIsExceptionAtomicOnMidBatchThrow) {
  // A poisoned MIDDLE market: the base-class gather loop has already
  // written market 0's winners when market 1 throws. The contract says the
  // caller must never observe that half-written arena — the result must be
  // restored to its reset(batch) layout (every slot zeroed) before the
  // exception escapes.
  sfl::util::Rng rng(8807);
  std::vector<SeededMarket> markets;
  for (std::size_t k = 0; k < 3; ++k) {
    markets.push_back(make_market(rng, 8, 3, false));
  }
  // Guarantee market 0 actually clears winners (so a non-atomic loop would
  // leave visible state) and market 1 carries the sentinel.
  markets[0].batch.emplace(ClientId{7}, 50.0, 0.1, 1.0);
  markets[1].batch.emplace(PoisonedRoundEngine::kPoisonId, 1.0, 0.5, 1.0);
  const MarketBatch packed = pack(markets);

  const PoisonedRoundEngine engine;
  MarketBatchResult result;
  RoundScratch scratch;
  EXPECT_THROW(engine.WdpEngine::run_rounds(packed, result, scratch),
               std::runtime_error);

  // Exception-atomic: every slot is back to the zeroed reset layout.
  ASSERT_EQ(result.market_count(), markets.size());
  for (std::size_t k = 0; k < markets.size(); ++k) {
    EXPECT_TRUE(result.selected(k).empty()) << "market " << k;
    EXPECT_TRUE(result.payments(k).empty()) << "market " << k;
    EXPECT_EQ(result.total_score(k), 0.0) << "market " << k;
  }

  // Sanity: market 0 alone clears winners, so atomicity (not emptiness)
  // is what the assertions above proved.
  MarketBatch healthy;
  healthy.append_market(markets[0].batch, markets[0].max_winners,
                        markets[0].weights, markets[0].penalties);
  engine.WdpEngine::run_rounds(healthy, result, scratch);
  EXPECT_FALSE(result.selected(0).empty());
}

TEST(MarketBatchTest, ConstructionModeMixingAndBadAppendsThrow) {
  sfl::util::Rng rng(8806);
  SeededMarket market = make_market(rng, 8, 3, true);

  // Owning then bind_arena is rejected.
  MarketBatch owning;
  owning.append_market(market.batch, 2, market.weights, market.penalties);
  EXPECT_THROW(owning.bind_arena(market.batch), std::invalid_argument);

  // View then append_market is rejected.
  MarketBatch view;
  view.bind_arena(market.batch);
  EXPECT_THROW(
      view.append_market(market.batch, 2, market.weights, market.penalties),
      std::invalid_argument);
  // Out-of-range view span is rejected at add time.
  EXPECT_THROW(view.add_market_view(4, 100, 2, market.weights),
               std::invalid_argument);
  // Penalty size mismatch is rejected at add time.
  const std::vector<double> short_pens(3, 1.0);
  EXPECT_THROW(view.add_market_view(0, 8, 2, market.weights, short_pens),
               std::invalid_argument);
  // add_market_view without a bound arena is rejected.
  MarketBatch unbound;
  EXPECT_THROW(unbound.add_market_view(0, 1, 1, market.weights),
               std::invalid_argument);
}

}  // namespace
}  // namespace sfl::auction
