#include "auction/candidate_batch.h"

#include <gtest/gtest.h>

#include "auction/payments.h"
#include "auction/random_instance.h"
#include "auction/registry.h"
#include "auction/winner_determination.h"
#include "util/rng.h"

namespace sfl::auction {
namespace {

TEST(CandidateBatchTest, AosRoundTripPreservesEveryField) {
  sfl::util::Rng rng(11);
  RandomInstanceSpec spec;
  spec.num_candidates = 17;
  const auto instance = make_random_instance(spec, rng);

  const CandidateBatch batch = CandidateBatch::from_aos(instance.candidates);
  ASSERT_EQ(batch.size(), instance.candidates.size());
  const std::vector<Candidate> back = batch.to_aos();
  ASSERT_EQ(back.size(), instance.candidates.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].id, instance.candidates[i].id);
    EXPECT_EQ(back[i].value, instance.candidates[i].value);
    EXPECT_EQ(back[i].bid, instance.candidates[i].bid);
    EXPECT_EQ(back[i].energy_cost, instance.candidates[i].energy_cost);
    const Candidate gathered = batch.at(i);
    EXPECT_EQ(gathered.id, instance.candidates[i].id);
    EXPECT_EQ(gathered.bid, instance.candidates[i].bid);
  }
}

TEST(CandidateBatchTest, EmplaceAndClear) {
  CandidateBatch batch;
  EXPECT_TRUE(batch.empty());
  batch.emplace(3, 2.0, 1.0, 0.5);
  batch.push_back(Candidate{.id = 1, .value = 4.0, .bid = 2.0, .energy_cost = 1.5});
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.ids()[0], 3u);
  EXPECT_EQ(batch.ids()[1], 1u);
  EXPECT_DOUBLE_EQ(batch.values()[1], 4.0);
  batch.clear();
  EXPECT_TRUE(batch.empty());
}

TEST(CandidateBatchTest, SelectTopMMatchesAosBitForBit) {
  // The SoA scoring loop must reproduce the AoS path exactly: same selected
  // indices and the same (not merely close) total score, with and without
  // penalties, across random instances and winner caps.
  sfl::util::Rng rng(17);
  for (int trial = 0; trial < 300; ++trial) {
    RandomInstanceSpec spec;
    spec.num_candidates = 1 + rng.uniform_index(60);
    spec.penalty_hi = trial % 2 == 0 ? 0.0 : 2.0;
    const auto instance = make_random_instance(spec, rng);
    const ScoreWeights weights = make_random_weights(rng);
    const std::size_t m = 1 + rng.uniform_index(12);

    const CandidateBatch batch = CandidateBatch::from_aos(instance.candidates);
    const Allocation aos =
        select_top_m(instance.candidates, weights, m, instance.penalties);
    const Allocation soa = select_top_m(batch, weights, m, instance.penalties);
    ASSERT_EQ(aos.selected, soa.selected) << "trial " << trial;
    EXPECT_EQ(aos.total_score, soa.total_score) << "trial " << trial;

    const auto aos_payments = critical_payments(instance.candidates, weights, m,
                                                aos, instance.penalties);
    const auto soa_payments =
        critical_payments(batch, weights, m, soa, instance.penalties);
    ASSERT_EQ(aos_payments.size(), soa_payments.size());
    for (std::size_t k = 0; k < aos_payments.size(); ++k) {
      EXPECT_EQ(aos_payments[k], soa_payments[k]) << "trial " << trial;
    }

    const MechanismResult aos_result =
        make_result(instance.candidates, aos, aos_payments);
    const MechanismResult soa_result = make_result(batch, soa, soa_payments);
    EXPECT_EQ(aos_result.winners, soa_result.winners);
    EXPECT_EQ(aos_result.payments, soa_result.payments);
  }
}

TEST(CandidateBatchTest, DefaultAdapterMatchesAosForEveryRegistryMechanism) {
  // Running a mechanism through the batch entry point must give the same
  // winners and payments as the AoS entry point — natively for mechanisms
  // that override the batch path (lto-vcg), via the adapter for the rest.
  // Randomized rules need twin instances so both paths see the same stream.
  MechanismConfig config;
  config.num_clients = 12;
  config.per_round_budget = 5.0;
  config.seed = 5;
  config.lto.pacing_rate = 0.4;

  sfl::util::Rng rng(23);
  for (const std::string& name : MechanismRegistry::global().names()) {
    const auto via_aos = build_mechanism(name, config);
    const auto via_batch = build_mechanism(name, config);
    for (int round = 0; round < 20; ++round) {
      RandomInstanceSpec spec;
      spec.num_candidates = 12;
      const auto instance = make_random_instance(spec, rng);
      const CandidateBatch batch = CandidateBatch::from_aos(instance.candidates);
      RoundContext ctx;
      ctx.round = static_cast<std::size_t>(round);
      ctx.max_winners = 4;
      ctx.per_round_budget = config.per_round_budget;

      const MechanismResult aos = via_aos->run_round(instance.candidates, ctx);
      const MechanismResult soa = via_batch->run_round(batch, ctx);
      ASSERT_EQ(aos.winners, soa.winners) << name << " round " << round;
      ASSERT_EQ(aos.payments, soa.payments) << name << " round " << round;

      // Keep stateful mechanisms' queues in lockstep.
      RoundSettlement settlement;
      settlement.round = static_cast<std::size_t>(round);
      settlement.total_payment = aos.total_payment();
      for (std::size_t w = 0; w < aos.winners.size(); ++w) {
        settlement.winners.push_back(
            WinnerSettlement{.client = aos.winners[w],
                             .bid = instance.candidates[aos.winners[w]].bid,
                             .payment = aos.payments[w],
                             .energy_cost =
                                 instance.candidates[aos.winners[w]].energy_cost,
                             .dropped = false});
      }
      via_aos->settle(settlement);
      via_batch->settle(settlement);
    }
  }
}

}  // namespace
}  // namespace sfl::auction
