#include "auction/adaptive_price.h"

#include <gtest/gtest.h>

#include "auction/random_instance.h"
#include "util/rng.h"

namespace sfl::auction {
namespace {

AdaptivePriceConfig default_config() {
  AdaptivePriceConfig config;
  config.initial_price = 1.0;
  config.step = 0.05;
  return config;
}

RoundContext ctx(std::size_t m, double budget) {
  RoundContext context;
  context.max_winners = m;
  context.per_round_budget = budget;
  return context;
}

TEST(AdaptivePriceTest, ConfigValidation) {
  AdaptivePriceConfig config = default_config();
  config.initial_price = 0.0;
  EXPECT_THROW(AdaptivePostedPriceMechanism{config}, std::invalid_argument);
  config = default_config();
  config.step = 1.0;
  EXPECT_THROW(AdaptivePostedPriceMechanism{config}, std::invalid_argument);
  config = default_config();
  config.max_price = config.min_price / 2.0;
  EXPECT_THROW(AdaptivePostedPriceMechanism{config}, std::invalid_argument);
}

TEST(AdaptivePriceTest, AcceptsOnlyBidsAtOrBelowPrice) {
  AdaptivePostedPriceMechanism mech(default_config());
  std::vector<Candidate> candidates{
      Candidate{.id = 0, .value = 3.0, .bid = 0.8, .energy_cost = 1.0},
      Candidate{.id = 1, .value = 5.0, .bid = 1.2, .energy_cost = 1.0}};
  const MechanismResult result = mech.run_round(candidates, ctx(5, 10.0));
  EXPECT_TRUE(result.won(0));
  EXPECT_FALSE(result.won(1));
  EXPECT_DOUBLE_EQ(result.payment_for(0), 1.0);
}

TEST(AdaptivePriceTest, PriceFallsAfterOverspendRisesAfterUnderspend) {
  AdaptivePostedPriceMechanism mech(default_config());
  RoundObservation over;
  over.total_payment = 100.0;
  std::vector<Candidate> candidates{
      Candidate{.id = 0, .value = 1.0, .bid = 0.5, .energy_cost = 1.0}};
  (void)mech.run_round(candidates, ctx(1, 2.0));  // sets last budget
  mech.observe(over);
  EXPECT_DOUBLE_EQ(mech.current_price(), 0.95);
  RoundObservation under;
  under.total_payment = 0.0;
  (void)mech.run_round(candidates, ctx(1, 2.0));
  mech.observe(under);
  EXPECT_NEAR(mech.current_price(), 0.95 * 1.05, 1e-12);
}

TEST(AdaptivePriceTest, PriceStaysWithinBounds) {
  AdaptivePriceConfig config = default_config();
  config.min_price = 0.5;
  config.max_price = 2.0;
  AdaptivePostedPriceMechanism mech(config);
  std::vector<Candidate> candidates{
      Candidate{.id = 0, .value = 1.0, .bid = 0.1, .energy_cost = 1.0}};
  for (int i = 0; i < 100; ++i) {
    (void)mech.run_round(candidates, ctx(1, 1.0));
    RoundObservation obs;
    obs.total_payment = 100.0;  // always overspending
    mech.observe(obs);
  }
  EXPECT_DOUBLE_EQ(mech.current_price(), 0.5);
  for (int i = 0; i < 200; ++i) {
    (void)mech.run_round(candidates, ctx(1, 1.0));
    RoundObservation obs;
    obs.total_payment = 0.0;  // always underspending
    mech.observe(obs);
  }
  EXPECT_DOUBLE_EQ(mech.current_price(), 2.0);
}

TEST(AdaptivePriceTest, TracksBudgetInAStationaryMarket) {
  // Costs ~ U[0.2, 1.8], 30 clients, m = 10, budget 4: the price should
  // settle so that average spend hovers near the budget.
  AdaptivePostedPriceMechanism mech(default_config());
  sfl::util::Rng rng(77);
  double total_payment = 0.0;
  const int rounds = 3000;
  for (int round = 0; round < rounds; ++round) {
    std::vector<Candidate> candidates(30);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      candidates[i] = Candidate{.id = i,
                                .value = 2.0,
                                .bid = rng.uniform(0.2, 1.8),
                                .energy_cost = 1.0};
    }
    const MechanismResult result = mech.run_round(candidates, ctx(10, 4.0));
    total_payment += result.total_payment();
    RoundObservation obs;
    obs.total_payment = result.total_payment();
    mech.observe(obs);
  }
  const double average = total_payment / rounds;
  EXPECT_GT(average, 2.5);
  EXPECT_LT(average, 5.5);
}

TEST(AdaptivePriceTest, RequiresFiniteBudget) {
  AdaptivePostedPriceMechanism mech(default_config());
  RoundContext context;  // infinite budget
  std::vector<Candidate> candidates{
      Candidate{.id = 0, .value = 1.0, .bid = 0.5, .energy_cost = 1.0}};
  EXPECT_THROW((void)mech.run_round(candidates, context), std::invalid_argument);
}

TEST(AdaptivePriceTest, PostedPriceRemainsTruthful) {
  // Whatever the price trajectory, per-round payments are bid-independent:
  // a client with cost <= price cannot gain by misreporting.
  AdaptivePostedPriceMechanism mech(default_config());
  EXPECT_TRUE(mech.is_truthful());
  sfl::util::Rng rng(88);
  for (int trial = 0; trial < 100; ++trial) {
    RandomInstanceSpec spec;
    spec.num_candidates = 6;
    const RandomInstance instance = make_random_instance(spec, rng);
    const RoundContext context = ctx(6, 5.0);
    const MechanismResult truthful = mech.run_round(instance.candidates, context);
    for (std::size_t target = 0; target < instance.candidates.size(); ++target) {
      const double cost = instance.candidates[target].bid;
      const double truthful_utility =
          truthful.won(target) ? truthful.payment_for(target) - cost : 0.0;
      for (const double factor : {0.4, 0.9, 1.3, 2.5}) {
        std::vector<Candidate> shaded = instance.candidates;
        shaded[target].bid = factor * cost;
        const MechanismResult deviated = mech.run_round(shaded, context);
        const double deviated_utility =
            deviated.won(target) ? deviated.payment_for(target) - cost : 0.0;
        EXPECT_LE(deviated_utility, truthful_utility + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace sfl::auction
