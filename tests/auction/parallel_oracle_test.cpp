// Serial == parallel equivalence for the comparison oracles.
//
// The three expensive baseline oracles — the knapsack DP, the concave-greedy
// marginal scan, and the VCG leave-one-out externality payments — run on the
// shared thread pool behind `threads` + OracleScratch overloads. Their
// contract mirrors the sharded WDP's: EVERY thread count (0 = auto,
// 1 = serial, k = exactly k lanes) must produce bit-identical allocations
// and payments to the plain serial overloads, including on adversarial
// slates (exact ties, duplicate ClientIds, zero values/bids, m >= n, empty),
// where only the strict total order (score/gain desc, ClientId asc, index
// asc) keeps the answer unique.
//
// Reproducing failures: every trial logs its seed; run
//   <binary> --seed=N
// to replay exactly the failing instance. On failure the binary appends the
// seeds to parallel_oracle_failure_seeds.txt next to the test's working
// directory — CI uploads it as an artifact (same flow as the property
// harness and sharded_wdp_test).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "auction/payments.h"
#include "auction/round_scratch.h"
#include "auction/valuation.h"
#include "auction/winner_determination.h"
#include "util/rng.h"

namespace sfl {
namespace {

using auction::Allocation;
using auction::Candidate;
using auction::ClientId;
using auction::ConcaveValuation;
using auction::OracleScratch;
using auction::Penalties;
using auction::ScoreWeights;
using auction::select_greedy_concave;
using auction::select_knapsack;
using auction::select_top_m;
using auction::vcg_payments;

constexpr std::size_t kThreadCounts[] = {0, 1, 2, 3, 7, 16};

std::optional<std::uint64_t> g_fixed_seed;  // --seed=N
std::vector<std::uint64_t> g_failed_seeds;  // written to the artifact

std::size_t trials() {
  if (g_fixed_seed.has_value()) return 1;
  if (const char* env = std::getenv("SFL_PARALLEL_ORACLE_TRIALS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 120;
}

std::uint64_t trial_seed(std::size_t trial) {
  return g_fixed_seed.value_or(static_cast<std::uint64_t>(trial));
}

void record_failure(std::uint64_t seed) {
  for (const std::uint64_t s : g_failed_seeds) {
    if (s == seed) return;
  }
  g_failed_seeds.push_back(seed);
}

struct OracleInstance {
  std::vector<Candidate> candidates;
  Penalties penalties;
  std::size_t max_winners = 0;
  double budget = 0.0;
};

/// Six instance families keyed by seed (so --seed=N replays the family along
/// with the draws): typical, exact ties, duplicate ids, zero-heavy, m >= n,
/// and the empty slate — the same adversarial axes the property harness
/// sweeps, because each stresses a different tie-break or boundary path.
OracleInstance make_oracle_instance(std::uint64_t seed) {
  util::Rng rng(seed ^ 0x0ac1e5ULL);
  const std::uint64_t family = seed % 6;

  OracleInstance instance;
  std::size_t n = 0;
  switch (family) {
    case 5: n = 0; break;                          // empty
    case 4: n = 1 + rng.uniform_index(6); break;   // tiny, m >= n
    default: n = 1 + rng.uniform_index(36); break;
  }

  const bool with_penalties = rng.bernoulli(0.5);
  for (std::size_t i = 0; i < n; ++i) {
    Candidate c;
    c.id = static_cast<ClientId>(i);
    if (family == 2 && n >= 2 && rng.bernoulli(0.5)) {
      c.id = static_cast<ClientId>(rng.uniform_index(n));
    }
    if (family == 1) {
      // Exact ties from a coarse lattice: scores and greedy gains collide
      // constantly, so every total-order tie-break level is exercised.
      c.value = 0.5 * static_cast<double>(rng.uniform_index(5));
      c.bid = 0.25 * static_cast<double>(rng.uniform_index(4));
    } else if (family == 3) {
      c.value = rng.bernoulli(0.5) ? 0.0 : rng.uniform(0.0, 4.0);
      c.bid = rng.bernoulli(0.5) ? 0.0 : rng.uniform(0.0, 2.0);
    } else {
      c.value = rng.uniform(0.1, 5.0);
      c.bid = rng.uniform(0.05, 3.0);
    }
    c.energy_cost = rng.uniform(0.2, 2.0);
    instance.candidates.push_back(c);
    if (with_penalties) {
      instance.penalties.push_back(
          family == 1 ? 0.25 * static_cast<double>(rng.uniform_index(3))
                      : rng.uniform(0.0, 1.5));
    }
  }

  instance.max_winners =
      family == 4 ? n + rng.uniform_index(5) : 1 + rng.uniform_index(8);
  instance.budget = rng.uniform(0.2, 8.0);
  return instance;
}

void expect_allocations_identical(const Allocation& serial,
                                  const Allocation& parallel,
                                  std::size_t threads, const char* oracle) {
  ASSERT_EQ(serial.selected, parallel.selected)
      << oracle << " threads=" << threads;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(serial.total_score),
            std::bit_cast<std::uint64_t>(parallel.total_score))
      << oracle << " threads=" << threads << ": " << serial.total_score
      << " != " << parallel.total_score;
}

TEST(ParallelOracleTest, KnapsackDpMatchesSerialAtEveryThreadCount) {
  OracleScratch scratch;
  const ScoreWeights weights{.value_weight = 1.0, .bid_weight = 1.0};
  for (std::size_t trial = 0; trial < trials(); ++trial) {
    const std::uint64_t seed = trial_seed(trial);
    SCOPED_TRACE("repro: auction_parallel_oracle_test --seed=" +
                 std::to_string(seed) + " (knapsack)");
    const bool failed_before = ::testing::Test::HasFailure();
    const OracleInstance instance = make_oracle_instance(seed);
    const double resolution = 0.01 + 0.02 * static_cast<double>(seed % 5);

    const Allocation serial = select_knapsack(
        instance.candidates, weights, instance.budget, instance.max_winners,
        resolution, instance.penalties);
    for (const std::size_t threads : kThreadCounts) {
      const Allocation parallel = select_knapsack(
          instance.candidates, weights, instance.budget, instance.max_winners,
          resolution, instance.penalties, threads, scratch);
      expect_allocations_identical(serial, parallel, threads, "knapsack");
    }
    if (!failed_before && ::testing::Test::HasFailure()) {
      record_failure(seed);
      break;
    }
  }
}

TEST(ParallelOracleTest, GreedyConcaveMatchesSerialAtEveryThreadCount) {
  OracleScratch scratch;
  const ScoreWeights weights{.value_weight = 1.0, .bid_weight = 1.0};
  const ConcaveValuation valuation(20.0);
  for (std::size_t trial = 0; trial < trials(); ++trial) {
    const std::uint64_t seed = trial_seed(trial);
    SCOPED_TRACE("repro: auction_parallel_oracle_test --seed=" +
                 std::to_string(seed) + " (greedy-concave)");
    const bool failed_before = ::testing::Test::HasFailure();
    const OracleInstance instance = make_oracle_instance(seed);

    const Allocation serial =
        select_greedy_concave(instance.candidates, valuation, weights,
                              instance.max_winners, instance.penalties);
    for (const std::size_t threads : kThreadCounts) {
      const Allocation parallel = select_greedy_concave(
          instance.candidates, valuation, weights, instance.max_winners,
          instance.penalties, threads, scratch);
      expect_allocations_identical(serial, parallel, threads,
                                   "greedy-concave");
    }
    if (!failed_before && ::testing::Test::HasFailure()) {
      record_failure(seed);
      break;
    }
  }
}

TEST(ParallelOracleTest, VcgExternalityPaymentsMatchSerialAtEveryThreadCount) {
  OracleScratch scratch;
  const ScoreWeights weights{.value_weight = 1.0, .bid_weight = 1.0};
  const auction::WdpSolver solver =
      [](const std::vector<Candidate>& reduced, const ScoreWeights& w,
         std::size_t m, const Penalties& p) {
        return select_top_m(reduced, w, m, p);
      };
  for (std::size_t trial = 0; trial < trials(); ++trial) {
    const std::uint64_t seed = trial_seed(trial);
    SCOPED_TRACE("repro: auction_parallel_oracle_test --seed=" +
                 std::to_string(seed) + " (vcg-externality)");
    const bool failed_before = ::testing::Test::HasFailure();
    const OracleInstance instance = make_oracle_instance(seed);

    const Allocation allocation =
        select_top_m(instance.candidates, weights, instance.max_winners,
                     instance.penalties);
    const std::vector<double> serial =
        vcg_payments(instance.candidates, weights, instance.max_winners,
                     allocation, solver, instance.penalties);
    for (const std::size_t threads : kThreadCounts) {
      const std::vector<double> parallel =
          vcg_payments(instance.candidates, weights, instance.max_winners,
                       allocation, solver, instance.penalties, threads,
                       scratch);
      ASSERT_EQ(serial.size(), parallel.size()) << "threads=" << threads;
      for (std::size_t w = 0; w < serial.size(); ++w) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(serial[w]),
                  std::bit_cast<std::uint64_t>(parallel[w]))
            << "vcg threads=" << threads << " winner " << w << ": "
            << serial[w] << " != " << parallel[w];
      }
    }
    if (!failed_before && ::testing::Test::HasFailure()) {
      record_failure(seed);
      break;
    }
  }
}

TEST(ParallelOracleTest, ScratchReuseAcrossOraclesAndShapesIsClean) {
  // One OracleScratch round-robined across all three oracles and wildly
  // varying shapes (large after empty, m >= n after m = 1): stale buffer
  // contents from a previous call must never leak into the next result.
  OracleScratch scratch;
  const ScoreWeights weights{.value_weight = 1.0, .bid_weight = 1.0};
  const ConcaveValuation valuation(20.0);
  const auction::WdpSolver solver =
      [](const std::vector<Candidate>& reduced, const ScoreWeights& w,
         std::size_t m, const Penalties& p) {
        return select_top_m(reduced, w, m, p);
      };
  for (std::size_t trial = 0; trial < 40; ++trial) {
    const std::uint64_t seed = trial_seed(trial) + 1'000'000;
    SCOPED_TRACE("repro: auction_parallel_oracle_test --seed=" +
                 std::to_string(seed) + " (scratch-reuse)");
    const OracleInstance instance = make_oracle_instance(seed);
    const std::size_t threads = kThreadCounts[trial % 6];

    expect_allocations_identical(
        select_knapsack(instance.candidates, weights, instance.budget,
                        instance.max_winners, 0.05, instance.penalties),
        select_knapsack(instance.candidates, weights, instance.budget,
                        instance.max_winners, 0.05, instance.penalties,
                        threads, scratch),
        threads, "reuse-knapsack");
    expect_allocations_identical(
        select_greedy_concave(instance.candidates, valuation, weights,
                              instance.max_winners, instance.penalties),
        select_greedy_concave(instance.candidates, valuation, weights,
                              instance.max_winners, instance.penalties,
                              threads, scratch),
        threads, "reuse-greedy");
    const Allocation allocation =
        select_top_m(instance.candidates, weights, instance.max_winners,
                     instance.penalties);
    EXPECT_EQ(vcg_payments(instance.candidates, weights, instance.max_winners,
                           allocation, solver, instance.penalties),
              vcg_payments(instance.candidates, weights, instance.max_winners,
                           allocation, solver, instance.penalties, threads,
                           scratch))
        << "reuse-vcg threads=" << threads;
  }
}

}  // namespace
}  // namespace sfl

// Custom main: --seed=N pins the generator to one instance seed; failing
// seeds are persisted for the CI artifact and echoed with a copy-pasteable
// repro command (the sharded_wdp_test / property-harness flow).
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    constexpr const char* kSeedFlag = "--seed=";
    if (arg.rfind(kSeedFlag, 0) == 0) {
      sfl::g_fixed_seed = std::strtoull(
          arg.c_str() + std::string(kSeedFlag).size(), nullptr, 10);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  const int result = RUN_ALL_TESTS();
  if (!sfl::g_failed_seeds.empty()) {
    std::ofstream out("parallel_oracle_failure_seeds.txt", std::ios::app);
    std::cerr << "\nparallel-oracle failures; reproduce each with:\n";
    for (const std::uint64_t seed : sfl::g_failed_seeds) {
      out << seed << "\n";
      std::cerr << "  auction_parallel_oracle_test --seed=" << seed << "\n";
    }
    std::cerr << "(seeds appended to parallel_oracle_failure_seeds.txt)\n";
  }
  return result;
}
