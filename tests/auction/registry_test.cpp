#include "auction/registry.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "auction/random_instance.h"
#include "core/long_term_online_vcg.h"
#include "util/rng.h"

namespace sfl::auction {
namespace {

MechanismConfig small_config() {
  MechanismConfig config;
  config.num_clients = 8;
  config.per_round_budget = 4.0;
  config.seed = 99;
  config.lto.v_weight = 6.0;
  config.lto.pacing_rate = 0.5;
  return config;
}

TEST(MechanismRegistryTest, ListsAllBuiltins) {
  const auto& registry = MechanismRegistry::global();
  const std::vector<std::string> expected{
      "lto-vcg",        "lto-vcg-sharded",  "lto-vcg-dist",
      "lto-vcg-dist-pipe", "lto-vcg-dist-hedge", "lto-vcg-async",
      "lto-vcg-unpaced",
      "myopic-vcg",     "pay-as-bid",       "fixed-price",
      "adaptive-price", "random-stipend",   "proportional-share",
      "first-best-oracle", "budgeted-oracle", "budgeted-oracle-par",
      "greedy-concave", "greedy-concave-par", "myopic-vcg-ext",
      "myopic-vcg-ext-par"};
  EXPECT_EQ(registry.names(), expected);
  EXPECT_EQ(registry.size(), expected.size());
  for (const std::string& name : expected) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
  for (const MechanismInfo& info : registry.describe()) {
    EXPECT_FALSE(info.description.empty()) << info.name;
    // A variant must reference a registered canonical key (and never
    // itself) — the property harness trusts this to enumerate coverage.
    if (!info.variant_of.empty()) {
      EXPECT_TRUE(registry.contains(info.variant_of)) << info.name;
      EXPECT_NE(info.variant_of, info.name);
    }
  }
  // The execution variants of the paper mechanism are tagged, so the
  // trajectory-equality sweep picks them up with no hand-maintained list.
  std::vector<std::string> lto_variants;
  for (const MechanismInfo& info : registry.describe()) {
    if (info.variant_of == "lto-vcg") lto_variants.push_back(info.name);
  }
  EXPECT_EQ(lto_variants,
            (std::vector<std::string>{"lto-vcg-sharded", "lto-vcg-dist",
                                      "lto-vcg-dist-pipe",
                                      "lto-vcg-dist-hedge", "lto-vcg-async"}));
  // The parallel-oracle keys are tagged as execution variants of their
  // serial canonicals, so the generic variant-equality sweep covers them
  // with no hand-maintained list.
  std::vector<std::string> oracle_variants;
  for (const MechanismInfo& info : registry.describe()) {
    if (!info.variant_of.empty() && info.variant_of != "lto-vcg") {
      oracle_variants.push_back(info.name + "->" + info.variant_of);
    }
  }
  EXPECT_EQ(oracle_variants,
            (std::vector<std::string>{"budgeted-oracle-par->budgeted-oracle",
                                      "greedy-concave-par->greedy-concave",
                                      "myopic-vcg-ext-par->myopic-vcg-ext"}));
}

TEST(MechanismRegistryTest, HedgeKnobReachesTheDistributedKeys) {
  MechanismConfig config = small_config();
  config.lto.dist_workers = 3;

  // The distributed keys hedge by default and honor the knob.
  {
    const auto mechanism = build_mechanism("lto-vcg-dist", config);
    auto* lto =
        dynamic_cast<core::LongTermOnlineVcgMechanism*>(mechanism.get());
    ASSERT_NE(lto, nullptr);
    EXPECT_TRUE(lto->config().dist_hedge);
  }
  {
    config.lto.hedge = false;
    const auto mechanism = build_mechanism("lto-vcg-dist", config);
    auto* lto =
        dynamic_cast<core::LongTermOnlineVcgMechanism*>(mechanism.get());
    ASSERT_NE(lto, nullptr);
    EXPECT_FALSE(lto->config().dist_hedge);
  }

  // The dedicated key forces hedging on regardless of the knob, defaults
  // to a 4-worker fleet at depth 2, and honors explicit sizing.
  {
    config.lto.dist_workers = 0;
    config.lto.hedge = false;
    const auto mechanism = build_mechanism("lto-vcg-dist-hedge", config);
    auto* lto =
        dynamic_cast<core::LongTermOnlineVcgMechanism*>(mechanism.get());
    ASSERT_NE(lto, nullptr);
    EXPECT_TRUE(lto->config().dist_hedge);
    EXPECT_EQ(lto->config().dist_workers, 4u);
    EXPECT_EQ(lto->config().dist_pipeline_depth, 2u);
  }
}

TEST(MechanismRegistryTest, RoundTripOverEveryRegisteredName) {
  // Every key must build a working mechanism: run one auction round and
  // check the structural result invariants.
  const MechanismConfig config = small_config();
  sfl::util::Rng rng(7);
  RandomInstanceSpec ispec;
  ispec.num_candidates = 8;
  const auto instance = make_random_instance(ispec, rng);
  RoundContext ctx;
  ctx.max_winners = 3;
  ctx.per_round_budget = config.per_round_budget;

  for (const std::string& name : MechanismRegistry::global().names()) {
    const auto mechanism = build_mechanism(name, config);
    ASSERT_NE(mechanism, nullptr) << name;
    EXPECT_FALSE(mechanism->name().empty()) << name;
    const MechanismResult result = mechanism->run_round(instance.candidates, ctx);
    EXPECT_EQ(result.winners.size(), result.payments.size()) << name;
    EXPECT_LE(result.winners.size(), ctx.max_winners) << name;
    for (const ClientId winner : result.winners) {
      EXPECT_LT(winner, instance.candidates.size()) << name;
    }
    // The settlement protocol must be accepted by every rule.
    RoundSettlement settlement;
    settlement.total_payment = result.total_payment();
    for (std::size_t w = 0; w < result.winners.size(); ++w) {
      settlement.winners.push_back(
          WinnerSettlement{.client = result.winners[w],
                           .bid = instance.candidates[result.winners[w]].bid,
                           .payment = result.payments[w],
                           .energy_cost = 1.0,
                           .dropped = false});
    }
    EXPECT_NO_THROW(mechanism->settle(settlement)) << name;
  }
}

TEST(MechanismRegistryTest, UnknownNameThrowsWithKnownKeys) {
  try {
    (void)build_mechanism("no-such-rule", small_config());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("no-such-rule"), std::string::npos);
    EXPECT_NE(message.find("lto-vcg"), std::string::npos);
  }
}

TEST(MechanismRegistryTest, DuplicateAndEmptyRegistrationsRejected) {
  MechanismRegistry registry;
  registry.add("custom", "a rule",
               [](const MechanismConfig& config) {
                 return build_mechanism("myopic-vcg", config);
               });
  EXPECT_TRUE(registry.contains("custom"));
  EXPECT_THROW(registry.add("custom", "again",
                            [](const MechanismConfig& config) {
                              return build_mechanism("myopic-vcg", config);
                            }),
               std::invalid_argument);
  EXPECT_THROW(registry.add("", "empty key",
                            [](const MechanismConfig& config) {
                              return build_mechanism("myopic-vcg", config);
                            }),
               std::invalid_argument);
  EXPECT_THROW(registry.add("no-factory", "null", MechanismRegistry::Factory{}),
               std::invalid_argument);
}

TEST(MechanismRegistryTest, LtoPacingSemantics) {
  MechanismConfig config = small_config();

  // Uniform pacing: every client gets pacing_rate.
  {
    const auto mechanism = build_mechanism("lto-vcg", config);
    auto* lto = dynamic_cast<core::LongTermOnlineVcgMechanism*>(mechanism.get());
    ASSERT_NE(lto, nullptr);
    ASSERT_EQ(lto->config().energy_rates.size(), config.num_clients);
    EXPECT_DOUBLE_EQ(lto->config().energy_rates.front(), 0.5);
    EXPECT_DOUBLE_EQ(lto->config().v_weight, 6.0);
    EXPECT_DOUBLE_EQ(lto->config().per_round_budget, 4.0);
  }

  // Explicit per-client rates win over the uniform rate.
  {
    config.lto.energy_rates = {0.1, 0.2, 0.3};
    const auto mechanism = build_mechanism("lto-vcg", config);
    auto* lto = dynamic_cast<core::LongTermOnlineVcgMechanism*>(mechanism.get());
    ASSERT_NE(lto, nullptr);
    EXPECT_EQ(lto->config().energy_rates,
              (std::vector<double>{0.1, 0.2, 0.3}));
  }

  // The unpaced key ignores pacing entirely.
  {
    const auto mechanism = build_mechanism("lto-vcg-unpaced", config);
    auto* lto = dynamic_cast<core::LongTermOnlineVcgMechanism*>(mechanism.get());
    ASSERT_NE(lto, nullptr);
    EXPECT_TRUE(lto->config().energy_rates.empty());
  }

  // Uniform pacing without a client count is a configuration error.
  {
    config.lto.energy_rates.clear();
    config.num_clients = 0;
    EXPECT_THROW((void)build_mechanism("lto-vcg", config),
                 std::invalid_argument);
  }
}

TEST(MechanismRegistryTest, AblationOptionsReachTheMechanism) {
  MechanismConfig config = small_config();
  config.lto.vcg_externality_payments = true;
  config.lto.bid_proxy_queue_arrival = true;
  config.lto.budget_schedule = {6.0, 2.0};
  const auto mechanism = build_mechanism("lto-vcg-unpaced", config);
  auto* lto = dynamic_cast<core::LongTermOnlineVcgMechanism*>(mechanism.get());
  ASSERT_NE(lto, nullptr);
  EXPECT_EQ(lto->config().payment_rule, core::PaymentRule::kVcgExternality);
  EXPECT_EQ(lto->config().queue_arrival, core::QueueArrivalMode::kBidProxy);
  EXPECT_EQ(lto->config().budget_schedule, (std::vector<double>{6.0, 2.0}));
}

}  // namespace
}  // namespace sfl::auction
