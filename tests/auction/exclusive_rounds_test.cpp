// Cross-market exclusive clearing unit tests (PR 10).
//
// MarketBatch::set_exclusive(true) turns run_rounds from independent
// per-market rounds into ONE constrained assignment: every client wins at
// most one row across the whole batch, resolved by the global greedy order
// (score desc, ClientId asc, market index asc, row asc), with critical
// payments priced against the constrained outcome. These tests pin the
// semantics on hand-built instances — who wins when pools overlap, the tie
// order, degenerate markets, individual rationality, the disjoint-pool
// degeneration to the per-market rule — and the bit-identity of the fused
// ShardedWdp path with the serial WdpEngine reference. The seeded
// wide-coverage sweep (plus the conflict-resolution reference oracle) lives
// in tests/property/exclusivity_invariants_test.cpp.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <set>
#include <span>
#include <stdexcept>
#include <vector>

#include "auction/candidate_batch.h"
#include "auction/market_batch.h"
#include "auction/round_scratch.h"
#include "auction/sharded_wdp.h"
#include "auction/types.h"
#include "util/rng.h"

namespace sfl::auction {
namespace {

// With unit weights and zero bids, a row's score is simply its value —
// hand-built expectations below read off the value column directly.
constexpr ScoreWeights kUnitWeights{.value_weight = 1.0, .bid_weight = 1.0};

CandidateBatch make_slate(
    std::initializer_list<std::pair<ClientId, double>> rows) {
  CandidateBatch slate;
  for (const auto& [id, value] : rows) slate.emplace(id, value, 0.0, 1.0);
  return slate;
}

void run_exclusive(const WdpEngine& engine, const MarketBatch& batch,
                   MarketBatchResult& result) {
  RoundScratch scratch;
  engine.run_rounds(batch, result, scratch);
}

/// Every (market, winner) pair's client, for the no-duplicate check.
std::vector<ClientId> winning_clients(const MarketBatch& batch,
                                      const MarketBatchResult& result) {
  std::vector<ClientId> clients;
  for (std::size_t k = 0; k < batch.market_count(); ++k) {
    for (const std::size_t local : result.selected(k)) {
      clients.push_back(batch.ids()[batch.market(k).offset + local]);
    }
  }
  return clients;
}

void expect_results_bit_identical(const MarketBatch& batch,
                                  const MarketBatchResult& got,
                                  const MarketBatchResult& want) {
  ASSERT_EQ(got.market_count(), want.market_count());
  for (std::size_t k = 0; k < batch.market_count(); ++k) {
    ASSERT_EQ(got.selected(k).size(), want.selected(k).size()) << "market " << k;
    for (std::size_t w = 0; w < got.selected(k).size(); ++w) {
      EXPECT_EQ(got.selected(k)[w], want.selected(k)[w])
          << "market " << k << " winner " << w;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got.payments(k)[w]),
                std::bit_cast<std::uint64_t>(want.payments(k)[w]))
          << "market " << k << " payment " << w;
    }
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.total_score(k)),
              std::bit_cast<std::uint64_t>(want.total_score(k)))
        << "market " << k << " total score";
  }
}

TEST(ExclusiveRoundsTest, OverlappingClientWinsExactlyOnce) {
  // Client 7 tops both markets; the global greedy assigns it where its
  // score is higher (market 1, score 9) and market 0's seat falls to the
  // runner-up. Without exclusivity client 7 would win both.
  MarketBatch batch;
  batch.append_market(make_slate({{ClientId{7}, 5.0}, {ClientId{1}, 3.0}}),
                      /*max_winners=*/1, kUnitWeights);
  batch.append_market(make_slate({{ClientId{7}, 9.0}, {ClientId{2}, 4.0}}),
                      /*max_winners=*/1, kUnitWeights);
  batch.set_exclusive(true);

  const ShardedWdp engine{ShardedWdpConfig{.shards = 1}};
  MarketBatchResult result;
  run_exclusive(engine, batch, result);

  ASSERT_EQ(result.selected(0).size(), 1u);
  ASSERT_EQ(result.selected(1).size(), 1u);
  EXPECT_EQ(result.selected(0)[0], 1u);  // client 1, the runner-up
  EXPECT_EQ(result.selected(1)[0], 0u);  // client 7 in its better market

  // Sanity: the unconstrained clear hands client 7 both seats.
  batch.set_exclusive(false);
  MarketBatchResult unconstrained;
  run_exclusive(engine, batch, unconstrained);
  EXPECT_EQ(unconstrained.selected(0)[0], 0u);
  EXPECT_EQ(unconstrained.selected(1)[0], 0u);
}

TEST(ExclusiveRoundsTest, TiesResolveByClientThenMarketOrder) {
  // Three rows, all score 6: client 3 (market 0), client 5 (market 0), and
  // client 3 again (market 1). The greedy order is (score desc, id asc,
  // market asc), so client 3's market-0 row is accepted first, its market-1
  // row is skipped as already assigned, and client 5 takes market 0's
  // second seat — market 1, whose only bidder was client 3, goes empty.
  MarketBatch batch;
  batch.append_market(make_slate({{ClientId{3}, 6.0}, {ClientId{5}, 6.0}}),
                      /*max_winners=*/2, kUnitWeights);
  batch.append_market(make_slate({{ClientId{3}, 6.0}}),
                      /*max_winners=*/1, kUnitWeights);
  batch.set_exclusive(true);

  const ShardedWdp engine{ShardedWdpConfig{.shards = 1}};
  MarketBatchResult result;
  run_exclusive(engine, batch, result);

  ASSERT_EQ(result.selected(0).size(), 2u);
  EXPECT_TRUE(result.selected(1).empty());
  EXPECT_EQ(result.selected(0)[0], 0u);
  EXPECT_EQ(result.selected(0)[1], 1u);
}

TEST(ExclusiveRoundsTest, DuplicateRowsOfOneClientWinAtMostOnce) {
  // The same client holds every row of one market: exclusivity binds
  // within a market too, so it wins exactly one of its three rows.
  MarketBatch batch;
  batch.append_market(make_slate({{ClientId{4}, 3.0},
                                  {ClientId{4}, 8.0},
                                  {ClientId{4}, 5.0}}),
                      /*max_winners=*/3, kUnitWeights);
  batch.set_exclusive(true);

  const ShardedWdp engine{ShardedWdpConfig{.shards = 1}};
  MarketBatchResult result;
  run_exclusive(engine, batch, result);

  ASSERT_EQ(result.selected(0).size(), 1u);
  EXPECT_EQ(result.selected(0)[0], 1u);  // its best row
}

TEST(ExclusiveRoundsTest, DegenerateMarketsTakeNoSeats) {
  // An empty market and an m=0 market ride along without perturbing their
  // siblings or claiming any assignment.
  MarketBatch batch;
  batch.append_market(CandidateBatch{}, /*max_winners=*/2, kUnitWeights);
  batch.append_market(make_slate({{ClientId{1}, 2.0}}), /*max_winners=*/0,
                      kUnitWeights);
  batch.append_market(make_slate({{ClientId{1}, 2.0}, {ClientId{2}, 1.0}}),
                      /*max_winners=*/5, kUnitWeights);  // m >= n
  batch.set_exclusive(true);

  const ShardedWdp engine{ShardedWdpConfig{.shards = 1}};
  MarketBatchResult result;
  run_exclusive(engine, batch, result);

  EXPECT_TRUE(result.selected(0).empty());
  EXPECT_TRUE(result.selected(1).empty());
  ASSERT_EQ(result.selected(2).size(), 2u);
  const std::vector<ClientId> clients = winning_clients(batch, result);
  EXPECT_EQ(std::set<ClientId>(clients.begin(), clients.end()).size(),
            clients.size());
}

TEST(ExclusiveRoundsTest, DisjointPoolsDegenerateToPerMarketClearing) {
  // With no client shared between markets the exclusivity constraint never
  // binds, and the documented payment rule degenerates to the per-market
  // best-loser threshold — the exclusive clear must equal the independent
  // clear bit for bit.
  sfl::util::Rng rng(424242);
  MarketBatch batch;
  ClientId next_id{0};
  for (std::size_t k = 0; k < 6; ++k) {
    CandidateBatch slate;
    const std::size_t rows = 1 + rng.uniform_index(12);
    for (std::size_t i = 0; i < rows; ++i) {
      slate.emplace(next_id, rng.uniform(0.0, 20.0), rng.uniform(0.0, 5.0),
                    rng.uniform(0.1, 2.0));
      next_id = static_cast<ClientId>(static_cast<std::size_t>(next_id) + 1);
    }
    batch.append_market(slate, 1 + rng.uniform_index(4),
                        ScoreWeights{.value_weight = rng.uniform(1.0, 10.0),
                                     .bid_weight = rng.uniform(1.0, 10.0)});
  }

  const ShardedWdp engine{ShardedWdpConfig{.shards = 2}};
  batch.set_exclusive(false);
  MarketBatchResult independent;
  run_exclusive(engine, batch, independent);
  batch.set_exclusive(true);
  MarketBatchResult exclusive;
  run_exclusive(engine, batch, exclusive);
  expect_results_bit_identical(batch, exclusive, independent);
}

TEST(ExclusiveRoundsTest, FusedShardedClearMatchesSerialReference) {
  // Seeded overlapping-pool batches: the fused ShardedWdp override (parallel
  // per-market sorts + k-way cursor merge) must reproduce the serial
  // WdpEngine greedy bit for bit at every shard count, and no client may
  // win twice.
  for (const std::uint64_t seed : {1u, 2u, 3u, 17u, 99u}) {
    sfl::util::Rng rng(seed);
    MarketBatch batch;
    const std::size_t markets = 2 + rng.uniform_index(7);
    for (std::size_t k = 0; k < markets; ++k) {
      CandidateBatch slate;
      const std::size_t rows = rng.uniform_index(30);
      Penalties penalties;
      const bool with_penalties = rng.bernoulli(0.5);
      for (std::size_t i = 0; i < rows; ++i) {
        // A small id pool forces heavy cross-market overlap.
        slate.emplace(ClientId{rng.uniform_index(20)}, rng.uniform(0.0, 30.0),
                      rng.uniform(0.0, 8.0), rng.uniform(0.1, 2.0));
        if (with_penalties) penalties.push_back(rng.uniform(0.0, 6.0));
      }
      batch.append_market(slate, rng.uniform_index(6),
                          ScoreWeights{.value_weight = rng.uniform(1.0, 15.0),
                                       .bid_weight = rng.uniform(1.0, 15.0)},
                          penalties);
    }
    batch.set_exclusive(true);

    // The serial reference: the base-class implementation, reached by a
    // qualified call so ShardedWdp's fused override is bypassed.
    const ShardedWdp reference_engine{ShardedWdpConfig{.shards = 1}};
    MarketBatchResult reference;
    RoundScratch reference_scratch;
    reference_engine.WdpEngine::run_rounds(batch, reference,
                                           reference_scratch);
    const std::vector<ClientId> clients = winning_clients(batch, reference);
    EXPECT_EQ(std::set<ClientId>(clients.begin(), clients.end()).size(),
              clients.size())
        << "seed " << seed << ": a client won two seats";

    for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
      MarketBatchResult fused;
      const ShardedWdp engine{ShardedWdpConfig{.shards = shards}};
      run_exclusive(engine, batch, fused);
      SCOPED_TRACE("seed " + std::to_string(seed) + " shards " +
                   std::to_string(shards));
      expect_results_bit_identical(batch, fused, reference);
    }
  }
}

TEST(ExclusiveRoundsTest, PaymentsAreIndividuallyRational) {
  sfl::util::Rng rng(777);
  MarketBatch batch;
  for (std::size_t k = 0; k < 5; ++k) {
    CandidateBatch slate;
    for (std::size_t i = 0; i < 15; ++i) {
      slate.emplace(ClientId{rng.uniform_index(12)}, rng.uniform(0.0, 25.0),
                    rng.uniform(0.0, 6.0), 1.0);
    }
    batch.append_market(slate, 3,
                        ScoreWeights{.value_weight = 8.0, .bid_weight = 4.0});
  }
  batch.set_exclusive(true);

  const ShardedWdp engine{ShardedWdpConfig{.shards = 4}};
  MarketBatchResult result;
  run_exclusive(engine, batch, result);
  for (std::size_t k = 0; k < batch.market_count(); ++k) {
    const auto selected = result.selected(k);
    const auto payments = result.payments(k);
    for (std::size_t w = 0; w < selected.size(); ++w) {
      const double bid = batch.bids()[batch.market(k).offset + selected[w]];
      EXPECT_GE(payments[w], bid) << "market " << k << " winner " << w;
    }
  }
}

TEST(ExclusiveRoundsTest, ValidationFailureLeavesPriorResultIntact) {
  // run_rounds validates BEFORE touching the result: a corrupted descriptor
  // throws std::invalid_argument and a previously computed result arena
  // survives unmodified (exception-atomicity).
  MarketBatch batch;
  batch.append_market(make_slate({{ClientId{1}, 4.0}, {ClientId{2}, 2.0}}),
                      /*max_winners=*/1, kUnitWeights);
  batch.set_exclusive(true);

  const ShardedWdp engine{ShardedWdpConfig{.shards = 1}};
  MarketBatchResult result;
  run_exclusive(engine, batch, result);
  ASSERT_EQ(result.selected(0).size(), 1u);
  const std::size_t winner = result.selected(0)[0];
  const double payment = result.payments(0)[0];

  batch.market_mutable(0).offset = 1000;  // span escapes the arena
  RoundScratch scratch;
  EXPECT_THROW(engine.run_rounds(batch, result, scratch),
               std::invalid_argument);
  ASSERT_EQ(result.selected(0).size(), 1u);
  EXPECT_EQ(result.selected(0)[0], winner);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(result.payments(0)[0]),
            std::bit_cast<std::uint64_t>(payment));
}

}  // namespace
}  // namespace sfl::auction
