// Shard-merge exactness: for EVERY shard count the ShardedWdp engine must
// reproduce the serial select_top_m + critical_payments pair bit-for-bit —
// same selected indices, same total score, same payments — including under
// duplicate scores and duplicate ClientIds, where only the deterministic
// (score desc, ClientId asc, index asc) tie-break keeps the answer unique.
#include "auction/sharded_wdp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "auction/payments.h"
#include "auction/random_instance.h"
#include "auction/registry.h"
#include "auction/winner_determination.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace sfl::auction {
namespace {

constexpr std::size_t kShardCounts[] = {1, 2, 3, 7, 16};

struct TrialInstance {
  CandidateBatch batch;
  Penalties penalties;
};

/// Random instance with deliberate collisions: values/bids snapped to a
/// coarse grid (duplicate scores) and ids drawn with replacement from a
/// small range (duplicate ClientIds), so every tie-break level is hit.
TrialInstance make_colliding_instance(sfl::util::Rng& rng, std::size_t n,
                                      bool with_penalties) {
  TrialInstance trial;
  trial.batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double value = std::round(rng.uniform(0.0, 4.0) * 4.0) / 4.0;
    const double bid = std::round(rng.uniform(0.0, 2.0) * 4.0) / 4.0;
    const ClientId id = rng.uniform_index(n / 2 + 1);  // duplicates likely
    trial.batch.emplace(id, value, bid, 1.0);
    if (with_penalties) {
      trial.penalties.push_back(std::round(rng.uniform(0.0, 1.0) * 4.0) / 4.0);
    }
  }
  return trial;
}

void expect_round_matches_serial(const CandidateBatch& batch,
                                 const ScoreWeights& weights, std::size_t m,
                                 const Penalties& penalties,
                                 std::size_t shards, const char* label) {
  const Allocation serial = select_top_m(batch, weights, m, penalties);
  const std::vector<double> serial_payments =
      critical_payments(batch, weights, m, serial, penalties);

  const ShardedWdp engine{ShardedWdpConfig{.shards = shards}};
  RoundScratch scratch;
  engine.run_round(batch, weights, m, penalties, scratch);

  ASSERT_EQ(scratch.allocation.selected, serial.selected)
      << label << " shards=" << shards;
  EXPECT_EQ(scratch.allocation.total_score, serial.total_score)
      << label << " shards=" << shards;
  ASSERT_EQ(scratch.payments.size(), serial_payments.size())
      << label << " shards=" << shards;
  for (std::size_t k = 0; k < serial_payments.size(); ++k) {
    EXPECT_EQ(scratch.payments[k], serial_payments[k])
        << label << " shards=" << shards << " winner " << k;
  }
}

TEST(ShardedWdpTest, RandomizedEquivalenceAcrossShardCounts) {
  sfl::util::Rng rng(404);
  for (int trial = 0; trial < 60; ++trial) {
    RandomInstanceSpec spec;
    spec.num_candidates = 1 + rng.uniform_index(120);
    spec.penalty_hi = trial % 2 == 0 ? 0.0 : 2.0;
    const RandomInstance instance = make_random_instance(spec, rng);
    const CandidateBatch batch = CandidateBatch::from_aos(instance.candidates);
    const ScoreWeights weights = make_random_weights(rng);
    const std::size_t m = rng.uniform_index(spec.num_candidates + 4);
    for (const std::size_t shards : kShardCounts) {
      expect_round_matches_serial(batch, weights, m, instance.penalties,
                                  shards, "random");
    }
  }
}

TEST(ShardedWdpTest, EquivalenceUnderDuplicateScoresAndClientIds) {
  sfl::util::Rng rng(405);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 2 + rng.uniform_index(80);
    const TrialInstance instance =
        make_colliding_instance(rng, n, trial % 2 == 1);
    // Unit-ish weights keep the gridded scores exactly colliding.
    const ScoreWeights weights{.value_weight = 1.0, .bid_weight = 1.0};
    const std::size_t m = 1 + rng.uniform_index(n + 2);
    for (const std::size_t shards : kShardCounts) {
      expect_round_matches_serial(instance.batch, weights, m,
                                  instance.penalties, shards, "colliding");
    }
  }
}

TEST(ShardedWdpTest, EdgeCasesMatchSerial) {
  const ScoreWeights weights{.value_weight = 1.0, .bid_weight = 1.0};
  sfl::util::Rng rng(406);
  RandomInstanceSpec spec;
  spec.num_candidates = 9;
  const RandomInstance instance = make_random_instance(spec, rng);
  const CandidateBatch batch = CandidateBatch::from_aos(instance.candidates);

  for (const std::size_t shards : kShardCounts) {
    // m = 0, m = n, m > n.
    expect_round_matches_serial(batch, weights, 0, {}, shards, "m=0");
    expect_round_matches_serial(batch, weights, 9, {}, shards, "m=n");
    expect_round_matches_serial(batch, weights, 30, {}, shards, "m>n");

    // Empty batch.
    const CandidateBatch empty;
    const ShardedWdp engine{ShardedWdpConfig{.shards = shards}};
    RoundScratch scratch;
    engine.run_round(empty, weights, 5, {}, scratch);
    EXPECT_TRUE(scratch.allocation.selected.empty());
    EXPECT_TRUE(scratch.payments.empty());

    // All-negative scores select nobody.
    CandidateBatch losing;
    losing.emplace(0, 0.5, 3.0, 1.0);
    losing.emplace(1, 0.1, 2.0, 1.0);
    engine.run_round(losing, weights, 2, {}, scratch);
    EXPECT_TRUE(scratch.allocation.selected.empty());
  }
}

TEST(ShardedWdpTest, AutoShardCountMatchesSerial) {
  sfl::util::Rng rng(407);
  RandomInstanceSpec spec;
  spec.num_candidates = 300;
  const RandomInstance instance = make_random_instance(spec, rng);
  const CandidateBatch batch = CandidateBatch::from_aos(instance.candidates);
  const ScoreWeights weights = make_random_weights(rng);
  expect_round_matches_serial(batch, weights, 10, {}, /*shards=*/0, "auto");
}

TEST(ShardedWdpTest, ScratchOverloadsMatchAllocatingOverloads) {
  // The free-function scratch variants must agree with the allocating batch
  // overloads exactly (they share one serial engine).
  sfl::util::Rng rng(408);
  for (int trial = 0; trial < 40; ++trial) {
    RandomInstanceSpec spec;
    spec.num_candidates = 1 + rng.uniform_index(50);
    const RandomInstance instance = make_random_instance(spec, rng);
    const CandidateBatch batch = CandidateBatch::from_aos(instance.candidates);
    const ScoreWeights weights = make_random_weights(rng);
    const std::size_t m = 1 + rng.uniform_index(10);

    const Allocation allocating = select_top_m(batch, weights, m);
    RoundScratch scratch;
    const Allocation& scratched = select_top_m(batch, weights, m, {}, scratch);
    ASSERT_EQ(scratched.selected, allocating.selected) << "trial " << trial;
    EXPECT_EQ(scratched.total_score, allocating.total_score);

    const std::vector<double> allocating_payments =
        critical_payments(batch, weights, m, allocating);
    const std::vector<double>& scratched_payments =
        critical_payments(batch, weights, m, {}, scratch);
    ASSERT_EQ(scratched_payments, allocating_payments) << "trial " << trial;
  }
}

TEST(ShardedWdpTest, ShardedLtoMechanismTracksSerialLtoExactly) {
  // Full-mechanism lockstep: "lto-vcg-sharded" must emit the same winners,
  // payments, and queue trajectories as "lto-vcg" round after round, with
  // settlements feeding back into the queues.
  MechanismConfig config;
  config.num_clients = 40;
  config.per_round_budget = 5.0;
  config.seed = 11;
  config.lto.pacing_rate = 0.5;

  for (const std::size_t shards : {std::size_t{3}, std::size_t{16}}) {
    config.lto.shards = shards;
    const auto serial = build_mechanism("lto-vcg", config);
    const auto sharded = build_mechanism("lto-vcg-sharded", config);
    EXPECT_EQ(sharded->name(), "lto-vcg-sharded");

    sfl::util::Rng rng(12);
    for (std::size_t round = 0; round < 60; ++round) {
      RandomInstanceSpec spec;
      spec.num_candidates = 40;
      RandomInstance instance = make_random_instance(spec, rng);
      for (std::size_t i = 0; i < instance.candidates.size(); ++i) {
        instance.candidates[i].id = i;  // ids must index the pacing table
      }
      const CandidateBatch batch = CandidateBatch::from_aos(instance.candidates);
      RoundContext ctx;
      ctx.round = round;
      ctx.max_winners = 6;
      ctx.per_round_budget = config.per_round_budget;

      const MechanismResult a = serial->run_round(batch, ctx);
      const MechanismResult b = sharded->run_round(batch, ctx);
      ASSERT_EQ(a.winners, b.winners) << "shards " << shards << " round " << round;
      ASSERT_EQ(a.payments, b.payments) << "shards " << shards << " round " << round;

      RoundSettlement settlement;
      settlement.round = round;
      settlement.total_payment = a.total_payment();
      for (std::size_t w = 0; w < a.winners.size(); ++w) {
        settlement.winners.push_back(WinnerSettlement{
            .client = a.winners[w],
            .bid = instance.candidates[a.winners[w]].bid,
            .payment = a.payments[w],
            .energy_cost = instance.candidates[a.winners[w]].energy_cost,
            .dropped = false});
      }
      serial->settle(settlement);
      sharded->settle(settlement);
    }
  }
}

TEST(ThreadPoolChunkTest, StableChunkLayoutCoversEverythingOnce) {
  for (const std::size_t total : {0u, 1u, 7u, 100u, 1013u}) {
    for (const std::size_t chunks : {1u, 2u, 3u, 16u}) {
      std::vector<int> covered(total, 0);
      std::size_t previous_end = 0;
      for (std::size_t c = 0; c < chunks; ++c) {
        const auto [begin, end] =
            sfl::util::ThreadPool::chunk_range(total, chunks, c);
        EXPECT_EQ(begin, previous_end);  // contiguous, in order
        previous_end = end;
        for (std::size_t i = begin; i < end; ++i) covered[i] += 1;
      }
      EXPECT_EQ(previous_end, total);
      for (std::size_t i = 0; i < total; ++i) EXPECT_EQ(covered[i], 1);
    }
  }
}

TEST(ThreadPoolChunkTest, ParallelForChunksRunsEveryChunkExactlyOnce) {
  sfl::util::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.parallel_for_chunks(257, 8, [&](std::size_t /*chunk*/, std::size_t begin,
                                       std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
  // Re-entrant second loop on the same pool works (generation tracking).
  std::atomic<int> total{0};
  pool.parallel_for_chunks(100, 16, [&](std::size_t, std::size_t begin,
                                        std::size_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 100);
}

}  // namespace
}  // namespace sfl::auction
