// Zero-allocation regression for the steady-state round pipeline.
//
// This binary replaces the global operator new/delete with counting
// versions. After a warm-up phase (scratch buffers grown, thread pool
// spawned, result capacity established), a full auction round — scoring,
// top-m selection, critical payments, result publication, and settlement —
// must perform ZERO heap allocations, serial and sharded alike. A
// regression here silently reintroduces per-round allocator traffic at
// million-client scale, which is exactly what RoundScratch exists to
// prevent.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "auction/round_scratch.h"
#include "auction/sharded_wdp.h"
#include "core/long_term_online_vcg.h"
#include "util/rng.h"

namespace {

std::atomic<std::size_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sfl::auction {
namespace {

/// Rebuilds the slate in place (capacity reuse) with fresh bids, the way
/// the orchestrator's round loop does.
void refill_batch(CandidateBatch& batch, std::size_t n, sfl::util::Rng& rng) {
  batch.clear();
  for (std::size_t i = 0; i < n; ++i) {
    batch.emplace(i, rng.uniform(0.5, 5.0), rng.uniform(0.1, 3.0), 1.0);
  }
}

TEST(RoundScratchAllocTest, EngineRoundIsAllocationFreeAfterWarmup) {
  constexpr std::size_t kClients = 5000;
  constexpr std::size_t kWinners = 10;
  const ScoreWeights weights{.value_weight = 10.0, .bid_weight = 12.5};
  sfl::util::Rng rng(77);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    const ShardedWdp engine{ShardedWdpConfig{.shards = shards}};
    CandidateBatch batch;
    batch.reserve(kClients);
    RoundScratch scratch;

    // Warm-up: grows every buffer (and spawns the shared pool for the
    // sharded variant).
    for (int round = 0; round < 3; ++round) {
      refill_batch(batch, kClients, rng);
      engine.run_round(batch, weights, kWinners, {}, scratch);
    }

    // The warm-up must have gone through the counting operator new — a zero
    // count here would mean the override is not linked and the test is
    // vacuous.
    ASSERT_GT(g_allocations.load(), 0u);

    const std::size_t before = g_allocations.load();
    for (int round = 0; round < 10; ++round) {
      refill_batch(batch, kClients, rng);
      engine.run_round(batch, weights, kWinners, {}, scratch);
    }
    const std::size_t after = g_allocations.load();
    EXPECT_EQ(after - before, 0u)
        << "shards=" << shards << ": steady-state engine rounds allocated";
  }
}

TEST(RoundScratchAllocTest, SharedScratchMakesFreshMechanismsStartWarm) {
  // Multi-mechanism comparison runs lease ONE RoundScratch for the whole
  // roster (bench_common.h's ScratchPool): after any mechanism has warmed
  // it, a freshly constructed mechanism's first round must not pay the
  // buffer-growth allocations again. A private-scratch mechanism on the
  // same workload DOES allocate — that contrast keeps this test
  // non-vacuous.
  constexpr std::size_t kClients = 2000;
  sfl::util::Rng rng(79);
  CandidateBatch batch;
  batch.reserve(kClients);
  RoundContext context;
  context.max_winners = 8;

  RoundScratch shared;
  sfl::core::LtoVcgConfig config;
  config.v_weight = 10.0;
  config.per_round_budget = 5.0;
  config.shards = 1;
  config.shared_scratch = &shared;

  // Warm the pooled scratch through a first mechanism (several rounds so
  // every buffer reaches steady capacity).
  {
    sfl::core::LongTermOnlineVcgMechanism warmup(config);
    MechanismResult outcome;
    for (std::size_t round = 0; round < 3; ++round) {
      context.round = round;
      refill_batch(batch, kClients, rng);
      warmup.run_round_into(batch, context, outcome);
    }
  }

  // A brand-new mechanism sharing the warmed scratch: its FIRST round may
  // only pay the O(max_winners) mechanism-local winner-cache growth (a
  // handful of allocations), never the O(n) scratch growth, and every
  // round after that must allocate nothing.
  sfl::core::LongTermOnlineVcgMechanism fresh(config);
  MechanismResult outcome;
  outcome.winners.reserve(context.max_winners);
  outcome.payments.reserve(context.max_winners);
  refill_batch(batch, kClients, rng);
  const std::size_t first_before = g_allocations.load();
  context.round = 0;
  fresh.run_round_into(batch, context, outcome);
  const std::size_t fresh_first_round = g_allocations.load() - first_before;

  const std::size_t steady_before = g_allocations.load();
  for (std::size_t round = 1; round < 6; ++round) {
    context.round = round;
    fresh.run_round_into(batch, context, outcome);
  }
  EXPECT_EQ(g_allocations.load() - steady_before, 0u)
      << "a fresh mechanism on a warmed shared scratch allocated";

  // Contrast: the same construction with a private scratch regrows every
  // O(n) buffer on its first round — the pooled variant must be far below
  // it (and without this check the steady-state assertion could pass
  // vacuously).
  config.shared_scratch = nullptr;
  sfl::core::LongTermOnlineVcgMechanism isolated(config);
  const std::size_t isolated_before = g_allocations.load();
  isolated.run_round_into(batch, context, outcome);
  const std::size_t isolated_first_round =
      g_allocations.load() - isolated_before;
  EXPECT_GT(isolated_first_round, 0u)
      << "private-scratch warm-up no longer allocates; test is vacuous";
  EXPECT_LT(fresh_first_round * 2, isolated_first_round)
      << "shared scratch no longer removes the warm-up growth (pooled "
      << fresh_first_round << " vs private " << isolated_first_round << ")";
}

TEST(RoundScratchAllocTest, LtoMechanismRoundAndSettleAreAllocationFree) {
  constexpr std::size_t kClients = 2000;
  sfl::core::LtoVcgConfig config;
  config.v_weight = 10.0;
  config.per_round_budget = 5.0;
  config.energy_rates.assign(kClients, 0.5);  // paced: Z queues + penalties on
  config.shards = 1;
  sfl::core::LongTermOnlineVcgMechanism mechanism(config);

  RoundContext context;
  context.max_winners = 8;
  sfl::util::Rng rng(78);
  CandidateBatch batch;
  batch.reserve(kClients);
  MechanismResult outcome;
  RoundSettlement settlement;

  const auto run_one_round = [&](std::size_t round) {
    context.round = round;
    refill_batch(batch, kClients, rng);
    outcome.winners.clear();
    outcome.payments.clear();
    mechanism.run_round_into(batch, context, outcome);
    settlement.round = round;
    settlement.total_payment = outcome.total_payment();
    settlement.winners.clear();
    for (std::size_t w = 0; w < outcome.winners.size(); ++w) {
      settlement.winners.push_back(
          WinnerSettlement{.client = outcome.winners[w],
                           .bid = 0.0,
                           .payment = outcome.payments[w],
                           .energy_cost = 1.0,
                           .dropped = false});
    }
    mechanism.settle(settlement);
  };

  for (std::size_t round = 0; round < 3; ++round) run_one_round(round);
  // settlement.winners capacity may still be below the worst case; reserve
  // the cap the way the orchestrator's reused buffers end up.
  settlement.winners.reserve(context.max_winners);
  outcome.winners.reserve(context.max_winners);
  outcome.payments.reserve(context.max_winners);

  const std::size_t before = g_allocations.load();
  for (std::size_t round = 3; round < 13; ++round) run_one_round(round);
  const std::size_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "steady-state LTO rounds (run_round_into + settle) allocated";
}

}  // namespace
}  // namespace sfl::auction
