// Property tests for the incentive guarantees.
//
// The affine-maximizer top-m rule with critical payments must be
// dominant-strategy incentive compatible (DSIC): no client, whatever its
// true cost and whatever the other bids, queue weights, or penalties, can
// gain by misreporting. These suites sweep randomized instances
// (parameterized by seed) and check DSIC, allocation monotonicity, the
// critical-bid boundary, and — as a contrast — that pay-as-bid is
// manipulable.
#include <gtest/gtest.h>

#include "auction/baselines.h"
#include "auction/payments.h"
#include "auction/random_instance.h"
#include "auction/winner_determination.h"
#include "util/rng.h"

namespace sfl::auction {
namespace {

struct TruthfulRunOutcome {
  bool won = false;
  double utility = 0.0;  ///< payment - true_cost if won, else 0
};

/// Runs the affine-maximizer auction where client `target` bids `bid` and
/// everyone else bids their instance bid; returns target's realized utility
/// against `true_cost`.
TruthfulRunOutcome run_with_bid(const RandomInstance& instance,
                                const ScoreWeights& weights, std::size_t m,
                                std::size_t target, double bid,
                                double true_cost) {
  std::vector<Candidate> candidates = instance.candidates;
  candidates[target].bid = bid;
  const Allocation alloc = select_top_m(candidates, weights, m, instance.penalties);
  TruthfulRunOutcome outcome;
  for (std::size_t k = 0; k < alloc.selected.size(); ++k) {
    if (alloc.selected[k] != target) continue;
    const auto payments =
        critical_payments(candidates, weights, m, alloc, instance.penalties);
    outcome.won = true;
    outcome.utility = payments[k] - true_cost;
  }
  return outcome;
}

class TruthfulnessSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TruthfulnessSweep, MisreportingNeverBeatsTruthfulBidding) {
  sfl::util::Rng rng(GetParam() * 7919 + 13);
  for (int trial = 0; trial < 20; ++trial) {
    RandomInstanceSpec spec;
    spec.num_candidates = 2 + rng.uniform_index(12);
    spec.penalty_hi = trial % 2 == 0 ? 0.0 : 1.5;
    const RandomInstance instance = make_random_instance(spec, rng);
    const ScoreWeights weights = make_random_weights(rng);
    const std::size_t m = 1 + rng.uniform_index(spec.num_candidates);

    for (std::size_t target = 0; target < instance.candidates.size(); ++target) {
      const double true_cost = instance.candidates[target].bid;
      const TruthfulRunOutcome truthful =
          run_with_bid(instance, weights, m, target, true_cost, true_cost);
      // IR at truth: winning utility is never negative.
      EXPECT_GE(truthful.utility, -1e-9);

      for (const double factor :
           {0.1, 0.25, 0.5, 0.8, 0.95, 1.05, 1.3, 1.8, 2.5, 4.0}) {
        const TruthfulRunOutcome misreport = run_with_bid(
            instance, weights, m, target, factor * true_cost, true_cost);
        EXPECT_LE(misreport.utility, truthful.utility + 1e-9)
            << "target " << target << " factor " << factor << " trial " << trial;
      }
    }
  }
}

TEST_P(TruthfulnessSweep, AllocationIsMonotoneInEachBid) {
  sfl::util::Rng rng(GetParam() * 104729 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    RandomInstanceSpec spec;
    spec.num_candidates = 2 + rng.uniform_index(10);
    spec.penalty_hi = trial % 2 == 0 ? 0.0 : 1.0;
    const RandomInstance instance = make_random_instance(spec, rng);
    const ScoreWeights weights = make_random_weights(rng);
    const std::size_t m = 1 + rng.uniform_index(spec.num_candidates);

    for (std::size_t target = 0; target < instance.candidates.size(); ++target) {
      const double original = instance.candidates[target].bid;
      const bool wins_now = run_with_bid(instance, weights, m, target, original,
                                         original)
                                .won;
      if (wins_now) {
        // Lowering the bid must preserve the win.
        for (const double factor : {0.7, 0.4, 0.1}) {
          EXPECT_TRUE(run_with_bid(instance, weights, m, target,
                                   factor * original, original)
                          .won)
              << "lowering a winning bid lost, trial " << trial;
        }
      } else {
        // Raising the bid must preserve the loss.
        for (const double factor : {1.5, 3.0, 10.0}) {
          EXPECT_FALSE(run_with_bid(instance, weights, m, target,
                                    factor * original, original)
                           .won)
              << "raising a losing bid won, trial " << trial;
        }
      }
    }
  }
}

TEST_P(TruthfulnessSweep, CriticalPaymentIsTheWinLoseBoundary) {
  sfl::util::Rng rng(GetParam() * 31337 + 5);
  for (int trial = 0; trial < 20; ++trial) {
    RandomInstanceSpec spec;
    spec.num_candidates = 3 + rng.uniform_index(10);
    const RandomInstance instance = make_random_instance(spec, rng);
    const ScoreWeights weights = make_random_weights(rng);
    const std::size_t m = 1 + rng.uniform_index(spec.num_candidates - 1);

    const Allocation alloc =
        select_top_m(instance.candidates, weights, m, instance.penalties);
    const auto payments = critical_payments(instance.candidates, weights, m,
                                            alloc, instance.penalties);
    for (std::size_t k = 0; k < alloc.selected.size(); ++k) {
      const std::size_t target = alloc.selected[k];
      const double critical = payments[k];
      const double true_cost = instance.candidates[target].bid;
      if (critical < 1e-6) continue;  // degenerate boundary, skip
      // Slightly below the critical bid: still wins.
      const double below = std::max(critical * (1.0 - 1e-6) - 1e-9, 0.0);
      EXPECT_TRUE(run_with_bid(instance, weights, m, target, below, true_cost).won)
          << "trial " << trial;
      // Slightly above: loses.
      EXPECT_FALSE(run_with_bid(instance, weights, m, target,
                                critical * (1.0 + 1e-6) + 1e-9, true_cost)
                       .won)
          << "trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, TruthfulnessSweep,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(PayAsBidManipulabilityTest, OverbiddingProfitsExistSomewhere) {
  // Pay-as-bid is not truthful: a winner can often raise its bid toward the
  // critical threshold and pocket the difference. Verify a profitable
  // deviation exists in a reasonable fraction of random markets.
  sfl::util::Rng rng(404);
  int markets_with_profitable_deviation = 0;
  const int markets = 50;
  for (int trial = 0; trial < markets; ++trial) {
    RandomInstanceSpec spec;
    spec.num_candidates = 6;
    const RandomInstance instance = make_random_instance(spec, rng);
    const std::size_t m = 2;
    const ScoreWeights weights{1.0, 1.0};

    PayAsBidGreedyMechanism mech;
    RoundContext ctx;
    ctx.max_winners = m;

    const MechanismResult truthful = mech.run_round(instance.candidates, ctx);
    bool found = false;
    for (std::size_t target = 0; target < instance.candidates.size() && !found;
         ++target) {
      const double true_cost = instance.candidates[target].bid;
      const double truthful_utility =
          truthful.won(target) ? truthful.payment_for(target) - true_cost : 0.0;
      for (const double factor : {1.2, 1.5, 2.0}) {
        std::vector<Candidate> shaded = instance.candidates;
        shaded[target].bid = factor * true_cost;
        const MechanismResult deviated = mech.run_round(shaded, ctx);
        const double deviated_utility =
            deviated.won(target) ? deviated.payment_for(target) - true_cost : 0.0;
        if (deviated_utility > truthful_utility + 1e-9) {
          found = true;
          break;
        }
      }
    }
    if (found) ++markets_with_profitable_deviation;
    (void)weights;
  }
  EXPECT_GT(markets_with_profitable_deviation, markets / 2);
}

TEST(FixedPriceTruthfulnessTest, AcceptanceAtPostedPriceIsDominant) {
  // Under a posted price, reporting any bid <= price yields the same posted
  // payment, and reporting above the price loses a profitable trade (when
  // cost <= price). Check on random instances that no report beats bidding
  // the true cost.
  sfl::util::Rng rng(505);
  FixedPriceMechanism mech(1.5);
  RoundContext ctx;
  ctx.max_winners = 100;
  for (int trial = 0; trial < 100; ++trial) {
    RandomInstanceSpec spec;
    spec.num_candidates = 8;
    const RandomInstance instance = make_random_instance(spec, rng);
    for (std::size_t target = 0; target < instance.candidates.size(); ++target) {
      const double true_cost = instance.candidates[target].bid;
      const auto utility_with_bid = [&](double bid) {
        std::vector<Candidate> candidates = instance.candidates;
        candidates[target].bid = bid;
        const MechanismResult result = mech.run_round(candidates, ctx);
        return result.won(target) ? result.payment_for(target) - true_cost : 0.0;
      };
      const double truthful_utility = utility_with_bid(true_cost);
      for (const double factor : {0.3, 0.9, 1.1, 2.0}) {
        EXPECT_LE(utility_with_bid(factor * true_cost), truthful_utility + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace sfl::auction
