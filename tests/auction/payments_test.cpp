#include "auction/payments.h"

#include <gtest/gtest.h>

#include "auction/random_instance.h"
#include "auction/winner_determination.h"
#include "util/rng.h"

namespace sfl::auction {
namespace {

TEST(CriticalPaymentsTest, SlotCompetitionSetsThreshold) {
  // Two candidates, one slot. Winner's payment is set by the loser's score:
  // v0=5,b0=1 -> phi=4; v1=3,b1=2 -> phi=1. Critical bid: 5 - 1 = 4.
  std::vector<Candidate> candidates{
      Candidate{.id = 0, .value = 5.0, .bid = 1.0, .energy_cost = 1.0},
      Candidate{.id = 1, .value = 3.0, .bid = 2.0, .energy_cost = 1.0}};
  const ScoreWeights w{1.0, 1.0};
  const Allocation alloc = select_top_m(candidates, w, 1);
  ASSERT_EQ(alloc.selected, (std::vector<std::size_t>{0}));
  const auto payments = critical_payments(candidates, w, 1, alloc);
  ASSERT_EQ(payments.size(), 1u);
  EXPECT_DOUBLE_EQ(payments[0], 4.0);
}

TEST(CriticalPaymentsTest, SlackSlateUsesZeroThreshold) {
  // One candidate, many slots: critical bid is where score hits zero (= value
  // under unit weights).
  std::vector<Candidate> candidates{
      Candidate{.id = 0, .value = 5.0, .bid = 1.0, .energy_cost = 1.0}};
  const ScoreWeights w{1.0, 1.0};
  const Allocation alloc = select_top_m(candidates, w, 3);
  const auto payments = critical_payments(candidates, w, 3, alloc);
  ASSERT_EQ(payments.size(), 1u);
  EXPECT_DOUBLE_EQ(payments[0], 5.0);
}

TEST(CriticalPaymentsTest, WeightsScalePayments) {
  // V=2, bid weight 4: phi0 = 2*5 - 4*1 = 6, phi1 = 2*3 - 4*0.5 = 4.
  // One slot: p0 = (2*5 - 4) / 4 = 1.5.
  std::vector<Candidate> candidates{
      Candidate{.id = 0, .value = 5.0, .bid = 1.0, .energy_cost = 1.0},
      Candidate{.id = 1, .value = 3.0, .bid = 0.5, .energy_cost = 1.0}};
  const ScoreWeights w{2.0, 4.0};
  const Allocation alloc = select_top_m(candidates, w, 1);
  ASSERT_EQ(alloc.selected, (std::vector<std::size_t>{0}));
  const auto payments = critical_payments(candidates, w, 1, alloc);
  EXPECT_DOUBLE_EQ(payments[0], 1.5);
}

TEST(CriticalPaymentsTest, PenaltiesReducePayments) {
  std::vector<Candidate> candidates{
      Candidate{.id = 0, .value = 5.0, .bid = 1.0, .energy_cost = 1.0}};
  const ScoreWeights w{1.0, 1.0};
  const Penalties penalties{2.0};
  const Allocation alloc = select_top_m(candidates, w, 1, penalties);
  ASSERT_EQ(alloc.selected.size(), 1u);
  const auto payments = critical_payments(candidates, w, 1, alloc, penalties);
  EXPECT_DOUBLE_EQ(payments[0], 3.0);  // (5 - 2 - 0) / 1
}

TEST(CriticalPaymentsTest, PaymentsAlwaysCoverWinningBids) {
  sfl::util::Rng rng(200);
  for (int trial = 0; trial < 300; ++trial) {
    RandomInstanceSpec spec;
    spec.num_candidates = 1 + rng.uniform_index(15);
    spec.penalty_hi = trial % 3 == 0 ? 1.5 : 0.0;
    const RandomInstance instance = make_random_instance(spec, rng);
    const ScoreWeights weights = make_random_weights(rng);
    const std::size_t m = 1 + rng.uniform_index(spec.num_candidates);
    const Allocation alloc =
        select_top_m(instance.candidates, weights, m, instance.penalties);
    const auto payments =
        critical_payments(instance.candidates, weights, m, alloc,
                          instance.penalties);
    for (std::size_t k = 0; k < alloc.selected.size(); ++k) {
      EXPECT_GE(payments[k], instance.candidates[alloc.selected[k]].bid - 1e-9)
          << "trial " << trial;
    }
  }
}

TEST(VcgPaymentsTest, EqualsCriticalValueOnModularObjective) {
  // Weighted-VCG externality and Myerson critical value must coincide for
  // the affine-maximizer top-m rule — the theoretical identity the E12
  // ablation relies on.
  sfl::util::Rng rng(201);
  const WdpSolver solver = [](const std::vector<Candidate>& c,
                              const ScoreWeights& w, std::size_t m,
                              const Penalties& p) {
    return select_top_m(c, w, m, p);
  };
  for (int trial = 0; trial < 300; ++trial) {
    RandomInstanceSpec spec;
    spec.num_candidates = 2 + rng.uniform_index(14);
    spec.penalty_hi = trial % 2 == 0 ? 0.0 : 2.0;
    const RandomInstance instance = make_random_instance(spec, rng);
    const ScoreWeights weights = make_random_weights(rng);
    const std::size_t m = 1 + rng.uniform_index(spec.num_candidates);
    const Allocation alloc =
        select_top_m(instance.candidates, weights, m, instance.penalties);
    const auto critical = critical_payments(instance.candidates, weights, m,
                                            alloc, instance.penalties);
    const auto vcg = vcg_payments(instance.candidates, weights, m, alloc, solver,
                                  instance.penalties);
    ASSERT_EQ(critical.size(), vcg.size());
    for (std::size_t k = 0; k < critical.size(); ++k) {
      EXPECT_NEAR(critical[k], vcg[k], 1e-9) << "trial " << trial;
    }
  }
}

TEST(VcgPaymentsTest, RequiresSolver) {
  const std::vector<Candidate> candidates{
      Candidate{.id = 0, .value = 2.0, .bid = 1.0, .energy_cost = 1.0}};
  const Allocation alloc = select_top_m(candidates, {1.0, 1.0}, 1);
  EXPECT_THROW(
      (void)vcg_payments(candidates, {1.0, 1.0}, 1, alloc, WdpSolver{}),
      std::invalid_argument);
}

TEST(MakeResultTest, MapsIndicesToClientIds) {
  std::vector<Candidate> candidates{
      Candidate{.id = 17, .value = 5.0, .bid = 1.0, .energy_cost = 1.0},
      Candidate{.id = 42, .value = 4.0, .bid = 1.0, .energy_cost = 1.0}};
  Allocation alloc;
  alloc.selected = {1};
  const MechanismResult result = make_result(candidates, alloc, {2.5});
  EXPECT_EQ(result.winners, (std::vector<ClientId>{42}));
  EXPECT_DOUBLE_EQ(result.total_payment(), 2.5);
  EXPECT_TRUE(result.won(42));
  EXPECT_FALSE(result.won(17));
  EXPECT_DOUBLE_EQ(result.payment_for(42), 2.5);
  EXPECT_DOUBLE_EQ(result.payment_for(17), 0.0);
  EXPECT_THROW((void)make_result(candidates, alloc, {1.0, 2.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace sfl::auction
