#include "auction/winner_determination.h"

#include <gtest/gtest.h>
#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>

#include "auction/random_instance.h"
#include "auction/valuation.h"
#include "util/rng.h"

namespace sfl::auction {
namespace {

std::vector<Candidate> three_candidates() {
  // scores with unit weights: 3-1=2, 5-2=3, 1-2=-1
  return {Candidate{.id = 0, .value = 3.0, .bid = 1.0, .energy_cost = 1.0},
          Candidate{.id = 1, .value = 5.0, .bid = 2.0, .energy_cost = 1.0},
          Candidate{.id = 2, .value = 1.0, .bid = 2.0, .energy_cost = 1.0}};
}

TEST(SelectTopMTest, PicksPositiveScoresHighestFirst) {
  const ScoreWeights w{1.0, 1.0};
  const Allocation alloc = select_top_m(three_candidates(), w, 10);
  EXPECT_EQ(alloc.selected, (std::vector<std::size_t>{0, 1}));
  EXPECT_DOUBLE_EQ(alloc.total_score, 5.0);
}

TEST(SelectTopMTest, CardinalityCapBinds) {
  const ScoreWeights w{1.0, 1.0};
  const Allocation alloc = select_top_m(three_candidates(), w, 1);
  EXPECT_EQ(alloc.selected, (std::vector<std::size_t>{1}));
  EXPECT_DOUBLE_EQ(alloc.total_score, 3.0);
}

TEST(SelectTopMTest, AllNegativeScoresSelectNobody) {
  std::vector<Candidate> candidates{
      Candidate{.id = 0, .value = 1.0, .bid = 5.0, .energy_cost = 1.0},
      Candidate{.id = 1, .value = 0.5, .bid = 2.0, .energy_cost = 1.0}};
  const Allocation alloc = select_top_m(candidates, {1.0, 1.0}, 5);
  EXPECT_TRUE(alloc.selected.empty());
  EXPECT_DOUBLE_EQ(alloc.total_score, 0.0);
}

TEST(SelectTopMTest, WeightsChangeTheRanking) {
  // With V=1, Q=9 (bid weight 10), candidate 0 (cheap) beats candidate 1.
  std::vector<Candidate> candidates{
      Candidate{.id = 0, .value = 30.0, .bid = 0.1, .energy_cost = 1.0},
      Candidate{.id = 1, .value = 50.0, .bid = 3.0, .energy_cost = 1.0}};
  const Allocation cheap_wins = select_top_m(candidates, {1.0, 10.0}, 1);
  EXPECT_EQ(cheap_wins.selected, (std::vector<std::size_t>{0}));
  const Allocation value_wins = select_top_m(candidates, {1.0, 1.0}, 1);
  EXPECT_EQ(value_wins.selected, (std::vector<std::size_t>{1}));
}

TEST(SelectTopMTest, PenaltiesSuppressCandidates) {
  const ScoreWeights w{1.0, 1.0};
  const Penalties penalties{0.0, 10.0, 0.0};  // kill candidate 1
  const Allocation alloc = select_top_m(three_candidates(), w, 10, penalties);
  EXPECT_EQ(alloc.selected, (std::vector<std::size_t>{0}));
}

TEST(SelectTopMTest, Validation) {
  EXPECT_THROW((void)select_top_m(three_candidates(), {1.0, 0.0}, 1),
               std::invalid_argument);
  EXPECT_THROW((void)select_top_m(three_candidates(), {1.0, 1.0}, 1, {0.0}),
               std::invalid_argument);
  std::vector<Candidate> negative{{.id = 0, .value = -1.0, .bid = 0.0,
                                   .energy_cost = 1.0}};
  EXPECT_THROW((void)select_top_m(negative, {1.0, 1.0}, 1), std::invalid_argument);
}

TEST(SelectTopMTest, TiesBreakByClientIdNotSlateOrder) {
  // Three equal-score candidates whose ids arrive out of slate order: the
  // winner under a cap of 2 must be the two smallest ClientIds, regardless
  // of where they sit in the vector.
  std::vector<Candidate> candidates{
      Candidate{.id = 9, .value = 2.0, .bid = 1.0, .energy_cost = 1.0},
      Candidate{.id = 3, .value = 2.0, .bid = 1.0, .energy_cost = 1.0},
      Candidate{.id = 5, .value = 2.0, .bid = 1.0, .energy_cost = 1.0}};
  const Allocation alloc = select_top_m(candidates, {1.0, 1.0}, 2);
  // Indices 1 (id 3) and 2 (id 5) win; index 0 (id 9) loses the tie.
  EXPECT_EQ(alloc.selected, (std::vector<std::size_t>{1, 2}));

  // Permuting the slate must not change the winning id set.
  std::vector<Candidate> permuted{candidates[2], candidates[0], candidates[1]};
  const Allocation alloc_permuted = select_top_m(permuted, {1.0, 1.0}, 2);
  std::vector<ClientId> ids;
  for (const std::size_t index : alloc_permuted.selected) {
    ids.push_back(permuted[index].id);
  }
  EXPECT_EQ(ids, (std::vector<ClientId>{5, 3}));  // selected sorted by index
}

TEST(SelectTopMTest, PartialSelectionMatchesFullSortOnRandomInstances) {
  // The nth_element path must agree with a reference full sort on the same
  // (score desc, id asc, index asc) order, including at m >= n and m = 0.
  sfl::util::Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    RandomInstanceSpec spec;
    spec.num_candidates = 1 + rng.uniform_index(40);
    const auto instance = make_random_instance(spec, rng);
    const ScoreWeights weights = make_random_weights(rng);
    const std::size_t m = rng.uniform_index(instance.candidates.size() + 3);

    std::vector<double> scores(instance.candidates.size());
    for (std::size_t i = 0; i < instance.candidates.size(); ++i) {
      scores[i] = score(instance.candidates[i], weights);
    }
    std::vector<std::size_t> order(instance.candidates.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (scores[a] != scores[b]) return scores[a] > scores[b];
      if (instance.candidates[a].id != instance.candidates[b].id) {
        return instance.candidates[a].id < instance.candidates[b].id;
      }
      return a < b;
    });
    Allocation reference;
    for (const std::size_t index : order) {
      if (reference.selected.size() >= m) break;
      if (scores[index] <= 0.0) break;
      reference.selected.push_back(index);
      reference.total_score += scores[index];
    }
    std::sort(reference.selected.begin(), reference.selected.end());

    const Allocation alloc = select_top_m(instance.candidates, weights, m);
    EXPECT_EQ(alloc.selected, reference.selected) << "trial " << trial;
    EXPECT_DOUBLE_EQ(alloc.total_score, reference.total_score);
  }
}

TEST(SelectExhaustiveTest, MatchesTopMOnModularObjective) {
  sfl::util::Rng rng(100);
  for (int trial = 0; trial < 200; ++trial) {
    RandomInstanceSpec spec;
    spec.num_candidates = 1 + rng.uniform_index(12);
    spec.penalty_hi = trial % 2 == 0 ? 0.0 : 2.0;
    const RandomInstance instance = make_random_instance(spec, rng);
    const ScoreWeights weights = make_random_weights(rng);
    const std::size_t m = 1 + rng.uniform_index(spec.num_candidates);

    const Allocation greedy =
        select_top_m(instance.candidates, weights, m, instance.penalties);
    const Allocation oracle =
        select_exhaustive(instance.candidates, weights, m, instance.penalties);
    EXPECT_NEAR(greedy.total_score, oracle.total_score, 1e-9)
        << "trial " << trial;
    EXPECT_EQ(greedy.selected, oracle.selected) << "trial " << trial;
  }
}

TEST(SelectExhaustiveTest, RefusesHugeInstances) {
  std::vector<Candidate> many(25);
  for (std::size_t i = 0; i < many.size(); ++i) {
    many[i] = Candidate{.id = i, .value = 1.0, .bid = 0.5, .energy_cost = 1.0};
  }
  EXPECT_THROW((void)select_exhaustive(many, {1.0, 1.0}, 3),
               std::invalid_argument);
}

TEST(SelectKnapsackTest, RespectsBudgetAndBeatsNothing) {
  sfl::util::Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    RandomInstanceSpec spec;
    spec.num_candidates = 1 + rng.uniform_index(10);
    const RandomInstance instance = make_random_instance(spec, rng);
    const ScoreWeights weights{1.0, 1.0};
    const double budget = rng.uniform(0.5, 6.0);
    const Allocation alloc =
        select_knapsack(instance.candidates, weights, budget, 5, 0.01);
    double bid_sum = 0.0;
    for (const std::size_t i : alloc.selected) {
      bid_sum += instance.candidates[i].bid;
    }
    // Ceil weights over-count bids, so feasibility is epsilon-tight — the
    // DP never spends more real money than the budget.
    EXPECT_LE(bid_sum, budget + 1e-9);
    EXPECT_LE(alloc.selected.size(), 5u);
    EXPECT_GE(alloc.total_score, 0.0);
  }
}

TEST(SelectKnapsackTest, ExactGridBudgetIsTight) {
  // Bids on the DP grid that exactly fill the budget must ALL be selected —
  // the discretization introduces no off-by-one at the boundary.
  const ScoreWeights w{1.0, 0.1};  // small bid weight: all scores positive
  std::vector<Candidate> candidates{
      Candidate{.id = 0, .value = 3.0, .bid = 0.40, .energy_cost = 1.0},
      Candidate{.id = 1, .value = 2.0, .bid = 0.35, .energy_cost = 1.0},
      Candidate{.id = 2, .value = 1.0, .bid = 0.25, .energy_cost = 1.0}};
  const Allocation full =
      select_knapsack(candidates, w, /*budget=*/1.0, 5, /*resolution=*/0.05);
  EXPECT_EQ(full.selected, (std::vector<std::size_t>{0, 1, 2}));

  // One grid step over budget: the cheapest-to-drop candidate is excluded.
  candidates[2].bid = 0.30;  // total now 1.05 > 1.0
  const Allocation over = select_knapsack(candidates, w, 1.0, 5, 0.05);
  EXPECT_EQ(over.selected, (std::vector<std::size_t>{0, 1}));
}

TEST(SelectKnapsackTest, ZeroBidItemSelectableBelowResolution) {
  // budget < resolution discretizes to capacity 0 — but a free (zero-bid)
  // item costs nothing and must still win. The old capacity==0 early return
  // rejected it.
  std::vector<Candidate> candidates{
      Candidate{.id = 0, .value = 2.0, .bid = 0.0, .energy_cost = 1.0},
      Candidate{.id = 1, .value = 5.0, .bid = 1.0, .energy_cost = 1.0}};
  const Allocation alloc =
      select_knapsack(candidates, {1.0, 1.0}, /*budget=*/0.01, 5,
                      /*resolution=*/0.05);
  EXPECT_EQ(alloc.selected, (std::vector<std::size_t>{0}));
  EXPECT_DOUBLE_EQ(alloc.total_score, 2.0);
}

TEST(SelectKnapsackTest, MatchesExhaustiveOnSmallInstances) {
  // Exhaustive search restricted to budget-feasible subsets is the oracle.
  sfl::util::Rng rng(102);
  for (int trial = 0; trial < 60; ++trial) {
    RandomInstanceSpec spec;
    spec.num_candidates = 1 + rng.uniform_index(8);
    // Snap bids to the DP grid so discretization is exact.
    RandomInstance instance = make_random_instance(spec, rng);
    for (auto& c : instance.candidates) {
      c.bid = std::round(c.bid * 20.0) / 20.0;
    }
    const ScoreWeights weights{1.0, 1.0};
    const double budget = std::round(rng.uniform(0.5, 5.0) * 20.0) / 20.0;
    const std::size_t m = 1 + rng.uniform_index(spec.num_candidates);

    const Allocation dp =
        select_knapsack(instance.candidates, weights, budget, m, 0.05);

    // Brute force over subsets.
    const std::size_t n = instance.candidates.size();
    double best = 0.0;
    for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
      if (static_cast<std::size_t>(std::popcount(mask)) > m) continue;
      double bid_sum = 0.0;
      double score_sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if ((mask >> i) & 1ULL) {
          bid_sum += instance.candidates[i].bid;
          score_sum += score(instance.candidates[i], weights);
        }
      }
      if (bid_sum <= budget + 1e-9) best = std::max(best, score_sum);
    }
    EXPECT_NEAR(dp.total_score, best, 1e-6) << "trial " << trial;
  }
}

TEST(SelectKnapsackTest, ZeroBudgetSelectsNobody) {
  const Allocation alloc =
      select_knapsack(three_candidates(), {1.0, 1.0}, 0.0, 5, 0.01);
  EXPECT_TRUE(alloc.selected.empty());
}

TEST(SelectGreedyConcaveTest, DiminishingReturnsLimitSelection) {
  const ConcaveValuation valuation(4.0);
  // Five identical candidates with mass 2 and bid 1: marginal value of the
  // k-th addition shrinks as log(1 + 2k) - log(1 + 2(k-1)).
  std::vector<Candidate> candidates(5);
  for (std::size_t i = 0; i < 5; ++i) {
    candidates[i] = Candidate{.id = i, .value = 2.0, .bid = 1.0,
                              .energy_cost = 1.0};
  }
  const Allocation alloc =
      select_greedy_concave(candidates, valuation, {1.0, 1.0}, 5);
  EXPECT_GE(alloc.selected.size(), 1u);
  EXPECT_LT(alloc.selected.size(), 5u);  // marginal value falls below bid
  EXPECT_GT(alloc.total_score, 0.0);
}

TEST(SelectGreedyConcaveTest, EmptyWhenBidsExceedAnyMarginal) {
  const ConcaveValuation valuation(1.0);
  std::vector<Candidate> candidates{
      Candidate{.id = 0, .value = 0.5, .bid = 10.0, .energy_cost = 1.0}};
  const Allocation alloc =
      select_greedy_concave(candidates, valuation, {1.0, 1.0}, 3);
  EXPECT_TRUE(alloc.selected.empty());
}

TEST(ValuationTest, ModularAndConcaveBasics) {
  const ModularValuation modular(2.0);
  EXPECT_DOUBLE_EQ(modular.client_value(3.0, 0.5), 3.0);
  EXPECT_THROW((void)modular.client_value(-1.0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)modular.client_value(1.0, 1.5), std::invalid_argument);
  EXPECT_THROW(ModularValuation(0.0), std::invalid_argument);

  const ConcaveValuation concave(1.0);
  EXPECT_DOUBLE_EQ(concave.set_value(0.0), 0.0);
  EXPECT_GT(concave.marginal_value(0.0, 1.0), concave.marginal_value(5.0, 1.0));
}

TEST(ValuationTest, WelfareAccounting) {
  const auto candidates = three_candidates();
  Allocation alloc;
  alloc.selected = {0, 1};
  EXPECT_DOUBLE_EQ(reported_welfare(candidates, alloc), 5.0);
  const std::vector<double> true_costs{0.5, 2.5, 1.0};
  EXPECT_DOUBLE_EQ(true_welfare(candidates, true_costs, alloc), 5.0);
  EXPECT_THROW((void)true_welfare(candidates, {1.0}, alloc),
               std::invalid_argument);
}

}  // namespace
}  // namespace sfl::auction
