#include "auction/baselines.h"

#include <gtest/gtest.h>

#include <set>

#include "auction/random_instance.h"
#include "util/rng.h"

namespace sfl::auction {
namespace {

RoundContext context_with(std::size_t m, double budget) {
  RoundContext ctx;
  ctx.max_winners = m;
  ctx.per_round_budget = budget;
  return ctx;
}

std::vector<Candidate> market() {
  return {Candidate{.id = 0, .value = 4.0, .bid = 1.0, .energy_cost = 1.0},
          Candidate{.id = 1, .value = 6.0, .bid = 2.0, .energy_cost = 1.0},
          Candidate{.id = 2, .value = 2.0, .bid = 3.0, .energy_cost = 1.0},
          Candidate{.id = 3, .value = 5.0, .bid = 0.5, .energy_cost = 1.0}};
}

TEST(MyopicVcgTest, SelectsWelfareOptimalAndPaysCritical) {
  MyopicVcgMechanism mech;
  // Scores: 3, 4, -1, 4.5 -> two slots pick ids 3 and 1.
  const MechanismResult result = mech.run_round(market(), context_with(2, 100.0));
  const std::set<ClientId> winners(result.winners.begin(), result.winners.end());
  EXPECT_EQ(winners, (std::set<ClientId>{1, 3}));
  // Loser bar: id 0's score = 3. p1 = 6-3 = 3, p3 = 5-3 = 2.
  EXPECT_DOUBLE_EQ(result.payment_for(1), 3.0);
  EXPECT_DOUBLE_EQ(result.payment_for(3), 2.0);
  EXPECT_TRUE(mech.is_truthful());
  EXPECT_EQ(mech.name(), "myopic-vcg");
}

TEST(PayAsBidTest, SameSelectionPaysBids) {
  PayAsBidGreedyMechanism mech;
  const MechanismResult result = mech.run_round(market(), context_with(2, 100.0));
  const std::set<ClientId> winners(result.winners.begin(), result.winners.end());
  EXPECT_EQ(winners, (std::set<ClientId>{1, 3}));
  EXPECT_DOUBLE_EQ(result.payment_for(1), 2.0);
  EXPECT_DOUBLE_EQ(result.payment_for(3), 0.5);
  EXPECT_FALSE(mech.is_truthful());
}

TEST(FixedPriceTest, AcceptsOnlyBidsAtOrBelowPrice) {
  FixedPriceMechanism mech(1.5);
  const MechanismResult result = mech.run_round(market(), context_with(10, 100.0));
  const std::set<ClientId> winners(result.winners.begin(), result.winners.end());
  EXPECT_EQ(winners, (std::set<ClientId>{0, 3}));  // bids 1.0 and 0.5
  for (const double p : result.payments) {
    EXPECT_DOUBLE_EQ(p, 1.5);
  }
}

TEST(FixedPriceTest, CapPrefersHigherValue) {
  FixedPriceMechanism mech(5.0);
  const MechanismResult result = mech.run_round(market(), context_with(2, 100.0));
  const std::set<ClientId> winners(result.winners.begin(), result.winners.end());
  // All four accept at price 5; cap 2 keeps the two highest values (1 and 3).
  EXPECT_EQ(winners, (std::set<ClientId>{1, 3}));
  EXPECT_THROW(FixedPriceMechanism(0.0), std::invalid_argument);
}

TEST(RandomSelectionTest, PaysStipendToExactlyMClients) {
  RandomSelectionMechanism mech(0.7, 99);
  const MechanismResult result = mech.run_round(market(), context_with(3, 100.0));
  EXPECT_EQ(result.winners.size(), 3u);
  const std::set<ClientId> unique(result.winners.begin(), result.winners.end());
  EXPECT_EQ(unique.size(), 3u);
  EXPECT_NEAR(result.total_payment(), 2.1, 1e-12);
}

TEST(RandomSelectionTest, CoversAllClientsOverManyRounds) {
  RandomSelectionMechanism mech(0.0, 7);
  std::set<ClientId> seen;
  for (int round = 0; round < 50; ++round) {
    const MechanismResult result = mech.run_round(market(), context_with(1, 1.0));
    seen.insert(result.winners.begin(), result.winners.end());
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(FirstBestOracleTest, PaysExactlyTheBids) {
  FirstBestOracleMechanism mech;
  const MechanismResult result = mech.run_round(market(), context_with(2, 100.0));
  EXPECT_DOUBLE_EQ(result.payment_for(1), 2.0);
  EXPECT_DOUBLE_EQ(result.payment_for(3), 0.5);
}

TEST(ProportionalShareTest, BudgetFeasibleOnRandomInstances) {
  ProportionalShareMechanism mech;
  sfl::util::Rng rng(300);
  for (int trial = 0; trial < 200; ++trial) {
    RandomInstanceSpec spec;
    spec.num_candidates = 1 + rng.uniform_index(20);
    const RandomInstance instance = make_random_instance(spec, rng);
    const double budget = rng.uniform(0.5, 8.0);
    const MechanismResult result =
        mech.run_round(instance.candidates, context_with(10, budget));
    EXPECT_LE(result.total_payment(), budget + 1e-9) << "trial " << trial;
    // IR: every winner paid at least its bid.
    for (const ClientId id : result.winners) {
      EXPECT_GE(result.payment_for(id), instance.candidates[id].bid - 1e-9);
    }
  }
}

TEST(ProportionalShareTest, CheapestEffectiveClientsWin) {
  ProportionalShareMechanism mech;
  std::vector<Candidate> candidates{
      Candidate{.id = 0, .value = 4.0, .bid = 0.4, .energy_cost = 1.0},  // ratio .1
      Candidate{.id = 1, .value = 4.0, .bid = 4.0, .energy_cost = 1.0},  // ratio 1
  };
  const MechanismResult result =
      mech.run_round(candidates, context_with(10, 2.0));
  EXPECT_TRUE(result.won(0));
  EXPECT_FALSE(result.won(1));
}

TEST(ProportionalShareTest, RequiresFiniteBudget) {
  ProportionalShareMechanism mech;
  RoundContext ctx;  // default budget = infinity
  ctx.max_winners = 3;
  EXPECT_THROW((void)mech.run_round(market(), ctx), std::invalid_argument);
}

TEST(BudgetedOracleTest, SpendsWithinBudgetEveryRound) {
  BudgetedOracleMechanism mech(0.01);
  sfl::util::Rng rng(501);
  for (int trial = 0; trial < 100; ++trial) {
    RandomInstanceSpec spec;
    spec.num_candidates = 1 + rng.uniform_index(12);
    const RandomInstance instance = make_random_instance(spec, rng);
    const double budget = rng.uniform(0.5, 6.0);
    const MechanismResult result =
        mech.run_round(instance.candidates, context_with(5, budget));
    // Pays true costs; the knapsack keeps the sum within budget (up to the
    // DP grid resolution per winner).
    EXPECT_LE(result.total_payment(),
              budget + 0.01 * static_cast<double>(result.winners.size()) + 1e-9);
  }
}

TEST(BudgetedOracleTest, PicksWelfareOptimalBudgetFeasibleSet) {
  BudgetedOracleMechanism mech(0.01);
  // Budget 2: best feasible set is {id 3 (w=4.5, c=0.5), id 0 (w=3, c=1)}
  // with cost 1.5; adding id 1 (c=2) would exceed the budget.
  const MechanismResult result = mech.run_round(market(), context_with(3, 2.0));
  const std::set<ClientId> winners(result.winners.begin(), result.winners.end());
  EXPECT_EQ(winners, (std::set<ClientId>{0, 3}));
  EXPECT_DOUBLE_EQ(result.total_payment(), 1.5);
}

TEST(BudgetedOracleTest, RequiresFiniteBudgetAndValidResolution) {
  EXPECT_THROW(BudgetedOracleMechanism(0.0), std::invalid_argument);
  BudgetedOracleMechanism mech(0.01);
  RoundContext ctx;  // infinite budget
  EXPECT_THROW((void)mech.run_round(market(), ctx), std::invalid_argument);
}

TEST(BaselineNamesAreDistinct, AllMechanisms) {
  MyopicVcgMechanism a;
  PayAsBidGreedyMechanism b;
  FixedPriceMechanism c(1.0);
  RandomSelectionMechanism d(1.0, 1);
  FirstBestOracleMechanism e;
  ProportionalShareMechanism f;
  BudgetedOracleMechanism g;
  const std::set<std::string> names{a.name(), b.name(), c.name(), d.name(),
                                    e.name(), f.name(), g.name()};
  EXPECT_EQ(names.size(), 7u);
}

}  // namespace
}  // namespace sfl::auction
