#include "fl/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "fl/logistic_regression.h"
#include "fl/mlp.h"
#include "util/rng.h"

namespace sfl::fl {
namespace {

TEST(SerializationTest, RoundTripPreservesParametersExactly) {
  sfl::util::Rng rng(1);
  LogisticRegression model(7, 3, 0.0);
  std::vector<double> params(model.parameter_count());
  for (auto& p : params) p = rng.normal(0.0, 3.0);
  params[0] = 1.0 / 3.0;  // non-terminating binary fraction
  model.set_parameters(params);

  std::stringstream buffer;
  save_parameters(model, buffer);

  LogisticRegression restored(7, 3, 0.0);
  load_parameters(restored, buffer);
  EXPECT_EQ(restored.parameters(), params);  // bit-exact round trip
}

TEST(SerializationTest, MlpRoundTrip) {
  sfl::util::Rng rng(2);
  Mlp model(4, 6, 3, rng, 0.0);
  const auto params = model.parameters();
  std::stringstream buffer;
  save_parameters(model, buffer);
  Mlp restored(4, 6, 3, rng, 0.0);  // different random init
  EXPECT_NE(restored.parameters(), params);
  load_parameters(restored, buffer);
  EXPECT_EQ(restored.parameters(), params);
}

TEST(SerializationTest, RejectsWrongMagic) {
  LogisticRegression model(2, 2, 0.0);
  std::stringstream buffer("other-format\n6\n0 0 0 0 0 0\n");
  EXPECT_THROW(load_parameters(model, buffer), std::invalid_argument);
}

TEST(SerializationTest, RejectsCountMismatch) {
  LogisticRegression small(2, 2, 0.0);
  std::stringstream buffer;
  save_parameters(small, buffer);
  LogisticRegression bigger(3, 2, 0.0);
  EXPECT_THROW(load_parameters(bigger, buffer), std::invalid_argument);
}

TEST(SerializationTest, RejectsTruncatedPayload) {
  LogisticRegression model(2, 2, 0.0);
  std::stringstream buffer("sfl-model-v1\n6\n1.0 2.0\n");  // declares 6, has 2
  EXPECT_THROW(load_parameters(model, buffer), std::invalid_argument);
}

TEST(SerializationTest, FileRoundTrip) {
  const std::string path = "/tmp/sfl_serialization_test_model.txt";
  sfl::util::Rng rng(3);
  LogisticRegression model(3, 2, 0.0);
  std::vector<double> params(model.parameter_count());
  for (auto& p : params) p = rng.normal();
  model.set_parameters(params);
  save_parameters_to_file(model, path);

  LogisticRegression restored(3, 2, 0.0);
  load_parameters_from_file(restored, path);
  EXPECT_EQ(restored.parameters(), params);
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileThrows) {
  LogisticRegression model(2, 2, 0.0);
  EXPECT_THROW(load_parameters_from_file(model, "/nonexistent/dir/model.txt"),
               std::invalid_argument);
}

}  // namespace
}  // namespace sfl::fl
