#include "fl/lr_schedule.h"

#include <gtest/gtest.h>

namespace sfl::fl {
namespace {

TEST(LrScheduleTest, ConstantIsConstant) {
  LrScheduleSpec spec;
  spec.base_rate = 0.1;
  const LrSchedule schedule(spec);
  EXPECT_DOUBLE_EQ(schedule.rate(0), 0.1);
  EXPECT_DOUBLE_EQ(schedule.rate(1000), 0.1);
}

TEST(LrScheduleTest, InverseTimeMatchesFormula) {
  LrScheduleSpec spec;
  spec.kind = LrScheduleKind::kInverseTime;
  spec.base_rate = 0.2;
  spec.tau = 10.0;
  const LrSchedule schedule(spec);
  EXPECT_DOUBLE_EQ(schedule.rate(0), 0.2);
  EXPECT_DOUBLE_EQ(schedule.rate(10), 0.1);   // base / (1 + 1)
  EXPECT_DOUBLE_EQ(schedule.rate(30), 0.05);  // base / (1 + 3)
}

TEST(LrScheduleTest, InverseTimeSatisfiesTheoryRatioBound) {
  // The convergence analyses need eta_t <= 2*eta_{t+T} for any fixed lag T;
  // inverse-time decay satisfies it once t >= T - tau-ish. Spot-check the
  // working regime.
  LrScheduleSpec spec;
  spec.kind = LrScheduleKind::kInverseTime;
  spec.base_rate = 0.5;
  spec.tau = 20.0;
  const LrSchedule schedule(spec);
  const std::size_t lag = 5;
  for (std::size_t t = 0; t < 500; ++t) {
    EXPECT_LE(schedule.rate(t), 2.0 * schedule.rate(t + lag)) << t;
  }
}

TEST(LrScheduleTest, StepDecaysByFactor) {
  LrScheduleSpec spec;
  spec.kind = LrScheduleKind::kStep;
  spec.base_rate = 0.4;
  spec.step_factor = 0.5;
  spec.step_every = 100;
  const LrSchedule schedule(spec);
  EXPECT_DOUBLE_EQ(schedule.rate(0), 0.4);
  EXPECT_DOUBLE_EQ(schedule.rate(99), 0.4);
  EXPECT_DOUBLE_EQ(schedule.rate(100), 0.2);
  EXPECT_DOUBLE_EQ(schedule.rate(250), 0.1);
}

TEST(LrScheduleTest, CosineAnnealsToFloorAndStaysThere) {
  LrScheduleSpec spec;
  spec.kind = LrScheduleKind::kCosine;
  spec.base_rate = 0.1;
  spec.floor_rate = 0.01;
  spec.horizon = 100;
  const LrSchedule schedule(spec);
  EXPECT_DOUBLE_EQ(schedule.rate(0), 0.1);
  EXPECT_NEAR(schedule.rate(50), 0.055, 1e-12);  // midpoint = mean
  EXPECT_NEAR(schedule.rate(100), 0.01, 1e-12);
  EXPECT_NEAR(schedule.rate(500), 0.01, 1e-12);  // clamped past horizon
  // Monotone non-increasing within the horizon.
  for (std::size_t t = 1; t <= 100; ++t) {
    EXPECT_LE(schedule.rate(t), schedule.rate(t - 1) + 1e-15);
  }
}

TEST(LrScheduleTest, RatesAreAlwaysPositive) {
  LrScheduleSpec spec;
  spec.kind = LrScheduleKind::kCosine;
  spec.base_rate = 0.1;
  spec.floor_rate = 0.0;  // even a zero floor must not emit zero
  spec.horizon = 10;
  const LrSchedule schedule(spec);
  for (std::size_t t = 0; t < 50; ++t) {
    EXPECT_GT(schedule.rate(t), 0.0);
  }
}

TEST(LrScheduleTest, Validation) {
  LrScheduleSpec spec;
  spec.base_rate = 0.0;
  EXPECT_THROW(LrSchedule{spec}, std::invalid_argument);
  spec.base_rate = 0.1;
  spec.kind = LrScheduleKind::kInverseTime;
  spec.tau = 0.0;
  EXPECT_THROW(LrSchedule{spec}, std::invalid_argument);
  spec.kind = LrScheduleKind::kStep;
  spec.step_factor = 1.5;
  EXPECT_THROW(LrSchedule{spec}, std::invalid_argument);
  spec.step_factor = 0.5;
  spec.step_every = 0;
  EXPECT_THROW(LrSchedule{spec}, std::invalid_argument);
  spec.kind = LrScheduleKind::kCosine;
  spec.step_every = 10;
  spec.floor_rate = 0.5;  // above base
  EXPECT_THROW(LrSchedule{spec}, std::invalid_argument);
}

}  // namespace
}  // namespace sfl::fl
