#include "fl/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace sfl::fl {
namespace {

/// Minimizes f(x) = 0.5*||x - target||^2 whose gradient is (x - target).
std::vector<double> optimize_quadratic(Optimizer& opt, std::vector<double> x,
                                       const std::vector<double>& target,
                                       int steps) {
  std::vector<double> grad(x.size());
  for (int s = 0; s < steps; ++s) {
    for (std::size_t i = 0; i < x.size(); ++i) grad[i] = x[i] - target[i];
    opt.step(x, grad);
  }
  return x;
}

TEST(OptimizerTest, FactoryValidatesSpecs) {
  OptimizerSpec spec;
  spec.learning_rate = 0.0;
  EXPECT_THROW((void)make_optimizer(spec), std::invalid_argument);
  spec.learning_rate = 0.1;
  spec.kind = OptimizerKind::kMomentum;
  spec.momentum = 1.0;
  EXPECT_THROW((void)make_optimizer(spec), std::invalid_argument);
  spec.momentum = 0.9;
  EXPECT_NO_THROW((void)make_optimizer(spec));
  spec.kind = OptimizerKind::kAdam;
  spec.beta2 = 1.0;
  EXPECT_THROW((void)make_optimizer(spec), std::invalid_argument);
}

TEST(OptimizerTest, SgdSingleStepIsExact) {
  OptimizerSpec spec;
  spec.kind = OptimizerKind::kSgd;
  spec.learning_rate = 0.5;
  const auto opt = make_optimizer(spec);
  std::vector<double> x{1.0, -2.0};
  const std::vector<double> grad{2.0, 4.0};
  opt->step(x, grad);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], -4.0);
}

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  OptimizerSpec spec;
  spec.learning_rate = 0.1;
  const auto opt = make_optimizer(spec);
  const std::vector<double> target{3.0, -1.0, 2.0};
  const auto x = optimize_quadratic(*opt, {0.0, 0.0, 0.0}, target, 200);
  for (std::size_t i = 0; i < target.size(); ++i) {
    EXPECT_NEAR(x[i], target[i], 1e-6);
  }
}

TEST(OptimizerTest, MomentumConvergesOnQuadratic) {
  OptimizerSpec spec;
  spec.kind = OptimizerKind::kMomentum;
  spec.learning_rate = 0.05;
  spec.momentum = 0.9;
  const auto opt = make_optimizer(spec);
  const std::vector<double> target{5.0, 5.0};
  const auto x = optimize_quadratic(*opt, {0.0, 0.0}, target, 400);
  EXPECT_NEAR(x[0], 5.0, 1e-4);
  EXPECT_NEAR(x[1], 5.0, 1e-4);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  OptimizerSpec spec;
  spec.kind = OptimizerKind::kAdam;
  spec.learning_rate = 0.1;
  const auto opt = make_optimizer(spec);
  const std::vector<double> target{-2.0, 7.0};
  const auto x = optimize_quadratic(*opt, {0.0, 0.0}, target, 500);
  EXPECT_NEAR(x[0], -2.0, 1e-3);
  EXPECT_NEAR(x[1], 7.0, 1e-3);
}

TEST(OptimizerTest, AdamFirstStepIsLearningRateSized) {
  // With bias correction, the very first Adam step has magnitude ~lr
  // regardless of gradient scale.
  OptimizerSpec spec;
  spec.kind = OptimizerKind::kAdam;
  spec.learning_rate = 0.1;
  const auto opt = make_optimizer(spec);
  std::vector<double> x{0.0};
  opt->step(x, std::vector<double>{1000.0});
  EXPECT_NEAR(x[0], -0.1, 1e-6);
}

TEST(OptimizerTest, MomentumAcceleratesVersusSgd) {
  // On an ill-conditioned quadratic, momentum makes more progress than
  // plain SGD with the same learning rate after the same step count.
  const std::vector<double> target{10.0};
  OptimizerSpec sgd_spec;
  sgd_spec.learning_rate = 0.01;
  const auto sgd = make_optimizer(sgd_spec);
  OptimizerSpec mom_spec;
  mom_spec.kind = OptimizerKind::kMomentum;
  mom_spec.learning_rate = 0.01;
  mom_spec.momentum = 0.9;
  const auto momentum = make_optimizer(mom_spec);
  const auto x_sgd = optimize_quadratic(*sgd, {0.0}, target, 50);
  const auto x_mom = optimize_quadratic(*momentum, {0.0}, target, 50);
  EXPECT_LT(std::abs(x_mom[0] - 10.0), std::abs(x_sgd[0] - 10.0));
}

TEST(OptimizerTest, ResetClearsState) {
  OptimizerSpec spec;
  spec.kind = OptimizerKind::kMomentum;
  spec.learning_rate = 0.1;
  spec.momentum = 0.9;
  const auto opt = make_optimizer(spec);
  std::vector<double> x{0.0};
  const std::vector<double> grad{1.0};
  opt->step(x, grad);
  opt->step(x, grad);
  const double with_velocity = x[0];
  opt->reset();
  std::vector<double> y{0.0};
  opt->step(y, grad);
  opt->step(y, grad);
  EXPECT_DOUBLE_EQ(y[0], with_velocity);  // same trajectory after reset
}

TEST(OptimizerTest, LearningRateAccessors) {
  OptimizerSpec spec;
  spec.learning_rate = 0.2;
  const auto opt = make_optimizer(spec);
  EXPECT_DOUBLE_EQ(opt->learning_rate(), 0.2);
  opt->set_learning_rate(0.4);
  EXPECT_DOUBLE_EQ(opt->learning_rate(), 0.4);
  EXPECT_THROW(opt->set_learning_rate(0.0), std::invalid_argument);
}

TEST(OptimizerTest, SizeMismatchThrows) {
  OptimizerSpec spec;
  const auto opt = make_optimizer(spec);
  std::vector<double> x{1.0, 2.0};
  EXPECT_THROW(opt->step(x, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(OptimizerTest, KindToString) {
  EXPECT_EQ(to_string(OptimizerKind::kSgd), "sgd");
  EXPECT_EQ(to_string(OptimizerKind::kMomentum), "momentum");
  EXPECT_EQ(to_string(OptimizerKind::kAdam), "adam");
}

}  // namespace
}  // namespace sfl::fl
