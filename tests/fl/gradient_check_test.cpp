// Numerical gradient checks: the analytic loss_and_gradient of every model
// must match central finite differences. This is the single most important
// correctness test for the FL substrate — a wrong gradient silently corrupts
// every downstream experiment.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/synthetic.h"
#include "fl/linear_regression.h"
#include "fl/logistic_regression.h"
#include "fl/mlp.h"
#include "fl/model.h"
#include "util/rng.h"

namespace sfl::fl {
namespace {

/// Max relative error between the analytic gradient and central differences.
double gradient_check(Model& model, const data::Dataset& ds,
                      std::span<const std::size_t> batch, double epsilon = 1e-6) {
  const std::vector<double> params = model.parameters();
  std::vector<double> analytic(params.size());
  model.loss_and_gradient(ds, batch, analytic);

  double worst = 0.0;
  for (std::size_t i = 0; i < params.size(); ++i) {
    std::vector<double> perturbed = params;
    perturbed[i] = params[i] + epsilon;
    model.set_parameters(perturbed);
    const double loss_plus = model.loss(ds, batch);
    perturbed[i] = params[i] - epsilon;
    model.set_parameters(perturbed);
    const double loss_minus = model.loss(ds, batch);
    const double numeric = (loss_plus - loss_minus) / (2.0 * epsilon);
    const double denom = std::max({std::abs(numeric), std::abs(analytic[i]), 1e-8});
    worst = std::max(worst, std::abs(numeric - analytic[i]) / denom);
  }
  model.set_parameters(params);
  return worst;
}

TEST(GradientCheckTest, LogisticRegressionNoRegularization) {
  sfl::util::Rng rng(11);
  data::GaussianMixtureSpec spec;
  spec.num_examples = 12;
  spec.num_classes = 3;
  spec.feature_dim = 4;
  const data::Dataset ds = data::make_gaussian_mixture(spec, rng);

  LogisticRegression model(4, 3, 0.0);
  std::vector<double> params(model.parameter_count());
  for (auto& p : params) p = rng.normal(0.0, 0.5);
  model.set_parameters(params);

  EXPECT_LT(gradient_check(model, ds, full_batch(ds)), 1e-5);
}

TEST(GradientCheckTest, LogisticRegressionWithL2) {
  sfl::util::Rng rng(12);
  data::GaussianMixtureSpec spec;
  spec.num_examples = 10;
  spec.num_classes = 4;
  spec.feature_dim = 3;
  const data::Dataset ds = data::make_gaussian_mixture(spec, rng);

  LogisticRegression model(3, 4, 0.05);
  std::vector<double> params(model.parameter_count());
  for (auto& p : params) p = rng.normal(0.0, 0.5);
  model.set_parameters(params);

  EXPECT_LT(gradient_check(model, ds, full_batch(ds)), 1e-5);
}

TEST(GradientCheckTest, LogisticRegressionMinibatch) {
  sfl::util::Rng rng(13);
  data::GaussianMixtureSpec spec;
  spec.num_examples = 20;
  spec.num_classes = 2;
  spec.feature_dim = 5;
  const data::Dataset ds = data::make_gaussian_mixture(spec, rng);

  LogisticRegression model(5, 2, 0.0);
  std::vector<double> params(model.parameter_count());
  for (auto& p : params) p = rng.normal(0.0, 0.3);
  model.set_parameters(params);

  const std::vector<std::size_t> batch{3, 7, 11, 19};
  EXPECT_LT(gradient_check(model, ds, batch), 1e-5);
}

TEST(GradientCheckTest, MlpNoRegularization) {
  sfl::util::Rng rng(14);
  data::GaussianMixtureSpec spec;
  spec.num_examples = 10;
  spec.num_classes = 3;
  spec.feature_dim = 4;
  const data::Dataset ds = data::make_gaussian_mixture(spec, rng);

  Mlp model(4, 6, 3, rng, 0.0);
  // ReLU kinks break finite differences when a pre-activation sits exactly
  // at 0; random inputs and weights make that measure-zero.
  EXPECT_LT(gradient_check(model, ds, full_batch(ds)), 1e-4);
}

TEST(GradientCheckTest, MlpWithL2) {
  sfl::util::Rng rng(15);
  data::GaussianMixtureSpec spec;
  spec.num_examples = 8;
  spec.num_classes = 2;
  spec.feature_dim = 3;
  const data::Dataset ds = data::make_gaussian_mixture(spec, rng);

  Mlp model(3, 5, 2, rng, 0.1);
  EXPECT_LT(gradient_check(model, ds, full_batch(ds)), 1e-4);
}

TEST(GradientCheckTest, LinearRegression) {
  sfl::util::Rng rng(16);
  const auto lr = data::make_linear_regression(15, 4, 0.5, rng);

  LinearRegression model(4, 0.0);
  std::vector<double> params(model.parameter_count());
  for (auto& p : params) p = rng.normal();
  model.set_parameters(params);

  EXPECT_LT(gradient_check(model, lr.dataset, full_batch(lr.dataset)), 1e-6);
}

TEST(GradientCheckTest, LinearRegressionWithL2) {
  sfl::util::Rng rng(17);
  const auto lr = data::make_linear_regression(12, 3, 0.2, rng);

  LinearRegression model(3, 0.3);
  std::vector<double> params(model.parameter_count());
  for (auto& p : params) p = rng.normal();
  model.set_parameters(params);

  EXPECT_LT(gradient_check(model, lr.dataset, full_batch(lr.dataset)), 1e-6);
}

TEST(GradientCheckTest, GradientSizeValidated) {
  sfl::util::Rng rng(18);
  const data::Dataset ds = data::make_two_blobs(10, 3.0, rng);
  const LogisticRegression model(2, 2, 0.0);
  std::vector<double> wrong_size(3);
  const std::vector<std::size_t> batch{0};
  EXPECT_THROW((void)model.loss_and_gradient(ds, batch, wrong_size),
               std::invalid_argument);
}

}  // namespace
}  // namespace sfl::fl
