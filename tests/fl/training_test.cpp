#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/aggregation.h"
#include "fl/federated_trainer.h"
#include "fl/local_trainer.h"
#include "fl/logistic_regression.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace sfl::fl {
namespace {

data::FederatedDataset make_fed_data(std::size_t clients, std::uint64_t seed,
                                     std::size_t train_n = 400,
                                     std::size_t test_n = 100) {
  sfl::util::Rng rng(seed);
  data::GaussianMixtureSpec spec;
  // One draw for train+test so both share the same class means (the
  // generator re-draws means per call).
  spec.num_examples = train_n + test_n;
  spec.num_classes = 4;
  spec.feature_dim = 6;
  spec.class_separation = 3.0;
  const data::Dataset all = data::make_gaussian_mixture(spec, rng);
  std::vector<std::size_t> order(all.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  const std::span<const std::size_t> indices(order);
  data::Dataset train = all.subset(indices.subspan(0, train_n));
  data::Dataset test = all.subset(indices.subspan(train_n));
  const auto partition = data::partition_iid(train.size(), clients, rng);
  return data::FederatedDataset(std::move(train), std::move(test), partition);
}

LocalTrainingSpec default_spec() {
  LocalTrainingSpec spec;
  spec.local_steps = 5;
  spec.batch_size = 16;
  spec.optimizer.learning_rate = 0.1;
  return spec;
}

TEST(LocalTrainerTest, ReducesLossOnSeparableData) {
  sfl::util::Rng rng(1);
  const data::Dataset shard = data::make_two_blobs(200, 5.0, rng);
  const LogisticRegression model(2, 2, 0.0);
  LocalTrainingSpec spec = default_spec();
  spec.local_steps = 50;
  const LocalUpdate update = run_local_training(model, shard, spec, rng);
  EXPECT_LT(update.final_loss, update.initial_loss);
  EXPECT_EQ(update.examples, 200u);
  EXPECT_EQ(update.delta.size(), model.parameter_count());
}

TEST(LocalTrainerTest, DoesNotMutateGlobalModel) {
  sfl::util::Rng rng(2);
  const data::Dataset shard = data::make_two_blobs(50, 3.0, rng);
  const LogisticRegression model(2, 2, 0.0);
  const auto before = model.parameters();
  (void)run_local_training(model, shard, default_spec(), rng);
  EXPECT_EQ(model.parameters(), before);
}

TEST(LocalTrainerTest, DeltaAppliedReproducesLocalModel) {
  // delta must equal (trained params - initial params) exactly.
  sfl::util::Rng rng(3);
  const data::Dataset shard = data::make_two_blobs(50, 3.0, rng);
  LogisticRegression model(2, 2, 0.0);
  sfl::util::Rng train_rng(7);
  const LocalUpdate update = run_local_training(model, shard, default_spec(),
                                                train_rng);
  // Zero-initialized model: trained params == delta.
  auto params = model.parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i] += update.delta[i];
  }
  // Re-run with identical RNG stream to confirm determinism.
  sfl::util::Rng train_rng2(7);
  const LocalUpdate update2 = run_local_training(model, shard, default_spec(),
                                                 train_rng2);
  EXPECT_EQ(update.delta, update2.delta);
}

TEST(LocalTrainerTest, Validation) {
  sfl::util::Rng rng(4);
  const data::Dataset shard = data::make_two_blobs(10, 3.0, rng);
  const LogisticRegression model(2, 2, 0.0);
  LocalTrainingSpec spec = default_spec();
  spec.local_steps = 0;
  EXPECT_THROW((void)run_local_training(model, shard, spec, rng),
               std::invalid_argument);
  spec = default_spec();
  spec.batch_size = 0;
  EXPECT_THROW((void)run_local_training(model, shard, spec, rng),
               std::invalid_argument);
}

TEST(AggregationTest, WeightedDeltasAreConvexCombination) {
  std::vector<LocalUpdate> updates(2);
  updates[0].delta = {1.0, 0.0};
  updates[0].examples = 10;
  updates[1].delta = {0.0, 1.0};
  updates[1].examples = 30;
  const auto agg = aggregate_fedavg(updates);
  ASSERT_EQ(agg.size(), 2u);
  EXPECT_DOUBLE_EQ(agg[0], 0.25);
  EXPECT_DOUBLE_EQ(agg[1], 0.75);
}

TEST(AggregationTest, ExplicitWeightsOverrideExampleCounts) {
  std::vector<LocalUpdate> updates(2);
  updates[0].delta = {2.0};
  updates[1].delta = {4.0};
  const auto agg = aggregate_weighted_deltas(updates, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(agg[0], 3.0);
}

TEST(AggregationTest, Validation) {
  std::vector<LocalUpdate> updates(2);
  updates[0].delta = {1.0};
  updates[1].delta = {1.0, 2.0};  // dimension mismatch
  EXPECT_THROW((void)aggregate_weighted_deltas(updates, {1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)aggregate_weighted_deltas({}, {}), std::invalid_argument);
  updates[1].delta = {1.0};
  EXPECT_THROW((void)aggregate_weighted_deltas(updates, {0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW((void)aggregate_weighted_deltas(updates, {-1.0, 2.0}),
               std::invalid_argument);
}

TEST(AggregationTest, ApplyServerUpdate) {
  std::vector<double> params{1.0, 2.0};
  apply_server_update(params, std::vector<double>{0.5, -0.5}, 2.0);
  EXPECT_DOUBLE_EQ(params[0], 2.0);
  EXPECT_DOUBLE_EQ(params[1], 1.0);
  EXPECT_THROW(apply_server_update(params, std::vector<double>{1.0}, 1.0),
               std::invalid_argument);
}

TEST(FederatedTrainerTest, AccuracyImprovesWithTraining) {
  const auto fed = make_fed_data(8, 10);
  FederatedTrainer trainer(fed, std::make_unique<LogisticRegression>(6, 4, 1e-4),
                           default_spec(), 99);
  const double before = trainer.evaluate_test().accuracy;
  const std::vector<std::size_t> everyone{0, 1, 2, 3, 4, 5, 6, 7};
  for (int round = 0; round < 30; ++round) {
    (void)trainer.run_round(everyone);
  }
  const double after = trainer.evaluate_test().accuracy;
  EXPECT_GT(after, before + 0.3);
  EXPECT_GT(after, 0.7);
  EXPECT_EQ(trainer.rounds_run(), 30u);
}

TEST(FederatedTrainerTest, EmptyRoundIsNoOp) {
  const auto fed = make_fed_data(4, 11);
  FederatedTrainer trainer(fed, std::make_unique<LogisticRegression>(6, 4, 0.0),
                           default_spec(), 1);
  const auto before = trainer.parameters();
  const RoundSummary summary = trainer.run_round({});
  EXPECT_EQ(summary.participants, 0u);
  EXPECT_EQ(trainer.parameters(), before);
  EXPECT_EQ(trainer.rounds_run(), 0u);
}

TEST(FederatedTrainerTest, RejectsDuplicateAndOutOfRangeParticipants) {
  const auto fed = make_fed_data(4, 12);
  FederatedTrainer trainer(fed, std::make_unique<LogisticRegression>(6, 4, 0.0),
                           default_spec(), 1);
  const std::vector<std::size_t> dup{1, 1};
  EXPECT_THROW((void)trainer.run_round(dup), std::invalid_argument);
  const std::vector<std::size_t> oob{9};
  EXPECT_THROW((void)trainer.run_round(oob), std::invalid_argument);
}

TEST(FederatedTrainerTest, SameSeedSameTrajectory) {
  const auto fed = make_fed_data(6, 13);
  const std::vector<std::size_t> participants{0, 2, 4};
  FederatedTrainer a(fed, std::make_unique<LogisticRegression>(6, 4, 0.0),
                     default_spec(), 55);
  FederatedTrainer b(fed, std::make_unique<LogisticRegression>(6, 4, 0.0),
                     default_spec(), 55);
  for (int round = 0; round < 5; ++round) {
    (void)a.run_round(participants);
    (void)b.run_round(participants);
  }
  EXPECT_EQ(a.parameters(), b.parameters());
}

TEST(FederatedTrainerTest, ParallelMatchesSequential) {
  const auto fed = make_fed_data(6, 14);
  const std::vector<std::size_t> participants{0, 1, 2, 3, 4, 5};
  FederatedTrainer sequential(fed, std::make_unique<LogisticRegression>(6, 4, 0.0),
                              default_spec(), 77);
  sfl::util::ThreadPool pool(3);
  FederatedTrainer parallel(fed, std::make_unique<LogisticRegression>(6, 4, 0.0),
                            default_spec(), 77, &pool);
  for (int round = 0; round < 4; ++round) {
    (void)sequential.run_round(participants);
    (void)parallel.run_round(participants);
  }
  EXPECT_EQ(sequential.parameters(), parallel.parameters());
}

TEST(FederatedTrainerTest, DetailedRoundExposesAlignedUpdates) {
  const auto fed = make_fed_data(5, 15);
  FederatedTrainer trainer(fed, std::make_unique<LogisticRegression>(6, 4, 0.0),
                           default_spec(), 3);
  const std::vector<std::size_t> participants{1, 3};
  const DetailedRound detail = trainer.run_round_detailed(participants);
  ASSERT_EQ(detail.updates.size(), 2u);
  EXPECT_EQ(detail.updates[0].examples, fed.shard_size(1));
  EXPECT_EQ(detail.updates[1].examples, fed.shard_size(3));
  EXPECT_EQ(detail.aggregate.size(), trainer.parameters().size());
  EXPECT_EQ(detail.summary.participants, 2u);
  EXPECT_GT(detail.summary.update_norm, 0.0);
}

TEST(FederatedTrainerTest, PartialParticipationStillLearns) {
  const auto fed = make_fed_data(10, 16, 600, 150);
  FederatedTrainer trainer(fed, std::make_unique<LogisticRegression>(6, 4, 1e-4),
                           default_spec(), 5);
  sfl::util::Rng rng(6);
  for (int round = 0; round < 40; ++round) {
    const auto participants = rng.sample_without_replacement(10, 3);
    (void)trainer.run_round(participants);
  }
  EXPECT_GT(trainer.evaluate_test().accuracy, 0.6);
}

}  // namespace
}  // namespace sfl::fl
