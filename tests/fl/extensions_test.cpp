// Tests for the FL training extensions: FedProx proximal term, gradient
// clipping, server momentum, and per-round learning-rate schedules.
#include <gtest/gtest.h>

#include <memory>

#include "data/matrix.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/federated_trainer.h"
#include "fl/local_trainer.h"
#include "fl/logistic_regression.h"
#include "util/rng.h"

namespace sfl::fl {
namespace {

data::FederatedDataset tiny_fed_data(std::uint64_t seed) {
  sfl::util::Rng rng(seed);
  data::GaussianMixtureSpec spec;
  spec.num_examples = 300;
  spec.num_classes = 3;
  spec.feature_dim = 4;
  spec.class_separation = 2.0;
  const data::Dataset all = data::make_gaussian_mixture(spec, rng);
  std::vector<std::size_t> order(all.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  const std::span<const std::size_t> idx(order);
  data::Dataset train = all.subset(idx.subspan(0, 240));
  data::Dataset test = all.subset(idx.subspan(240));
  const auto partition = data::partition_iid(240, 4, rng);
  return data::FederatedDataset(std::move(train), std::move(test), partition);
}

LocalTrainingSpec base_spec() {
  LocalTrainingSpec spec;
  spec.local_steps = 10;
  spec.batch_size = 16;
  spec.optimizer.learning_rate = 0.2;
  return spec;
}

TEST(FedProxTest, ProximalTermShrinksClientDrift) {
  sfl::util::Rng data_rng(5);
  const data::Dataset shard = data::make_two_blobs(100, 4.0, data_rng);
  const LogisticRegression model(2, 2, 0.0);

  LocalTrainingSpec plain = base_spec();
  LocalTrainingSpec prox = base_spec();
  prox.proximal_mu = 5.0;

  sfl::util::Rng rng_a(9);
  sfl::util::Rng rng_b(9);  // identical minibatch streams
  const LocalUpdate plain_update = run_local_training(model, shard, plain, rng_a);
  const LocalUpdate prox_update = run_local_training(model, shard, prox, rng_b);

  EXPECT_LT(data::l2_norm(prox_update.delta), data::l2_norm(plain_update.delta));
  EXPECT_GT(data::l2_norm(prox_update.delta), 0.0);
}

TEST(FedProxTest, ZeroMuMatchesPlainFedAvg) {
  sfl::util::Rng data_rng(6);
  const data::Dataset shard = data::make_two_blobs(60, 3.0, data_rng);
  const LogisticRegression model(2, 2, 0.0);
  LocalTrainingSpec explicit_zero = base_spec();
  explicit_zero.proximal_mu = 0.0;
  sfl::util::Rng rng_a(4);
  sfl::util::Rng rng_b(4);
  const LocalUpdate a = run_local_training(model, shard, base_spec(), rng_a);
  const LocalUpdate b = run_local_training(model, shard, explicit_zero, rng_b);
  EXPECT_EQ(a.delta, b.delta);
}

TEST(GradientClipTest, CapsStepMagnitude) {
  sfl::util::Rng data_rng(7);
  const data::Dataset shard = data::make_two_blobs(100, 8.0, data_rng);
  const LogisticRegression model(2, 2, 0.0);

  LocalTrainingSpec clipped = base_spec();
  clipped.local_steps = 1;
  clipped.gradient_clip_norm = 0.01;
  sfl::util::Rng rng(3);
  const LocalUpdate update = run_local_training(model, shard, clipped, rng);
  // One SGD step of a gradient with norm <= 0.01 at lr 0.2.
  EXPECT_LE(data::l2_norm(update.delta), 0.2 * 0.01 + 1e-12);
  EXPECT_GT(data::l2_norm(update.delta), 0.0);
}

TEST(GradientClipTest, LooseClipIsNoOp) {
  sfl::util::Rng data_rng(8);
  const data::Dataset shard = data::make_two_blobs(60, 3.0, data_rng);
  const LogisticRegression model(2, 2, 0.0);
  LocalTrainingSpec loose = base_spec();
  loose.gradient_clip_norm = 1e9;
  sfl::util::Rng rng_a(11);
  sfl::util::Rng rng_b(11);
  const LocalUpdate a = run_local_training(model, shard, base_spec(), rng_a);
  const LocalUpdate b = run_local_training(model, shard, loose, rng_b);
  EXPECT_EQ(a.delta, b.delta);
}

TEST(ServerMomentumTest, ZeroBetaMatchesPlain) {
  const auto fed = tiny_fed_data(20);
  const std::vector<std::size_t> everyone{0, 1, 2, 3};
  FederatedTrainer plain(fed, std::make_unique<LogisticRegression>(4, 3, 0.0),
                         base_spec(), 42);
  FederatedTrainer with_zero(fed, std::make_unique<LogisticRegression>(4, 3, 0.0),
                             base_spec(), 42);
  with_zero.set_server_momentum(0.0);
  for (int r = 0; r < 5; ++r) {
    (void)plain.run_round(everyone);
    (void)with_zero.run_round(everyone);
  }
  EXPECT_EQ(plain.parameters(), with_zero.parameters());
}

TEST(ServerMomentumTest, AcceleratesEarlyProgress) {
  const auto fed = tiny_fed_data(21);
  const std::vector<std::size_t> everyone{0, 1, 2, 3};
  LocalTrainingSpec slow = base_spec();
  slow.optimizer.learning_rate = 0.02;
  FederatedTrainer plain(fed, std::make_unique<LogisticRegression>(4, 3, 0.0),
                         slow, 42);
  FederatedTrainer momentum(fed, std::make_unique<LogisticRegression>(4, 3, 0.0),
                            slow, 42);
  momentum.set_server_momentum(0.9);
  for (int r = 0; r < 8; ++r) {
    (void)plain.run_round(everyone);
    (void)momentum.run_round(everyone);
  }
  // Momentum covers more ground from the same updates.
  EXPECT_GT(data::l2_norm(momentum.parameters()),
            data::l2_norm(plain.parameters()));
}

TEST(ServerMomentumTest, ValidatesBeta) {
  const auto fed = tiny_fed_data(22);
  FederatedTrainer trainer(fed, std::make_unique<LogisticRegression>(4, 3, 0.0),
                           base_spec(), 1);
  EXPECT_THROW(trainer.set_server_momentum(1.0), std::invalid_argument);
  EXPECT_THROW(trainer.set_server_momentum(-0.1), std::invalid_argument);
}

TEST(TrainerScheduleTest, ScheduleControlsRoundLearningRate) {
  const auto fed = tiny_fed_data(23);
  FederatedTrainer trainer(fed, std::make_unique<LogisticRegression>(4, 3, 0.0),
                           base_spec(), 1);
  EXPECT_DOUBLE_EQ(trainer.current_learning_rate(), 0.2);

  LrScheduleSpec spec;
  spec.kind = LrScheduleKind::kStep;
  spec.base_rate = 0.1;
  spec.step_factor = 0.5;
  spec.step_every = 2;
  trainer.set_lr_schedule(LrSchedule(spec));
  EXPECT_DOUBLE_EQ(trainer.current_learning_rate(), 0.1);

  const std::vector<std::size_t> everyone{0, 1, 2, 3};
  (void)trainer.run_round(everyone);
  (void)trainer.run_round(everyone);
  EXPECT_DOUBLE_EQ(trainer.current_learning_rate(), 0.05);  // round index 2
}

TEST(TrainerScheduleTest, DecayingScheduleStillLearns) {
  const auto fed = tiny_fed_data(24);
  FederatedTrainer trainer(fed, std::make_unique<LogisticRegression>(4, 3, 1e-4),
                           base_spec(), 9);
  LrScheduleSpec spec;
  spec.kind = LrScheduleKind::kInverseTime;
  spec.base_rate = 0.2;
  spec.tau = 20.0;
  trainer.set_lr_schedule(LrSchedule(spec));
  const std::vector<std::size_t> everyone{0, 1, 2, 3};
  const double before = trainer.evaluate_test().accuracy;
  for (int r = 0; r < 30; ++r) (void)trainer.run_round(everyone);
  EXPECT_GT(trainer.evaluate_test().accuracy, before + 0.2);
}

}  // namespace
}  // namespace sfl::fl
