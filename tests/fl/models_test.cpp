#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "fl/linear_regression.h"
#include "fl/logistic_regression.h"
#include "fl/mlp.h"
#include "util/rng.h"

namespace sfl::fl {
namespace {

TEST(SoftmaxTest, SumsToOneAndOrdersLogits) {
  std::vector<double> logits{1.0, 2.0, 3.0};
  softmax_inplace(logits);
  double sum = 0.0;
  for (const double p : logits) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_LT(logits[0], logits[1]);
  EXPECT_LT(logits[1], logits[2]);
}

TEST(SoftmaxTest, NumericallyStableForHugeLogits) {
  std::vector<double> logits{1000.0, 1001.0};
  softmax_inplace(logits);
  EXPECT_TRUE(std::isfinite(logits[0]));
  EXPECT_NEAR(logits[0] + logits[1], 1.0, 1e-12);
  EXPECT_GT(logits[1], logits[0]);
}

TEST(LogisticRegressionTest, ParameterRoundTrip) {
  LogisticRegression model(4, 3, 0.0);
  EXPECT_EQ(model.parameter_count(), 4u * 3u + 3u);
  std::vector<double> params(model.parameter_count());
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i] = static_cast<double>(i) * 0.1;
  }
  model.set_parameters(params);
  EXPECT_EQ(model.parameters(), params);
  EXPECT_THROW(model.set_parameters(std::vector<double>(3)), std::invalid_argument);
}

TEST(LogisticRegressionTest, ZeroWeightsGiveUniformProbabilities) {
  const LogisticRegression model(2, 4, 0.0);
  const auto probs = model.probabilities(std::vector<double>{1.0, -1.0});
  ASSERT_EQ(probs.size(), 4u);
  for (const double p : probs) EXPECT_NEAR(p, 0.25, 1e-12);
}

TEST(LogisticRegressionTest, CloneIsIndependentDeepCopy) {
  LogisticRegression model(2, 2, 0.0);
  std::vector<double> params(model.parameter_count(), 1.0);
  model.set_parameters(params);
  const auto copy = model.clone();
  params.assign(params.size(), 2.0);
  model.set_parameters(params);
  EXPECT_DOUBLE_EQ(copy->parameters()[0], 1.0);
  EXPECT_DOUBLE_EQ(model.parameters()[0], 2.0);
}

TEST(LogisticRegressionTest, UniformModelHasLogKLoss) {
  sfl::util::Rng rng(1);
  const data::Dataset ds = data::make_two_blobs(100, 3.0, rng);
  const LogisticRegression model(2, 2, 0.0);
  const auto batch = full_batch(ds);
  EXPECT_NEAR(model.loss(ds, batch), std::log(2.0), 1e-9);
}

TEST(LogisticRegressionTest, PredictsByDecisionBoundary) {
  LogisticRegression model(1, 2, 0.0);
  // W = [[-1], [1]], b = 0: positive x -> class 1.
  model.set_parameters(std::vector<double>{-1.0, 1.0, 0.0, 0.0});
  EXPECT_EQ(model.predict_class(std::vector<double>{5.0}), 1);
  EXPECT_EQ(model.predict_class(std::vector<double>{-5.0}), 0);
}

TEST(LogisticRegressionTest, RegressionDatasetRejected) {
  data::Matrix features(2, 1, {1.0, 2.0});
  const data::Dataset ds(std::move(features), std::vector<double>{1.0, 2.0});
  const LogisticRegression model(1, 2, 0.0);
  const std::vector<std::size_t> batch{0};
  std::vector<double> grad(model.parameter_count());
  EXPECT_THROW((void)model.loss(ds, batch), std::invalid_argument);
  EXPECT_THROW((void)model.loss_and_gradient(ds, batch, grad),
               std::invalid_argument);
}

TEST(LogisticRegressionTest, L2PenaltyIncreasesLossForNonzeroWeights) {
  sfl::util::Rng rng(2);
  const data::Dataset ds = data::make_two_blobs(50, 3.0, rng);
  LogisticRegression no_reg(2, 2, 0.0);
  LogisticRegression with_reg(2, 2, 1.0);
  const std::vector<double> params{0.5, -0.5, 0.5, -0.5, 0.1, -0.1};
  no_reg.set_parameters(params);
  with_reg.set_parameters(params);
  const auto batch = full_batch(ds);
  EXPECT_GT(with_reg.loss(ds, batch), no_reg.loss(ds, batch));
}

TEST(MlpTest, ParameterRoundTripAndCount) {
  sfl::util::Rng rng(3);
  Mlp model(5, 7, 3, rng, 0.0);
  EXPECT_EQ(model.parameter_count(), 5u * 7u + 7u + 7u * 3u + 3u);
  auto params = model.parameters();
  params[0] = 42.0;
  model.set_parameters(params);
  EXPECT_DOUBLE_EQ(model.parameters()[0], 42.0);
  EXPECT_EQ(model.parameters(), params);
}

TEST(MlpTest, CloneIsDeepCopy) {
  sfl::util::Rng rng(4);
  Mlp model(2, 3, 2, rng, 0.0);
  const auto copy = model.clone();
  EXPECT_EQ(copy->parameters(), model.parameters());
  auto params = model.parameters();
  params[0] += 1.0;
  model.set_parameters(params);
  EXPECT_NE(copy->parameters(), model.parameters());
}

TEST(MlpTest, PredictClassIsArgmaxConsistent) {
  sfl::util::Rng rng(5);
  const data::Dataset ds = data::make_two_blobs(20, 4.0, rng);
  const Mlp model(2, 8, 2, rng, 0.0);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const int cls = model.predict_class(ds.example(i));
    EXPECT_GE(cls, 0);
    EXPECT_LT(cls, 2);
  }
}

TEST(LinearRegressionTest, PredictMatchesDotProduct) {
  LinearRegression model(2, 0.0);
  model.set_parameters(std::vector<double>{2.0, -1.0, 0.5});
  EXPECT_DOUBLE_EQ(model.predict_value(std::vector<double>{1.0, 1.0}), 1.5);
  EXPECT_EQ(model.parameter_count(), 3u);
}

TEST(LinearRegressionTest, LossIsHalfMse) {
  data::Matrix features(2, 1, {1.0, 2.0});
  const data::Dataset ds(std::move(features), std::vector<double>{2.0, 4.0});
  LinearRegression model(1, 0.0);
  model.set_parameters(std::vector<double>{1.0, 0.0});  // y_hat = x
  // Residuals: -1 and -2 -> 0.5*(1+4)/2 = 1.25.
  EXPECT_NEAR(model.loss(ds, full_batch(ds)), 1.25, 1e-12);
}

TEST(ModelInterfaceTest, WrongPredictKindThrows) {
  const LinearRegression regression(2);
  EXPECT_THROW((void)regression.predict_class(std::vector<double>{1.0, 2.0}),
               std::logic_error);
  const LogisticRegression classifier(2, 2);
  EXPECT_THROW((void)classifier.predict_value(std::vector<double>{1.0, 2.0}),
               std::logic_error);
}

TEST(EvaluateTest, PerfectModelScoresFullAccuracy) {
  LogisticRegression model(1, 2, 0.0);
  model.set_parameters(std::vector<double>{-10.0, 10.0, 0.0, 0.0});
  data::Matrix features(4, 1, {-1.0, -2.0, 1.0, 2.0});
  const data::Dataset ds(std::move(features), std::vector<int>{0, 0, 1, 1}, 2);
  const EvalResult result = evaluate(model, ds);
  EXPECT_TRUE(result.has_accuracy);
  EXPECT_DOUBLE_EQ(result.accuracy, 1.0);
  EXPECT_LT(result.loss, 0.01);
}

TEST(EvaluateTest, RegressionHasNoAccuracy) {
  data::Matrix features(2, 1, {1.0, 2.0});
  const data::Dataset ds(std::move(features), std::vector<double>{1.0, 2.0});
  const LinearRegression model(1);
  const EvalResult result = evaluate(model, ds);
  EXPECT_FALSE(result.has_accuracy);
  EXPECT_GT(result.loss, 0.0);
}

}  // namespace
}  // namespace sfl::fl
