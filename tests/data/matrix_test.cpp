#include "data/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace sfl::data {
namespace {

TEST(MatrixTest, ConstructionAndShape) {
  const Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FALSE(m.empty());
  for (const double v : m.data()) EXPECT_DOUBLE_EQ(v, 0.0);

  const Matrix empty;
  EXPECT_TRUE(empty.empty());
}

TEST(MatrixTest, ConstructFromValuesValidatesSize) {
  const Matrix m(2, 2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 4.0);
  EXPECT_THROW(Matrix(2, 2, {1.0}), std::invalid_argument);
}

TEST(MatrixTest, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), std::invalid_argument);
  EXPECT_THROW((void)m.at(0, 2), std::invalid_argument);
  m.at(1, 1) = 5.0;
  EXPECT_DOUBLE_EQ(m.at(1, 1), 5.0);
}

TEST(MatrixTest, IdentityAndFillAndScale) {
  Matrix id = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(id.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id.at(0, 1), 0.0);
  id.scale(4.0);
  EXPECT_DOUBLE_EQ(id.at(2, 2), 4.0);
  id.fill(-1.0);
  EXPECT_DOUBLE_EQ(id.at(1, 0), -1.0);
}

TEST(MatrixTest, RowViewsShareStorage) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[2] = 9.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 9.0);
  EXPECT_THROW((void)m.row(2), std::invalid_argument);
}

TEST(MatrixTest, AddScaled) {
  Matrix a(2, 2, {1.0, 2.0, 3.0, 4.0});
  const Matrix b(2, 2, {10.0, 20.0, 30.0, 40.0});
  a.add_scaled(b, 0.1);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 8.0);
  const Matrix wrong(1, 2);
  EXPECT_THROW(a.add_scaled(wrong, 1.0), std::invalid_argument);
}

TEST(MatrixTest, TransposeRoundTrip) {
  const Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.at(2, 1), 6.0);
  EXPECT_EQ(t.transpose(), m);
}

TEST(MatrixTest, MatmulMatchesHandComputation) {
  const Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = matmul(a, b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
  EXPECT_THROW((void)matmul(a, a), std::invalid_argument);
}

TEST(MatrixTest, MatmulWithIdentityIsIdentityOp) {
  sfl::util::Rng rng(3);
  const Matrix m = Matrix::random_normal(4, 4, 1.0, rng);
  EXPECT_EQ(matmul(m, Matrix::identity(4)), m);
  EXPECT_EQ(matmul(Matrix::identity(4), m), m);
}

TEST(MatrixTest, MatvecAndTransposedMatvec) {
  const Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const std::vector<double> x{1.0, 0.0, -1.0};
  const auto y = matvec(a, x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);

  const std::vector<double> z{1.0, 1.0};
  const auto w = matvec_transposed(a, z);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0], 5.0);
  EXPECT_DOUBLE_EQ(w[1], 7.0);
  EXPECT_DOUBLE_EQ(w[2], 9.0);

  EXPECT_THROW((void)matvec(a, z), std::invalid_argument);
  EXPECT_THROW((void)matvec_transposed(a, x), std::invalid_argument);
}

TEST(MatrixTest, DotNormAxpy) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 12.0);
  EXPECT_DOUBLE_EQ(l2_norm(std::vector<double>{3.0, 4.0}), 5.0);
  std::vector<double> c{1.0, 1.0, 1.0};
  axpy(c, a, 2.0);
  EXPECT_DOUBLE_EQ(c[0], 3.0);
  EXPECT_DOUBLE_EQ(c[2], 7.0);
  const std::vector<double> shorter{1.0};
  EXPECT_THROW((void)dot(a, shorter), std::invalid_argument);
}

TEST(MatrixTest, FrobeniusNorm) {
  const Matrix m(2, 2, {1.0, 2.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(MatrixTest, RandomNormalHasRequestedMoments) {
  sfl::util::Rng rng(11);
  const Matrix m = Matrix::random_normal(100, 100, 2.0, rng);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double v : m.data()) {
    sum += v;
    sum_sq += v * v;
  }
  const double n = static_cast<double>(m.size());
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 4.0, 0.15);
}

}  // namespace
}  // namespace sfl::data
