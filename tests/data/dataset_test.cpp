#include "data/dataset.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sfl::data {
namespace {

Dataset small_classification() {
  Matrix features(4, 2, {0, 0, 1, 1, 2, 2, 3, 3});
  return Dataset(std::move(features), {0, 1, 0, 1}, 2);
}

TEST(DatasetTest, ClassificationBasics) {
  const Dataset ds = small_classification();
  EXPECT_EQ(ds.size(), 4u);
  EXPECT_EQ(ds.feature_dim(), 2u);
  EXPECT_EQ(ds.num_classes(), 2u);
  EXPECT_TRUE(ds.is_classification());
  EXPECT_EQ(ds.label(1), 1);
  EXPECT_DOUBLE_EQ(ds.example(2)[0], 2.0);
  EXPECT_THROW((void)ds.target(0), std::invalid_argument);
}

TEST(DatasetTest, RegressionBasics) {
  Matrix features(3, 1, {1, 2, 3});
  const Dataset ds(std::move(features), std::vector<double>{1.5, 2.5, 3.5});
  EXPECT_FALSE(ds.is_classification());
  EXPECT_DOUBLE_EQ(ds.target(2), 3.5);
  EXPECT_THROW((void)ds.label(0), std::invalid_argument);
}

TEST(DatasetTest, ConstructorValidation) {
  Matrix features(2, 2);
  EXPECT_THROW(Dataset(features, std::vector<int>{0}, 2), std::invalid_argument);
  EXPECT_THROW(Dataset(features, std::vector<int>{0, 5}, 2), std::invalid_argument);
  EXPECT_THROW(Dataset(features, std::vector<int>{0, 1}, 0), std::invalid_argument);
  EXPECT_THROW(Dataset(features, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(DatasetTest, SubsetSelectsAndAllowsDuplicates) {
  const Dataset ds = small_classification();
  const std::vector<std::size_t> indices{3, 0, 3};
  const Dataset sub = ds.subset(indices);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub.example(0)[0], 3.0);
  EXPECT_EQ(sub.label(1), 0);
  EXPECT_EQ(sub.label(2), 1);
  const std::vector<std::size_t> bad{7};
  EXPECT_THROW((void)ds.subset(bad), std::out_of_range);
}

TEST(DatasetTest, ClassHistogram) {
  const Dataset ds = small_classification();
  const auto hist = ds.class_histogram();
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist[0], 2u);
  EXPECT_EQ(hist[1], 2u);
}

TEST(DatasetTest, SplitPartitionsAllExamples) {
  Matrix features(10, 1, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Dataset ds(std::move(features),
                   std::vector<int>{0, 1, 0, 1, 0, 1, 0, 1, 0, 1}, 2);
  sfl::util::Rng rng(3);
  const auto [first, second] = ds.split(0.7, rng);
  EXPECT_EQ(first.size(), 7u);
  EXPECT_EQ(second.size(), 3u);
  // Every original feature value appears exactly once across the halves.
  std::vector<int> seen(10, 0);
  for (std::size_t i = 0; i < first.size(); ++i) {
    ++seen[static_cast<std::size_t>(first.example(i)[0])];
  }
  for (std::size_t i = 0; i < second.size(); ++i) {
    ++seen[static_cast<std::size_t>(second.example(i)[0])];
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(DatasetTest, SplitValidation) {
  const Dataset ds = small_classification();
  sfl::util::Rng rng(4);
  EXPECT_THROW((void)ds.split(0.0, rng), std::invalid_argument);
  EXPECT_THROW((void)ds.split(1.0, rng), std::invalid_argument);
}

TEST(DatasetTest, SetLabelValidates) {
  Dataset ds = small_classification();
  ds.set_label(0, 1);
  EXPECT_EQ(ds.label(0), 1);
  EXPECT_THROW(ds.set_label(0, 2), std::invalid_argument);
  EXPECT_THROW(ds.set_label(9, 0), std::out_of_range);
}

}  // namespace
}  // namespace sfl::data
