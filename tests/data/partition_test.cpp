#include "data/partition.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/synthetic.h"
#include "util/rng.h"

namespace sfl::data {
namespace {

TEST(PartitionIidTest, CoversAllExamplesEvenly) {
  sfl::util::Rng rng(1);
  const Partition p = partition_iid(100, 7, rng);
  ASSERT_EQ(p.size(), 7u);
  validate_partition(p, 100);
  std::size_t min_size = 100;
  std::size_t max_size = 0;
  for (const auto& shard : p) {
    min_size = std::min(min_size, shard.size());
    max_size = std::max(max_size, shard.size());
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(PartitionIidTest, Validation) {
  sfl::util::Rng rng(2);
  EXPECT_THROW((void)partition_iid(5, 0, rng), std::invalid_argument);
  EXPECT_THROW((void)partition_iid(3, 5, rng), std::invalid_argument);
}

TEST(PartitionDirichletTest, CoversAllExamples) {
  sfl::util::Rng rng(3);
  GaussianMixtureSpec spec;
  spec.num_examples = 600;
  spec.num_classes = 5;
  spec.feature_dim = 2;
  const Dataset ds = make_gaussian_mixture(spec, rng);
  const Partition p = partition_dirichlet_label_skew(ds, 10, 0.5, rng);
  ASSERT_EQ(p.size(), 10u);
  validate_partition(p, 600);
  for (const auto& shard : p) {
    EXPECT_FALSE(shard.empty());
  }
}

TEST(PartitionDirichletTest, SmallAlphaIsMoreSkewedThanLargeAlpha) {
  // Measure label skew as the mean (over clients) of the max class share.
  const auto mean_max_share = [](double alpha) {
    sfl::util::Rng rng(4);
    GaussianMixtureSpec spec;
    spec.num_examples = 2000;
    spec.num_classes = 5;
    spec.feature_dim = 2;
    const Dataset ds = make_gaussian_mixture(spec, rng);
    const Partition p = partition_dirichlet_label_skew(ds, 10, alpha, rng);
    double total_share = 0.0;
    for (const auto& shard : p) {
      std::vector<std::size_t> counts(5, 0);
      for (const std::size_t i : shard) {
        ++counts[static_cast<std::size_t>(ds.label(i))];
      }
      const auto max_count = *std::max_element(counts.begin(), counts.end());
      total_share += static_cast<double>(max_count) /
                     static_cast<double>(std::max<std::size_t>(shard.size(), 1));
    }
    return total_share / 10.0;
  };
  EXPECT_GT(mean_max_share(0.1), mean_max_share(100.0) + 0.1);
}

TEST(PartitionDirichletTest, TinyAlphaStillGivesEveryClientAnExample) {
  sfl::util::Rng rng(5);
  GaussianMixtureSpec spec;
  spec.num_examples = 100;
  spec.num_classes = 3;
  spec.feature_dim = 2;
  const Dataset ds = make_gaussian_mixture(spec, rng);
  const Partition p = partition_dirichlet_label_skew(ds, 20, 0.01, rng);
  validate_partition(p, 100);
  for (const auto& shard : p) {
    EXPECT_FALSE(shard.empty());
  }
}

TEST(PartitionQuantitySkewTest, SkewGrowsWithSigma) {
  const auto size_ratio = [](double sigma) {
    sfl::util::Rng rng(6);
    const Partition p = partition_quantity_skew(5000, 20, sigma, rng);
    validate_partition(p, 5000);
    std::size_t min_size = 5000;
    std::size_t max_size = 0;
    for (const auto& shard : p) {
      min_size = std::min(min_size, shard.size());
      max_size = std::max(max_size, shard.size());
    }
    return static_cast<double>(max_size) / static_cast<double>(min_size);
  };
  EXPECT_LT(size_ratio(0.0), 1.3);
  EXPECT_GT(size_ratio(1.5), 3.0);
}

TEST(PartitionQuantitySkewTest, EveryClientGetsAtLeastOne) {
  sfl::util::Rng rng(7);
  const Partition p = partition_quantity_skew(30, 30, 2.0, rng);
  validate_partition(p, 30);
  for (const auto& shard : p) {
    EXPECT_EQ(shard.size(), 1u);
  }
}

TEST(ValidatePartitionTest, DetectsViolations) {
  Partition missing{{0, 1}, {2}};
  EXPECT_THROW(validate_partition(missing, 4), std::invalid_argument);
  Partition duplicate{{0, 1}, {1, 2}};
  EXPECT_THROW(validate_partition(duplicate, 3), std::invalid_argument);
  Partition out_of_range{{0, 5}};
  EXPECT_THROW(validate_partition(out_of_range, 2), std::invalid_argument);
  Partition good{{1, 0}, {2}};
  EXPECT_NO_THROW(validate_partition(good, 3));
}

TEST(FederatedDatasetTest, BuildsShardsMatchingPartition) {
  sfl::util::Rng rng(8);
  GaussianMixtureSpec spec;
  spec.num_examples = 120;
  spec.num_classes = 3;
  spec.feature_dim = 2;
  Dataset train = make_gaussian_mixture(spec, rng);
  spec.num_examples = 30;
  Dataset test = make_gaussian_mixture(spec, rng);
  const Partition partition = partition_iid(120, 4, rng);

  const FederatedDataset fed(std::move(train), std::move(test), partition);
  EXPECT_EQ(fed.num_clients(), 4u);
  EXPECT_EQ(fed.total_examples(), 120u);
  EXPECT_EQ(fed.test_set().size(), 30u);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(fed.shard_size(c), partition[c].size());
    EXPECT_EQ(fed.shard(c).size(), partition[c].size());
  }
  EXPECT_THROW((void)fed.shard(4), std::out_of_range);
}

TEST(FederatedDatasetTest, ShardContentsMatchSourceExamples) {
  sfl::util::Rng rng(9);
  Matrix features(6, 1, {0, 10, 20, 30, 40, 50});
  Dataset train(std::move(features), std::vector<int>{0, 1, 0, 1, 0, 1}, 2);
  Matrix test_features(2, 1, {60, 70});
  Dataset test(std::move(test_features), std::vector<int>{0, 1}, 2);
  const Partition partition{{0, 2, 4}, {1, 3, 5}};
  const FederatedDataset fed(std::move(train), std::move(test), partition);
  EXPECT_DOUBLE_EQ(fed.shard(0).example(1)[0], 20.0);
  EXPECT_DOUBLE_EQ(fed.shard(1).example(2)[0], 50.0);
  EXPECT_EQ(fed.shard(1).label(0), 1);
}

}  // namespace
}  // namespace sfl::data
