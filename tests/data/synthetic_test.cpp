#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace sfl::data {
namespace {

TEST(GaussianMixtureTest, ProducesRequestedShape) {
  sfl::util::Rng rng(1);
  GaussianMixtureSpec spec;
  spec.num_examples = 500;
  spec.num_classes = 4;
  spec.feature_dim = 8;
  const Dataset ds = make_gaussian_mixture(spec, rng);
  EXPECT_EQ(ds.size(), 500u);
  EXPECT_EQ(ds.feature_dim(), 8u);
  EXPECT_EQ(ds.num_classes(), 4u);
  const auto hist = ds.class_histogram();
  for (const auto count : hist) {
    EXPECT_GT(count, 60u);  // roughly balanced
  }
}

TEST(GaussianMixtureTest, ClassWeightsSkewFrequencies) {
  sfl::util::Rng rng(2);
  GaussianMixtureSpec spec;
  spec.num_examples = 2000;
  spec.num_classes = 2;
  spec.feature_dim = 2;
  spec.class_weights = {9.0, 1.0};
  const Dataset ds = make_gaussian_mixture(spec, rng);
  const auto hist = ds.class_histogram();
  EXPECT_NEAR(static_cast<double>(hist[0]) / 2000.0, 0.9, 0.04);
}

TEST(GaussianMixtureTest, HigherSeparationIsMoreLinearlySeparable) {
  // Verify classes are far apart relative to within-class spread by
  // comparing distance of class means for two separations.
  const auto mean_distance = [](double separation) {
    sfl::util::Rng rng(3);
    GaussianMixtureSpec spec;
    spec.num_examples = 1000;
    spec.num_classes = 2;
    spec.feature_dim = 4;
    spec.class_separation = separation;
    const Dataset ds = make_gaussian_mixture(spec, rng);
    std::vector<double> mean0(4, 0.0);
    std::vector<double> mean1(4, 0.0);
    double n0 = 0.0;
    double n1 = 0.0;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      const auto x = ds.example(i);
      auto& mean = ds.label(i) == 0 ? mean0 : mean1;
      (ds.label(i) == 0 ? n0 : n1) += 1.0;
      for (std::size_t j = 0; j < 4; ++j) mean[j] += x[j];
    }
    double dist_sq = 0.0;
    for (std::size_t j = 0; j < 4; ++j) {
      dist_sq += std::pow(mean0[j] / n0 - mean1[j] / n1, 2);
    }
    return std::sqrt(dist_sq);
  };
  EXPECT_GT(mean_distance(6.0), mean_distance(1.0));
}

TEST(GaussianMixtureTest, Validation) {
  sfl::util::Rng rng(4);
  GaussianMixtureSpec spec;
  spec.num_classes = 1;
  EXPECT_THROW((void)make_gaussian_mixture(spec, rng), std::invalid_argument);
  spec.num_classes = 3;
  spec.class_weights = {1.0, 2.0};  // wrong length
  EXPECT_THROW((void)make_gaussian_mixture(spec, rng), std::invalid_argument);
}

TEST(TwoBlobsTest, BinaryTwoDimensional) {
  sfl::util::Rng rng(5);
  const Dataset ds = make_two_blobs(100, 4.0, rng);
  EXPECT_EQ(ds.num_classes(), 2u);
  EXPECT_EQ(ds.feature_dim(), 2u);
  EXPECT_EQ(ds.size(), 100u);
}

TEST(LinearRegressionDataTest, NoiselessTargetsMatchTrueModel) {
  sfl::util::Rng rng(6);
  const auto lr = make_linear_regression(50, 3, 0.0, rng);
  EXPECT_EQ(lr.dataset.size(), 50u);
  EXPECT_EQ(lr.true_weights.size(), 3u);
  for (std::size_t i = 0; i < lr.dataset.size(); ++i) {
    const auto x = lr.dataset.example(i);
    double y = lr.true_bias;
    for (std::size_t j = 0; j < 3; ++j) y += lr.true_weights[j] * x[j];
    EXPECT_NEAR(lr.dataset.target(i), y, 1e-12);
  }
}

TEST(LabelNoiseTest, FlipProbabilityRespected) {
  sfl::util::Rng rng(7);
  GaussianMixtureSpec spec;
  spec.num_examples = 5000;
  spec.num_classes = 10;
  spec.feature_dim = 2;
  Dataset ds = make_gaussian_mixture(spec, rng);
  const auto original = ds.labels();
  const std::size_t flipped = apply_label_noise(ds, 0.3, rng);
  EXPECT_NEAR(static_cast<double>(flipped) / 5000.0, 0.3, 0.03);
  // Every flipped label differs from the original (flip-to-different-class).
  std::size_t differing = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (ds.label(i) != original[i]) ++differing;
  }
  EXPECT_EQ(differing, flipped);
}

TEST(LabelNoiseTest, ZeroProbabilityIsNoOp) {
  sfl::util::Rng rng(8);
  Dataset ds = make_two_blobs(100, 3.0, rng);
  const auto before = ds.labels();
  EXPECT_EQ(apply_label_noise(ds, 0.0, rng), 0u);
  EXPECT_EQ(ds.labels(), before);
}

TEST(LabelNoiseTest, FullProbabilityFlipsEverything) {
  sfl::util::Rng rng(9);
  Dataset ds = make_two_blobs(200, 3.0, rng);
  const auto before = ds.labels();
  EXPECT_EQ(apply_label_noise(ds, 1.0, rng), 200u);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_NE(ds.label(i), before[i]);
  }
}

}  // namespace
}  // namespace sfl::data
