#include "lyapunov/virtual_queue.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sfl::lyapunov {
namespace {

TEST(VirtualQueueTest, UpdateFollowsLindleyRecursion) {
  VirtualQueue q(2.0);
  EXPECT_DOUBLE_EQ(q.backlog(), 0.0);
  q.update(5.0);  // max(0 + 5 - 2, 0) = 3
  EXPECT_DOUBLE_EQ(q.backlog(), 3.0);
  q.update(0.0);  // max(3 - 2, 0) = 1
  EXPECT_DOUBLE_EQ(q.backlog(), 1.0);
  q.update(0.0);  // max(1 - 2, 0) = 0
  EXPECT_DOUBLE_EQ(q.backlog(), 0.0);
  EXPECT_EQ(q.updates(), 3u);
}

TEST(VirtualQueueTest, InitialBacklogAndReset) {
  VirtualQueue q(1.0, 4.0);
  EXPECT_DOUBLE_EQ(q.backlog(), 4.0);
  q.update(0.0);
  EXPECT_DOUBLE_EQ(q.backlog(), 3.0);
  q.reset();
  EXPECT_DOUBLE_EQ(q.backlog(), 0.0);
  EXPECT_EQ(q.updates(), 0u);
  EXPECT_DOUBLE_EQ(q.average_backlog(), 0.0);
}

TEST(VirtualQueueTest, Validation) {
  EXPECT_THROW(VirtualQueue(-1.0), std::invalid_argument);
  EXPECT_THROW(VirtualQueue(1.0, -0.5), std::invalid_argument);
  VirtualQueue q(1.0);
  EXPECT_THROW(q.update(-0.1), std::invalid_argument);
}

TEST(VirtualQueueTest, StableWhenArrivalsBelowService) {
  // Arrivals ~ U[0, 1.6] with service 1.0: queue is stable, so the
  // normalized backlog Q(t)/t must vanish.
  sfl::util::Rng rng(1);
  VirtualQueue q(1.0);
  for (int t = 0; t < 20000; ++t) {
    q.update(rng.uniform(0.0, 1.6));
  }
  EXPECT_LT(q.normalized_backlog(), 0.01);
  EXPECT_LT(q.average_backlog(), 50.0);
}

TEST(VirtualQueueTest, GrowsLinearlyWhenOverloaded) {
  // Constant arrival 2.0 against service 1.0: backlog = t exactly.
  VirtualQueue q(1.0);
  for (int t = 0; t < 1000; ++t) q.update(2.0);
  EXPECT_DOUBLE_EQ(q.backlog(), 1000.0);
  EXPECT_NEAR(q.normalized_backlog(), 1.0, 1e-12);
}

TEST(VirtualQueueTest, AverageBacklogTracksHistory) {
  VirtualQueue q(0.0);
  q.update(1.0);  // backlog 1
  q.update(1.0);  // backlog 2
  q.update(1.0);  // backlog 3
  EXPECT_DOUBLE_EQ(q.average_backlog(), 2.0);
}

TEST(QueueBankTest, IndependentPerClientQueues) {
  QueueBank bank(std::vector<double>{1.0, 2.0});
  EXPECT_EQ(bank.size(), 2u);
  bank.update_all({3.0, 3.0});
  EXPECT_DOUBLE_EQ(bank.backlog(0), 2.0);
  EXPECT_DOUBLE_EQ(bank.backlog(1), 1.0);
  EXPECT_DOUBLE_EQ(bank.max_backlog(), 2.0);
  EXPECT_DOUBLE_EQ(bank.total_backlog(), 3.0);
}

TEST(QueueBankTest, Validation) {
  EXPECT_THROW(QueueBank(std::vector<double>{}), std::invalid_argument);
  QueueBank bank(std::vector<double>{1.0});
  EXPECT_THROW(bank.update_all({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)bank.backlog(1), std::out_of_range);
}

TEST(QueueBankTest, PacesToServiceRates) {
  // A queue bank with rates {0.2, 0.8} driven by a threshold controller
  // (send a unit arrival whenever the backlog is at most one arrival) keeps
  // every queue bounded, so the long-run arrival rate equals the service
  // rate — exactly the pacing argument the Z_i sustainability queues use.
  QueueBank bank(std::vector<double>{0.2, 0.8});
  int wins0 = 0;
  int wins1 = 0;
  const int rounds = 5000;
  for (int t = 0; t < rounds; ++t) {
    std::vector<double> arrivals{0.0, 0.0};
    if (bank.backlog(0) <= 1.0 + 1e-9) {
      arrivals[0] = 1.0;
      ++wins0;
    }
    if (bank.backlog(1) <= 1.0 + 1e-9) {
      arrivals[1] = 1.0;
      ++wins1;
    }
    bank.update_all(arrivals);
  }
  EXPECT_NEAR(wins0 / static_cast<double>(rounds), 0.2, 0.02);
  EXPECT_NEAR(wins1 / static_cast<double>(rounds), 0.8, 0.02);
  // Boundedness: the controller never let either backlog run away.
  EXPECT_LT(bank.max_backlog(), 3.0);
}

}  // namespace
}  // namespace sfl::lyapunov
