#include "stats/summary.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace sfl::stats {
namespace {

TEST(QuantileTest, MatchesLinearInterpolationConvention) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(values, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
}

TEST(QuantileTest, SingleElementAndValidation) {
  EXPECT_DOUBLE_EQ(quantile({42.0}, 0.7), 42.0);
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile({1.0}, 1.5), std::invalid_argument);
}

TEST(JainFairnessTest, PerfectEqualityIsOne) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({3.0, 3.0, 3.0, 3.0}), 1.0);
}

TEST(JainFairnessTest, SingleWinnerIsOneOverN) {
  EXPECT_NEAR(jain_fairness_index({10.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(JainFairnessTest, Validation) {
  EXPECT_THROW((void)jain_fairness_index({}), std::invalid_argument);
  EXPECT_THROW((void)jain_fairness_index({-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)jain_fairness_index({0.0, 0.0}), std::invalid_argument);
}

TEST(GiniTest, EqualityAndExtremes) {
  EXPECT_NEAR(gini_coefficient({5.0, 5.0, 5.0}), 0.0, 1e-12);
  // One person owns everything among n: gini = (n-1)/n.
  EXPECT_NEAR(gini_coefficient({0.0, 0.0, 0.0, 12.0}), 0.75, 1e-12);
  EXPECT_NEAR(gini_coefficient({0.0, 0.0}), 0.0, 1e-12);  // all-zero: equal
}

TEST(BootstrapTest, IntervalCoversTrueMeanForGaussian) {
  sfl::util::Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 400; ++i) values.push_back(rng.normal(10.0, 2.0));
  sfl::util::Rng boot_rng(8);
  const auto ci = bootstrap_mean_ci(values, 0.95, 1000, boot_rng);
  EXPECT_LT(ci.lo, ci.point);
  EXPECT_GT(ci.hi, ci.point);
  EXPECT_LT(ci.lo, 10.0 + 0.5);
  EXPECT_GT(ci.hi, 10.0 - 0.5);
  EXPECT_NEAR(ci.point, 10.0, 0.3);
}

TEST(BootstrapTest, Validation) {
  sfl::util::Rng rng(9);
  EXPECT_THROW((void)bootstrap_mean_ci({}, 0.95, 10, rng), std::invalid_argument);
  EXPECT_THROW((void)bootstrap_mean_ci({1.0}, 1.5, 10, rng), std::invalid_argument);
  EXPECT_THROW((void)bootstrap_mean_ci({1.0}, 0.95, 0, rng), std::invalid_argument);
}

TEST(LinearFitTest, RecoversExactLine) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys{1.0, 3.0, 5.0, 7.0};
  const auto fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFitTest, NoisyLineHasHighButImperfectR2) {
  sfl::util::Rng rng(10);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    const double x = static_cast<double>(i);
    xs.push_back(x);
    ys.push_back(3.0 * x + 1.0 + rng.normal(0.0, 5.0));
  }
  const auto fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
  EXPECT_LT(fit.r_squared, 1.0);
}

TEST(LinearFitTest, Validation) {
  EXPECT_THROW((void)linear_fit({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)linear_fit({1.0, 2.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)linear_fit({2.0, 2.0}, {1.0, 3.0}), std::invalid_argument);
}

TEST(PearsonTest, PerfectAndAnticorrelation) {
  EXPECT_NEAR(pearson_correlation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bucket_count(), 5u);
  h.add(0.5);   // bucket 0
  h.add(9.5);   // bucket 4
  h.add(-3.0);  // clamps to bucket 0
  h.add(25.0);  // clamps to bucket 4
  h.add(5.0);   // bucket 2
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
  EXPECT_THROW((void)h.count(5), std::out_of_range);
}

TEST(HistogramTest, Validation) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 3), std::invalid_argument);
}

}  // namespace
}  // namespace sfl::stats
