#include "stats/latency_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace sfl::stats {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  const LatencyHistogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.sum(), 0.0);
  EXPECT_EQ(histogram.min(), 0.0);
  EXPECT_EQ(histogram.max(), 0.0);
  EXPECT_EQ(histogram.quantile(0.5), 0.0);
}

TEST(LatencyHistogramTest, CountSumMinMaxAreExact) {
  LatencyHistogram histogram;
  const std::vector<double> values = {3.7, 120.0, 0.4, 88000.5, 12.0};
  double sum = 0.0;
  for (const double v : values) {
    histogram.record(v);
    sum += v;
  }
  EXPECT_EQ(histogram.count(), values.size());
  EXPECT_DOUBLE_EQ(histogram.sum(), sum);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.4);  // below min_value, still exact
  EXPECT_DOUBLE_EQ(histogram.max(), 88000.5);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.0), 0.4);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 88000.5);
}

TEST(LatencyHistogramTest, QuantilesHaveBoundedRelativeError) {
  // At 20 buckets per decade, a bucket's upper edge overshoots any value in
  // the bucket by at most 10^(1/20) - 1 (about 12.2%).
  LatencyHistogram histogram;
  sfl::util::Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 20'000; ++i) {
    values.push_back(rng.uniform(10.0, 1e6));
  }
  for (const double v : values) histogram.record(v);

  std::sort(values.begin(), values.end());
  const double bucket_ratio = std::pow(10.0, 1.0 / 20.0);
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    const double approx = histogram.quantile(q);
    EXPECT_GE(approx * bucket_ratio, exact) << "q=" << q;
    EXPECT_LE(approx, exact * bucket_ratio * bucket_ratio) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, QuantilesAreMonotoneInQ) {
  LatencyHistogram histogram;
  sfl::util::Rng rng(11);
  for (int i = 0; i < 5'000; ++i) {
    histogram.record(rng.uniform(1.0, 1e7));
  }
  double previous = histogram.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double current = histogram.quantile(q);
    EXPECT_GE(current, previous) << "q=" << q;
    previous = current;
  }
}

TEST(LatencyHistogramTest, MergeMatchesRecordingEverythingInOne) {
  LatencyHistogram combined;
  LatencyHistogram left;
  LatencyHistogram right;
  sfl::util::Rng rng(23);
  for (int i = 0; i < 4'000; ++i) {
    const double v = rng.uniform(0.5, 1e8);
    combined.record(v);
    (i % 2 == 0 ? left : right).record(v);
  }
  left.merge(right);

  EXPECT_EQ(left.count(), combined.count());
  // Summation order differs between the split and combined paths, so the
  // sums agree only to rounding.
  EXPECT_NEAR(left.sum(), combined.sum(), combined.sum() * 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), combined.min());
  EXPECT_DOUBLE_EQ(left.max(), combined.max());
  ASSERT_EQ(left.bucket_count(), combined.bucket_count());
  for (std::size_t b = 0; b < left.bucket_count(); ++b) {
    EXPECT_EQ(left.bucket_samples(b), combined.bucket_samples(b)) << b;
  }
  for (const double q : {0.1, 0.5, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(left.quantile(q), combined.quantile(q)) << q;
  }
}

TEST(LatencyHistogramTest, MergeIntoEmptyAndFromEmpty) {
  LatencyHistogram empty;
  LatencyHistogram filled;
  filled.record(42.0);
  filled.record(999.0);

  LatencyHistogram target;
  target.merge(filled);  // into empty
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.min(), 42.0);
  EXPECT_DOUBLE_EQ(target.max(), 999.0);

  target.merge(empty);  // from empty: no-op
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.min(), 42.0);
}

TEST(LatencyHistogramTest, MergeRejectsMismatchedGeometry) {
  LatencyHistogram a{LatencyHistogramConfig{
      .min_value = 1.0, .max_value = 1e6, .buckets_per_decade = 10}};
  LatencyHistogram b{LatencyHistogramConfig{
      .min_value = 1.0, .max_value = 1e6, .buckets_per_decade = 20}};
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(LatencyHistogramTest, OutOfRangeValuesClampIntoEdgeBuckets) {
  LatencyHistogram histogram{LatencyHistogramConfig{
      .min_value = 1.0, .max_value = 1e3, .buckets_per_decade = 10}};
  histogram.record(1e-6);  // below range
  histogram.record(1e9);   // above range
  EXPECT_EQ(histogram.bucket_samples(0), 1u);
  EXPECT_EQ(histogram.bucket_samples(histogram.bucket_count() - 1), 1u);
  EXPECT_EQ(histogram.count(), 2u);
  // Exact extremes survive clamping.
  EXPECT_DOUBLE_EQ(histogram.min(), 1e-6);
  EXPECT_DOUBLE_EQ(histogram.max(), 1e9);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 1e9);
}

TEST(LatencyHistogramTest, SingleSampleQuantileNeverExceedsMax) {
  LatencyHistogram histogram;
  histogram.record(123.0);
  for (const double q : {0.25, 0.5, 0.9, 0.999}) {
    EXPECT_LE(histogram.quantile(q), 123.0) << q;
    EXPECT_GE(histogram.quantile(q), 123.0 * 0.8) << q;
  }
}

TEST(LatencyHistogramTest, RejectsDegenerateGeometry) {
  EXPECT_THROW(LatencyHistogram(LatencyHistogramConfig{.min_value = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(LatencyHistogram(LatencyHistogramConfig{.min_value = 10.0,
                                                       .max_value = 5.0}),
               std::invalid_argument);
  EXPECT_THROW(
      LatencyHistogram(LatencyHistogramConfig{.buckets_per_decade = 0}),
      std::invalid_argument);
}

}  // namespace
}  // namespace sfl::stats
