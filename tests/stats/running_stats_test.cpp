#include "stats/running_stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace sfl::stats {
namespace {

TEST(RunningStatsTest, EmptyAccumulatorIsZeroed) {
  const RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.sample_variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.standard_error(), 0.0);
}

TEST(RunningStatsTest, MatchesClosedFormOnSmallSample) {
  RunningStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(v);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);  // population variance
  EXPECT_NEAR(stats.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.sample_variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.5);
  EXPECT_DOUBLE_EQ(stats.max(), 3.5);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  sfl::util::Rng rng(5);
  RunningStats all;
  RunningStats part_a;
  RunningStats part_b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(2.0, 3.0);
    all.add(v);
    (i % 2 == 0 ? part_a : part_b).add(v);
  }
  RunningStats merged = part_a;
  merged.merge(part_b);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_NEAR(merged.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(merged.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(merged.min(), all.min());
  EXPECT_DOUBLE_EQ(merged.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySidesIsIdentity) {
  RunningStats stats;
  stats.add(1.0);
  stats.add(2.0);
  RunningStats empty;
  RunningStats merged = stats;
  merged.merge(empty);
  EXPECT_DOUBLE_EQ(merged.mean(), 1.5);
  RunningStats other;
  other.merge(stats);
  EXPECT_DOUBLE_EQ(other.mean(), 1.5);
  EXPECT_EQ(other.count(), 2u);
}

TEST(RunningStatsTest, StandardErrorShrinksWithSamples) {
  sfl::util::Rng rng(6);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 100; ++i) small.add(rng.normal());
  for (int i = 0; i < 10000; ++i) large.add(rng.normal());
  EXPECT_GT(small.standard_error(), large.standard_error());
  EXPECT_NEAR(large.standard_error(), 1.0 / std::sqrt(10000.0), 0.002);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  RunningStats stats;
  const double offset = 1e9;
  for (const double v : {offset + 1.0, offset + 2.0, offset + 3.0}) {
    stats.add(v);
  }
  EXPECT_NEAR(stats.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(stats.sample_variance(), 1.0, 1e-6);
}

}  // namespace
}  // namespace sfl::stats
