#include "stats/running_stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace sfl::stats {
namespace {

TEST(RunningStatsTest, EmptyAccumulatorIsZeroed) {
  const RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.sample_variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.standard_error(), 0.0);
}

TEST(RunningStatsTest, MatchesClosedFormOnSmallSample) {
  RunningStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(v);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);  // population variance
  EXPECT_NEAR(stats.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.sample_variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.5);
  EXPECT_DOUBLE_EQ(stats.max(), 3.5);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  sfl::util::Rng rng(5);
  RunningStats all;
  RunningStats part_a;
  RunningStats part_b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(2.0, 3.0);
    all.add(v);
    (i % 2 == 0 ? part_a : part_b).add(v);
  }
  RunningStats merged = part_a;
  merged.merge(part_b);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_NEAR(merged.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(merged.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(merged.min(), all.min());
  EXPECT_DOUBLE_EQ(merged.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySidesIsIdentity) {
  RunningStats stats;
  stats.add(1.0);
  stats.add(2.0);
  RunningStats empty;
  RunningStats merged = stats;
  merged.merge(empty);
  EXPECT_DOUBLE_EQ(merged.mean(), 1.5);
  RunningStats other;
  other.merge(stats);
  EXPECT_DOUBLE_EQ(other.mean(), 1.5);
  EXPECT_EQ(other.count(), 2u);
}

TEST(RunningStatsTest, StandardErrorShrinksWithSamples) {
  sfl::util::Rng rng(6);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 100; ++i) small.add(rng.normal());
  for (int i = 0; i < 10000; ++i) large.add(rng.normal());
  EXPECT_GT(small.standard_error(), large.standard_error());
  EXPECT_NEAR(large.standard_error(), 1.0 / std::sqrt(10000.0), 0.002);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  RunningStats stats;
  const double offset = 1e9;
  for (const double v : {offset + 1.0, offset + 2.0, offset + 3.0}) {
    stats.add(v);
  }
  EXPECT_NEAR(stats.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(stats.sample_variance(), 1.0, 1e-6);
}

// The accumulator is deadline-load-bearing since PR 7 (the distributed
// coordinator derives per-worker hedge deadlines from mean + k*stddev), so
// merge correctness and long-run stability get their own coverage.

TEST(RunningStatsTest, MergeMatchesSequentialAcrossSplitPoints) {
  // Chan's parallel merge must agree with plain sequential accumulation
  // wherever the stream is cut — including the degenerate cuts where one
  // side holds zero or one sample.
  sfl::util::Rng data_rng(11);
  std::vector<double> values;
  values.reserve(257);
  for (int i = 0; i < 257; ++i) values.push_back(data_rng.normal(-4.0, 7.0));

  RunningStats sequential;
  for (const double v : values) sequential.add(v);

  for (const std::size_t cut : {0u, 1u, 2u, 128u, 255u, 256u, 257u}) {
    RunningStats left;
    RunningStats right;
    for (std::size_t i = 0; i < values.size(); ++i) {
      (i < cut ? left : right).add(values[i]);
    }
    RunningStats merged = left;
    merged.merge(right);
    SCOPED_TRACE("cut " + std::to_string(cut));
    EXPECT_EQ(merged.count(), sequential.count());
    EXPECT_NEAR(merged.mean(), sequential.mean(), 1e-10);
    EXPECT_NEAR(merged.variance(), sequential.variance(), 1e-8);
    EXPECT_NEAR(merged.sum(), sequential.sum(), 1e-6);
    EXPECT_DOUBLE_EQ(merged.min(), sequential.min());
    EXPECT_DOUBLE_EQ(merged.max(), sequential.max());
  }
}

TEST(RunningStatsTest, MergeIsCommutative) {
  sfl::util::Rng rng(12);
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 100; ++i) a.add(rng.normal(5.0, 2.0));
  for (int i = 0; i < 33; ++i) b.add(rng.normal(-1.0, 0.5));
  RunningStats ab = a;
  ab.merge(b);
  RunningStats ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_NEAR(ab.mean(), ba.mean(), 1e-12);
  EXPECT_NEAR(ab.variance(), ba.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(ab.min(), ba.min());
  EXPECT_DOUBLE_EQ(ab.max(), ba.max());
}

TEST(RunningStatsTest, MergeOfTwoEmptiesStaysEmpty) {
  RunningStats a;
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.standard_error(), 0.0);
}

TEST(RunningStatsTest, MergeOfSingletonsMatchesClosedForm) {
  RunningStats a;
  a.add(1.0);
  RunningStats b;
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.variance(), 1.0);  // population variance of {1, 3}
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(RunningStatsTest, StableOverMillionsOfSamplesAtLargeOffset) {
  // Welford at n = 2M with every sample near 1e9: a naive sum-of-squares
  // accumulator loses all variance precision here; the running form must
  // keep the exact alternating-sequence moments (mean offset, variance
  // d^2) to tight tolerance, and the half-stream merge must agree.
  const double offset = 1e9;
  const double d = 3.0;
  RunningStats whole;
  RunningStats first_half;
  RunningStats second_half;
  constexpr std::size_t kSamples = 2'000'000;
  for (std::size_t i = 0; i < kSamples; ++i) {
    const double v = offset + (i % 2 == 0 ? d : -d);
    whole.add(v);
    (i < kSamples / 2 ? first_half : second_half).add(v);
  }
  EXPECT_EQ(whole.count(), kSamples);
  EXPECT_NEAR(whole.mean(), offset, 1e-3);
  EXPECT_NEAR(whole.variance(), d * d, 1e-6);
  EXPECT_NEAR(whole.stddev(), d, 1e-6);

  RunningStats merged = first_half;
  merged.merge(second_half);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-3);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-6);
}

}  // namespace
}  // namespace sfl::stats
