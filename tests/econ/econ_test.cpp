#include <gtest/gtest.h>

#include <cmath>

#include "econ/bidding.h"
#include "econ/budget_tracker.h"
#include "econ/cost_model.h"
#include "econ/ledger.h"
#include "stats/running_stats.h"
#include "util/rng.h"

namespace sfl::econ {
namespace {

TEST(CostModelTest, CostsArePositiveAndHeterogeneous) {
  sfl::util::Rng rng(1);
  CostModelSpec spec;
  spec.base_sigma = 0.8;
  CostModel model(50, spec, {}, rng);
  const auto costs = model.draw_round(rng);
  ASSERT_EQ(costs.size(), 50u);
  double min_cost = costs[0];
  double max_cost = costs[0];
  for (const double c : costs) {
    EXPECT_GT(c, 0.0);
    min_cost = std::min(min_cost, c);
    max_cost = std::max(max_cost, c);
  }
  EXPECT_GT(max_cost / min_cost, 2.0);  // heavy-tailed heterogeneity
}

TEST(CostModelTest, TemporalPersistence) {
  // With high AR(1) persistence, consecutive costs of one client correlate;
  // with rho = 0 they do not.
  const auto lag1_correlation = [](double rho) {
    sfl::util::Rng rng(2);
    CostModelSpec spec;
    spec.base_sigma = 0.0;
    spec.ar_rho = rho;
    spec.ar_sigma = 0.3;
    CostModel model(1, spec, {}, rng);
    std::vector<double> series;
    for (int t = 0; t < 4000; ++t) {
      series.push_back(std::log(model.draw_round(rng)[0]));
    }
    double num = 0.0;
    double den = 0.0;
    double mean = 0.0;
    for (const double v : series) mean += v;
    mean /= static_cast<double>(series.size());
    for (std::size_t t = 0; t + 1 < series.size(); ++t) {
      num += (series[t] - mean) * (series[t + 1] - mean);
      den += (series[t] - mean) * (series[t] - mean);
    }
    return num / den;
  };
  EXPECT_GT(lag1_correlation(0.9), 0.8);
  EXPECT_LT(std::abs(lag1_correlation(0.0)), 0.1);
}

TEST(CostModelTest, ExpectedCostMatchesEmpiricalMean) {
  sfl::util::Rng rng(3);
  CostModelSpec spec;
  spec.base_sigma = 0.0;  // deterministic base = 1 (lognormal with sigma 0)
  spec.ar_rho = 0.5;
  spec.ar_sigma = 0.2;
  CostModel model(1, spec, {}, rng);
  sfl::stats::RunningStats stats;
  for (int t = 0; t < 30000; ++t) {
    stats.add(model.draw_round(rng)[0]);
  }
  EXPECT_NEAR(stats.mean(), model.expected_cost(0), 0.01);
}

TEST(CostModelTest, SizeCostCorrelation) {
  sfl::util::Rng rng(4);
  CostModelSpec spec;
  spec.base_sigma = 0.0;
  spec.ar_sigma = 0.0;
  spec.size_cost_exponent = 1.0;
  const std::vector<double> sizes{1.0, 2.0, 3.0};  // mean 2
  CostModel model(3, spec, sizes, rng);
  EXPECT_NEAR(model.base_cost(0), 0.5, 1e-9);
  EXPECT_NEAR(model.base_cost(1), 1.0, 1e-9);
  EXPECT_NEAR(model.base_cost(2), 1.5, 1e-9);
}

TEST(CostModelTest, Validation) {
  sfl::util::Rng rng(5);
  CostModelSpec spec;
  EXPECT_THROW(CostModel(0, spec, {}, rng), std::invalid_argument);
  spec.ar_rho = 1.0;
  EXPECT_THROW(CostModel(2, spec, {}, rng), std::invalid_argument);
  spec.ar_rho = 0.5;
  spec.size_cost_exponent = 1.0;
  EXPECT_THROW(CostModel(2, spec, {1.0}, rng), std::invalid_argument);
}

TEST(BiddingTest, TruthfulReturnsCost) {
  sfl::util::Rng rng(6);
  const TruthfulStrategy s;
  EXPECT_DOUBLE_EQ(s.bid(2.5, 0, rng), 2.5);
  EXPECT_EQ(s.name(), "truthful");
}

TEST(BiddingTest, ScaledMisreportMultiplies) {
  sfl::util::Rng rng(7);
  const ScaledMisreportStrategy overbid(1.5);
  EXPECT_DOUBLE_EQ(overbid.bid(2.0, 0, rng), 3.0);
  EXPECT_DOUBLE_EQ(overbid.factor(), 1.5);
  EXPECT_EQ(overbid.name(), "misreport-x1.50");
  EXPECT_THROW(ScaledMisreportStrategy(0.0), std::invalid_argument);
}

TEST(BiddingTest, JitterStaysPositiveAndCentersOnCost) {
  sfl::util::Rng rng(8);
  const JitterStrategy jitter(0.2);
  sfl::stats::RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double b = jitter.bid(2.0, 0, rng);
    EXPECT_GT(b, 0.0);
    stats.add(std::log(b / 2.0));
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);  // median-unbiased in log space
}

TEST(BudgetTrackerTest, TracksCumulativeAndViolation) {
  BudgetTracker tracker(2.0);
  tracker.record_round(1.0);  // cum 1, allowed 2
  EXPECT_DOUBLE_EQ(tracker.cumulative_violation(), 0.0);
  tracker.record_round(5.0);  // cum 6, allowed 4
  EXPECT_DOUBLE_EQ(tracker.cumulative_violation(), 2.0);
  EXPECT_DOUBLE_EQ(tracker.peak_violation(), 2.0);
  tracker.record_round(0.0);  // cum 6, allowed 6
  EXPECT_DOUBLE_EQ(tracker.cumulative_violation(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.peak_violation(), 2.0);  // peak remembered
  EXPECT_DOUBLE_EQ(tracker.average_payment(), 2.0);
  EXPECT_NEAR(tracker.violation_round_fraction(), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(tracker.rounds(), 3u);
  EXPECT_EQ(tracker.round_payments().size(), 3u);
}

TEST(BudgetTrackerTest, Validation) {
  EXPECT_THROW(BudgetTracker(-1.0), std::invalid_argument);
  BudgetTracker tracker(1.0);
  EXPECT_THROW(tracker.record_round(-0.5), std::invalid_argument);
}

TEST(UtilityLedgerTest, AccountingIdentities) {
  UtilityLedger ledger(3);
  ledger.record({.round = 0, .client = 0, .value = 5.0, .payment = 2.0,
                 .true_cost = 1.0});
  ledger.record({.round = 0, .client = 2, .value = 3.0, .payment = 1.0,
                 .true_cost = 2.0});
  ledger.record({.round = 1, .client = 0, .value = 4.0, .payment = 3.0,
                 .true_cost = 1.5});

  EXPECT_DOUBLE_EQ(ledger.client_utility(0), (2.0 - 1.0) + (3.0 - 1.5));
  EXPECT_DOUBLE_EQ(ledger.client_utility(1), 0.0);
  EXPECT_DOUBLE_EQ(ledger.client_utility(2), -1.0);
  EXPECT_EQ(ledger.participation_count(0), 2u);
  EXPECT_EQ(ledger.participation_count(1), 0u);
  EXPECT_DOUBLE_EQ(ledger.server_utility(), (5.0 - 2.0) + (3.0 - 1.0) + (4.0 - 3.0));
  EXPECT_DOUBLE_EQ(ledger.social_welfare(), 4.0 + 1.0 + 2.5);
  EXPECT_DOUBLE_EQ(ledger.total_payments(), 6.0);
  // Welfare identity: welfare = server utility + sum of client utilities.
  double client_total = 0.0;
  for (const double u : ledger.utility_vector()) client_total += u;
  EXPECT_NEAR(ledger.social_welfare(), ledger.server_utility() + client_total,
              1e-12);
  EXPECT_NEAR(ledger.individually_rational_fraction(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(ledger.entries(), 3u);
}

TEST(UtilityLedgerTest, Validation) {
  EXPECT_THROW(UtilityLedger(0), std::invalid_argument);
  UtilityLedger ledger(2);
  EXPECT_THROW(ledger.record({.round = 0, .client = 5, .value = 1.0,
                              .payment = 1.0, .true_cost = 1.0}),
               std::out_of_range);
  EXPECT_THROW(ledger.record({.round = 0, .client = 0, .value = 1.0,
                              .payment = -1.0, .true_cost = 1.0}),
               std::invalid_argument);
}

TEST(UtilityLedgerTest, ParticipationVector) {
  UtilityLedger ledger(2);
  ledger.record({.round = 0, .client = 1, .value = 1.0, .payment = 1.0,
                 .true_cost = 0.5});
  ledger.record({.round = 1, .client = 1, .value = 1.0, .payment = 1.0,
                 .true_cost = 0.5});
  const auto participation = ledger.participation_vector();
  EXPECT_DOUBLE_EQ(participation[0], 0.0);
  EXPECT_DOUBLE_EQ(participation[1], 2.0);
}

}  // namespace
}  // namespace sfl::econ
