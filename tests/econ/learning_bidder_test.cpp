#include "econ/learning_bidder.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sfl::econ {
namespace {

Exp3Config small_config() {
  Exp3Config config;
  config.factor_grid = {0.5, 1.0, 2.0};
  config.exploration = 0.1;
  config.reward_scale = 1.0;
  return config;
}

TEST(Exp3LearnerTest, ConfigValidation) {
  Exp3Config config = small_config();
  config.factor_grid.clear();
  EXPECT_THROW(Exp3BiddingLearner(config, 1), std::invalid_argument);
  config = small_config();
  config.factor_grid = {0.0};
  EXPECT_THROW(Exp3BiddingLearner(config, 1), std::invalid_argument);
  config = small_config();
  config.exploration = 0.0;
  EXPECT_THROW(Exp3BiddingLearner(config, 1), std::invalid_argument);
  config = small_config();
  config.reward_scale = 0.0;
  EXPECT_THROW(Exp3BiddingLearner(config, 1), std::invalid_argument);
}

TEST(Exp3LearnerTest, InitialStrategyIsUniform) {
  const Exp3BiddingLearner learner(small_config(), 1);
  const auto strategy = learner.strategy();
  ASSERT_EQ(strategy.size(), 3u);
  double sum = 0.0;
  for (const double p : strategy) {
    EXPECT_NEAR(p, 1.0 / 3.0, 1e-12);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(learner.expected_factor(), (0.5 + 1.0 + 2.0) / 3.0, 1e-12);
}

TEST(Exp3LearnerTest, ChooseRequiresFeedbackBeforeNextChoice) {
  Exp3BiddingLearner learner(small_config(), 2);
  (void)learner.choose_factor();
  EXPECT_THROW((void)learner.choose_factor(), std::invalid_argument);
  learner.observe_utility(0.1);
  EXPECT_NO_THROW((void)learner.choose_factor());
  Exp3BiddingLearner fresh(small_config(), 3);
  EXPECT_THROW(fresh.observe_utility(0.1), std::invalid_argument);
}

TEST(Exp3LearnerTest, ConvergesToTheBestArmInAStationaryBandit) {
  // Arm utilities: 0.5 -> -0.5, 1.0 -> +0.8, 2.0 -> 0.0. The learner must
  // concentrate on factor 1.0.
  Exp3BiddingLearner learner(small_config(), 4);
  for (int t = 0; t < 4000; ++t) {
    const double factor = learner.choose_factor();
    double utility = 0.0;
    if (factor == 0.5) utility = -0.5;
    if (factor == 1.0) utility = 0.8;
    learner.observe_utility(utility);
  }
  EXPECT_DOUBLE_EQ(learner.modal_factor(), 1.0);
  const auto strategy = learner.strategy();
  EXPECT_GT(strategy[1], 0.7);
  EXPECT_EQ(learner.plays(), 4000u);
}

TEST(Exp3LearnerTest, TracksADifferentBestArm) {
  Exp3BiddingLearner learner(small_config(), 5);
  for (int t = 0; t < 4000; ++t) {
    const double factor = learner.choose_factor();
    learner.observe_utility(factor == 2.0 ? 0.9 : 0.0);
  }
  EXPECT_DOUBLE_EQ(learner.modal_factor(), 2.0);
}

TEST(Exp3LearnerTest, StrategyStaysNormalizedUnderExtremeRewards) {
  Exp3BiddingLearner learner(small_config(), 6);
  for (int t = 0; t < 20000; ++t) {
    (void)learner.choose_factor();
    learner.observe_utility(1e6);  // clamps to reward 1
  }
  const auto strategy = learner.strategy();
  double sum = 0.0;
  for (const double p : strategy) {
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Exp3LearnerTest, ExplorationFloorsEveryArm) {
  Exp3Config config = small_config();
  config.exploration = 0.3;
  Exp3BiddingLearner learner(config, 7);
  for (int t = 0; t < 2000; ++t) {
    const double factor = learner.choose_factor();
    learner.observe_utility(factor == 1.0 ? 1.0 : -1.0);
  }
  const auto strategy = learner.strategy();
  for (const double p : strategy) {
    EXPECT_GE(p, 0.3 / 3.0 - 1e-12);  // gamma / K floor
  }
}

}  // namespace
}  // namespace sfl::econ
