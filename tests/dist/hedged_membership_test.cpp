// Hedged dispatch + elastic membership suite for the distributed WDP
// coordinator (PR 7).
//
// Scenarios script the deterministic LoopbackTransport's membership and
// latency controls — a persistent wall-clock straggler, planned drains
// (kWorkerGoodbye), rejoins (kWorkerHello), flapping membership, and the
// hedge race where both the original and the hedged reply arrive — and
// assert the coordinator's allocation and critical payments stay
// BIT-IDENTICAL to the serial engine through all of it. Rendezvous routing
// gets its own stability check: a membership change may move only the
// shards homed on the changed worker.
//
// The churn sweep is seeded-random: each trial draws a worker count,
// hedging mode, and a per-round schedule of membership events and faults.
// Every trial logs its seed; run
//   <binary> --seed=N
// to replay exactly that schedule. Failing seeds are appended to
// hedged_membership_failure_seeds.txt (CI artifact), same protocol as the
// codec fuzz suite. SFL_CHURN_TRIALS overrides the trial count.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "auction/round_scratch.h"
#include "auction/sharded_wdp.h"
#include "dist/distributed_wdp.h"
#include "dist/loopback_transport.h"
#include "util/rng.h"

namespace sfl::dist {
namespace {

using auction::Allocation;
using auction::CandidateBatch;
using auction::ClientId;
using auction::Penalties;
using auction::RoundScratch;
using auction::ScoreWeights;
using auction::ShardedWdp;
using auction::ShardedWdpConfig;

constexpr ScoreWeights kWeights{.value_weight = 10.0, .bid_weight = 12.5};
constexpr std::size_t kMaxWinners = 5;

std::optional<std::uint64_t> g_fixed_seed;  // --seed=N
std::vector<std::uint64_t> g_failed_seeds;  // written to the artifact

std::size_t churn_trials() {
  if (g_fixed_seed.has_value()) return 1;
  if (const char* env = std::getenv("SFL_CHURN_TRIALS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 80;
}

std::uint64_t trial_seed(std::size_t trial) {
  return g_fixed_seed.value_or(static_cast<std::uint64_t>(trial));
}

void record_failure(std::uint64_t seed) {
  for (const std::uint64_t s : g_failed_seeds) {
    if (s == seed) return;
  }
  g_failed_seeds.push_back(seed);
}

CandidateBatch make_batch(std::size_t n, std::uint64_t seed,
                          bool with_ties = false) {
  sfl::util::Rng rng(seed);
  CandidateBatch batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double value = rng.uniform(0.1, 5.0);
    double bid = rng.uniform(0.05, 3.0);
    if (with_ties) {
      value = 0.5 * static_cast<double>(rng.uniform_index(5));
      bid = 0.25 * static_cast<double>(rng.uniform_index(4));
    }
    batch.emplace(static_cast<ClientId>(rng.uniform_index(n)), value, bid,
                  rng.uniform(0.2, 2.0));
  }
  return batch;
}

struct Harness {
  std::unique_ptr<DistributedWdp> engine;
  LoopbackTransport* transport = nullptr;
};

Harness make_harness(std::size_t workers, DistributedWdpConfig config = {}) {
  auto transport = std::make_unique<LoopbackTransport>(workers);
  LoopbackTransport* raw = transport.get();
  config.workers = workers;
  return Harness{
      .engine = std::make_unique<DistributedWdp>(config, std::move(transport)),
      .transport = raw};
}

void expect_bit_identical(const DistributedWdp& engine,
                          const CandidateBatch& batch) {
  const ShardedWdp serial{ShardedWdpConfig{.shards = 1}};
  RoundScratch serial_scratch;
  serial.run_round(batch, kWeights, kMaxWinners, {}, serial_scratch);
  RoundScratch scratch;
  engine.run_round(batch, kWeights, kMaxWinners, {}, scratch);
  ASSERT_EQ(scratch.allocation.selected, serial_scratch.allocation.selected);
  ASSERT_EQ(scratch.allocation.total_score,
            serial_scratch.allocation.total_score);
  ASSERT_EQ(scratch.payments, serial_scratch.payments);
}

// ---------------------------------------------------------------------------
// Hedged dispatch under a persistent wall-clock straggler.
// ---------------------------------------------------------------------------

TEST(HedgedDispatchTest, PersistentStragglerIsHedgedAndStaysBitIdentical) {
  // One worker is permanently 800us slow (real wall-clock latency). Once the
  // coordinator's per-worker latency stats warm up, the straggler's adaptive
  // deadline collapses toward the cluster norm, every wait on it blows, and
  // its shards race a hedge mate — the late original losing the race must be
  // discarded by the per-lane dedupe, never merged. Every round must still
  // match the serial engine bit for bit.
  const Harness h = make_harness(4);
  const std::size_t straggler = h.engine->home_worker(0);
  h.transport->set_worker_latency(straggler,
                                  std::chrono::microseconds(800));

  std::size_t total_hedged = 0;
  std::size_t total_ignored = 0;
  for (std::size_t round = 0; round < 30; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    expect_bit_identical(*h.engine,
                         make_batch(40 + round, 2000 + round, round % 4 == 0));
    total_hedged += h.engine->last_round_stats().hedged_dispatches;
    total_ignored += h.engine->last_round_stats().ignored_replies;
  }
  // Warm-up takes kHedgeMinSamples observations per worker, after which the
  // straggler is hedged (reactively on blown deadlines, eagerly once its
  // envelope exceeds the chronic-straggler cap) and its losing replies show
  // up as ignored duplicates. The last hedge's loser may still be in flight
  // when the loop ends — wait out the straggler latency and drain it.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  h.engine->pump();
  total_ignored += h.engine->last_round_stats().ignored_replies;
  EXPECT_GE(total_hedged, 1u);
  EXPECT_GE(total_ignored, 1u);
  EXPECT_TRUE(h.engine->worker_live(straggler));  // slow, never dead
}

TEST(HedgedDispatchTest, HedgingOffReproducesFixedTimeoutBehavior) {
  // The same straggler cluster with hedge=false: only the fixed
  // receive_timeout triggers recovery, results are still exact, and no
  // hedged dispatch is ever recorded.
  const Harness h =
      make_harness(4, DistributedWdpConfig{
                          .receive_timeout = std::chrono::milliseconds(5),
                          .hedge = false});
  h.transport->set_worker_latency(h.engine->home_worker(0),
                                  std::chrono::microseconds(800));
  std::size_t total_hedged = 0;
  for (std::size_t round = 0; round < 10; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    expect_bit_identical(*h.engine, make_batch(35, 3000 + round));
    total_hedged += h.engine->last_round_stats().hedged_dispatches;
  }
  EXPECT_EQ(total_hedged, 0u);
}

// ---------------------------------------------------------------------------
// Elastic membership: planned drains, rejoins, flapping.
// ---------------------------------------------------------------------------

TEST(ElasticMembershipTest, PlannedDrainIsNotAFault) {
  // A worker says goodbye BEFORE the round: the coordinator deregisters it
  // via pump(), routes its shards elsewhere at first dispatch, and the
  // round completes with no recovery machinery at all — no dead workers, no
  // redispatches, no local fallback.
  const Harness h = make_harness(4);
  const std::size_t leaver = h.engine->home_worker(0);
  h.transport->announce_worker_leave(leaver);
  h.engine->pump();
  EXPECT_EQ(h.engine->last_round_stats().worker_leaves, 1u);
  EXPECT_FALSE(h.engine->worker_live(leaver));
  EXPECT_NE(h.engine->home_worker(0), leaver);

  expect_bit_identical(*h.engine, make_batch(60, 71));
  const auto& stats = h.engine->last_round_stats();
  EXPECT_EQ(stats.dead_workers, 0u);
  EXPECT_EQ(stats.redispatches, 0u);
  EXPECT_EQ(stats.local_recomputes, 0u);
}

TEST(ElasticMembershipTest, HelloRevivesADepartedWorker) {
  const Harness h = make_harness(3);
  const std::size_t w = h.engine->home_worker(0);
  h.transport->announce_worker_leave(w);
  h.engine->pump();
  ASSERT_FALSE(h.engine->worker_live(w));

  h.transport->announce_worker_join(w);
  h.engine->pump();
  EXPECT_EQ(h.engine->last_round_stats().worker_joins, 1u);
  EXPECT_TRUE(h.engine->worker_live(w));
  EXPECT_EQ(h.engine->home_worker(0), w);  // rendezvous home restored
  expect_bit_identical(*h.engine, make_batch(45, 72));
}

TEST(ElasticMembershipTest, HelloRevivesACrashedWorker) {
  // A worker marked dead by a failed send is replaced by a fresh process on
  // the same slot: the hello clears the fault state and its latency history
  // starts over.
  const Harness h = make_harness(3);
  const std::size_t w = h.engine->home_worker(0);
  h.transport->kill_worker(w);
  expect_bit_identical(*h.engine, make_batch(50, 73));
  EXPECT_GE(h.engine->last_round_stats().dead_workers, 1u);
  ASSERT_FALSE(h.engine->worker_live(w));

  h.transport->announce_worker_join(w);
  h.engine->pump();
  EXPECT_TRUE(h.engine->worker_live(w));
  expect_bit_identical(*h.engine, make_batch(50, 74));
  EXPECT_EQ(h.engine->last_round_stats().dead_workers, 0u);
}

TEST(ElasticMembershipTest, FlappingMembershipEveryRoundStaysBitIdentical) {
  // A different worker leaves before every round and rejoins after it —
  // continuous churn, never a fault. Every round must match serial exactly.
  const std::size_t workers = 4;
  const Harness h = make_harness(workers);
  std::size_t total_leaves = 0;
  std::size_t total_joins = 0;
  for (std::size_t round = 0; round < 24; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const std::size_t flapper = round % workers;
    h.transport->announce_worker_leave(flapper);
    h.engine->pump();
    total_leaves += h.engine->last_round_stats().worker_leaves;
    EXPECT_FALSE(h.engine->worker_live(flapper));

    expect_bit_identical(*h.engine,
                         make_batch(20 + round, 5000 + round, round % 3 == 0));

    h.transport->announce_worker_join(flapper);
    h.engine->pump();
    total_joins += h.engine->last_round_stats().worker_joins;
    EXPECT_TRUE(h.engine->worker_live(flapper));
  }
  EXPECT_GE(total_leaves, 24u);
  EXPECT_GE(total_joins, 24u);
}

TEST(ElasticMembershipTest, AllWorkersDepartedFallsBackLocally) {
  const Harness h = make_harness(3);
  for (std::size_t w = 0; w < 3; ++w) h.transport->announce_worker_leave(w);
  h.engine->pump();
  const CandidateBatch batch = make_batch(55, 75);
  expect_bit_identical(*h.engine, batch);
  const auto& stats = h.engine->last_round_stats();
  EXPECT_EQ(stats.local_recomputes, h.engine->effective_shards(batch.size()));
  EXPECT_EQ(stats.dead_workers, 0u);  // drained, not crashed
}

// ---------------------------------------------------------------------------
// Rendezvous routing stability: membership changes move O(changed) homes.
// ---------------------------------------------------------------------------

TEST(RendezvousRoutingTest, LeaveMovesOnlyTheLeaversShards) {
  constexpr std::size_t kShards = 64;
  const Harness h = make_harness(5);

  std::vector<std::size_t> before(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    before[s] = h.engine->home_worker(s);
  }

  const std::size_t leaver = before[0];
  h.transport->announce_worker_leave(leaver);
  h.engine->pump();
  for (std::size_t s = 0; s < kShards; ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    const std::size_t after = h.engine->home_worker(s);
    if (before[s] == leaver) {
      // Re-homed to some OTHER live worker, never the departed one.
      EXPECT_NE(after, leaver);
      EXPECT_TRUE(h.engine->worker_live(after));
    } else {
      // Every shard the leaver did not own keeps its home — the O(changed)
      // property that makes churn cheap.
      EXPECT_EQ(after, before[s]);
    }
  }

  // The rejoin restores the original assignment exactly (rendezvous weight
  // is a pure function of (shard, worker)).
  h.transport->announce_worker_join(leaver);
  h.engine->pump();
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(h.engine->home_worker(s), before[s]) << "shard " << s;
  }
}

TEST(RendezvousRoutingTest, HomesSpreadAcrossWorkers) {
  // Rendezvous hashing must not collapse: over 64 shards and 4 workers,
  // every worker owns at least one shard.
  const Harness h = make_harness(4);
  std::vector<std::size_t> owned(4, 0);
  for (std::size_t s = 0; s < 64; ++s) ++owned[h.engine->home_worker(s)];
  for (std::size_t w = 0; w < 4; ++w) {
    EXPECT_GE(owned[w], 1u) << "worker " << w;
  }
}

// ---------------------------------------------------------------------------
// Seeded churn sweep: random membership + fault schedules, exact equality.
// ---------------------------------------------------------------------------

void run_churn_trial(std::uint64_t seed) {
  sfl::util::Rng rng(seed ^ 0xc412ULL);
  const std::size_t workers = 2 + rng.uniform_index(5);  // 2..6
  DistributedWdpConfig config;
  config.hedge = rng.bernoulli(0.5);
  const Harness h = make_harness(workers, config);

  const std::size_t rounds = 5 + rng.uniform_index(8);
  for (std::size_t round = 0; round < rounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round) +
                 " workers=" + std::to_string(workers) +
                 " hedge=" + std::to_string(config.hedge));
    // Zero or more membership events, then at most one transport fault.
    const std::size_t events = rng.uniform_index(3);
    for (std::size_t e = 0; e < events; ++e) {
      const std::size_t target = rng.uniform_index(workers);
      if (rng.bernoulli(0.5)) {
        h.transport->announce_worker_leave(target);
      } else {
        h.transport->announce_worker_join(target);
      }
    }
    h.engine->pump();
    switch (rng.uniform_index(6)) {
      case 0: h.transport->drop_next_replies(1 + rng.uniform_index(workers)); break;
      case 1: h.transport->duplicate_next_reply(); break;
      case 2: h.transport->deliver_lifo(rng.bernoulli(0.5)); break;
      case 3: h.transport->delay_next_reply(1 + rng.uniform_index(6)); break;
      case 4: h.transport->corrupt_next_reply(rng.uniform_index(200),
                                              static_cast<unsigned char>(
                                                  1 + rng.uniform_index(255)));
        break;
      default: break;  // clean round
    }
    const std::size_t n = 1 + rng.uniform_index(120);
    expect_bit_identical(*h.engine,
                         make_batch(n, seed * 131 + round, rng.bernoulli(0.3)));
  }
}

TEST(MembershipChurnSweepTest, RandomChurnSchedulesStayBitIdentical) {
  for (std::size_t trial = 0; trial < churn_trials(); ++trial) {
    const std::uint64_t seed = trial_seed(trial);
    SCOPED_TRACE("repro: dist_hedged_membership_test --seed=" +
                 std::to_string(seed));
    const bool failed_before = ::testing::Test::HasFailure();
    run_churn_trial(seed);
    if (!failed_before && ::testing::Test::HasFailure()) {
      record_failure(seed);
      break;
    }
  }
}

}  // namespace
}  // namespace sfl::dist

// Custom main: --seed=N pins the churn sweep to one schedule for exact
// reproduction; failing seeds are persisted for the CI artifact and echoed
// with a copy-pasteable repro command (same protocol as the codec fuzz
// suite).
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    constexpr const char* kSeedFlag = "--seed=";
    if (arg.rfind(kSeedFlag, 0) == 0) {
      sfl::dist::g_fixed_seed = std::strtoull(
          arg.c_str() + std::string(kSeedFlag).size(), nullptr, 10);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  const int result = RUN_ALL_TESTS();
  if (!sfl::dist::g_failed_seeds.empty()) {
    std::ofstream out("hedged_membership_failure_seeds.txt", std::ios::app);
    std::cerr << "\nhedged membership failures; reproduce each with:\n";
    for (const std::uint64_t seed : sfl::dist::g_failed_seeds) {
      out << seed << "\n";
      std::cerr << "  dist_hedged_membership_test --seed=" << seed << "\n";
    }
    std::cerr << "(seeds appended to hedged_membership_failure_seeds.txt)\n";
  }
  return result;
}
