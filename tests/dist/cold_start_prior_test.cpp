// Fresh-coordinator cold start for the adaptive hedge deadlines (PR 10).
//
// A brand-new coordinator has empty per-worker latency stats, so every
// adaptive deadline falls back to the fixed receive_timeout until
// kHedgeMinSamples observations accumulate per worker — a straggler that is
// present from round one stalls the first rounds at the full timeout. The
// fix is DistributedWdpConfig::latency_prior: a retiring coordinator exports
// worker_latency_stats() and its successor starts warm, hedging the known
// straggler immediately. The prior shifts only dispatch timing; results must
// stay bit-identical to the serial engine with or without it.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <stdexcept>
#include <vector>

#include "auction/round_scratch.h"
#include "auction/sharded_wdp.h"
#include "dist/distributed_wdp.h"
#include "dist/loopback_transport.h"
#include "stats/running_stats.h"
#include "util/rng.h"

namespace sfl::dist {
namespace {

using auction::CandidateBatch;
using auction::ClientId;
using auction::RoundScratch;
using auction::ScoreWeights;
using auction::ShardedWdp;
using auction::ShardedWdpConfig;

constexpr ScoreWeights kWeights{.value_weight = 10.0, .bid_weight = 12.5};
constexpr std::size_t kMaxWinners = 5;
// Mirrors kHedgeMinSamples in distributed_wdp.cpp: a prior below this count
// is ignored by the adaptive deadline, so the warm-start tests must seed at
// least this many observations per worker.
constexpr std::size_t kMinSamples = 8;

CandidateBatch make_batch(std::size_t n, std::uint64_t seed) {
  sfl::util::Rng rng(seed);
  CandidateBatch batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.emplace(static_cast<ClientId>(rng.uniform_index(n)),
                  rng.uniform(0.1, 5.0), rng.uniform(0.05, 3.0),
                  rng.uniform(0.2, 2.0));
  }
  return batch;
}

struct Harness {
  std::unique_ptr<DistributedWdp> engine;
  LoopbackTransport* transport = nullptr;
};

Harness make_harness(std::size_t workers, DistributedWdpConfig config = {}) {
  auto transport = std::make_unique<LoopbackTransport>(workers);
  LoopbackTransport* raw = transport.get();
  config.workers = workers;
  return Harness{
      .engine = std::make_unique<DistributedWdp>(config, std::move(transport)),
      .transport = raw};
}

void expect_bit_identical(const DistributedWdp& engine,
                          const CandidateBatch& batch) {
  const ShardedWdp serial{ShardedWdpConfig{.shards = 1}};
  RoundScratch serial_scratch;
  serial.run_round(batch, kWeights, kMaxWinners, {}, serial_scratch);
  RoundScratch scratch;
  engine.run_round(batch, kWeights, kMaxWinners, {}, scratch);
  ASSERT_EQ(scratch.allocation.selected, serial_scratch.allocation.selected);
  ASSERT_EQ(scratch.allocation.total_score,
            serial_scratch.allocation.total_score);
  ASSERT_EQ(scratch.payments, serial_scratch.payments);
}

/// A hand-built prior: every worker observed at `mean_us` microseconds often
/// enough for the adaptive deadline to trust it (>= kMinSamples samples).
std::vector<sfl::stats::RunningStats> uniform_prior(std::size_t workers,
                                                    double mean_us) {
  std::vector<sfl::stats::RunningStats> prior(workers);
  for (auto& stats : prior) {
    for (std::size_t i = 0; i < kMinSamples; ++i) stats.add(mean_us);
  }
  return prior;
}

TEST(ColdStartPriorTest, WrongSizedPriorIsRejected) {
  auto transport = std::make_unique<LoopbackTransport>(4);
  DistributedWdpConfig config;
  config.workers = 4;
  config.latency_prior = uniform_prior(3, 500.0);  // 3 entries, 4 workers
  EXPECT_THROW(DistributedWdp(config, std::move(transport)),
               std::invalid_argument);
}

TEST(ColdStartPriorTest, EmptyPriorStartsWithFreshStats) {
  const Harness h = make_harness(4);
  const auto& stats = h.engine->worker_latency_stats();
  ASSERT_EQ(stats.size(), 4u);
  for (const auto& s : stats) EXPECT_EQ(s.count(), 0u);
}

TEST(ColdStartPriorTest, PriorIsVisibleThroughAccessor) {
  DistributedWdpConfig config;
  config.latency_prior = uniform_prior(4, 350.0);
  const Harness h = make_harness(4, config);
  const auto& stats = h.engine->worker_latency_stats();
  ASSERT_EQ(stats.size(), 4u);
  for (const auto& s : stats) {
    EXPECT_EQ(s.count(), kMinSamples);
    EXPECT_DOUBLE_EQ(s.mean(), 350.0);
  }
}

TEST(ColdStartPriorTest, WarmPriorHedgesAKnownStragglerImmediately) {
  // First generation: warm the latency stats against a persistent 800us
  // straggler, then export them. The export must show the straggler as an
  // outlier the successor can act on.
  DistributedWdpConfig gen1_config;
  std::vector<sfl::stats::RunningStats> exported;
  std::size_t straggler = 0;
  {
    const Harness gen1 = make_harness(4, gen1_config);
    straggler = gen1.engine->home_worker(0);
    gen1.transport->set_worker_latency(straggler,
                                       std::chrono::microseconds(800));
    for (std::size_t round = 0; round < 20; ++round) {
      SCOPED_TRACE("gen1 round " + std::to_string(round));
      expect_bit_identical(*gen1.engine, make_batch(40 + round, 5000 + round));
    }
    exported = gen1.engine->worker_latency_stats();
    ASSERT_EQ(exported.size(), 4u);
    ASSERT_GE(exported[straggler].count(), kMinSamples);
    // Rendezvous routing need not touch every worker at these batch sizes;
    // only peers that actually served shards carry samples. At least one
    // warm peer must exist, and the straggler's observed mean must dominate
    // every warm peer's — otherwise the prior carries no signal for the
    // successor to hedge on.
    std::size_t warm_peers = 0;
    for (std::size_t w = 0; w < exported.size(); ++w) {
      if (w == straggler || exported[w].count() < kMinSamples) continue;
      ++warm_peers;
      ASSERT_GT(exported[straggler].mean(), 2.0 * exported[w].mean());
    }
    ASSERT_GE(warm_peers, 1u);
  }

  // Second generation: a FRESH coordinator over the same (still-slow)
  // cluster, seeded with the exported prior. The adaptive deadline trusts
  // the prior from round one, so the straggler is hedged or redispatched
  // within the first few rounds instead of stalling at receive_timeout
  // until kMinSamples fresh observations accumulate.
  DistributedWdpConfig gen2_config;
  gen2_config.latency_prior = exported;
  const Harness gen2 = make_harness(4, gen2_config);
  gen2.transport->set_worker_latency(straggler,
                                     std::chrono::microseconds(800));
  std::size_t recoveries = 0;
  for (std::size_t round = 0; round < 8; ++round) {
    SCOPED_TRACE("gen2 round " + std::to_string(round));
    expect_bit_identical(*gen2.engine, make_batch(44 + round, 7000 + round));
    const auto& stats = gen2.engine->last_round_stats();
    recoveries += stats.hedged_dispatches + stats.redispatches;
  }
  EXPECT_GE(recoveries, 1u);
  EXPECT_TRUE(gen2.engine->worker_live(straggler));  // slow, never dead
}

TEST(ColdStartPriorTest, RejoinResetsAPriorSeededWorker) {
  // Membership churn must not resurrect stale priors: when a worker leaves
  // and rejoins, its latency stats reset to fresh even if they were seeded
  // from a prior — the rejoined process may be a different machine.
  DistributedWdpConfig config;
  config.latency_prior = uniform_prior(3, 400.0);
  const Harness h = make_harness(3, config);
  const std::size_t w = h.engine->home_worker(0);
  ASSERT_EQ(h.engine->worker_latency_stats()[w].count(), kMinSamples);

  h.transport->announce_worker_leave(w);
  h.engine->pump();
  h.transport->announce_worker_join(w);
  h.engine->pump();
  EXPECT_EQ(h.engine->worker_latency_stats()[w].count(), 0u);

  expect_bit_identical(*h.engine, make_batch(30, 99));
}

}  // namespace
}  // namespace sfl::dist
