// Pipeline soak + conformance suite for the pipelined distributed WDP.
//
// Three layers, all held to the bit-identical-to-serial exactness contract:
//
//  - engine conformance: the submit/resubmit/retire_oldest API over the
//    scripted LoopbackTransport — in-order retirement, per-round reply
//    validation (a delayed or duplicated round-t frame arriving while
//    round t+1 is in flight is either banked into round t's OWN lane or
//    ignored, never merged into the wrong round), and the stale-sequence
//    edge where the lane ring wraps and an ancient reply resurfaces;
//  - mechanism conformance: speculative dispatch on the LTO mechanism —
//    mis-speculated rounds re-issued at settle time, confirmed rounds
//    retiring on the speculative replies, stats accounting for both;
//  - the soak: 500-round settled markets at depth {1, 2, 4} x workers
//    {1, 2, 4, 7} x scripted per-round fault schedules (drop / duplicate /
//    reorder / delay / mute / worker death), every trajectory (winners,
//    payments, Q(t), Z_i(t), welfare/payment series) compared EXACTLY to
//    the serial engine's.
//
// Reproducing failures: every randomized scenario logs its seed; run
//   <binary> --seed=N
// to replay exactly that scenario. Failing seeds are appended to
// pipelined_failure_seeds.txt next to the working directory — CI uploads
// it as an artifact (mirrors the codec-fuzz and property harnesses).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "auction/registry.h"
#include "auction/round_scratch.h"
#include "auction/sharded_wdp.h"
#include "core/long_term_online_vcg.h"
#include "core/market_simulation.h"
#include "dist/distributed_wdp.h"
#include "dist/loopback_transport.h"
#include "util/rng.h"

namespace sfl::dist {
namespace {

using auction::Allocation;
using auction::CandidateBatch;
using auction::ClientId;
using auction::Penalties;
using auction::RoundScratch;
using auction::ScoreWeights;
using auction::ShardedWdp;
using auction::ShardedWdpConfig;

std::optional<std::uint64_t> g_fixed_seed;  // --seed=N
std::vector<std::uint64_t> g_failed_seeds;  // written to the artifact

std::uint64_t scenario_seed(std::uint64_t fallback) {
  return g_fixed_seed.value_or(fallback);
}

void record_failure(std::uint64_t seed) {
  for (const std::uint64_t s : g_failed_seeds) {
    if (s == seed) return;
  }
  g_failed_seeds.push_back(seed);
}

/// Guard that records the scenario seed if the enclosed scope failed.
class SeedRecorder {
 public:
  explicit SeedRecorder(std::uint64_t seed)
      : seed_(seed), failed_before_(::testing::Test::HasFailure()) {}
  ~SeedRecorder() {
    if (!failed_before_ && ::testing::Test::HasFailure()) {
      record_failure(seed_);
    }
  }

 private:
  std::uint64_t seed_;
  bool failed_before_;
};

constexpr ScoreWeights kWeights{.value_weight = 10.0, .bid_weight = 12.5};
constexpr std::size_t kMaxWinners = 5;

CandidateBatch make_batch(std::size_t n, std::uint64_t seed,
                          bool with_ties = false) {
  sfl::util::Rng rng(seed);
  CandidateBatch batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double value = rng.uniform(0.1, 5.0);
    double bid = rng.uniform(0.05, 3.0);
    if (with_ties) {
      value = 0.5 * static_cast<double>(rng.uniform_index(5));
      bid = 0.25 * static_cast<double>(rng.uniform_index(4));
    }
    batch.emplace(static_cast<ClientId>(rng.uniform_index(n)), value, bid,
                  rng.uniform(0.2, 2.0));
  }
  return batch;
}

struct SerialReference {
  Allocation allocation;
  std::vector<double> payments;
};

SerialReference serial_reference(const CandidateBatch& batch,
                                 const ScoreWeights& weights,
                                 std::size_t max_winners,
                                 const Penalties& penalties = {}) {
  const ShardedWdp serial{ShardedWdpConfig{.shards = 1}};
  RoundScratch scratch;
  serial.run_round(batch, weights, max_winners, penalties, scratch);
  return SerialReference{.allocation = scratch.allocation,
                         .payments = scratch.payments};
}

struct Harness {
  std::unique_ptr<DistributedWdp> engine;
  LoopbackTransport* transport = nullptr;
};

Harness make_harness(std::size_t workers, std::size_t depth,
                     DistributedWdpConfig config = {}) {
  auto transport = std::make_unique<LoopbackTransport>(workers);
  LoopbackTransport* raw = transport.get();
  config.workers = workers;
  config.pipeline_depth = depth;
  return Harness{
      .engine = std::make_unique<DistributedWdp>(config, std::move(transport)),
      .transport = raw};
}

// ---------------------------------------------------------------------------
// Engine conformance: submit/retire bursts == serial, any depth.
// ---------------------------------------------------------------------------

TEST(PipelinedWdpTest, PipelinedBurstsMatchSerialForEveryDepthAndWorkerCount) {
  for (const std::size_t depth : {1u, 2u, 4u}) {
    for (const std::size_t workers : {1u, 2u, 4u, 7u}) {
      SCOPED_TRACE("depth=" + std::to_string(depth) +
                   " workers=" + std::to_string(workers));
      const Harness h = make_harness(workers, depth);
      std::vector<RoundScratch> lanes(depth);
      std::vector<CandidateBatch> batches;
      for (std::size_t r = 0; r < 12; ++r) {
        batches.push_back(
            make_batch(20 + 13 * r, 100 + r, /*with_ties=*/r % 3 == 0));
      }
      std::size_t submitted = 0;
      for (std::size_t r = 0; r < batches.size(); ++r) {
        while (submitted < batches.size() &&
               h.engine->rounds_in_flight() < depth) {
          h.engine->submit(batches[submitted], kWeights, kMaxWinners, {},
                           lanes[submitted % depth]);
          ++submitted;
        }
        h.engine->retire_oldest();
        const RoundScratch& lane = lanes[r % depth];
        const SerialReference ref =
            serial_reference(batches[r], kWeights, kMaxWinners);
        ASSERT_EQ(lane.allocation.selected, ref.allocation.selected)
            << "round " << r;
        ASSERT_EQ(lane.allocation.total_score, ref.allocation.total_score)
            << "round " << r;
        ASSERT_EQ(lane.payments, ref.payments) << "round " << r;
      }
      EXPECT_EQ(h.engine->rounds_in_flight(), 0u);
    }
  }
}

TEST(PipelinedWdpTest, RoundsRetireInStrictSubmissionOrder) {
  const Harness h = make_harness(3, 3);
  RoundScratch a, b, c;
  const CandidateBatch batch_a = make_batch(30, 1);
  const CandidateBatch batch_b = make_batch(31, 2);
  const CandidateBatch batch_c = make_batch(32, 3);
  // Deliver newest replies first: retirement order must still be a, b, c.
  h.transport->deliver_lifo(true);
  const auto ha = h.engine->submit(batch_a, kWeights, kMaxWinners, {}, a);
  const auto hb = h.engine->submit(batch_b, kWeights, kMaxWinners, {}, b);
  const auto hc = h.engine->submit(batch_c, kWeights, kMaxWinners, {}, c);
  EXPECT_EQ(h.engine->retire_oldest(), ha);
  EXPECT_EQ(h.engine->retire_oldest(), hb);
  EXPECT_EQ(h.engine->retire_oldest(), hc);
  const auto expect_matches = [](const CandidateBatch& batch,
                                 const RoundScratch& lane) {
    const SerialReference ref = serial_reference(batch, kWeights, kMaxWinners);
    ASSERT_EQ(lane.allocation.selected, ref.allocation.selected);
    ASSERT_EQ(lane.payments, ref.payments);
  };
  expect_matches(batch_a, a);
  expect_matches(batch_b, b);
  expect_matches(batch_c, c);
}

TEST(PipelinedWdpTest, SynchronousEntryPointsRequireEmptyPipeline) {
  const Harness h = make_harness(2, 2);
  RoundScratch lane, other;
  const CandidateBatch batch = make_batch(16, 9);
  h.engine->submit(batch, kWeights, kMaxWinners, {}, lane);
  EXPECT_THROW(h.engine->select_top_m(batch, kWeights, kMaxWinners, {}, other),
               std::invalid_argument);
  h.engine->retire_oldest();
  // Empty pipeline again: the synchronous engine interface works as before.
  const SerialReference ref = serial_reference(batch, kWeights, kMaxWinners);
  h.engine->run_round(batch, kWeights, kMaxWinners, {}, other);
  EXPECT_EQ(other.allocation.selected, ref.allocation.selected);
  EXPECT_EQ(other.payments, ref.payments);
}

TEST(PipelinedWdpTest, SubmitBeyondDepthThrows) {
  const Harness h = make_harness(2, 2);
  RoundScratch s1, s2, s3;
  const CandidateBatch batch = make_batch(10, 4);
  h.engine->submit(batch, kWeights, kMaxWinners, {}, s1);
  h.engine->submit(batch, kWeights, kMaxWinners, {}, s2);
  EXPECT_THROW(h.engine->submit(batch, kWeights, kMaxWinners, {}, s3),
               std::invalid_argument);
  h.engine->retire_oldest();
  h.engine->retire_oldest();
}

// ---------------------------------------------------------------------------
// Cross-round misattribution regression: a round-t reply arriving during
// round t+1 is validated against round t's context — never merged wrong.
// ---------------------------------------------------------------------------

TEST(PipelinedMisattributionTest, DelayedReplyLandsInItsOwnLaneNotTheNewest) {
  // Rounds t and t+1 have the SAME size, shard count, and span layout, so
  // only sequence routing can tell their replies apart. Round t's replies
  // are delayed until after round t+1 has been submitted; both rounds must
  // still match their own serial references.
  const Harness h = make_harness(2, 2);
  RoundScratch lane_t, lane_t1;
  const CandidateBatch batch_t = make_batch(40, 11);
  const CandidateBatch batch_t1 = make_batch(40, 12);  // same n, same spans

  h.transport->delay_next_reply(3);  // round t, shard 0: surfaces late
  h.engine->submit(batch_t, kWeights, kMaxWinners, {}, lane_t);
  h.engine->submit(batch_t1, kWeights, kMaxWinners, {}, lane_t1);
  h.engine->retire_oldest();
  h.engine->retire_oldest();

  const SerialReference ref_t =
      serial_reference(batch_t, kWeights, kMaxWinners);
  const SerialReference ref_t1 =
      serial_reference(batch_t1, kWeights, kMaxWinners);
  ASSERT_EQ(lane_t.allocation.selected, ref_t.allocation.selected);
  ASSERT_EQ(lane_t.payments, ref_t.payments);
  ASSERT_EQ(lane_t1.allocation.selected, ref_t1.allocation.selected);
  ASSERT_EQ(lane_t1.payments, ref_t1.payments);
}

TEST(PipelinedMisattributionTest, DuplicatedStaleReplyIsIgnoredAcrossRounds) {
  // Round t's shard-0 reply is duplicated AND delayed past round t's
  // retirement (t recovers by re-dispatch), so both stale copies surface
  // while round t+1 — same span geometry, one straggler of its own keeping
  // its collect loop pumping — is the round being retired. Sequence
  // validation must ignore them; only span geometry could not.
  const Harness h = make_harness(2, 2);
  RoundScratch lane_t, lane_t1;
  const CandidateBatch batch_t = make_batch(40, 21);
  const CandidateBatch batch_t1 = make_batch(40, 22);

  h.transport->duplicate_next_reply();
  h.transport->delay_next_reply(6);  // round t, shard 0: both copies late
  h.engine->submit(batch_t, kWeights, kMaxWinners, {}, lane_t);
  h.transport->delay_next_reply(8);  // round t+1, shard 0: the straggler
  h.engine->submit(batch_t1, kWeights, kMaxWinners, {}, lane_t1);
  h.engine->retire_oldest();
  h.engine->retire_oldest();

  const SerialReference ref_t =
      serial_reference(batch_t, kWeights, kMaxWinners);
  const SerialReference ref_t1 =
      serial_reference(batch_t1, kWeights, kMaxWinners);
  ASSERT_EQ(lane_t.allocation.selected, ref_t.allocation.selected);
  ASSERT_EQ(lane_t.payments, ref_t.payments);
  ASSERT_EQ(lane_t1.allocation.selected, ref_t1.allocation.selected);
  ASSERT_EQ(lane_t1.payments, ref_t1.payments);
  EXPECT_GE(h.engine->last_round_stats().ignored_replies, 1u);
}

TEST(PipelinedMisattributionTest, AncientReplySurvivingALaneWrapIsIgnored) {
  // The stale-sequence edge: a reply delayed long enough that the lane ring
  // has wrapped — the slot that held its round now holds a much newer one.
  // Routing by exact sequence (not by lane index) must ignore it.
  const std::size_t depth = 2;
  const Harness h = make_harness(2, depth);
  std::vector<CandidateBatch> batches;
  for (std::size_t r = 0; r < 6; ++r) {
    batches.push_back(make_batch(40, 300 + r));  // identical geometry
  }
  std::vector<RoundScratch> lanes(depth);
  // Round 0 shard 0's reply only surfaces after ~10 further receive calls,
  // by which time rounds 2.. occupy the ring slot round 0 used.
  h.transport->delay_next_reply(10);
  std::size_t submitted = 0;
  for (std::size_t r = 0; r < batches.size(); ++r) {
    while (submitted < batches.size() &&
           h.engine->rounds_in_flight() < depth) {
      h.engine->submit(batches[submitted], kWeights, kMaxWinners, {},
                       lanes[submitted % depth]);
      ++submitted;
    }
    h.engine->retire_oldest();
    const SerialReference ref =
        serial_reference(batches[r], kWeights, kMaxWinners);
    ASSERT_EQ(lanes[r % depth].allocation.selected, ref.allocation.selected)
        << "round " << r;
    ASSERT_EQ(lanes[r % depth].payments, ref.payments) << "round " << r;
  }
  // The delayed original eventually surfaced against a wrapped window (its
  // round had been re-covered by redispatch and retired) and was ignored.
  EXPECT_GE(h.engine->last_round_stats().ignored_replies, 1u);
}

TEST(PipelinedMisattributionTest, AbandonedGenerationRepliesDoNotResurface) {
  // resubmit() must invalidate the previous dispatch generation: replies
  // computed under the OLD weights may arrive later but can never be
  // merged into the round's new generation.
  const Harness h = make_harness(2, 2);
  RoundScratch lane;
  const CandidateBatch batch = make_batch(50, 31);
  const ScoreWeights stale{.value_weight = 10.0, .bid_weight = 11.0};

  const auto handle = h.engine->submit(batch, stale, kMaxWinners, {}, lane);
  // Old-generation replies are already queued (loopback computes at send).
  h.engine->resubmit(handle, kWeights, {});
  h.engine->retire_oldest();

  const SerialReference ref = serial_reference(batch, kWeights, kMaxWinners);
  ASSERT_EQ(lane.allocation.selected, ref.allocation.selected);
  ASSERT_EQ(lane.allocation.total_score, ref.allocation.total_score);
  ASSERT_EQ(lane.payments, ref.payments);
  const auto& stats = h.engine->last_round_stats();
  EXPECT_EQ(stats.resubmits, 1u);
  EXPECT_GE(stats.ignored_replies, 1u);  // the stale-generation replies
}

TEST(PipelinedMembershipTest, FlappingWorkersUnderDepthStayBitIdentical) {
  // Hedging on, depth 3, and a worker leaving/rejoining between submissions
  // while faults fire — membership frames interleave with in-flight round
  // replies on the same queue, and pump() must apply them without ever
  // disturbing a lane. Every round still matches its own serial reference.
  const std::size_t depth = 3;
  const std::size_t workers = 4;
  const Harness h = make_harness(workers, depth);
  std::vector<RoundScratch> lanes(depth);
  std::vector<CandidateBatch> batches;
  for (std::size_t r = 0; r < 18; ++r) {
    batches.push_back(make_batch(25 + 7 * r, 600 + r, r % 3 == 0));
  }
  std::size_t submitted = 0;
  std::size_t total_leaves = 0;
  std::size_t total_joins = 0;
  for (std::size_t r = 0; r < batches.size(); ++r) {
    while (submitted < batches.size() &&
           h.engine->rounds_in_flight() < depth) {
      if (submitted % 2 == 0) {
        h.transport->announce_worker_leave(submitted % workers);
      } else {
        // The worker that left on the previous submission rejoins.
        h.transport->announce_worker_join((submitted - 1) % workers);
      }
      if (submitted % 5 == 0) h.transport->drop_next_replies(1);
      if (submitted % 7 == 0) h.transport->duplicate_next_reply();
      h.engine->pump();
      total_leaves += h.engine->last_round_stats().worker_leaves;
      total_joins += h.engine->last_round_stats().worker_joins;
      h.engine->submit(batches[submitted], kWeights, kMaxWinners, {},
                       lanes[submitted % depth]);
      ++submitted;
    }
    h.engine->retire_oldest();
    const SerialReference ref =
        serial_reference(batches[r], kWeights, kMaxWinners);
    ASSERT_EQ(lanes[r % depth].allocation.selected, ref.allocation.selected)
        << "round " << r;
    ASSERT_EQ(lanes[r % depth].allocation.total_score,
              ref.allocation.total_score)
        << "round " << r;
    ASSERT_EQ(lanes[r % depth].payments, ref.payments) << "round " << r;
  }
  EXPECT_GE(total_leaves, 1u);
  EXPECT_GE(total_joins, 1u);
  EXPECT_EQ(h.engine->rounds_in_flight(), 0u);
}

// ---------------------------------------------------------------------------
// Mechanism conformance: speculative dispatch on the LTO pipelined API.
// ---------------------------------------------------------------------------

core::LtoVcgConfig pipelined_lto_config(std::size_t workers,
                                        std::size_t depth) {
  core::LtoVcgConfig config;
  config.v_weight = 8.0;
  config.per_round_budget = 5.0;
  config.dist_workers = workers;
  config.dist_pipeline_depth = depth;
  return config;
}

TEST(PipelinedLtoTest, MispredictedSpeculationIsRedispatchedExactly) {
  // A tight budget makes Q move every round, so every speculative dispatch
  // is wrong and must be re-issued — the trajectory still matches serial.
  core::LtoVcgConfig config = pipelined_lto_config(2, 2);
  config.per_round_budget = 0.05;  // Q moves every settled round
  core::LongTermOnlineVcgMechanism pipelined(config);
  config.dist_workers = 0;
  config.dist_pipeline_depth = 1;
  core::LongTermOnlineVcgMechanism serial(config);

  constexpr std::size_t kRounds = 20;
  std::vector<CandidateBatch> batches;
  for (std::size_t r = 0; r < kRounds; ++r) {
    batches.push_back(make_batch(25, 4000 + r));
  }
  auction::RoundContext context;
  context.max_winners = 4;
  auction::MechanismResult expect, got;
  std::size_t submitted = 0;
  for (std::size_t r = 0; r < kRounds; ++r) {
    while (submitted < kRounds &&
           pipelined.rounds_in_flight() < pipelined.pipeline_depth()) {
      context.round = submitted;
      pipelined.submit_round(batches[submitted], context);
      ++submitted;
    }
    context.round = r;
    expect = serial.run_round(batches[r], context);
    pipelined.retire_round_into(got);
    ASSERT_EQ(expect.winners, got.winners) << "round " << r;
    ASSERT_EQ(expect.payments, got.payments) << "round " << r;

    auction::RoundSettlement settlement;
    settlement.round = r;
    settlement.total_payment = expect.total_payment();
    for (std::size_t w = 0; w < expect.winners.size(); ++w) {
      settlement.winners.push_back(
          auction::WinnerSettlement{.client = expect.winners[w],
                                    .bid = 0.0,
                                    .payment = expect.payments[w],
                                    .energy_cost = 1.0,
                                    .dropped = false});
    }
    serial.settle(settlement);
    pipelined.settle(settlement);
    ASSERT_EQ(serial.budget_backlog(), pipelined.budget_backlog())
        << "round " << r;
  }
  const auto& stats = pipelined.pipeline_stats();
  EXPECT_EQ(stats.submitted, kRounds);
  EXPECT_GT(stats.speculative, 0u);
  EXPECT_GT(stats.redispatched, 0u) << "tight budget must move Q";
  EXPECT_EQ(stats.confirmed + stats.redispatched, stats.speculative);
}

TEST(PipelinedLtoTest, QuiescentQueuesConfirmEverySpeculation) {
  // A generous budget keeps Q pinned at 0 (payments never exceed it), so
  // every speculative dispatch is confirmed and no round is re-sent — the
  // overlap is real, not re-dispatch in disguise.
  core::LtoVcgConfig config = pipelined_lto_config(2, 3);
  config.per_round_budget = 1e6;
  core::LongTermOnlineVcgMechanism pipelined(config);

  constexpr std::size_t kRounds = 12;
  std::vector<CandidateBatch> batches;
  for (std::size_t r = 0; r < kRounds; ++r) {
    batches.push_back(make_batch(30, 5000 + r));
  }
  auction::RoundContext context;
  context.max_winners = 4;
  auction::MechanismResult got;
  std::size_t submitted = 0;
  for (std::size_t r = 0; r < kRounds; ++r) {
    while (submitted < kRounds &&
           pipelined.rounds_in_flight() < pipelined.pipeline_depth()) {
      context.round = submitted;
      pipelined.submit_round(batches[submitted], context);
      ++submitted;
    }
    pipelined.retire_round_into(got);
    auction::RoundSettlement settlement;
    settlement.round = r;
    settlement.total_payment = got.total_payment();
    for (std::size_t w = 0; w < got.winners.size(); ++w) {
      settlement.winners.push_back(
          auction::WinnerSettlement{.client = got.winners[w],
                                    .bid = 0.0,
                                    .payment = got.payments[w],
                                    .energy_cost = 1.0,
                                    .dropped = false});
    }
    pipelined.settle(settlement);
  }
  const auto& stats = pipelined.pipeline_stats();
  EXPECT_GT(stats.speculative, 0u);
  EXPECT_EQ(stats.redispatched, 0u);
  EXPECT_EQ(stats.confirmed, stats.speculative);
}

TEST(PipelinedLtoTest, RetiringBeforeSettlingThePreviousRoundThrows) {
  core::LongTermOnlineVcgMechanism mechanism(pipelined_lto_config(2, 2));
  const CandidateBatch batch_a = make_batch(10, 61);
  const CandidateBatch batch_b = make_batch(10, 62);
  auction::RoundContext context;
  context.max_winners = 3;
  auction::MechanismResult out;
  context.round = 0;
  mechanism.submit_round(batch_a, context);
  context.round = 1;
  mechanism.submit_round(batch_b, context);
  mechanism.retire_round_into(out);
  // Round 1's speculation is unvalidated until round 0 settles.
  EXPECT_THROW(mechanism.retire_round_into(out), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The soak: 500-round settled markets, depth x workers x fault schedules.
// ---------------------------------------------------------------------------

/// One scripted fault per round, rotating through the whole menu (with
/// permanent faults — worker death, mutes — rationed so the cluster always
/// retains a recovery path: local fallback stays enabled).
void inject_round_fault(LoopbackTransport& transport, std::size_t workers,
                        sfl::util::Rng& rng, std::size_t round,
                        bool& killed_one) {
  switch (rng.uniform_index(8)) {
    case 0:
      transport.drop_next_replies(1 + rng.uniform_index(workers));
      break;
    case 1:
      transport.duplicate_next_reply();
      break;
    case 2:
      transport.deliver_lifo(round % 2 == 0);
      break;
    case 3:
      transport.delay_next_reply(1 + rng.uniform_index(6));
      break;
    case 4:
      transport.corrupt_next_reply(rng.uniform_index(200),
                                   static_cast<unsigned char>(
                                       1 + rng.uniform_index(255)));
      break;
    case 5:
      // Temporary one-way loss; cleared a few rounds later by case 6.
      transport.mute_worker(rng.uniform_index(workers));
      break;
    case 6:
      transport.clear_faults();
      break;
    case 7:
      if (!killed_one && workers >= 4) {
        // At most one permanent death per market, only in clusters with
        // spare capacity (the routing still recovers either way; this
        // keeps the soak exercising the distributed path, not just the
        // local fallback).
        transport.kill_worker_after_request(rng.uniform_index(workers));
        killed_one = true;
      } else {
        transport.drop_next_replies(1);
      }
      break;
  }
}

TEST(PipelinedSoakTest, FiveHundredRoundSettledMarketsBitIdenticalToSerial) {
  constexpr std::size_t kClients = 24;
  constexpr std::size_t kRounds = 500;

  for (const std::size_t depth : {1u, 2u, 4u}) {
    for (const std::size_t workers : {1u, 2u, 4u, 7u}) {
      const std::uint64_t seed =
          scenario_seed(7'000 + depth * 100 + workers);
      SeedRecorder recorder(seed);
      SCOPED_TRACE("repro: dist_pipelined_wdp_test --seed=" +
                   std::to_string(seed) + " (depth=" + std::to_string(depth) +
                   " workers=" + std::to_string(workers) + ")");

      core::LtoVcgConfig config;
      config.v_weight = 8.0;
      config.per_round_budget = 4.0;
      config.energy_rates.assign(kClients, 0.4);  // Z queues on
      core::LongTermOnlineVcgMechanism serial(config);
      config.dist_workers = workers;
      config.dist_pipeline_depth = depth;
      core::LongTermOnlineVcgMechanism pipelined(config);

      auto* transport = dynamic_cast<LoopbackTransport*>(
          &pipelined.distributed_engine()->transport());
      ASSERT_NE(transport, nullptr);

      sfl::util::Rng market_rng(seed);
      sfl::util::Rng fault_rng(seed ^ 0xfa017f5ULL);
      bool killed_one = false;

      // Depth-sized ring of batch lanes; the serial mechanism consumes the
      // same batches strictly in round order.
      const std::size_t lanes = depth;
      std::vector<CandidateBatch> batch_lane(lanes);
      auction::RoundContext context;
      context.per_round_budget = config.per_round_budget;
      auction::MechanismResult expect, got;

      std::size_t submitted = 0;
      const auto submit_next = [&] {
        CandidateBatch& batch = batch_lane[submitted % lanes];
        batch.clear();
        const std::size_t n = 1 + market_rng.uniform_index(kClients);
        for (std::size_t i = 0; i < n; ++i) {
          batch.emplace(
              static_cast<ClientId>(market_rng.uniform_index(kClients)),
              market_rng.uniform(0.1, 5.0), market_rng.uniform(0.05, 3.0),
              market_rng.uniform(0.2, 2.0));
        }
        inject_round_fault(*transport, workers, fault_rng, submitted,
                           killed_one);
        context.round = submitted;
        context.max_winners = 1 + (submitted % 7);
        if (depth > 1) {
          pipelined.submit_round(batch, context);
        }
        ++submitted;
      };

      while (submitted < std::min<std::size_t>(lanes, kRounds)) submit_next();
      for (std::size_t round = 0; round < kRounds; ++round) {
        const CandidateBatch& batch = batch_lane[round % lanes];
        context.round = round;
        context.max_winners = 1 + (round % 7);
        expect = serial.run_round(batch, context);
        if (depth > 1) {
          pipelined.retire_round_into(got);
        } else {
          got = pipelined.run_round(batch, context);
        }
        ASSERT_EQ(expect.winners, got.winners) << "round " << round;
        ASSERT_EQ(expect.payments, got.payments) << "round " << round;

        auction::RoundSettlement settlement;
        settlement.round = round;
        settlement.total_payment = expect.total_payment();
        for (std::size_t w = 0; w < expect.winners.size(); ++w) {
          settlement.winners.push_back(
              auction::WinnerSettlement{.client = expect.winners[w],
                                        .bid = 0.0,
                                        .payment = expect.payments[w],
                                        .energy_cost = 1.0,
                                        .dropped = false});
        }
        serial.settle(settlement);
        pipelined.settle(settlement);
        if (submitted < kRounds) submit_next();
      }

      ASSERT_EQ(serial.budget_backlog(), pipelined.budget_backlog());
      ASSERT_EQ(serial.average_budget_backlog(),
                pipelined.average_budget_backlog());
      for (std::size_t client = 0; client < kClients; ++client) {
        ASSERT_EQ(serial.sustainability_backlog(client),
                  pipelined.sustainability_backlog(client))
            << "client " << client;
      }
      if (::testing::Test::HasFailure()) return;
    }
  }
}

// ---------------------------------------------------------------------------
// The src/core pipelined market loop: run_market equality end to end.
// ---------------------------------------------------------------------------

TEST(PipelinedMarketLoopTest, RunMarketTrajectoriesMatchSerialExactly) {
  const std::uint64_t seed = scenario_seed(424242);
  SeedRecorder recorder(seed);
  SCOPED_TRACE("repro: dist_pipelined_wdp_test --seed=" +
               std::to_string(seed) + " (run_market)");

  core::MarketSpec spec;
  spec.num_clients = 40;
  spec.rounds = 200;
  spec.max_winners = 6;
  spec.per_round_budget = 4.0;
  spec.seed = seed;

  auction::MechanismConfig config;
  config.num_clients = spec.num_clients;
  config.per_round_budget = spec.per_round_budget;
  config.lto.v_weight = 8.0;
  config.lto.pacing_rate = 0.4;
  const auto serial = auction::build_mechanism("lto-vcg", config);
  const core::MarketResult reference = core::run_market(*serial, spec);

  for (const std::size_t depth : {2u, 4u}) {
    SCOPED_TRACE("depth=" + std::to_string(depth));
    auction::MechanismConfig pipe_config = config;
    pipe_config.lto.dist_workers = 3;
    pipe_config.lto.dist_pipeline_depth = depth;
    const auto pipelined =
        auction::build_mechanism("lto-vcg-dist-pipe", pipe_config);

    // Mid-run faults: a muted worker plus a burst of dropped/reordered
    // replies armed up front — recovery must stay invisible to results.
    auto* lto = dynamic_cast<core::LongTermOnlineVcgMechanism*>(
        pipelined->underlying());
    ASSERT_NE(lto, nullptr);
    auto* transport = dynamic_cast<LoopbackTransport*>(
        &lto->distributed_engine()->transport());
    ASSERT_NE(transport, nullptr);
    transport->mute_worker(2);
    transport->drop_next_replies(5);
    transport->deliver_lifo(true);

    const core::MarketResult result = core::run_market(*pipelined, spec);
    ASSERT_EQ(reference.welfare_series, result.welfare_series);
    ASSERT_EQ(reference.payment_series, result.payment_series);
    ASSERT_EQ(reference.cumulative_payment_series,
              result.cumulative_payment_series);
    ASSERT_EQ(reference.client_utilities, result.client_utilities);
    ASSERT_EQ(reference.final_budget_backlog, result.final_budget_backlog);
    ASSERT_EQ(reference.average_budget_backlog,
              result.average_budget_backlog);
    // The loop really pipelined: rounds were fed ahead of retirement.
    EXPECT_GT(lto->pipeline_stats().speculative, 0u);
  }
}

}  // namespace
}  // namespace sfl::dist

// Custom main: --seed=N pins every randomized scenario to one seed for
// exact reproduction; failing seeds are persisted for the CI artifact and
// echoed with a copy-pasteable repro command.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    constexpr const char* kSeedFlag = "--seed=";
    if (arg.rfind(kSeedFlag, 0) == 0) {
      sfl::dist::g_fixed_seed = std::strtoull(
          arg.c_str() + std::string(kSeedFlag).size(), nullptr, 10);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  const int result = RUN_ALL_TESTS();
  if (!sfl::dist::g_failed_seeds.empty()) {
    std::ofstream out("pipelined_failure_seeds.txt", std::ios::app);
    std::cerr << "\npipelined-soak failures; reproduce each with:\n";
    for (const std::uint64_t seed : sfl::dist::g_failed_seeds) {
      out << seed << "\n";
      std::cerr << "  dist_pipelined_wdp_test --seed=" << seed << "\n";
    }
    std::cerr << "(seeds appended to pipelined_failure_seeds.txt)\n";
  }
  return result;
}
