// Fault-injection suite for the distributed WDP coordinator.
//
// Every scenario scripts the deterministic LoopbackTransport — dropped,
// duplicated, delayed, reordered, and corrupted replies; workers dying
// before or after accepting a request; whole-cluster loss — and asserts
// the coordinator either produces the BIT-IDENTICAL allocation and
// critical payments of the serial engine (scenario completes) or fails
// with the typed DistributedWdpError (recovery disabled). Plus the
// acceptance sweep: fixed-seed 200-round settled LTO markets where
// lto-vcg-dist must match lto-vcg exactly for worker counts {1, 2, 4, 7}.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "auction/random_instance.h"
#include "auction/registry.h"
#include "auction/round_scratch.h"
#include "auction/sharded_wdp.h"
#include "core/long_term_online_vcg.h"
#include "dist/distributed_wdp.h"
#include "dist/loopback_transport.h"
#include "util/rng.h"

namespace sfl::dist {
namespace {

using auction::Allocation;
using auction::CandidateBatch;
using auction::ClientId;
using auction::Penalties;
using auction::RoundScratch;
using auction::ScoreWeights;
using auction::ShardedWdp;
using auction::ShardedWdpConfig;

constexpr ScoreWeights kWeights{.value_weight = 10.0, .bid_weight = 12.5};
constexpr std::size_t kMaxWinners = 5;

CandidateBatch make_batch(std::size_t n, std::uint64_t seed,
                          bool with_ties = false) {
  sfl::util::Rng rng(seed);
  CandidateBatch batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double value = rng.uniform(0.1, 5.0);
    double bid = rng.uniform(0.05, 3.0);
    if (with_ties) {
      // Lattice draws force exact score ties across shard boundaries.
      value = 0.5 * static_cast<double>(rng.uniform_index(5));
      bid = 0.25 * static_cast<double>(rng.uniform_index(4));
    }
    batch.emplace(static_cast<ClientId>(rng.uniform_index(n)), value, bid,
                  rng.uniform(0.2, 2.0));
  }
  return batch;
}

struct SerialReference {
  Allocation allocation;
  std::vector<double> payments;
};

SerialReference serial_reference(const CandidateBatch& batch,
                                 const Penalties& penalties = {}) {
  const ShardedWdp serial{ShardedWdpConfig{.shards = 1}};
  RoundScratch scratch;
  serial.run_round(batch, kWeights, kMaxWinners, penalties, scratch);
  return SerialReference{.allocation = scratch.allocation,
                         .payments = scratch.payments};
}

/// Builds a coordinator with an injected loopback transport and hands the
/// transport back for fault scripting.
struct Harness {
  std::unique_ptr<DistributedWdp> engine;
  LoopbackTransport* transport = nullptr;
};

Harness make_harness(std::size_t workers, DistributedWdpConfig config = {}) {
  auto transport = std::make_unique<LoopbackTransport>(workers);
  LoopbackTransport* raw = transport.get();
  config.workers = workers;
  return Harness{
      .engine = std::make_unique<DistributedWdp>(config, std::move(transport)),
      .transport = raw};
}

void expect_bit_identical(const DistributedWdp& engine,
                          const CandidateBatch& batch,
                          const Penalties& penalties = {}) {
  const SerialReference reference = serial_reference(batch, penalties);
  RoundScratch scratch;
  engine.run_round(batch, kWeights, kMaxWinners, penalties, scratch);
  ASSERT_EQ(scratch.allocation.selected, reference.allocation.selected);
  ASSERT_EQ(scratch.allocation.total_score,
            reference.allocation.total_score);  // exact, not approx
  ASSERT_EQ(scratch.payments, reference.payments);
}

// ---------------------------------------------------------------------------
// Clean-path equality.
// ---------------------------------------------------------------------------

TEST(DistributedWdpTest, CleanRoundsMatchSerialForEveryWorkerCount) {
  for (const std::size_t workers : {1u, 2u, 4u, 7u}) {
    for (const std::size_t n : {1u, 3u, 7u, 40u, 257u}) {
      for (const bool ties : {false, true}) {
        const Harness h = make_harness(workers);
        SCOPED_TRACE("workers=" + std::to_string(workers) +
                     " n=" + std::to_string(n) + " ties=" +
                     std::to_string(ties));
        expect_bit_identical(*h.engine, make_batch(n, 31 * n + workers, ties));
      }
    }
  }
}

TEST(DistributedWdpTest, ExplicitShardCountsMatchSerial) {
  // Shard count and worker count vary independently; every combination
  // must merge to the serial result.
  const CandidateBatch batch = make_batch(97, 1234);
  for (const std::size_t shards : {1u, 2u, 5u, 16u}) {
    for (const std::size_t workers : {1u, 3u}) {
      const Harness h =
          make_harness(workers, DistributedWdpConfig{.shards = shards});
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " workers=" + std::to_string(workers));
      expect_bit_identical(*h.engine, batch);
    }
  }
}

TEST(DistributedWdpTest, PenaltiesCrossTheWire) {
  const std::size_t n = 64;
  const CandidateBatch batch = make_batch(n, 99);
  sfl::util::Rng rng(7);
  Penalties penalties(n);
  for (double& p : penalties) p = rng.uniform(0.0, 3.0);
  const Harness h = make_harness(3);
  expect_bit_identical(*h.engine, batch, penalties);
}

TEST(DistributedWdpTest, EmptySlateAndTinyMarkets) {
  const Harness h = make_harness(4);
  RoundScratch scratch;
  const CandidateBatch empty;
  h.engine->run_round(empty, kWeights, kMaxWinners, {}, scratch);
  EXPECT_TRUE(scratch.allocation.selected.empty());
  EXPECT_TRUE(scratch.payments.empty());
  expect_bit_identical(*h.engine, make_batch(1, 5));
  expect_bit_identical(*h.engine, make_batch(2, 6));
}

// ---------------------------------------------------------------------------
// Fault scenarios: each must still be bit-identical to serial.
// ---------------------------------------------------------------------------

TEST(DistributedWdpFaultTest, DroppedReplyIsRedispatched) {
  const CandidateBatch batch = make_batch(50, 42);
  const Harness h = make_harness(3);
  h.transport->drop_next_replies(1);
  expect_bit_identical(*h.engine, batch);
  EXPECT_GE(h.engine->last_round_stats().redispatches, 1u);
}

TEST(DistributedWdpFaultTest, AllRepliesDroppedOnceAreRedispatched) {
  const CandidateBatch batch = make_batch(50, 43);
  const Harness h = make_harness(4);
  h.transport->drop_next_replies(4);  // the entire first dispatch wave
  expect_bit_identical(*h.engine, batch);
  EXPECT_GE(h.engine->last_round_stats().redispatches, 4u);
}

TEST(DistributedWdpFaultTest, DuplicatedReplyIsIgnored) {
  const CandidateBatch batch = make_batch(50, 44);
  const Harness h = make_harness(3);
  h.transport->duplicate_next_reply();
  expect_bit_identical(*h.engine, batch);
  EXPECT_GE(h.engine->last_round_stats().ignored_replies, 1u);
}

TEST(DistributedWdpFaultTest, ReorderedRepliesMergeIdentically) {
  const CandidateBatch batch = make_batch(120, 45, /*with_ties=*/true);
  const Harness h = make_harness(5);
  h.transport->deliver_lifo(true);  // newest reply first
  expect_bit_identical(*h.engine, batch);
}

TEST(DistributedWdpFaultTest, WorkerDeathMidRoundReroutes) {
  const CandidateBatch batch = make_batch(60, 46);
  const Harness h = make_harness(3);
  // Shard 0's home worker accepts its request, never replies, and is dead
  // after. The re-dispatch advances along the shard's rendezvous order, so
  // the coordinator recovers without ever probing the corpse again.
  const std::size_t home = h.engine->home_worker(0);
  h.transport->kill_worker_after_request(home);
  expect_bit_identical(*h.engine, batch);
  EXPECT_FALSE(h.transport->worker_alive(home));
  EXPECT_GE(h.engine->last_round_stats().redispatches, 1u);
}

TEST(DistributedWdpFaultTest, DeadWorkerAtDispatchIsSkipped) {
  const CandidateBatch batch = make_batch(60, 47);
  const Harness h = make_harness(3);
  h.transport->kill_worker(1);  // send() throws; coordinator routes around
  expect_bit_identical(*h.engine, batch);
  EXPECT_GE(h.engine->last_round_stats().dead_workers, 1u);
}

TEST(DistributedWdpFaultTest, SlowShardTimesOutAndRecovers) {
  const CandidateBatch batch = make_batch(80, 48);
  const Harness h = make_harness(2);
  // The first reply only becomes deliverable after 6 further receive()
  // calls — the coordinator times out, re-dispatches, and must ignore
  // whichever copy loses the race.
  h.transport->delay_next_reply(6);
  expect_bit_identical(*h.engine, batch);
  const auto& stats = h.engine->last_round_stats();
  EXPECT_GE(stats.redispatches + stats.local_recomputes, 1u);
}

TEST(DistributedWdpFaultTest, CorruptedReplyIsRejectedNeverAccepted) {
  const CandidateBatch batch = make_batch(70, 49);
  for (const std::size_t byte_index : {5u, 17u, 40u, 100u}) {
    const Harness h = make_harness(3);
    h.transport->corrupt_next_reply(byte_index, 0x5A);
    SCOPED_TRACE("corrupt byte " + std::to_string(byte_index));
    expect_bit_identical(*h.engine, batch);
    EXPECT_GE(h.engine->last_round_stats().rejected_replies, 1u);
  }
}

TEST(DistributedWdpFaultTest, WholeClusterLossFallsBackLocally) {
  const CandidateBatch batch = make_batch(90, 50);
  const Harness h = make_harness(4);
  for (std::size_t w = 0; w < 4; ++w) h.transport->kill_worker(w);
  expect_bit_identical(*h.engine, batch);
  const auto& stats = h.engine->last_round_stats();
  EXPECT_EQ(stats.local_recomputes, h.engine->effective_shards(batch.size()));
}

TEST(DistributedWdpFaultTest, PersistentLossExhaustsAttemptsThenRecovers) {
  const CandidateBatch batch = make_batch(90, 51);
  const Harness h = make_harness(2);
  h.transport->drop_next_replies(1000);  // nothing ever arrives
  expect_bit_identical(*h.engine, batch);
  EXPECT_EQ(h.engine->last_round_stats().local_recomputes,
            h.engine->effective_shards(batch.size()));
}

TEST(DistributedWdpFaultTest, MutedHomeWorkerIsRoutedPastWithoutFallback) {
  // One-way link failure: the home worker accepts every request but its
  // replies never arrive. With local fallback DISABLED the round can only
  // succeed if re-dispatch advances to the other (healthy) worker — a
  // retry policy pinned to the home worker would throw here.
  const CandidateBatch batch = make_batch(80, 54);
  const Harness h = make_harness(2, DistributedWdpConfig{
                                        .max_attempts_per_shard = 3,
                                        .allow_local_fallback = false});
  h.transport->mute_worker(h.engine->home_worker(0));
  expect_bit_identical(*h.engine, batch);
  EXPECT_GE(h.engine->last_round_stats().redispatches, 1u);
  EXPECT_EQ(h.engine->last_round_stats().local_recomputes, 0u);
}

TEST(DistributedWdpFaultTest, UnrecoverableLossIsATypedError) {
  const CandidateBatch batch = make_batch(40, 52);
  const Harness h = make_harness(2, DistributedWdpConfig{
                                        .max_attempts_per_shard = 2,
                                        .allow_local_fallback = false});
  h.transport->drop_next_replies(1000);
  RoundScratch scratch;
  EXPECT_THROW(
      h.engine->select_top_m(batch, kWeights, kMaxWinners, {}, scratch),
      DistributedWdpError);
  // Once the transport behaves again, the SAME engine recovers: stale
  // frames are invalidated by the round sequence number.
  h.transport->clear_faults();
  expect_bit_identical(*h.engine, batch);
}

TEST(DistributedWdpFaultTest, FaultPileupStillMatchesSerial) {
  // Several faults in one round: a dead worker, a dropped reply, a
  // duplicate, LIFO delivery, and a corrupted frame.
  const CandidateBatch batch = make_batch(150, 53, /*with_ties=*/true);
  const Harness h = make_harness(4);
  h.transport->kill_worker(2);
  h.transport->deliver_lifo(true);
  h.transport->drop_next_replies(1);
  h.transport->duplicate_next_reply();
  h.transport->corrupt_next_reply(33, 0x80);
  expect_bit_identical(*h.engine, batch);
}

// ---------------------------------------------------------------------------
// Acceptance sweep: 200-round settled LTO markets, workers {1, 2, 4, 7}.
// ---------------------------------------------------------------------------

TEST(DistributedLtoTrajectoryTest, TwoHundredRoundMarketsMatchSerialExactly) {
  constexpr std::size_t kClients = 30;
  constexpr std::size_t kRounds = 200;

  for (const std::size_t workers : {1u, 2u, 4u, 7u}) {
    SCOPED_TRACE("dist_workers=" + std::to_string(workers));
    auction::MechanismConfig config;
    config.num_clients = kClients;
    config.per_round_budget = 5.0;
    config.lto.v_weight = 8.0;
    config.lto.pacing_rate = 0.4;
    const auto serial = auction::build_mechanism("lto-vcg", config);
    config.lto.dist_workers = workers;
    const auto dist = auction::build_mechanism("lto-vcg-dist", config);

    sfl::util::Rng rng(1000 + workers);
    for (std::size_t round = 0; round < kRounds; ++round) {
      const std::size_t n = 1 + rng.uniform_index(kClients);
      std::vector<auction::Candidate> candidates;
      candidates.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        candidates.push_back(auction::Candidate{
            .id = static_cast<ClientId>(rng.uniform_index(kClients)),
            .value = rng.uniform(0.1, 5.0),
            .bid = rng.uniform(0.05, 3.0),
            .energy_cost = rng.uniform(0.2, 2.0)});
      }
      auction::RoundContext context;
      context.round = round;
      context.max_winners = 1 + rng.uniform_index(8);
      context.per_round_budget = config.per_round_budget;

      const auction::MechanismResult reference =
          serial->run_round(candidates, context);
      const auction::MechanismResult result =
          dist->run_round(candidates, context);
      ASSERT_EQ(reference.winners, result.winners) << "round " << round;
      ASSERT_EQ(reference.payments, result.payments) << "round " << round;

      auction::RoundSettlement settlement;
      settlement.round = round;
      settlement.total_payment = reference.total_payment();
      for (std::size_t w = 0; w < reference.winners.size(); ++w) {
        settlement.winners.push_back(auction::WinnerSettlement{
            .client = reference.winners[w],
            .bid = 0.0,
            .payment = reference.payments[w],
            .energy_cost = 1.0,
            .dropped = false});
      }
      serial->settle(settlement);
      dist->settle(settlement);
    }

    auto* serial_lto =
        dynamic_cast<core::LongTermOnlineVcgMechanism*>(serial->underlying());
    auto* dist_lto =
        dynamic_cast<core::LongTermOnlineVcgMechanism*>(dist->underlying());
    ASSERT_NE(serial_lto, nullptr);
    ASSERT_NE(dist_lto, nullptr);
    ASSERT_EQ(serial_lto->budget_backlog(), dist_lto->budget_backlog());
    for (std::size_t client = 0; client < kClients; ++client) {
      ASSERT_EQ(serial_lto->sustainability_backlog(client),
                dist_lto->sustainability_backlog(client))
          << "client " << client;
    }
  }
}

TEST(DistributedLtoTrajectoryTest, AFaultEveryRoundStaysBitIdentical) {
  // 60 engine rounds, one scripted fault per round rotating through the
  // whole menu, evolving weights (as a settling LTO market produces) —
  // every round must match the serial engine bit for bit.
  auto transport = std::make_unique<LoopbackTransport>(3);
  LoopbackTransport* raw = transport.get();
  const DistributedWdp engine{DistributedWdpConfig{}, std::move(transport)};
  const ShardedWdp serial{ShardedWdpConfig{.shards = 1}};

  sfl::util::Rng rng(777);
  RoundScratch serial_scratch;
  RoundScratch dist_scratch;
  for (std::size_t round = 0; round < 60; ++round) {
    switch (round % 5) {
      case 0: raw->drop_next_replies(1); break;
      case 1: raw->duplicate_next_reply(); break;
      case 2: raw->deliver_lifo(round % 2 == 0); break;
      case 3: raw->delay_next_reply(4); break;
      case 4: raw->corrupt_next_reply(round, 0x42); break;
    }

    const std::size_t n = 1 + rng.uniform_index(120);
    const CandidateBatch batch = make_batch(n, 9000 + round, round % 3 == 0);
    // Weights drift the way a settling budget queue moves them.
    const ScoreWeights weights{
        .value_weight = 8.0,
        .bid_weight = 8.0 + rng.uniform(0.0, 6.0)};
    const std::size_t m = 1 + rng.uniform_index(8);

    serial.run_round(batch, weights, m, {}, serial_scratch);
    engine.run_round(batch, weights, m, {}, dist_scratch);
    ASSERT_EQ(serial_scratch.allocation.selected,
              dist_scratch.allocation.selected)
        << "round " << round;
    ASSERT_EQ(serial_scratch.allocation.total_score,
              dist_scratch.allocation.total_score)
        << "round " << round;
    ASSERT_EQ(serial_scratch.payments, dist_scratch.payments)
        << "round " << round;
  }
}

}  // namespace
}  // namespace sfl::dist
