// Socket transport: the distributed WDP protocol over real localhost TCP.
//
// Spins up TcpShardServer workers (each a listening socket + serve thread
// running the real codec worker), connects a TcpTransport coordinator, and
// asserts the DistributedWdp engine produces the bit-identical serial
// result — including with a worker killed mid-run (the coordinator routes
// around the dead socket or recomputes locally). Environments that forbid
// binding localhost sockets skip these tests instead of failing.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "auction/sharded_wdp.h"
#include "dist/distributed_wdp.h"
#include "dist/tcp_transport.h"
#include "util/rng.h"

namespace sfl::dist {
namespace {

using auction::CandidateBatch;
using auction::ClientId;
using auction::RoundScratch;
using auction::ScoreWeights;
using auction::ShardedWdp;
using auction::ShardedWdpConfig;

constexpr ScoreWeights kWeights{.value_weight = 10.0, .bid_weight = 12.5};
constexpr std::size_t kMaxWinners = 6;

CandidateBatch make_batch(std::size_t n, std::uint64_t seed) {
  sfl::util::Rng rng(seed);
  CandidateBatch batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.emplace(static_cast<ClientId>(rng.uniform_index(n)),
                  rng.uniform(0.1, 5.0), rng.uniform(0.05, 3.0),
                  rng.uniform(0.2, 2.0));
  }
  return batch;
}

/// Servers + engine, or nullptr when the sandbox forbids sockets.
struct TcpCluster {
  std::vector<std::unique_ptr<TcpShardServer>> servers;
  std::unique_ptr<DistributedWdp> engine;
};

TcpCluster make_cluster(std::size_t workers) {
  TcpCluster cluster;
  std::vector<TcpTransport::Endpoint> endpoints;
  try {
    for (std::size_t w = 0; w < workers; ++w) {
      cluster.servers.push_back(std::make_unique<TcpShardServer>());
      cluster.servers.back()->start();
      endpoints.push_back(
          TcpTransport::Endpoint{.port = cluster.servers.back()->port()});
    }
  } catch (const std::runtime_error&) {
    cluster.servers.clear();
    return cluster;  // sockets unavailable here
  }
  // Short timeout: localhost round-trips are sub-millisecond, and the dead
  // -worker test leans on timeouts to reach the recovery path quickly.
  cluster.engine = std::make_unique<DistributedWdp>(
      DistributedWdpConfig{.receive_timeout = std::chrono::milliseconds(250)},
      std::make_unique<TcpTransport>(std::move(endpoints)));
  return cluster;
}

void expect_bit_identical(const DistributedWdp& engine,
                          const CandidateBatch& batch) {
  const ShardedWdp serial{ShardedWdpConfig{.shards = 1}};
  RoundScratch serial_scratch;
  serial.run_round(batch, kWeights, kMaxWinners, {}, serial_scratch);
  RoundScratch dist_scratch;
  engine.run_round(batch, kWeights, kMaxWinners, {}, dist_scratch);
  ASSERT_EQ(serial_scratch.allocation.selected,
            dist_scratch.allocation.selected);
  ASSERT_EQ(serial_scratch.allocation.total_score,
            dist_scratch.allocation.total_score);
  ASSERT_EQ(serial_scratch.payments, dist_scratch.payments);
}

TEST(TcpTransportTest, RoundsOverLocalhostMatchSerial) {
  TcpCluster cluster = make_cluster(2);
  if (cluster.engine == nullptr) {
    GTEST_SKIP() << "cannot bind localhost sockets in this environment";
  }
  for (const std::size_t n : {1u, 17u, 300u}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    expect_bit_identical(*cluster.engine, make_batch(n, 11 * n + 3));
  }
  std::size_t served = 0;
  for (const auto& server : cluster.servers) {
    served += server->served_requests();
  }
  EXPECT_GT(served, 0u) << "the TCP workers never served a request";
}

TEST(TcpTransportTest, MultiRoundSequenceReusesConnections) {
  TcpCluster cluster = make_cluster(3);
  if (cluster.engine == nullptr) {
    GTEST_SKIP() << "cannot bind localhost sockets in this environment";
  }
  for (std::size_t round = 0; round < 8; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    expect_bit_identical(*cluster.engine, make_batch(64 + round, 500 + round));
  }
}

TEST(TcpTransportTest, DeadServerIsRoutedAroundOrRecomputed) {
  TcpCluster cluster = make_cluster(2);
  if (cluster.engine == nullptr) {
    GTEST_SKIP() << "cannot bind localhost sockets in this environment";
  }
  expect_bit_identical(*cluster.engine, make_batch(40, 77));
  // Kill one worker between rounds; the coordinator must still produce
  // the exact result via rerouting or local recomputation.
  cluster.servers[0]->stop();
  expect_bit_identical(*cluster.engine, make_batch(40, 78));
  const auto& stats = cluster.engine->last_round_stats();
  EXPECT_GE(stats.redispatches + stats.local_recomputes + stats.dead_workers,
            1u);
}

TEST(TcpTransportTest, ConnectionRefusedIsADeadWorkerNotACrash) {
  // One dedicated live server (no other transport holding its single
  // served connection) plus one port nobody listens on: the refused
  // endpoint is simply a dead worker, and the live one handles every
  // shard — no timeout/local-fallback path should be needed.
  std::unique_ptr<TcpShardServer> server;
  try {
    server = std::make_unique<TcpShardServer>();
    server->start();
  } catch (const std::runtime_error&) {
    GTEST_SKIP() << "cannot bind localhost sockets in this environment";
  }
  std::vector<TcpTransport::Endpoint> endpoints{
      {.port = server->port()},
      {.port = 1}};  // privileged port: connection refused
  const DistributedWdp engine{
      DistributedWdpConfig{.receive_timeout = std::chrono::milliseconds(250)},
      std::make_unique<TcpTransport>(std::move(endpoints))};
  expect_bit_identical(engine, make_batch(50, 79));
  EXPECT_GT(server->served_requests(), 0u)
      << "the live worker never served; the test fell through to fallback";
  EXPECT_EQ(engine.last_round_stats().local_recomputes, 0u);
}

}  // namespace
}  // namespace sfl::dist
