// Wire-codec round-trip + fuzz suite.
//
// Round-trip: randomly generated frames of every wire type — the shard
// protocol's requests/replies, the service RPC types (SubmitBids,
// RoundResult, SettlementAck), and the membership announcements
// (WorkerHello, WorkerGoodbye) — must encode/decode to bit-identical
// structures (doubles compared as bit patterns).
//
// Fuzz: seeded random byte mutations of valid frames, truncations at every
// boundary class, type-confused decodes, and pure-garbage buffers must
// NEVER crash and NEVER be accepted — every corrupt input throws the typed
// WireError (length/magic/checksum/structural validation). The sweeps draw
// uniformly from all seven frame kinds.
//
// Reproducing failures: every trial logs its seed; run
//   <binary> --seed=N
// to replay exactly that generated frame and its mutations. Failing seeds
// are appended to codec_fuzz_failure_seeds.txt (CI artifact), same
// protocol as the PR-3 property harness. SFL_FUZZ_TRIALS overrides the
// trial count (default 1500).
#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "dist/shard_worker.h"
#include "dist/wire_codec.h"
#include "service/rpc_messages.h"
#include "util/rng.h"

namespace sfl::dist {
namespace {

std::optional<std::uint64_t> g_fixed_seed;  // --seed=N
std::vector<std::uint64_t> g_failed_seeds;  // written to the artifact

std::size_t fuzz_trials() {
  if (g_fixed_seed.has_value()) return 1;
  if (const char* env = std::getenv("SFL_FUZZ_TRIALS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 1500;
}

std::uint64_t trial_seed(std::size_t trial) {
  return g_fixed_seed.value_or(static_cast<std::uint64_t>(trial));
}

void record_failure(std::uint64_t seed) {
  for (const std::uint64_t s : g_failed_seeds) {
    if (s == seed) return;
  }
  g_failed_seeds.push_back(seed);
}

// ---------------------------------------------------------------------------
// Frame generators.
// ---------------------------------------------------------------------------

ShardRequest make_request(sfl::util::Rng& rng) {
  ShardRequest request;
  request.round = rng();
  request.shard_count = 1 + static_cast<std::uint32_t>(rng.uniform_index(16));
  request.shard =
      static_cast<std::uint32_t>(rng.uniform_index(request.shard_count));
  request.begin = rng.uniform_index(1 << 20);
  request.max_winners = rng.uniform_index(64);
  request.weights.value_weight = rng.uniform(0.0, 20.0);
  request.weights.bid_weight = rng.uniform(0.1, 20.0);
  const std::size_t span = rng.uniform_index(65);  // 0..64 rows
  const bool with_penalties = rng.bernoulli(0.5);
  for (std::size_t i = 0; i < span; ++i) {
    request.ids.push_back(rng.uniform_index(1000));
    request.values.push_back(rng.uniform(0.0, 5.0));
    request.bids.push_back(rng.uniform(0.0, 3.0));
    if (with_penalties) request.penalties.push_back(rng.uniform(0.0, 4.0));
  }
  return request;
}

ShardReply make_reply(sfl::util::Rng& rng) {
  // Built through the real worker so the reply is always semantically
  // valid (survivor count/index invariants hold by construction).
  const ShardRequest request = make_request(rng);
  ShardReply reply;
  compute_survivors(request, reply);
  return reply;
}

sfl::service::SubmitBids make_submit_bids(sfl::util::Rng& rng) {
  sfl::service::SubmitBids msg;
  msg.client = rng.uniform_index(100'000);
  const std::size_t rows = rng.uniform_index(33);  // 0..32 rows
  for (std::size_t i = 0; i < rows; ++i) {
    // (market, round) unique by construction: a 4-wide market grid walked
    // in row order.
    msg.markets.push_back(i % 4);
    msg.rounds.push_back(i / 4);
    msg.values.push_back(rng.uniform(0.0, 5.0));
    msg.bids.push_back(rng.uniform(0.0, 3.0));
    msg.energy_costs.push_back(rng.uniform(0.1, 4.0));
  }
  return msg;
}

sfl::service::RoundResult make_round_result(sfl::util::Rng& rng) {
  sfl::service::RoundResult msg;
  msg.market = rng.uniform_index(64);
  msg.round = rng.uniform_index(1'000);
  const std::size_t winners = rng.uniform_index(17);  // 0..16 winners
  const std::uint64_t base = rng.uniform_index(10'000);
  for (std::size_t i = 0; i < winners; ++i) {
    msg.winners.push_back(base + i);  // unique clients by construction
    msg.payments.push_back(rng.uniform(0.0, 4.0));
  }
  return msg;
}

sfl::service::SettlementAck make_settlement_ack(sfl::util::Rng& rng) {
  sfl::service::SettlementAck msg;
  msg.market = rng.uniform_index(64);
  msg.round = rng.uniform_index(1'000);
  msg.total_payment = rng.uniform(0.0, 40.0);
  msg.winner_count = rng.uniform_index(17);
  return msg;
}

sfl::service::ServerHello make_server_hello(sfl::util::Rng& rng) {
  sfl::service::ServerHello msg;
  msg.bids_per_round = 1 + rng.uniform_index(64);
  msg.max_winners = 1 + rng.uniform_index(16);
  msg.max_pending_rounds = 1 + rng.uniform_index(32);
  // Printable-ASCII mechanism keys up to the wire cap, empty included.
  const std::size_t key_len =
      rng.uniform_index(sfl::service::kMaxMechanismKeyBytes + 1);
  for (std::size_t i = 0; i < key_len; ++i) {
    msg.mechanism.push_back(
        static_cast<char>(0x20 + rng.uniform_index(0x7f - 0x20)));
  }
  return msg;
}

WorkerHello make_worker_hello(sfl::util::Rng& rng) {
  return WorkerHello{.worker = rng()};
}

WorkerGoodbye make_worker_goodbye(sfl::util::Rng& rng) {
  return WorkerGoodbye{.worker = rng()};
}

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void expect_request_roundtrip(const ShardRequest& request,
                              const ShardRequest& decoded) {
  EXPECT_EQ(request.round, decoded.round);
  EXPECT_EQ(request.shard, decoded.shard);
  EXPECT_EQ(request.shard_count, decoded.shard_count);
  EXPECT_EQ(request.begin, decoded.begin);
  EXPECT_EQ(request.max_winners, decoded.max_winners);
  EXPECT_TRUE(bits_equal(request.weights.value_weight,
                         decoded.weights.value_weight));
  EXPECT_TRUE(
      bits_equal(request.weights.bid_weight, decoded.weights.bid_weight));
  EXPECT_EQ(request.ids, decoded.ids);
  ASSERT_EQ(request.values.size(), decoded.values.size());
  for (std::size_t i = 0; i < request.values.size(); ++i) {
    EXPECT_TRUE(bits_equal(request.values[i], decoded.values[i])) << i;
    EXPECT_TRUE(bits_equal(request.bids[i], decoded.bids[i])) << i;
  }
  ASSERT_EQ(request.penalties.size(), decoded.penalties.size());
  for (std::size_t i = 0; i < request.penalties.size(); ++i) {
    EXPECT_TRUE(bits_equal(request.penalties[i], decoded.penalties[i])) << i;
  }
}

// ---------------------------------------------------------------------------
// Round-trip properties.
// ---------------------------------------------------------------------------

// The per-trial bodies live in helper functions so a fatal assertion (or a
// decode throw, caught by the trial loop) aborts only the helper — the
// loop's record_failure(seed) tail ALWAYS runs, keeping the seed artifact
// truthful on red runs.

void run_request_roundtrip_trial(std::uint64_t seed) {
  sfl::util::Rng rng(seed ^ 0xc0decULL);
  const ShardRequest request = make_request(rng);
  Frame frame;
  encode(request, frame);
  ASSERT_EQ(checked_frame_type(frame), FrameType::kRequest);
  expect_request_roundtrip(request, decode_request(frame));
}

void run_reply_roundtrip_trial(std::uint64_t seed) {
  sfl::util::Rng rng(seed ^ 0xf00dULL);
  const ShardReply reply = make_reply(rng);
  Frame frame;
  encode(reply, frame);
  ASSERT_EQ(checked_frame_type(frame), FrameType::kReply);
  const ShardReply decoded = decode_reply(frame);
  EXPECT_EQ(reply.round, decoded.round);
  EXPECT_EQ(reply.shard, decoded.shard);
  EXPECT_EQ(reply.shard_count, decoded.shard_count);
  EXPECT_EQ(reply.begin, decoded.begin);
  EXPECT_EQ(reply.count, decoded.count);
  ASSERT_EQ(reply.survivors.size(), decoded.survivors.size());
  for (std::size_t i = 0; i < reply.survivors.size(); ++i) {
    EXPECT_EQ(reply.survivors[i].index, decoded.survivors[i].index) << i;
    EXPECT_TRUE(
        bits_equal(reply.survivors[i].score, decoded.survivors[i].score))
        << i;
  }
}

void run_submit_bids_roundtrip_trial(std::uint64_t seed) {
  sfl::util::Rng rng(seed ^ 0xb1d5ULL);
  const sfl::service::SubmitBids message = make_submit_bids(rng);
  Frame frame;
  encode(message, frame);
  ASSERT_EQ(checked_frame_type(frame), FrameType::kSubmitBids);
  sfl::service::SubmitBids decoded;
  decode(frame, decoded);
  EXPECT_EQ(message.client, decoded.client);
  EXPECT_EQ(message.markets, decoded.markets);
  EXPECT_EQ(message.rounds, decoded.rounds);
  ASSERT_EQ(message.row_count(), decoded.row_count());
  for (std::size_t i = 0; i < message.row_count(); ++i) {
    EXPECT_TRUE(bits_equal(message.values[i], decoded.values[i])) << i;
    EXPECT_TRUE(bits_equal(message.bids[i], decoded.bids[i])) << i;
    EXPECT_TRUE(bits_equal(message.energy_costs[i], decoded.energy_costs[i]))
        << i;
  }
}

void run_round_result_roundtrip_trial(std::uint64_t seed) {
  sfl::util::Rng rng(seed ^ 0x5e55ULL);
  const sfl::service::RoundResult message = make_round_result(rng);
  Frame frame;
  encode(message, frame);
  ASSERT_EQ(checked_frame_type(frame), FrameType::kRoundResult);
  sfl::service::RoundResult decoded;
  decode(frame, decoded);
  EXPECT_EQ(message.market, decoded.market);
  EXPECT_EQ(message.round, decoded.round);
  EXPECT_EQ(message.winners, decoded.winners);
  ASSERT_EQ(message.payments.size(), decoded.payments.size());
  for (std::size_t i = 0; i < message.payments.size(); ++i) {
    EXPECT_TRUE(bits_equal(message.payments[i], decoded.payments[i])) << i;
  }
}

void run_settlement_ack_roundtrip_trial(std::uint64_t seed) {
  sfl::util::Rng rng(seed ^ 0xac4eULL);
  const sfl::service::SettlementAck message = make_settlement_ack(rng);
  Frame frame;
  encode(message, frame);
  ASSERT_EQ(checked_frame_type(frame), FrameType::kSettlementAck);
  sfl::service::SettlementAck decoded;
  decode(frame, decoded);
  EXPECT_EQ(message.market, decoded.market);
  EXPECT_EQ(message.round, decoded.round);
  EXPECT_TRUE(bits_equal(message.total_payment, decoded.total_payment));
  EXPECT_EQ(message.winner_count, decoded.winner_count);
}

void run_server_hello_roundtrip_trial(std::uint64_t seed) {
  sfl::util::Rng rng(seed ^ 0x5e77ULL);
  const sfl::service::ServerHello message = make_server_hello(rng);
  Frame frame;
  encode(message, frame);
  ASSERT_EQ(checked_frame_type(frame), FrameType::kServerHello);
  sfl::service::ServerHello decoded;
  decode(frame, decoded);
  EXPECT_EQ(message.bids_per_round, decoded.bids_per_round);
  EXPECT_EQ(message.max_winners, decoded.max_winners);
  EXPECT_EQ(message.max_pending_rounds, decoded.max_pending_rounds);
  EXPECT_EQ(message.mechanism, decoded.mechanism);
}

void run_membership_roundtrip_trial(std::uint64_t seed) {
  sfl::util::Rng rng(seed ^ 0x4e110ULL);
  const WorkerHello hello = make_worker_hello(rng);
  Frame frame;
  encode(hello, frame);
  ASSERT_EQ(checked_frame_type(frame), FrameType::kWorkerHello);
  WorkerHello hello_decoded;
  decode(frame, hello_decoded);
  EXPECT_EQ(hello.worker, hello_decoded.worker);

  const WorkerGoodbye goodbye = make_worker_goodbye(rng);
  encode(goodbye, frame);
  ASSERT_EQ(checked_frame_type(frame), FrameType::kWorkerGoodbye);
  WorkerGoodbye goodbye_decoded;
  decode(frame, goodbye_decoded);
  EXPECT_EQ(goodbye.worker, goodbye_decoded.worker);
}

void run_roundtrip_loop(void (*trial)(std::uint64_t)) {
  for (std::size_t t = 0; t < fuzz_trials(); ++t) {
    const std::uint64_t seed = trial_seed(t);
    SCOPED_TRACE("repro: dist_codec_fuzz_test --seed=" +
                 std::to_string(seed));
    const bool failed_before = ::testing::Test::HasFailure();
    try {
      trial(seed);
    } catch (const std::exception& e) {
      ADD_FAILURE() << "round trip threw: " << e.what();
    }
    if (!failed_before && ::testing::Test::HasFailure()) {
      record_failure(seed);
      break;
    }
  }
}

TEST(CodecRoundTripTest, RequestsSurviveEncodeDecodeBitExactly) {
  run_roundtrip_loop(&run_request_roundtrip_trial);
}

TEST(CodecRoundTripTest, RepliesSurviveEncodeDecodeBitExactly) {
  run_roundtrip_loop(&run_reply_roundtrip_trial);
}

TEST(CodecRoundTripTest, SubmitBidsSurviveEncodeDecodeBitExactly) {
  run_roundtrip_loop(&run_submit_bids_roundtrip_trial);
}

TEST(CodecRoundTripTest, RoundResultsSurviveEncodeDecodeBitExactly) {
  run_roundtrip_loop(&run_round_result_roundtrip_trial);
}

TEST(CodecRoundTripTest, SettlementAcksSurviveEncodeDecodeBitExactly) {
  run_roundtrip_loop(&run_settlement_ack_roundtrip_trial);
}

TEST(CodecRoundTripTest, MembershipFramesSurviveEncodeDecodeExactly) {
  run_roundtrip_loop(&run_membership_roundtrip_trial);
}

TEST(CodecRoundTripTest, ServerHellosSurviveEncodeDecodeExactly) {
  run_roundtrip_loop(&run_server_hello_roundtrip_trial);
}

TEST(CodecRoundTripTest, TypeConfusionIsRejected) {
  sfl::util::Rng rng(4242);
  const ShardRequest request = make_request(rng);
  const ShardReply reply = make_reply(rng);
  Frame request_frame;
  Frame reply_frame;
  encode(request, request_frame);
  encode(reply, reply_frame);
  EXPECT_THROW((void)decode_reply(request_frame), WireError);
  EXPECT_THROW((void)decode_request(reply_frame), WireError);

  // Shard <-> service confusion: a valid service frame is never a shard
  // frame and vice versa.
  Frame submit_frame;
  encode(make_submit_bids(rng), submit_frame);
  EXPECT_THROW((void)decode_request(submit_frame), WireError);
  EXPECT_THROW((void)decode_reply(submit_frame), WireError);
  sfl::service::RoundResult result_out;
  EXPECT_THROW(decode(request_frame, result_out), WireError);
  sfl::service::SubmitBids submit_out;
  EXPECT_THROW(decode(reply_frame, submit_out), WireError);

  // Membership confusion: hello and goodbye share a payload layout, so the
  // type byte is the ONLY thing telling join from leave — the decoders must
  // refuse to read one as the other, and neither is ever a shard frame.
  Frame hello_frame;
  Frame goodbye_frame;
  encode(WorkerHello{.worker = 3}, hello_frame);
  encode(WorkerGoodbye{.worker = 3}, goodbye_frame);
  WorkerHello hello_out;
  WorkerGoodbye goodbye_out;
  EXPECT_THROW(decode(hello_frame, goodbye_out), WireError);
  EXPECT_THROW(decode(goodbye_frame, hello_out), WireError);
  EXPECT_THROW((void)decode_request(hello_frame), WireError);
  EXPECT_THROW((void)decode_reply(goodbye_frame), WireError);
  EXPECT_THROW(decode(hello_frame, submit_out), WireError);
}

// ---------------------------------------------------------------------------
// Fuzz: mutated, truncated, and garbage frames.
// ---------------------------------------------------------------------------

/// Every wire type the fuzz sweeps cover: the shard protocol pair, the
/// three service RPC types, and the two PR-7 membership frames.
enum class FrameKind : std::size_t {
  kShardRequest = 0,
  kShardReply,
  kSubmitBids,
  kRoundResult,
  kSettlementAck,
  kServerHello,
  kWorkerHello,
  kWorkerGoodbye,
  kCount,
};

FrameKind pick_kind(sfl::util::Rng& rng) {
  return static_cast<FrameKind>(
      rng.uniform_index(static_cast<std::uint64_t>(FrameKind::kCount)));
}

/// Encodes a freshly generated valid frame of the given kind.
void make_frame(FrameKind kind, sfl::util::Rng& rng, Frame& out) {
  switch (kind) {
    case FrameKind::kShardRequest:
      encode(make_request(rng), out);
      return;
    case FrameKind::kShardReply:
      encode(make_reply(rng), out);
      return;
    case FrameKind::kSubmitBids:
      encode(make_submit_bids(rng), out);
      return;
    case FrameKind::kRoundResult:
      encode(make_round_result(rng), out);
      return;
    case FrameKind::kSettlementAck:
      encode(make_settlement_ack(rng), out);
      return;
    case FrameKind::kServerHello:
      encode(make_server_hello(rng), out);
      return;
    case FrameKind::kWorkerHello:
      encode(make_worker_hello(rng), out);
      return;
    case FrameKind::kWorkerGoodbye:
      encode(make_worker_goodbye(rng), out);
      return;
    case FrameKind::kCount:
      break;
  }
  ADD_FAILURE() << "unreachable frame kind";
}

/// Decodes with the decoder matching the frame's ORIGINAL kind; any
/// outcome other than WireError (acceptance, crash, foreign exception)
/// fails the trial.
void expect_rejected(const Frame& frame, FrameKind kind,
                     const std::string& what) {
  try {
    switch (kind) {
      case FrameKind::kShardRequest: {
        ShardRequest out;
        decode(frame, out);
        break;
      }
      case FrameKind::kShardReply: {
        ShardReply out;
        decode(frame, out);
        break;
      }
      case FrameKind::kSubmitBids: {
        sfl::service::SubmitBids out;
        decode(frame, out);
        break;
      }
      case FrameKind::kRoundResult: {
        sfl::service::RoundResult out;
        decode(frame, out);
        break;
      }
      case FrameKind::kSettlementAck: {
        sfl::service::SettlementAck out;
        decode(frame, out);
        break;
      }
      case FrameKind::kServerHello: {
        sfl::service::ServerHello out;
        decode(frame, out);
        break;
      }
      case FrameKind::kWorkerHello: {
        WorkerHello out;
        decode(frame, out);
        break;
      }
      case FrameKind::kWorkerGoodbye: {
        WorkerGoodbye out;
        decode(frame, out);
        break;
      }
      case FrameKind::kCount:
        break;
    }
    ADD_FAILURE() << what << ": corrupt frame was ACCEPTED";
  } catch (const WireError&) {
    // the only correct outcome
  } catch (const std::exception& e) {
    ADD_FAILURE() << what << ": non-typed exception: " << e.what();
  }
}

TEST(CodecFuzzTest, MutatedFramesAreNeverAccepted) {
  for (std::size_t trial = 0; trial < fuzz_trials(); ++trial) {
    const std::uint64_t seed = trial_seed(trial);
    SCOPED_TRACE("repro: dist_codec_fuzz_test --seed=" +
                 std::to_string(seed));
    const bool failed_before = ::testing::Test::HasFailure();
    sfl::util::Rng rng(seed ^ 0xabadULL);

    const FrameKind kind = pick_kind(rng);
    Frame original;
    make_frame(kind, rng, original);

    // 1-8 byte mutations, each XORing a nonzero mask so the frame really
    // differs from the original.
    const std::size_t mutations = 1 + rng.uniform_index(8);
    Frame mutated = original;
    for (std::size_t m = 0; m < mutations; ++m) {
      const std::size_t index = rng.uniform_index(mutated.size());
      const auto mask =
          static_cast<unsigned char>(1 + rng.uniform_index(255));
      mutated[index] ^= static_cast<std::byte>(mask);
    }
    if (mutated != original) {
      expect_rejected(mutated, kind,
                      "mutation x" + std::to_string(mutations));
    }

    if (!failed_before && ::testing::Test::HasFailure()) {
      record_failure(seed);
      break;
    }
  }
}

TEST(CodecFuzzTest, TruncatedFramesAreNeverAccepted) {
  for (std::size_t trial = 0; trial < std::min<std::size_t>(fuzz_trials(), 200);
       ++trial) {
    const std::uint64_t seed = trial_seed(trial);
    SCOPED_TRACE("repro: dist_codec_fuzz_test --seed=" +
                 std::to_string(seed));
    const bool failed_before = ::testing::Test::HasFailure();
    sfl::util::Rng rng(seed ^ 0x7acaULL);
    const FrameKind kind = pick_kind(rng);
    Frame original;
    make_frame(kind, rng, original);
    // Every prefix shorter than the full frame is corrupt by definition.
    for (std::size_t cut = 0; cut < original.size();
         cut += 1 + rng.uniform_index(7)) {
      Frame truncated(original.begin(), original.begin() + cut);
      expect_rejected(truncated, kind,
                      "truncation at " + std::to_string(cut));
    }
    if (!failed_before && ::testing::Test::HasFailure()) {
      record_failure(seed);
      break;
    }
  }
}

TEST(CodecFuzzTest, GarbageBuffersAreNeverAccepted) {
  for (std::size_t trial = 0; trial < fuzz_trials(); ++trial) {
    const std::uint64_t seed = trial_seed(trial);
    SCOPED_TRACE("repro: dist_codec_fuzz_test --seed=" +
                 std::to_string(seed));
    const bool failed_before = ::testing::Test::HasFailure();
    sfl::util::Rng rng(seed ^ 0x9a5bULL);
    Frame garbage(rng.uniform_index(256));
    for (std::byte& b : garbage) {
      b = static_cast<std::byte>(rng.uniform_index(256));
    }
    expect_rejected(garbage, pick_kind(rng), "garbage buffer");
    if (!failed_before && ::testing::Test::HasFailure()) {
      record_failure(seed);
      break;
    }
  }
}

TEST(CodecFuzzTest, LengthFieldAttacksAreBounded) {
  // A frame whose header claims an absurd payload length must be rejected
  // before any allocation of that size is attempted.
  sfl::util::Rng rng(31337);
  const ShardRequest request = make_request(rng);
  Frame frame;
  encode(request, frame);
  // payload_len lives at header offset 8 (little-endian u64): claim 2^62.
  for (std::size_t i = 0; i < 8; ++i) frame[8 + i] = std::byte{0};
  frame[8 + 7] = std::byte{0x40};
  expect_rejected(frame, FrameKind::kShardRequest, "length bomb");
}

}  // namespace
}  // namespace sfl::dist

// Custom main: --seed=N pins the generators to one seed for exact
// reproduction; failing seeds are persisted for the CI artifact and echoed
// with a copy-pasteable repro command (same protocol as the property
// harness).
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    constexpr const char* kSeedFlag = "--seed=";
    if (arg.rfind(kSeedFlag, 0) == 0) {
      sfl::dist::g_fixed_seed = std::strtoull(
          arg.c_str() + std::string(kSeedFlag).size(), nullptr, 10);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  const int result = RUN_ALL_TESTS();
  if (!sfl::dist::g_failed_seeds.empty()) {
    std::ofstream out("codec_fuzz_failure_seeds.txt", std::ios::app);
    std::cerr << "\ncodec fuzz failures; reproduce each with:\n";
    for (const std::uint64_t seed : sfl::dist::g_failed_seeds) {
      out << seed << "\n";
      std::cerr << "  dist_codec_fuzz_test --seed=" << seed << "\n";
    }
    std::cerr << "(seeds appended to codec_fuzz_failure_seeds.txt)\n";
  }
  return result;
}
