// Wire-codec round-trip + fuzz suite.
//
// Round-trip: randomly generated requests/replies must encode/decode to
// bit-identical structures (doubles compared as bit patterns).
//
// Fuzz: seeded random byte mutations of valid frames, truncations at every
// boundary class, type-confused decodes, and pure-garbage buffers must
// NEVER crash and NEVER be accepted — every corrupt input throws the typed
// WireError (length/magic/checksum/structural validation).
//
// Reproducing failures: every trial logs its seed; run
//   <binary> --seed=N
// to replay exactly that generated frame and its mutations. Failing seeds
// are appended to codec_fuzz_failure_seeds.txt (CI artifact), same
// protocol as the PR-3 property harness. SFL_FUZZ_TRIALS overrides the
// trial count (default 1500).
#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "dist/shard_worker.h"
#include "dist/wire_codec.h"
#include "util/rng.h"

namespace sfl::dist {
namespace {

std::optional<std::uint64_t> g_fixed_seed;  // --seed=N
std::vector<std::uint64_t> g_failed_seeds;  // written to the artifact

std::size_t fuzz_trials() {
  if (g_fixed_seed.has_value()) return 1;
  if (const char* env = std::getenv("SFL_FUZZ_TRIALS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 1500;
}

std::uint64_t trial_seed(std::size_t trial) {
  return g_fixed_seed.value_or(static_cast<std::uint64_t>(trial));
}

void record_failure(std::uint64_t seed) {
  for (const std::uint64_t s : g_failed_seeds) {
    if (s == seed) return;
  }
  g_failed_seeds.push_back(seed);
}

// ---------------------------------------------------------------------------
// Frame generators.
// ---------------------------------------------------------------------------

ShardRequest make_request(sfl::util::Rng& rng) {
  ShardRequest request;
  request.round = rng();
  request.shard_count = 1 + static_cast<std::uint32_t>(rng.uniform_index(16));
  request.shard =
      static_cast<std::uint32_t>(rng.uniform_index(request.shard_count));
  request.begin = rng.uniform_index(1 << 20);
  request.max_winners = rng.uniform_index(64);
  request.weights.value_weight = rng.uniform(0.0, 20.0);
  request.weights.bid_weight = rng.uniform(0.1, 20.0);
  const std::size_t span = rng.uniform_index(65);  // 0..64 rows
  const bool with_penalties = rng.bernoulli(0.5);
  for (std::size_t i = 0; i < span; ++i) {
    request.ids.push_back(rng.uniform_index(1000));
    request.values.push_back(rng.uniform(0.0, 5.0));
    request.bids.push_back(rng.uniform(0.0, 3.0));
    if (with_penalties) request.penalties.push_back(rng.uniform(0.0, 4.0));
  }
  return request;
}

ShardReply make_reply(sfl::util::Rng& rng) {
  // Built through the real worker so the reply is always semantically
  // valid (survivor count/index invariants hold by construction).
  const ShardRequest request = make_request(rng);
  ShardReply reply;
  compute_survivors(request, reply);
  return reply;
}

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void expect_request_roundtrip(const ShardRequest& request,
                              const ShardRequest& decoded) {
  EXPECT_EQ(request.round, decoded.round);
  EXPECT_EQ(request.shard, decoded.shard);
  EXPECT_EQ(request.shard_count, decoded.shard_count);
  EXPECT_EQ(request.begin, decoded.begin);
  EXPECT_EQ(request.max_winners, decoded.max_winners);
  EXPECT_TRUE(bits_equal(request.weights.value_weight,
                         decoded.weights.value_weight));
  EXPECT_TRUE(
      bits_equal(request.weights.bid_weight, decoded.weights.bid_weight));
  EXPECT_EQ(request.ids, decoded.ids);
  ASSERT_EQ(request.values.size(), decoded.values.size());
  for (std::size_t i = 0; i < request.values.size(); ++i) {
    EXPECT_TRUE(bits_equal(request.values[i], decoded.values[i])) << i;
    EXPECT_TRUE(bits_equal(request.bids[i], decoded.bids[i])) << i;
  }
  ASSERT_EQ(request.penalties.size(), decoded.penalties.size());
  for (std::size_t i = 0; i < request.penalties.size(); ++i) {
    EXPECT_TRUE(bits_equal(request.penalties[i], decoded.penalties[i])) << i;
  }
}

// ---------------------------------------------------------------------------
// Round-trip properties.
// ---------------------------------------------------------------------------

// The per-trial bodies live in helper functions so a fatal assertion (or a
// decode throw, caught by the trial loop) aborts only the helper — the
// loop's record_failure(seed) tail ALWAYS runs, keeping the seed artifact
// truthful on red runs.

void run_request_roundtrip_trial(std::uint64_t seed) {
  sfl::util::Rng rng(seed ^ 0xc0decULL);
  const ShardRequest request = make_request(rng);
  Frame frame;
  encode(request, frame);
  ASSERT_EQ(checked_frame_type(frame), FrameType::kRequest);
  expect_request_roundtrip(request, decode_request(frame));
}

void run_reply_roundtrip_trial(std::uint64_t seed) {
  sfl::util::Rng rng(seed ^ 0xf00dULL);
  const ShardReply reply = make_reply(rng);
  Frame frame;
  encode(reply, frame);
  ASSERT_EQ(checked_frame_type(frame), FrameType::kReply);
  const ShardReply decoded = decode_reply(frame);
  EXPECT_EQ(reply.round, decoded.round);
  EXPECT_EQ(reply.shard, decoded.shard);
  EXPECT_EQ(reply.shard_count, decoded.shard_count);
  EXPECT_EQ(reply.begin, decoded.begin);
  EXPECT_EQ(reply.count, decoded.count);
  ASSERT_EQ(reply.survivors.size(), decoded.survivors.size());
  for (std::size_t i = 0; i < reply.survivors.size(); ++i) {
    EXPECT_EQ(reply.survivors[i].index, decoded.survivors[i].index) << i;
    EXPECT_TRUE(
        bits_equal(reply.survivors[i].score, decoded.survivors[i].score))
        << i;
  }
}

void run_roundtrip_loop(void (*trial)(std::uint64_t)) {
  for (std::size_t t = 0; t < fuzz_trials(); ++t) {
    const std::uint64_t seed = trial_seed(t);
    SCOPED_TRACE("repro: dist_codec_fuzz_test --seed=" +
                 std::to_string(seed));
    const bool failed_before = ::testing::Test::HasFailure();
    try {
      trial(seed);
    } catch (const std::exception& e) {
      ADD_FAILURE() << "round trip threw: " << e.what();
    }
    if (!failed_before && ::testing::Test::HasFailure()) {
      record_failure(seed);
      break;
    }
  }
}

TEST(CodecRoundTripTest, RequestsSurviveEncodeDecodeBitExactly) {
  run_roundtrip_loop(&run_request_roundtrip_trial);
}

TEST(CodecRoundTripTest, RepliesSurviveEncodeDecodeBitExactly) {
  run_roundtrip_loop(&run_reply_roundtrip_trial);
}

TEST(CodecRoundTripTest, TypeConfusionIsRejected) {
  sfl::util::Rng rng(4242);
  const ShardRequest request = make_request(rng);
  const ShardReply reply = make_reply(rng);
  Frame request_frame;
  Frame reply_frame;
  encode(request, request_frame);
  encode(reply, reply_frame);
  EXPECT_THROW((void)decode_reply(request_frame), WireError);
  EXPECT_THROW((void)decode_request(reply_frame), WireError);
}

// ---------------------------------------------------------------------------
// Fuzz: mutated, truncated, and garbage frames.
// ---------------------------------------------------------------------------

/// Decodes with the decoder matching the frame's ORIGINAL kind; any
/// outcome other than WireError (acceptance, crash, foreign exception)
/// fails the trial.
void expect_rejected(const Frame& frame, bool is_request,
                     const std::string& what) {
  try {
    if (is_request) {
      ShardRequest out;
      decode(frame, out);
    } else {
      ShardReply out;
      decode(frame, out);
    }
    ADD_FAILURE() << what << ": corrupt frame was ACCEPTED";
  } catch (const WireError&) {
    // the only correct outcome
  } catch (const std::exception& e) {
    ADD_FAILURE() << what << ": non-typed exception: " << e.what();
  }
}

TEST(CodecFuzzTest, MutatedFramesAreNeverAccepted) {
  for (std::size_t trial = 0; trial < fuzz_trials(); ++trial) {
    const std::uint64_t seed = trial_seed(trial);
    SCOPED_TRACE("repro: dist_codec_fuzz_test --seed=" +
                 std::to_string(seed));
    const bool failed_before = ::testing::Test::HasFailure();
    sfl::util::Rng rng(seed ^ 0xabadULL);

    const bool is_request = rng.bernoulli(0.5);
    Frame original;
    if (is_request) {
      const ShardRequest request = make_request(rng);
      encode(request, original);
    } else {
      const ShardReply reply = make_reply(rng);
      encode(reply, original);
    }

    // 1-8 byte mutations, each XORing a nonzero mask so the frame really
    // differs from the original.
    const std::size_t mutations = 1 + rng.uniform_index(8);
    Frame mutated = original;
    for (std::size_t m = 0; m < mutations; ++m) {
      const std::size_t index = rng.uniform_index(mutated.size());
      const auto mask =
          static_cast<unsigned char>(1 + rng.uniform_index(255));
      mutated[index] ^= static_cast<std::byte>(mask);
    }
    if (mutated != original) {
      expect_rejected(mutated, is_request,
                      "mutation x" + std::to_string(mutations));
    }

    if (!failed_before && ::testing::Test::HasFailure()) {
      record_failure(seed);
      break;
    }
  }
}

TEST(CodecFuzzTest, TruncatedFramesAreNeverAccepted) {
  for (std::size_t trial = 0; trial < std::min<std::size_t>(fuzz_trials(), 200);
       ++trial) {
    const std::uint64_t seed = trial_seed(trial);
    SCOPED_TRACE("repro: dist_codec_fuzz_test --seed=" +
                 std::to_string(seed));
    const bool failed_before = ::testing::Test::HasFailure();
    sfl::util::Rng rng(seed ^ 0x7acaULL);
    const bool is_request = rng.bernoulli(0.5);
    Frame original;
    if (is_request) {
      const ShardRequest request = make_request(rng);
      encode(request, original);
    } else {
      const ShardReply reply = make_reply(rng);
      encode(reply, original);
    }
    // Every prefix shorter than the full frame is corrupt by definition.
    for (std::size_t cut = 0; cut < original.size();
         cut += 1 + rng.uniform_index(7)) {
      Frame truncated(original.begin(), original.begin() + cut);
      expect_rejected(truncated, is_request,
                      "truncation at " + std::to_string(cut));
    }
    if (!failed_before && ::testing::Test::HasFailure()) {
      record_failure(seed);
      break;
    }
  }
}

TEST(CodecFuzzTest, GarbageBuffersAreNeverAccepted) {
  for (std::size_t trial = 0; trial < fuzz_trials(); ++trial) {
    const std::uint64_t seed = trial_seed(trial);
    SCOPED_TRACE("repro: dist_codec_fuzz_test --seed=" +
                 std::to_string(seed));
    const bool failed_before = ::testing::Test::HasFailure();
    sfl::util::Rng rng(seed ^ 0x9a5bULL);
    Frame garbage(rng.uniform_index(256));
    for (std::byte& b : garbage) {
      b = static_cast<std::byte>(rng.uniform_index(256));
    }
    expect_rejected(garbage, rng.bernoulli(0.5), "garbage buffer");
    if (!failed_before && ::testing::Test::HasFailure()) {
      record_failure(seed);
      break;
    }
  }
}

TEST(CodecFuzzTest, LengthFieldAttacksAreBounded) {
  // A frame whose header claims an absurd payload length must be rejected
  // before any allocation of that size is attempted.
  sfl::util::Rng rng(31337);
  const ShardRequest request = make_request(rng);
  Frame frame;
  encode(request, frame);
  // payload_len lives at header offset 8 (little-endian u64): claim 2^62.
  for (std::size_t i = 0; i < 8; ++i) frame[8 + i] = std::byte{0};
  frame[8 + 7] = std::byte{0x40};
  expect_rejected(frame, /*is_request=*/true, "length bomb");
}

}  // namespace
}  // namespace sfl::dist

// Custom main: --seed=N pins the generators to one seed for exact
// reproduction; failing seeds are persisted for the CI artifact and echoed
// with a copy-pasteable repro command (same protocol as the property
// harness).
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    constexpr const char* kSeedFlag = "--seed=";
    if (arg.rfind(kSeedFlag, 0) == 0) {
      sfl::dist::g_fixed_seed = std::strtoull(
          arg.c_str() + std::string(kSeedFlag).size(), nullptr, 10);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  const int result = RUN_ALL_TESTS();
  if (!sfl::dist::g_failed_seeds.empty()) {
    std::ofstream out("codec_fuzz_failure_seeds.txt", std::ios::app);
    std::cerr << "\ncodec fuzz failures; reproduce each with:\n";
    for (const std::uint64_t seed : sfl::dist::g_failed_seeds) {
      out << seed << "\n";
      std::cerr << "  dist_codec_fuzz_test --seed=" << seed << "\n";
    }
    std::cerr << "(seeds appended to codec_fuzz_failure_seeds.txt)\n";
  }
  return result;
}
