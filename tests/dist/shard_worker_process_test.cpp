// Process-spawning integration test for the standalone worker binary.
//
// fork/execs real `sfl_shard_worker` processes (the examples/ binary: a
// TcpShardServer behind a main()), parses the advertised ephemeral ports
// off their stdout, connects a TcpTransport coordinator, and runs a
// PIPELINED multi-round market across the process boundary — every round
// must match the serial in-process engine bit for bit, including after one
// worker process is SIGKILLed mid-market (the coordinator re-routes or
// recomputes). Environments that forbid fork/exec or binding localhost
// sockets skip instead of failing.
//
// The binary is located through $SFL_SHARD_WORKER_BIN, falling back to the
// build-time path baked in by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "auction/sharded_wdp.h"
#include "dist/distributed_wdp.h"
#include "dist/tcp_transport.h"
#include "util/rng.h"

#ifndef SFL_SHARD_WORKER_BIN_PATH
#define SFL_SHARD_WORKER_BIN_PATH ""
#endif

namespace sfl::dist {
namespace {

std::string worker_binary_path() {
  if (const char* env = std::getenv("SFL_SHARD_WORKER_BIN")) return env;
  return SFL_SHARD_WORKER_BIN_PATH;
}

/// One spawned worker process and its advertised port.
struct WorkerProcess {
  pid_t pid = -1;
  int stdout_fd = -1;
  std::uint16_t port = 0;

  ~WorkerProcess() { stop(SIGKILL); }

  void stop(int signal) {
    if (stdout_fd >= 0) {
      ::close(stdout_fd);
      stdout_fd = -1;
    }
    if (pid > 0) {
      ::kill(pid, signal);
      int status = 0;
      ::waitpid(pid, &status, 0);
      pid = -1;
    }
  }
};

/// Spawns the worker binary with --port=0 and parses the startup line.
/// Returns nullptr (with `why` filled) when the environment forbids any
/// step — the caller GTEST_SKIPs.
std::unique_ptr<WorkerProcess> spawn_worker(std::string& why) {
  const std::string path = worker_binary_path();
  if (path.empty() || ::access(path.c_str(), X_OK) != 0) {
    why = "worker binary not found/executable at '" + path + "'";
    return nullptr;
  }
  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    why = "pipe() failed";
    return nullptr;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    why = "fork() is forbidden here";
    return nullptr;
  }
  if (pid == 0) {
    // Child: stdout -> pipe, then become the worker.
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    ::execl(path.c_str(), path.c_str(), "--port=0",
            static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  ::close(pipe_fds[1]);

  auto worker = std::make_unique<WorkerProcess>();
  worker->pid = pid;
  worker->stdout_fd = pipe_fds[0];

  // Parse "sfl_shard_worker listening on 127.0.0.1:<port>" with a bounded
  // wait; EOF or timeout means the worker could not serve (sandboxed bind,
  // exec failure) and the test skips.
  std::string banner;
  for (int spins = 0; spins < 200; ++spins) {  // <= 10 s total
    pollfd pfd{.fd = worker->stdout_fd, .events = POLLIN, .revents = 0};
    const int ready = ::poll(&pfd, 1, 50);
    if (ready <= 0) continue;
    char buffer[256];
    const ssize_t got = ::read(worker->stdout_fd, buffer, sizeof(buffer));
    if (got <= 0) break;  // EOF: worker exited
    banner.append(buffer, static_cast<std::size_t>(got));
    const std::size_t mark = banner.find("listening on 127.0.0.1:");
    if (mark == std::string::npos) continue;
    const std::size_t eol = banner.find('\n', mark);
    if (eol == std::string::npos) continue;
    const long port = std::strtol(
        banner.c_str() + mark + std::string("listening on 127.0.0.1:").size(),
        nullptr, 10);
    if (port <= 0 || port > 65535) break;
    worker->port = static_cast<std::uint16_t>(port);
    return worker;
  }
  why = "worker process did not advertise a port (bind/exec forbidden?)";
  return nullptr;
}

TEST(ShardWorkerProcessTest, PipelinedMarketOverRealWorkerProcessesIsExact) {
  std::string why;
  std::vector<std::unique_ptr<WorkerProcess>> workers;
  std::vector<TcpTransport::Endpoint> endpoints;
  for (std::size_t w = 0; w < 2; ++w) {
    auto worker = spawn_worker(why);
    if (worker == nullptr) GTEST_SKIP() << why;
    endpoints.push_back(TcpTransport::Endpoint{.port = worker->port});
    workers.push_back(std::move(worker));
  }

  // The pipelined coordinator over the real process boundary, driven
  // through the engine's submit/retire API (the mechanism layer builds its
  // own loopback transport; here the sockets ARE the point). Short receive
  // timeout: localhost round trips are sub-millisecond and the post-kill
  // rounds lean on timeouts to reach recovery quickly.
  DistributedWdp engine{
      DistributedWdpConfig{.pipeline_depth = 2,
                           .receive_timeout = std::chrono::milliseconds(250)},
      std::make_unique<TcpTransport>(endpoints)};

  const auction::ScoreWeights weights{.value_weight = 10.0,
                                      .bid_weight = 12.5};
  constexpr std::size_t kMaxWinners = 6;
  sfl::util::Rng rng(321);
  std::vector<auction::CandidateBatch> batches;
  for (std::size_t r = 0; r < 12; ++r) {
    auction::CandidateBatch batch;
    const std::size_t n = 20 + rng.uniform_index(40);
    for (std::size_t i = 0; i < n; ++i) {
      batch.emplace(static_cast<auction::ClientId>(rng.uniform_index(n)),
                    rng.uniform(0.1, 5.0), rng.uniform(0.05, 3.0),
                    rng.uniform(0.2, 2.0));
    }
    batches.push_back(std::move(batch));
  }

  const auction::ShardedWdp serial_engine{
      auction::ShardedWdpConfig{.shards = 1}};
  std::vector<auction::RoundScratch> lanes(2);
  std::size_t submitted = 0;
  for (std::size_t r = 0; r < batches.size(); ++r) {
    if (r == 6) {
      // Mid-market worker death: a real SIGKILLed process. The coordinator
      // must re-route/recompute and stay bit-identical.
      workers[0]->stop(SIGKILL);
    }
    while (submitted < batches.size() && engine.rounds_in_flight() < 2) {
      engine.submit(batches[submitted], weights, kMaxWinners, {},
                    lanes[submitted % 2]);
      ++submitted;
    }
    engine.retire_oldest();

    auction::RoundScratch reference;
    serial_engine.run_round(batches[r], weights, kMaxWinners, {}, reference);
    ASSERT_EQ(lanes[r % 2].allocation.selected,
              reference.allocation.selected)
        << "round " << r;
    ASSERT_EQ(lanes[r % 2].allocation.total_score,
              reference.allocation.total_score)
        << "round " << r;
    ASSERT_EQ(lanes[r % 2].payments, reference.payments) << "round " << r;
  }

  // Clean shutdown: SIGTERM and reap (the destructor SIGKILLs stragglers).
  for (auto& worker : workers) worker->stop(SIGTERM);
}

}  // namespace
}  // namespace sfl::dist
