// Property-test harness for cross-mechanism auction invariants.
//
// A seeded generator produces adversarial instances — exact score/bid ties,
// duplicate client ids, zero values/bids, winner caps at/above the slate
// size, empty slates — and EVERY key in MechanismRegistry::describe() is
// run through the same invariant suite, so a newly registered mechanism is
// covered automatically with no hand-maintained list. Checked per instance:
//
//  - structural sanity: winners/payments aligned, capped at m, winners are
//    candidates (multiset containment, so duplicate-id slates count),
//    payments finite and non-negative;
//  - entry-point agreement: the AoS, batched SoA, and scratch-reusing
//    run_round_into paths return identical results (fresh twin mechanisms,
//    so stateful and randomized rules compare from equal state);
//  - individual rationality: winners are paid at least their bid (skipped
//    for rules that document otherwise, e.g. the bid-blind random stipend);
//  - per-round budget feasibility where the rule guarantees it
//    (proportional-share and budgeted-oracle both epsilon-exact: the
//    knapsack's ceil weights over-count bids, so its DP is conservative);
//  - settlement: settle() on the round's own outcome never throws;
//  - trajectory equality: every registered execution variant of LTO-VCG
//    (sharded, async, distributed, pipelined-distributed — enumerated from
//    the registry's variant_of tags) stays bit-identical to the serial
//    mechanism over multi-round settled trajectories; likewise every
//    parallel-oracle variant (budgeted-oracle-par, greedy-concave-par,
//    myopic-vcg-ext-par) against its serial canonical at thread counts
//    {0, 2, 3, 7, 16}.
//
// Reproducing failures: every trial logs its seed; run
//   <binary> --seed=N
// to re-run exactly the failing instance (all keys, that one seed). On
// failure the binary also appends the seeds to property_failure_seeds.txt
// next to the test's working directory — CI uploads it as an artifact.
// SFL_PROPERTY_TRIALS overrides the per-key trial count (default 1000).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "auction/candidate_batch.h"
#include "auction/market_batch.h"
#include "auction/registry.h"
#include "auction/round_scratch.h"
#include "auction/sharded_wdp.h"
#include "core/long_term_online_vcg.h"
#include "util/rng.h"

namespace sfl {
namespace {

using auction::Candidate;
using auction::CandidateBatch;
using auction::ClientId;
using auction::build_mechanism;
using auction::MechanismConfig;
using auction::MechanismRegistry;
using auction::MechanismResult;
using auction::RoundContext;
using auction::RoundSettlement;
using auction::WinnerSettlement;

/// Upper bound on client ids the generator emits; the LTO pacing table is
/// sized to it so every generated id is a legal queue index.
constexpr std::size_t kMaxClients = 40;

std::optional<std::uint64_t> g_fixed_seed;     // --seed=N
std::vector<std::uint64_t> g_failed_seeds;     // written to the artifact

std::size_t trials_per_key() {
  if (g_fixed_seed.has_value()) return 1;
  if (const char* env = std::getenv("SFL_PROPERTY_TRIALS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 1000;
}

std::uint64_t trial_seed(std::size_t trial) {
  return g_fixed_seed.value_or(static_cast<std::uint64_t>(trial));
}

void record_failure(std::uint64_t seed) {
  for (const std::uint64_t s : g_failed_seeds) {
    if (s == seed) return;
  }
  g_failed_seeds.push_back(seed);
}

// ---------------------------------------------------------------------------
// Adversarial instance generator.
// ---------------------------------------------------------------------------

struct AdversarialInstance {
  std::vector<Candidate> candidates;
  RoundContext context;
  bool has_duplicate_ids = false;
};

/// Six instance families, chosen by seed so --seed=N replays the family
/// along with the draws: typical, tied scores, duplicate ids, zero-heavy,
/// m >= n, and the empty slate.
AdversarialInstance make_adversarial_instance(std::uint64_t seed) {
  util::Rng rng(seed ^ 0x5f15eedULL);
  const std::uint64_t family = seed % 6;

  AdversarialInstance instance;
  std::size_t n = 0;
  switch (family) {
    case 5: n = 0; break;                                        // empty
    case 4: n = 1 + rng.uniform_index(6); break;                 // tiny, m >= n
    default: n = 1 + rng.uniform_index(32); break;
  }

  for (std::size_t i = 0; i < n; ++i) {
    Candidate c;
    c.id = static_cast<ClientId>(i);
    if (family == 2 && n >= 2 && rng.bernoulli(0.5)) {
      // Duplicate ids: the same client appears in several slate rows.
      c.id = static_cast<ClientId>(rng.uniform_index(n));
    }
    if (family == 1) {
      // Exact ties: values and bids from a coarse lattice, so score ties
      // (and tie-breaking rules) are hit constantly.
      c.value = 0.5 * static_cast<double>(rng.uniform_index(5));
      c.bid = 0.25 * static_cast<double>(rng.uniform_index(4));
    } else if (family == 3) {
      // Zero-heavy: worthless candidates, free candidates, both.
      c.value = rng.bernoulli(0.5) ? 0.0 : rng.uniform(0.0, 4.0);
      c.bid = rng.bernoulli(0.5) ? 0.0 : rng.uniform(0.0, 2.0);
    } else {
      c.value = rng.uniform(0.1, 5.0);
      c.bid = rng.uniform(0.05, 3.0);
    }
    c.energy_cost = rng.uniform(0.2, 2.0);
    instance.candidates.push_back(c);
  }
  for (std::size_t i = 0; i + 1 < instance.candidates.size(); ++i) {
    for (std::size_t j = i + 1; j < instance.candidates.size(); ++j) {
      if (instance.candidates[i].id == instance.candidates[j].id) {
        instance.has_duplicate_ids = true;
      }
    }
  }

  instance.context.round = rng.uniform_index(1000);
  if (family == 4) {
    instance.context.max_winners = n + rng.uniform_index(5);  // m >= n
  } else if (family == 1 && rng.bernoulli(0.15)) {
    instance.context.max_winners = 0;  // degenerate cap
  } else {
    instance.context.max_winners = 1 + rng.uniform_index(8);
  }
  // Finite positive budget: adaptive-price requires one, and the
  // budget-feasible rules are only testable against a real budget.
  instance.context.per_round_budget = rng.uniform(0.5, 10.0);
  instance.context.remaining_budget = instance.context.per_round_budget;
  return instance;
}

// ---------------------------------------------------------------------------
// Per-key invariant profiles.
// ---------------------------------------------------------------------------

/// What a mechanism guarantees. Defaults are the safe cross-mechanism core
/// (structural sanity + entry-point agreement + IR); keys with documented
/// exceptions or extra guarantees override below. An unknown (future) key
/// gets the defaults, so registering a rule that pays below bid forces its
/// author to classify it here — deliberate friction.
struct InvariantProfile {
  /// Winners are paid at least their bid.
  bool individually_rational = true;
  /// Per-round budget feasibility: total payment <= budget + slack, with
  /// slack = budget_slack + budget_slack_per_winner * |winners|. Negative
  /// base slack disables the check (long-term-only rules).
  double budget_slack = -1.0;
  double budget_slack_per_winner = 0.0;
};

InvariantProfile profile_for(const std::string& key,
                             const MechanismConfig& config) {
  (void)config;
  InvariantProfile profile;
  if (key == "random-stipend") {
    // Bid-independent stipend: trivially truthful, deliberately not IR.
    profile.individually_rational = false;
  } else if (key == "proportional-share") {
    profile.budget_slack = 1e-9;
  } else if (key == "budgeted-oracle" || key == "budgeted-oracle-par") {
    // Ceil-discretized knapsack weights OVER-count each bid (ceil(bid/res)
    // >= bid/res) and the capacity floor UNDER-counts the budget, so the DP
    // is conservative: sum(bid) <= res * sum(weight) <= res * capacity <=
    // budget. Feasibility is epsilon-tight — no per-winner resolution slack.
    profile.budget_slack = 1e-9;
  }
  return profile;
}

MechanismConfig property_mechanism_config() {
  MechanismConfig config;
  config.num_clients = kMaxClients;
  config.per_round_budget = 5.0;
  config.seed = 777;
  config.lto.v_weight = 8.0;
  config.lto.pacing_rate = 0.4;  // Z queues on: exercises penalty paths
  return config;
}

/// Smallest bid among candidates with this id (the IR reference when
/// duplicate ids make the per-row bid ambiguous).
double min_bid_for(const std::vector<Candidate>& candidates, ClientId id) {
  double best = std::numeric_limits<double>::infinity();
  for (const Candidate& c : candidates) {
    if (c.id == id && c.bid < best) best = c.bid;
  }
  return best;
}

std::size_t id_multiplicity(const std::vector<Candidate>& candidates,
                            ClientId id) {
  std::size_t count = 0;
  for (const Candidate& c : candidates) {
    if (c.id == id) ++count;
  }
  return count;
}

void check_invariants(const std::string& key,
                      const AdversarialInstance& instance,
                      std::uint64_t seed) {
  const MechanismConfig config = property_mechanism_config();
  const InvariantProfile profile = profile_for(key, config);

  // Three fresh twins (identical construction, identical state, identical
  // RNG streams for randomized rules): one per entry point.
  const auto aos_twin = build_mechanism(key, config);
  const auto batch_twin = build_mechanism(key, config);
  const auto into_twin = build_mechanism(key, config);

  const CandidateBatch batch = CandidateBatch::from_aos(instance.candidates);
  const MechanismResult via_aos =
      aos_twin->run_round(instance.candidates, instance.context);
  const MechanismResult via_batch =
      batch_twin->run_round(batch, instance.context);
  MechanismResult via_into;
  into_twin->run_round_into(batch, instance.context, via_into);

  // Entry-point agreement, exact to the bit.
  EXPECT_EQ(via_aos.winners, via_batch.winners) << "AoS vs batch";
  EXPECT_EQ(via_aos.payments, via_batch.payments) << "AoS vs batch";
  EXPECT_EQ(via_aos.winners, via_into.winners) << "AoS vs run_round_into";
  EXPECT_EQ(via_aos.payments, via_into.payments) << "AoS vs run_round_into";

  // Structural sanity.
  const MechanismResult& result = via_aos;
  ASSERT_EQ(result.winners.size(), result.payments.size());
  EXPECT_LE(result.winners.size(), instance.context.max_winners);
  EXPECT_LE(result.winners.size(), instance.candidates.size());
  for (std::size_t w = 0; w < result.winners.size(); ++w) {
    const ClientId id = result.winners[w];
    const std::size_t available = id_multiplicity(instance.candidates, id);
    ASSERT_GT(available, 0u) << "winner " << id << " is not a candidate";
    std::size_t awarded = 0;
    for (const ClientId other : result.winners) {
      if (other == id) ++awarded;
    }
    EXPECT_LE(awarded, available)
        << "client " << id << " won more slots than it has slate rows";

    const double payment = result.payments[w];
    EXPECT_TRUE(std::isfinite(payment)) << "payment " << payment;
    EXPECT_GE(payment, -1e-12) << "negative payment";
    if (profile.individually_rational) {
      EXPECT_GE(payment, min_bid_for(instance.candidates, id) - 1e-9)
          << "winner " << id << " paid below bid";
    }
  }

  // Budget feasibility where the rule guarantees it.
  if (profile.budget_slack >= 0.0) {
    const double cap =
        instance.context.per_round_budget + profile.budget_slack +
        profile.budget_slack_per_winner *
            static_cast<double>(result.winners.size());
    EXPECT_LE(result.total_payment(), cap) << "budget infeasible round";
  }

  // Settlement: the round's own outcome must settle cleanly (stateful
  // rules update queues; stateless ones no-op) — including duplicate-id
  // slates and empty winner sets.
  RoundSettlement settlement;
  settlement.round = instance.context.round;
  settlement.total_payment = result.total_payment();
  for (std::size_t w = 0; w < result.winners.size(); ++w) {
    settlement.winners.push_back(
        WinnerSettlement{.client = result.winners[w],
                         .bid = min_bid_for(instance.candidates,
                                            result.winners[w]),
                         .payment = result.payments[w],
                         .energy_cost = 1.0,
                         .dropped = false});
  }
  // flush() inside the assertion: async decorators only enqueue in
  // settle(), surfacing any inner settle() error at the barrier — without
  // the flush this check would be vacuous for async keys.
  EXPECT_NO_THROW({
    aos_twin->settle(settlement);
    aos_twin->flush();
  }) << "settle threw";
}

// ---------------------------------------------------------------------------
// The registry-driven invariant sweep.
// ---------------------------------------------------------------------------

class MechanismInvariantSweep : public ::testing::TestWithParam<std::string> {
};

TEST_P(MechanismInvariantSweep, AdversarialInstancesKeepInvariants) {
  const std::string& key = GetParam();
  const std::size_t trials = trials_per_key();
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = trial_seed(trial);
    SCOPED_TRACE("repro: property_mechanism_invariants_test --seed=" +
                 std::to_string(seed) + " (key " + key + ")");
    const bool failed_before = ::testing::Test::HasFailure();
    check_invariants(key, make_adversarial_instance(seed), seed);
    if (!failed_before && ::testing::Test::HasFailure()) {
      record_failure(seed);
      // One counterexample per key is enough; later seeds would bury it.
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegistryKeys, MechanismInvariantSweep,
    ::testing::ValuesIn(MechanismRegistry::global().names()),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Execution-variant trajectory equality (multi-round, settled).
// ---------------------------------------------------------------------------

TEST(LtoExecutionModesProperty, AllRegisteredVariantTrajectoriesBitIdentical) {
  // EVERY execution variant of the paper mechanism — enumerated from the
  // registry's variant_of tags, so a newly registered topology (sharded,
  // async, distributed, whatever comes next) is covered with no
  // hand-maintained list — must produce identical winners, payments, and
  // queue backlogs over settled multi-round trajectories. Each variant key
  // is built twice: with its defaults (auto shard/worker counts) and with
  // explicit odd counts that force non-trivial merges on any machine.
  const std::size_t trajectories = std::min<std::size_t>(
      60, std::max<std::size_t>(4, trials_per_key() / 16));
  constexpr std::size_t kRounds = 16;

  for (std::size_t trajectory = 0; trajectory < trajectories; ++trajectory) {
    const std::uint64_t seed = trial_seed(trajectory);
    SCOPED_TRACE("repro: property_mechanism_invariants_test --seed=" +
                 std::to_string(seed) + " (trajectory)");
    const bool failed_before = ::testing::Test::HasFailure();

    MechanismConfig config = property_mechanism_config();
    const auto serial = build_mechanism("lto-vcg", config);
    std::vector<std::unique_ptr<sfl::auction::Mechanism>> owned;
    for (const auto& info : MechanismRegistry::global().describe()) {
      if (info.variant_of != "lto-vcg") continue;
      MechanismConfig variant_config = config;  // defaults: auto counts
      owned.push_back(build_mechanism(info.name, variant_config));
      variant_config.lto.shards = 3;
      variant_config.lto.dist_workers = 3;
      variant_config.lto.dist_pipeline_depth = 3;  // pipelined keys only
      owned.push_back(build_mechanism(info.name, variant_config));
    }
    ASSERT_GE(owned.size(), 8u) << "variant tags disappeared from the registry";
    std::vector<sfl::auction::Mechanism*> variants;
    for (const auto& mechanism : owned) variants.push_back(mechanism.get());

    util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    for (std::size_t round = 0; round < kRounds; ++round) {
      AdversarialInstance instance =
          make_adversarial_instance(rng());
      instance.context.round = round;

      const MechanismResult reference =
          serial->run_round(instance.candidates, instance.context);
      for (sfl::auction::Mechanism* variant : variants) {
        const MechanismResult result =
            variant->run_round(instance.candidates, instance.context);
        ASSERT_EQ(reference.winners, result.winners)
            << variant->name() << " round " << round;
        ASSERT_EQ(reference.payments, result.payments)
            << variant->name() << " round " << round;
      }

      RoundSettlement settlement;
      settlement.round = round;
      settlement.total_payment = reference.total_payment();
      for (std::size_t w = 0; w < reference.winners.size(); ++w) {
        settlement.winners.push_back(WinnerSettlement{
            .client = reference.winners[w],
            .bid = min_bid_for(instance.candidates, reference.winners[w]),
            .payment = reference.payments[w],
            .energy_cost = 1.0,
            .dropped = false});
      }
      serial->settle(settlement);
      for (sfl::auction::Mechanism* variant : variants) {
        variant->settle(settlement);
      }
    }

    // Post-trajectory queue state (after the async flush barrier).
    auto* serial_lto =
        dynamic_cast<core::LongTermOnlineVcgMechanism*>(serial->underlying());
    ASSERT_NE(serial_lto, nullptr);
    for (sfl::auction::Mechanism* variant : variants) {
      variant->flush();
      auto* lto = dynamic_cast<core::LongTermOnlineVcgMechanism*>(
          variant->underlying());
      ASSERT_NE(lto, nullptr);
      ASSERT_EQ(serial_lto->budget_backlog(), lto->budget_backlog())
          << variant->name();
      for (std::size_t client = 0; client < kMaxClients; ++client) {
        ASSERT_EQ(serial_lto->sustainability_backlog(client),
                  lto->sustainability_backlog(client))
            << variant->name() << " client " << client;
      }
    }

    if (!failed_before && ::testing::Test::HasFailure()) {
      record_failure(seed);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel-oracle variant equality (registry-driven, thread-count swept).
// ---------------------------------------------------------------------------

TEST(OracleVariantsProperty, ParallelOracleTrajectoriesBitIdenticalToSerial) {
  // EVERY registered parallel-oracle key — enumerated from variant_of tags
  // pointing at a non-lto-vcg canonical, so a newly parallelized baseline
  // is swept with no hand-maintained list — must stay bit-identical to its
  // serial canonical over settled multi-round trajectories at EVERY thread
  // count, including auto (0) and counts above the hardware concurrency.
  const std::size_t trajectories = std::min<std::size_t>(
      24, std::max<std::size_t>(2, trials_per_key() / 64));
  constexpr std::size_t kRounds = 8;
  const std::size_t thread_counts[] = {0, 2, 3, 7, 16};

  std::vector<std::pair<std::string, std::string>> pairs;  // variant, serial
  for (const auto& info : MechanismRegistry::global().describe()) {
    if (!info.variant_of.empty() && info.variant_of != "lto-vcg") {
      pairs.emplace_back(info.name, info.variant_of);
    }
  }
  ASSERT_GE(pairs.size(), 3u) << "oracle variant tags disappeared";

  for (const auto& [variant_key, serial_key] : pairs) {
    for (std::size_t trajectory = 0; trajectory < trajectories; ++trajectory) {
      const std::uint64_t seed = trial_seed(trajectory);
      SCOPED_TRACE("repro: property_mechanism_invariants_test --seed=" +
                   std::to_string(seed) + " (oracle variant " + variant_key +
                   ")");
      const bool failed_before = ::testing::Test::HasFailure();

      const MechanismConfig config = property_mechanism_config();
      const auto serial = build_mechanism(serial_key, config);
      std::vector<std::unique_ptr<sfl::auction::Mechanism>> variants;
      for (const std::size_t threads : thread_counts) {
        MechanismConfig variant_config = config;
        variant_config.oracle.threads = threads;
        variants.push_back(build_mechanism(variant_key, variant_config));
      }

      util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 3);
      for (std::size_t round = 0; round < kRounds; ++round) {
        AdversarialInstance instance = make_adversarial_instance(rng());
        instance.context.round = round;

        const MechanismResult reference =
            serial->run_round(instance.candidates, instance.context);
        for (std::size_t v = 0; v < variants.size(); ++v) {
          const MechanismResult result =
              variants[v]->run_round(instance.candidates, instance.context);
          ASSERT_EQ(reference.winners, result.winners)
              << variant_key << " threads=" << thread_counts[v] << " round "
              << round;
          ASSERT_EQ(reference.payments.size(), result.payments.size())
              << variant_key << " threads=" << thread_counts[v];
          for (std::size_t w = 0; w < reference.payments.size(); ++w) {
            ASSERT_EQ(std::bit_cast<std::uint64_t>(reference.payments[w]),
                      std::bit_cast<std::uint64_t>(result.payments[w]))
                << variant_key << " threads=" << thread_counts[v] << " round "
                << round << " winner " << w << ": " << reference.payments[w]
                << " != " << result.payments[w];
          }
        }

        RoundSettlement settlement;
        settlement.round = round;
        settlement.total_payment = reference.total_payment();
        for (std::size_t w = 0; w < reference.winners.size(); ++w) {
          settlement.winners.push_back(WinnerSettlement{
              .client = reference.winners[w],
              .bid = min_bid_for(instance.candidates, reference.winners[w]),
              .payment = reference.payments[w],
              .energy_cost = 1.0,
              .dropped = false});
        }
        serial->settle(settlement);
        for (auto& variant : variants) variant->settle(settlement);
      }

      if (!failed_before && ::testing::Test::HasFailure()) {
        record_failure(seed);
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Mega-batch equality family: run_rounds over K markets == K run_round_into.
// ---------------------------------------------------------------------------

/// Full-delivery settlement built from a round result the same way on both
/// sides of the mega-batch comparison, so any divergence comes from the
/// clearing itself, never from the settlement construction.
RoundSettlement settlement_for(const MechanismResult& result,
                               const std::vector<Candidate>& candidates,
                               std::size_t round) {
  RoundSettlement settlement;
  settlement.round = round;
  settlement.total_payment = result.total_payment();
  for (std::size_t w = 0; w < result.winners.size(); ++w) {
    settlement.winners.push_back(
        WinnerSettlement{.client = result.winners[w],
                         .bid = min_bid_for(candidates, result.winners[w]),
                         .payment = result.payments[w],
                         .energy_cost = 1.0,
                         .dropped = false});
  }
  return settlement;
}

TEST(LtoMegaBatchProperty, RunRoundsMatchesPerMarketRunRoundIntoForAllVariants) {
  // For EVERY registered lto-vcg execution variant (registry-driven, so a
  // new topology is swept automatically): K independent seeded markets —
  // each its own mechanism twin pair — cleared round after round two ways:
  //   reference: per-market run_round_into + settle;
  //   mega:      flush + external_round_inputs + append_market for every
  //              market, ONE ShardedWdp::run_rounds, then per-market
  //              commit_external_round + the identical settle —
  // exactly the service's clear_market_rounds shape. Winners, payments
  // (bit for bit), and the final queue backlogs must agree. Variants whose
  // mechanisms cannot expose external rounds fall back to run_round_into
  // inside the mega pass, mirroring the service's fallback lane.
  constexpr std::size_t kMarkets = 5;
  constexpr std::size_t kRounds = 8;
  const std::size_t trajectories = std::min<std::size_t>(
      20, std::max<std::size_t>(2, trials_per_key() / 64));

  std::vector<std::string> keys = {"lto-vcg"};
  for (const auto& info : MechanismRegistry::global().describe()) {
    if (info.variant_of == "lto-vcg") keys.push_back(info.name);
  }
  ASSERT_GE(keys.size(), 2u) << "variant tags disappeared from the registry";

  const sfl::auction::ShardedWdp engine{
      sfl::auction::ShardedWdpConfig{.shards = 0}};

  for (const std::string& key : keys) {
    for (std::size_t trajectory = 0; trajectory < trajectories; ++trajectory) {
      const std::uint64_t seed = trial_seed(trajectory);
      SCOPED_TRACE("repro: property_mechanism_invariants_test --seed=" +
                   std::to_string(seed) + " (mega-batch, key " + key + ")");
      const bool failed_before = ::testing::Test::HasFailure();

      const MechanismConfig config = property_mechanism_config();
      std::vector<std::unique_ptr<sfl::auction::Mechanism>> reference;
      std::vector<std::unique_ptr<sfl::auction::Mechanism>> mega;
      for (std::size_t k = 0; k < kMarkets; ++k) {
        reference.push_back(build_mechanism(key, config));
        mega.push_back(build_mechanism(key, config));
      }

      util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 2);
      sfl::auction::MarketBatch markets;
      sfl::auction::MarketBatchResult batch_results;
      sfl::auction::RoundScratch scratch;
      sfl::auction::Penalties penalties_scratch;

      for (std::size_t round = 0; round < kRounds; ++round) {
        std::vector<AdversarialInstance> instances;
        std::vector<CandidateBatch> batches;
        for (std::size_t k = 0; k < kMarkets; ++k) {
          AdversarialInstance instance = make_adversarial_instance(rng());
          instance.context.round = round;
          batches.push_back(CandidateBatch::from_aos(instance.candidates));
          instances.push_back(std::move(instance));
        }

        // Reference lane: each market clears alone and settles.
        std::vector<MechanismResult> want(kMarkets);
        for (std::size_t k = 0; k < kMarkets; ++k) {
          reference[k]->run_round_into(batches[k], instances[k].context,
                                       want[k]);
          reference[k]->settle(
              settlement_for(want[k], instances[k].candidates, round));
        }

        // Mega lane: gather every market into ONE run_rounds call.
        markets.clear();
        std::vector<MechanismResult> got(kMarkets);
        std::vector<std::size_t> fast;
        for (std::size_t k = 0; k < kMarkets; ++k) {
          mega[k]->flush();  // settlement barrier before reading queues
          auto* lto = dynamic_cast<core::LongTermOnlineVcgMechanism*>(
              mega[k]->underlying());
          ASSERT_NE(lto, nullptr) << key;
          if (!lto->supports_external_rounds()) {
            mega[k]->run_round_into(batches[k], instances[k].context, got[k]);
            continue;
          }
          const auto weights =
              lto->external_round_inputs(batches[k], penalties_scratch);
          markets.append_market(batches[k], instances[k].context.max_winners,
                                weights, penalties_scratch);
          fast.push_back(k);
        }
        if (!fast.empty()) {
          engine.run_rounds(markets, batch_results, scratch);
          for (std::size_t j = 0; j < fast.size(); ++j) {
            const std::size_t k = fast[j];
            auto* lto = dynamic_cast<core::LongTermOnlineVcgMechanism*>(
                mega[k]->underlying());
            lto->commit_external_round(batches[k], batch_results.selected(j),
                                       batch_results.payments(j), got[k]);
          }
        }
        for (std::size_t k = 0; k < kMarkets; ++k) {
          mega[k]->settle(
              settlement_for(got[k], instances[k].candidates, round));
        }

        // Bit-for-bit agreement, market by market.
        for (std::size_t k = 0; k < kMarkets; ++k) {
          ASSERT_EQ(want[k].winners, got[k].winners)
              << key << " market " << k << " round " << round;
          ASSERT_EQ(want[k].payments.size(), got[k].payments.size());
          for (std::size_t w = 0; w < want[k].payments.size(); ++w) {
            ASSERT_EQ(std::bit_cast<std::uint64_t>(want[k].payments[w]),
                      std::bit_cast<std::uint64_t>(got[k].payments[w]))
                << key << " market " << k << " round " << round << " winner "
                << w << ": " << want[k].payments[w]
                << " != " << got[k].payments[w];
          }
        }
      }

      // Post-trajectory queue state must agree too (the settles were fed
      // identical outcomes, so a divergence means hidden state drift).
      for (std::size_t k = 0; k < kMarkets; ++k) {
        reference[k]->flush();
        mega[k]->flush();
        auto* want_lto = dynamic_cast<core::LongTermOnlineVcgMechanism*>(
            reference[k]->underlying());
        auto* got_lto = dynamic_cast<core::LongTermOnlineVcgMechanism*>(
            mega[k]->underlying());
        ASSERT_NE(want_lto, nullptr);
        ASSERT_NE(got_lto, nullptr);
        ASSERT_EQ(std::bit_cast<std::uint64_t>(want_lto->budget_backlog()),
                  std::bit_cast<std::uint64_t>(got_lto->budget_backlog()))
            << key << " market " << k;
        for (std::size_t client = 0; client < kMaxClients; ++client) {
          ASSERT_EQ(want_lto->sustainability_backlog(client),
                    got_lto->sustainability_backlog(client))
              << key << " market " << k << " client " << client;
        }
      }

      if (!failed_before && ::testing::Test::HasFailure()) {
        record_failure(seed);
        break;
      }
    }
  }
}

}  // namespace
}  // namespace sfl

// Custom main: --seed=N pins the generator to one instance seed for exact
// reproduction; failing seeds are persisted for the CI artifact and echoed
// with a copy-pasteable repro command.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    constexpr const char* kSeedFlag = "--seed=";
    if (arg.rfind(kSeedFlag, 0) == 0) {
      sfl::g_fixed_seed =
          std::strtoull(arg.c_str() + std::string(kSeedFlag).size(), nullptr,
                        10);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  const int result = RUN_ALL_TESTS();
  if (!sfl::g_failed_seeds.empty()) {
    std::ofstream out("property_failure_seeds.txt", std::ios::app);
    std::cerr << "\nproperty-test failures; reproduce each with:\n";
    for (const std::uint64_t seed : sfl::g_failed_seeds) {
      out << seed << "\n";
      std::cerr << "  property_mechanism_invariants_test --seed=" << seed
                << "\n";
    }
    std::cerr << "(seeds appended to property_failure_seeds.txt)\n";
  }
  return result;
}
