// Parameterized property sweeps across the library.
//
// These TEST_P suites re-verify the core invariants over grids of
// configurations rather than single fixtures: gradients stay correct at any
// model shape, partitions stay exact at any skew, WDP solvers agree at any
// winner cap, queues are stable exactly when the load allows, and market
// simulations are reproducible under every mechanism.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "auction/adaptive_price.h"
#include "auction/baselines.h"
#include "auction/payments.h"
#include "auction/random_instance.h"
#include "auction/winner_determination.h"
#include "core/long_term_online_vcg.h"
#include "core/market_simulation.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/logistic_regression.h"
#include "fl/mlp.h"
#include "fl/optimizer.h"
#include "lyapunov/virtual_queue.h"
#include "util/rng.h"

namespace sfl {
namespace {

// ---------------------------------------------------------------------------
// Gradient correctness across model shapes.
// ---------------------------------------------------------------------------

class GradientShapeSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(GradientShapeSweep, LogisticRegressionGradientMatchesFiniteDifferences) {
  const auto [dim, classes] = GetParam();
  util::Rng rng(dim * 100 + classes);
  data::GaussianMixtureSpec spec;
  spec.num_examples = 8;
  spec.num_classes = classes;
  spec.feature_dim = dim;
  const data::Dataset ds = data::make_gaussian_mixture(spec, rng);

  fl::LogisticRegression model(dim, classes, 0.01);
  std::vector<double> params(model.parameter_count());
  for (auto& p : params) p = rng.normal(0.0, 0.4);
  model.set_parameters(params);

  std::vector<double> analytic(params.size());
  const auto batch = fl::full_batch(ds);
  model.loss_and_gradient(ds, batch, analytic);

  const double eps = 1e-6;
  for (std::size_t i = 0; i < params.size(); i += 3) {  // sampled coordinates
    auto perturbed = params;
    perturbed[i] += eps;
    model.set_parameters(perturbed);
    const double up = model.loss(ds, batch);
    perturbed[i] = params[i] - eps;
    model.set_parameters(perturbed);
    const double down = model.loss(ds, batch);
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric,
                1e-5 * std::max(1.0, std::abs(numeric)))
        << "coordinate " << i;
    model.set_parameters(params);
  }
}

TEST_P(GradientShapeSweep, MlpGradientMatchesFiniteDifferences) {
  const auto [dim, classes] = GetParam();
  util::Rng rng(dim * 1000 + classes);
  data::GaussianMixtureSpec spec;
  spec.num_examples = 6;
  spec.num_classes = classes;
  spec.feature_dim = dim;
  const data::Dataset ds = data::make_gaussian_mixture(spec, rng);

  fl::Mlp model(dim, 5, classes, rng, 0.01);
  const std::vector<double> params = model.parameters();
  std::vector<double> analytic(params.size());
  const auto batch = fl::full_batch(ds);
  model.loss_and_gradient(ds, batch, analytic);

  const double eps = 1e-6;
  for (std::size_t i = 0; i < params.size(); i += 7) {
    auto perturbed = params;
    perturbed[i] += eps;
    model.set_parameters(perturbed);
    const double up = model.loss(ds, batch);
    perturbed[i] = params[i] - eps;
    model.set_parameters(perturbed);
    const double down = model.loss(ds, batch);
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric,
                1e-4 * std::max(1.0, std::abs(numeric)))
        << "coordinate " << i;
    model.set_parameters(params);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GradientShapeSweep,
                         ::testing::Combine(::testing::Values<std::size_t>(2, 5,
                                                                           9),
                                            ::testing::Values<std::size_t>(2, 4,
                                                                           7)));

// ---------------------------------------------------------------------------
// Partition invariants across client counts and skew levels.
// ---------------------------------------------------------------------------

class PartitionSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(PartitionSweep, DirichletPartitionIsExactAndNonEmpty) {
  const auto [clients, alpha] = GetParam();
  util::Rng rng(clients * 13 + static_cast<std::uint64_t>(alpha * 100));
  data::GaussianMixtureSpec spec;
  spec.num_examples = 400;
  spec.num_classes = 5;
  spec.feature_dim = 3;
  const data::Dataset ds = data::make_gaussian_mixture(spec, rng);
  const data::Partition p =
      data::partition_dirichlet_label_skew(ds, clients, alpha, rng);
  ASSERT_EQ(p.size(), clients);
  data::validate_partition(p, ds.size());
  for (const auto& shard : p) {
    EXPECT_FALSE(shard.empty());
  }
}

TEST_P(PartitionSweep, QuantitySkewPartitionIsExactAndNonEmpty) {
  const auto [clients, sigma] = GetParam();
  util::Rng rng(clients * 29 + static_cast<std::uint64_t>(sigma * 100));
  const data::Partition p = data::partition_quantity_skew(500, clients, sigma, rng);
  ASSERT_EQ(p.size(), clients);
  data::validate_partition(p, 500);
  for (const auto& shard : p) {
    EXPECT_FALSE(shard.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, PartitionSweep,
    ::testing::Combine(::testing::Values<std::size_t>(2, 10, 40),
                       ::testing::Values(0.05, 0.5, 5.0)));

// ---------------------------------------------------------------------------
// Optimizer convergence across kinds and learning rates.
// ---------------------------------------------------------------------------

class OptimizerSweep
    : public ::testing::TestWithParam<std::tuple<fl::OptimizerKind, double>> {};

TEST_P(OptimizerSweep, ConvergesOnQuadraticBowl) {
  const auto [kind, lr] = GetParam();
  fl::OptimizerSpec spec;
  spec.kind = kind;
  spec.learning_rate = lr;
  const auto optimizer = fl::make_optimizer(spec);

  const std::vector<double> target{2.0, -3.0, 0.5};
  std::vector<double> x(3, 0.0);
  std::vector<double> grad(3, 0.0);
  for (int step = 0; step < 3000; ++step) {
    for (std::size_t i = 0; i < x.size(); ++i) grad[i] = x[i] - target[i];
    optimizer->step(x, grad);
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], target[i], 1e-2) << fl::to_string(kind) << " lr " << lr;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndRates, OptimizerSweep,
    ::testing::Combine(::testing::Values(fl::OptimizerKind::kSgd,
                                         fl::OptimizerKind::kMomentum,
                                         fl::OptimizerKind::kAdam),
                       ::testing::Values(0.01, 0.05)));

// ---------------------------------------------------------------------------
// WDP solver agreement across winner caps.
// ---------------------------------------------------------------------------

class WdpCapSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WdpCapSweep, TopMEqualsExhaustiveForEveryCap) {
  const std::size_t cap = GetParam();
  util::Rng rng(4000 + cap);
  for (int trial = 0; trial < 40; ++trial) {
    auction::RandomInstanceSpec spec;
    spec.num_candidates = 12;
    spec.penalty_hi = trial % 2 == 0 ? 0.0 : 1.0;
    const auto instance = make_random_instance(spec, rng);
    const auction::ScoreWeights weights = auction::make_random_weights(rng);
    const auto greedy =
        select_top_m(instance.candidates, weights, cap, instance.penalties);
    const auto oracle =
        select_exhaustive(instance.candidates, weights, cap, instance.penalties);
    EXPECT_NEAR(greedy.total_score, oracle.total_score, 1e-9);
    EXPECT_EQ(greedy.selected, oracle.selected);
  }
}

TEST_P(WdpCapSweep, CriticalPaymentsCoverBidsForEveryCap) {
  const std::size_t cap = GetParam();
  util::Rng rng(5000 + cap);
  for (int trial = 0; trial < 40; ++trial) {
    auction::RandomInstanceSpec spec;
    spec.num_candidates = 12;
    const auto instance = make_random_instance(spec, rng);
    const auction::ScoreWeights weights = auction::make_random_weights(rng);
    const auto alloc =
        select_top_m(instance.candidates, weights, cap, instance.penalties);
    const auto payments = critical_payments(instance.candidates, weights, cap,
                                            alloc, instance.penalties);
    for (std::size_t k = 0; k < alloc.selected.size(); ++k) {
      EXPECT_GE(payments[k], instance.candidates[alloc.selected[k]].bid - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Caps, WdpCapSweep,
                         ::testing::Values<std::size_t>(1, 2, 3, 5, 8, 12));

// ---------------------------------------------------------------------------
// Queue stability exactly when the load allows.
// ---------------------------------------------------------------------------

class QueueLoadSweep : public ::testing::TestWithParam<double> {};

TEST_P(QueueLoadSweep, StableUnderLoadBelowOne) {
  const double load = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(load * 1000));
  lyapunov::VirtualQueue queue(1.0);
  for (int t = 0; t < 30000; ++t) {
    queue.update(rng.uniform(0.0, 2.0 * load));  // mean arrival = load
  }
  if (load < 1.0) {
    EXPECT_LT(queue.normalized_backlog(), 0.05) << "load " << load;
  } else {
    // Overloaded queue drifts linearly: backlog/t -> load - 1.
    EXPECT_NEAR(queue.normalized_backlog(), load - 1.0, 0.05) << load;
  }
}

INSTANTIATE_TEST_SUITE_P(Loads, QueueLoadSweep,
                         ::testing::Values(0.3, 0.6, 0.9, 1.2, 1.5));

// ---------------------------------------------------------------------------
// Market reproducibility for every mechanism.
// ---------------------------------------------------------------------------

class MechanismDeterminismSweep : public ::testing::TestWithParam<int> {};

TEST_P(MechanismDeterminismSweep, SameSeedSameMarketOutcome) {
  const int which = GetParam();
  const auto make = [&]() -> std::unique_ptr<auction::Mechanism> {
    switch (which) {
      case 0: {
        core::LtoVcgConfig config;
        config.v_weight = 8.0;
        config.per_round_budget = 4.0;
        return std::make_unique<core::LongTermOnlineVcgMechanism>(config);
      }
      case 1: return std::make_unique<auction::MyopicVcgMechanism>();
      case 2: return std::make_unique<auction::PayAsBidGreedyMechanism>();
      case 3: return std::make_unique<auction::FixedPriceMechanism>(1.2);
      case 4: return std::make_unique<auction::RandomSelectionMechanism>(1.0, 5);
      case 5: return std::make_unique<auction::ProportionalShareMechanism>();
      case 6:
        return std::make_unique<auction::AdaptivePostedPriceMechanism>(
            auction::AdaptivePriceConfig{});
      default: return std::make_unique<auction::BudgetedOracleMechanism>(0.05);
    }
  };
  core::MarketSpec spec;
  spec.num_clients = 20;
  spec.rounds = 120;
  spec.max_winners = 5;
  spec.per_round_budget = 4.0;
  spec.seed = 17;

  const auto a = make();
  const auto b = make();
  const core::MarketResult ra = core::run_market(*a, spec);
  const core::MarketResult rb = core::run_market(*b, spec);
  EXPECT_EQ(ra.welfare_series, rb.welfare_series);
  EXPECT_EQ(ra.payment_series, rb.payment_series);
  EXPECT_EQ(ra.client_utilities, rb.client_utilities);
  EXPECT_EQ(ra.participation_counts, rb.participation_counts);
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, MechanismDeterminismSweep,
                         ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Knapsack budget compliance across budgets and resolutions.
// ---------------------------------------------------------------------------

class KnapsackSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(KnapsackSweep, SelectionFitsBudgetAtAnyResolution) {
  const auto [budget, resolution] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(budget * 100 + resolution * 1e4));
  for (int trial = 0; trial < 30; ++trial) {
    auction::RandomInstanceSpec spec;
    spec.num_candidates = 10;
    const auto instance = make_random_instance(spec, rng);
    const auto alloc = select_knapsack(instance.candidates, {1.0, 1.0}, budget,
                                       5, resolution);
    double bid_sum = 0.0;
    for (const std::size_t i : alloc.selected) {
      bid_sum += instance.candidates[i].bid;
    }
    // Ceil-discretized weights OVER-count bids and the capacity floor
    // UNDER-counts the budget, so the DP is conservative: feasibility is
    // epsilon-tight, not resolution-loose.
    EXPECT_LE(bid_sum, budget + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BudgetsAndResolutions, KnapsackSweep,
    ::testing::Combine(::testing::Values(0.5, 2.0, 8.0),
                       ::testing::Values(0.01, 0.1)));

}  // namespace
}  // namespace sfl
