// Property-test harness for the cross-market exclusivity invariant (PR 10).
//
// A seeded generator produces adversarial exclusive MarketBatch instances —
// heavily overlapping client pools, exact score ties, duplicate rows of one
// client, zero/negative scores, empty markets, m >= n — and each one is
// cleared three independent ways:
//
//  1. the serial WdpEngine reference (qualified base-class call);
//  2. the fused ShardedWdp override at shard counts {1, 2, 3, 7, 16};
//  3. an ITERATIVE CONFLICT-RESOLUTION oracle that never sees the global
//     greedy: clear every market independently (top-m over its eligible
//     rows), find the client holding seats in several markets (or several
//     rows of one market), pin its globally-best winning row, strike its
//     other rows from the batch, and re-clear until no client holds two
//     seats. Under the strict global order (score desc, ClientId asc,
//     global row asc) this deferred-acceptance style fixed point is the
//     same assignment the one-pass greedy produces — computed by a
//     different algorithm, so a shared bug in the production paths cannot
//     hide.
//
// Checked per instance: all three agree on winners bit-for-bit; payments
// agree bitwise across engines and match an independent recomputation of
// the documented pricing rule (best unassigned loser per market, clamped
// at 0); no client wins two seats anywhere; every payment is individually
// rational (>= the winning bid).
//
// Reproducing failures: every trial logs its seed; run
//   <binary> --seed=N
// to replay exactly that instance. Failing seeds are appended to
// exclusivity_failure_seeds.txt (CI artifact, same protocol as the other
// property suites). SFL_EXCLUSIVITY_TRIALS overrides the trial count.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "auction/candidate_batch.h"
#include "auction/market_batch.h"
#include "auction/round_scratch.h"
#include "auction/sharded_wdp.h"
#include "auction/types.h"
#include "util/rng.h"
#include "util/simd.h"

namespace sfl {
namespace {

using auction::CandidateBatch;
using auction::ClientId;
using auction::MarketBatch;
using auction::MarketBatchResult;
using auction::Penalties;
using auction::RoundScratch;
using auction::ScoreWeights;
using auction::ShardedWdp;
using auction::ShardedWdpConfig;

std::optional<std::uint64_t> g_fixed_seed;  // --seed=N
std::vector<std::uint64_t> g_failed_seeds;  // written to the artifact

std::size_t trial_count() {
  if (g_fixed_seed.has_value()) return 1;
  if (const char* env = std::getenv("SFL_EXCLUSIVITY_TRIALS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 400;
}

std::uint64_t trial_seed(std::size_t trial) {
  return g_fixed_seed.value_or(static_cast<std::uint64_t>(trial));
}

void record_failure(std::uint64_t seed) {
  for (const std::uint64_t s : g_failed_seeds) {
    if (s == seed) return;
  }
  g_failed_seeds.push_back(seed);
}

// ---------------------------------------------------------------------------
// Adversarial instance generator.
// ---------------------------------------------------------------------------

/// Five families, chosen by seed so --seed=N replays the family with the
/// draws: typical overlap, exact score ties (coarse value/bid grids),
/// duplicate rows per client, zero/negative-score heavy, and degenerate
/// markets (empty slates, m = 0, m >= n) mixed in.
MarketBatch make_exclusive_instance(std::uint64_t seed) {
  util::Rng rng(seed ^ 0x3c1f0e5ULL);
  const std::uint64_t family = seed % 5;

  MarketBatch batch;
  const std::size_t markets = 1 + rng.uniform_index(8);
  // A small id pool forces heavy cross-market overlap.
  const std::size_t id_pool = 1 + rng.uniform_index(24);
  for (std::size_t k = 0; k < markets; ++k) {
    CandidateBatch slate;
    Penalties penalties;
    std::size_t rows = rng.uniform_index(36);
    if (family == 4 && rng.bernoulli(0.4)) rows = 0;  // empty market
    const bool with_penalties = rng.bernoulli(0.4);
    for (std::size_t i = 0; i < rows; ++i) {
      double value = rng.uniform(0.0, 30.0);
      double bid = rng.uniform(0.0, 10.0);
      if (family == 1) {
        // Coarse grids: exact score ties across rows AND markets.
        value = static_cast<double>(rng.uniform_index(5));
        bid = 0.5 * static_cast<double>(rng.uniform_index(3));
      }
      if (family == 3 && rng.bernoulli(0.5)) value = 0.0;  // score <= 0
      ClientId id{rng.uniform_index(id_pool)};
      if (family == 2 && i > 0 && rng.bernoulli(0.4)) {
        id = slate.ids()[rng.uniform_index(i)];  // duplicate row
      }
      slate.emplace(id, value, bid, rng.uniform(0.1, 2.0));
      if (with_penalties) penalties.push_back(rng.uniform(0.0, 8.0));
    }
    std::size_t max_winners = rng.uniform_index(7);
    if (family == 4 && rng.bernoulli(0.3)) max_winners = rows + 3;  // m >= n
    ScoreWeights weights{.value_weight = rng.uniform(1.0, 12.0),
                         .bid_weight = rng.uniform(1.0, 12.0)};
    if (family == 1) weights = ScoreWeights{.value_weight = 2.0,
                                            .bid_weight = 2.0};
    batch.append_market(slate, max_winners, weights, penalties);
  }
  batch.set_exclusive(true);
  return batch;
}

// ---------------------------------------------------------------------------
// Iterative conflict-resolution oracle.
// ---------------------------------------------------------------------------

struct OracleOutcome {
  /// Per market: winning GLOBAL row indices, ascending.
  std::vector<std::vector<std::size_t>> selected;
  std::vector<std::vector<double>> payments;
};

/// Clears the exclusive batch without the one-pass global greedy: repeated
/// independent per-market top-m clears with deferred-acceptance conflict
/// resolution (see the file comment). Payments are recomputed from the
/// documented rule against the final assignment, with the same score
/// kernel and FP expression shape as the engine so agreement is bitwise.
OracleOutcome conflict_resolution_oracle(const MarketBatch& batch) {
  const std::size_t total = batch.total_rows();
  const std::size_t markets = batch.market_count();
  const std::span<const ClientId> ids = batch.ids();
  const std::span<const double> values = batch.values();
  const std::span<const double> bids = batch.bids();

  // Scores, same kernel as the engines.
  std::vector<double> scores(total, 0.0);
  for (std::size_t k = 0; k < markets; ++k) {
    const auto& view = batch.market(k);
    if (view.count == 0) continue;
    util::simd::score_span(values.data() + view.offset,
                           bids.data() + view.offset,
                           batch.market_penalties(k),
                           scores.data() + view.offset, view.count,
                           view.weights.value_weight,
                           view.weights.bid_weight);
  }

  // The strict global order every clear derives from.
  const auto better = [&](std::size_t a, std::size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    if (ids[a] != ids[b]) return ids[a] < ids[b];
    return a < b;
  };

  std::vector<bool> eligible(total, true);
  std::vector<bool> pinned(total, false);  // permanently assigned rows

  // One market's independent clear over its eligible rows: top-capacity in
  // the strict order, positive scores only, at most one seat per client
  // (the within-market face of the exclusivity constraint).
  const auto clear_market = [&](std::size_t k) {
    std::vector<std::size_t> winners;
    const auto& view = batch.market(k);
    const std::size_t capacity = std::min(view.max_winners, view.count);
    std::vector<std::size_t> rows;
    for (std::size_t i = view.offset; i < view.offset + view.count; ++i) {
      if (eligible[i] && scores[i] > 0.0) rows.push_back(i);
    }
    std::sort(rows.begin(), rows.end(), better);
    std::set<ClientId> seated;
    for (const std::size_t row : rows) {
      if (winners.size() >= capacity) break;
      if (!seated.insert(ids[row]).second) continue;
      winners.push_back(row);
    }
    return winners;
  };

  std::vector<std::vector<std::size_t>> selected(markets);
  while (true) {
    for (std::size_t k = 0; k < markets; ++k) selected[k] = clear_market(k);

    // Every client's winning rows across the whole batch.
    std::vector<std::size_t> winning_rows;
    for (const auto& rows : selected) {
      winning_rows.insert(winning_rows.end(), rows.begin(), rows.end());
    }
    std::sort(winning_rows.begin(), winning_rows.end(), better);

    // The earliest (in global order) not-yet-pinned multi-seat client keeps
    // that row; its other rows are struck everywhere and the affected
    // markets re-clear on the next sweep.
    bool resolved_one = false;
    for (std::size_t i = 0; i < winning_rows.size() && !resolved_one; ++i) {
      const std::size_t best_row = winning_rows[i];
      if (pinned[best_row]) continue;
      std::size_t seats = 0;
      for (const std::size_t row : winning_rows) {
        if (ids[row] == ids[best_row]) ++seats;
      }
      if (seats < 2) continue;
      pinned[best_row] = true;
      for (std::size_t row = 0; row < total; ++row) {
        if (row != best_row && ids[row] == ids[best_row]) {
          eligible[row] = false;
        }
      }
      resolved_one = true;
    }
    if (!resolved_one) break;  // fixed point: nobody holds two seats
  }

  // Final-assignment bookkeeping for the pricing rule.
  std::set<ClientId> assigned;
  for (const auto& rows : selected) {
    for (const std::size_t row : rows) assigned.insert(ids[row]);
  }

  OracleOutcome outcome;
  outcome.selected.resize(markets);
  outcome.payments.resize(markets);
  for (std::size_t k = 0; k < markets; ++k) {
    const auto& view = batch.market(k);
    std::sort(selected[k].begin(), selected[k].end());
    outcome.selected[k] = selected[k];

    // Documented rule: the threshold is the best score in k among rows
    // whose client ends the batch unassigned anywhere, clamped at 0.
    double threshold = 0.0;
    for (std::size_t i = view.offset; i < view.offset + view.count; ++i) {
      if (scores[i] <= threshold) continue;
      if (assigned.contains(ids[i])) continue;
      threshold = scores[i];
    }
    const double vw = view.weights.value_weight;
    const double bw = view.weights.bid_weight;
    const double* const penalties = batch.market_penalties(k);
    for (const std::size_t row : selected[k]) {
      const double penalty =
          penalties == nullptr ? 0.0 : penalties[row - view.offset];
      const double critical_bid = (vw * values[row] - penalty - threshold) / bw;
      outcome.payments[k].push_back(std::max(critical_bid, bids[row]));
    }
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// Per-instance invariant suite.
// ---------------------------------------------------------------------------

/// Clears via the serial base-class reference, checks it against the oracle
/// and the IR/no-duplicate invariants, then sweeps the fused ShardedWdp
/// path across shard counts. Returns false (and logs) on any violation.
bool check_instance(std::uint64_t seed) {
  const MarketBatch batch = make_exclusive_instance(seed);
  bool ok = true;
  const auto fail = [&](const std::string& what) {
    ADD_FAILURE() << "seed " << seed << ": " << what;
    ok = false;
  };

  const ShardedWdp serial_engine{ShardedWdpConfig{.shards = 1}};
  MarketBatchResult reference;
  RoundScratch reference_scratch;
  serial_engine.WdpEngine::run_rounds(batch, reference, reference_scratch);

  // No client holds two seats anywhere in the batch.
  std::set<ClientId> winners_seen;
  for (std::size_t k = 0; k < batch.market_count(); ++k) {
    for (const std::size_t local : reference.selected(k)) {
      const ClientId id = batch.ids()[batch.market(k).offset + local];
      if (!winners_seen.insert(id).second) {
        fail("client " + std::to_string(id) + " won two seats");
      }
    }
  }

  // Winners and payments agree with the conflict-resolution oracle.
  const OracleOutcome oracle = conflict_resolution_oracle(batch);
  for (std::size_t k = 0; k < batch.market_count(); ++k) {
    const auto& view = batch.market(k);
    const auto selected = reference.selected(k);
    const auto payments = reference.payments(k);
    if (selected.size() != oracle.selected[k].size()) {
      fail("market " + std::to_string(k) + " winner count diverges from the "
           "conflict-resolution oracle");
      continue;
    }
    for (std::size_t w = 0; w < selected.size(); ++w) {
      if (selected[w] + view.offset != oracle.selected[k][w]) {
        fail("market " + std::to_string(k) + " winner " + std::to_string(w) +
             " diverges from the conflict-resolution oracle");
      }
      if (std::bit_cast<std::uint64_t>(payments[w]) !=
          std::bit_cast<std::uint64_t>(oracle.payments[k][w])) {
        fail("market " + std::to_string(k) + " payment " + std::to_string(w) +
             " diverges from the documented pricing rule");
      }
      const double bid = batch.bids()[view.offset + selected[w]];
      if (payments[w] < bid) {
        fail("market " + std::to_string(k) + " winner " + std::to_string(w) +
             " paid below its bid");
      }
    }
  }

  // The fused override must reproduce the serial reference bit for bit at
  // every shard count.
  for (const std::size_t shards : {1u, 2u, 3u, 7u, 16u}) {
    const ShardedWdp engine{ShardedWdpConfig{.shards = shards}};
    MarketBatchResult fused;
    RoundScratch scratch;
    engine.run_rounds(batch, fused, scratch);
    for (std::size_t k = 0; k < batch.market_count(); ++k) {
      const auto got = fused.selected(k);
      const auto want = reference.selected(k);
      if (got.size() != want.size() ||
          !std::equal(got.begin(), got.end(), want.begin())) {
        fail("shards=" + std::to_string(shards) + " market " +
             std::to_string(k) + " winners diverge from serial");
        continue;
      }
      for (std::size_t w = 0; w < got.size(); ++w) {
        if (std::bit_cast<std::uint64_t>(fused.payments(k)[w]) !=
            std::bit_cast<std::uint64_t>(reference.payments(k)[w])) {
          fail("shards=" + std::to_string(shards) + " market " +
               std::to_string(k) + " payment " + std::to_string(w) +
               " diverges from serial");
        }
      }
      if (std::bit_cast<std::uint64_t>(fused.total_score(k)) !=
          std::bit_cast<std::uint64_t>(reference.total_score(k))) {
        fail("shards=" + std::to_string(shards) + " market " +
             std::to_string(k) + " total score diverges from serial");
      }
    }
  }
  return ok;
}

TEST(ExclusivityInvariantsTest, AllEnginesAgreeWithTheOracleOnEveryInstance) {
  const std::size_t trials = trial_count();
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = trial_seed(trial);
    SCOPED_TRACE("seed " + std::to_string(seed));
    if (!check_instance(seed)) record_failure(seed);
  }
}

}  // namespace
}  // namespace sfl

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    constexpr const char* kSeedFlag = "--seed=";
    if (arg.rfind(kSeedFlag, 0) == 0) {
      sfl::g_fixed_seed = std::strtoull(
          arg.c_str() + std::string(kSeedFlag).size(), nullptr, 10);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  const int result = RUN_ALL_TESTS();
  if (!sfl::g_failed_seeds.empty()) {
    std::ofstream out("exclusivity_failure_seeds.txt", std::ios::app);
    std::cerr << "\nexclusivity property failures; reproduce each with:\n";
    for (const std::uint64_t seed : sfl::g_failed_seeds) {
      out << seed << "\n";
      std::cerr << "  property_exclusivity_invariants_test --seed=" << seed
                << "\n";
    }
    std::cerr << "(seeds appended to exclusivity_failure_seeds.txt)\n";
  }
  return result;
}
