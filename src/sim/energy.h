// Battery / energy-harvesting dynamics for sustainability experiments.
//
// Each client has a capped battery charged by stochastic harvest arrivals
// (Bernoulli arrival of a fixed energy packet per round — solar/kinetic/RF
// style intermittency) and drained by participation. A client is *available*
// to bid only when its battery covers its per-round energy cost. The
// mechanism-side Z_i queues (sfl::core) pace wins to the harvest rate so
// batteries stay solvent; this module is the physical ground truth they are
// paced against (experiment E8).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace sfl::sim {

/// Wireless cellular uplink cost model: per-client transmit-energy
/// heterogeneity from channel quality.
///
/// Clients are dropped uniformly in an annulus [min_radius, cell_radius]
/// around the base station; client i's mean SNR follows a power-law path
/// loss snr_ref * (d_ref / d_i)^alpha scaled by a Rayleigh-fading power
/// draw (Exp(1)), and one round's uplink (model upload) energy is
///
///   e_i = tx_power * payload_bits / (bandwidth * log2(1 + snr_i))
///
/// — the Shannon-rate transmit time at fixed power. Cell-edge clients in a
/// deep fade can be orders of magnitude more expensive than cell-center
/// ones, widening the cost spread the Lyapunov Z queues must absorb
/// (scenario "wireless", E14). The draw is deterministic in the rng stream.
struct WirelessSpec {
  bool enabled = false;
  double bandwidth_hz = 1e6;       ///< uplink bandwidth per client
  double tx_power_watts = 0.2;     ///< fixed transmit power
  double payload_bits = 5e6;       ///< model-update size per round
  double cell_radius_m = 500.0;    ///< outer drop radius
  double min_radius_m = 10.0;      ///< inner drop radius (> 0)
  double reference_snr = 1000.0;   ///< mean SNR at d_ref (linear, not dB)
  double reference_distance_m = 10.0;
  double pathloss_exponent = 3.0;
  /// Energies are rescaled so the population mean is this value (keeps the
  /// wireless scenario comparable with the flat e_i = 1 baseline while
  /// preserving the heterogeneity shape). <= 0 disables rescaling.
  double normalize_mean = 1.0;
};

/// Draws one per-client energy-cost vector under `spec` (throws
/// std::invalid_argument on malformed parameters; see WirelessSpec).
[[nodiscard]] std::vector<double> wireless_energy_costs(
    std::size_t num_clients, const WirelessSpec& spec, sfl::util::Rng& rng);

struct EnergySpec {
  double battery_capacity = 5.0;   ///< max stored energy
  double initial_charge = 2.0;     ///< starting battery level
  double harvest_amount = 1.0;     ///< energy per successful harvest event
  /// Per-client harvest probabilities per round; empty = uniform 0.5.
  std::vector<double> harvest_probabilities{};
};

class EnergySystem {
 public:
  EnergySystem(std::size_t num_clients, const EnergySpec& spec);

  [[nodiscard]] std::size_t num_clients() const noexcept { return battery_.size(); }

  /// One round of harvest arrivals (advances every client).
  void harvest_round(sfl::util::Rng& rng);

  /// True when the client's battery covers `energy_cost`.
  [[nodiscard]] bool available(std::size_t client, double energy_cost) const;

  /// Drains `energy_cost` from the client's battery; throws if unavailable.
  void consume(std::size_t client, double energy_cost);

  [[nodiscard]] double battery(std::size_t client) const;
  [[nodiscard]] const std::vector<double>& battery_levels() const noexcept {
    return battery_;
  }

  /// Long-term average harvested energy per round for a client
  /// (probability * amount) — the sustainable participation budget r_i the
  /// Z queues should pace against.
  [[nodiscard]] double harvest_rate(std::size_t client) const;

  /// Rounds in which a client was unavailable at harvest time (starvation
  /// diagnostics).
  [[nodiscard]] std::size_t starvation_count(std::size_t client) const;
  void note_starvation(std::size_t client);

 private:
  std::vector<double> battery_;
  std::vector<double> harvest_probability_;
  std::vector<std::size_t> starvation_;
  double capacity_;
  double harvest_amount_;
};

}  // namespace sfl::sim
