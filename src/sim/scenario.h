// Scenario presets: one-stop construction of a federated market.
//
// A Scenario bundles everything a simulation needs about the client
// population: the federated dataset (with the chosen partition and
// per-client label noise applied to shards), each client's true data quality
// (1 - flip probability), data sizes, and per-client energy costs. The
// clean test set is never touched by label noise.
#pragma once

#include <cstdint>
#include <vector>

#include "data/partition.h"
#include "data/synthetic.h"
#include "sim/energy.h"
#include "util/rng.h"

namespace sfl::sim {

enum class PartitionKind { kIid, kDirichletLabelSkew, kQuantitySkew };

struct ScenarioSpec {
  std::size_t num_clients = 40;
  std::size_t train_examples = 4000;
  std::size_t test_examples = 1000;
  /// Server-held validation examples used by reputation/quality estimation
  /// (never trained on, never used for reported accuracy).
  std::size_t validation_examples = 200;
  std::size_t num_classes = 10;
  std::size_t feature_dim = 32;
  double class_separation = 2.2;

  PartitionKind partition = PartitionKind::kIid;
  double dirichlet_alpha = 0.5;   ///< kDirichletLabelSkew only
  double quantity_sigma = 0.8;    ///< kQuantitySkew only

  /// Fraction of clients whose shards get noisy labels, and the per-example
  /// flip probability for those clients. Noisy clients are chosen as the
  /// last ceil(fraction * N) client ids (deterministic, so experiments can
  /// report per-group results).
  double noisy_client_fraction = 0.0;
  double noisy_flip_probability = 0.4;

  /// Per-client participation energy costs; empty = all 1.0.
  std::vector<double> energy_costs{};

  /// Wireless cellular cost model (scenario "wireless"): when enabled,
  /// per-client energy costs are DERIVED from channel quality
  /// (wireless_energy_costs) instead of taken from `energy_costs`, which
  /// must then stay empty. The draw shares the scenario seed, so the same
  /// spec always produces the same cost population.
  WirelessSpec wireless{};

  std::uint64_t seed = 42;
};

struct Scenario {
  data::FederatedDataset data;
  data::Dataset validation;          ///< server-held clean validation set
  std::vector<double> true_quality;  ///< 1 - flip probability actually applied
  std::vector<double> data_sizes;    ///< shard sizes as doubles
  std::vector<double> energy_costs;  ///< e_i per client

  [[nodiscard]] std::size_t num_clients() const noexcept {
    return data.num_clients();
  }

  /// Mean shard size; the valuation layer normalizes data sizes by this.
  [[nodiscard]] double mean_data_size() const;
};

/// Builds the dataset, partitions it, poisons the noisy clients' shards, and
/// assembles the population attributes.
[[nodiscard]] Scenario build_scenario(const ScenarioSpec& spec);

}  // namespace sfl::sim
