#include "sim/scenario.h"

#include <cmath>

#include "util/require.h"

namespace sfl::sim {

using sfl::util::require;

double Scenario::mean_data_size() const {
  double sum = 0.0;
  for (const double s : data_sizes) sum += s;
  return sum / static_cast<double>(data_sizes.size());
}

Scenario build_scenario(const ScenarioSpec& spec) {
  require(spec.num_clients > 0, "scenario needs at least one client");
  require(spec.noisy_client_fraction >= 0.0 && spec.noisy_client_fraction <= 1.0,
          "noisy client fraction must be in [0, 1]");
  require(spec.noisy_flip_probability >= 0.0 && spec.noisy_flip_probability <= 1.0,
          "flip probability must be in [0, 1]");
  require(spec.energy_costs.empty() ||
              spec.energy_costs.size() == spec.num_clients,
          "energy costs must be empty or one per client");
  require(!spec.wireless.enabled || spec.energy_costs.empty(),
          "wireless cost model and explicit energy costs are exclusive");

  sfl::util::Rng rng(spec.seed);
  // Drawn up front on an independently-seeded stream so enabling the
  // wireless model never perturbs the dataset/partition/noise draws below
  // (and parameter errors throw before any data is built).
  std::vector<double> derived_energy;
  if (spec.wireless.enabled) {
    sfl::util::Rng wireless_rng(spec.seed ^ 0x817e1e55c0575ULL);
    derived_energy =
        wireless_energy_costs(spec.num_clients, spec.wireless, wireless_rng);
  }

  data::GaussianMixtureSpec mixture;
  mixture.num_examples =
      spec.train_examples + spec.test_examples + spec.validation_examples;
  mixture.num_classes = spec.num_classes;
  mixture.feature_dim = spec.feature_dim;
  mixture.class_separation = spec.class_separation;
  const data::Dataset all = data::make_gaussian_mixture(mixture, rng);

  std::vector<std::size_t> order(all.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  const std::span<const std::size_t> all_indices(order);
  data::Dataset train = all.subset(all_indices.subspan(0, spec.train_examples));
  data::Dataset test =
      all.subset(all_indices.subspan(spec.train_examples, spec.test_examples));
  data::Dataset validation = all.subset(
      all_indices.subspan(spec.train_examples + spec.test_examples));

  data::Partition partition;
  switch (spec.partition) {
    case PartitionKind::kIid:
      partition = data::partition_iid(train.size(), spec.num_clients, rng);
      break;
    case PartitionKind::kDirichletLabelSkew:
      partition = data::partition_dirichlet_label_skew(train, spec.num_clients,
                                                       spec.dirichlet_alpha, rng);
      break;
    case PartitionKind::kQuantitySkew:
      partition = data::partition_quantity_skew(train.size(), spec.num_clients,
                                                spec.quantity_sigma, rng);
      break;
  }

  Scenario scenario{
      .data = data::FederatedDataset(std::move(train), std::move(test), partition),
      .validation = std::move(validation),
      .true_quality = std::vector<double>(spec.num_clients, 1.0),
      .data_sizes = {},
      .energy_costs = spec.wireless.enabled
                          ? std::move(derived_energy)
                          : (spec.energy_costs.empty()
                                 ? std::vector<double>(spec.num_clients, 1.0)
                                 : spec.energy_costs),
  };

  // Poison the last ceil(fraction * N) clients' shards.
  const auto noisy_count = static_cast<std::size_t>(std::ceil(
      spec.noisy_client_fraction * static_cast<double>(spec.num_clients)));
  for (std::size_t offset = 0; offset < noisy_count; ++offset) {
    const std::size_t client = spec.num_clients - 1 - offset;
    data::apply_label_noise(scenario.data.mutable_shard(client),
                            spec.noisy_flip_probability, rng);
    scenario.true_quality[client] = 1.0 - spec.noisy_flip_probability;
  }

  scenario.data_sizes.reserve(spec.num_clients);
  for (std::size_t c = 0; c < spec.num_clients; ++c) {
    scenario.data_sizes.push_back(static_cast<double>(scenario.data.shard_size(c)));
  }
  return scenario;
}

}  // namespace sfl::sim
