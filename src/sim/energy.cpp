#include "sim/energy.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace sfl::sim {

using sfl::util::checked_index;
using sfl::util::require;

std::vector<double> wireless_energy_costs(std::size_t num_clients,
                                          const WirelessSpec& spec,
                                          sfl::util::Rng& rng) {
  require(num_clients > 0, "wireless model needs at least one client");
  require(spec.bandwidth_hz > 0.0, "wireless bandwidth must be > 0");
  require(spec.tx_power_watts > 0.0, "wireless transmit power must be > 0");
  require(spec.payload_bits > 0.0, "wireless payload must be > 0");
  require(spec.min_radius_m > 0.0, "wireless min radius must be > 0");
  require(spec.cell_radius_m >= spec.min_radius_m,
          "wireless cell radius must be >= min radius");
  require(spec.reference_snr > 0.0, "wireless reference SNR must be > 0");
  require(spec.reference_distance_m > 0.0,
          "wireless reference distance must be > 0");
  require(spec.pathloss_exponent > 0.0,
          "wireless path-loss exponent must be > 0");

  std::vector<double> costs(num_clients);
  for (std::size_t i = 0; i < num_clients; ++i) {
    // Uniform drop over the annulus AREA: d = sqrt(U(r_min^2, R^2)).
    const double d = std::sqrt(rng.uniform(spec.min_radius_m * spec.min_radius_m,
                                           spec.cell_radius_m * spec.cell_radius_m));
    // Rayleigh fading: the received POWER scale is Exp(1), floored so a
    // pathological zero-fade draw cannot produce an infinite cost.
    const double fading = std::max(rng.exponential(1.0), 1e-12);
    const double snr = spec.reference_snr *
                       std::pow(spec.reference_distance_m / d,
                                spec.pathloss_exponent) *
                       fading;
    // Shannon uplink rate; transmit time = payload / rate.
    const double rate = spec.bandwidth_hz * std::log2(1.0 + snr);
    costs[i] = spec.tx_power_watts * spec.payload_bits / rate;
  }
  if (spec.normalize_mean > 0.0) {
    double mean = 0.0;
    for (const double c : costs) mean += c;
    mean /= static_cast<double>(num_clients);
    const double scale = spec.normalize_mean / mean;
    for (double& c : costs) c *= scale;
  }
  return costs;
}

EnergySystem::EnergySystem(std::size_t num_clients, const EnergySpec& spec)
    : battery_(num_clients, spec.initial_charge),
      starvation_(num_clients, 0),
      capacity_(spec.battery_capacity),
      harvest_amount_(spec.harvest_amount) {
  require(num_clients > 0, "energy system needs at least one client");
  require(spec.battery_capacity > 0.0, "battery capacity must be > 0");
  require(spec.initial_charge >= 0.0 &&
              spec.initial_charge <= spec.battery_capacity,
          "initial charge must be within [0, capacity]");
  require(spec.harvest_amount > 0.0, "harvest amount must be > 0");
  if (spec.harvest_probabilities.empty()) {
    harvest_probability_.assign(num_clients, 0.5);
  } else {
    require(spec.harvest_probabilities.size() == num_clients,
            "one harvest probability per client required");
    for (const double p : spec.harvest_probabilities) {
      require(p >= 0.0 && p <= 1.0, "harvest probabilities must be in [0, 1]");
    }
    harvest_probability_ = spec.harvest_probabilities;
  }
}

void EnergySystem::harvest_round(sfl::util::Rng& rng) {
  for (std::size_t i = 0; i < battery_.size(); ++i) {
    if (rng.bernoulli(harvest_probability_[i])) {
      battery_[i] = std::min(battery_[i] + harvest_amount_, capacity_);
    }
  }
}

bool EnergySystem::available(std::size_t client, double energy_cost) const {
  require(energy_cost >= 0.0, "energy cost must be >= 0");
  return battery_[checked_index(client, battery_.size(), "energy client")] >=
         energy_cost;
}

void EnergySystem::consume(std::size_t client, double energy_cost) {
  require(available(client, energy_cost),
          "cannot consume energy from a depleted battery");
  battery_[client] -= energy_cost;
}

double EnergySystem::battery(std::size_t client) const {
  return battery_[checked_index(client, battery_.size(), "energy client")];
}

double EnergySystem::harvest_rate(std::size_t client) const {
  return harvest_probability_[checked_index(client, harvest_probability_.size(),
                                            "energy client")] *
         harvest_amount_;
}

std::size_t EnergySystem::starvation_count(std::size_t client) const {
  return starvation_[checked_index(client, starvation_.size(), "energy client")];
}

void EnergySystem::note_starvation(std::size_t client) {
  ++starvation_[checked_index(client, starvation_.size(), "energy client")];
}

}  // namespace sfl::sim
