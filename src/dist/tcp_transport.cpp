#include "dist/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "dist/shard_worker.h"

namespace sfl::dist {

namespace {

/// Writes the whole buffer, retrying short writes. False on any error.
bool write_all(int fd, const std::byte* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t rc = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (rc <= 0) {
      if (rc < 0 && errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(rc);
  }
  return true;
}

/// Reads exactly `size` bytes, retrying short reads. False on EOF/error —
/// including SO_RCVTIMEO expiry (EAGAIN), so a peer stalling mid-frame
/// turns into a dead link instead of an unbounded block.
bool read_exact(int fd, std::byte* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t rc = ::recv(fd, data + got, size - got, 0);
    if (rc <= 0) {
      if (rc < 0 && errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(rc);
  }
  return true;
}

/// Bounds every blocking read/write on the socket: once a frame transfer
/// has started, a peer that stalls longer than this is a dead link (the
/// coordinator's recovery machinery and the server's stop() both depend
/// on reads never blocking indefinitely).
void set_io_timeouts(int fd) {
  timeval tv{.tv_sec = 1, .tv_usec = 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Parses the payload length out of a codec header (little-endian u64 at
/// offset 8); the full header validation happens in decode().
std::uint64_t header_payload_len(const std::byte* header) {
  std::uint64_t len = 0;
  for (int i = 0; i < 8; ++i) {
    len |= static_cast<std::uint64_t>(header[8 + i]) << (8 * i);
  }
  return len;
}

/// Cheap pre-validation of the header bytes already in hand: wrong magic,
/// version, or type means the stream is garbage — reject before trusting
/// the length field at all (full validation still happens in decode()).
bool header_plausible(const std::byte* header) {
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) {
    magic |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  }
  if (magic != kWireMagic) return false;
  if (static_cast<std::uint8_t>(header[4]) != kWireVersion) return false;
  return frame_type_known(static_cast<std::uint8_t>(header[5]));
}

/// Reads one self-delimiting codec frame. False on EOF, error, stall, or
/// an implausible header (the connection is then unrecoverable — a stream
/// with a corrupt length can never be re-synchronized). The payload is
/// read in bounded chunks, so memory grows with bytes actually received,
/// never with a hostile length claim.
bool read_one_frame(int fd, Frame& frame) {
  frame.resize(kHeaderSize);
  if (!read_exact(fd, frame.data(), kHeaderSize)) return false;
  if (!header_plausible(frame.data())) return false;
  const std::uint64_t payload_len = header_payload_len(frame.data());
  if (payload_len > kMaxPayloadBytes) return false;
  constexpr std::uint64_t kChunk = 1 << 16;
  std::uint64_t got = 0;
  while (got < payload_len) {
    const std::uint64_t step = std::min(kChunk, payload_len - got);
    frame.resize(kHeaderSize + got + step);
    if (!read_exact(fd, frame.data() + kHeaderSize + got, step)) return false;
    got += step;
  }
  return true;
}

int make_localhost_socket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  return fd;
}

sockaddr_in localhost_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

// --- TcpShardServer ---------------------------------------------------------

TcpShardServer::TcpShardServer(std::uint16_t port) {
  listen_fd_ = make_localhost_socket();
  sockaddr_in addr = localhost_addr(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind(127.0.0.1:" + std::to_string(port) +
                             "): " + why);
  }
  if (::listen(listen_fd_, 8) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("listen(): " + why);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
}

TcpShardServer::~TcpShardServer() { stop(); }

void TcpShardServer::start() {
  if (thread_.joinable()) return;
  if (listen_fd_ < 0) {
    throw std::runtime_error(
        "TcpShardServer: cannot restart after stop() (socket closed)");
  }
  stopping_.store(false);
  draining_.store(false);
  drained_.store(false);
  thread_ = std::thread([this] { run(); });
}

void TcpShardServer::stop() {
  stopping_.store(true);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TcpShardServer::run() {
  while (!stopping_.load() && !draining_.load()) {
    pollfd pfd{.fd = listen_fd_, .events = POLLIN, .revents = 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    set_io_timeouts(fd);
    serve_connection(fd);
    ::close(fd);
  }
  drained_.store(true, std::memory_order_release);
}

void TcpShardServer::serve_connection(int fd) {
  Frame request;
  Frame reply;
  for (;;) {
    if (draining_.load()) {
      // Planned drain: every in-flight request above has already been
      // answered; say goodbye on the live connection and leave.
      encode(WorkerGoodbye{.worker = port_}, reply);
      write_all(fd, reply.data(), reply.size());
      return;
    }
    if (stopping_.load()) return;
    pollfd pfd{.fd = fd, .events = POLLIN, .revents = 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready < 0) return;
    if (ready == 0) continue;
    if (!read_one_frame(fd, request)) return;
    try {
      reply = serve_frame(request);
    } catch (const WireError&) {
      return;  // corrupt request: drop the connection, coordinator recovers
    }
    if (!write_all(fd, reply.data(), reply.size())) return;
    served_.fetch_add(1, std::memory_order_relaxed);
  }
}

// --- TcpTransport -----------------------------------------------------------

TcpTransport::TcpTransport(std::vector<Endpoint> endpoints)
    : endpoints_(std::move(endpoints)), fds_(endpoints_.size(), -1) {
  for (std::size_t worker = 0; worker < endpoints_.size(); ++worker) {
    const Endpoint& endpoint = endpoints_[worker];
    int fd = -1;
    try {
      fd = make_localhost_socket();
    } catch (const std::runtime_error&) {
      continue;  // dead worker; surfaced on first send
    }
    sockaddr_in addr = localhost_addr(endpoint.port);
    if (!endpoint.host.empty() && endpoint.host != "127.0.0.1" &&
        endpoint.host != "localhost") {
      if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        continue;
      }
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    set_io_timeouts(fd);
    fds_[worker] = fd;
  }
}

TcpTransport::~TcpTransport() {
  for (std::size_t worker = 0; worker < fds_.size(); ++worker) {
    disconnect(worker);
  }
}

void TcpTransport::disconnect(std::size_t worker) {
  if (fds_[worker] >= 0) {
    ::close(fds_[worker]);
    fds_[worker] = -1;
  }
}

bool TcpTransport::worker_connected(std::size_t worker) const {
  return worker < fds_.size() && fds_[worker] >= 0;
}

void TcpTransport::send(std::size_t worker, const Frame& frame) {
  if (worker >= fds_.size()) {
    throw TransportError(worker, "no such endpoint");
  }
  if (fds_[worker] < 0) {
    throw TransportError(worker, "not connected");
  }
  if (!write_all(fds_[worker], frame.data(), frame.size())) {
    disconnect(worker);
    throw TransportError(worker, "send failed: " +
                                     std::string(std::strerror(errno)));
  }
}

bool TcpTransport::receive(Frame& frame, std::chrono::milliseconds timeout) {
  std::vector<pollfd> pfds;
  std::vector<std::size_t> workers;
  pfds.reserve(fds_.size());
  for (std::size_t worker = 0; worker < fds_.size(); ++worker) {
    if (fds_[worker] < 0) continue;
    pfds.push_back(pollfd{.fd = fds_[worker], .events = POLLIN, .revents = 0});
    workers.push_back(worker);
  }
  if (pfds.empty()) return false;
  const int ready =
      ::poll(pfds.data(), pfds.size(), static_cast<int>(timeout.count()));
  if (ready <= 0) return false;
  for (std::size_t i = 0; i < pfds.size(); ++i) {
    if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    if (read_one_frame(pfds[i].fd, frame)) {
      last_source_ = workers[i];
      return true;
    }
    // EOF or stream corruption: the link is gone.
    disconnect(workers[i]);
    return false;
  }
  return false;
}

}  // namespace sfl::dist
