// ShardTransport: the process/host boundary of the distributed WDP.
//
// A transport moves framed protocol messages (see wire_codec.h) between one
// coordinator and `worker_count()` shard workers. The coordinator is the
// only caller; workers live behind the transport (in-process handlers for
// LoopbackTransport, socket peers for TcpTransport).
//
// Contract the DistributedWdp coordinator is written against:
//  - send() delivers one frame toward a worker, or throws TransportError if
//    the worker is known-dead/unreachable. Delivery is NOT guaranteed: a
//    sent request may produce no reply (lost frame, worker died mid-round).
//  - receive() yields the next available reply frame from ANY worker, or
//    returns false after `timeout` with nothing delivered. Replies may
//    arrive out of order, duplicated, from stale rounds, or corrupted —
//    the coordinator validates and deduplicates; the transport only moves
//    bytes.
//  - Neither call is required to be thread-safe; one coordinator drives a
//    transport from one thread at a time.
//
// Because the coordinator tolerates loss, duplication, reordering, and
// corruption, any implementation that moves most frames most of the time is
// a correct transport — the determinism of the auction result comes from
// the merge invariant plus validation, never from transport guarantees.
#pragma once

#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "dist/wire_codec.h"

namespace sfl::dist {

/// A worker is unreachable (dead handler, closed socket, refused
/// connection). The coordinator marks the worker dead and re-routes.
class TransportError : public std::runtime_error {
 public:
  TransportError(std::size_t worker, const std::string& message)
      : std::runtime_error("worker " + std::to_string(worker) + ": " + message),
        worker_(worker) {}

  [[nodiscard]] std::size_t worker() const noexcept { return worker_; }

 private:
  std::size_t worker_;
};

class ShardTransport {
 public:
  virtual ~ShardTransport() = default;

  [[nodiscard]] virtual std::size_t worker_count() const noexcept = 0;

  /// Hands one frame toward `worker`. Throws TransportError when the worker
  /// is unreachable; successful return does NOT guarantee a reply.
  virtual void send(std::size_t worker, const Frame& frame) = 0;

  /// Moves the next available reply (any worker) into `frame` and returns
  /// true, or returns false once `timeout` elapses with nothing to deliver.
  virtual bool receive(Frame& frame, std::chrono::milliseconds timeout) = 0;

  /// Worker index the last successfully receive()d frame arrived from, or
  /// SIZE_MAX when the transport cannot attribute it. Source attribution is
  /// advisory — the coordinator uses it for latency bookkeeping and as the
  /// authoritative slot for membership frames (a frame's self-reported
  /// worker id is only the fallback) — so the default "unknown" keeps any
  /// byte-mover a valid transport.
  [[nodiscard]] virtual std::size_t receive_source() const noexcept {
    return static_cast<std::size_t>(-1);
  }
};

}  // namespace sfl::dist
