// Compact binary wire codec for the distributed WDP protocol.
//
// Two message kinds cross the coordinator <-> shard-worker boundary:
//   ShardRequest  — one contiguous CandidateBatch span (ids, values, bids,
//                   optional penalties) plus the round's scoring parameters;
//   ShardReply    — the shard's local top-(m+1) survivor set as
//                   (global index, score) pairs.
//
// Two more carry elastic-membership announcements in the worker ->
// coordinator direction:
//   WorkerHello   — a worker (re)joining the fleet between rounds;
//   WorkerGoodbye — a planned drain: finish in-flight replies, then leave.
//
// The same envelope also carries the auction-service RPC messages
// (SubmitBids / RoundResult / SettlementAck — see src/service/rpc_messages);
// their FrameType values live here so one type byte names every protocol
// message, and the shared envelope helpers live in dist/wire_format.h.
//
// Frame layout (all integers little-endian, doubles as IEEE-754 bit
// patterns, so a frame round-trips bit-exactly across hosts):
//
//   [u32 magic "SFLD"] [u8 version] [u8 type] [u16 reserved=0]
//   [u64 payload_len]  [u64 checksum = fnv1a64(payload)]
//   [payload_len payload bytes]
//
// Decoding is defensive end to end: the header is bounds/magic/version
// checked, the checksum must match BEFORE any payload field is read, and
// every payload read goes through a cursor that rejects overruns — a
// corrupt or truncated frame throws WireError (a typed error), never
// crashes, and is never accepted. The codec fuzz suite
// (tests/dist/codec_fuzz_test.cpp) hammers exactly this contract with
// seeded random byte mutations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "auction/types.h"

namespace sfl::dist {

/// One framed protocol message as raw bytes.
using Frame = std::vector<std::byte>;

/// Typed decode/validation failure: corrupt, truncated, or semantically
/// invalid frames are REJECTED with this error — never accepted, never UB.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kWireMagic = 0x444C4653u;  // "SFLD" LE
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderSize = 24;
/// Upper bound a receiver enforces on payload_len before allocating —
/// rejects absurd lengths from corrupt headers (1 GiB is far above any
/// legitimate shard span).
inline constexpr std::uint64_t kMaxPayloadBytes = 1ull << 30;

enum class FrameType : std::uint8_t {
  // Distributed-WDP shard protocol (this file).
  kRequest = 1,
  kReply = 2,
  // Auction-service RPC layer (src/service/rpc_messages).
  kSubmitBids = 3,
  kRoundResult = 4,
  kSettlementAck = 5,
  // Elastic-membership announcements (worker -> coordinator).
  kWorkerHello = 6,
  kWorkerGoodbye = 7,
  // Auction-service config echo (server -> client, once per connection):
  // the round-geometry knobs both sides must agree on, so a mismatched
  // client can fail fast instead of waiting on rounds that never clear.
  kServerHello = 8,
};

/// True for a type byte naming any known protocol message (shard protocol,
/// service RPC, or membership); the envelope validator rejects everything
/// else.
[[nodiscard]] constexpr bool frame_type_known(std::uint8_t raw) noexcept {
  return raw >= static_cast<std::uint8_t>(FrameType::kRequest) &&
         raw <= static_cast<std::uint8_t>(FrameType::kServerHello);
}

/// FNV-1a 64-bit over the payload; the frame's integrity check.
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::byte> bytes) noexcept;

/// One contiguous batch span dispatched to a shard worker, plus everything
/// the worker needs to score and locally select it.
struct ShardRequest {
  std::uint64_t round = 0;        ///< coordinator round sequence number
  std::uint32_t shard = 0;        ///< shard index in [0, shard_count)
  std::uint32_t shard_count = 1;  ///< total shards this round
  std::uint64_t begin = 0;        ///< global index of the span's first row
  std::uint64_t max_winners = 0;  ///< m: the worker keeps min(m+1, span)
  sfl::auction::ScoreWeights weights{};
  /// Parallel arrays, one entry per span row (ids for the tie-break,
  /// penalties empty = all-zero).
  std::vector<std::uint64_t> ids;
  std::vector<double> values;
  std::vector<double> bids;
  std::vector<double> penalties;

  [[nodiscard]] std::size_t span() const noexcept { return ids.size(); }
};

/// One survivor: its global batch index and its score (the exact IEEE
/// double the worker computed — shipped as bits, so the coordinator's merge
/// is bit-identical to the single-process engine).
struct SurvivorEntry {
  std::uint64_t index = 0;
  double score = 0.0;

  friend bool operator==(const SurvivorEntry&, const SurvivorEntry&) = default;
};

/// A shard worker's local top-(m+1) survivor set.
struct ShardReply {
  std::uint64_t round = 0;
  std::uint32_t shard = 0;
  std::uint32_t shard_count = 1;
  std::uint64_t begin = 0;  ///< span covered (echoed for validation)
  std::uint64_t count = 0;  ///< span length covered
  std::vector<SurvivorEntry> survivors;
};

/// A worker announcing itself available (sent on join / restart). `worker`
/// is the sender's self-reported slot identity; coordinators prefer the
/// transport's own source attribution (ShardTransport::receive_source) and
/// treat this field as the fallback.
struct WorkerHello {
  std::uint64_t worker = 0;
};

/// A worker announcing a planned drain: it finishes in-flight replies, then
/// stops serving. Distinct from a fault — the coordinator stops routing to
/// the worker without charging recovery machinery.
struct WorkerGoodbye {
  std::uint64_t worker = 0;
};

/// Encodes into `out` (cleared first; capacity reused across rounds).
void encode(const ShardRequest& request, Frame& out);
void encode(const ShardReply& reply, Frame& out);
void encode(const WorkerHello& hello, Frame& out);
void encode(const WorkerGoodbye& goodbye, Frame& out);

/// Validates the header (size, magic, version, payload length, checksum)
/// and returns the frame type. Throws WireError on any violation.
[[nodiscard]] FrameType checked_frame_type(std::span<const std::byte> frame);

/// Full decode with structural validation (shard < shard_count, array
/// lengths consistent with payload_len, survivor indices inside the
/// declared span and strictly increasing-free of duplicates, finite
/// scores). Throws WireError; `out` may be left partially written on
/// failure and must not be read.
void decode(std::span<const std::byte> frame, ShardRequest& out);
void decode(std::span<const std::byte> frame, ShardReply& out);
void decode(std::span<const std::byte> frame, WorkerHello& out);
void decode(std::span<const std::byte> frame, WorkerGoodbye& out);

/// Allocating conveniences.
[[nodiscard]] ShardRequest decode_request(std::span<const std::byte> frame);
[[nodiscard]] ShardReply decode_reply(std::span<const std::byte> frame);

}  // namespace sfl::dist
