#include "dist/loopback_transport.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "dist/shard_worker.h"
#include "util/require.h"

namespace sfl::dist {

LoopbackTransport::LoopbackTransport(std::size_t workers, Handler handler)
    : workers_(workers),
      handler_(handler ? std::move(handler)
                       : [](const Frame& f) { return serve_frame(f); }),
      alive_(workers, true),
      die_on_next_request_(workers, false),
      muted_(workers, false),
      latency_(workers, std::chrono::microseconds{0}) {
  sfl::util::require(workers > 0, "loopback transport needs >= 1 worker");
}

void LoopbackTransport::send(std::size_t worker, const Frame& frame) {
  sfl::util::checked_index(worker, workers_, "loopback worker");
  if (!alive_[worker]) {
    throw TransportError(worker, "loopback worker is dead");
  }
  if (die_on_next_request_[worker]) {
    // Died mid-round: the request is accepted (the coordinator sees a
    // successful send) but the handler never runs, no reply will ever
    // come, and the worker is unreachable from now on.
    die_on_next_request_[worker] = false;
    alive_[worker] = false;
    return;
  }

  if (muted_[worker]) return;  // request accepted, reply path severed

  Frame reply = handler_(frame);
  ++served_requests_;

  if (drop_next_ > 0) {
    --drop_next_;
    return;
  }
  if (corrupt_armed_ && !reply.empty()) {
    corrupt_armed_ = false;
    const std::size_t index = corrupt_byte_ % reply.size();
    reply[index] ^= static_cast<std::byte>(corrupt_mask_);
  }

  Pending pending{.frame = std::move(reply),
                  .from_worker = worker,
                  .ready_after = delay_next_};
  if (latency_[worker].count() > 0) {
    pending.ready_at = std::chrono::steady_clock::now() + latency_[worker];
  }
  delay_next_ = 0;
  if (duplicate_next_) {
    duplicate_next_ = false;
    queue_.push_back(pending);  // copy: the duplicate
  }
  queue_.push_back(std::move(pending));
}

bool LoopbackTransport::receive(Frame& frame, std::chrono::milliseconds timeout) {
  // One receive call = one unit of simulated time: age delayed entries.
  for (Pending& pending : queue_) {
    if (pending.ready_after > 0) --pending.ready_after;
  }
  const auto pop_deliverable = [this, &frame] {
    const auto now = std::chrono::steady_clock::now();
    const auto deliverable = [now](const Pending& p) {
      return p.ready_after == 0 && p.ready_at <= now;
    };
    if (lifo_) {
      const auto it = std::find_if(queue_.rbegin(), queue_.rend(), deliverable);
      if (it == queue_.rend()) return false;
      frame = std::move(it->frame);
      last_source_ = it->from_worker;
      queue_.erase(std::next(it).base());
      return true;
    }
    const auto it = std::find_if(queue_.begin(), queue_.end(), deliverable);
    if (it == queue_.end()) return false;
    frame = std::move(it->frame);
    last_source_ = it->from_worker;
    queue_.erase(it);
    return true;
  };
  if (pop_deliverable()) return true;

  // Latency mode only: a reply is in flight on the simulated wire — sleep
  // toward its deadline (bounded by the caller's timeout) and retry once.
  // Without wall-clock latencies this path is never armed and receive()
  // stays a simulated, sleep-free timeout.
  auto earliest = std::chrono::steady_clock::time_point::max();
  for (const Pending& pending : queue_) {
    if (pending.ready_after == 0 &&
        pending.ready_at != std::chrono::steady_clock::time_point::min() &&
        pending.ready_at < earliest) {
      earliest = pending.ready_at;
    }
  }
  if (earliest == std::chrono::steady_clock::time_point::max()) return false;
  std::this_thread::sleep_until(
      std::min(earliest, std::chrono::steady_clock::now() + timeout));
  return pop_deliverable();
}

void LoopbackTransport::kill_worker(std::size_t worker) {
  sfl::util::checked_index(worker, workers_, "loopback worker");
  alive_[worker] = false;
  // In-flight replies from the dead worker die with its link.
  std::erase_if(queue_,
                [worker](const Pending& p) { return p.from_worker == worker; });
}

void LoopbackTransport::kill_worker_after_request(std::size_t worker) {
  sfl::util::checked_index(worker, workers_, "loopback worker");
  die_on_next_request_[worker] = true;
}

void LoopbackTransport::mute_worker(std::size_t worker) {
  sfl::util::checked_index(worker, workers_, "loopback worker");
  muted_[worker] = true;
}

void LoopbackTransport::announce_worker_join(std::size_t worker) {
  sfl::util::checked_index(worker, workers_, "loopback worker");
  alive_[worker] = true;
  die_on_next_request_[worker] = false;
  Frame frame;
  encode(WorkerHello{.worker = worker}, frame);
  queue_.push_back(Pending{.frame = std::move(frame), .from_worker = worker});
}

void LoopbackTransport::announce_worker_leave(std::size_t worker) {
  sfl::util::checked_index(worker, workers_, "loopback worker");
  Frame frame;
  encode(WorkerGoodbye{.worker = worker}, frame);
  queue_.push_back(Pending{.frame = std::move(frame), .from_worker = worker});
}

void LoopbackTransport::set_worker_latency(std::size_t worker,
                                           std::chrono::microseconds latency) {
  sfl::util::checked_index(worker, workers_, "loopback worker");
  latency_[worker] = latency;
}

void LoopbackTransport::corrupt_next_reply(std::size_t byte_index,
                                           unsigned char xor_mask) {
  corrupt_armed_ = true;
  corrupt_byte_ = byte_index;
  corrupt_mask_ = xor_mask == 0 ? 0xFF : xor_mask;
}

void LoopbackTransport::clear_faults() {
  drop_next_ = 0;
  duplicate_next_ = false;
  delay_next_ = 0;
  corrupt_armed_ = false;
  lifo_ = false;
  std::fill(die_on_next_request_.begin(), die_on_next_request_.end(), false);
  std::fill(muted_.begin(), muted_.end(), false);
  std::fill(latency_.begin(), latency_.end(), std::chrono::microseconds{0});
}

bool LoopbackTransport::worker_alive(std::size_t worker) const {
  sfl::util::checked_index(worker, workers_, "loopback worker");
  return alive_[worker];
}

}  // namespace sfl::dist
