// Socket-based shard transport: the same protocol frames over localhost or
// real network links.
//
// TcpShardServer is one shard worker behind a listening TCP socket: it
// accepts connections and serves request frames with the real codec worker
// (dist::serve_frame) on a background thread. A corrupt request tears the
// connection down (the coordinator's recovery path re-dispatches).
//
// TcpTransport is the coordinator side: one connection per worker endpoint,
// frames written whole, replies collected by polling every live socket.
// A worker whose socket dies (refused connect, reset, EOF) is reported via
// TransportError on the next send to it; receive() simply stops seeing it.
// Framing on the stream reuses the codec's self-describing header: read
// kHeaderSize bytes, validate the length field, read the payload.
//
// This transport exists to prove the ShardTransport contract across a real
// process/host boundary; deployment niceties (reconnect, TLS, discovery)
// are out of scope. The DistributedWdp coordinator tolerates everything
// this transport can do wrong — loss, duplication, reordering, death —
// so correctness never depends on socket behavior.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "dist/shard_transport.h"

namespace sfl::dist {

/// One shard worker listening on 127.0.0.1:<port>. port = 0 binds an
/// ephemeral port (read it back with port()).
class TcpShardServer {
 public:
  /// Binds and listens; throws std::runtime_error when the socket cannot
  /// be created/bound (e.g. sandboxed environments).
  explicit TcpShardServer(std::uint16_t port = 0);
  ~TcpShardServer();

  TcpShardServer(const TcpShardServer&) = delete;
  TcpShardServer& operator=(const TcpShardServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Starts the accept/serve thread. Idempotent while running; throws
  /// std::runtime_error after stop() (the listening socket is gone — a
  /// stopped server is terminal, construct a new one).
  void start();
  /// Stops accepting, closes the socket, joins the thread. Idempotent.
  void stop();

  /// Planned drain (SIGTERM path): the server finishes the request it is
  /// serving, writes one kWorkerGoodbye frame on the active connection so
  /// the coordinator can stop routing to it without timeout recovery, then
  /// stops accepting. Call stop() afterwards to join the thread.
  void begin_drain() { draining_.store(true); }
  /// True once a drain has run to completion (goodbye sent or nothing to
  /// say it on) and the serve loop has exited.
  [[nodiscard]] bool drained() const noexcept {
    return drained_.load(std::memory_order_acquire);
  }

  /// Requests served since start().
  [[nodiscard]] std::size_t served_requests() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  void serve_connection(int fd);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};
  std::atomic<std::size_t> served_{0};
};

class TcpTransport final : public ShardTransport {
 public:
  struct Endpoint {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
  };

  /// Connects to every endpoint eagerly; endpoints that refuse are simply
  /// dead workers (TransportError on send), not construction failures.
  explicit TcpTransport(std::vector<Endpoint> endpoints);
  ~TcpTransport() override;

  [[nodiscard]] std::size_t worker_count() const noexcept override {
    return endpoints_.size();
  }
  void send(std::size_t worker, const Frame& frame) override;
  bool receive(Frame& frame, std::chrono::milliseconds timeout) override;
  [[nodiscard]] std::size_t receive_source() const noexcept override {
    return last_source_;
  }

  [[nodiscard]] bool worker_connected(std::size_t worker) const;

 private:
  void disconnect(std::size_t worker);

  std::vector<Endpoint> endpoints_;
  std::vector<int> fds_;  ///< -1 = dead
  std::size_t last_source_ = static_cast<std::size_t>(-1);
};

}  // namespace sfl::dist
