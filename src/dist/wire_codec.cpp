#include "dist/wire_codec.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <vector>

#include "dist/wire_format.h"

namespace sfl::dist {

// --- shared frame-format primitives (dist/wire_format.h) --------------------

namespace wire {

void put_u32(Frame& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::byte>((v >> shift) & 0xFF));
  }
}

void put_u64(Frame& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::byte>((v >> shift) & 0xFF));
  }
}

void put_f64(Frame& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void Cursor::need(std::size_t bytes) const {
  if (bytes > remaining()) throw WireError("wire: payload truncated");
}

void Cursor::require_elems(std::size_t count, std::size_t elem_size) const {
  if (count > remaining() / elem_size) {
    throw WireError("wire: array length exceeds payload");
  }
}

std::uint8_t Cursor::u8() {
  need(1);
  return static_cast<std::uint8_t>(bytes_[offset_++]);
}

std::uint16_t Cursor::u16() {
  need(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(bytes_[offset_ + i]) << (8 * i));
  }
  offset_ += 2;
  return v;
}

std::uint32_t Cursor::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes_[offset_ + i]) << (8 * i);
  }
  offset_ += 4;
  return v;
}

std::uint64_t Cursor::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes_[offset_ + i]) << (8 * i);
  }
  offset_ += 8;
  return v;
}

double Cursor::f64() { return std::bit_cast<double>(u64()); }

void Cursor::u64_array(std::vector<std::uint64_t>& out, std::size_t count) {
  require_elems(count, 8);
  out.resize(count);
  for (std::size_t i = 0; i < count; ++i) out[i] = u64();
}

void Cursor::f64_array(std::vector<double>& out, std::size_t count) {
  require_elems(count, 8);
  out.resize(count);
  for (std::size_t i = 0; i < count; ++i) out[i] = f64();
}

void Cursor::expect_exhausted() const {
  if (offset_ != bytes_.size()) {
    throw WireError("wire: trailing bytes after payload fields");
  }
}

namespace {

void store_u32(Frame& out, std::size_t offset, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[offset + i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  }
}

void store_u64(Frame& out, std::size_t offset, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[offset + i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  }
}

}  // namespace

void begin_frame(Frame& out) {
  out.clear();
  out.resize(kHeaderSize);
}

void finish_frame(Frame& out, FrameType type) {
  const std::span<const std::byte> payload{out.data() + kHeaderSize,
                                           out.size() - kHeaderSize};
  store_u32(out, 0, kWireMagic);
  out[4] = static_cast<std::byte>(kWireVersion);
  out[5] = static_cast<std::byte>(type);
  out[6] = std::byte{0};  // reserved
  out[7] = std::byte{0};
  store_u64(out, 8, payload.size());
  store_u64(out, 16, fnv1a64(payload));
}

std::pair<FrameType, std::span<const std::byte>> checked_payload(
    std::span<const std::byte> frame) {
  if (frame.size() < kHeaderSize) throw WireError("wire: frame too short");
  Cursor header(frame.first(kHeaderSize));
  if (header.u32() != kWireMagic) throw WireError("wire: bad magic");
  if (header.u8() != kWireVersion) throw WireError("wire: unknown version");
  const std::uint8_t raw_type = header.u8();
  if (!frame_type_known(raw_type)) {
    throw WireError("wire: unknown frame type");
  }
  if (header.u16() != 0) throw WireError("wire: reserved bits set");
  const std::uint64_t payload_len = header.u64();
  const std::uint64_t checksum = header.u64();
  if (payload_len > kMaxPayloadBytes) {
    throw WireError("wire: payload length exceeds limit");
  }
  if (payload_len != frame.size() - kHeaderSize) {
    throw WireError("wire: payload length does not match frame size");
  }
  const std::span<const std::byte> payload = frame.subspan(kHeaderSize);
  if (fnv1a64(payload) != checksum) throw WireError("wire: checksum mismatch");
  return {static_cast<FrameType>(raw_type), payload};
}

}  // namespace wire

// --- shard protocol codec ---------------------------------------------------

using wire::begin_frame;
using wire::checked_payload;
using wire::Cursor;
using wire::finish_frame;
using wire::put_f64;
using wire::put_u32;
using wire::put_u64;

std::uint64_t fnv1a64(std::span<const std::byte> bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const std::byte b : bytes) {
    hash ^= static_cast<std::uint64_t>(b);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

void encode(const ShardRequest& request, Frame& out) {
  begin_frame(out);
  put_u64(out, request.round);
  put_u32(out, request.shard);
  put_u32(out, request.shard_count);
  put_u64(out, request.begin);
  put_u64(out, request.max_winners);
  put_f64(out, request.weights.value_weight);
  put_f64(out, request.weights.bid_weight);
  put_u64(out, request.ids.size());
  put_u64(out, request.penalties.empty() ? 0 : 1);
  for (const std::uint64_t id : request.ids) put_u64(out, id);
  for (const double v : request.values) put_f64(out, v);
  for (const double b : request.bids) put_f64(out, b);
  for (const double p : request.penalties) put_f64(out, p);
  finish_frame(out, FrameType::kRequest);
}

void encode(const ShardReply& reply, Frame& out) {
  begin_frame(out);
  put_u64(out, reply.round);
  put_u32(out, reply.shard);
  put_u32(out, reply.shard_count);
  put_u64(out, reply.begin);
  put_u64(out, reply.count);
  put_u64(out, reply.survivors.size());
  for (const SurvivorEntry& entry : reply.survivors) {
    put_u64(out, entry.index);
    put_f64(out, entry.score);
  }
  finish_frame(out, FrameType::kReply);
}

void encode(const WorkerHello& hello, Frame& out) {
  begin_frame(out);
  put_u64(out, hello.worker);
  finish_frame(out, FrameType::kWorkerHello);
}

void encode(const WorkerGoodbye& goodbye, Frame& out) {
  begin_frame(out);
  put_u64(out, goodbye.worker);
  finish_frame(out, FrameType::kWorkerGoodbye);
}

FrameType checked_frame_type(std::span<const std::byte> frame) {
  return checked_payload(frame).first;
}

void decode(std::span<const std::byte> frame, ShardRequest& out) {
  const auto [type, payload] = checked_payload(frame);
  if (type != FrameType::kRequest) {
    throw WireError("wire: expected a request frame");
  }
  Cursor cursor(payload);
  out.round = cursor.u64();
  out.shard = cursor.u32();
  out.shard_count = cursor.u32();
  out.begin = cursor.u64();
  out.max_winners = cursor.u64();
  out.weights.value_weight = cursor.f64();
  out.weights.bid_weight = cursor.f64();
  const std::uint64_t span = cursor.u64();
  const std::uint64_t has_penalties = cursor.u64();
  if (has_penalties > 1) throw WireError("wire: bad penalties flag");
  cursor.u64_array(out.ids, span);
  cursor.f64_array(out.values, span);
  cursor.f64_array(out.bids, span);
  if (has_penalties == 1) {
    cursor.f64_array(out.penalties, span);
  } else {
    out.penalties.clear();
  }
  cursor.expect_exhausted();

  // Semantic validation: a frame that parses but describes an impossible
  // shard is still corrupt — reject it rather than hand the engine a span
  // it cannot have dispatched.
  if (out.shard_count == 0 || out.shard >= out.shard_count) {
    throw WireError("wire: shard index outside shard count");
  }
  if (out.begin > kMaxPayloadBytes || span > kMaxPayloadBytes) {
    throw WireError("wire: span bounds out of range");
  }
  if (!std::isfinite(out.weights.value_weight) ||
      !std::isfinite(out.weights.bid_weight)) {
    throw WireError("wire: non-finite score weights");
  }
}

void decode(std::span<const std::byte> frame, ShardReply& out) {
  const auto [type, payload] = checked_payload(frame);
  if (type != FrameType::kReply) {
    throw WireError("wire: expected a reply frame");
  }
  Cursor cursor(payload);
  out.round = cursor.u64();
  out.shard = cursor.u32();
  out.shard_count = cursor.u32();
  out.begin = cursor.u64();
  out.count = cursor.u64();
  const std::uint64_t survivor_count = cursor.u64();
  cursor.require_elems(survivor_count, 16);
  out.survivors.resize(survivor_count);
  for (SurvivorEntry& entry : out.survivors) {
    entry.index = cursor.u64();
    entry.score = cursor.f64();
  }
  cursor.expect_exhausted();

  if (out.shard_count == 0 || out.shard >= out.shard_count) {
    throw WireError("wire: shard index outside shard count");
  }
  if (out.count > kMaxPayloadBytes || out.begin > kMaxPayloadBytes) {
    throw WireError("wire: span bounds out of range");
  }
  if (survivor_count > out.count) {
    throw WireError("wire: more survivors than span rows");
  }
  for (const SurvivorEntry& entry : out.survivors) {
    if (entry.index < out.begin || entry.index >= out.begin + out.count) {
      throw WireError("wire: survivor index outside the declared span");
    }
    if (!std::isfinite(entry.score)) {
      throw WireError("wire: non-finite survivor score");
    }
  }
  // Duplicate detection in O(k log k): a checksummed hostile frame can
  // carry millions of entries, so a quadratic scan here would be a
  // denial-of-service on the coordinator.
  std::vector<std::uint64_t> indices;
  indices.reserve(out.survivors.size());
  for (const SurvivorEntry& entry : out.survivors) {
    indices.push_back(entry.index);
  }
  std::sort(indices.begin(), indices.end());
  if (std::adjacent_find(indices.begin(), indices.end()) != indices.end()) {
    throw WireError("wire: duplicate survivor index");
  }
}

void decode(std::span<const std::byte> frame, WorkerHello& out) {
  const auto [type, payload] = checked_payload(frame);
  if (type != FrameType::kWorkerHello) {
    throw WireError("wire: expected a hello frame");
  }
  Cursor cursor(payload);
  out.worker = cursor.u64();
  cursor.expect_exhausted();
}

void decode(std::span<const std::byte> frame, WorkerGoodbye& out) {
  const auto [type, payload] = checked_payload(frame);
  if (type != FrameType::kWorkerGoodbye) {
    throw WireError("wire: expected a goodbye frame");
  }
  Cursor cursor(payload);
  out.worker = cursor.u64();
  cursor.expect_exhausted();
}

ShardRequest decode_request(std::span<const std::byte> frame) {
  ShardRequest request;
  decode(frame, request);
  return request;
}

ShardReply decode_reply(std::span<const std::byte> frame) {
  ShardReply reply;
  decode(frame, reply);
  return reply;
}

}  // namespace sfl::dist
