// Shared building blocks of the SFLD frame format.
//
// The wire codec (src/dist/wire_codec) and the service RPC layer
// (src/service/rpc_messages) speak the same envelope:
//
//   [u32 magic "SFLD"] [u8 version] [u8 type] [u16 reserved=0]
//   [u64 payload_len]  [u64 checksum = fnv1a64(payload)]
//   [payload_len payload bytes]
//
// This header owns the primitives both codecs build on: the little-endian
// writers, the bounds-checked payload Cursor, and the begin/finish/validate
// envelope helpers. Everything here preserves the defensive-decoding
// contract — a reader can never run past a truncated or length-corrupted
// buffer, and no payload field is interpreted before the checksum matched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "dist/wire_codec.h"

namespace sfl::dist::wire {

// --- little-endian writers --------------------------------------------------

void put_u32(Frame& out, std::uint32_t v);
void put_u64(Frame& out, std::uint64_t v);
void put_f64(Frame& out, double v);

/// Bounds-checked sequential reader over a payload. Every read that would
/// pass the end throws WireError — the decoder can never run off a
/// truncated or length-corrupted buffer.
class Cursor {
 public:
  explicit Cursor(std::span<const std::byte> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - offset_;
  }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();

  void u64_array(std::vector<std::uint64_t>& out, std::size_t count);
  void f64_array(std::vector<double>& out, std::size_t count);

  /// Throws unless every payload byte has been consumed (trailing garbage
  /// after the declared fields is corruption too).
  void expect_exhausted() const;

  /// Guards a resize(count) against a corrupt count that passed the
  /// checksum only because the whole frame is attacker-shaped: the array
  /// must actually fit in the remaining payload BEFORE allocating.
  void require_elems(std::size_t count, std::size_t elem_size) const;

 private:
  void need(std::size_t bytes) const;

  std::span<const std::byte> bytes_;
  std::size_t offset_ = 0;
};

// --- envelope ---------------------------------------------------------------

/// Clears `out` and reserves the header slot; payload writers append after
/// it (no prepend, no memmove, capacity reused across rounds).
void begin_frame(Frame& out);

/// Patches the header (magic, version, type, payload length, checksum) once
/// the payload is in place.
void finish_frame(Frame& out, FrameType type);

/// Validates the envelope (size, magic, version, known type, reserved bits,
/// payload length bound and match, checksum) and returns the frame type
/// plus the checksum-verified payload view. Throws WireError on any
/// violation.
[[nodiscard]] std::pair<FrameType, std::span<const std::byte>> checked_payload(
    std::span<const std::byte> frame);

}  // namespace sfl::dist::wire
