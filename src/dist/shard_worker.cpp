#include "dist/shard_worker.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "auction/types.h"

namespace sfl::dist {

void compute_survivors(const ShardRequest& request, ShardReply& reply) {
  const std::size_t span = request.span();
  reply.round = request.round;
  reply.shard = request.shard;
  reply.shard_count = request.shard_count;
  reply.begin = request.begin;
  reply.count = span;
  reply.survivors.clear();
  if (span == 0) return;

  // Same scoring expression and selection math as the shard step inside
  // ShardedWdp::select_top_m — the coordinator's merge is only exact if
  // these doubles are bit-identical to what the serial engine computes.
  std::vector<double> scores(span);
  for (std::size_t i = 0; i < span; ++i) {
    const double penalty =
        request.penalties.empty() ? 0.0 : request.penalties[i];
    scores[i] = sfl::auction::score(request.values[i], request.bids[i],
                                    request.weights, penalty);
  }

  std::vector<std::size_t> order(span);
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Serial total order on local indices: global index = begin + local, so
  // the local index tie-break IS the global index tie-break.
  const auto better = [&](std::size_t a, std::size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    if (request.ids[a] != request.ids[b]) return request.ids[a] < request.ids[b];
    return a < b;
  };

  // min(m+1, span) mirrors ShardedWdp's keep = min(min(m+1, n), span)
  // because span <= n; the +1 slot carries the payment threshold.
  const std::size_t keep = std::min(
      static_cast<std::size_t>(request.max_winners) + 1, span);
  if (keep < span) {
    std::nth_element(order.begin(), order.begin() + keep, order.end(), better);
  }
  reply.survivors.reserve(keep);
  for (std::size_t k = 0; k < keep; ++k) {
    const std::size_t local = order[k];
    reply.survivors.push_back(SurvivorEntry{
        .index = request.begin + local, .score = scores[local]});
  }
}

Frame serve_frame(const Frame& request_frame) {
  ShardRequest request;
  decode(request_frame, request);
  ShardReply reply;
  compute_survivors(request, reply);
  Frame out;
  encode(reply, out);
  return out;
}

}  // namespace sfl::dist
