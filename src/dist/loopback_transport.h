// LoopbackTransport: deterministic in-process transport with scriptable
// fault injection.
//
// Each logical worker is an in-process handler (default: the real codec
// worker, dist::serve_frame). send() computes the worker's reply
// synchronously and appends it to a delivery queue; receive() pops from
// that queue. Because nothing depends on threads or wall clocks, every
// fault scenario — dropped, duplicated, delayed, reordered, or corrupted
// replies, workers dying before or after serving a request — replays
// bit-identically from the same script, which is what the fault-injection
// suite (tests/dist/distributed_wdp_fault_test.cpp) needs to assert exact
// serial equality under failure.
//
// Fault semantics (all applied at send/receive time, in call order):
//  - kill_worker(w): future send(w) throws TransportError; queued replies
//    that came from w are purged (they were "in flight on the dead link").
//  - kill_worker_after_request(w): the NEXT request sent to w is accepted
//    but produces no reply, and w is dead afterwards — the classic
//    "worker died mid-round" failure.
//  - drop_next_replies(k): the next k computed replies are swallowed.
//  - duplicate_next_reply(): the next computed reply is delivered twice.
//  - delay_next_reply(r): the next computed reply becomes deliverable only
//    after r further receive() calls — the "slow shard" that forces the
//    coordinator's timeout + re-dispatch path.
//  - corrupt_next_reply(i, mask): XORs byte i of the next computed reply
//    (i taken modulo the frame size) — exercises the checksum rejection.
//  - deliver_lifo(true): receive() pops the newest deliverable reply first
//    (reordering).
//
// Timeouts are simulated: receive() returns false immediately when nothing
// is deliverable (after aging delayed entries by one receive call), so
// fault tests never sleep.
//
// A second, opt-in clock exists for benchmarks: set_worker_latency(w, d)
// stamps every reply from w as deliverable only d of wall time after the
// send, and receive() then really sleeps until the earliest pending reply
// (or the timeout) — a scripted straggler whose cost the pipelined
// coordinator can overlap. Latency zero (the default) keeps the
// simulated-time behavior exactly, so fault suites never sleep.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "dist/shard_transport.h"

namespace sfl::dist {

class LoopbackTransport final : public ShardTransport {
 public:
  /// Maps a request frame to a reply frame (a whole in-process worker).
  using Handler = std::function<Frame(const Frame&)>;

  /// `workers` logical workers, all running `handler` (default: the real
  /// codec worker serve_frame).
  explicit LoopbackTransport(std::size_t workers, Handler handler = {});

  [[nodiscard]] std::size_t worker_count() const noexcept override {
    return workers_;
  }
  void send(std::size_t worker, const Frame& frame) override;
  bool receive(Frame& frame, std::chrono::milliseconds timeout) override;
  [[nodiscard]] std::size_t receive_source() const noexcept override {
    return last_source_;
  }

  // --- elastic membership ---------------------------------------------------
  /// A fresh worker process occupies slot `worker`: the slot is revived
  /// (alive again, pending mid-round death disarmed) and a kWorkerHello
  /// frame is queued for the coordinator to pick up between rounds.
  void announce_worker_join(std::size_t worker);
  /// Slot `worker` begins a planned drain: a kWorkerGoodbye frame is queued,
  /// but the worker keeps serving until the coordinator processes it — the
  /// realistic drain window where requests and the goodbye race.
  void announce_worker_leave(std::size_t worker);

  // --- fault injection ------------------------------------------------------
  void kill_worker(std::size_t worker);
  void kill_worker_after_request(std::size_t worker);
  /// One-way link failure: the worker accepts every request (send keeps
  /// succeeding, so it is never marked dead) but none of its replies ever
  /// arrive — the case that forces re-dispatch to route PAST the home
  /// worker instead of retrying it.
  void mute_worker(std::size_t worker);
  void drop_next_replies(std::size_t count) { drop_next_ += count; }
  void duplicate_next_reply() { duplicate_next_ = true; }
  void delay_next_reply(std::size_t receive_calls) {
    delay_next_ = receive_calls;
  }
  void corrupt_next_reply(std::size_t byte_index, unsigned char xor_mask);
  void deliver_lifo(bool enabled) { lifo_ = enabled; }
  /// Wall-clock reply latency for one worker (0 = instant, the default):
  /// every subsequent reply from `worker` becomes deliverable only after
  /// this much real time, and receive() sleeps toward the earliest pending
  /// deadline instead of returning immediately. Benchmarks script a
  /// straggler with it; deterministic fault tests should keep it at zero.
  void set_worker_latency(std::size_t worker, std::chrono::microseconds latency);
  /// Disarms every pending fault (dead workers stay dead; queued replies
  /// stay queued) — ends a scripted scenario cleanly.
  void clear_faults();

  [[nodiscard]] bool worker_alive(std::size_t worker) const;
  /// Requests actually served by a worker handler (accepted sends).
  [[nodiscard]] std::size_t served_requests() const noexcept {
    return served_requests_;
  }

 private:
  struct Pending {
    Frame frame;
    std::size_t from_worker = 0;
    std::size_t ready_after = 0;  ///< receive() calls until deliverable
    /// Wall-clock deadline (latency mode only); time_point::min() = now.
    std::chrono::steady_clock::time_point ready_at =
        std::chrono::steady_clock::time_point::min();
  };

  std::size_t workers_;
  Handler handler_;
  std::vector<bool> alive_;
  std::vector<bool> die_on_next_request_;
  std::vector<bool> muted_;
  std::vector<std::chrono::microseconds> latency_;
  std::deque<Pending> queue_;

  std::size_t drop_next_ = 0;
  bool duplicate_next_ = false;
  std::size_t delay_next_ = 0;
  bool corrupt_armed_ = false;
  std::size_t corrupt_byte_ = 0;
  unsigned char corrupt_mask_ = 0;
  bool lifo_ = false;
  std::size_t served_requests_ = 0;
  std::size_t last_source_ = static_cast<std::size_t>(-1);
};

}  // namespace sfl::dist
