#include "dist/distributed_wdp.h"

#include <algorithm>
#include <string>

#include "auction/sharded_wdp.h"
#include "dist/loopback_transport.h"
#include "dist/shard_worker.h"
#include "util/config.h"
#include "util/require.h"
#include "util/thread_pool.h"

namespace sfl::dist {

using sfl::auction::Allocation;
using sfl::auction::CandidateBatch;
using sfl::auction::Penalties;
using sfl::auction::RoundScratch;
using sfl::auction::ScoreWeights;
using sfl::util::require;

namespace {

/// Empty penalties passed as a temporary ({} at the call site) would leave
/// a dangling lane pointer once submit() returns; alias them to one static
/// instance instead. Non-empty penalties are caller-owned until retirement,
/// like the batch and the scratch.
const Penalties& stable_penalties(const Penalties& penalties) {
  static const Penalties kEmpty{};
  return penalties.empty() ? kEmpty : penalties;
}

// Adaptive-deadline tuning (see DistributedWdpConfig::hedge). Floors and
// warm-up are deliberately not knobs: they guard the estimator, not policy.
/// Samples before a worker's own statistics drive its deadline.
constexpr std::size_t kHedgeMinSamples = 8;
/// Deadline floor — below this, scheduler noise dominates real latency.
constexpr std::chrono::microseconds kHedgeFloor{200};
/// A worker whose own latency envelope exceeds this multiple of the
/// fastest live worker's is a chronic straggler: its deadline is capped
/// near the cluster normal and its home shards are hedged eagerly.
constexpr double kHedgeStragglerFactor = 2.0;

/// splitmix64 finalizer over (shard, worker): the rendezvous weight. Any
/// good mixer works — it only has to be FIXED, so every coordinator ranks
/// the same fleet the same way forever.
std::uint64_t rendezvous_weight(std::uint64_t shard,
                                std::uint64_t worker) noexcept {
  std::uint64_t x = shard * 0x9E3779B97F4A7C15ull + worker + 1;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

}  // namespace

DistributedWdp::DistributedWdp(DistributedWdpConfig config,
                               std::unique_ptr<ShardTransport> transport)
    : config_(config),
      transport_(transport != nullptr
                     ? std::move(transport)
                     : std::make_unique<LoopbackTransport>(
                           std::max<std::size_t>(config.workers, 1))),
      pricer_(std::make_unique<sfl::auction::ShardedWdp>(
          sfl::auction::ShardedWdpConfig{.shards = 1})) {
  require(config_.max_attempts_per_shard >= 1,
          "need at least one dispatch attempt per shard");
  require(config_.pipeline_depth >= 1,
          "pipeline depth must be >= 1 (1 = strictly serial rounds)");
  require(config_.latency_prior.empty() ||
              config_.latency_prior.size() == transport_->worker_count(),
          "latency prior must be empty or one entry per transport worker");
  lanes_.resize(config_.pipeline_depth);
  worker_dead_.assign(transport_->worker_count(), false);
  worker_departed_.assign(transport_->worker_count(), false);
  if (config_.latency_prior.empty()) {
    worker_latency_.assign(transport_->worker_count(), {});
  } else {
    // Warm start: adaptive deadlines engage immediately for every worker
    // the prior has warmed past kHedgeMinSamples (fresh-coordinator cold
    // start otherwise waits out the full receive_timeout per early round).
    worker_latency_ = config_.latency_prior;
  }
}

DistributedWdp::~DistributedWdp() = default;

std::size_t DistributedWdp::effective_shards(std::size_t n) const {
  if (n <= 1) return 1;
  // Default = the transport's worker count: a function of the deployment
  // configuration, never of the coordinator's core count.
  const std::size_t shards =
      config_.shards != 0 ? config_.shards : transport_->worker_count();
  return std::min(std::max<std::size_t>(shards, 1), n);
}

DistributedWdp::Lane* DistributedWdp::lane_for_seq(std::uint64_t seq) const {
  for (std::size_t offset = 0; offset < count_; ++offset) {
    Lane& lane = lane_at(offset);
    if (lane.seq == seq) return &lane;
  }
  return nullptr;
}

void DistributedWdp::fill_request(const Lane& lane, std::size_t shard) const {
  const auto [begin, end] =
      sfl::util::ThreadPool::chunk_range(lane.n, lane.shards, shard);
  request_.round = lane.seq;
  request_.shard = static_cast<std::uint32_t>(shard);
  request_.shard_count = static_cast<std::uint32_t>(lane.shards);
  request_.begin = begin;
  request_.max_winners = lane.max_winners;
  request_.weights = lane.weights;
  const std::span<const sfl::auction::ClientId> ids = lane.batch->ids();
  const std::span<const double> values = lane.batch->values();
  const std::span<const double> bids = lane.batch->bids();
  request_.ids.assign(ids.begin() + begin, ids.begin() + end);
  request_.values.assign(values.begin() + begin, values.begin() + end);
  request_.bids.assign(bids.begin() + begin, bids.begin() + end);
  if (lane.penalties->empty()) {
    request_.penalties.clear();
  } else {
    request_.penalties.assign(lane.penalties->begin() + begin,
                              lane.penalties->begin() + end);
  }
}

void DistributedWdp::rendezvous_order(std::size_t shard) const {
  const std::size_t workers = transport_->worker_count();
  rank_scratch_.clear();
  rank_scratch_.reserve(workers);
  for (std::size_t worker = 0; worker < workers; ++worker) {
    rank_scratch_.emplace_back(rendezvous_weight(shard, worker), worker);
  }
  // Highest weight first, ties by worker index: a total order that is a
  // pure function of (shard, fleet size), so every coordinator agrees and
  // removing one worker promotes exactly its next-ranked peer.
  std::sort(rank_scratch_.begin(), rank_scratch_.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
}

bool DistributedWdp::worker_live(std::size_t worker) const {
  return worker < worker_dead_.size() && !worker_dead_[worker] &&
         !worker_departed_[worker];
}

std::size_t DistributedWdp::home_worker(std::size_t shard) const {
  rendezvous_order(shard);
  for (const auto& [weight, worker] : rank_scratch_) {
    if (worker_live(worker)) return worker;
  }
  return transport_->worker_count();
}

bool DistributedWdp::dispatch(Lane& lane, std::size_t shard) const {
  const std::size_t workers = transport_->worker_count();
  encode(request_, frame_);
  // Attempt k goes to the k-th live worker of the shard's rendezvous order
  // (wrapping), so the first attempt hits the shard's home and every retry
  // or hedge really reaches the NEXT live worker — a live-but-unresponsive
  // worker cannot absorb all of a shard's attempts. Dead and departed
  // workers are skipped; a send() that throws marks its worker dead and
  // moves on.
  rendezvous_order(shard);
  const std::size_t start = lane.attempts[shard] - 1;
  for (std::size_t offset = 0; offset < workers; ++offset) {
    const std::size_t worker = rank_scratch_[(start + offset) % workers].second;
    if (!worker_live(worker)) continue;
    try {
      transport_->send(worker, frame_);
    } catch (const TransportError&) {
      worker_dead_[worker] = true;
      ++stats_.dead_workers;
      continue;
    }
    ++stats_.dispatches;
    lane.last_worker[shard] = worker;
    lane.last_sent[shard] = std::chrono::steady_clock::now();
    outstanding_.push_back(AttemptRecord{.seq = lane.seq,
                                         .shard = static_cast<std::uint32_t>(shard),
                                         .worker = worker,
                                         .sent = lane.last_sent[shard]});
    // Eager hedge: a chronically slow home gets a shadow dispatch to the
    // next live worker immediately — first valid reply wins, the loser is
    // deduplicated, and the straggler keeps being measured.
    if (config_.hedge && lane.attempts[shard] == 1 &&
        chronic_straggler(worker)) {
      for (std::size_t step = 1; step < workers; ++step) {
        const std::size_t mate =
            rank_scratch_[(start + offset + step) % workers].second;
        if (!worker_live(mate) || mate == worker) continue;
        try {
          transport_->send(mate, frame_);
        } catch (const TransportError&) {
          worker_dead_[mate] = true;
          ++stats_.dead_workers;
          continue;
        }
        ++stats_.dispatches;
        ++stats_.hedged_dispatches;
        outstanding_.push_back(
            AttemptRecord{.seq = lane.seq,
                          .shard = static_cast<std::uint32_t>(shard),
                          .worker = mate,
                          .sent = std::chrono::steady_clock::now()});
        break;
      }
    }
    return true;
  }
  return false;
}

std::chrono::microseconds DistributedWdp::cluster_best_deadline() const {
  auto best = std::chrono::microseconds::max();
  for (std::size_t worker = 0; worker < worker_latency_.size(); ++worker) {
    const sfl::stats::RunningStats& s = worker_latency_[worker];
    if (!worker_live(worker) || s.count() < kHedgeMinSamples) continue;
    const auto own = std::chrono::microseconds{static_cast<std::int64_t>(
        s.mean() + config_.hedge_deadline_sigma * s.stddev())};
    best = std::min(best, std::max(own, kHedgeFloor));
  }
  return best;
}

bool DistributedWdp::chronic_straggler(std::size_t worker) const {
  const sfl::stats::RunningStats& s = worker_latency_[worker];
  if (s.count() < kHedgeMinSamples) return false;
  const auto best = cluster_best_deadline();
  if (best == std::chrono::microseconds::max()) return false;
  const double own = s.mean() + config_.hedge_deadline_sigma * s.stddev();
  return own > kHedgeStragglerFactor * static_cast<double>(best.count());
}

std::chrono::microseconds DistributedWdp::deadline_for(
    std::size_t worker) const {
  const auto timeout =
      std::chrono::duration_cast<std::chrono::microseconds>(
          config_.receive_timeout);
  const sfl::stats::RunningStats& s = worker_latency_[worker];
  // Cold start: no evidence yet, fall back to the configured timeout.
  if (s.count() < kHedgeMinSamples) return timeout;
  double own = s.mean() + config_.hedge_deadline_sigma * s.stddev();
  // Cross-worker straggler cap: a consistently slow worker's replies always
  // beat its OWN inflated envelope, so without this cap it would never be
  // hedged — exactly the worker hedging exists for.
  const auto best = cluster_best_deadline();
  if (best != std::chrono::microseconds::max()) {
    own = std::min(own,
                   kHedgeStragglerFactor * static_cast<double>(best.count()));
  }
  const auto deadline = std::chrono::microseconds{
      static_cast<std::int64_t>(std::max(own, 0.0))};
  return std::clamp(deadline, kHedgeFloor, std::max(timeout, kHedgeFloor));
}

std::chrono::milliseconds DistributedWdp::recovery_wait(
    const Lane& lane) const {
  if (!config_.hedge) return config_.receive_timeout;
  const auto now = std::chrono::steady_clock::now();
  auto soonest = std::chrono::duration_cast<std::chrono::microseconds>(
      config_.receive_timeout);
  for (std::size_t shard = 0; shard < lane.shards; ++shard) {
    if (lane.shard_done[shard]) continue;
    const auto deadline = deadline_for(lane.last_worker[shard]);
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        now - lane.last_sent[shard]);
    soonest = std::min(
        soonest, deadline > elapsed ? deadline - elapsed
                                    : std::chrono::microseconds{0});
  }
  // Ceil to whole milliseconds (the transport wait granularity): a sub-ms
  // remainder must still wait, not busy-spin at zero.
  return std::chrono::ceil<std::chrono::milliseconds>(soonest);
}

void DistributedWdp::purge_outstanding(std::uint64_t seq) const {
  std::erase_if(outstanding_,
                [seq](const AttemptRecord& r) { return r.seq == seq; });
}

void DistributedWdp::recompute_locally(Lane& lane, std::size_t shard) const {
  // Exact worker math on the exact request content — a recovered span is
  // indistinguishable from a delivered one.
  fill_request(lane, shard);
  compute_survivors(request_, reply_);
  for (const SurvivorEntry& entry : reply_.survivors) {
    lane.scratch->scores[entry.index] = entry.score;
    lane.scratch->survivors.push_back(static_cast<std::size_t>(entry.index));
  }
  lane.shard_done[shard] = true;
  --lane.remaining;
  ++stats_.local_recomputes;
}

void DistributedWdp::recover(Lane& lane, std::size_t shard) const {
  if (!config_.allow_local_fallback) {
    throw DistributedWdpError(
        "distributed WDP: shard " + std::to_string(shard) + " lost after " +
        std::to_string(lane.attempts[shard]) +
        " dispatch attempts and local fallback is disabled");
  }
  recompute_locally(lane, shard);
}

void DistributedWdp::dispatch_all(Lane& lane) const {
  for (std::size_t shard = 0; shard < lane.shards; ++shard) {
    lane.attempts[shard] = 1;
    fill_request(lane, shard);
    if (!dispatch(lane, shard)) recover(lane, shard);
  }
}

void DistributedWdp::handle_frame() const {
  // Peek the type byte: membership announcements never enter the reply
  // decode path (full validation happens inside handle_membership).
  if (frame_.size() >= kHeaderSize) {
    const auto raw = static_cast<std::uint8_t>(frame_[5]);
    if (raw == static_cast<std::uint8_t>(FrameType::kWorkerHello) ||
        raw == static_cast<std::uint8_t>(FrameType::kWorkerGoodbye)) {
      handle_membership(raw ==
                        static_cast<std::uint8_t>(FrameType::kWorkerHello));
      return;
    }
  }
  accept_reply();
}

void DistributedWdp::handle_membership(bool hello) const {
  std::uint64_t claimed = 0;
  try {
    if (hello) {
      WorkerHello msg;
      decode(frame_, msg);
      claimed = msg.worker;
    } else {
      WorkerGoodbye msg;
      decode(frame_, msg);
      claimed = msg.worker;
    }
  } catch (const WireError&) {
    ++stats_.rejected_replies;  // corrupt announcement: never applied
    return;
  }
  const std::size_t source = transport_->receive_source();
  const std::size_t slot = source < worker_dead_.size()
                               ? source
                               : static_cast<std::size_t>(claimed);
  if (slot >= worker_dead_.size()) {
    ++stats_.rejected_replies;  // unattributable announcement
    return;
  }
  if (hello) {
    worker_dead_[slot] = false;
    worker_departed_[slot] = false;
    // A rejoined worker is a fresh process; its latency history is stale.
    worker_latency_[slot] = sfl::stats::RunningStats{};
    ++stats_.worker_joins;
  } else {
    // A planned drain, not a fault: stop routing to the worker, charge no
    // recovery machinery. In-flight replies it already produced still
    // arrive and still count.
    worker_departed_[slot] = true;
    ++stats_.worker_leaves;
  }
}

void DistributedWdp::pump() const {
  while (transport_->receive(frame_, std::chrono::milliseconds{0})) {
    handle_frame();
  }
}

void DistributedWdp::accept_reply() const {
  try {
    decode(frame_, reply_);
  } catch (const WireError&) {
    ++stats_.rejected_replies;  // corrupt frame: never accepted
    return;
  }
  // Latency attribution by (generation, shard, source worker) BEFORE any
  // staleness check: hedge losers and late stragglers still update their
  // worker's statistics — that is how a chronic straggler keeps being
  // measured while it keeps losing races.
  const std::size_t source = transport_->receive_source();
  if (source < worker_latency_.size()) {
    const auto now = std::chrono::steady_clock::now();
    for (auto it = outstanding_.begin(); it != outstanding_.end(); ++it) {
      if (it->seq == reply_.round && it->shard == reply_.shard &&
          it->worker == source) {
        worker_latency_[source].add(static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                                  it->sent)
                .count()));
        outstanding_.erase(it);
        break;
      }
    }
  }
  // Route by dispatch generation: the sequence number names exactly one
  // active lane. Retired rounds and abandoned (re-dispatched, resubmitted)
  // generations match nothing and are dropped — a stale frame can never be
  // merged into a different round, whatever the pipeline depth.
  Lane* const lane = lane_for_seq(reply_.round);
  if (lane == nullptr || reply_.shard >= lane->shards ||
      lane->shard_done[reply_.shard]) {
    ++stats_.ignored_replies;
    return;
  }
  // The reply must describe exactly the span THIS round's dispatch named,
  // with exactly the survivor count the worker math produces — anything
  // else is a corrupt-but-checksummed or byzantine frame and is rejected
  // (the recovery path re-covers the shard).
  const auto [begin, end] =
      sfl::util::ThreadPool::chunk_range(lane->n, lane->shards, reply_.shard);
  const std::size_t span = end - begin;
  const std::size_t local_cap = std::min(lane->max_winners + 1, lane->n);
  const std::size_t expected = std::min(local_cap, span);
  if (reply_.shard_count != lane->shards || reply_.begin != begin ||
      reply_.count != span || reply_.survivors.size() != expected) {
    ++stats_.rejected_replies;
    return;
  }
  for (const SurvivorEntry& entry : reply_.survivors) {
    lane->scratch->scores[entry.index] = entry.score;
    lane->scratch->survivors.push_back(static_cast<std::size_t>(entry.index));
  }
  lane->shard_done[reply_.shard] = true;
  --lane->remaining;
}

void DistributedWdp::collect(Lane& lane) const {
  // Collect + recovery loop for the round being retired. Replies for
  // younger in-flight rounds pumped up along the way are banked into their
  // own lanes; recovery touches only THIS round (younger rounds get their
  // recovery passes when they become the oldest). Terminates: every
  // recovery sweep either resolves one of this round's shards locally or
  // increments its bounded attempt count, and a sweep that touches nothing
  // (every unresolved shard inside its deadline) shortens the next wait to
  // that soonest deadline.
  while (lane.remaining > 0) {
    const std::chrono::milliseconds wait = recovery_wait(lane);
    const auto asked = std::chrono::steady_clock::now();
    if (transport_->receive(frame_, wait)) {
      handle_frame();
      continue;
    }
    // Distinguish a real elapsed deadline from a simulated transport's
    // immediate "nothing deliverable": only a wait that mostly ran its
    // course arms the per-worker deadline filter; an instant false keeps
    // the sweep-everything semantics simulated fault tests are scripted
    // against.
    const auto waited = std::chrono::steady_clock::now() - asked;
    const bool timed_out = waited + waited >= wait;
    recovery_pass(lane, /*only_blown=*/config_.hedge && timed_out);
  }
}

void DistributedWdp::recovery_pass(Lane& lane, bool only_blown) const {
  const auto now = std::chrono::steady_clock::now();
  for (std::size_t shard = 0; shard < lane.shards && lane.remaining > 0;
       ++shard) {
    if (lane.shard_done[shard]) continue;
    if (only_blown &&
        now - lane.last_sent[shard] < deadline_for(lane.last_worker[shard])) {
      continue;  // its worker is still inside its own latency envelope
    }
    if (lane.attempts[shard] >= config_.max_attempts_per_shard) {
      recover(lane, shard);
      continue;
    }
    // A hedge, not an abandonment: the sequence number stays, so the
    // original attempt's reply remains valid — first valid reply per shard
    // wins and the per-lane dedupe drops the loser.
    ++lane.attempts[shard];
    ++stats_.redispatches;
    if (config_.hedge) ++stats_.hedged_dispatches;
    fill_request(lane, shard);
    if (!dispatch(lane, shard)) recover(lane, shard);
  }
}

void DistributedWdp::merge(Lane& lane) const {
  // Merge: identical to ShardedWdp — the survivor multiset is the same for
  // any routing/fault history, and the strict total order makes the sorted
  // sequence (hence allocation and threshold) a pure function of the batch.
  RoundScratch& scratch = *lane.scratch;
  Allocation& allocation = scratch.allocation;
  allocation.selected.clear();
  allocation.total_score = 0.0;
  if (lane.n == 0) return;

  double* const scores = scratch.scores.data();
  const std::span<const sfl::auction::ClientId> ids = lane.batch->ids();
  const auto better = [scores, ids](std::size_t a, std::size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    if (ids[a] != ids[b]) return ids[a] < ids[b];
    return a < b;
  };
  std::sort(scratch.survivors.begin(), scratch.survivors.end(), better);

  const std::size_t prefix =
      std::min(lane.max_winners, scratch.survivors.size());
  for (std::size_t k = 0; k < prefix; ++k) {
    const std::size_t index = scratch.survivors[k];
    if (scores[index] <= 0.0) break;  // merged order; the rest are <= 0 too
    allocation.selected.push_back(index);
    allocation.total_score += scores[index];
  }
  std::sort(allocation.selected.begin(), allocation.selected.end());
}

void DistributedWdp::release_lane(Lane& lane) const {
  purge_outstanding(lane.seq);
  lane.batch = nullptr;
  lane.penalties = nullptr;
  lane.scratch = nullptr;
  lane.seq = 0;
}

void DistributedWdp::pop_oldest_lane() const {
  release_lane(lanes_[head_]);
  head_ = (head_ + 1) % lanes_.size();
  --count_;
}

DistributedWdp::RoundHandle DistributedWdp::submit(
    const CandidateBatch& batch, const ScoreWeights& weights,
    std::size_t max_winners, const Penalties& penalties,
    RoundScratch& scratch) const {
  // Same preconditions as the in-process engines, checked at dispatch time.
  require(weights.bid_weight > 0.0,
          "bid weight must be > 0 (otherwise bids do not matter)");
  require(weights.value_weight >= 0.0, "value weight must be >= 0");
  require(penalties.empty() || penalties.size() == batch.size(),
          "penalties must be empty or one per candidate");
  require(count_ < lanes_.size(),
          "distributed WDP pipeline is full: retire a round before "
          "submitting another");
  if (sfl::util::validate_mode_enabled()) validate_batch(batch);

  // Synchronous callers (empty pipeline) keep per-round stats; a pipelined
  // burst accumulates until it drains.
  if (count_ == 0) stats_ = RoundStats{};

  Lane& lane = lanes_[(head_ + count_) % lanes_.size()];
  ++count_;
  lane.handle = ++handle_counter_;
  lane.seq = ++seq_counter_;
  lane.batch = &batch;
  lane.penalties = &stable_penalties(penalties);
  lane.scratch = &scratch;
  lane.weights = weights;
  lane.max_winners = max_winners;
  lane.n = batch.size();

  scratch.order.clear();
  scratch.survivors.clear();
  scratch.allocation.selected.clear();
  scratch.allocation.total_score = 0.0;
  if (lane.n == 0) {
    scratch.scores.clear();
    lane.shards = 0;
    lane.remaining = 0;
    return lane.handle;
  }
  scratch.scores.resize(lane.n);
  lane.shards = effective_shards(lane.n);
  lane.shard_done.assign(lane.shards, false);
  lane.attempts.assign(lane.shards, 0);
  lane.last_worker.assign(lane.shards, 0);
  lane.last_sent.assign(lane.shards, std::chrono::steady_clock::now());
  lane.remaining = lane.shards;
  try {
    dispatch_all(lane);
  } catch (...) {
    // Fallback disabled and a span unreachable: the round was never
    // submitted. The newest lane is at the tail, so dropping it leaves
    // every older in-flight round untouched (its seq goes stale).
    --count_;
    release_lane(lane);
    throw;
  }
  return lane.handle;
}

void DistributedWdp::resubmit(RoundHandle handle, const ScoreWeights& weights,
                              const Penalties& penalties) const {
  require(weights.bid_weight > 0.0,
          "bid weight must be > 0 (otherwise bids do not matter)");
  require(weights.value_weight >= 0.0, "value weight must be >= 0");
  Lane* target = nullptr;
  for (std::size_t offset = 0; offset < count_; ++offset) {
    Lane& lane = lane_at(offset);
    if (lane.handle == handle) {
      target = &lane;
      break;
    }
  }
  require(target != nullptr, "resubmit: no such in-flight round");
  require(penalties.empty() || penalties.size() == target->n,
          "penalties must be empty or one per candidate");
  Lane& lane = *target;
  lane.weights = weights;
  lane.penalties = &stable_penalties(penalties);
  ++stats_.resubmits;
  if (lane.n == 0) return;
  // Abandon the old generation: a fresh sequence number means every reply
  // the previous dispatch may still produce matches no lane and is
  // ignored; survivors already banked under the old inputs are discarded,
  // and so is the old generation's latency bookkeeping.
  purge_outstanding(lane.seq);
  lane.seq = ++seq_counter_;
  lane.scratch->survivors.clear();
  lane.shard_done.assign(lane.shards, false);
  lane.attempts.assign(lane.shards, 0);
  lane.last_worker.assign(lane.shards, 0);
  lane.last_sent.assign(lane.shards, std::chrono::steady_clock::now());
  lane.remaining = lane.shards;
  dispatch_all(lane);
}

DistributedWdp::RoundHandle DistributedWdp::retire_oldest() const {
  require(count_ > 0, "retire_oldest: no rounds in flight");
  Lane& lane = lanes_[head_];
  const RoundHandle handle = lane.handle;
  try {
    collect(lane);
    merge(lane);
    if (lane.n > 0) {
      pricer_->critical_payments(*lane.batch, lane.weights, lane.max_winners,
                                 *lane.penalties, *lane.scratch);
    } else {
      lane.scratch->payments.clear();
    }
  } catch (...) {
    // An unrecoverable round is abandoned; younger in-flight rounds stay
    // valid and retirable (their sequences still route).
    pop_oldest_lane();
    throw;
  }
  pop_oldest_lane();
  return handle;
}

const Allocation& DistributedWdp::select_top_m(const CandidateBatch& batch,
                                               const ScoreWeights& weights,
                                               std::size_t max_winners,
                                               const Penalties& penalties,
                                               RoundScratch& scratch) const {
  require(count_ == 0,
          "synchronous select_top_m requires an empty pipeline (use the "
          "submit/retire_oldest API for in-flight rounds)");
  submit(batch, weights, max_winners, penalties, scratch);
  Lane& lane = lanes_[head_];
  try {
    collect(lane);
    merge(lane);
  } catch (...) {
    pop_oldest_lane();
    throw;
  }
  pop_oldest_lane();
  return scratch.allocation;
}

const std::vector<double>& DistributedWdp::critical_payments(
    const CandidateBatch& batch, const ScoreWeights& weights,
    std::size_t max_winners, const Penalties& penalties,
    RoundScratch& scratch) const {
  // The merged survivor order in the scratch answers the threshold scan the
  // same way it does for the thread-sharded engine; the pricing arithmetic
  // lives in exactly one place.
  return pricer_->critical_payments(batch, weights, max_winners, penalties,
                                    scratch);
}

}  // namespace sfl::dist
