#include "dist/distributed_wdp.h"

#include <algorithm>
#include <string>

#include "auction/sharded_wdp.h"
#include "dist/loopback_transport.h"
#include "dist/shard_worker.h"
#include "util/config.h"
#include "util/require.h"
#include "util/thread_pool.h"

namespace sfl::dist {

using sfl::auction::Allocation;
using sfl::auction::CandidateBatch;
using sfl::auction::Penalties;
using sfl::auction::RoundScratch;
using sfl::auction::ScoreWeights;
using sfl::util::require;

DistributedWdp::DistributedWdp(DistributedWdpConfig config,
                               std::unique_ptr<ShardTransport> transport)
    : config_(config),
      transport_(transport != nullptr
                     ? std::move(transport)
                     : std::make_unique<LoopbackTransport>(
                           std::max<std::size_t>(config.workers, 1))),
      pricer_(std::make_unique<sfl::auction::ShardedWdp>(
          sfl::auction::ShardedWdpConfig{.shards = 1})) {
  require(config_.max_attempts_per_shard >= 1,
          "need at least one dispatch attempt per shard");
  worker_dead_.assign(transport_->worker_count(), false);
}

DistributedWdp::~DistributedWdp() = default;

std::size_t DistributedWdp::effective_shards(std::size_t n) const {
  if (n <= 1) return 1;
  // Default = the transport's worker count: a function of the deployment
  // configuration, never of the coordinator's core count.
  const std::size_t shards =
      config_.shards != 0 ? config_.shards : transport_->worker_count();
  return std::min(std::max<std::size_t>(shards, 1), n);
}

void DistributedWdp::fill_request(const CandidateBatch& batch,
                                  const ScoreWeights& weights,
                                  std::size_t max_winners,
                                  const Penalties& penalties, std::size_t n,
                                  std::size_t shards,
                                  std::size_t shard) const {
  const auto [begin, end] =
      sfl::util::ThreadPool::chunk_range(n, shards, shard);
  request_.round = round_seq_;
  request_.shard = static_cast<std::uint32_t>(shard);
  request_.shard_count = static_cast<std::uint32_t>(shards);
  request_.begin = begin;
  request_.max_winners = max_winners;
  request_.weights = weights;
  const std::span<const sfl::auction::ClientId> ids = batch.ids();
  const std::span<const double> values = batch.values();
  const std::span<const double> bids = batch.bids();
  request_.ids.assign(ids.begin() + begin, ids.begin() + end);
  request_.values.assign(values.begin() + begin, values.begin() + end);
  request_.bids.assign(bids.begin() + begin, bids.begin() + end);
  if (penalties.empty()) {
    request_.penalties.clear();
  } else {
    request_.penalties.assign(penalties.begin() + begin,
                              penalties.begin() + end);
  }
}

bool DistributedWdp::dispatch(std::size_t shard) const {
  const std::size_t workers = transport_->worker_count();
  encode(request_, frame_);
  // First attempt starts at the shard's home worker; every retry starts
  // one worker further, so a live-but-unresponsive worker (send succeeds,
  // replies lost) cannot absorb all of a shard's attempts — re-dispatch
  // really does reach the NEXT live worker. Known-dead workers are
  // skipped; a send() that throws marks its worker dead and moves on.
  const std::size_t start = shard + (attempts_[shard] - 1);
  for (std::size_t offset = 0; offset < workers; ++offset) {
    const std::size_t worker = (start + offset) % workers;
    if (worker_dead_[worker]) continue;
    try {
      transport_->send(worker, frame_);
      ++stats_.dispatches;
      return true;
    } catch (const TransportError&) {
      worker_dead_[worker] = true;
      ++stats_.dead_workers;
    }
  }
  return false;
}

void DistributedWdp::recompute_locally(const CandidateBatch& batch,
                                       const ScoreWeights& weights,
                                       std::size_t max_winners,
                                       const Penalties& penalties,
                                       std::size_t n, std::size_t shards,
                                       std::size_t shard,
                                       RoundScratch& scratch) const {
  // Exact worker math on the exact request content — a recovered span is
  // indistinguishable from a delivered one.
  fill_request(batch, weights, max_winners, penalties, n, shards, shard);
  compute_survivors(request_, reply_);
  for (const SurvivorEntry& entry : reply_.survivors) {
    scratch.scores[entry.index] = entry.score;
    scratch.survivors.push_back(static_cast<std::size_t>(entry.index));
  }
  shard_done_[shard] = true;
  --remaining_;
  ++stats_.local_recomputes;
}

void DistributedWdp::accept_reply(std::size_t n, std::size_t shards,
                                  std::size_t max_winners,
                                  RoundScratch& scratch) const {
  try {
    decode(frame_, reply_);
  } catch (const WireError&) {
    ++stats_.rejected_replies;  // corrupt frame: never accepted
    return;
  }
  // Stale rounds and already-satisfied shards (duplicates, replies racing a
  // re-dispatch or a local recompute) are dropped, not errors.
  if (reply_.round != round_seq_ || reply_.shard >= shards ||
      shard_done_[reply_.shard]) {
    ++stats_.ignored_replies;
    return;
  }
  // The reply must describe exactly the span the coordinator dispatched,
  // with exactly the survivor count the worker math produces — anything
  // else is a corrupt-but-checksummed or byzantine frame and is rejected
  // (the recovery path re-covers the shard).
  const auto [begin, end] =
      sfl::util::ThreadPool::chunk_range(n, shards, reply_.shard);
  const std::size_t span = end - begin;
  const std::size_t local_cap = std::min(max_winners + 1, n);
  const std::size_t expected = std::min(local_cap, span);
  if (reply_.shard_count != shards || reply_.begin != begin ||
      reply_.count != span || reply_.survivors.size() != expected) {
    ++stats_.rejected_replies;
    return;
  }
  for (const SurvivorEntry& entry : reply_.survivors) {
    scratch.scores[entry.index] = entry.score;
    scratch.survivors.push_back(static_cast<std::size_t>(entry.index));
  }
  shard_done_[reply_.shard] = true;
  --remaining_;
}

const Allocation& DistributedWdp::select_top_m(
    const CandidateBatch& batch, const ScoreWeights& weights,
    std::size_t max_winners, const Penalties& penalties,
    RoundScratch& scratch) const {
  // Same preconditions as the in-process engines.
  require(weights.bid_weight > 0.0,
          "bid weight must be > 0 (otherwise bids do not matter)");
  require(weights.value_weight >= 0.0, "value weight must be >= 0");
  require(penalties.empty() || penalties.size() == batch.size(),
          "penalties must be empty or one per candidate");
  if (sfl::util::validate_mode_enabled()) validate_batch(batch);

  Allocation& allocation = scratch.allocation;
  allocation.selected.clear();
  allocation.total_score = 0.0;
  scratch.survivors.clear();
  scratch.order.clear();
  const std::size_t n = batch.size();
  if (n == 0) {
    scratch.scores.clear();
    return allocation;
  }

  scratch.scores.resize(n);
  const std::size_t shards = effective_shards(n);
  ++round_seq_;
  stats_ = RoundStats{};
  shard_done_.assign(shards, false);
  attempts_.assign(shards, 0);
  remaining_ = shards;

  const auto recover = [&](std::size_t shard) {
    if (!config_.allow_local_fallback) {
      throw DistributedWdpError(
          "distributed WDP: shard " + std::to_string(shard) + " lost after " +
          std::to_string(attempts_[shard]) +
          " dispatch attempts and local fallback is disabled");
    }
    recompute_locally(batch, weights, max_winners, penalties, n, shards,
                      shard, scratch);
  };

  // Dispatch phase: one request per shard.
  for (std::size_t shard = 0; shard < shards; ++shard) {
    attempts_[shard] = 1;
    fill_request(batch, weights, max_winners, penalties, n, shards, shard);
    if (!dispatch(shard)) recover(shard);
  }

  // Collect + recovery loop. Terminates: every timeout pass either resolves
  // a shard locally or increments its bounded attempt count.
  while (remaining_ > 0) {
    if (transport_->receive(frame_, config_.receive_timeout)) {
      accept_reply(n, shards, max_winners, scratch);
      continue;
    }
    for (std::size_t shard = 0; shard < shards && remaining_ > 0; ++shard) {
      if (shard_done_[shard]) continue;
      if (attempts_[shard] >= config_.max_attempts_per_shard) {
        recover(shard);
        continue;
      }
      ++attempts_[shard];
      ++stats_.redispatches;
      fill_request(batch, weights, max_winners, penalties, n, shards, shard);
      if (!dispatch(shard)) recover(shard);
    }
  }

  // Merge: identical to ShardedWdp — the survivor multiset is the same for
  // any routing/fault history, and the strict total order makes the sorted
  // sequence (hence allocation and threshold) a pure function of the batch.
  double* const scores = scratch.scores.data();
  const std::span<const sfl::auction::ClientId> ids = batch.ids();
  const auto better = [scores, ids](std::size_t a, std::size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    if (ids[a] != ids[b]) return ids[a] < ids[b];
    return a < b;
  };
  std::sort(scratch.survivors.begin(), scratch.survivors.end(), better);

  const std::size_t prefix = std::min(max_winners, scratch.survivors.size());
  for (std::size_t k = 0; k < prefix; ++k) {
    const std::size_t index = scratch.survivors[k];
    if (scores[index] <= 0.0) break;  // merged order; the rest are <= 0 too
    allocation.selected.push_back(index);
    allocation.total_score += scores[index];
  }
  std::sort(allocation.selected.begin(), allocation.selected.end());
  return allocation;
}

const std::vector<double>& DistributedWdp::critical_payments(
    const CandidateBatch& batch, const ScoreWeights& weights,
    std::size_t max_winners, const Penalties& penalties,
    RoundScratch& scratch) const {
  // The merged survivor order in the scratch answers the threshold scan the
  // same way it does for the thread-sharded engine; the pricing arithmetic
  // lives in exactly one place.
  return pricer_->critical_payments(batch, weights, max_winners, penalties,
                                    scratch);
}

}  // namespace sfl::dist
