#include "dist/distributed_wdp.h"

#include <algorithm>
#include <string>

#include "auction/sharded_wdp.h"
#include "dist/loopback_transport.h"
#include "dist/shard_worker.h"
#include "util/config.h"
#include "util/require.h"
#include "util/thread_pool.h"

namespace sfl::dist {

using sfl::auction::Allocation;
using sfl::auction::CandidateBatch;
using sfl::auction::Penalties;
using sfl::auction::RoundScratch;
using sfl::auction::ScoreWeights;
using sfl::util::require;

namespace {

/// Empty penalties passed as a temporary ({} at the call site) would leave
/// a dangling lane pointer once submit() returns; alias them to one static
/// instance instead. Non-empty penalties are caller-owned until retirement,
/// like the batch and the scratch.
const Penalties& stable_penalties(const Penalties& penalties) {
  static const Penalties kEmpty{};
  return penalties.empty() ? kEmpty : penalties;
}

}  // namespace

DistributedWdp::DistributedWdp(DistributedWdpConfig config,
                               std::unique_ptr<ShardTransport> transport)
    : config_(config),
      transport_(transport != nullptr
                     ? std::move(transport)
                     : std::make_unique<LoopbackTransport>(
                           std::max<std::size_t>(config.workers, 1))),
      pricer_(std::make_unique<sfl::auction::ShardedWdp>(
          sfl::auction::ShardedWdpConfig{.shards = 1})) {
  require(config_.max_attempts_per_shard >= 1,
          "need at least one dispatch attempt per shard");
  require(config_.pipeline_depth >= 1,
          "pipeline depth must be >= 1 (1 = strictly serial rounds)");
  lanes_.resize(config_.pipeline_depth);
  worker_dead_.assign(transport_->worker_count(), false);
}

DistributedWdp::~DistributedWdp() = default;

std::size_t DistributedWdp::effective_shards(std::size_t n) const {
  if (n <= 1) return 1;
  // Default = the transport's worker count: a function of the deployment
  // configuration, never of the coordinator's core count.
  const std::size_t shards =
      config_.shards != 0 ? config_.shards : transport_->worker_count();
  return std::min(std::max<std::size_t>(shards, 1), n);
}

DistributedWdp::Lane* DistributedWdp::lane_for_seq(std::uint64_t seq) const {
  for (std::size_t offset = 0; offset < count_; ++offset) {
    Lane& lane = lane_at(offset);
    if (lane.seq == seq) return &lane;
  }
  return nullptr;
}

void DistributedWdp::fill_request(const Lane& lane, std::size_t shard) const {
  const auto [begin, end] =
      sfl::util::ThreadPool::chunk_range(lane.n, lane.shards, shard);
  request_.round = lane.seq;
  request_.shard = static_cast<std::uint32_t>(shard);
  request_.shard_count = static_cast<std::uint32_t>(lane.shards);
  request_.begin = begin;
  request_.max_winners = lane.max_winners;
  request_.weights = lane.weights;
  const std::span<const sfl::auction::ClientId> ids = lane.batch->ids();
  const std::span<const double> values = lane.batch->values();
  const std::span<const double> bids = lane.batch->bids();
  request_.ids.assign(ids.begin() + begin, ids.begin() + end);
  request_.values.assign(values.begin() + begin, values.begin() + end);
  request_.bids.assign(bids.begin() + begin, bids.begin() + end);
  if (lane.penalties->empty()) {
    request_.penalties.clear();
  } else {
    request_.penalties.assign(lane.penalties->begin() + begin,
                              lane.penalties->begin() + end);
  }
}

bool DistributedWdp::dispatch(const Lane& lane, std::size_t shard) const {
  const std::size_t workers = transport_->worker_count();
  encode(request_, frame_);
  // First attempt starts at the shard's home worker; every retry starts
  // one worker further, so a live-but-unresponsive worker (send succeeds,
  // replies lost) cannot absorb all of a shard's attempts — re-dispatch
  // really does reach the NEXT live worker. Known-dead workers are
  // skipped; a send() that throws marks its worker dead and moves on.
  const std::size_t start = shard + (lane.attempts[shard] - 1);
  for (std::size_t offset = 0; offset < workers; ++offset) {
    const std::size_t worker = (start + offset) % workers;
    if (worker_dead_[worker]) continue;
    try {
      transport_->send(worker, frame_);
      ++stats_.dispatches;
      return true;
    } catch (const TransportError&) {
      worker_dead_[worker] = true;
      ++stats_.dead_workers;
    }
  }
  return false;
}

void DistributedWdp::recompute_locally(Lane& lane, std::size_t shard) const {
  // Exact worker math on the exact request content — a recovered span is
  // indistinguishable from a delivered one.
  fill_request(lane, shard);
  compute_survivors(request_, reply_);
  for (const SurvivorEntry& entry : reply_.survivors) {
    lane.scratch->scores[entry.index] = entry.score;
    lane.scratch->survivors.push_back(static_cast<std::size_t>(entry.index));
  }
  lane.shard_done[shard] = true;
  --lane.remaining;
  ++stats_.local_recomputes;
}

void DistributedWdp::recover(Lane& lane, std::size_t shard) const {
  if (!config_.allow_local_fallback) {
    throw DistributedWdpError(
        "distributed WDP: shard " + std::to_string(shard) + " lost after " +
        std::to_string(lane.attempts[shard]) +
        " dispatch attempts and local fallback is disabled");
  }
  recompute_locally(lane, shard);
}

void DistributedWdp::dispatch_all(Lane& lane) const {
  for (std::size_t shard = 0; shard < lane.shards; ++shard) {
    lane.attempts[shard] = 1;
    fill_request(lane, shard);
    if (!dispatch(lane, shard)) recover(lane, shard);
  }
}

void DistributedWdp::accept_reply() const {
  try {
    decode(frame_, reply_);
  } catch (const WireError&) {
    ++stats_.rejected_replies;  // corrupt frame: never accepted
    return;
  }
  // Route by dispatch generation: the sequence number names exactly one
  // active lane. Retired rounds and abandoned (re-dispatched, resubmitted)
  // generations match nothing and are dropped — a stale frame can never be
  // merged into a different round, whatever the pipeline depth.
  Lane* const lane = lane_for_seq(reply_.round);
  if (lane == nullptr || reply_.shard >= lane->shards ||
      lane->shard_done[reply_.shard]) {
    ++stats_.ignored_replies;
    return;
  }
  // The reply must describe exactly the span THIS round's dispatch named,
  // with exactly the survivor count the worker math produces — anything
  // else is a corrupt-but-checksummed or byzantine frame and is rejected
  // (the recovery path re-covers the shard).
  const auto [begin, end] =
      sfl::util::ThreadPool::chunk_range(lane->n, lane->shards, reply_.shard);
  const std::size_t span = end - begin;
  const std::size_t local_cap = std::min(lane->max_winners + 1, lane->n);
  const std::size_t expected = std::min(local_cap, span);
  if (reply_.shard_count != lane->shards || reply_.begin != begin ||
      reply_.count != span || reply_.survivors.size() != expected) {
    ++stats_.rejected_replies;
    return;
  }
  for (const SurvivorEntry& entry : reply_.survivors) {
    lane->scratch->scores[entry.index] = entry.score;
    lane->scratch->survivors.push_back(static_cast<std::size_t>(entry.index));
  }
  lane->shard_done[reply_.shard] = true;
  --lane->remaining;
}

void DistributedWdp::collect(Lane& lane) const {
  // Collect + recovery loop for the round being retired. Replies for
  // younger in-flight rounds pumped up along the way are banked into their
  // own lanes; timeout recovery touches only THIS round (younger rounds get
  // their recovery passes when they become the oldest). Terminates: every
  // timeout pass either resolves one of this round's shards locally or
  // increments its bounded attempt count.
  while (lane.remaining > 0) {
    if (transport_->receive(frame_, config_.receive_timeout)) {
      accept_reply();
      continue;
    }
    for (std::size_t shard = 0; shard < lane.shards && lane.remaining > 0;
         ++shard) {
      if (lane.shard_done[shard]) continue;
      if (lane.attempts[shard] >= config_.max_attempts_per_shard) {
        recover(lane, shard);
        continue;
      }
      ++lane.attempts[shard];
      ++stats_.redispatches;
      fill_request(lane, shard);
      if (!dispatch(lane, shard)) recover(lane, shard);
    }
  }
}

void DistributedWdp::merge(Lane& lane) const {
  // Merge: identical to ShardedWdp — the survivor multiset is the same for
  // any routing/fault history, and the strict total order makes the sorted
  // sequence (hence allocation and threshold) a pure function of the batch.
  RoundScratch& scratch = *lane.scratch;
  Allocation& allocation = scratch.allocation;
  allocation.selected.clear();
  allocation.total_score = 0.0;
  if (lane.n == 0) return;

  double* const scores = scratch.scores.data();
  const std::span<const sfl::auction::ClientId> ids = lane.batch->ids();
  const auto better = [scores, ids](std::size_t a, std::size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    if (ids[a] != ids[b]) return ids[a] < ids[b];
    return a < b;
  };
  std::sort(scratch.survivors.begin(), scratch.survivors.end(), better);

  const std::size_t prefix =
      std::min(lane.max_winners, scratch.survivors.size());
  for (std::size_t k = 0; k < prefix; ++k) {
    const std::size_t index = scratch.survivors[k];
    if (scores[index] <= 0.0) break;  // merged order; the rest are <= 0 too
    allocation.selected.push_back(index);
    allocation.total_score += scores[index];
  }
  std::sort(allocation.selected.begin(), allocation.selected.end());
}

void DistributedWdp::release_lane(Lane& lane) {
  lane.batch = nullptr;
  lane.penalties = nullptr;
  lane.scratch = nullptr;
  lane.seq = 0;
}

void DistributedWdp::pop_oldest_lane() const {
  release_lane(lanes_[head_]);
  head_ = (head_ + 1) % lanes_.size();
  --count_;
}

DistributedWdp::RoundHandle DistributedWdp::submit(
    const CandidateBatch& batch, const ScoreWeights& weights,
    std::size_t max_winners, const Penalties& penalties,
    RoundScratch& scratch) const {
  // Same preconditions as the in-process engines, checked at dispatch time.
  require(weights.bid_weight > 0.0,
          "bid weight must be > 0 (otherwise bids do not matter)");
  require(weights.value_weight >= 0.0, "value weight must be >= 0");
  require(penalties.empty() || penalties.size() == batch.size(),
          "penalties must be empty or one per candidate");
  require(count_ < lanes_.size(),
          "distributed WDP pipeline is full: retire a round before "
          "submitting another");
  if (sfl::util::validate_mode_enabled()) validate_batch(batch);

  // Synchronous callers (empty pipeline) keep per-round stats; a pipelined
  // burst accumulates until it drains.
  if (count_ == 0) stats_ = RoundStats{};

  Lane& lane = lanes_[(head_ + count_) % lanes_.size()];
  ++count_;
  lane.handle = ++handle_counter_;
  lane.seq = ++seq_counter_;
  lane.batch = &batch;
  lane.penalties = &stable_penalties(penalties);
  lane.scratch = &scratch;
  lane.weights = weights;
  lane.max_winners = max_winners;
  lane.n = batch.size();

  scratch.order.clear();
  scratch.survivors.clear();
  scratch.allocation.selected.clear();
  scratch.allocation.total_score = 0.0;
  if (lane.n == 0) {
    scratch.scores.clear();
    lane.shards = 0;
    lane.remaining = 0;
    return lane.handle;
  }
  scratch.scores.resize(lane.n);
  lane.shards = effective_shards(lane.n);
  lane.shard_done.assign(lane.shards, false);
  lane.attempts.assign(lane.shards, 0);
  lane.remaining = lane.shards;
  try {
    dispatch_all(lane);
  } catch (...) {
    // Fallback disabled and a span unreachable: the round was never
    // submitted. The newest lane is at the tail, so dropping it leaves
    // every older in-flight round untouched (its seq goes stale).
    --count_;
    release_lane(lane);
    throw;
  }
  return lane.handle;
}

void DistributedWdp::resubmit(RoundHandle handle, const ScoreWeights& weights,
                              const Penalties& penalties) const {
  require(weights.bid_weight > 0.0,
          "bid weight must be > 0 (otherwise bids do not matter)");
  require(weights.value_weight >= 0.0, "value weight must be >= 0");
  Lane* target = nullptr;
  for (std::size_t offset = 0; offset < count_; ++offset) {
    Lane& lane = lane_at(offset);
    if (lane.handle == handle) {
      target = &lane;
      break;
    }
  }
  require(target != nullptr, "resubmit: no such in-flight round");
  require(penalties.empty() || penalties.size() == target->n,
          "penalties must be empty or one per candidate");
  Lane& lane = *target;
  lane.weights = weights;
  lane.penalties = &stable_penalties(penalties);
  ++stats_.resubmits;
  if (lane.n == 0) return;
  // Abandon the old generation: a fresh sequence number means every reply
  // the previous dispatch may still produce matches no lane and is
  // ignored; survivors already banked under the old inputs are discarded.
  lane.seq = ++seq_counter_;
  lane.scratch->survivors.clear();
  lane.shard_done.assign(lane.shards, false);
  lane.attempts.assign(lane.shards, 0);
  lane.remaining = lane.shards;
  dispatch_all(lane);
}

DistributedWdp::RoundHandle DistributedWdp::retire_oldest() const {
  require(count_ > 0, "retire_oldest: no rounds in flight");
  Lane& lane = lanes_[head_];
  const RoundHandle handle = lane.handle;
  try {
    collect(lane);
    merge(lane);
    if (lane.n > 0) {
      pricer_->critical_payments(*lane.batch, lane.weights, lane.max_winners,
                                 *lane.penalties, *lane.scratch);
    } else {
      lane.scratch->payments.clear();
    }
  } catch (...) {
    // An unrecoverable round is abandoned; younger in-flight rounds stay
    // valid and retirable (their sequences still route).
    pop_oldest_lane();
    throw;
  }
  pop_oldest_lane();
  return handle;
}

const Allocation& DistributedWdp::select_top_m(const CandidateBatch& batch,
                                               const ScoreWeights& weights,
                                               std::size_t max_winners,
                                               const Penalties& penalties,
                                               RoundScratch& scratch) const {
  require(count_ == 0,
          "synchronous select_top_m requires an empty pipeline (use the "
          "submit/retire_oldest API for in-flight rounds)");
  submit(batch, weights, max_winners, penalties, scratch);
  Lane& lane = lanes_[head_];
  try {
    collect(lane);
    merge(lane);
  } catch (...) {
    pop_oldest_lane();
    throw;
  }
  pop_oldest_lane();
  return scratch.allocation;
}

const std::vector<double>& DistributedWdp::critical_payments(
    const CandidateBatch& batch, const ScoreWeights& weights,
    std::size_t max_winners, const Penalties& penalties,
    RoundScratch& scratch) const {
  // The merged survivor order in the scratch answers the threshold scan the
  // same way it does for the thread-sharded engine; the pricing arithmetic
  // lives in exactly one place.
  return pricer_->critical_payments(batch, weights, max_winners, penalties,
                                    scratch);
}

}  // namespace sfl::dist
