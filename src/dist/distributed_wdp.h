// DistributedWdp: the winner-determination engine distributed over a
// ShardTransport, with optional multi-round pipelining.
//
// The PR-2 select-then-merge decomposition made the merge step consume only
// per-shard top-(m+1) survivor sets — a natural network boundary. This
// engine moves that boundary across the transport: the coordinator splits
// the CandidateBatch into `shards` contiguous spans with the same stable
// chunk layout as ShardedWdp, ships each span to a shard worker as a
// ShardRequest, collects ShardReply survivor sets, and merges them under
// the exact serial total order. Workers compute with the same score()
// expression and nth_element selection as the in-process engine, and
// doubles cross the wire as IEEE bit patterns, so allocations and critical
// payments are BIT-IDENTICAL to the serial path for any shard count, any
// worker count, and any reply arrival order.
//
// Round lanes (PR 5): the coordinator state machine is a ring of up to
// `pipeline_depth` in-flight round contexts, each owning its caller-provided
// RoundScratch plus per-round merge state (shard completion, attempt counts,
// stats) keyed by a monotonically increasing round sequence number. The
// async API —
//
//   submit(batch, weights, m, penalties, scratch)  -> RoundHandle
//   resubmit(handle, weights, penalties)           // replace inputs, new seq
//   retire_oldest()                                // complete + merge + price
//
// — lets round t+1's span dispatch proceed while round t still awaits
// straggler replies: every received frame is validated against the lane its
// sequence number names (span bounds, shard count, survivor count), frames
// whose sequence matches no active lane (retired rounds, abandoned
// re-dispatch generations) are ignored, and rounds RETIRE IN STRICT
// SUBMISSION ORDER, so a reply can never be merged into the wrong round no
// matter how the transport delays, duplicates, or reorders it. The classic
// synchronous WdpEngine entry points still work (they submit and retire one
// round inline) and require an empty pipeline.
//
// Coordinator state machine per round:
//   dispatch   — every shard is encoded and sent to its HOME worker: the
//                highest-ranked live worker in the shard's rendezvous
//                (highest-random-weight) order, so shard count is decoupled
//                from worker count and a membership change re-homes only
//                the shards whose winner changed (chronic stragglers are
//                hedged eagerly — see DistributedWdpConfig::hedge);
//   collect    — replies are decoded, validated (codec checksum + sequence
//                lookup + span and survivor-count checks against that
//                round's dispatch), deduplicated by shard id, and frames
//                from retired or abandoned sequences dropped; kWorkerHello
//                / kWorkerGoodbye frames update the fleet view;
//   recover    — while a round is being retired, a blown adaptive
//                per-worker deadline (hedging on) or receive timeout
//                re-dispatches every affected shard of THAT round to the
//                next live worker in rendezvous order WITHOUT abandoning
//                the original attempt; after max_attempts_per_shard dispatches
//                (or with no live worker left) the span is recomputed
//                locally with the same worker math — or, when local
//                fallback is disabled, the round fails with the typed
//                DistributedWdpError (younger in-flight rounds stay valid);
//   merge      — identical to ShardedWdp: survivors sorted under (score
//                desc, ClientId asc, index asc), top-m positive prefix,
//                threshold payment off the merged order.
//
// Determinism: each round's RESULT is a pure function of its (batch,
// weights, penalties, m, shard count) — faults, reply order, pipeline depth,
// and worker routing only affect wall time and the stats counters.
// effective_shards defaults to the transport's worker count (never hardware
// concurrency), so a distributed deployment's allocation is reproducible on
// any coordinator host.
//
// One engine instance is ONE single-threaded coordinator: all calls must
// come from one thread at a time (the transport and the reusable codec
// buffers are coordinator state, mutable behind the const WdpEngine
// interface).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "auction/wdp_engine.h"
#include "dist/shard_transport.h"
#include "stats/running_stats.h"

namespace sfl::auction {
class ShardedWdp;
}  // namespace sfl::auction

namespace sfl::dist {

/// A round could not be completed: shards were lost and local recomputation
/// was disabled. The engine is reusable after catching this (the failed
/// round is abandoned; its sequence numbers invalidate every stale frame,
/// and younger in-flight rounds remain retirable).
class DistributedWdpError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct DistributedWdpConfig {
  /// Contiguous batch spans (= work units). 0 = one per transport worker —
  /// a pure function of the configuration, never of the coordinator's
  /// hardware, so distributed results are reproducible anywhere. Any value
  /// produces bit-identical allocations and payments.
  std::size_t shards = 0;
  /// Loopback worker count when the engine builds its own transport
  /// (constructor called without one).
  std::size_t workers = 2;
  /// Maximum rounds in flight at once (>= 1). 1 reproduces the strictly
  /// serial coordinator; K lets submit() dispatch round t+K-1's spans while
  /// round t still awaits stragglers. Depth NEVER changes results, only
  /// wall time: every round is validated against its own lane and retires
  /// in submission order.
  std::size_t pipeline_depth = 1;
  /// How long one collect wait may block before the recovery step runs.
  /// LoopbackTransport simulates timeouts (returns immediately when no
  /// reply is deliverable), so tests never sleep.
  std::chrono::milliseconds receive_timeout{200};
  /// Dispatch attempts per shard before the span falls back to local
  /// recomputation (or the round fails when fallback is disabled).
  std::size_t max_attempts_per_shard = 3;
  /// Recompute lost spans on the coordinator with the same worker math.
  /// Disabling turns unrecoverable shard loss into DistributedWdpError.
  bool allow_local_fallback = true;
  /// Hedged dispatch with adaptive per-worker deadlines (PR 7). The
  /// coordinator tracks every worker's observed reply latency
  /// (stats::RunningStats); once a worker has enough samples its recovery
  /// deadline becomes mean + hedge_deadline_sigma * stddev — clamped to
  /// [a small floor, receive_timeout], and additionally capped at a
  /// multiple of the fastest live worker's deadline so a CHRONICALLY slow
  /// worker (whose replies always beat its own inflated deadline) still
  /// hedges near the cluster's normal latency. When the retiring round's
  /// wait on a shard blows that deadline, the shard is re-dispatched to
  /// the next live worker in its rendezvous order WITHOUT abandoning the
  /// original attempt: the first valid reply wins, the per-lane dedupe
  /// discards the loser, and a chronic straggler's home shards are hedged
  /// eagerly at dispatch time. Results are NEVER affected (replies are a
  /// pure function of the span), only tail latency. Disabled, the fixed
  /// receive_timeout is the only recovery trigger (pre-PR-7 behavior).
  bool hedge = true;
  /// k in the adaptive deadline mean + k * stddev.
  double hedge_deadline_sigma = 3.0;
  /// Warm-start prior for the adaptive deadlines (PR 10): per-worker
  /// latency statistics carried over from a previous coordinator (see
  /// worker_latency_stats()). Must be empty or one entry per transport
  /// worker. A FRESH coordinator has no latency samples, so its first
  /// kHedgeMinSamples rounds per worker fall back to the full
  /// receive_timeout — a straggler present from round one stalls every
  /// early round for the whole timeout. Seeding the prior restores hedging
  /// from the very first dispatch. Like all hedging state, the prior NEVER
  /// affects results, only tail latency; a worker that rejoins after being
  /// marked dead still resets to fresh stats.
  std::vector<sfl::stats::RunningStats> latency_prior{};
};

class DistributedWdp final : public sfl::auction::WdpEngine {
 public:
  /// Identifies one submitted round until it retires (monotonic per engine;
  /// rounds retire in handle order).
  using RoundHandle = std::uint64_t;

  /// Counters for tests and diagnostics. Reset whenever a round is
  /// submitted into an EMPTY pipeline (so the synchronous entry points keep
  /// their per-round semantics); across a pipelined burst they accumulate
  /// until the pipeline drains.
  struct RoundStats {
    std::size_t dispatches = 0;        ///< requests handed to the transport
    std::size_t redispatches = 0;      ///< of which were retries
    std::size_t resubmits = 0;         ///< abandoned dispatch generations
    std::size_t local_recomputes = 0;  ///< spans recovered on the coordinator
    std::size_t ignored_replies = 0;   ///< stale/abandoned seq, duplicate shard
    std::size_t rejected_replies = 0;  ///< corrupt or inconsistent frames
    std::size_t dead_workers = 0;      ///< workers marked dead
    std::size_t hedged_dispatches = 0; ///< duplicate sends racing a laggard
    std::size_t worker_joins = 0;      ///< kWorkerHello frames applied
    std::size_t worker_leaves = 0;     ///< kWorkerGoodbye frames applied
  };

  /// Builds the engine over `transport`; a null transport gets an
  /// in-process LoopbackTransport with config.workers real codec workers.
  explicit DistributedWdp(DistributedWdpConfig config = {},
                          std::unique_ptr<ShardTransport> transport = nullptr);
  ~DistributedWdp() override;

  /// Shard count a round over n candidates uses (>= 1; n = 0 reports 1).
  [[nodiscard]] std::size_t effective_shards(std::size_t n) const;

  [[nodiscard]] const DistributedWdpConfig& config() const noexcept {
    return config_;
  }
  /// The transport (for fault-injection scripting in tests).
  [[nodiscard]] ShardTransport& transport() noexcept { return *transport_; }
  [[nodiscard]] const RoundStats& last_round_stats() const noexcept {
    return stats_;
  }
  /// Per-worker observed reply latency in microseconds (one accumulator
  /// per transport worker). Snapshot this from a retiring coordinator and
  /// hand it to a successor via DistributedWdpConfig::latency_prior so the
  /// fresh coordinator hedges stragglers from its first dispatch instead
  /// of waiting out kHedgeMinSamples cold rounds per worker.
  [[nodiscard]] const std::vector<sfl::stats::RunningStats>&
  worker_latency_stats() const noexcept {
    return worker_latency_;
  }

  // --- elastic membership ---------------------------------------------------

  /// Drains every frame the transport can deliver RIGHT NOW without
  /// blocking or recovery: replies bank into their lanes, kWorkerHello /
  /// kWorkerGoodbye frames update the fleet view. Call between rounds so
  /// membership changes take effect before the next dispatch; shard count
  /// (effective_shards) stays a pure function of the configuration, so
  /// joins and leaves only re-route shards — results never change.
  void pump() const;

  /// The worker shard `shard` is dispatched to on its first attempt: the
  /// highest-ranked LIVE worker in the shard's rendezvous order (a pure
  /// function of (shard, worker index), so a membership change moves only
  /// the shards whose winner changed). Returns worker_count() when no
  /// worker is live.
  [[nodiscard]] std::size_t home_worker(std::size_t shard) const;
  /// False once `worker` is known dead (failed send) or has said goodbye.
  [[nodiscard]] bool worker_live(std::size_t worker) const;

  // --- pipelined round API --------------------------------------------------
  //
  // The caller owns `batch`, `penalties`, and `scratch` and must keep all
  // three alive and unmodified until the round retires (one RoundScratch
  // per in-flight round — the per-round scratch lane; an EMPTY penalties
  // argument may be a temporary, it is aliased to a static instance).
  // Rounds retire in submission order; the synchronous entry points below
  // require an empty pipeline.

  [[nodiscard]] std::size_t pipeline_depth() const noexcept {
    return config_.pipeline_depth;
  }
  [[nodiscard]] std::size_t rounds_in_flight() const noexcept { return count_; }

  /// Dispatches every span of a new round and returns its handle. Requires
  /// rounds_in_flight() < pipeline_depth(). Shards that cannot reach any
  /// live worker are recovered immediately (local recompute, or
  /// DistributedWdpError with fallback disabled — the round is then not
  /// submitted and older in-flight rounds are unaffected).
  RoundHandle submit(const sfl::auction::CandidateBatch& batch,
                     const sfl::auction::ScoreWeights& weights,
                     std::size_t max_winners,
                     const sfl::auction::Penalties& penalties,
                     sfl::auction::RoundScratch& scratch) const;

  /// Replaces an in-flight round's scoring inputs (a speculatively
  /// dispatched round whose upstream state changed): the previous dispatch
  /// generation is abandoned — its sequence number will match no lane, so
  /// replies already in flight are ignored — and every span is re-sent
  /// under a fresh sequence number. `penalties` must be the same caller
  /// storage handed to submit (its CONTENT may have changed).
  void resubmit(RoundHandle handle, const sfl::auction::ScoreWeights& weights,
                const sfl::auction::Penalties& penalties) const;

  /// Completes the OLDEST in-flight round: pumps the transport (replies for
  /// younger rounds are banked into their own lanes as they appear), runs
  /// timeout recovery for this round only, merges, prices, and returns its
  /// handle. Allocation and payments land in the round's own scratch.
  RoundHandle retire_oldest() const;

  // --- synchronous WdpEngine interface (requires an empty pipeline) ---------

  const sfl::auction::Allocation& select_top_m(
      const sfl::auction::CandidateBatch& batch,
      const sfl::auction::ScoreWeights& weights, std::size_t max_winners,
      const sfl::auction::Penalties& penalties,
      sfl::auction::RoundScratch& scratch) const override;

  const std::vector<double>& critical_payments(
      const sfl::auction::CandidateBatch& batch,
      const sfl::auction::ScoreWeights& weights, std::size_t max_winners,
      const sfl::auction::Penalties& penalties,
      sfl::auction::RoundScratch& scratch) const override;

 private:
  /// One in-flight round's context: the per-round scratch lane plus the
  /// merge bookkeeping the coordinator needs to validate replies against
  /// exactly this round.
  struct Lane {
    RoundHandle handle = 0;
    std::uint64_t seq = 0;  ///< current dispatch generation
    const sfl::auction::CandidateBatch* batch = nullptr;
    const sfl::auction::Penalties* penalties = nullptr;
    sfl::auction::RoundScratch* scratch = nullptr;
    sfl::auction::ScoreWeights weights{};
    std::size_t max_winners = 0;
    std::size_t n = 0;
    std::size_t shards = 0;
    std::vector<bool> shard_done;
    std::vector<std::size_t> attempts;
    /// Latest dispatch target and send time per shard — what the adaptive
    /// deadline is measured against.
    std::vector<std::size_t> last_worker;
    std::vector<std::chrono::steady_clock::time_point> last_sent;
    std::size_t remaining = 0;
  };

  /// One not-yet-answered dispatch: attributes a reply's latency to the
  /// worker that actually served it (hedge losers included, so a chronic
  /// straggler keeps being measured even while it keeps losing races).
  struct AttemptRecord {
    std::uint64_t seq = 0;
    std::uint32_t shard = 0;
    std::size_t worker = 0;
    std::chrono::steady_clock::time_point sent{};
  };

  [[nodiscard]] Lane& lane_at(std::size_t offset) const {
    return lanes_[(head_ + offset) % lanes_.size()];
  }
  /// The active lane owning this dispatch generation, or nullptr when the
  /// sequence belongs to a retired round or an abandoned generation.
  [[nodiscard]] Lane* lane_for_seq(std::uint64_t seq) const;

  /// Fills request_ with shard `shard`'s span of the lane's batch.
  void fill_request(const Lane& lane, std::size_t shard) const;
  /// Encodes request_ and sends it to a live worker: attempt k goes to the
  /// k-th live worker in the shard's rendezvous order (wrapping), plus an
  /// eager hedge when that worker is a chronic straggler. Returns false
  /// when no live worker accepted.
  bool dispatch(Lane& lane, std::size_t shard) const;
  /// Dispatches (or recovers) every span of the lane's current generation.
  void dispatch_all(Lane& lane) const;
  /// Recomputes shard `shard` on the coordinator with the worker math and
  /// accepts the resulting survivors into the lane.
  void recompute_locally(Lane& lane, std::size_t shard) const;
  /// Local recompute, or the typed failure when fallback is disabled.
  void recover(Lane& lane, std::size_t shard) const;
  /// Routes one received frame_: membership announcements update the fleet
  /// view, everything else goes through accept_reply().
  void handle_frame() const;
  /// Applies a decoded kWorkerHello / kWorkerGoodbye. The slot is the
  /// transport's source attribution when available, else the frame's
  /// self-reported id; out-of-range slots are rejected.
  void handle_membership(bool hello) const;
  /// Decodes frame_, routes it to the lane its sequence names, validates it
  /// against that round's dispatch, and accepts first-valid-per-shard
  /// survivors into the lane's scratch.
  void accept_reply() const;
  /// Pumps the transport and runs deadline/timeout recovery until the
  /// lane's every shard is resolved (the lane must be the oldest in
  /// flight).
  void collect(Lane& lane) const;
  /// One recovery sweep over the lane's unresolved shards. With only_blown,
  /// shards whose latest attempt is still inside its worker's adaptive
  /// deadline are left alone (the hedged wait is per-worker, not global).
  void recovery_pass(Lane& lane, bool only_blown) const;
  /// ShardedWdp's exact merge over the lane's survivor multiset.
  void merge(Lane& lane) const;
  /// Shared lane teardown: caller pointers dropped, seq zeroed so stale
  /// lookups cannot match a released lane (seq 0 is never issued), latency
  /// bookkeeping for the generation purged.
  void release_lane(Lane& lane) const;
  /// Drops the oldest lane from the ring (its sequence goes stale).
  void pop_oldest_lane() const;

  /// Fills rank_scratch_ with every worker ordered by rendezvous weight for
  /// `shard` (highest first, ties by index).
  void rendezvous_order(std::size_t shard) const;
  /// Adaptive recovery deadline for one worker (see config.hedge).
  [[nodiscard]] std::chrono::microseconds deadline_for(
      std::size_t worker) const;
  /// Smallest live warmed worker deadline before the cross-worker cap —
  /// the "cluster normal" a chronic straggler is measured against.
  /// microseconds::max() when no worker is warmed.
  [[nodiscard]] std::chrono::microseconds cluster_best_deadline() const;
  /// True when `worker`'s own latency envelope exceeds the straggler cap —
  /// its home shards are then hedged eagerly at dispatch time.
  [[nodiscard]] bool chronic_straggler(std::size_t worker) const;
  /// How long the next collect wait may block: the soonest adaptive
  /// deadline among the lane's unresolved shards (clamped to
  /// [0, receive_timeout]); plain receive_timeout with hedging off.
  [[nodiscard]] std::chrono::milliseconds recovery_wait(
      const Lane& lane) const;
  /// Drops every outstanding-attempt record of dispatch generation `seq`.
  void purge_outstanding(std::uint64_t seq) const;

  DistributedWdpConfig config_;
  std::unique_ptr<ShardTransport> transport_;
  /// Serial engine reused for the payment step (the merged order already
  /// answers the threshold scan) — keeps the pricing arithmetic in exactly
  /// one place.
  std::unique_ptr<sfl::auction::ShardedWdp> pricer_;

  // Single-coordinator state behind the const engine interface (see file
  // comment: one instance, one coordinator thread).
  mutable std::uint64_t seq_counter_ = 0;
  mutable RoundHandle handle_counter_ = 0;
  mutable ShardRequest request_;
  mutable ShardReply reply_;
  mutable Frame frame_;
  mutable std::vector<Lane> lanes_;  ///< ring of pipeline_depth round lanes
  mutable std::size_t head_ = 0;     ///< ring index of the oldest lane
  mutable std::size_t count_ = 0;    ///< lanes currently in flight
  mutable std::vector<bool> worker_dead_;
  /// Planned drains (kWorkerGoodbye): not routed to, but not a fault.
  mutable std::vector<bool> worker_departed_;
  /// Observed reply latency per worker, in microseconds (reset on rejoin).
  mutable std::vector<sfl::stats::RunningStats> worker_latency_;
  mutable std::vector<AttemptRecord> outstanding_;
  /// (weight, worker) pairs reused by rendezvous_order.
  mutable std::vector<std::pair<std::uint64_t, std::size_t>> rank_scratch_;
  mutable RoundStats stats_;
};

}  // namespace sfl::dist
