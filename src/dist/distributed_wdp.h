// DistributedWdp: the winner-determination engine distributed over a
// ShardTransport, with optional multi-round pipelining.
//
// The PR-2 select-then-merge decomposition made the merge step consume only
// per-shard top-(m+1) survivor sets — a natural network boundary. This
// engine moves that boundary across the transport: the coordinator splits
// the CandidateBatch into `shards` contiguous spans with the same stable
// chunk layout as ShardedWdp, ships each span to a shard worker as a
// ShardRequest, collects ShardReply survivor sets, and merges them under
// the exact serial total order. Workers compute with the same score()
// expression and nth_element selection as the in-process engine, and
// doubles cross the wire as IEEE bit patterns, so allocations and critical
// payments are BIT-IDENTICAL to the serial path for any shard count, any
// worker count, and any reply arrival order.
//
// Round lanes (PR 5): the coordinator state machine is a ring of up to
// `pipeline_depth` in-flight round contexts, each owning its caller-provided
// RoundScratch plus per-round merge state (shard completion, attempt counts,
// stats) keyed by a monotonically increasing round sequence number. The
// async API —
//
//   submit(batch, weights, m, penalties, scratch)  -> RoundHandle
//   resubmit(handle, weights, penalties)           // replace inputs, new seq
//   retire_oldest()                                // complete + merge + price
//
// — lets round t+1's span dispatch proceed while round t still awaits
// straggler replies: every received frame is validated against the lane its
// sequence number names (span bounds, shard count, survivor count), frames
// whose sequence matches no active lane (retired rounds, abandoned
// re-dispatch generations) are ignored, and rounds RETIRE IN STRICT
// SUBMISSION ORDER, so a reply can never be merged into the wrong round no
// matter how the transport delays, duplicates, or reorders it. The classic
// synchronous WdpEngine entry points still work (they submit and retire one
// round inline) and require an empty pipeline.
//
// Coordinator state machine per round:
//   dispatch   — every shard is encoded and sent to a worker (round-robin
//                by shard index, skipping known-dead workers);
//   collect    — replies are decoded, validated (codec checksum + sequence
//                lookup + span and survivor-count checks against that
//                round's dispatch), deduplicated by shard id, and frames
//                from retired or abandoned sequences dropped;
//   recover    — while a round is being retired, a receive timeout
//                re-dispatches every missing shard of THAT round to the
//                next live worker; after max_attempts_per_shard dispatches
//                (or with no live worker left) the span is recomputed
//                locally with the same worker math — or, when local
//                fallback is disabled, the round fails with the typed
//                DistributedWdpError (younger in-flight rounds stay valid);
//   merge      — identical to ShardedWdp: survivors sorted under (score
//                desc, ClientId asc, index asc), top-m positive prefix,
//                threshold payment off the merged order.
//
// Determinism: each round's RESULT is a pure function of its (batch,
// weights, penalties, m, shard count) — faults, reply order, pipeline depth,
// and worker routing only affect wall time and the stats counters.
// effective_shards defaults to the transport's worker count (never hardware
// concurrency), so a distributed deployment's allocation is reproducible on
// any coordinator host.
//
// One engine instance is ONE single-threaded coordinator: all calls must
// come from one thread at a time (the transport and the reusable codec
// buffers are coordinator state, mutable behind the const WdpEngine
// interface).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "auction/wdp_engine.h"
#include "dist/shard_transport.h"

namespace sfl::auction {
class ShardedWdp;
}  // namespace sfl::auction

namespace sfl::dist {

/// A round could not be completed: shards were lost and local recomputation
/// was disabled. The engine is reusable after catching this (the failed
/// round is abandoned; its sequence numbers invalidate every stale frame,
/// and younger in-flight rounds remain retirable).
class DistributedWdpError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct DistributedWdpConfig {
  /// Contiguous batch spans (= work units). 0 = one per transport worker —
  /// a pure function of the configuration, never of the coordinator's
  /// hardware, so distributed results are reproducible anywhere. Any value
  /// produces bit-identical allocations and payments.
  std::size_t shards = 0;
  /// Loopback worker count when the engine builds its own transport
  /// (constructor called without one).
  std::size_t workers = 2;
  /// Maximum rounds in flight at once (>= 1). 1 reproduces the strictly
  /// serial coordinator; K lets submit() dispatch round t+K-1's spans while
  /// round t still awaits stragglers. Depth NEVER changes results, only
  /// wall time: every round is validated against its own lane and retires
  /// in submission order.
  std::size_t pipeline_depth = 1;
  /// How long one collect wait may block before the recovery step runs.
  /// LoopbackTransport simulates timeouts (returns immediately when no
  /// reply is deliverable), so tests never sleep.
  std::chrono::milliseconds receive_timeout{200};
  /// Dispatch attempts per shard before the span falls back to local
  /// recomputation (or the round fails when fallback is disabled).
  std::size_t max_attempts_per_shard = 3;
  /// Recompute lost spans on the coordinator with the same worker math.
  /// Disabling turns unrecoverable shard loss into DistributedWdpError.
  bool allow_local_fallback = true;
};

class DistributedWdp final : public sfl::auction::WdpEngine {
 public:
  /// Identifies one submitted round until it retires (monotonic per engine;
  /// rounds retire in handle order).
  using RoundHandle = std::uint64_t;

  /// Counters for tests and diagnostics. Reset whenever a round is
  /// submitted into an EMPTY pipeline (so the synchronous entry points keep
  /// their per-round semantics); across a pipelined burst they accumulate
  /// until the pipeline drains.
  struct RoundStats {
    std::size_t dispatches = 0;        ///< requests handed to the transport
    std::size_t redispatches = 0;      ///< of which were retries
    std::size_t resubmits = 0;         ///< abandoned dispatch generations
    std::size_t local_recomputes = 0;  ///< spans recovered on the coordinator
    std::size_t ignored_replies = 0;   ///< stale/abandoned seq, duplicate shard
    std::size_t rejected_replies = 0;  ///< corrupt or inconsistent frames
    std::size_t dead_workers = 0;      ///< workers marked dead
  };

  /// Builds the engine over `transport`; a null transport gets an
  /// in-process LoopbackTransport with config.workers real codec workers.
  explicit DistributedWdp(DistributedWdpConfig config = {},
                          std::unique_ptr<ShardTransport> transport = nullptr);
  ~DistributedWdp() override;

  /// Shard count a round over n candidates uses (>= 1; n = 0 reports 1).
  [[nodiscard]] std::size_t effective_shards(std::size_t n) const;

  [[nodiscard]] const DistributedWdpConfig& config() const noexcept {
    return config_;
  }
  /// The transport (for fault-injection scripting in tests).
  [[nodiscard]] ShardTransport& transport() noexcept { return *transport_; }
  [[nodiscard]] const RoundStats& last_round_stats() const noexcept {
    return stats_;
  }

  // --- pipelined round API --------------------------------------------------
  //
  // The caller owns `batch`, `penalties`, and `scratch` and must keep all
  // three alive and unmodified until the round retires (one RoundScratch
  // per in-flight round — the per-round scratch lane; an EMPTY penalties
  // argument may be a temporary, it is aliased to a static instance).
  // Rounds retire in submission order; the synchronous entry points below
  // require an empty pipeline.

  [[nodiscard]] std::size_t pipeline_depth() const noexcept {
    return config_.pipeline_depth;
  }
  [[nodiscard]] std::size_t rounds_in_flight() const noexcept { return count_; }

  /// Dispatches every span of a new round and returns its handle. Requires
  /// rounds_in_flight() < pipeline_depth(). Shards that cannot reach any
  /// live worker are recovered immediately (local recompute, or
  /// DistributedWdpError with fallback disabled — the round is then not
  /// submitted and older in-flight rounds are unaffected).
  RoundHandle submit(const sfl::auction::CandidateBatch& batch,
                     const sfl::auction::ScoreWeights& weights,
                     std::size_t max_winners,
                     const sfl::auction::Penalties& penalties,
                     sfl::auction::RoundScratch& scratch) const;

  /// Replaces an in-flight round's scoring inputs (a speculatively
  /// dispatched round whose upstream state changed): the previous dispatch
  /// generation is abandoned — its sequence number will match no lane, so
  /// replies already in flight are ignored — and every span is re-sent
  /// under a fresh sequence number. `penalties` must be the same caller
  /// storage handed to submit (its CONTENT may have changed).
  void resubmit(RoundHandle handle, const sfl::auction::ScoreWeights& weights,
                const sfl::auction::Penalties& penalties) const;

  /// Completes the OLDEST in-flight round: pumps the transport (replies for
  /// younger rounds are banked into their own lanes as they appear), runs
  /// timeout recovery for this round only, merges, prices, and returns its
  /// handle. Allocation and payments land in the round's own scratch.
  RoundHandle retire_oldest() const;

  // --- synchronous WdpEngine interface (requires an empty pipeline) ---------

  const sfl::auction::Allocation& select_top_m(
      const sfl::auction::CandidateBatch& batch,
      const sfl::auction::ScoreWeights& weights, std::size_t max_winners,
      const sfl::auction::Penalties& penalties,
      sfl::auction::RoundScratch& scratch) const override;

  const std::vector<double>& critical_payments(
      const sfl::auction::CandidateBatch& batch,
      const sfl::auction::ScoreWeights& weights, std::size_t max_winners,
      const sfl::auction::Penalties& penalties,
      sfl::auction::RoundScratch& scratch) const override;

 private:
  /// One in-flight round's context: the per-round scratch lane plus the
  /// merge bookkeeping the coordinator needs to validate replies against
  /// exactly this round.
  struct Lane {
    RoundHandle handle = 0;
    std::uint64_t seq = 0;  ///< current dispatch generation
    const sfl::auction::CandidateBatch* batch = nullptr;
    const sfl::auction::Penalties* penalties = nullptr;
    sfl::auction::RoundScratch* scratch = nullptr;
    sfl::auction::ScoreWeights weights{};
    std::size_t max_winners = 0;
    std::size_t n = 0;
    std::size_t shards = 0;
    std::vector<bool> shard_done;
    std::vector<std::size_t> attempts;
    std::size_t remaining = 0;
  };

  [[nodiscard]] Lane& lane_at(std::size_t offset) const {
    return lanes_[(head_ + offset) % lanes_.size()];
  }
  /// The active lane owning this dispatch generation, or nullptr when the
  /// sequence belongs to a retired round or an abandoned generation.
  [[nodiscard]] Lane* lane_for_seq(std::uint64_t seq) const;

  /// Fills request_ with shard `shard`'s span of the lane's batch.
  void fill_request(const Lane& lane, std::size_t shard) const;
  /// Encodes request_ and sends it to a live worker (round-robin from the
  /// shard's preferred worker). Returns false when no live worker accepted.
  bool dispatch(const Lane& lane, std::size_t shard) const;
  /// Dispatches (or recovers) every span of the lane's current generation.
  void dispatch_all(Lane& lane) const;
  /// Recomputes shard `shard` on the coordinator with the worker math and
  /// accepts the resulting survivors into the lane.
  void recompute_locally(Lane& lane, std::size_t shard) const;
  /// Local recompute, or the typed failure when fallback is disabled.
  void recover(Lane& lane, std::size_t shard) const;
  /// Decodes frame_, routes it to the lane its sequence names, validates it
  /// against that round's dispatch, and accepts first-valid-per-shard
  /// survivors into the lane's scratch.
  void accept_reply() const;
  /// Pumps the transport and runs timeout recovery until the lane's every
  /// shard is resolved (the lane must be the oldest in flight).
  void collect(Lane& lane) const;
  /// ShardedWdp's exact merge over the lane's survivor multiset.
  void merge(Lane& lane) const;
  /// Shared lane teardown: caller pointers dropped, seq zeroed so stale
  /// lookups cannot match a released lane (seq 0 is never issued).
  static void release_lane(Lane& lane);
  /// Drops the oldest lane from the ring (its sequence goes stale).
  void pop_oldest_lane() const;

  DistributedWdpConfig config_;
  std::unique_ptr<ShardTransport> transport_;
  /// Serial engine reused for the payment step (the merged order already
  /// answers the threshold scan) — keeps the pricing arithmetic in exactly
  /// one place.
  std::unique_ptr<sfl::auction::ShardedWdp> pricer_;

  // Single-coordinator state behind the const engine interface (see file
  // comment: one instance, one coordinator thread).
  mutable std::uint64_t seq_counter_ = 0;
  mutable RoundHandle handle_counter_ = 0;
  mutable ShardRequest request_;
  mutable ShardReply reply_;
  mutable Frame frame_;
  mutable std::vector<Lane> lanes_;  ///< ring of pipeline_depth round lanes
  mutable std::size_t head_ = 0;     ///< ring index of the oldest lane
  mutable std::size_t count_ = 0;    ///< lanes currently in flight
  mutable std::vector<bool> worker_dead_;
  mutable RoundStats stats_;
};

}  // namespace sfl::dist
