// DistributedWdp: the winner-determination engine distributed over a
// ShardTransport.
//
// The PR-2 select-then-merge decomposition made the merge step consume only
// per-shard top-(m+1) survivor sets — a natural network boundary. This
// engine moves that boundary across the transport: the coordinator splits
// the CandidateBatch into `shards` contiguous spans with the same stable
// chunk layout as ShardedWdp, ships each span to a shard worker as a
// ShardRequest, collects ShardReply survivor sets, and merges them under
// the exact serial total order. Workers compute with the same score()
// expression and nth_element selection as the in-process engine, and
// doubles cross the wire as IEEE bit patterns, so allocations and critical
// payments are BIT-IDENTICAL to the serial path for any shard count, any
// worker count, and any reply arrival order.
//
// Coordinator state machine per round:
//   dispatch   — every shard is encoded and sent to a worker (round-robin
//                by shard index, skipping known-dead workers);
//   collect    — replies are decoded, validated (codec checksum + span and
//                survivor-count checks against the dispatch), deduplicated
//                by shard id, and stale-round frames dropped;
//   recover    — a receive timeout re-dispatches every missing shard to the
//                next live worker; after max_attempts_per_shard dispatches
//                (or with no live worker left) the span is recomputed
//                locally with the same worker math — or, when local
//                fallback is disabled, the round fails with the typed
//                DistributedWdpError;
//   merge      — identical to ShardedWdp: survivors sorted under (score
//                desc, ClientId asc, index asc), top-m positive prefix,
//                threshold payment off the merged order.
//
// Determinism: the RESULT is a pure function of the batch and the shard
// count — faults, reply order, and worker routing only affect wall time
// and the stats counters. effective_shards defaults to the transport's
// worker count (never hardware concurrency), so a distributed deployment's
// allocation is reproducible on any coordinator host.
//
// Unlike ShardedWdp, one engine instance must NOT run concurrent rounds:
// the transport and the reusable codec buffers are single-coordinator
// state (mutable members behind the const WdpEngine interface).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "auction/wdp_engine.h"
#include "dist/shard_transport.h"

namespace sfl::auction {
class ShardedWdp;
}  // namespace sfl::auction

namespace sfl::dist {

/// A round could not be completed: shards were lost and local recomputation
/// was disabled. The engine is reusable after catching this (the next
/// round's sequence number invalidates every stale frame).
class DistributedWdpError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct DistributedWdpConfig {
  /// Contiguous batch spans (= work units). 0 = one per transport worker —
  /// a pure function of the configuration, never of the coordinator's
  /// hardware, so distributed results are reproducible anywhere. Any value
  /// produces bit-identical allocations and payments.
  std::size_t shards = 0;
  /// Loopback worker count when the engine builds its own transport
  /// (constructor called without one).
  std::size_t workers = 2;
  /// How long one collect wait may block before the recovery step runs.
  /// LoopbackTransport simulates timeouts (returns immediately when no
  /// reply is deliverable), so tests never sleep.
  std::chrono::milliseconds receive_timeout{200};
  /// Dispatch attempts per shard before the span falls back to local
  /// recomputation (or the round fails when fallback is disabled).
  std::size_t max_attempts_per_shard = 3;
  /// Recompute lost spans on the coordinator with the same worker math.
  /// Disabling turns unrecoverable shard loss into DistributedWdpError.
  bool allow_local_fallback = true;
};

class DistributedWdp final : public sfl::auction::WdpEngine {
 public:
  /// Counters for tests and diagnostics; reset at every select_top_m.
  struct RoundStats {
    std::size_t dispatches = 0;        ///< requests handed to the transport
    std::size_t redispatches = 0;      ///< of which were retries
    std::size_t local_recomputes = 0;  ///< spans recovered on the coordinator
    std::size_t ignored_replies = 0;   ///< stale round / duplicate shard
    std::size_t rejected_replies = 0;  ///< corrupt or inconsistent frames
    std::size_t dead_workers = 0;      ///< workers marked dead this round
  };

  /// Builds the engine over `transport`; a null transport gets an
  /// in-process LoopbackTransport with config.workers real codec workers.
  explicit DistributedWdp(DistributedWdpConfig config = {},
                          std::unique_ptr<ShardTransport> transport = nullptr);
  ~DistributedWdp() override;

  /// Shard count a round over n candidates uses (>= 1; n = 0 reports 1).
  [[nodiscard]] std::size_t effective_shards(std::size_t n) const;

  [[nodiscard]] const DistributedWdpConfig& config() const noexcept {
    return config_;
  }
  /// The transport (for fault-injection scripting in tests).
  [[nodiscard]] ShardTransport& transport() noexcept { return *transport_; }
  [[nodiscard]] const RoundStats& last_round_stats() const noexcept {
    return stats_;
  }

  const sfl::auction::Allocation& select_top_m(
      const sfl::auction::CandidateBatch& batch,
      const sfl::auction::ScoreWeights& weights, std::size_t max_winners,
      const sfl::auction::Penalties& penalties,
      sfl::auction::RoundScratch& scratch) const override;

  const std::vector<double>& critical_payments(
      const sfl::auction::CandidateBatch& batch,
      const sfl::auction::ScoreWeights& weights, std::size_t max_winners,
      const sfl::auction::Penalties& penalties,
      sfl::auction::RoundScratch& scratch) const override;

 private:
  /// Fills request_ with shard `shard`'s span of the batch.
  void fill_request(const sfl::auction::CandidateBatch& batch,
                    const sfl::auction::ScoreWeights& weights,
                    std::size_t max_winners,
                    const sfl::auction::Penalties& penalties, std::size_t n,
                    std::size_t shards, std::size_t shard) const;
  /// Encodes request_ and sends it to a live worker (round-robin from the
  /// shard's preferred worker). Returns false when no live worker accepted.
  bool dispatch(std::size_t shard) const;
  /// Recomputes shard `shard` on the coordinator with the worker math and
  /// accepts the resulting survivors.
  void recompute_locally(const sfl::auction::CandidateBatch& batch,
                         const sfl::auction::ScoreWeights& weights,
                         std::size_t max_winners,
                         const sfl::auction::Penalties& penalties,
                         std::size_t n, std::size_t shards, std::size_t shard,
                         sfl::auction::RoundScratch& scratch) const;
  /// Validates reply_ against the dispatch parameters and, if it is the
  /// first valid reply for its shard, accepts its survivors into scratch.
  void accept_reply(std::size_t n, std::size_t shards,
                    std::size_t max_winners,
                    sfl::auction::RoundScratch& scratch) const;

  DistributedWdpConfig config_;
  std::unique_ptr<ShardTransport> transport_;
  /// Serial engine reused for the payment step (the merged order already
  /// answers the threshold scan) — keeps the pricing arithmetic in exactly
  /// one place.
  std::unique_ptr<sfl::auction::ShardedWdp> pricer_;

  // Single-coordinator round state behind the const engine interface (see
  // file comment: one instance, one round at a time).
  mutable std::uint64_t round_seq_ = 0;
  mutable ShardRequest request_;
  mutable ShardReply reply_;
  mutable Frame frame_;
  mutable std::vector<bool> shard_done_;
  mutable std::vector<std::size_t> attempts_;
  mutable std::vector<bool> worker_dead_;
  mutable std::size_t remaining_ = 0;
  mutable RoundStats stats_;
};

}  // namespace sfl::dist
