// The worker side of the distributed WDP protocol.
//
// A shard worker is stateless across rounds: every request carries the full
// span data, so a worker can crash and be replaced (or the span re-routed)
// without any state transfer. compute_survivors is the ONE implementation
// of the per-shard math — the in-process loopback workers, the TCP worker
// server, and the coordinator's local fallback all call it, so every
// execution path produces bit-identical survivor sets (same score()
// expression, same nth_element selection, same total order as ShardedWdp).
#pragma once

#include "dist/wire_codec.h"

namespace sfl::dist {

/// Scores the request's span and selects its local top-(max_winners+1)
/// survivors under the serial total order (score desc, ClientId asc, global
/// index asc) — exactly the per-shard step of ShardedWdp::select_top_m.
/// The reply echoes round/shard/span for coordinator validation.
void compute_survivors(const ShardRequest& request, ShardReply& reply);

/// Full worker step: decode a request frame, compute, encode the reply.
/// Throws WireError on a corrupt request (the caller decides whether to
/// drop the frame or tear down the connection).
[[nodiscard]] Frame serve_frame(const Frame& request_frame);

}  // namespace sfl::dist
