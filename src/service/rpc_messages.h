// RPC messages of the persistent auction service.
//
// Three message kinds cross the client <-> auction-server boundary, all on
// the SFLD frame envelope from dist/wire_codec (magic/version/type/length/
// fnv1a64 checksum, little-endian integers, doubles as IEEE bit patterns):
//
//   SubmitBids    — client -> server: one client's bid slate, one row per
//                   (market, round) it bids into;
//   RoundResult   — server -> client: one market round's allocation and
//                   critical payments, bit-exactly what the in-process
//                   engine computed;
//   SettlementAck — server -> client: the round settled (queues updated),
//                   with the realized total payment.
//
// Decoding keeps the wire codec's defensive contract end to end: envelope
// validation (checksum BEFORE any field), bounds-checked cursor reads, then
// semantics (finite non-negative economics, energy > 0, no duplicate
// (market, round) rows or winner clients, counts bounded by the payload) —
// every violation throws the typed WireError, never crashes, and is never
// accepted. The codec fuzz suite (tests/dist/codec_fuzz_test) sweeps these
// three types with the same mutation/truncation/garbage battery as the
// shard protocol.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dist/wire_codec.h"

namespace sfl::service {

using sfl::dist::Frame;
using sfl::dist::WireError;

/// Upper bound on rows in one SubmitBids slate — far above any legitimate
/// per-frame slate, low enough that a checksummed hostile frame cannot make
/// the server allocate absurd arenas.
inline constexpr std::uint64_t kMaxBidsPerSubmit = 1u << 16;
/// Upper bound on winners in one RoundResult (mirrors the slate bound).
inline constexpr std::uint64_t kMaxWinnersPerResult = 1u << 16;

/// One client's bid slate: row i bids into round `rounds[i]` of market
/// `markets[i]` with the given economics. Parallel arrays, all length
/// row_count().
struct SubmitBids {
  std::uint64_t client = 0;  ///< ClientId of the bidder
  std::vector<std::uint64_t> markets;
  std::vector<std::uint64_t> rounds;
  std::vector<double> values;        ///< v_i >= 0, finite
  std::vector<double> bids;          ///< b_i >= 0, finite
  std::vector<double> energy_costs;  ///< e_i > 0, finite

  [[nodiscard]] std::size_t row_count() const noexcept {
    return markets.size();
  }
};

/// One market round's cleared allocation: winners and their critical
/// payments, parallel arrays. Payments ship as IEEE bit patterns, so a
/// client-side reference check can compare bit-for-bit.
struct RoundResult {
  std::uint64_t market = 0;
  std::uint64_t round = 0;
  std::vector<std::uint64_t> winners;
  std::vector<double> payments;  ///< finite, >= 0
};

/// The round's settlement was applied to the market's mechanism state.
struct SettlementAck {
  std::uint64_t market = 0;
  std::uint64_t round = 0;
  double total_payment = 0.0;  ///< finite, >= 0
  std::uint64_t winner_count = 0;
};

/// Upper bound on the mechanism-key length in a ServerHello — registry keys
/// are short; anything longer is a corrupt frame.
inline constexpr std::uint64_t kMaxMechanismKeyBytes = 256;

/// Server -> client, first frame on every accepted connection: the round
/// geometry this server clears with. A client configured with a different
/// bids_per_round would fill buckets the server never clears (or vice
/// versa) — a silent hang — so the load generator checks this echo against
/// its own knobs and fails fast on any disagreement.
struct ServerHello {
  std::uint64_t bids_per_round = 0;
  std::uint64_t max_winners = 0;
  std::uint64_t max_pending_rounds = 0;
  std::string mechanism;  ///< registry key, <= kMaxMechanismKeyBytes
};

/// Encodes into `out` (cleared first; capacity reused across frames).
void encode(const SubmitBids& message, Frame& out);
void encode(const RoundResult& message, Frame& out);
void encode(const SettlementAck& message, Frame& out);
void encode(const ServerHello& message, Frame& out);

/// Full decode with envelope + structural + semantic validation. Throws
/// WireError; `out` may be left partially written on failure and must not
/// be read.
void decode(std::span<const std::byte> frame, SubmitBids& out);
void decode(std::span<const std::byte> frame, RoundResult& out);
void decode(std::span<const std::byte> frame, SettlementAck& out);
void decode(std::span<const std::byte> frame, ServerHello& out);

}  // namespace sfl::service
