// One auction market behind the service: its mechanism configuration and
// the canonical batch-composition rule.
//
// The service's bit-exactness contract ("a fixed-seed load-gen run over
// loopback TCP matches the in-process engine bit for bit") rests on two
// things defined HERE, shared by the server, the load generator's reference
// check, and the tests:
//
//   1. the mechanism construction: one MarketEngineConfig maps to one
//      MechanismConfig and one registry build, so server and reference run
//      the same rule with the same knobs;
//   2. the batch order: a round's bids are sorted by (ClientId asc) before
//      entering the CandidateBatch, so the slate the mechanism sees is a
//      pure function of the bid SET, never of TCP arrival interleaving.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "auction/candidate_batch.h"
#include "auction/market_batch.h"
#include "auction/registry.h"
#include "auction/round_scratch.h"
#include "auction/sharded_wdp.h"

namespace sfl::service {

/// Everything that determines a market's clearing behavior. The server and
/// the load generator's reference engine must agree on ALL of it.
struct MarketEngineConfig {
  /// Registry key of the auction rule (the pipelined distributed
  /// coordinator by default — the serving path ROADMAP items 3/4 extend).
  std::string mechanism = "lto-vcg-dist-pipe";
  /// A market round clears when exactly this many bids have arrived for it.
  std::size_t bids_per_round = 32;
  std::size_t max_winners = 8;   ///< m
  double per_round_budget = 6.0;  ///< B-bar
  double v_weight = 10.0;         ///< Lyapunov V
  /// Shard workers / pipeline depth for the lto-vcg-dist* keys (0 = the
  /// key's defaults).
  std::size_t dist_workers = 0;
  std::size_t dist_pipeline_depth = 0;
  /// Seed for randomized rules (random-stipend).
  std::uint64_t seed = 42;
};

/// The registry config a MarketEngineConfig maps to. Sustainability pacing
/// stays off: the service's client population is open-ended, so per-client
/// Z queues would key on ids the server has not seen yet.
[[nodiscard]] sfl::auction::MechanismConfig to_mechanism_config(
    const MarketEngineConfig& config);

/// Builds the market's mechanism through the registry (throws
/// std::invalid_argument for unknown keys).
[[nodiscard]] std::unique_ptr<sfl::auction::Mechanism> build_market_mechanism(
    const MarketEngineConfig& config);

/// One decoded bid row, server-side.
struct BidRow {
  std::uint64_t client = 0;
  double value = 0.0;
  double bid = 0.0;
  double energy_cost = 1.0;
};

/// Canonical batch composition: sorts rows by (client asc, value, bid,
/// energy) and appends them to `batch` (cleared first). Every path that
/// turns a bid set into a CandidateBatch MUST go through this function.
void fill_canonical_batch(std::vector<BidRow>& rows,
                          sfl::auction::CandidateBatch& batch);

/// Clears one market round — the ONE implementation the server and the
/// load generator's reference both run, so their results can only diverge
/// if the transported bid set itself diverges. Composes the canonical
/// batch from `rows` (sorted in place), runs the round (allocation +
/// critical payments into `result`, reusing its capacity), and settles it
/// with full delivery (every winner pays out; no dropouts — the service
/// has no training loop to observe dropouts from). `batch` is the
/// market's reusable arena.
void clear_market_round(sfl::auction::Mechanism& mechanism,
                        const MarketEngineConfig& config, std::uint64_t round,
                        std::vector<BidRow>& rows,
                        sfl::auction::CandidateBatch& batch,
                        sfl::auction::MechanismResult& result);

/// One market's ready round, handed to clear_market_rounds. All pointers
/// reference the market's own reusable buffers and stay owned by the caller;
/// `rows` is sorted in place (canonical batch order).
struct MarketRoundRequest {
  sfl::auction::Mechanism* mechanism = nullptr;
  std::uint64_t round = 0;
  std::vector<BidRow>* rows = nullptr;
  sfl::auction::CandidateBatch* batch = nullptr;
  sfl::auction::MechanismResult* result = nullptr;
};

/// Reusable cross-market clearing state: the mega-batch arena, its result
/// layout, the fused engine, and the per-call scratch. One per service
/// instance; everything reaches steady-state capacity after warm-up.
struct MultiMarketClearer {
  /// shards = 0: lanes auto-size by total rows, so a one-market tick clears
  /// inline and a big tick fans markets across the shared pool.
  sfl::auction::ShardedWdp engine{sfl::auction::ShardedWdpConfig{.shards = 0}};
  sfl::auction::MarketBatch markets;
  sfl::auction::MarketBatchResult results;
  sfl::auction::RoundScratch scratch;
  sfl::auction::Penalties penalties_scratch;
  std::vector<std::size_t> fast;  ///< request indices on the mega-batch lane
};

/// Clears MANY markets' ready rounds in one call — the tick-level batch axis
/// on top of clear_market_round's per-round contract. Requests whose
/// mechanism is an LTO-VCG instance on the critical-value rule with no
/// pipelined rounds in flight (every lto-vcg registry variant the service
/// configures) are scored through ONE WdpEngine::run_rounds mega-batch pass;
/// anything else falls back to clear_market_round. Either way each market's
/// result and settlement are bit-identical to clearing it alone — the
/// engine's run_rounds contract plus the shared input/settle code make the
/// batch axis unobservable. Requests must name DISTINCT markets (two rounds
/// of one market in a tick must go through two calls, in round order).
void clear_market_rounds(MultiMarketClearer& clearer,
                         std::span<MarketRoundRequest> requests,
                         const MarketEngineConfig& config);

}  // namespace sfl::service
