#include "service/market_engine.h"

#include <algorithm>
#include <tuple>

#include "core/long_term_online_vcg.h"

namespace sfl::service {

namespace {

/// The mechanism's external-round surface, or nullptr when this market must
/// clear through run_round_into. Unwraps execution decorators (async
/// settlement) — the decorator only reorders settle() delivery, which the
/// flush() barrier in clear_market_rounds serializes before inputs are read.
sfl::core::LongTermOnlineVcgMechanism* external_round_target(
    sfl::auction::Mechanism& mechanism) {
  auto* lto = dynamic_cast<sfl::core::LongTermOnlineVcgMechanism*>(
      mechanism.underlying());
  if (lto == nullptr || !lto->supports_external_rounds()) return nullptr;
  return lto;
}

/// Full-delivery settlement of a cleared round: every winner pays out, no
/// dropouts (the service has no training loop to observe dropouts from).
/// Shared verbatim by the per-round and mega-batch paths.
void settle_full_delivery(sfl::auction::Mechanism& mechanism,
                          std::uint64_t round,
                          const sfl::auction::CandidateBatch& batch,
                          const sfl::auction::MechanismResult& result) {
  sfl::auction::RoundSettlement settlement;
  settlement.round = static_cast<std::size_t>(round);
  settlement.winners.reserve(result.winners.size());
  for (std::size_t w = 0; w < result.winners.size(); ++w) {
    const sfl::auction::ClientId client = result.winners[w];
    sfl::auction::WinnerSettlement entry;
    entry.client = client;
    entry.payment = result.payments[w];
    // The batch is sorted by client id and a round's ids are unique, so a
    // linear probe finds the winner's own bid row (m and n are both small
    // per market round).
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch.ids()[i] == client) {
        entry.bid = batch.bids()[i];
        entry.energy_cost = batch.energy_costs()[i];
        break;
      }
    }
    entry.dropped = false;
    settlement.total_payment += entry.payment;
    settlement.winners.push_back(entry);
  }
  mechanism.settle(settlement);
}

}  // namespace

sfl::auction::MechanismConfig to_mechanism_config(
    const MarketEngineConfig& config) {
  sfl::auction::MechanismConfig mc;
  mc.num_clients = 0;  // open client population; uniform pacing stays off
  mc.per_round_budget = config.per_round_budget;
  mc.seed = config.seed;
  mc.lto.v_weight = config.v_weight;
  mc.lto.pacing_rate = 0.0;
  mc.lto.dist_workers = config.dist_workers;
  mc.lto.dist_pipeline_depth = config.dist_pipeline_depth;
  return mc;
}

std::unique_ptr<sfl::auction::Mechanism> build_market_mechanism(
    const MarketEngineConfig& config) {
  return sfl::auction::build_mechanism(config.mechanism,
                                       to_mechanism_config(config));
}

void clear_market_round(sfl::auction::Mechanism& mechanism,
                        const MarketEngineConfig& config, std::uint64_t round,
                        std::vector<BidRow>& rows,
                        sfl::auction::CandidateBatch& batch,
                        sfl::auction::MechanismResult& result) {
  fill_canonical_batch(rows, batch);
  sfl::auction::RoundContext context;
  context.round = static_cast<std::size_t>(round);
  context.max_winners = config.max_winners;
  context.per_round_budget = config.per_round_budget;
  mechanism.run_round_into(batch, context, result);
  settle_full_delivery(mechanism, round, batch, result);
}

void clear_market_rounds(MultiMarketClearer& clearer,
                         std::span<MarketRoundRequest> requests,
                         const MarketEngineConfig& config) {
  clearer.markets.clear();
  clearer.fast.clear();
  clearer.markets.reserve(requests.size(),
                          requests.size() * config.bids_per_round);

  for (std::size_t j = 0; j < requests.size(); ++j) {
    MarketRoundRequest& req = requests[j];
    sfl::core::LongTermOnlineVcgMechanism* lto =
        external_round_target(*req.mechanism);
    if (lto == nullptr) {
      // Fallback lane: the mechanism clears its own round the classic way.
      clear_market_round(*req.mechanism, config, req.round, *req.rows,
                         *req.batch, *req.result);
      continue;
    }
    fill_canonical_batch(*req.rows, *req.batch);
    // Settlement barrier BEFORE reading queue-derived inputs: an async
    // decorator may still be applying the previous round's settlement.
    req.mechanism->flush();
    const sfl::auction::ScoreWeights weights =
        lto->external_round_inputs(*req.batch, clearer.penalties_scratch);
    clearer.markets.append_market(*req.batch, config.max_winners, weights,
                                  clearer.penalties_scratch);
    clearer.fast.push_back(j);
  }
  if (clearer.fast.empty()) return;

  // ONE fused engine pass over every fast-lane market.
  clearer.engine.run_rounds(clearer.markets, clearer.results, clearer.scratch);

  for (std::size_t k = 0; k < clearer.fast.size(); ++k) {
    MarketRoundRequest& req = requests[clearer.fast[k]];
    sfl::core::LongTermOnlineVcgMechanism* lto =
        external_round_target(*req.mechanism);
    lto->commit_external_round(*req.batch, clearer.results.selected(k),
                               clearer.results.payments(k), *req.result);
    settle_full_delivery(*req.mechanism, req.round, *req.batch, *req.result);
  }
}

void fill_canonical_batch(std::vector<BidRow>& rows,
                          sfl::auction::CandidateBatch& batch) {
  std::sort(rows.begin(), rows.end(), [](const BidRow& a, const BidRow& b) {
    return std::tie(a.client, a.value, a.bid, a.energy_cost) <
           std::tie(b.client, b.value, b.bid, b.energy_cost);
  });
  batch.clear();
  batch.reserve(rows.size());
  for (const BidRow& row : rows) {
    batch.emplace(static_cast<sfl::auction::ClientId>(row.client), row.value,
                  row.bid, row.energy_cost);
  }
}

}  // namespace sfl::service
