#include "service/market_engine.h"

#include <algorithm>
#include <tuple>

namespace sfl::service {

sfl::auction::MechanismConfig to_mechanism_config(
    const MarketEngineConfig& config) {
  sfl::auction::MechanismConfig mc;
  mc.num_clients = 0;  // open client population; uniform pacing stays off
  mc.per_round_budget = config.per_round_budget;
  mc.seed = config.seed;
  mc.lto.v_weight = config.v_weight;
  mc.lto.pacing_rate = 0.0;
  mc.lto.dist_workers = config.dist_workers;
  mc.lto.dist_pipeline_depth = config.dist_pipeline_depth;
  return mc;
}

std::unique_ptr<sfl::auction::Mechanism> build_market_mechanism(
    const MarketEngineConfig& config) {
  return sfl::auction::build_mechanism(config.mechanism,
                                       to_mechanism_config(config));
}

void clear_market_round(sfl::auction::Mechanism& mechanism,
                        const MarketEngineConfig& config, std::uint64_t round,
                        std::vector<BidRow>& rows,
                        sfl::auction::CandidateBatch& batch,
                        sfl::auction::MechanismResult& result) {
  fill_canonical_batch(rows, batch);
  sfl::auction::RoundContext context;
  context.round = static_cast<std::size_t>(round);
  context.max_winners = config.max_winners;
  context.per_round_budget = config.per_round_budget;
  mechanism.run_round_into(batch, context, result);

  sfl::auction::RoundSettlement settlement;
  settlement.round = context.round;
  settlement.winners.reserve(result.winners.size());
  for (std::size_t w = 0; w < result.winners.size(); ++w) {
    const sfl::auction::ClientId client = result.winners[w];
    sfl::auction::WinnerSettlement entry;
    entry.client = client;
    entry.payment = result.payments[w];
    // The batch is sorted by client id and a round's ids are unique, so a
    // linear probe finds the winner's own bid row (m and n are both small
    // per market round).
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch.ids()[i] == client) {
        entry.bid = batch.bids()[i];
        entry.energy_cost = batch.energy_costs()[i];
        break;
      }
    }
    entry.dropped = false;
    settlement.total_payment += entry.payment;
    settlement.winners.push_back(entry);
  }
  mechanism.settle(settlement);
}

void fill_canonical_batch(std::vector<BidRow>& rows,
                          sfl::auction::CandidateBatch& batch) {
  std::sort(rows.begin(), rows.end(), [](const BidRow& a, const BidRow& b) {
    return std::tie(a.client, a.value, a.bid, a.energy_cost) <
           std::tie(b.client, b.value, b.bid, b.energy_cost);
  });
  batch.clear();
  batch.reserve(rows.size());
  for (const BidRow& row : rows) {
    batch.emplace(static_cast<sfl::auction::ClientId>(row.client), row.value,
                  row.bid, row.energy_cost);
  }
}

}  // namespace sfl::service
