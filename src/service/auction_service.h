// AuctionService: the persistent auction front-end.
//
// A poll-based, single-threaded multi-client TCP server that turns the
// in-process auction library into a long-lived coordinator: clients connect
// to 127.0.0.1:<port>, stream SubmitBids frames, and receive RoundResult /
// SettlementAck frames as market rounds clear. One poll loop owns every
// connection and every market — no locks on the serving path; start() runs
// the loop on a background thread, or drive poll_once() directly.
//
// Round composition is deterministic by construction: each bid names its
// (market, round); a market's round r clears when exactly
// engine.bids_per_round bids for it have arrived AND every earlier round of
// that market has cleared (strict round order — the mechanism's queue state
// makes order part of the result). The cleared slate is sorted canonically
// (market_engine.h), so the allocation and critical payments are a pure
// function of the bid set, bit-identical to driving the same slates through
// the in-process engine — never a function of TCP arrival interleaving.
//
// Hostile-client containment (the PR-4 bounded-read discipline, applied
// per connection):
//   - reads are non-blocking and buffered through a bounded FrameAssembler:
//     a slow-loris client trickling one byte per tick holds only its own
//     tiny buffer and never stalls other clients or the round loop;
//   - a corrupt or implausible frame, an oversized length claim, a protocol
//     violation (stale/far-future round, duplicate bid, bogus message type)
//     or a mid-frame disconnect kills THAT connection only;
//   - a SubmitBids slate is applied transactionally: a frame containing any
//     violating row is rejected whole (no partial rows enter buckets), and
//     a dropped connection's not-yet-cleared bids are purged, so no round
//     ever clears with bids from a connection that is gone;
//   - full buckets and the market cap are races an honest client cannot
//     detect, so bids losing those races are ignored, never punished;
//   - per-connection write queues are capped; a client that stops reading
//     is dropped rather than ballooning server memory;
//   - market and pending-round counts are bounded, so no bid pattern can
//     make server state grow without limit.
//
// Results are routed by monotonic connection id, never by fd: the kernel
// reuses fds immediately, and a number that can be reassigned must never
// name a result recipient.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "auction/mechanism.h"
#include "service/frame_assembler.h"
#include "service/market_engine.h"
#include "service/rpc_messages.h"

namespace sfl::service {

struct AuctionServiceConfig {
  /// 0 binds an ephemeral port (read it back with port()).
  std::uint16_t port = 0;
  /// Auction rule + round geometry, shared with the reference engine.
  MarketEngineConfig engine{};
  /// Per-frame size cap enforced before trusting any length claim.
  std::size_t max_frame_bytes = 1u << 20;
  /// Per-connection outbound queue cap; a client that stops reading is
  /// dropped when its queue would exceed this.
  std::size_t max_out_bytes = 8u << 20;
  /// Bounds on server-side state growth from hostile bid patterns.
  std::size_t max_markets = 4096;
  std::size_t max_pending_rounds = 64;  ///< per market, beyond next_round
  /// poll() timeout of the background run loop.
  int poll_timeout_ms = 20;
};

/// Monotonic serving counters (readable from any thread).
struct ServiceStats {
  std::size_t connections_accepted = 0;
  std::size_t connections_dropped = 0;  ///< closed for ANY reason
  std::size_t protocol_errors = 0;      ///< dropped for misbehavior
  std::size_t frames_received = 0;
  std::size_t bids_received = 0;
  std::size_t rounds_cleared = 0;
};

class AuctionService {
 public:
  /// Binds and listens; throws std::runtime_error when the socket cannot
  /// be created/bound (e.g. sandboxed environments).
  explicit AuctionService(AuctionServiceConfig config);
  ~AuctionService();

  AuctionService(const AuctionService&) = delete;
  AuctionService& operator=(const AuctionService&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Starts the background poll loop. Idempotent while running; throws
  /// after stop() (the listening socket is gone — construct a new one).
  void start();
  /// Stops the loop, closes every socket, joins the thread. Idempotent.
  void stop();

  /// One poll cycle (accept, read, clear rounds, write). Only for
  /// single-threaded drivers and tests — never concurrently with start().
  void poll_once(int timeout_ms);

  [[nodiscard]] ServiceStats stats() const noexcept;

 private:
  struct Connection {
    /// Monotonic, never reused — the identity results are routed by.
    std::uint64_t id = 0;
    int fd = -1;
    FrameAssembler assembler;
    /// Outbound bytes not yet accepted by the kernel ([offset, size)).
    std::vector<std::byte> out;
    std::size_t out_offset = 0;
    bool dead = false;
  };

  /// Bids collected for one not-yet-cleared (market, round).
  struct Bucket {
    std::vector<BidRow> rows;
    /// Connection id that submitted rows[i] (parallel to rows) — what lets
    /// a dropped connection's bids be purged before the round clears.
    std::vector<std::uint64_t> row_owners;
    std::vector<std::uint64_t> contributor_ids;
  };

  struct MarketState {
    std::unique_ptr<sfl::auction::Mechanism> mechanism;
    sfl::auction::CandidateBatch batch;       ///< reused round arena
    sfl::auction::MechanismResult result;     ///< reused result buffers
    std::uint64_t next_round = 0;             ///< rounds cleared so far
    std::map<std::uint64_t, Bucket> pending;  ///< round -> bids collected
  };

  /// How one row of a SubmitBids slate is disposed of during validation.
  enum class BidDisposition {
    kAccept,     ///< enters its bucket when the whole slate is accepted
    kIgnore,     ///< benign race lost (full bucket / market cap): skipped
    kViolation,  ///< rejects the whole slate; the connection is dropped
  };

  void run();
  void accept_ready();
  void read_ready(Connection& conn);
  /// Decodes and applies one SubmitBids frame transactionally: every row is
  /// validated against pre-frame state before any row is applied, so false
  /// (= protocol violation; the caller drops the connection) means the
  /// frame mutated nothing.
  bool handle_frame(Connection& conn, const Frame& frame);
  /// Validates one row against current state + the slate rows accepted so
  /// far (frame_slots_ / frame_new_markets_). Mutates nothing.
  [[nodiscard]] BidDisposition validate_bid(std::uint64_t market_id,
                                            std::uint64_t round,
                                            std::uint64_t client) const;
  void apply_bid(const Connection& conn, std::uint64_t market_id,
                 std::uint64_t round, const BidRow& row);
  /// Tick-end clearing: every market the tick's frames touched whose
  /// next_round bucket is full clears through ONE mega-batch
  /// clear_market_rounds call (each market contributes one round per
  /// iteration; cascades re-queue, preserving strict round order).
  void clear_tick_markets();
  /// Removes a gone connection's bids from every pending bucket.
  void purge_connection_bids(std::uint64_t conn_id);
  void queue_frame(Connection& conn, const Frame& frame);
  void flush_writes(Connection& conn);
  void drop_connection(Connection& conn, bool protocol_error);
  void reap_dead_connections();

  AuctionServiceConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  /// poll_once ticks left to ignore the listen fd after fd exhaustion
  /// (EMFILE stays POLLIN-ready forever; re-polling it would spin).
  int accept_cooldown_ticks_ = 0;
  std::uint64_t next_connection_id_ = 1;

  std::map<std::uint64_t, Connection> connections_;  ///< keyed by id
  std::map<std::uint64_t, MarketState> markets_;

  /// Reused decode/encode buffers (steady-state serving reuses capacity).
  SubmitBids submit_scratch_;
  RoundResult result_scratch_;
  Frame frame_scratch_;
  Frame encode_scratch_;
  /// Per-frame validation scratch: (market, round) slots accepted so far,
  /// markets the slate would create, markets to run clearing on.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> frame_slots_;
  std::vector<std::uint64_t> frame_new_markets_;
  std::vector<std::uint64_t> frame_touched_markets_;
  std::vector<std::uint8_t> frame_row_accepted_;

  /// The config echo sent first on every accepted connection (encoded once).
  Frame hello_frame_;
  /// Tick-end clearing state: markets touched this tick, and the per-batch
  /// buckets/requests handed to clear_market_rounds (kept as members so
  /// steady-state ticks reuse their capacity).
  std::vector<std::uint64_t> tick_ready_markets_;
  std::vector<std::uint64_t> batch_market_ids_;
  std::vector<Bucket> batch_buckets_;
  std::vector<MarketRoundRequest> batch_requests_;
  MultiMarketClearer clearer_;

  std::thread thread_;
  std::atomic<bool> stopping_{false};

  std::atomic<std::size_t> connections_accepted_{0};
  std::atomic<std::size_t> connections_dropped_{0};
  std::atomic<std::size_t> protocol_errors_{0};
  std::atomic<std::size_t> frames_received_{0};
  std::atomic<std::size_t> bids_received_{0};
  std::atomic<std::size_t> rounds_cleared_{0};
};

}  // namespace sfl::service
