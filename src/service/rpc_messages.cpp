#include "service/rpc_messages.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "dist/wire_format.h"

namespace sfl::service {

namespace {

using sfl::dist::FrameType;
using sfl::dist::wire::begin_frame;
using sfl::dist::wire::checked_payload;
using sfl::dist::wire::Cursor;
using sfl::dist::wire::finish_frame;
using sfl::dist::wire::put_f64;
using sfl::dist::wire::put_u64;

void require_finite_nonnegative(double v, const char* what) {
  if (!std::isfinite(v) || v < 0.0) {
    throw WireError(std::string("wire: ") + what +
                    " must be finite and non-negative");
  }
}

/// Rejects duplicate keys in O(n log n) — a checksummed hostile frame can
/// carry the maximum row count, so the scan must not be quadratic.
void require_unique(std::vector<std::pair<std::uint64_t, std::uint64_t>>& keys,
                    const char* what) {
  std::sort(keys.begin(), keys.end());
  if (std::adjacent_find(keys.begin(), keys.end()) != keys.end()) {
    throw WireError(std::string("wire: duplicate ") + what);
  }
}

}  // namespace

void encode(const SubmitBids& message, Frame& out) {
  begin_frame(out);
  put_u64(out, message.client);
  put_u64(out, message.row_count());
  for (const std::uint64_t m : message.markets) put_u64(out, m);
  for (const std::uint64_t r : message.rounds) put_u64(out, r);
  for (const double v : message.values) put_f64(out, v);
  for (const double b : message.bids) put_f64(out, b);
  for (const double e : message.energy_costs) put_f64(out, e);
  finish_frame(out, FrameType::kSubmitBids);
}

void encode(const RoundResult& message, Frame& out) {
  begin_frame(out);
  put_u64(out, message.market);
  put_u64(out, message.round);
  put_u64(out, message.winners.size());
  for (const std::uint64_t w : message.winners) put_u64(out, w);
  for (const double p : message.payments) put_f64(out, p);
  finish_frame(out, FrameType::kRoundResult);
}

void encode(const SettlementAck& message, Frame& out) {
  begin_frame(out);
  put_u64(out, message.market);
  put_u64(out, message.round);
  put_f64(out, message.total_payment);
  put_u64(out, message.winner_count);
  finish_frame(out, FrameType::kSettlementAck);
}

void decode(std::span<const std::byte> frame, SubmitBids& out) {
  const auto [type, payload] = checked_payload(frame);
  if (type != FrameType::kSubmitBids) {
    throw WireError("wire: expected a SubmitBids frame");
  }
  Cursor cursor(payload);
  out.client = cursor.u64();
  const std::uint64_t rows = cursor.u64();
  if (rows > kMaxBidsPerSubmit) {
    throw WireError("wire: bid slate exceeds row limit");
  }
  cursor.u64_array(out.markets, rows);
  cursor.u64_array(out.rounds, rows);
  cursor.f64_array(out.values, rows);
  cursor.f64_array(out.bids, rows);
  cursor.f64_array(out.energy_costs, rows);
  cursor.expect_exhausted();

  // Semantic validation mirrors CandidateBatch construction: the server
  // inserts decoded rows straight into per-market arenas, so anything the
  // batch would reject is rejected HERE, at the trust boundary.
  for (std::size_t i = 0; i < rows; ++i) {
    require_finite_nonnegative(out.values[i], "bid value");
    require_finite_nonnegative(out.bids[i], "bid price");
    if (!std::isfinite(out.energy_costs[i]) || out.energy_costs[i] <= 0.0) {
      throw WireError("wire: energy cost must be finite and positive");
    }
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> keys;
  keys.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    keys.emplace_back(out.markets[i], out.rounds[i]);
  }
  require_unique(keys, "(market, round) bid row");
}

void decode(std::span<const std::byte> frame, RoundResult& out) {
  const auto [type, payload] = checked_payload(frame);
  if (type != FrameType::kRoundResult) {
    throw WireError("wire: expected a RoundResult frame");
  }
  Cursor cursor(payload);
  out.market = cursor.u64();
  out.round = cursor.u64();
  const std::uint64_t winners = cursor.u64();
  if (winners > kMaxWinnersPerResult) {
    throw WireError("wire: winner count exceeds limit");
  }
  cursor.u64_array(out.winners, winners);
  cursor.f64_array(out.payments, winners);
  cursor.expect_exhausted();

  for (const double p : out.payments) {
    require_finite_nonnegative(p, "payment");
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> keys;
  keys.reserve(winners);
  for (const std::uint64_t w : out.winners) keys.emplace_back(w, 0);
  require_unique(keys, "winner client");
}

void encode(const ServerHello& message, Frame& out) {
  begin_frame(out);
  put_u64(out, message.bids_per_round);
  put_u64(out, message.max_winners);
  put_u64(out, message.max_pending_rounds);
  put_u64(out, message.mechanism.size());
  for (const char c : message.mechanism) {
    out.push_back(static_cast<std::byte>(c));
  }
  finish_frame(out, FrameType::kServerHello);
}

void decode(std::span<const std::byte> frame, ServerHello& out) {
  const auto [type, payload] = checked_payload(frame);
  if (type != FrameType::kServerHello) {
    throw WireError("wire: expected a ServerHello frame");
  }
  Cursor cursor(payload);
  out.bids_per_round = cursor.u64();
  out.max_winners = cursor.u64();
  out.max_pending_rounds = cursor.u64();
  const std::uint64_t key_len = cursor.u64();
  if (key_len > kMaxMechanismKeyBytes) {
    throw WireError("wire: mechanism key exceeds length limit");
  }
  out.mechanism.clear();
  out.mechanism.reserve(key_len);
  for (std::uint64_t i = 0; i < key_len; ++i) {
    const std::uint8_t c = cursor.u8();
    // Registry keys are printable ASCII; anything else is corruption.
    if (c < 0x20 || c > 0x7E) {
      throw WireError("wire: mechanism key must be printable ASCII");
    }
    out.mechanism.push_back(static_cast<char>(c));
  }
  cursor.expect_exhausted();
}

void decode(std::span<const std::byte> frame, SettlementAck& out) {
  const auto [type, payload] = checked_payload(frame);
  if (type != FrameType::kSettlementAck) {
    throw WireError("wire: expected a SettlementAck frame");
  }
  Cursor cursor(payload);
  out.market = cursor.u64();
  out.round = cursor.u64();
  out.total_payment = cursor.f64();
  out.winner_count = cursor.u64();
  cursor.expect_exhausted();
  require_finite_nonnegative(out.total_payment, "settled total payment");
}

}  // namespace sfl::service
