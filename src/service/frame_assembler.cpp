#include "service/frame_assembler.h"

#include <algorithm>
#include <utility>

namespace sfl::service {

namespace {

using sfl::dist::Frame;
using sfl::dist::frame_type_known;
using sfl::dist::kHeaderSize;
using sfl::dist::kWireMagic;
using sfl::dist::kWireVersion;

/// Cheap pre-validation of a buffered header: wrong magic, version, or type
/// means the stream is garbage — reject before trusting the length field
/// (full checksum validation happens at decode). Returns an empty string
/// when plausible, otherwise the condemnation reason. A correct-magic frame
/// carrying a DIFFERENT wire version is the one distinguishable case: it is
/// not line noise but a peer built from another wire revision, so the
/// reason names both versions and the fix — callers (the load generator's
/// fail-fast path) surface it verbatim instead of a generic header error.
std::string header_implausible_reason(const std::byte* header) {
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) {
    magic |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  }
  if (magic != kWireMagic) {
    return "implausible frame header (magic/version/type)";
  }
  const auto version = static_cast<std::uint8_t>(header[4]);
  if (version != kWireVersion) {
    return "peer speaks wire version " + std::to_string(version) +
           " but this build speaks version " + std::to_string(kWireVersion) +
           "; rebuild the older side so both ends share one wire revision";
  }
  if (!frame_type_known(static_cast<std::uint8_t>(header[5]))) {
    return "implausible frame header (magic/version/type)";
  }
  return {};
}

std::uint64_t header_payload_len(const std::byte* header) {
  std::uint64_t len = 0;
  for (int i = 0; i < 8; ++i) {
    len |= static_cast<std::uint64_t>(header[8 + i]) << (8 * i);
  }
  return len;
}

}  // namespace

FrameAssembler::FrameAssembler(std::size_t max_frame_bytes)
    : max_frame_bytes_(std::max(max_frame_bytes, kHeaderSize)) {}

void FrameAssembler::condemn(std::string reason) {
  condemned_ = true;
  reason_ = std::move(reason);
  buffer_.clear();
  consumed_ = 0;
}

void FrameAssembler::compact() {
  if (consumed_ == 0) return;
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
  consumed_ = 0;
}

bool FrameAssembler::feed(std::span<const std::byte> bytes) {
  if (condemned_) return false;
  compact();
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  // Validate the header as soon as it is complete — BEFORE accepting the
  // payload bytes a corrupt length field would ask for.
  if (buffer_.size() >= kHeaderSize) {
    if (std::string reason = header_implausible_reason(buffer_.data());
        !reason.empty()) {
      condemn(std::move(reason));
      return false;
    }
    const std::uint64_t payload_len = header_payload_len(buffer_.data());
    if (payload_len > max_frame_bytes_ - kHeaderSize) {
      condemn("declared payload exceeds the frame size limit");
      return false;
    }
  }
  return true;
}

bool FrameAssembler::next_frame(Frame& out) {
  if (condemned_) return false;
  compact();
  if (buffer_.size() < kHeaderSize) return false;
  if (std::string reason = header_implausible_reason(buffer_.data());
      !reason.empty()) {
    // Reachable when a previous next_frame left the NEXT frame's bytes
    // buffered and that header is garbage.
    condemn(std::move(reason));
    return false;
  }
  const std::uint64_t payload_len = header_payload_len(buffer_.data());
  if (payload_len > max_frame_bytes_ - kHeaderSize) {
    condemn("declared payload exceeds the frame size limit");
    return false;
  }
  const std::size_t frame_size =
      kHeaderSize + static_cast<std::size_t>(payload_len);
  if (buffer_.size() < frame_size) return false;
  out.assign(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(
                                                    frame_size));
  consumed_ = frame_size;
  compact();
  return true;
}

}  // namespace sfl::service
