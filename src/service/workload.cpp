#include "service/workload.h"

#include <memory>

#include "auction/mechanism.h"
#include "util/require.h"
#include "util/rng.h"

namespace sfl::service {

namespace {

/// Stateless mix of the spec seed with a row bucket's coordinates (one
/// splitmix64 stream per (market, round)), so any bucket's rows can be
/// regenerated independently and in any order.
std::uint64_t bucket_seed(const WorkloadSpec& spec, std::uint64_t market_id,
                          std::uint64_t round) {
  std::uint64_t state = spec.seed ^ (market_id * 0x9e3779b97f4a7c15ULL) ^
                        (round * 0xbf58476d1ce4e5b9ULL);
  return sfl::util::splitmix64(state);
}

}  // namespace

void workload_rows(const WorkloadSpec& spec, std::size_t market_index,
                   std::size_t round, std::vector<BidRow>& out) {
  sfl::util::require(spec.bids_per_round > 0,
                     "workload: bids_per_round must be > 0");
  sfl::util::require(spec.bids_per_round <= spec.clients,
                     "workload: bids_per_round must be <= clients (round "
                     "cohorts need unique client ids)");
  const std::uint64_t market_id = spec.market_id(market_index);
  sfl::util::Rng rng(bucket_seed(spec, market_id, round));
  // The round's cohort: a contiguous client window sliding per (market,
  // round), so every logical client bids regularly and each round's ids
  // are unique.
  const std::size_t start =
      (market_index * 7919 + round * spec.bids_per_round) % spec.clients;
  out.clear();
  out.reserve(spec.bids_per_round);
  for (std::size_t slot = 0; slot < spec.bids_per_round; ++slot) {
    BidRow row;
    row.client = (start + slot) % spec.clients;
    row.value = rng.uniform(0.5, 3.0);
    row.bid = rng.uniform(0.05, 2.0);
    row.energy_cost = rng.uniform(0.5, 2.0);
    out.push_back(row);
  }
}

std::vector<std::vector<RoundResult>> reference_results(
    const WorkloadSpec& spec, const MarketEngineConfig& engine) {
  std::vector<std::vector<RoundResult>> results(spec.markets);
  std::vector<BidRow> rows;
  sfl::auction::CandidateBatch batch;
  sfl::auction::MechanismResult round_result;
  for (std::size_t m = 0; m < spec.markets; ++m) {
    const std::unique_ptr<sfl::auction::Mechanism> mechanism =
        build_market_mechanism(engine);
    results[m].reserve(spec.rounds_per_market);
    for (std::size_t r = 0; r < spec.rounds_per_market; ++r) {
      workload_rows(spec, m, r, rows);
      clear_market_round(*mechanism, engine, r, rows, batch, round_result);
      RoundResult result;
      result.market = spec.market_id(m);
      result.round = r;
      result.winners = round_result.winners;
      result.payments = round_result.payments;
      results[m].push_back(std::move(result));
    }
  }
  return results;
}

}  // namespace sfl::service
