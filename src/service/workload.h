// Deterministic service workload: the one slate generator shared by the
// open-loop load generator, its bit-exact reference check, and the service
// tests.
//
// A WorkloadSpec pins every bid the load run will submit: which logical
// clients bid into round r of market m, and with what economics — a pure
// function of (seed, market, round, slot), independent of arrival timing.
// The load generator submits these rows over TCP with Poisson arrival
// gaps; reference_results() drives the SAME rows through an in-process
// mechanism per market. Because the server composes batches canonically
// (fill_canonical_batch) and clears each market's rounds in order, the two
// paths must agree bit for bit — that equivalence is the service's
// correctness contract, enforced by sfl_load_gen --verify=1 and the
// service tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "service/market_engine.h"
#include "service/rpc_messages.h"

namespace sfl::service {

struct WorkloadSpec {
  std::uint64_t seed = 42;
  /// Market ids used are [first_market, first_market + markets); tiers of a
  /// multi-tier load run use disjoint ranges so each tier clears on fresh
  /// mechanism state.
  std::uint64_t first_market = 0;
  std::size_t markets = 4;
  std::size_t rounds_per_market = 20;
  /// Logical client population; the round-r cohort is a contiguous window
  /// of bids_per_round clients (mod clients), so it must satisfy
  /// bids_per_round <= clients for ids to stay unique within a round.
  std::size_t clients = 1000;
  std::size_t bids_per_round = 32;

  [[nodiscard]] std::uint64_t market_id(std::size_t market_index) const {
    return first_market + market_index;
  }
  [[nodiscard]] std::size_t total_rounds() const noexcept {
    return markets * rounds_per_market;
  }
  [[nodiscard]] std::size_t total_bids() const noexcept {
    return total_rounds() * bids_per_round;
  }
};

/// The deterministic bid rows of (market_index, round), in cohort order
/// (NOT canonical batch order). Throws via util::require on an infeasible
/// spec (bids_per_round > clients or == 0).
void workload_rows(const WorkloadSpec& spec, std::size_t market_index,
                   std::size_t round, std::vector<BidRow>& out);

/// Drives every market's rounds in order through a fresh in-process
/// mechanism built from `engine` (same registry key, same knobs the server
/// uses) and returns result[market_index][round] — the allocations and
/// critical payments a correct server MUST reproduce bit for bit.
[[nodiscard]] std::vector<std::vector<RoundResult>> reference_results(
    const WorkloadSpec& spec, const MarketEngineConfig& engine);

}  // namespace sfl::service
