// Incremental, bounded reassembly of SFLD frames from a byte stream.
//
// The auction server reads whatever the kernel has for a connection and
// feeds it here; the assembler buffers until a complete frame is available
// and hands frames out one at a time. This is the PR-4 bounded-read
// discipline restated for a non-blocking poll loop:
//
//   - the header's magic/version/type are checked the moment 24 bytes are
//     buffered — a stream that opens with garbage is condemned before its
//     length field is ever trusted;
//   - the declared payload length is capped (max_frame_bytes), so a hostile
//     length claim can never size an allocation;
//   - memory grows only with bytes actually received, bounded by one
//     maximum frame — a slow-loris client feeding one byte per poll tick
//     just holds a tiny buffer open and can never stall another connection.
//
// A condemned assembler stays condemned: a stream with a corrupt header can
// never be re-synchronized (the PR-4 rule), so the owner must drop the
// connection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "dist/wire_codec.h"

namespace sfl::service {

class FrameAssembler {
 public:
  /// `max_frame_bytes` bounds header + payload of a single frame; frames
  /// whose header claims more are a protocol violation.
  explicit FrameAssembler(std::size_t max_frame_bytes = 1u << 20);

  /// Appends received bytes. Returns false (and records why) when the
  /// stream is condemned — a bad header or an oversized length claim; no
  /// further input is accepted.
  bool feed(std::span<const std::byte> bytes);

  /// Moves the next complete frame into `out` (cleared first). Returns
  /// false when no complete frame is buffered. Call repeatedly: one feed()
  /// may complete several coalesced frames.
  bool next_frame(sfl::dist::Frame& out);

  /// True once the stream is unrecoverable; the connection must be closed.
  [[nodiscard]] bool condemned() const noexcept { return condemned_; }
  [[nodiscard]] const std::string& condemned_reason() const noexcept {
    return reason_;
  }

  /// Bytes currently buffered (monotonically bounded by one max frame).
  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buffer_.size() - consumed_;
  }

 private:
  void condemn(std::string reason);
  /// Drops already-extracted prefix bytes once they dominate the buffer, so
  /// steady-state memory stays at one frame, not one session.
  void compact();

  std::size_t max_frame_bytes_;
  sfl::dist::Frame buffer_;
  std::size_t consumed_ = 0;  ///< bytes of buffer_ already handed out
  bool condemned_ = false;
  std::string reason_;
};

}  // namespace sfl::service
