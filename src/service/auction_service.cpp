#include "service/auction_service.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace sfl::service {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

AuctionService::AuctionService(AuctionServiceConfig config)
    : config_(std::move(config)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind(127.0.0.1:" +
                             std::to_string(config_.port) + "): " + why);
  }
  if (::listen(listen_fd_, 64) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("listen(): " + why);
  }
  set_nonblocking(listen_fd_);
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  // Fail unknown mechanism keys at construction, not at the first bid.
  (void)build_market_mechanism(config_.engine);
}

AuctionService::~AuctionService() { stop(); }

void AuctionService::start() {
  if (thread_.joinable()) return;
  if (listen_fd_ < 0) {
    throw std::runtime_error(
        "AuctionService: cannot restart after stop() (socket closed)");
  }
  stopping_.store(false);
  thread_ = std::thread([this] { run(); });
}

void AuctionService::stop() {
  stopping_.store(true);
  if (thread_.joinable()) thread_.join();
  for (auto& [fd, conn] : connections_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  connections_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void AuctionService::run() {
  while (!stopping_.load()) {
    poll_once(config_.poll_timeout_ms);
  }
}

ServiceStats AuctionService::stats() const noexcept {
  ServiceStats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_dropped = connections_dropped_.load();
  s.protocol_errors = protocol_errors_.load();
  s.frames_received = frames_received_.load();
  s.bids_received = bids_received_.load();
  s.rounds_cleared = rounds_cleared_.load();
  return s;
}

void AuctionService::poll_once(int timeout_ms) {
  std::vector<pollfd> pfds;
  std::vector<int> fds;
  pfds.reserve(connections_.size() + 1);
  pfds.push_back(pollfd{.fd = listen_fd_, .events = POLLIN, .revents = 0});
  fds.push_back(listen_fd_);
  for (auto& [fd, conn] : connections_) {
    short events = POLLIN;
    if (conn.out_offset < conn.out.size()) events |= POLLOUT;
    pfds.push_back(pollfd{.fd = fd, .events = events, .revents = 0});
    fds.push_back(fd);
  }

  const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (ready <= 0) return;

  if ((pfds[0].revents & POLLIN) != 0) accept_ready();
  for (std::size_t i = 1; i < pfds.size(); ++i) {
    const auto it = connections_.find(fds[i]);
    if (it == connections_.end() || it->second.dead) continue;
    Connection& conn = it->second;
    if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      read_ready(conn);
    }
    if (!conn.dead && (pfds[i].revents & POLLOUT) != 0) {
      flush_writes(conn);
    }
  }
  reap_dead_connections();
}

void AuctionService::accept_ready() {
  // Drain the accept queue; the listen socket is non-blocking.
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Connection conn;
    conn.fd = fd;
    conn.assembler = FrameAssembler(config_.max_frame_bytes);
    connections_.emplace(fd, std::move(conn));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void AuctionService::read_ready(Connection& conn) {
  std::byte buffer[4096];
  // Bounded per-tick read budget so one firehose client cannot starve the
  // rest of the poll cycle.
  for (int chunk = 0; chunk < 16 && !conn.dead; ++chunk) {
    const ssize_t got = ::recv(conn.fd, buffer, sizeof(buffer), 0);
    if (got == 0) {
      // EOF — also the mid-frame-disconnect case: whatever partial frame
      // the assembler holds is simply discarded with the connection.
      drop_connection(conn, /*protocol_error=*/false);
      return;
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      drop_connection(conn, /*protocol_error=*/false);
      return;
    }
    if (!conn.assembler.feed(
            std::span<const std::byte>(buffer, static_cast<std::size_t>(got)))) {
      drop_connection(conn, /*protocol_error=*/true);
      return;
    }
    while (!conn.dead && conn.assembler.next_frame(frame_scratch_)) {
      frames_received_.fetch_add(1, std::memory_order_relaxed);
      if (!handle_frame(conn, frame_scratch_)) {
        drop_connection(conn, /*protocol_error=*/true);
        return;
      }
    }
    if (conn.assembler.condemned()) {
      drop_connection(conn, /*protocol_error=*/true);
      return;
    }
  }
}

bool AuctionService::handle_frame(Connection& conn, const Frame& frame) {
  // Clients may only ever send bid slates; any other (even well-formed)
  // frame type on a client connection is a protocol violation.
  try {
    decode(frame, submit_scratch_);
  } catch (const WireError&) {
    return false;
  }
  for (std::size_t i = 0; i < submit_scratch_.row_count(); ++i) {
    BidRow row;
    row.client = submit_scratch_.client;
    row.value = submit_scratch_.values[i];
    row.bid = submit_scratch_.bids[i];
    row.energy_cost = submit_scratch_.energy_costs[i];
    if (!route_bid(conn, submit_scratch_.markets[i], submit_scratch_.rounds[i],
                   row)) {
      return false;
    }
    bids_received_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

bool AuctionService::route_bid(Connection& conn, std::uint64_t market_id,
                               std::uint64_t round, const BidRow& row) {
  auto market_it = markets_.find(market_id);
  if (market_it == markets_.end()) {
    if (markets_.size() >= config_.max_markets) return false;
    MarketState market;
    market.mechanism = build_market_mechanism(config_.engine);
    market_it = markets_.emplace(market_id, std::move(market)).first;
  }
  MarketState& market = market_it->second;

  // Stale (already-cleared) rounds and rounds beyond the pending window are
  // rejected: they can never clear correctly, and the window bound is what
  // keeps a hostile round pattern from growing server state without limit.
  if (round < market.next_round) return false;
  if (round >= market.next_round + config_.max_pending_rounds) return false;

  Bucket& bucket = market.pending[round];
  if (bucket.rows.size() >= config_.engine.bids_per_round) return false;
  for (const BidRow& existing : bucket.rows) {
    if (existing.client == row.client) return false;  // one bid per client
  }
  bucket.rows.push_back(row);
  bool known_contributor = false;
  for (const int fd : bucket.contributor_fds) {
    if (fd == conn.fd) {
      known_contributor = true;
      break;
    }
  }
  if (!known_contributor) bucket.contributor_fds.push_back(conn.fd);

  clear_ready_rounds(market_id, market);
  return true;
}

void AuctionService::clear_ready_rounds(std::uint64_t market_id,
                                        MarketState& market) {
  // Strict round order: only next_round may clear, then cascade into any
  // already-full successors.
  while (true) {
    const auto bucket_it = market.pending.find(market.next_round);
    if (bucket_it == market.pending.end() ||
        bucket_it->second.rows.size() < config_.engine.bids_per_round) {
      return;
    }
    const std::uint64_t round = market.next_round;
    Bucket bucket = std::move(bucket_it->second);
    market.pending.erase(bucket_it);

    rows_scratch_ = std::move(bucket.rows);
    clear_market_round(*market.mechanism, config_.engine, round, rows_scratch_,
                       market.batch, market.result);
    market.next_round = round + 1;
    rounds_cleared_.fetch_add(1, std::memory_order_relaxed);

    result_scratch_.market = market_id;
    result_scratch_.round = round;
    result_scratch_.winners = market.result.winners;
    result_scratch_.payments = market.result.payments;

    SettlementAck ack;
    ack.market = market_id;
    ack.round = round;
    ack.total_payment = market.result.total_payment();
    ack.winner_count = market.result.winners.size();

    for (const int fd : bucket.contributor_fds) {
      const auto conn_it = connections_.find(fd);
      if (conn_it == connections_.end() || conn_it->second.dead) continue;
      encode(result_scratch_, encode_scratch_);
      queue_frame(conn_it->second, encode_scratch_);
      encode(ack, encode_scratch_);
      queue_frame(conn_it->second, encode_scratch_);
    }
  }
}

void AuctionService::queue_frame(Connection& conn, const Frame& frame) {
  if (conn.dead) return;
  const std::size_t queued = conn.out.size() - conn.out_offset;
  if (queued + frame.size() > config_.max_out_bytes) {
    // The peer stopped reading; shedding it beats unbounded buffering.
    drop_connection(conn, /*protocol_error=*/true);
    return;
  }
  if (conn.out_offset > 0 && conn.out_offset == conn.out.size()) {
    conn.out.clear();
    conn.out_offset = 0;
  }
  conn.out.insert(conn.out.end(), frame.begin(), frame.end());
  flush_writes(conn);
}

void AuctionService::flush_writes(Connection& conn) {
  while (conn.out_offset < conn.out.size()) {
    const ssize_t rc =
        ::send(conn.fd, conn.out.data() + conn.out_offset,
               conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // POLLOUT later
      drop_connection(conn, /*protocol_error=*/false);
      return;
    }
    conn.out_offset += static_cast<std::size_t>(rc);
  }
  if (conn.out_offset == conn.out.size()) {
    conn.out.clear();
    conn.out_offset = 0;
  }
}

void AuctionService::drop_connection(Connection& conn, bool protocol_error) {
  if (conn.dead) return;
  conn.dead = true;
  connections_dropped_.fetch_add(1, std::memory_order_relaxed);
  if (protocol_error) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  if (conn.fd >= 0) {
    ::close(conn.fd);
  }
}

void AuctionService::reap_dead_connections() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->second.dead) {
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace sfl::service
